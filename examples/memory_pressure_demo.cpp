// Memory pressure demo — the §8 open problem made concrete: hash tables
// are non-preemptable, so tight site memory forces the scheduler to trade
// parallelism for feasibility. Sweeps per-site memory on one query and
// shows response time, phase splits, and peak residency.
//
// Usage: memory_pressure_demo [num_joins] [num_sites]

#include <cstdio>
#include <cstdlib>

#include "common/str_util.h"
#include "common/table_printer.h"
#include "core/memory_aware.h"
#include "workload/experiment.h"

int main(int argc, char** argv) {
  using namespace mrs;

  ExperimentConfig config;
  config.workload.num_joins = argc > 1 ? std::atoi(argv[1]) : 15;
  config.machine.num_sites = argc > 2 ? std::atoi(argv[2]) : 16;
  config.granularity = 0.7;
  config.overlap = 0.5;

  auto artifacts = PrepareQuery(config, 0);
  if (!artifacts.ok()) {
    std::fprintf(stderr, "%s\n", artifacts.status().ToString().c_str());
    return 1;
  }
  const OverlapUsageModel usage(config.overlap);
  TreeScheduleOptions options;
  options.granularity = config.granularity;

  std::printf("Query: %d joins on %d sites; hash tables occupy memory from\n"
              "build until probe completion (assumption A1 relaxed).\n\n",
              config.workload.num_joins, config.machine.num_sites);

  TablePrinter table("Response vs per-site memory");
  table.SetHeader({"site memory", "response (s)", "subphases", "splits",
                   "peak residency"});
  for (double mb : {1024.0, 64.0, 16.0, 8.0, 4.0, 2.0, 1.0}) {
    MemoryOptions memory;
    memory.site_memory_bytes = mb * 1024 * 1024;
    auto result = MemoryAwareTreeSchedule(
        artifacts->op_tree, artifacts->task_tree, artifacts->costs,
        config.cost, config.machine, usage, options, memory);
    if (!result.ok()) {
      table.AddRow({StrFormat("%.0f MB", mb),
                    result.status().code() == StatusCode::kFailedPrecondition
                        ? "infeasible"
                        : "error",
                    "-", "-", "-"});
      continue;
    }
    table.AddRow({StrFormat("%.0f MB", mb),
                  StrFormat("%.2f", result->response_time / 1000.0),
                  StrFormat("%zu", result->phases.size()),
                  StrFormat("%d", result->phase_splits),
                  FormatBytes(result->peak_site_memory)});
  }
  table.Print();
  std::printf(
      "\nAs memory shrinks, the scheduler first raises build degrees (to\n"
      "shrink per-site table shares), then serializes tasks into extra\n"
      "subphases, and finally reports infeasibility when even a single\n"
      "table cannot fit machine-wide.\n");
  return 0;
}
