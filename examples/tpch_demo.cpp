// TPC-H-shaped demo: schedule the three canonical TPC-H-like plan shapes
// (Q3/Q9/Q18) at a chosen scale factor and explain where the time goes —
// which site is critical, which resource binds it, and how utilized the
// machine is per phase.
//
// Usage: tpch_demo [scale_factor] [num_sites]

#include <cstdio>
#include <cstdlib>

#include "common/str_util.h"
#include "core/tree_schedule.h"
#include "cost/cost_model.h"
#include "exec/explain.h"
#include "plan/task_tree.h"
#include "workload/tpch_like.h"

int main(int argc, char** argv) {
  using namespace mrs;
  const double sf = argc > 1 ? std::atof(argv[1]) : 0.01;
  const int sites = argc > 2 ? std::atoi(argv[2]) : 24;

  CostParams params;
  MachineConfig machine;
  machine.num_sites = sites;
  if (!machine.Validate().ok()) return 1;
  const OverlapUsageModel usage(0.5);

  std::printf("TPC-H-like workload at scale factor %.3g on %d sites\n\n",
              sf, sites);
  for (const std::string& shape : TpchLikeShapes()) {
    auto query = MakeTpchLikeQuery(shape, sf);
    if (!query.ok()) {
      std::fprintf(stderr, "%s\n", query.status().ToString().c_str());
      return 1;
    }
    std::printf("== %s: %s\n", query->name.c_str(),
                query->description.c_str());
    std::printf("   plan: %s\n", query->parsed.plan->ToString().c_str());

    auto op_tree_result = OperatorTree::FromPlan(*query->parsed.plan);
    if (!op_tree_result.ok()) return 1;
    OperatorTree op_tree = std::move(op_tree_result).value();
    auto task_tree = TaskTree::FromOperatorTree(&op_tree);
    if (!task_tree.ok()) return 1;
    CostModel model(params, machine.dims);
    auto costs = model.CostAll(op_tree);
    if (!costs.ok()) return 1;

    auto schedule = TreeSchedule(op_tree, *task_tree, costs.value(), params,
                                 machine, usage);
    if (!schedule.ok()) {
      std::fprintf(stderr, "scheduling failed: %s\n",
                   schedule.status().ToString().c_str());
      return 1;
    }
    const ScheduleExplanation explanation = ExplainSchedule(*schedule);
    std::printf("%s\n", explanation.ToString(machine).c_str());
  }
  std::printf(
      "Read the reports top-down: early phases build hash tables (often\n"
      "network/CPU bound), late phases probe and sort (CPU/disk bound).\n"
      "A load-bound critical site means packing quality limits response;\n"
      "a T_par-bound one means an operator ran out of useful parallelism.\n");
  return 0;
}
