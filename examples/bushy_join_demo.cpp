// Bushy join demo: generate a random 20-join tree query, schedule it with
// both TREESCHEDULE (multi-dimensional) and SYNCHRONOUS (one-dimensional
// baseline), execute the TREESCHEDULE result on the fluid simulator, and
// report response times plus machine utilization.
//
// Usage: bushy_join_demo [num_joins] [num_sites] [seed]

#include <cstdio>
#include <cstdlib>

#include "baseline/synchronous.h"
#include "common/str_util.h"
#include "core/opt_bound.h"
#include "core/tree_schedule.h"
#include "exec/fluid_simulator.h"
#include "workload/experiment.h"

int main(int argc, char** argv) {
  using namespace mrs;

  ExperimentConfig config;
  config.workload.num_joins = argc > 1 ? std::atoi(argv[1]) : 20;
  config.machine.num_sites = argc > 2 ? std::atoi(argv[2]) : 40;
  config.seed = argc > 3 ? static_cast<uint64_t>(std::atoll(argv[3])) : 9607;
  config.granularity = 0.7;
  config.overlap = 0.5;

  auto artifacts = PrepareQuery(config, /*index=*/0);
  if (!artifacts.ok()) {
    std::printf("query generation failed: %s\n",
                artifacts.status().ToString().c_str());
    return 1;
  }
  std::printf("Random query: %d joins over %d relations, plan height %d\n",
              config.workload.num_joins,
              artifacts->query.catalog->num_relations(),
              artifacts->query.plan->Height());
  std::printf("Task tree: %d pipelines in %d synchronized phases\n\n",
              artifacts->task_tree.num_tasks(),
              artifacts->task_tree.num_phases());

  const OverlapUsageModel usage(config.overlap);

  // Multi-dimensional scheduling.
  TreeScheduleOptions options;
  options.granularity = config.granularity;
  auto tree = TreeSchedule(artifacts->op_tree, artifacts->task_tree,
                           artifacts->costs, config.cost, config.machine,
                           usage, options);
  if (!tree.ok()) return 1;

  // One-dimensional baseline.
  auto sync = SynchronousSchedule(artifacts->op_tree, artifacts->task_tree,
                                  artifacts->costs, config.cost,
                                  config.machine, usage);
  if (!sync.ok()) return 1;

  // Optimal lower bound.
  auto bound = OptBound(artifacts->op_tree, artifacts->task_tree,
                        artifacts->costs, config.cost, usage,
                        config.granularity, config.machine.num_sites);
  if (!bound.ok()) return 1;

  std::printf("TREESCHEDULE response: %s\n",
              FormatMillis(tree->response_time).c_str());
  std::printf("SYNCHRONOUS  response: %s   (%.2fx of TREESCHEDULE)\n",
              FormatMillis(sync->response_time).c_str(),
              sync->response_time / tree->response_time);
  std::printf("OPTBOUND     lower bd: %s   (TREESCHEDULE within %.2fx)\n\n",
              FormatMillis(bound->Bound()).c_str(),
              tree->response_time / bound->Bound());

  // Execute the schedule operationally.
  FluidSimulator sim(usage);
  auto run = sim.Simulate(*tree);
  if (!run.ok()) return 1;
  std::printf("Fluid simulation: response %s (analytic %s)\n",
              FormatMillis(run->response_time).c_str(),
              FormatMillis(tree->response_time).c_str());
  std::printf("Average utilization: cpu %.0f%%  disk %.0f%%  net %.0f%%\n",
              run->average_utilization[0] * 100.0,
              run->average_utilization[1] * 100.0,
              run->average_utilization[2] * 100.0);

  // And under a naive round-robin engine.
  FluidSimulator naive(usage, SharingPolicy::kUniformSlowdown);
  auto slow = naive.Simulate(*tree);
  if (!slow.ok()) return 1;
  std::printf(
      "Naive time-slicing engine: response %s (%.2fx of the model-optimal "
      "discipline)\n",
      FormatMillis(slow->response_time).c_str(),
      slow->response_time / run->response_time);
  return 0;
}
