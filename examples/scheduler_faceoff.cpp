// Scheduler face-off: sweep machine sizes for one random query workload
// and print a comparison table of all schedulers in the library —
// TREESCHEDULE (coarse-grain and malleable), the one-dimensional
// SYNCHRONOUS baseline, and the OPTBOUND lower bound.
//
// Usage: scheduler_faceoff [num_joins] [queries_per_point]

#include <cstdio>
#include <cstdlib>

#include "common/str_util.h"
#include "common/table_printer.h"
#include "workload/experiment.h"

int main(int argc, char** argv) {
  using namespace mrs;

  ExperimentConfig config;
  config.workload.num_joins = argc > 1 ? std::atoi(argv[1]) : 20;
  config.queries_per_point = argc > 2 ? std::atoi(argv[2]) : 10;
  config.granularity = 0.7;
  config.overlap = 0.5;

  std::printf("Workload: %d random bushy plans of %d joins, f=%.1f, "
              "eps=%.1f\n\n",
              config.queries_per_point, config.workload.num_joins,
              config.granularity, config.overlap);

  const std::vector<SchedulerKind> kinds = {
      SchedulerKind::kTreeSchedule, SchedulerKind::kTreeScheduleMalleable,
      SchedulerKind::kSynchronous, SchedulerKind::kHongPairing,
      SchedulerKind::kOptBound};

  TablePrinter table("Average response time (seconds) by machine size");
  table.SetHeader({"sites", "TREESCHED", "TREESCHED-M", "SYNCHRONOUS",
                   "HONG", "OPTBOUND", "SYNC/TREE"});
  for (int sites : {10, 20, 40, 80, 140}) {
    config.machine.num_sites = sites;
    auto stats = MeasureSchedulers(kinds, config);
    if (!stats.ok()) {
      std::printf("measurement failed: %s\n",
                  stats.status().ToString().c_str());
      return 1;
    }
    table.AddRow({StrFormat("%d", sites),
                  StrFormat("%.2f", (*stats)[0].mean() / 1000.0),
                  StrFormat("%.2f", (*stats)[1].mean() / 1000.0),
                  StrFormat("%.2f", (*stats)[2].mean() / 1000.0),
                  StrFormat("%.2f", (*stats)[3].mean() / 1000.0),
                  StrFormat("%.2f", (*stats)[4].mean() / 1000.0),
                  StrFormat("%.2f",
                            (*stats)[2].mean() / (*stats)[0].mean())});
  }
  table.Print();
  std::printf(
      "\nSYNC/TREE > 1 means the multi-dimensional scheduler wins; the\n"
      "gap is largest on small (resource-limited) machines, matching the\n"
      "paper's Figures 5-6.\n");
  return 0;
}
