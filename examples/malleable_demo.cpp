// Malleable scheduling demo (paper §7): schedule a batch of independent
// operators with (a) the coarse-grain CG_f parallelization and (b) the
// greedy LB-minimizing malleable selection, and show how the malleable
// scheduler trades operator parallelism for packing quality.
//
// Usage: malleable_demo [num_operators] [num_sites]

#include <cstdio>
#include <cstdlib>

#include "common/rng.h"
#include "common/str_util.h"
#include "common/table_printer.h"
#include "core/malleable.h"
#include "core/operator_schedule.h"
#include "cost/parallelize.h"
#include "resource/machine.h"
#include "resource/usage_model.h"

int main(int argc, char** argv) {
  using namespace mrs;

  const int num_ops = argc > 1 ? std::atoi(argv[1]) : 12;
  const int num_sites = argc > 2 ? std::atoi(argv[2]) : 16;
  const double f = 0.7;
  const double eps = 0.5;

  CostParams params;
  OverlapUsageModel usage(eps);
  Rng rng(4242);

  // A mixed batch: CPU-bound, disk-bound, and network-heavy operators.
  std::vector<OperatorCost> costs;
  for (int i = 0; i < num_ops; ++i) {
    OperatorCost c;
    c.op_id = i;
    c.kind = OperatorKind::kScan;
    switch (i % 3) {
      case 0:  // CPU-bound
        c.processing = WorkVector({rng.UniformDouble(2000, 6000),
                                   rng.UniformDouble(0, 500), 0.0});
        c.data_bytes = rng.UniformDouble(0, 50000);
        break;
      case 1:  // disk-bound
        c.processing = WorkVector({rng.UniformDouble(0, 500),
                                   rng.UniformDouble(2000, 6000), 0.0});
        c.data_bytes = rng.UniformDouble(0, 50000);
        break;
      default:  // shuffle-heavy
        c.processing = WorkVector({rng.UniformDouble(300, 1500),
                                   rng.UniformDouble(300, 1500), 0.0});
        c.data_bytes = rng.UniformDouble(500000, 4000000);
    }
    costs.push_back(std::move(c));
  }

  // (a) Coarse-grain parallelization + list scheduling.
  std::vector<ParallelizedOp> cg_ops;
  for (const auto& c : costs) {
    auto op = ParallelizeFloating(c, params, usage, f, num_sites);
    if (!op.ok()) return 1;
    cg_ops.push_back(std::move(op).value());
  }
  auto cg_schedule = OperatorSchedule(cg_ops, num_sites, kDefaultDims);
  if (!cg_schedule.ok()) return 1;

  // (b) Malleable selection + list scheduling.
  auto selection =
      SelectMalleableParallelization(costs, {}, params, usage, num_sites);
  if (!selection.ok()) return 1;
  auto malleable_schedule =
      MalleableSchedule(costs, {}, params, usage, num_sites, kDefaultDims);
  if (!malleable_schedule.ok()) return 1;

  TablePrinter table("Per-operator degrees of parallelism");
  table.SetHeader({"op", "type", "W_p(ms)", "D(KB)", "N(coarse, f=0.7)",
                   "N(malleable)"});
  const char* kinds[] = {"cpu-bound", "disk-bound", "shuffle-heavy"};
  for (int i = 0; i < num_ops; ++i) {
    table.AddRow({StrFormat("%d", i), kinds[i % 3],
                  StrFormat("%.0f", costs[static_cast<size_t>(i)]
                                        .ProcessingArea()),
                  StrFormat("%.0f",
                            costs[static_cast<size_t>(i)].data_bytes / 1024),
                  StrFormat("%d", cg_ops[static_cast<size_t>(i)].degree),
                  StrFormat("%d", selection->degrees[static_cast<size_t>(i)])});
  }
  table.Print();

  std::printf("\nCoarse-grain schedule makespan:   %s\n",
              FormatMillis(cg_schedule->Makespan()).c_str());
  std::printf("Malleable schedule makespan:      %s\n",
              FormatMillis(malleable_schedule->Makespan()).c_str());
  std::printf("Malleable LB (Theorem 7.1 base):  %s\n",
              FormatMillis(selection->lower_bound).c_str());
  std::printf("Malleable within %.2fx of LB (guarantee: %.0fx)\n",
              malleable_schedule->Makespan() / selection->lower_bound,
              2.0 * kDefaultDims + 1.0);
  std::printf("Candidates examined by GF selection: %d (bound: %d)\n",
              selection->candidates, 1 + num_ops * (num_sites - 1));
  return 0;
}
