// sched_server: the online scheduling service as a standalone process.
// Listens on TCP for length-prefixed plan-text requests (optionally with
// @arrival / @timeout directive lines) and answers each with a schedule
// JSON object — see src/server/sched_service.h for the wire contract.
//
// Usage:
//   sched_server [--port P] [--host H] [--sites N] [--eps E] [--f F]
//                [--mpl K] [--queue-depth D] [--timeout-ms T]
//                [--memory-limit BYTES] [--policy fifo|sjf]
//                [--reactor | --no-reactor] [--workers W]
//
// The front-end defaults to the epoll reactor (one loop thread serving
// every connection, scheduling offloaded to W worker threads);
// --no-reactor selects the thread-per-connection engine instead — same
// wire behaviour, useful as a differential reference.
//
// Prints the bound address ("listening on HOST:PORT") on stdout, then
// serves until stdin reaches EOF (or the process is signalled), drains
// in-flight requests, and prints the online.* metrics on exit. Try it:
//
//   sched_server --port 4740 &
//   sched_cli plan.txt --connect 127.0.0.1:4740

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "common/metrics.h"
#include "server/sched_server.h"
#include "server/sched_service.h"

namespace {

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--port P] [--host H] [--sites N] [--eps E] [--f F]\n"
               "          [--mpl K] [--queue-depth D] [--timeout-ms T]\n"
               "          [--memory-limit BYTES] [--policy fifo|sjf]\n"
               "          [--reactor | --no-reactor] [--workers W]\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mrs;
  int port = 0;
  std::string host = "127.0.0.1";
  SchedServiceOptions options;
  SchedServerOptions server_options;
  for (int i = 1; i < argc; ++i) {
    auto need_value = [&](const char* flag) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s requires a value\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--port") == 0) {
      port = std::atoi(need_value("--port"));
    } else if (std::strcmp(argv[i], "--host") == 0) {
      host = need_value("--host");
    } else if (std::strcmp(argv[i], "--sites") == 0) {
      options.machine.num_sites = std::atoi(need_value("--sites"));
    } else if (std::strcmp(argv[i], "--eps") == 0) {
      options.online.overlap_eps = std::atof(need_value("--eps"));
    } else if (std::strcmp(argv[i], "--f") == 0) {
      options.online.tree.granularity = std::atof(need_value("--f"));
    } else if (std::strcmp(argv[i], "--mpl") == 0) {
      options.online.admission.max_in_flight = std::atoi(need_value("--mpl"));
    } else if (std::strcmp(argv[i], "--queue-depth") == 0) {
      options.online.admission.max_queue_depth =
          std::atoi(need_value("--queue-depth"));
    } else if (std::strcmp(argv[i], "--timeout-ms") == 0) {
      options.online.admission.default_timeout_ms =
          std::atof(need_value("--timeout-ms"));
    } else if (std::strcmp(argv[i], "--memory-limit") == 0) {
      options.online.admission.memory_limit_bytes =
          std::atof(need_value("--memory-limit"));
    } else if (std::strcmp(argv[i], "--reactor") == 0) {
      server_options.reactor = true;
    } else if (std::strcmp(argv[i], "--no-reactor") == 0) {
      server_options.reactor = false;
    } else if (std::strcmp(argv[i], "--workers") == 0) {
      server_options.worker_threads = std::atoi(need_value("--workers"));
      if (server_options.worker_threads <= 0) return Usage(argv[0]);
    } else if (std::strcmp(argv[i], "--policy") == 0) {
      const std::string policy = need_value("--policy");
      if (policy == "fifo") {
        options.online.admission.policy = AdmissionPolicy::kFifo;
      } else if (policy == "sjf") {
        options.online.admission.policy =
            AdmissionPolicy::kShortestMakespanFirst;
      } else {
        return Usage(argv[0]);
      }
    } else {
      return Usage(argv[0]);
    }
  }
  Status valid = options.online.admission.Validate();
  if (!valid.ok()) {
    std::fprintf(stderr, "invalid options: %s\n", valid.ToString().c_str());
    return 2;
  }

  MetricsRegistry metrics;
  options.online.metrics = &metrics;
  server_options.metrics = &metrics;
  SchedService service(options);
  SchedServer server(&service, server_options);
  Status started = server.Start(host, port);
  if (!started.ok()) {
    std::fprintf(stderr, "cannot listen on %s:%d: %s\n", host.c_str(), port,
                 started.ToString().c_str());
    return 1;
  }
  std::printf("listening on %s:%d (%s front-end, %d sites, mpl %d, "
              "policy %s)\n",
              host.c_str(), server.port(),
              server_options.reactor ? "reactor" : "threaded",
              options.machine.num_sites,
              options.online.admission.max_in_flight,
              std::string(AdmissionPolicyToString(
                              options.online.admission.policy))
                  .c_str());
  std::fflush(stdout);

  // Serve until stdin closes — the idiomatic "run under a shell script /
  // harness" lifetime without signal-handler machinery.
  int c;
  while ((c = std::getchar()) != EOF) {
  }

  server.Shutdown();
  Status drained = service.scheduler()->Drain();
  if (!drained.ok()) {
    std::fprintf(stderr, "drain failed: %s\n", drained.ToString().c_str());
    return 1;
  }
  std::printf("%s", metrics.Snapshot().ToString().c_str());
  return 0;
}
