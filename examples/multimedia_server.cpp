// Multimedia storage server demo — the paper's §8 closing suggestion:
// "given the generality of our scheduling framework, it would be
// interesting to investigate its applicability to other multi-dimensional
// processing situations (e.g., request scheduling in multimedia storage
// servers)."
//
// Each admitted request batch is a set of stream-delivery jobs with
// three-dimensional demands (disk bandwidth to read segments, CPU to
// transcode, network to ship). Jobs are independent and preemptable —
// exactly the OPERATORSCHEDULE setting — so we pack one admission round
// onto the server nodes with the multi-dimensional list rule and compare
// against scalar (total-work) packing.

#include <cstdio>
#include <cstdlib>

#include "common/rng.h"
#include "common/str_util.h"
#include "common/table_printer.h"
#include "core/operator_schedule.h"
#include "resource/usage_model.h"

namespace {

using namespace mrs;

/// A synthetic request mix: streaming (disk+net), transcode (cpu+disk),
/// and thumbnail (cpu) jobs, in milliseconds of per-resource busy time.
ParallelizedOp MakeRequest(int id, int kind, Rng* rng,
                           const OverlapUsageModel& usage) {
  WorkVector w(3);  // cpu, disk, net
  switch (kind) {
    case 0:  // 4K stream: heavy disk + net
      w[1] = rng->UniformDouble(3000, 9000);
      w[2] = w[1] * rng->UniformDouble(0.8, 1.1);
      w[0] = rng->UniformDouble(50, 200);
      break;
    case 1:  // transcode: heavy cpu, moderate disk
      w[0] = rng->UniformDouble(4000, 12000);
      w[1] = rng->UniformDouble(500, 2000);
      w[2] = rng->UniformDouble(100, 800);
      break;
    default:  // thumbnail sheet: cpu burst
      w[0] = rng->UniformDouble(800, 2500);
      w[1] = rng->UniformDouble(100, 400);
      w[2] = rng->UniformDouble(50, 200);
  }
  ParallelizedOp op;
  op.op_id = id;
  op.degree = 1;
  op.clones = {w};
  op.t_seq = {usage.SequentialTime(w)};
  op.t_par = op.t_seq[0];
  return op;
}

double ScalarPackedMakespan(const std::vector<ParallelizedOp>& jobs,
                            int nodes) {
  // Pack by total work only (a one-dimensional admission controller),
  // then measure the true multi-dimensional completion time.
  std::vector<ParallelizedOp> scalar = jobs;
  for (auto& job : scalar) {
    WorkVector w(3);
    w[0] = job.clones[0].Total();
    job.clones.Mutable(0) = w;
  }
  auto packed = OperatorSchedule(scalar, nodes, 3);
  if (!packed.ok()) return -1.0;
  Schedule replay(nodes, 3);
  for (const auto& placement : packed->placements()) {
    for (const auto& job : jobs) {
      if (job.op_id == placement.op_id) {
        if (!replay.Place(job, placement.clone_idx, placement.site).ok()) {
          return -1.0;
        }
      }
    }
  }
  return replay.Makespan();
}

}  // namespace

int main(int argc, char** argv) {
  const int nodes = argc > 1 ? std::atoi(argv[1]) : 8;
  const int requests = argc > 2 ? std::atoi(argv[2]) : 64;
  const OverlapUsageModel usage(0.9);  // async I/O: high overlap
  Rng rng(20260706);

  std::printf("Multimedia server: %d nodes x {cpu, disk, net}, "
              "one admission round of %d requests\n\n",
              nodes, requests);

  TablePrinter table("Admission round completion time (seconds)");
  table.SetHeader({"round", "streams", "transcodes", "thumbs",
                   "multi-dim pack", "scalar pack", "scalar/multi"});
  for (int round = 0; round < 5; ++round) {
    std::vector<ParallelizedOp> jobs;
    int counts[3] = {0, 0, 0};
    for (int i = 0; i < requests; ++i) {
      const int kind = static_cast<int>(rng.Index(3));
      ++counts[kind];
      jobs.push_back(MakeRequest(i, kind, &rng, usage));
    }
    auto multi = OperatorSchedule(jobs, nodes, 3);
    if (!multi.ok()) return 1;
    const double scalar = ScalarPackedMakespan(jobs, nodes);
    if (scalar < 0) return 1;
    table.AddRow({StrFormat("%d", round), StrFormat("%d", counts[0]),
                  StrFormat("%d", counts[1]), StrFormat("%d", counts[2]),
                  StrFormat("%.2f", multi->Makespan() / 1000.0),
                  StrFormat("%.2f", scalar / 1000.0),
                  StrFormat("%.2f", scalar / multi->Makespan())});
  }
  table.Print();
  std::printf(
      "\nThe multi-dimensional packer co-locates streams (disk/net) with\n"
      "transcodes (cpu), filling complementary resource slots that a\n"
      "scalar admission controller wastes — the same effect that makes\n"
      "TREESCHEDULE beat one-dimensional query schedulers.\n");
  return 0;
}
