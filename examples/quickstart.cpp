// Quickstart: schedule a small bushy hash-join plan on a shared-nothing
// machine and print the resulting multi-dimensional schedule.
//
//   catalog -> plan tree -> operator tree -> task tree -> costs
//           -> TREESCHEDULE -> response time + Gantt chart
//
// Build and run:  ./build/examples/quickstart

#include <cstdio>

#include "catalog/catalog.h"
#include "core/tree_schedule.h"
#include "cost/cost_model.h"
#include "exec/gantt.h"
#include "plan/operator_tree.h"
#include "plan/plan_printer.h"
#include "plan/plan_tree.h"
#include "plan/task_tree.h"
#include "resource/machine.h"
#include "resource/usage_model.h"

int main() {
  using namespace mrs;

  // 1. Describe the database: four relations of different sizes.
  Catalog catalog;
  for (auto [name, tuples] : std::initializer_list<
           std::pair<const char*, int64_t>>{
           {"customer", 30'000}, {"orders", 90'000},
           {"supplier", 5'000}, {"parts", 40'000}}) {
    Relation r;
    r.name = name;
    r.num_tuples = tuples;
    if (!catalog.AddRelation(std::move(r)).ok()) return 1;
  }

  // 2. A bushy plan: (customer JOIN orders) JOIN (supplier JOIN parts).
  //    AddJoin(outer, inner): the inner side feeds the hash build.
  PlanTree plan(&catalog);
  const int c = plan.AddLeaf(0).value();
  const int o = plan.AddLeaf(1).value();
  const int s = plan.AddLeaf(2).value();
  const int p = plan.AddLeaf(3).value();
  const int j0 = plan.AddJoin(/*outer=*/o, /*inner=*/c).value();
  const int j1 = plan.AddJoin(/*outer=*/p, /*inner=*/s).value();
  plan.AddJoin(j0, j1).value();
  if (!plan.Finalize().ok()) return 1;
  std::printf("Execution plan:\n%s\n", RenderPlanTree(plan).c_str());

  // 3. Macro-expand into the physical operator tree and the query task
  //    tree (pipelines separated by blocking build->probe edges).
  auto op_tree_result = OperatorTree::FromPlan(plan);
  if (!op_tree_result.ok()) return 1;
  OperatorTree op_tree = std::move(op_tree_result).value();
  auto task_tree_result = TaskTree::FromOperatorTree(&op_tree);
  if (!task_tree_result.ok()) return 1;
  TaskTree task_tree = std::move(task_tree_result).value();
  std::printf("Synchronized phases (MinShelf):\n%s\n",
              RenderPhases(task_tree, op_tree).c_str());

  // 4. Estimate multi-dimensional operator costs (paper Table 2 defaults).
  CostParams params;  // 1 MIPS CPU, 20ms/page disk, alpha=15ms, beta=0.6us/B
  CostModel model(params, kDefaultDims);
  auto costs = model.CostAll(op_tree);
  if (!costs.ok()) return 1;

  // 5. Schedule on a 12-site machine with 50% resource overlap and
  //    granularity f = 0.7.
  MachineConfig machine;
  machine.num_sites = 12;
  OverlapUsageModel usage(/*epsilon=*/0.5);
  TreeScheduleOptions options;
  options.granularity = 0.7;
  auto schedule = TreeSchedule(op_tree, task_tree, costs.value(), params,
                               machine, usage, options);
  if (!schedule.ok()) {
    std::printf("scheduling failed: %s\n",
                schedule.status().ToString().c_str());
    return 1;
  }

  std::printf("%s\n", schedule->ToString().c_str());
  std::printf("%s", RenderTreeGantt(*schedule, 56).c_str());
  return 0;
}
