// sched_cli: schedule a plan described in the plan text format and print
// the schedule (text, Gantt, JSON, or CSV). The downstream-integration
// face of the library: feed it plans from your optimizer, get placements
// back.
//
// Usage:
//   sched_cli <plan-file> [--sites N] [--eps E] [--f F]
//             [--algorithm tree|malleable|sync] [--format text|gantt|svg|json|csv]
//
// Plan file format (see src/io/plan_text.h):
//   relation customer 30000
//   relation orders 90000
//   plan (join orders customer)

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "baseline/synchronous.h"
#include "core/tree_schedule.h"
#include "exec/gantt.h"
#include "io/plan_text.h"
#include "io/schedule_export.h"
#include "workload/experiment.h"

namespace {

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s <plan-file> [--sites N] [--eps E] [--f F]\n"
               "          [--algorithm tree|malleable|sync]\n"
               "          [--format text|gantt|svg|json|csv]\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mrs;
  if (argc < 2) return Usage(argv[0]);

  std::string plan_path = argv[1];
  int sites = 16;
  double eps = 0.5;
  double f = 0.7;
  std::string algorithm = "tree";
  std::string format = "text";
  for (int i = 2; i < argc; ++i) {
    auto need_value = [&](const char* flag) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s requires a value\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--sites") == 0) {
      sites = std::atoi(need_value("--sites"));
    } else if (std::strcmp(argv[i], "--eps") == 0) {
      eps = std::atof(need_value("--eps"));
    } else if (std::strcmp(argv[i], "--f") == 0) {
      f = std::atof(need_value("--f"));
    } else if (std::strcmp(argv[i], "--algorithm") == 0) {
      algorithm = need_value("--algorithm");
    } else if (std::strcmp(argv[i], "--format") == 0) {
      format = need_value("--format");
    } else {
      return Usage(argv[0]);
    }
  }

  std::ifstream in(plan_path);
  if (!in) {
    std::fprintf(stderr, "cannot open %s\n", plan_path.c_str());
    return 1;
  }
  std::stringstream buffer;
  buffer << in.rdbuf();
  auto parsed = ParsePlanText(buffer.str());
  if (!parsed.ok()) {
    std::fprintf(stderr, "parse error: %s\n",
                 parsed.status().ToString().c_str());
    return 1;
  }

  auto op_tree_result = OperatorTree::FromPlan(*parsed->plan);
  if (!op_tree_result.ok()) return 1;
  OperatorTree op_tree = std::move(op_tree_result).value();
  auto task_tree = TaskTree::FromOperatorTree(&op_tree);
  if (!task_tree.ok()) return 1;

  CostParams params;
  MachineConfig machine;
  machine.num_sites = sites;
  CostModel model(params, machine.dims);
  auto costs = model.CostAll(op_tree);
  if (!costs.ok()) return 1;
  const OverlapUsageModel usage(eps);

  if (algorithm == "sync") {
    auto result = SynchronousSchedule(op_tree, *task_tree, costs.value(),
                                      params, machine, usage);
    if (!result.ok()) {
      std::fprintf(stderr, "scheduling failed: %s\n",
                   result.status().ToString().c_str());
      return 1;
    }
    std::printf("%s", result->ToString().c_str());
    return 0;
  }

  TreeScheduleOptions options;
  options.granularity = f;
  if (algorithm == "malleable") {
    options.policy = ParallelizationPolicy::kMalleable;
  } else if (algorithm != "tree") {
    return Usage(argv[0]);
  }
  auto result = TreeSchedule(op_tree, *task_tree, costs.value(), params,
                             machine, usage, options);
  if (!result.ok()) {
    std::fprintf(stderr, "scheduling failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }

  if (format == "json") {
    std::printf("%s\n", TreeScheduleToJson(*result).c_str());
  } else if (format == "csv") {
    std::printf("%s", TreeScheduleToCsv(*result).c_str());
  } else if (format == "gantt") {
    std::printf("%s", RenderTreeGantt(*result).c_str());
  } else if (format == "svg") {
    std::printf("%s", RenderTreeGanttSvg(*result).c_str());
  } else {
    std::printf("%s", result->ToString().c_str());
    for (const auto& phase : result->phases) {
      std::printf("%s", phase.schedule.ToString().c_str());
    }
  }
  return 0;
}
