// sched_cli: schedule a plan described in the plan text format and print
// the schedule (text, Gantt, JSON, or CSV). The downstream-integration
// face of the library: feed it plans from your optimizer, get placements
// back.
//
// Usage:
//   sched_cli <plan-file> [--sites N] [--eps E] [--f F]
//             [--algorithm tree|malleable|sync|list]
//             [--format text|gantt|svg|json|csv]
//             [--batch N] [--threads K] [--metrics] [--trace-json=FILE]
//             [--connect HOST:PORT]
//
// --engine is accepted as an alias for --algorithm; `--engine=list`
// selects the barrier-free moldable list scheduler (LISTSCHEDULE).
//
// With --connect HOST:PORT the plan file (including any @arrival/@timeout
// directive lines, see src/server/sched_service.h) is sent verbatim to a
// running sched_server and the JSON response is printed; all other
// scheduling flags are ignored — the server's configuration applies.
//
// With --batch N the plan is scheduled N times through the batch
// scheduling engine on K worker threads (a serving-loop smoke test:
// reports queries/sec and parallelize-cache hit rate, then prints the
// first schedule in the requested format).
//
// --metrics prints the process metrics registry (counters, cache hit
// rates, latency histogram percentiles) after the schedule output.
// --trace-json=FILE records a per-query trace of every pipeline stage
// (parse, expansion, costing, parallelize, OPERATORSCHEDULE per phase)
// and writes the versioned JSON report of io/trace_export.h to FILE.
//
// Plan file format (see src/io/plan_text.h):
//   relation customer 30000
//   relation orders 90000
//   plan (join orders customer)

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "baseline/synchronous.h"
#include "common/metrics.h"
#include "core/list_schedule.h"
#include "core/tree_schedule.h"
#include "exec/batch_scheduler.h"
#include "exec/gantt.h"
#include "exec/trace.h"
#include "io/plan_text.h"
#include "io/schedule_export.h"
#include "io/trace_export.h"
#include "server/sched_client.h"
#include "workload/experiment.h"

namespace {

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s <plan-file> [--sites N] [--eps E] [--f F]\n"
               "          [--algorithm tree|malleable|sync|list]\n"
               "          [--format text|gantt|svg|json|csv]\n"
               "          [--batch N] [--threads K]\n"
               "          [--metrics] [--trace-json=FILE]\n"
               "          [--connect HOST:PORT]\n",
               argv0);
  return 2;
}

/// Writes the versioned trace report to `path`; returns false on IO error.
bool WriteTraceReport(const std::string& path,
                      const std::vector<const mrs::ScheduleTrace*>& traces) {
  const std::string report = mrs::ExportTraceReport(
      traces, mrs::MetricsRegistry::Global().Snapshot());
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return false;
  }
  out << report << "\n";
  return out.good();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mrs;
  if (argc < 2) return Usage(argv[0]);

  std::string plan_path = argv[1];
  int sites = 16;
  double eps = 0.5;
  double f = 0.7;
  std::string algorithm = "tree";
  std::string format = "text";
  int batch = 1;
  int threads = 1;
  bool print_metrics = false;
  std::string trace_json_path;
  std::string connect;
  for (int i = 2; i < argc; ++i) {
    auto need_value = [&](const char* flag) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s requires a value\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--sites") == 0) {
      sites = std::atoi(need_value("--sites"));
    } else if (std::strcmp(argv[i], "--eps") == 0) {
      eps = std::atof(need_value("--eps"));
    } else if (std::strcmp(argv[i], "--f") == 0) {
      f = std::atof(need_value("--f"));
    } else if (std::strcmp(argv[i], "--algorithm") == 0) {
      algorithm = need_value("--algorithm");
    } else if (std::strcmp(argv[i], "--engine") == 0) {
      algorithm = need_value("--engine");
    } else if (std::strncmp(argv[i], "--engine=", 9) == 0) {
      algorithm = argv[i] + 9;
    } else if (std::strcmp(argv[i], "--format") == 0) {
      format = need_value("--format");
    } else if (std::strcmp(argv[i], "--batch") == 0) {
      batch = std::atoi(need_value("--batch"));
    } else if (std::strcmp(argv[i], "--threads") == 0) {
      threads = std::atoi(need_value("--threads"));
    } else if (std::strcmp(argv[i], "--connect") == 0) {
      connect = need_value("--connect");
    } else if (std::strcmp(argv[i], "--metrics") == 0) {
      print_metrics = true;
    } else if (std::strncmp(argv[i], "--trace-json=", 13) == 0) {
      trace_json_path = argv[i] + 13;
    } else if (std::strcmp(argv[i], "--trace-json") == 0) {
      trace_json_path = need_value("--trace-json");
    } else {
      return Usage(argv[0]);
    }
  }
  if (batch < 1 || threads < 1) {
    std::fprintf(stderr, "--batch and --threads must be >= 1\n");
    return 2;
  }

  const bool tracing = !trace_json_path.empty();
  ScheduleTrace driver_trace;
  driver_trace.set_label("driver");
  ScheduleTrace* trace = tracing ? &driver_trace : nullptr;
  // Trace report + metrics table, shared by every successful exit path.
  auto finish_reports =
      [&](const std::vector<const ScheduleTrace*>& extra) -> bool {
    if (tracing) {
      std::vector<const ScheduleTrace*> traces{&driver_trace};
      traces.insert(traces.end(), extra.begin(), extra.end());
      if (!WriteTraceReport(trace_json_path, traces)) return false;
    }
    if (print_metrics) {
      std::printf("%s",
                  MetricsRegistry::Global().Snapshot().ToString().c_str());
    }
    return true;
  };

  std::ifstream in(plan_path);
  if (!in) {
    std::fprintf(stderr, "cannot open %s\n", plan_path.c_str());
    return 1;
  }
  std::stringstream buffer;
  buffer << in.rdbuf();

  if (!connect.empty()) {
    // Client mode: ship the plan text to a sched_server, print the JSON
    // response. The request may carry @arrival/@timeout directive lines.
    const size_t colon = connect.rfind(':');
    const int port =
        colon == std::string::npos ? 0 : std::atoi(connect.c_str() + colon + 1);
    if (colon == std::string::npos || port <= 0) {
      std::fprintf(stderr, "--connect expects HOST:PORT, got '%s'\n",
                   connect.c_str());
      return 2;
    }
    auto client = SchedClient::ConnectTcp(connect.substr(0, colon), port);
    if (!client.ok()) {
      std::fprintf(stderr, "connect failed: %s\n",
                   client.status().ToString().c_str());
      return 1;
    }
    auto response = client.value().Call(buffer.str());
    if (!response.ok()) {
      std::fprintf(stderr, "request failed: %s\n",
                   response.status().ToString().c_str());
      return 1;
    }
    std::printf("%s\n", response.value().c_str());
    client.value().Close();
    return 0;
  }

  SpanTimer parse_span(trace, "parse");
  auto parsed = ParsePlanText(buffer.str());
  if (!parsed.ok()) {
    std::fprintf(stderr, "parse error: %s\n",
                 parsed.status().ToString().c_str());
    return 1;
  }
  if (parse_span.active()) {
    parse_span.AttrInt("bytes", static_cast<int64_t>(buffer.str().size()));
    parse_span.AttrInt("relations", parsed->catalog->num_relations());
  }
  parse_span.End();

  if (batch > 1 || threads > 1) {
    // Batch mode: push N copies of the plan through the batch scheduling
    // engine and report throughput plus cache effectiveness.
    if (algorithm == "sync" || algorithm == "list") {
      std::fprintf(stderr, "--batch supports tree|malleable only\n");
      return 2;
    }
    BatchSchedulerOptions options;
    options.num_threads = threads;
    options.overlap_eps = eps;
    options.tree.granularity = f;
    options.collect_traces = tracing;
    if (algorithm == "malleable") {
      options.tree.policy = ParallelizationPolicy::kMalleable;
    } else if (algorithm != "tree") {
      return Usage(argv[0]);
    }
    CostParams params;
    MachineConfig machine;
    machine.num_sites = sites;
    BatchScheduler engine(params, machine, options);
    std::vector<const PlanTree*> plans(static_cast<size_t>(batch),
                                       parsed->plan.get());
    const auto start = std::chrono::steady_clock::now();
    BatchOutput output = engine.ScheduleAll(plans);
    const double elapsed_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
    for (const auto& item : output.items) {
      if (!item.status.ok()) {
        std::fprintf(stderr, "scheduling failed (plan %d): %s\n", item.index,
                     item.status.ToString().c_str());
        return 1;
      }
    }
    std::fprintf(stderr,
                 "%s; %d queries on %d threads in %.3fs (%.0f queries/s)\n",
                 output.ToString().c_str(), batch, engine.options().num_threads,
                 elapsed_s, elapsed_s > 0 ? batch / elapsed_s : 0.0);
    const TreeScheduleResult& first = output.items.front().schedule;
    if (format == "json") {
      std::printf("%s\n", TreeScheduleToJson(first).c_str());
    } else if (format == "csv") {
      std::printf("%s", TreeScheduleToCsv(first).c_str());
    } else if (format == "gantt") {
      std::printf("%s", RenderTreeGantt(first).c_str());
    } else if (format == "svg") {
      std::printf("%s", RenderTreeGanttSvg(first).c_str());
    } else {
      std::printf("%s", first.ToString().c_str());
    }
    std::vector<const ScheduleTrace*> item_traces;
    for (const auto& item : output.items) {
      item_traces.push_back(item.trace.get());
    }
    return finish_reports(item_traces) ? 0 : 1;
  }

  auto op_tree_result = OperatorTree::FromPlan(*parsed->plan);
  if (!op_tree_result.ok()) return 1;
  OperatorTree op_tree = std::move(op_tree_result).value();
  auto task_tree = TaskTree::FromOperatorTree(&op_tree);
  if (!task_tree.ok()) return 1;

  CostParams params;
  MachineConfig machine;
  machine.num_sites = sites;
  CostModel model(params, machine.dims);
  auto costs = model.CostAll(op_tree);
  if (!costs.ok()) return 1;
  const OverlapUsageModel usage(eps);

  if (algorithm == "sync") {
    auto result = SynchronousSchedule(op_tree, *task_tree, costs.value(),
                                      params, machine, usage, trace);
    if (!result.ok()) {
      std::fprintf(stderr, "scheduling failed: %s\n",
                   result.status().ToString().c_str());
      return 1;
    }
    std::printf("%s", result->ToString().c_str());
    return finish_reports({}) ? 0 : 1;
  }

  if (algorithm == "list") {
    ListScheduleOptions options;
    options.granularity = f;
    options.trace = trace;
    auto result = ListSchedule(op_tree, *task_tree, costs.value(), params,
                               machine, usage, options);
    if (!result.ok()) {
      std::fprintf(stderr, "scheduling failed: %s\n",
                   result.status().ToString().c_str());
      return 1;
    }
    if (format == "json") {
      std::printf("%s\n", ListScheduleToJson(*result).c_str());
    } else if (format == "csv") {
      std::printf("%s", ListScheduleToCsv(*result).c_str());
    } else if (format == "gantt") {
      std::printf("%s", RenderListGantt(*result).c_str());
    } else if (format == "svg") {
      std::printf("%s", RenderListGanttSvg(*result).c_str());
    } else {
      std::printf("%s", result->ToString().c_str());
      std::printf("%s", result->schedule.ToString().c_str());
    }
    return finish_reports({}) ? 0 : 1;
  }

  TreeScheduleOptions options;
  options.granularity = f;
  options.trace = trace;
  if (algorithm == "malleable") {
    options.policy = ParallelizationPolicy::kMalleable;
  } else if (algorithm != "tree") {
    return Usage(argv[0]);
  }
  auto result = TreeSchedule(op_tree, *task_tree, costs.value(), params,
                             machine, usage, options);
  if (!result.ok()) {
    std::fprintf(stderr, "scheduling failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }

  if (format == "json") {
    std::printf("%s\n", TreeScheduleToJson(*result).c_str());
  } else if (format == "csv") {
    std::printf("%s", TreeScheduleToCsv(*result).c_str());
  } else if (format == "gantt") {
    std::printf("%s", RenderTreeGantt(*result).c_str());
  } else if (format == "svg") {
    std::printf("%s", RenderTreeGanttSvg(*result).c_str());
  } else {
    std::printf("%s", result->ToString().c_str());
    for (const auto& phase : result->phases) {
      std::printf("%s", phase.schedule.ToString().c_str());
    }
  }
  return finish_reports({}) ? 0 : 1;
}
