// sched_cli: schedule a plan described in the plan text format and print
// the schedule (text, Gantt, JSON, or CSV). The downstream-integration
// face of the library: feed it plans from your optimizer, get placements
// back.
//
// Usage:
//   sched_cli <plan-file> [--sites N] [--eps E] [--f F]
//             [--algorithm tree|malleable|sync|list] [--pipeline]
//             [--format text|gantt|svg|json|csv]
//             [--batch N] [--threads K] [--metrics] [--trace-json=FILE]
//             [--optimize] [--no-prune]
//             [--execute] [--calibrate=FILE] [--exec-seed N]
//             [--exec-rows N] [--exec-skew S] [--exec-meter cpu|rows]
//             [--connect HOST:PORT]
//
// --engine is accepted as an alias for --algorithm; `--engine=list`
// selects the barrier-free moldable list scheduler (LISTSCHEDULE).
// `--engine=list --pipeline` additionally turns on intra-task pipelined
// parallelism: producer/consumer operators of one task are rate-matched
// and co-scheduled so consumers start with their producers, guarded to
// never exceed the plain list makespan (src/core/list_schedule.h); with
// --execute it also replays the pipelined edges through bounded queues
// (ExecuteOptions::pipeline_edges).
//
// --optimize runs the scheduler-in-the-loop join-order optimizer on a
// plan file carrying a `graph` stanza instead of a plan line (see
// src/io/plan_text.h): it searches the bushy join-plan space with the
// scheduler's own makespan as the cost function (src/optimizer/) and
// prints the optimizer explain report followed by the winning plan in
// plan-text format (feed it back to sched_cli to see the schedule).
// --threads sets the search workers (the result is byte-identical across
// thread counts), --algorithm tree|list picks the pricing engine, and
// --no-prune disables lower-bound pruning (the exhaustive baseline).
//
// --execute replays the schedule on the real execution backend
// (partitioned hash joins / group-bys over generated data, see
// src/exec/execute_backend.h) and prints the per-site execution report
// after the schedule output. --calibrate=FILE additionally writes the
// versioned JSON calibration report (measured vs predicted per-site
// times, fitted per-dimension scale; src/exec/calibrate.h) to FILE.
// --exec-seed / --exec-rows / --exec-skew control the generated data
// (root seed, per-operator row cap, key skew); --exec-meter picks the
// per-clone meter: `cpu` = real thread CPU time (default), `rows` =
// deterministic rows-processed pseudo-time (byte-stable reports). Both
// flags work with tree, malleable, and list schedules.
//
// With --connect HOST:PORT the plan file (including any @arrival/@timeout
// directive lines, see src/server/sched_service.h) is sent verbatim to a
// running sched_server and the JSON response is printed; all other
// scheduling flags are ignored — the server's configuration applies.
//
// With --batch N the plan is scheduled N times through the batch
// scheduling engine on K worker threads (a serving-loop smoke test:
// reports queries/sec and parallelize-cache hit rate, then prints the
// first schedule in the requested format).
//
// --metrics prints the process metrics registry (counters, cache hit
// rates, latency histogram percentiles) after the schedule output.
// --trace-json=FILE records a per-query trace of every pipeline stage
// (parse, expansion, costing, parallelize, OPERATORSCHEDULE per phase)
// and writes the versioned JSON report of io/trace_export.h to FILE.
//
// Plan file format (see src/io/plan_text.h):
//   relation customer 30000
//   relation orders 90000
//   plan (join orders customer)

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "baseline/synchronous.h"
#include "common/metrics.h"
#include "core/list_schedule.h"
#include "core/tree_schedule.h"
#include "exec/batch_scheduler.h"
#include "exec/calibrate.h"
#include "exec/exec_backend.h"
#include "exec/execute_backend.h"
#include "exec/gantt.h"
#include "exec/trace.h"
#include "io/plan_text.h"
#include "io/schedule_export.h"
#include "io/trace_export.h"
#include "optimizer/optimizer.h"
#include "server/sched_client.h"
#include "workload/experiment.h"

namespace {

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s <plan-file> [--sites N] [--eps E] [--f F]\n"
               "          [--algorithm tree|malleable|sync|list]\n"
               "          [--pipeline]\n"
               "          [--format text|gantt|svg|json|csv]\n"
               "          [--batch N] [--threads K]\n"
               "          [--optimize] [--no-prune]\n"
               "          [--metrics] [--trace-json=FILE]\n"
               "          [--execute] [--calibrate=FILE] [--exec-seed N]\n"
               "          [--exec-rows N] [--exec-skew S]\n"
               "          [--exec-meter cpu|rows]\n"
               "          [--connect HOST:PORT]\n",
               argv0);
  return 2;
}

/// Writes the versioned trace report to `path`; returns false on IO error.
bool WriteTraceReport(const std::string& path,
                      const std::vector<const mrs::ScheduleTrace*>& traces) {
  const std::string report = mrs::ExportTraceReport(
      traces, mrs::MetricsRegistry::Global().Snapshot());
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return false;
  }
  out << report << "\n";
  return out.good();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mrs;
  if (argc < 2) return Usage(argv[0]);

  std::string plan_path = argv[1];
  int sites = 16;
  double eps = 0.5;
  double f = 0.7;
  std::string algorithm = "tree";
  std::string format = "text";
  int batch = 1;
  int threads = 1;
  bool print_metrics = false;
  std::string trace_json_path;
  std::string connect;
  bool execute = false;
  bool pipeline = false;
  bool optimize = false;
  bool opt_prune = true;
  std::string calibrate_path;
  uint64_t exec_seed = 1;
  long long exec_rows = 8192;
  double exec_skew = 0.0;
  std::string exec_meter = "cpu";
  for (int i = 2; i < argc; ++i) {
    auto need_value = [&](const char* flag) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s requires a value\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--sites") == 0) {
      sites = std::atoi(need_value("--sites"));
    } else if (std::strcmp(argv[i], "--eps") == 0) {
      eps = std::atof(need_value("--eps"));
    } else if (std::strcmp(argv[i], "--f") == 0) {
      f = std::atof(need_value("--f"));
    } else if (std::strcmp(argv[i], "--algorithm") == 0) {
      algorithm = need_value("--algorithm");
    } else if (std::strcmp(argv[i], "--engine") == 0) {
      algorithm = need_value("--engine");
    } else if (std::strncmp(argv[i], "--engine=", 9) == 0) {
      algorithm = argv[i] + 9;
    } else if (std::strcmp(argv[i], "--format") == 0) {
      format = need_value("--format");
    } else if (std::strcmp(argv[i], "--batch") == 0) {
      batch = std::atoi(need_value("--batch"));
    } else if (std::strcmp(argv[i], "--threads") == 0) {
      threads = std::atoi(need_value("--threads"));
    } else if (std::strcmp(argv[i], "--connect") == 0) {
      connect = need_value("--connect");
    } else if (std::strcmp(argv[i], "--metrics") == 0) {
      print_metrics = true;
    } else if (std::strcmp(argv[i], "--optimize") == 0) {
      optimize = true;
    } else if (std::strcmp(argv[i], "--no-prune") == 0) {
      opt_prune = false;
    } else if (std::strcmp(argv[i], "--pipeline") == 0) {
      pipeline = true;
    } else if (std::strcmp(argv[i], "--execute") == 0) {
      execute = true;
    } else if (std::strncmp(argv[i], "--calibrate=", 12) == 0) {
      calibrate_path = argv[i] + 12;
    } else if (std::strcmp(argv[i], "--calibrate") == 0) {
      calibrate_path = need_value("--calibrate");
    } else if (std::strcmp(argv[i], "--exec-seed") == 0) {
      exec_seed = std::strtoull(need_value("--exec-seed"), nullptr, 10);
    } else if (std::strcmp(argv[i], "--exec-rows") == 0) {
      exec_rows = std::atoll(need_value("--exec-rows"));
    } else if (std::strcmp(argv[i], "--exec-skew") == 0) {
      exec_skew = std::atof(need_value("--exec-skew"));
    } else if (std::strcmp(argv[i], "--exec-meter") == 0) {
      exec_meter = need_value("--exec-meter");
    } else if (std::strncmp(argv[i], "--trace-json=", 13) == 0) {
      trace_json_path = argv[i] + 13;
    } else if (std::strcmp(argv[i], "--trace-json") == 0) {
      trace_json_path = need_value("--trace-json");
    } else {
      return Usage(argv[0]);
    }
  }
  if (batch < 1 || threads < 1) {
    std::fprintf(stderr, "--batch and --threads must be >= 1\n");
    return 2;
  }
  if (exec_meter != "cpu" && exec_meter != "rows") {
    std::fprintf(stderr, "--exec-meter must be cpu or rows\n");
    return 2;
  }

  const bool tracing = !trace_json_path.empty();
  ScheduleTrace driver_trace;
  driver_trace.set_label("driver");
  ScheduleTrace* trace = tracing ? &driver_trace : nullptr;
  // Trace report + metrics table, shared by every successful exit path.
  auto finish_reports =
      [&](const std::vector<const ScheduleTrace*>& extra) -> bool {
    if (tracing) {
      std::vector<const ScheduleTrace*> traces{&driver_trace};
      traces.insert(traces.end(), extra.begin(), extra.end());
      if (!WriteTraceReport(trace_json_path, traces)) return false;
    }
    if (print_metrics) {
      std::printf("%s",
                  MetricsRegistry::Global().Snapshot().ToString().c_str());
    }
    return true;
  };

  std::ifstream in(plan_path);
  if (!in) {
    std::fprintf(stderr, "cannot open %s\n", plan_path.c_str());
    return 1;
  }
  std::stringstream buffer;
  buffer << in.rdbuf();

  if (!connect.empty()) {
    // Client mode: ship the plan text to a sched_server, print the JSON
    // response. The request may carry @arrival/@timeout directive lines.
    const size_t colon = connect.rfind(':');
    const int port =
        colon == std::string::npos ? 0 : std::atoi(connect.c_str() + colon + 1);
    if (colon == std::string::npos || port <= 0) {
      std::fprintf(stderr, "--connect expects HOST:PORT, got '%s'\n",
                   connect.c_str());
      return 2;
    }
    auto client = SchedClient::ConnectTcp(connect.substr(0, colon), port);
    if (!client.ok()) {
      std::fprintf(stderr, "connect failed: %s\n",
                   client.status().ToString().c_str());
      return 1;
    }
    auto response = client.value().Call(buffer.str());
    if (!response.ok()) {
      std::fprintf(stderr, "request failed: %s\n",
                   response.status().ToString().c_str());
      return 1;
    }
    std::printf("%s\n", response.value().c_str());
    client.value().Close();
    return 0;
  }

  SpanTimer parse_span(trace, "parse");
  auto parsed = ParsePlanText(buffer.str());
  if (!parsed.ok()) {
    std::fprintf(stderr, "parse error: %s\n",
                 parsed.status().ToString().c_str());
    return 1;
  }
  if (parse_span.active()) {
    parse_span.AttrInt("bytes", static_cast<int64_t>(buffer.str().size()));
    parse_span.AttrInt("relations", parsed->catalog->num_relations());
  }
  parse_span.End();

  if (optimize) {
    if (parsed->graph == nullptr) {
      std::fprintf(stderr,
                   "--optimize requires a plan file with a graph stanza "
                   "(e.g. 'graph (a b) (b c)'), got a plan line\n");
      return 2;
    }
    OptimizerOptions opt;
    opt.granularity = f;
    opt.num_threads = threads;
    opt.prune = opt_prune;
    opt.trace = trace;
    if (algorithm == "list") {
      opt.engine = OptimizerEngine::kList;
    } else if (algorithm != "tree") {
      std::fprintf(stderr, "--optimize supports --algorithm tree|list\n");
      return 2;
    }
    CostParams params;
    MachineConfig machine;
    machine.num_sites = sites;
    const OverlapUsageModel usage(eps);
    auto result = OptimizeJoinOrder(*parsed->catalog, *parsed->graph, params,
                                    machine, usage, opt);
    if (!result.ok()) {
      std::fprintf(stderr, "optimize failed: %s\n",
                   result.status().ToString().c_str());
      return 1;
    }
    std::printf("%s", result->Explain().c_str());
    auto plan_text = WritePlanText(*parsed->catalog, *result->plan);
    if (!plan_text.ok()) {
      std::fprintf(stderr, "plan render failed: %s\n",
                   plan_text.status().ToString().c_str());
      return 1;
    }
    std::printf("# winning plan (feed back to sched_cli):\n%s",
                plan_text->c_str());
    return finish_reports({}) ? 0 : 1;
  }
  if (parsed->plan == nullptr) {
    std::fprintf(stderr,
                 "plan file declares a graph stanza; run with --optimize to "
                 "search for a join order\n");
    return 2;
  }

  if (batch > 1 || threads > 1) {
    // Batch mode: push N copies of the plan through the batch scheduling
    // engine and report throughput plus cache effectiveness.
    if (execute || !calibrate_path.empty()) {
      std::fprintf(stderr, "--execute/--calibrate do not support batch mode\n");
      return 2;
    }
    if (algorithm == "sync" || algorithm == "list") {
      std::fprintf(stderr, "--batch supports tree|malleable only\n");
      return 2;
    }
    BatchSchedulerOptions options;
    options.num_threads = threads;
    options.overlap_eps = eps;
    options.tree.granularity = f;
    options.collect_traces = tracing;
    if (algorithm == "malleable") {
      options.tree.policy = ParallelizationPolicy::kMalleable;
    } else if (algorithm != "tree") {
      return Usage(argv[0]);
    }
    CostParams params;
    MachineConfig machine;
    machine.num_sites = sites;
    BatchScheduler engine(params, machine, options);
    std::vector<const PlanTree*> plans(static_cast<size_t>(batch),
                                       parsed->plan.get());
    const auto start = std::chrono::steady_clock::now();
    BatchOutput output = engine.ScheduleAll(plans);
    const double elapsed_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
    for (const auto& item : output.items) {
      if (!item.status.ok()) {
        std::fprintf(stderr, "scheduling failed (plan %d): %s\n", item.index,
                     item.status.ToString().c_str());
        return 1;
      }
    }
    std::fprintf(stderr,
                 "%s; %d queries on %d threads in %.3fs (%.0f queries/s)\n",
                 output.ToString().c_str(), batch, engine.options().num_threads,
                 elapsed_s, elapsed_s > 0 ? batch / elapsed_s : 0.0);
    const TreeScheduleResult& first = output.items.front().schedule;
    if (format == "json") {
      std::printf("%s\n", TreeScheduleToJson(first).c_str());
    } else if (format == "csv") {
      std::printf("%s", TreeScheduleToCsv(first).c_str());
    } else if (format == "gantt") {
      std::printf("%s", RenderTreeGantt(first).c_str());
    } else if (format == "svg") {
      std::printf("%s", RenderTreeGanttSvg(first).c_str());
    } else {
      std::printf("%s", first.ToString().c_str());
    }
    std::vector<const ScheduleTrace*> item_traces;
    for (const auto& item : output.items) {
      item_traces.push_back(item.trace.get());
    }
    return finish_reports(item_traces) ? 0 : 1;
  }

  auto op_tree_result = OperatorTree::FromPlan(*parsed->plan);
  if (!op_tree_result.ok()) return 1;
  OperatorTree op_tree = std::move(op_tree_result).value();
  auto task_tree = TaskTree::FromOperatorTree(&op_tree);
  if (!task_tree.ok()) return 1;

  CostParams params;
  MachineConfig machine;
  machine.num_sites = sites;
  CostModel model(params, machine.dims);
  auto costs = model.CostAll(op_tree);
  if (!costs.ok()) return 1;
  const OverlapUsageModel usage(eps);

  ExecuteOptions exec_options;
  exec_options.data_seed = exec_seed;
  exec_options.skew = exec_skew;
  exec_options.max_rows_per_op = exec_rows;
  exec_options.meter =
      exec_meter == "rows" ? ExecMeter::kDeterministic : ExecMeter::kThreadCpu;
  // Writes the calibration report to --calibrate's FILE and prints a
  // one-line summary (both error metrics) to stderr.
  auto write_calibration = [&](Calibrator& calibrator) -> bool {
    std::ofstream out(calibrate_path);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", calibrate_path.c_str());
      return false;
    }
    out << calibrator.ReportJson() << "\n";
    if (!out.good()) return false;
    std::fprintf(stderr,
                 "calibration: %d plans, %d clone samples; mean rel error "
                 "%.3f unfitted -> %.3f fitted -> %s\n",
                 calibrator.num_plans(), calibrator.num_clone_samples(),
                 calibrator.MeanRelativeError(false),
                 calibrator.MeanRelativeError(true), calibrate_path.c_str());
    return true;
  };

  if (algorithm == "sync") {
    if (execute || !calibrate_path.empty()) {
      std::fprintf(stderr,
                   "--execute/--calibrate support tree|malleable|list only\n");
      return 2;
    }
    auto result = SynchronousSchedule(op_tree, *task_tree, costs.value(),
                                      params, machine, usage, trace);
    if (!result.ok()) {
      std::fprintf(stderr, "scheduling failed: %s\n",
                   result.status().ToString().c_str());
      return 1;
    }
    std::printf("%s", result->ToString().c_str());
    return finish_reports({}) ? 0 : 1;
  }

  if (pipeline && algorithm != "list") {
    std::fprintf(stderr, "--pipeline requires --engine=list\n");
    return 2;
  }
  if (algorithm == "list") {
    ListScheduleOptions options;
    options.granularity = f;
    options.trace = trace;
    options.pipeline = pipeline;
    exec_options.pipeline_edges = pipeline;
    auto result = ListSchedule(op_tree, *task_tree, costs.value(), params,
                               machine, usage, options);
    if (!result.ok()) {
      std::fprintf(stderr, "scheduling failed: %s\n",
                   result.status().ToString().c_str());
      return 1;
    }
    if (format == "json") {
      std::printf("%s\n", ListScheduleToJson(*result).c_str());
    } else if (format == "csv") {
      std::printf("%s", ListScheduleToCsv(*result).c_str());
    } else if (format == "gantt") {
      std::printf("%s", RenderListGantt(*result).c_str());
    } else if (format == "svg") {
      std::printf("%s", RenderListGanttSvg(*result).c_str());
    } else {
      std::printf("%s", result->ToString().c_str());
      std::printf("%s", result->schedule.ToString().c_str());
    }
    if (execute) {
      ExecuteBackend backend(exec_options);
      auto run = backend.Run(result->schedule, ExecOpSpecsFromTree(op_tree));
      if (!run.ok()) {
        std::fprintf(stderr, "execution failed: %s\n",
                     run.status().ToString().c_str());
        return 1;
      }
      std::printf("%s", ExplainExecution(*run, machine, /*wall=*/true).c_str());
    }
    if (!calibrate_path.empty()) {
      Calibrator calibrator(machine.dims, usage, exec_options);
      if (Status s = calibrator.AddSchedule(plan_path, result->schedule,
                                            ExecOpSpecsFromTree(op_tree));
          !s.ok()) {
        std::fprintf(stderr, "calibration failed: %s\n", s.ToString().c_str());
        return 1;
      }
      if (!write_calibration(calibrator)) return 1;
    }
    return finish_reports({}) ? 0 : 1;
  }

  TreeScheduleOptions options;
  options.granularity = f;
  options.trace = trace;
  if (algorithm == "malleable") {
    options.policy = ParallelizationPolicy::kMalleable;
  } else if (algorithm != "tree") {
    return Usage(argv[0]);
  }
  auto result = TreeSchedule(op_tree, *task_tree, costs.value(), params,
                             machine, usage, options);
  if (!result.ok()) {
    std::fprintf(stderr, "scheduling failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }

  if (format == "json") {
    std::printf("%s\n", TreeScheduleToJson(*result).c_str());
  } else if (format == "csv") {
    std::printf("%s", TreeScheduleToCsv(*result).c_str());
  } else if (format == "gantt") {
    std::printf("%s", RenderTreeGantt(*result).c_str());
  } else if (format == "svg") {
    std::printf("%s", RenderTreeGanttSvg(*result).c_str());
  } else {
    std::printf("%s", result->ToString().c_str());
    for (const auto& phase : result->phases) {
      std::printf("%s", phase.schedule.ToString().c_str());
    }
  }
  if (execute) {
    ExecuteBackend backend(exec_options);
    auto runs = backend.RunTree(*result, ExecOpSpecsFromTree(op_tree));
    if (!runs.ok()) {
      std::fprintf(stderr, "execution failed: %s\n",
                   runs.status().ToString().c_str());
      return 1;
    }
    for (size_t p = 0; p < runs->size(); ++p) {
      std::printf("phase %zu:\n%s", p,
                  ExplainExecution((*runs)[p], machine, /*wall=*/true).c_str());
    }
  }
  if (!calibrate_path.empty()) {
    Calibrator calibrator(machine.dims, usage, exec_options);
    if (Status s = calibrator.AddTreePlan(plan_path, *result,
                                          ExecOpSpecsFromTree(op_tree));
        !s.ok()) {
      std::fprintf(stderr, "calibration failed: %s\n", s.ToString().c_str());
      return 1;
    }
    if (!write_calibration(calibrator)) return 1;
  }
  return finish_reports({}) ? 0 : 1;
}
