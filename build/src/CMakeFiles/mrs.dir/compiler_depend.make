# Empty compiler generated dependencies file for mrs.
# This may be replaced when dependencies are built.
