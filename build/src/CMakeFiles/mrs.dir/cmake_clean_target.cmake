file(REMOVE_RECURSE
  "libmrs.a"
)
