
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baseline/hong.cc" "src/CMakeFiles/mrs.dir/baseline/hong.cc.o" "gcc" "src/CMakeFiles/mrs.dir/baseline/hong.cc.o.d"
  "/root/repo/src/baseline/synchronous.cc" "src/CMakeFiles/mrs.dir/baseline/synchronous.cc.o" "gcc" "src/CMakeFiles/mrs.dir/baseline/synchronous.cc.o.d"
  "/root/repo/src/catalog/catalog.cc" "src/CMakeFiles/mrs.dir/catalog/catalog.cc.o" "gcc" "src/CMakeFiles/mrs.dir/catalog/catalog.cc.o.d"
  "/root/repo/src/catalog/relation.cc" "src/CMakeFiles/mrs.dir/catalog/relation.cc.o" "gcc" "src/CMakeFiles/mrs.dir/catalog/relation.cc.o.d"
  "/root/repo/src/common/logging.cc" "src/CMakeFiles/mrs.dir/common/logging.cc.o" "gcc" "src/CMakeFiles/mrs.dir/common/logging.cc.o.d"
  "/root/repo/src/common/rng.cc" "src/CMakeFiles/mrs.dir/common/rng.cc.o" "gcc" "src/CMakeFiles/mrs.dir/common/rng.cc.o.d"
  "/root/repo/src/common/stats.cc" "src/CMakeFiles/mrs.dir/common/stats.cc.o" "gcc" "src/CMakeFiles/mrs.dir/common/stats.cc.o.d"
  "/root/repo/src/common/status.cc" "src/CMakeFiles/mrs.dir/common/status.cc.o" "gcc" "src/CMakeFiles/mrs.dir/common/status.cc.o.d"
  "/root/repo/src/common/str_util.cc" "src/CMakeFiles/mrs.dir/common/str_util.cc.o" "gcc" "src/CMakeFiles/mrs.dir/common/str_util.cc.o.d"
  "/root/repo/src/common/table_printer.cc" "src/CMakeFiles/mrs.dir/common/table_printer.cc.o" "gcc" "src/CMakeFiles/mrs.dir/common/table_printer.cc.o.d"
  "/root/repo/src/core/exhaustive.cc" "src/CMakeFiles/mrs.dir/core/exhaustive.cc.o" "gcc" "src/CMakeFiles/mrs.dir/core/exhaustive.cc.o.d"
  "/root/repo/src/core/malleable.cc" "src/CMakeFiles/mrs.dir/core/malleable.cc.o" "gcc" "src/CMakeFiles/mrs.dir/core/malleable.cc.o.d"
  "/root/repo/src/core/memory_aware.cc" "src/CMakeFiles/mrs.dir/core/memory_aware.cc.o" "gcc" "src/CMakeFiles/mrs.dir/core/memory_aware.cc.o.d"
  "/root/repo/src/core/operator_schedule.cc" "src/CMakeFiles/mrs.dir/core/operator_schedule.cc.o" "gcc" "src/CMakeFiles/mrs.dir/core/operator_schedule.cc.o.d"
  "/root/repo/src/core/opt_bound.cc" "src/CMakeFiles/mrs.dir/core/opt_bound.cc.o" "gcc" "src/CMakeFiles/mrs.dir/core/opt_bound.cc.o.d"
  "/root/repo/src/core/preemptability.cc" "src/CMakeFiles/mrs.dir/core/preemptability.cc.o" "gcc" "src/CMakeFiles/mrs.dir/core/preemptability.cc.o.d"
  "/root/repo/src/core/schedule.cc" "src/CMakeFiles/mrs.dir/core/schedule.cc.o" "gcc" "src/CMakeFiles/mrs.dir/core/schedule.cc.o.d"
  "/root/repo/src/core/tree_schedule.cc" "src/CMakeFiles/mrs.dir/core/tree_schedule.cc.o" "gcc" "src/CMakeFiles/mrs.dir/core/tree_schedule.cc.o.d"
  "/root/repo/src/cost/cost_model.cc" "src/CMakeFiles/mrs.dir/cost/cost_model.cc.o" "gcc" "src/CMakeFiles/mrs.dir/cost/cost_model.cc.o.d"
  "/root/repo/src/cost/cost_params.cc" "src/CMakeFiles/mrs.dir/cost/cost_params.cc.o" "gcc" "src/CMakeFiles/mrs.dir/cost/cost_params.cc.o.d"
  "/root/repo/src/cost/parallelize.cc" "src/CMakeFiles/mrs.dir/cost/parallelize.cc.o" "gcc" "src/CMakeFiles/mrs.dir/cost/parallelize.cc.o.d"
  "/root/repo/src/exec/explain.cc" "src/CMakeFiles/mrs.dir/exec/explain.cc.o" "gcc" "src/CMakeFiles/mrs.dir/exec/explain.cc.o.d"
  "/root/repo/src/exec/fluid_simulator.cc" "src/CMakeFiles/mrs.dir/exec/fluid_simulator.cc.o" "gcc" "src/CMakeFiles/mrs.dir/exec/fluid_simulator.cc.o.d"
  "/root/repo/src/exec/gantt.cc" "src/CMakeFiles/mrs.dir/exec/gantt.cc.o" "gcc" "src/CMakeFiles/mrs.dir/exec/gantt.cc.o.d"
  "/root/repo/src/io/plan_text.cc" "src/CMakeFiles/mrs.dir/io/plan_text.cc.o" "gcc" "src/CMakeFiles/mrs.dir/io/plan_text.cc.o.d"
  "/root/repo/src/io/schedule_export.cc" "src/CMakeFiles/mrs.dir/io/schedule_export.cc.o" "gcc" "src/CMakeFiles/mrs.dir/io/schedule_export.cc.o.d"
  "/root/repo/src/plan/operator_tree.cc" "src/CMakeFiles/mrs.dir/plan/operator_tree.cc.o" "gcc" "src/CMakeFiles/mrs.dir/plan/operator_tree.cc.o.d"
  "/root/repo/src/plan/plan_printer.cc" "src/CMakeFiles/mrs.dir/plan/plan_printer.cc.o" "gcc" "src/CMakeFiles/mrs.dir/plan/plan_printer.cc.o.d"
  "/root/repo/src/plan/plan_tree.cc" "src/CMakeFiles/mrs.dir/plan/plan_tree.cc.o" "gcc" "src/CMakeFiles/mrs.dir/plan/plan_tree.cc.o.d"
  "/root/repo/src/plan/query_graph.cc" "src/CMakeFiles/mrs.dir/plan/query_graph.cc.o" "gcc" "src/CMakeFiles/mrs.dir/plan/query_graph.cc.o.d"
  "/root/repo/src/plan/task_tree.cc" "src/CMakeFiles/mrs.dir/plan/task_tree.cc.o" "gcc" "src/CMakeFiles/mrs.dir/plan/task_tree.cc.o.d"
  "/root/repo/src/resource/machine.cc" "src/CMakeFiles/mrs.dir/resource/machine.cc.o" "gcc" "src/CMakeFiles/mrs.dir/resource/machine.cc.o.d"
  "/root/repo/src/resource/usage_model.cc" "src/CMakeFiles/mrs.dir/resource/usage_model.cc.o" "gcc" "src/CMakeFiles/mrs.dir/resource/usage_model.cc.o.d"
  "/root/repo/src/resource/work_vector.cc" "src/CMakeFiles/mrs.dir/resource/work_vector.cc.o" "gcc" "src/CMakeFiles/mrs.dir/resource/work_vector.cc.o.d"
  "/root/repo/src/workload/experiment.cc" "src/CMakeFiles/mrs.dir/workload/experiment.cc.o" "gcc" "src/CMakeFiles/mrs.dir/workload/experiment.cc.o.d"
  "/root/repo/src/workload/generator.cc" "src/CMakeFiles/mrs.dir/workload/generator.cc.o" "gcc" "src/CMakeFiles/mrs.dir/workload/generator.cc.o.d"
  "/root/repo/src/workload/skew.cc" "src/CMakeFiles/mrs.dir/workload/skew.cc.o" "gcc" "src/CMakeFiles/mrs.dir/workload/skew.cc.o.d"
  "/root/repo/src/workload/tpch_like.cc" "src/CMakeFiles/mrs.dir/workload/tpch_like.cc.o" "gcc" "src/CMakeFiles/mrs.dir/workload/tpch_like.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
