
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/baseline/hong_test.cc" "tests/CMakeFiles/mrs_tests.dir/baseline/hong_test.cc.o" "gcc" "tests/CMakeFiles/mrs_tests.dir/baseline/hong_test.cc.o.d"
  "/root/repo/tests/baseline/synchronous_test.cc" "tests/CMakeFiles/mrs_tests.dir/baseline/synchronous_test.cc.o" "gcc" "tests/CMakeFiles/mrs_tests.dir/baseline/synchronous_test.cc.o.d"
  "/root/repo/tests/catalog/catalog_test.cc" "tests/CMakeFiles/mrs_tests.dir/catalog/catalog_test.cc.o" "gcc" "tests/CMakeFiles/mrs_tests.dir/catalog/catalog_test.cc.o.d"
  "/root/repo/tests/common/logging_test.cc" "tests/CMakeFiles/mrs_tests.dir/common/logging_test.cc.o" "gcc" "tests/CMakeFiles/mrs_tests.dir/common/logging_test.cc.o.d"
  "/root/repo/tests/common/rng_test.cc" "tests/CMakeFiles/mrs_tests.dir/common/rng_test.cc.o" "gcc" "tests/CMakeFiles/mrs_tests.dir/common/rng_test.cc.o.d"
  "/root/repo/tests/common/stats_test.cc" "tests/CMakeFiles/mrs_tests.dir/common/stats_test.cc.o" "gcc" "tests/CMakeFiles/mrs_tests.dir/common/stats_test.cc.o.d"
  "/root/repo/tests/common/status_test.cc" "tests/CMakeFiles/mrs_tests.dir/common/status_test.cc.o" "gcc" "tests/CMakeFiles/mrs_tests.dir/common/status_test.cc.o.d"
  "/root/repo/tests/common/str_util_test.cc" "tests/CMakeFiles/mrs_tests.dir/common/str_util_test.cc.o" "gcc" "tests/CMakeFiles/mrs_tests.dir/common/str_util_test.cc.o.d"
  "/root/repo/tests/core/exhaustive_test.cc" "tests/CMakeFiles/mrs_tests.dir/core/exhaustive_test.cc.o" "gcc" "tests/CMakeFiles/mrs_tests.dir/core/exhaustive_test.cc.o.d"
  "/root/repo/tests/core/malleable_test.cc" "tests/CMakeFiles/mrs_tests.dir/core/malleable_test.cc.o" "gcc" "tests/CMakeFiles/mrs_tests.dir/core/malleable_test.cc.o.d"
  "/root/repo/tests/core/memory_aware_test.cc" "tests/CMakeFiles/mrs_tests.dir/core/memory_aware_test.cc.o" "gcc" "tests/CMakeFiles/mrs_tests.dir/core/memory_aware_test.cc.o.d"
  "/root/repo/tests/core/operator_schedule_test.cc" "tests/CMakeFiles/mrs_tests.dir/core/operator_schedule_test.cc.o" "gcc" "tests/CMakeFiles/mrs_tests.dir/core/operator_schedule_test.cc.o.d"
  "/root/repo/tests/core/opt_bound_test.cc" "tests/CMakeFiles/mrs_tests.dir/core/opt_bound_test.cc.o" "gcc" "tests/CMakeFiles/mrs_tests.dir/core/opt_bound_test.cc.o.d"
  "/root/repo/tests/core/preemptability_test.cc" "tests/CMakeFiles/mrs_tests.dir/core/preemptability_test.cc.o" "gcc" "tests/CMakeFiles/mrs_tests.dir/core/preemptability_test.cc.o.d"
  "/root/repo/tests/core/schedule_test.cc" "tests/CMakeFiles/mrs_tests.dir/core/schedule_test.cc.o" "gcc" "tests/CMakeFiles/mrs_tests.dir/core/schedule_test.cc.o.d"
  "/root/repo/tests/core/tree_schedule_test.cc" "tests/CMakeFiles/mrs_tests.dir/core/tree_schedule_test.cc.o" "gcc" "tests/CMakeFiles/mrs_tests.dir/core/tree_schedule_test.cc.o.d"
  "/root/repo/tests/cost/cost_model_test.cc" "tests/CMakeFiles/mrs_tests.dir/cost/cost_model_test.cc.o" "gcc" "tests/CMakeFiles/mrs_tests.dir/cost/cost_model_test.cc.o.d"
  "/root/repo/tests/cost/multi_disk_test.cc" "tests/CMakeFiles/mrs_tests.dir/cost/multi_disk_test.cc.o" "gcc" "tests/CMakeFiles/mrs_tests.dir/cost/multi_disk_test.cc.o.d"
  "/root/repo/tests/cost/parallelize_test.cc" "tests/CMakeFiles/mrs_tests.dir/cost/parallelize_test.cc.o" "gcc" "tests/CMakeFiles/mrs_tests.dir/cost/parallelize_test.cc.o.d"
  "/root/repo/tests/exec/explain_test.cc" "tests/CMakeFiles/mrs_tests.dir/exec/explain_test.cc.o" "gcc" "tests/CMakeFiles/mrs_tests.dir/exec/explain_test.cc.o.d"
  "/root/repo/tests/exec/fluid_simulator_test.cc" "tests/CMakeFiles/mrs_tests.dir/exec/fluid_simulator_test.cc.o" "gcc" "tests/CMakeFiles/mrs_tests.dir/exec/fluid_simulator_test.cc.o.d"
  "/root/repo/tests/exec/gantt_test.cc" "tests/CMakeFiles/mrs_tests.dir/exec/gantt_test.cc.o" "gcc" "tests/CMakeFiles/mrs_tests.dir/exec/gantt_test.cc.o.d"
  "/root/repo/tests/integration/bounds_property_test.cc" "tests/CMakeFiles/mrs_tests.dir/integration/bounds_property_test.cc.o" "gcc" "tests/CMakeFiles/mrs_tests.dir/integration/bounds_property_test.cc.o.d"
  "/root/repo/tests/integration/end_to_end_test.cc" "tests/CMakeFiles/mrs_tests.dir/integration/end_to_end_test.cc.o" "gcc" "tests/CMakeFiles/mrs_tests.dir/integration/end_to_end_test.cc.o.d"
  "/root/repo/tests/integration/model_property_test.cc" "tests/CMakeFiles/mrs_tests.dir/integration/model_property_test.cc.o" "gcc" "tests/CMakeFiles/mrs_tests.dir/integration/model_property_test.cc.o.d"
  "/root/repo/tests/integration/quality_property_test.cc" "tests/CMakeFiles/mrs_tests.dir/integration/quality_property_test.cc.o" "gcc" "tests/CMakeFiles/mrs_tests.dir/integration/quality_property_test.cc.o.d"
  "/root/repo/tests/integration/regression_test.cc" "tests/CMakeFiles/mrs_tests.dir/integration/regression_test.cc.o" "gcc" "tests/CMakeFiles/mrs_tests.dir/integration/regression_test.cc.o.d"
  "/root/repo/tests/io/plan_text_test.cc" "tests/CMakeFiles/mrs_tests.dir/io/plan_text_test.cc.o" "gcc" "tests/CMakeFiles/mrs_tests.dir/io/plan_text_test.cc.o.d"
  "/root/repo/tests/io/schedule_export_test.cc" "tests/CMakeFiles/mrs_tests.dir/io/schedule_export_test.cc.o" "gcc" "tests/CMakeFiles/mrs_tests.dir/io/schedule_export_test.cc.o.d"
  "/root/repo/tests/plan/operator_tree_test.cc" "tests/CMakeFiles/mrs_tests.dir/plan/operator_tree_test.cc.o" "gcc" "tests/CMakeFiles/mrs_tests.dir/plan/operator_tree_test.cc.o.d"
  "/root/repo/tests/plan/plan_printer_test.cc" "tests/CMakeFiles/mrs_tests.dir/plan/plan_printer_test.cc.o" "gcc" "tests/CMakeFiles/mrs_tests.dir/plan/plan_printer_test.cc.o.d"
  "/root/repo/tests/plan/plan_tree_test.cc" "tests/CMakeFiles/mrs_tests.dir/plan/plan_tree_test.cc.o" "gcc" "tests/CMakeFiles/mrs_tests.dir/plan/plan_tree_test.cc.o.d"
  "/root/repo/tests/plan/query_graph_test.cc" "tests/CMakeFiles/mrs_tests.dir/plan/query_graph_test.cc.o" "gcc" "tests/CMakeFiles/mrs_tests.dir/plan/query_graph_test.cc.o.d"
  "/root/repo/tests/plan/task_tree_test.cc" "tests/CMakeFiles/mrs_tests.dir/plan/task_tree_test.cc.o" "gcc" "tests/CMakeFiles/mrs_tests.dir/plan/task_tree_test.cc.o.d"
  "/root/repo/tests/plan/unary_ops_test.cc" "tests/CMakeFiles/mrs_tests.dir/plan/unary_ops_test.cc.o" "gcc" "tests/CMakeFiles/mrs_tests.dir/plan/unary_ops_test.cc.o.d"
  "/root/repo/tests/resource/machine_test.cc" "tests/CMakeFiles/mrs_tests.dir/resource/machine_test.cc.o" "gcc" "tests/CMakeFiles/mrs_tests.dir/resource/machine_test.cc.o.d"
  "/root/repo/tests/resource/usage_model_test.cc" "tests/CMakeFiles/mrs_tests.dir/resource/usage_model_test.cc.o" "gcc" "tests/CMakeFiles/mrs_tests.dir/resource/usage_model_test.cc.o.d"
  "/root/repo/tests/resource/work_vector_test.cc" "tests/CMakeFiles/mrs_tests.dir/resource/work_vector_test.cc.o" "gcc" "tests/CMakeFiles/mrs_tests.dir/resource/work_vector_test.cc.o.d"
  "/root/repo/tests/workload/experiment_test.cc" "tests/CMakeFiles/mrs_tests.dir/workload/experiment_test.cc.o" "gcc" "tests/CMakeFiles/mrs_tests.dir/workload/experiment_test.cc.o.d"
  "/root/repo/tests/workload/generator_test.cc" "tests/CMakeFiles/mrs_tests.dir/workload/generator_test.cc.o" "gcc" "tests/CMakeFiles/mrs_tests.dir/workload/generator_test.cc.o.d"
  "/root/repo/tests/workload/skew_test.cc" "tests/CMakeFiles/mrs_tests.dir/workload/skew_test.cc.o" "gcc" "tests/CMakeFiles/mrs_tests.dir/workload/skew_test.cc.o.d"
  "/root/repo/tests/workload/tpch_like_test.cc" "tests/CMakeFiles/mrs_tests.dir/workload/tpch_like_test.cc.o" "gcc" "tests/CMakeFiles/mrs_tests.dir/workload/tpch_like_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/mrs.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
