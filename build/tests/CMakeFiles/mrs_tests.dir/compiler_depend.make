# Empty compiler generated dependencies file for mrs_tests.
# This may be replaced when dependencies are built.
