file(REMOVE_RECURSE
  "CMakeFiles/malleable_demo.dir/malleable_demo.cpp.o"
  "CMakeFiles/malleable_demo.dir/malleable_demo.cpp.o.d"
  "malleable_demo"
  "malleable_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/malleable_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
