# Empty compiler generated dependencies file for malleable_demo.
# This may be replaced when dependencies are built.
