file(REMOVE_RECURSE
  "CMakeFiles/sched_cli.dir/sched_cli.cpp.o"
  "CMakeFiles/sched_cli.dir/sched_cli.cpp.o.d"
  "sched_cli"
  "sched_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sched_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
