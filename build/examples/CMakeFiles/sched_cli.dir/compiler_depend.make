# Empty compiler generated dependencies file for sched_cli.
# This may be replaced when dependencies are built.
