# Empty compiler generated dependencies file for bushy_join_demo.
# This may be replaced when dependencies are built.
