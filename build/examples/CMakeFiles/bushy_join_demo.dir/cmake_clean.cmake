file(REMOVE_RECURSE
  "CMakeFiles/bushy_join_demo.dir/bushy_join_demo.cpp.o"
  "CMakeFiles/bushy_join_demo.dir/bushy_join_demo.cpp.o.d"
  "bushy_join_demo"
  "bushy_join_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bushy_join_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
