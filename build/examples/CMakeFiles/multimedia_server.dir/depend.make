# Empty dependencies file for multimedia_server.
# This may be replaced when dependencies are built.
