file(REMOVE_RECURSE
  "CMakeFiles/multimedia_server.dir/multimedia_server.cpp.o"
  "CMakeFiles/multimedia_server.dir/multimedia_server.cpp.o.d"
  "multimedia_server"
  "multimedia_server.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multimedia_server.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
