file(REMOVE_RECURSE
  "CMakeFiles/memory_pressure_demo.dir/memory_pressure_demo.cpp.o"
  "CMakeFiles/memory_pressure_demo.dir/memory_pressure_demo.cpp.o.d"
  "memory_pressure_demo"
  "memory_pressure_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/memory_pressure_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
