file(REMOVE_RECURSE
  "CMakeFiles/ablation_malleable.dir/ablation_malleable.cc.o"
  "CMakeFiles/ablation_malleable.dir/ablation_malleable.cc.o.d"
  "CMakeFiles/ablation_malleable.dir/bench_common.cc.o"
  "CMakeFiles/ablation_malleable.dir/bench_common.cc.o.d"
  "ablation_malleable"
  "ablation_malleable.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_malleable.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
