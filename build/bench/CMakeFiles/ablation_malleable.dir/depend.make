# Empty dependencies file for ablation_malleable.
# This may be replaced when dependencies are built.
