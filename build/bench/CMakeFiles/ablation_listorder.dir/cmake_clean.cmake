file(REMOVE_RECURSE
  "CMakeFiles/ablation_listorder.dir/ablation_listorder.cc.o"
  "CMakeFiles/ablation_listorder.dir/ablation_listorder.cc.o.d"
  "CMakeFiles/ablation_listorder.dir/bench_common.cc.o"
  "CMakeFiles/ablation_listorder.dir/bench_common.cc.o.d"
  "ablation_listorder"
  "ablation_listorder.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_listorder.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
