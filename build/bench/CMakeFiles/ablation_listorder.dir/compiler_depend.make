# Empty compiler generated dependencies file for ablation_listorder.
# This may be replaced when dependencies are built.
