# Empty dependencies file for sim_agreement.
# This may be replaced when dependencies are built.
