file(REMOVE_RECURSE
  "CMakeFiles/sim_agreement.dir/bench_common.cc.o"
  "CMakeFiles/sim_agreement.dir/bench_common.cc.o.d"
  "CMakeFiles/sim_agreement.dir/sim_agreement.cc.o"
  "CMakeFiles/sim_agreement.dir/sim_agreement.cc.o.d"
  "sim_agreement"
  "sim_agreement.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_agreement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
