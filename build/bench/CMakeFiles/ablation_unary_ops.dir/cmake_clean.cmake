file(REMOVE_RECURSE
  "CMakeFiles/ablation_unary_ops.dir/ablation_unary_ops.cc.o"
  "CMakeFiles/ablation_unary_ops.dir/ablation_unary_ops.cc.o.d"
  "CMakeFiles/ablation_unary_ops.dir/bench_common.cc.o"
  "CMakeFiles/ablation_unary_ops.dir/bench_common.cc.o.d"
  "ablation_unary_ops"
  "ablation_unary_ops.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_unary_ops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
