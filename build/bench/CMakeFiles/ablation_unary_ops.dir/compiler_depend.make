# Empty compiler generated dependencies file for ablation_unary_ops.
# This may be replaced when dependencies are built.
