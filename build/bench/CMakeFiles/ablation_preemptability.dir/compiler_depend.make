# Empty compiler generated dependencies file for ablation_preemptability.
# This may be replaced when dependencies are built.
