file(REMOVE_RECURSE
  "CMakeFiles/ablation_preemptability.dir/ablation_preemptability.cc.o"
  "CMakeFiles/ablation_preemptability.dir/ablation_preemptability.cc.o.d"
  "CMakeFiles/ablation_preemptability.dir/bench_common.cc.o"
  "CMakeFiles/ablation_preemptability.dir/bench_common.cc.o.d"
  "ablation_preemptability"
  "ablation_preemptability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_preemptability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
