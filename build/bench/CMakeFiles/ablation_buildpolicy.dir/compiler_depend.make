# Empty compiler generated dependencies file for ablation_buildpolicy.
# This may be replaced when dependencies are built.
