file(REMOVE_RECURSE
  "CMakeFiles/ablation_buildpolicy.dir/ablation_buildpolicy.cc.o"
  "CMakeFiles/ablation_buildpolicy.dir/ablation_buildpolicy.cc.o.d"
  "CMakeFiles/ablation_buildpolicy.dir/bench_common.cc.o"
  "CMakeFiles/ablation_buildpolicy.dir/bench_common.cc.o.d"
  "ablation_buildpolicy"
  "ablation_buildpolicy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_buildpolicy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
