# Empty compiler generated dependencies file for ablation_disks.
# This may be replaced when dependencies are built.
