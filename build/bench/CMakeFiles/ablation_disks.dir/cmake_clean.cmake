file(REMOVE_RECURSE
  "CMakeFiles/ablation_disks.dir/ablation_disks.cc.o"
  "CMakeFiles/ablation_disks.dir/ablation_disks.cc.o.d"
  "CMakeFiles/ablation_disks.dir/bench_common.cc.o"
  "CMakeFiles/ablation_disks.dir/bench_common.cc.o.d"
  "ablation_disks"
  "ablation_disks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_disks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
