# Empty dependencies file for fig5a_granularity.
# This may be replaced when dependencies are built.
