file(REMOVE_RECURSE
  "CMakeFiles/fig5a_granularity.dir/bench_common.cc.o"
  "CMakeFiles/fig5a_granularity.dir/bench_common.cc.o.d"
  "CMakeFiles/fig5a_granularity.dir/fig5a_granularity.cc.o"
  "CMakeFiles/fig5a_granularity.dir/fig5a_granularity.cc.o.d"
  "fig5a_granularity"
  "fig5a_granularity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5a_granularity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
