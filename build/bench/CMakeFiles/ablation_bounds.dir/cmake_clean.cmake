file(REMOVE_RECURSE
  "CMakeFiles/ablation_bounds.dir/ablation_bounds.cc.o"
  "CMakeFiles/ablation_bounds.dir/ablation_bounds.cc.o.d"
  "CMakeFiles/ablation_bounds.dir/bench_common.cc.o"
  "CMakeFiles/ablation_bounds.dir/bench_common.cc.o.d"
  "ablation_bounds"
  "ablation_bounds.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_bounds.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
