file(REMOVE_RECURSE
  "CMakeFiles/fig6a_query_size.dir/bench_common.cc.o"
  "CMakeFiles/fig6a_query_size.dir/bench_common.cc.o.d"
  "CMakeFiles/fig6a_query_size.dir/fig6a_query_size.cc.o"
  "CMakeFiles/fig6a_query_size.dir/fig6a_query_size.cc.o.d"
  "fig6a_query_size"
  "fig6a_query_size.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6a_query_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
