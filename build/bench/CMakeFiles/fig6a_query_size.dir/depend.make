# Empty dependencies file for fig6a_query_size.
# This may be replaced when dependencies are built.
