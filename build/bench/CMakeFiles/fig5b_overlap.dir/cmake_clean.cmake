file(REMOVE_RECURSE
  "CMakeFiles/fig5b_overlap.dir/bench_common.cc.o"
  "CMakeFiles/fig5b_overlap.dir/bench_common.cc.o.d"
  "CMakeFiles/fig5b_overlap.dir/fig5b_overlap.cc.o"
  "CMakeFiles/fig5b_overlap.dir/fig5b_overlap.cc.o.d"
  "fig5b_overlap"
  "fig5b_overlap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5b_overlap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
