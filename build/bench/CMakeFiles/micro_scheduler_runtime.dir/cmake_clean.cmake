file(REMOVE_RECURSE
  "CMakeFiles/micro_scheduler_runtime.dir/micro_scheduler_runtime.cc.o"
  "CMakeFiles/micro_scheduler_runtime.dir/micro_scheduler_runtime.cc.o.d"
  "micro_scheduler_runtime"
  "micro_scheduler_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_scheduler_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
