# Empty dependencies file for micro_scheduler_runtime.
# This may be replaced when dependencies are built.
