# Empty dependencies file for fig6b_optbound.
# This may be replaced when dependencies are built.
