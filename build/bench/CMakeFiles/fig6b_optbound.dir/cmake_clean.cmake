file(REMOVE_RECURSE
  "CMakeFiles/fig6b_optbound.dir/bench_common.cc.o"
  "CMakeFiles/fig6b_optbound.dir/bench_common.cc.o.d"
  "CMakeFiles/fig6b_optbound.dir/fig6b_optbound.cc.o"
  "CMakeFiles/fig6b_optbound.dir/fig6b_optbound.cc.o.d"
  "fig6b_optbound"
  "fig6b_optbound.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6b_optbound.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
