#include "baseline/hong.h"

#include <algorithm>
#include <unordered_map>

#include "common/logging.h"
#include "common/str_util.h"
#include "core/operator_schedule.h"
#include "cost/parallelize.h"
#include "exec/trace.h"

namespace mrs {

namespace {

struct TaskProfile {
  int task_id = -1;
  double cpu = 0.0;
  double disk = 0.0;
  double total = 0.0;
  bool io_bound = false;
};

}  // namespace

std::string HongResult::ToString() const {
  std::string out = StrFormat("Hong(response=%.2fms, %zu rounds)\n",
                              response_time, rounds.size());
  for (const auto& r : rounds) {
    std::vector<std::string> ids;
    ids.reserve(r.tasks.size());
    for (int t : r.tasks) ids.push_back(StrFormat("T%d", t));
    out += StrFormat("  phase %d: {%s} makespan=%.2fms\n", r.phase,
                     StrJoin(ids, ", ").c_str(), r.makespan);
  }
  return out;
}

Result<HongResult> HongSchedule(const OperatorTree& op_tree,
                                const TaskTree& task_tree,
                                const std::vector<OperatorCost>& costs,
                                const CostParams& params,
                                const MachineConfig& machine,
                                const OverlapUsageModel& usage,
                                TraceSink* trace) {
  if (static_cast<int>(costs.size()) != op_tree.num_ops()) {
    return Status::InvalidArgument(
        StrFormat("costs size %zu != %d operators", costs.size(),
                  op_tree.num_ops()));
  }
  MachineConfig config = machine;
  MRS_RETURN_IF_ERROR(config.Validate());
  MRS_RETURN_IF_ERROR(params.Validate());
  SpanTimer span(trace, "hong_schedule");

  HongResult result;
  // Homes of blocking producers scheduled in earlier rounds.
  std::unordered_map<int, std::vector<int>> homes;

  for (int k = 0; k < task_tree.num_phases(); ++k) {
    // Profile the phase's tasks.
    std::vector<TaskProfile> profiles;
    for (int tid : task_tree.phase(k)) {
      TaskProfile p;
      p.task_id = tid;
      for (int oid : task_tree.task(tid).ops) {
        const OperatorCost& c = costs[static_cast<size_t>(oid)];
        p.cpu += c.processing[kCpuDim];
        for (size_t i = 0; i < c.processing.dim(); ++i) {
          if (i != kCpuDim && i != kNetDim) p.disk += c.processing[i];
        }
        p.total += c.ProcessingArea() + params.TransferMs(c.data_bytes);
      }
      p.io_bound = p.disk > p.cpu;
      profiles.push_back(p);
    }
    // Largest-first within each class.
    std::vector<TaskProfile> io;
    std::vector<TaskProfile> cpu;
    for (const auto& p : profiles) (p.io_bound ? io : cpu).push_back(p);
    auto by_total = [](const TaskProfile& a, const TaskProfile& b) {
      return a.total > b.total;
    };
    std::sort(io.begin(), io.end(), by_total);
    std::sort(cpu.begin(), cpu.end(), by_total);

    // Greedy pairing; leftovers run alone.
    std::vector<std::vector<int>> rounds;
    size_t i = 0;
    size_t c = 0;
    while (i < io.size() && c < cpu.size()) {
      rounds.push_back({io[i++].task_id, cpu[c++].task_id});
    }
    while (i < io.size()) rounds.push_back({io[i++].task_id});
    while (c < cpu.size()) rounds.push_back({cpu[c++].task_id});

    // Execute the rounds back to back.
    for (const auto& round_tasks : rounds) {
      std::vector<ParallelizedOp> ops;
      for (int tid : round_tasks) {
        for (int oid : task_tree.task(tid).ops) {
          const PhysicalOp& op = op_tree.op(oid);
          const OperatorCost& cost = costs[static_cast<size_t>(oid)];
          if (op.blocking_input >= 0) {
            auto it = homes.find(op.blocking_input);
            if (it == homes.end()) {
              return Status::Internal(StrFormat(
                  "op%d scheduled before its blocking producer", oid));
            }
            auto rooted = ParallelizeRooted(cost, params, usage, it->second,
                                            config.num_sites);
            if (!rooted.ok()) return rooted.status();
            ops.push_back(std::move(rooted).value());
          } else {
            // Hong sizes pipelines to use the full machine: each operator
            // at its response-optimal degree (no CG_f restriction — XPRS
            // had no granularity knob).
            const int degree =
                OptimalDegree(cost, params, usage, config.num_sites);
            auto par = ParallelizeAtDegree(cost, params, usage, degree,
                                           config.num_sites);
            if (!par.ok()) return par.status();
            ops.push_back(std::move(par).value());
          }
        }
      }
      auto schedule =
          OperatorSchedule(ops, config.num_sites, config.dims);
      if (!schedule.ok()) return schedule.status();
      for (const auto& op : ops) {
        homes[op.op_id] = schedule->HomeOf(op.op_id);
      }
      HongRound round;
      round.phase = k;
      round.tasks = round_tasks;
      round.makespan = schedule->Makespan();
      result.response_time += round.makespan;
      result.rounds.push_back(std::move(round));
    }
  }
  if (span.active()) {
    span.AttrDouble("response_time_ms", result.response_time);
    span.AttrInt("rounds", static_cast<int64_t>(result.rounds.size()));
  }
  return result;
}

}  // namespace mrs
