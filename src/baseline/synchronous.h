#ifndef MRS_BASELINE_SYNCHRONOUS_H_
#define MRS_BASELINE_SYNCHRONOUS_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "cost/cost_model.h"
#include "cost/parallelize.h"
#include "plan/operator_tree.h"
#include "plan/task_tree.h"
#include "resource/machine.h"
#include "resource/usage_model.h"

namespace mrs {

struct TraceSink;

/// Placement of one pipeline stage (operator) by the SYNCHRONOUS baseline.
struct SyncStagePlacement {
  int op_id = -1;
  /// Disjoint (within the task) sites running this stage. When a task has
  /// more stages than sites, stages wrap around and share sites.
  std::vector<int> sites;
};

/// Placement and timing of one query task under SYNCHRONOUS.
struct SyncTaskPlacement {
  int task_id = -1;
  /// Site range [lo, hi) allotted to this task's subtree.
  int range_lo = 0;
  int range_hi = 0;
  std::vector<SyncStagePlacement> stages;
  /// Absolute start time (after all children finished) and duration.
  double start_time = 0.0;
  double duration = 0.0;
};

struct SynchronousResult {
  double response_time = 0.0;
  std::vector<SyncTaskPlacement> tasks;

  std::string ToString() const;
};

/// The paper's one-dimensional adversary (§6.1): the synchronous execution
/// time processor-allocation scheme of Hsiao et al. [HCY94] combined with
/// the two-phase minimax processor distribution of Lo et al. [LCRY93],
/// extended with shared-nothing data-redistribution costs.
///
/// Decisions are made with a *scalar* cost metric (total work):
///  * the site range allotted to a task is recursively partitioned among
///    its child subtrees proportionally to their total subtree work, so
///    subtrees complete at approximately the same time (synchronous
///    execution time); when a task has more children than sites the
///    children are serialized in waves (Hsiao et al.'s serialization);
///  * within a pipeline, sites are distributed across its stages by greedy
///    minimax on the one-dimensional stage time w(op)/n + alpha*n, each
///    stage on its own disjoint site block (Lo et al. explicitly prevent
///    processor sharing among stages);
///  * unlike TREESCHEDULE, a probe is *not* forced to the sites of its
///    build: if the allocator separates them, the hash table is shipped,
///    charging beta * inner bytes of extra redistribution (the
///    shared-nothing extension).
///
/// The resulting placement is *evaluated* under the same multi-dimensional
/// resource model as every other scheduler in this library (eq. (2)/(3)
/// per task, recursive completion times across the task tree), so the
/// comparison with TREESCHEDULE isolates the quality of the decisions, not
/// the models. There are no global phase barriers: independent subtrees
/// overlap freely within their disjoint site ranges, which if anything
/// favors this baseline.
///
/// When `trace` is non-null one "synchronous_schedule" span is recorded
/// with the response time and task count.
Result<SynchronousResult> SynchronousSchedule(
    const OperatorTree& op_tree, const TaskTree& task_tree,
    const std::vector<OperatorCost>& costs, const CostParams& params,
    const MachineConfig& machine, const OverlapUsageModel& usage,
    TraceSink* trace = nullptr);

}  // namespace mrs

#endif  // MRS_BASELINE_SYNCHRONOUS_H_
