#ifndef MRS_BASELINE_HONG_H_
#define MRS_BASELINE_HONG_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "core/schedule.h"
#include "cost/cost_model.h"
#include "plan/operator_tree.h"
#include "plan/task_tree.h"
#include "resource/machine.h"
#include "resource/usage_model.h"

namespace mrs {

struct TraceSink;

/// One co-executed round: at most two pipelines (one IO-bound + one
/// CPU-bound when possible) sharing the whole machine.
struct HongRound {
  int phase = -1;
  /// Task ids co-executed in this round (1 or 2).
  std::vector<int> tasks;
  double makespan = 0.0;
};

struct HongResult {
  double response_time = 0.0;
  std::vector<HongRound> rounds;

  std::string ToString() const;
};

/// A static shared-nothing adaptation of Hong's XPRS scheduler [Hon92] —
/// the one prior approach the paper credits with exploiting
/// multi-resource behavior (§2). Hong runs exactly TWO pipelines at a
/// time, one I/O-bound and one CPU-bound, sized to the system's IO-CPU
/// balance point; the dynamic re-sizing that XPRS uses on shared memory
/// is not viable shared-nothing (the paper's §2 critique), so this
/// adaptation makes the pairing statically:
///
///  * phases follow the same MinShelf shelves as TREESCHEDULE (blocking
///    correctness);
///  * within a phase, tasks are classified IO-bound vs CPU-bound by their
///    dominant aggregate resource, sorted by total work, and paired
///    greedily (largest IO with largest CPU); unpairable tasks run alone;
///  * each round's operators are parallelized at their response-optimal
///    degree and list-scheduled over the whole machine; rounds within a
///    phase run back to back.
///
/// Compared to TREESCHEDULE this caps inter-pipeline sharing at two
/// pipelines — the bench `ablation_baselines` measures what that costs.
/// Operators with blocking producers are still rooted at their producers'
/// homes (constraint B).
///
/// When `trace` is non-null one "hong_schedule" span is recorded with the
/// response time and round count.
Result<HongResult> HongSchedule(const OperatorTree& op_tree,
                                const TaskTree& task_tree,
                                const std::vector<OperatorCost>& costs,
                                const CostParams& params,
                                const MachineConfig& machine,
                                const OverlapUsageModel& usage,
                                TraceSink* trace = nullptr);

}  // namespace mrs

#endif  // MRS_BASELINE_HONG_H_
