#include "baseline/synchronous.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <unordered_map>

#include "common/logging.h"
#include "common/str_util.h"
#include "core/schedule.h"
#include "exec/trace.h"

namespace mrs {

namespace {

/// One-dimensional stage time used for the baseline's decisions: evenly
/// divided scalar work plus the serial coordinator startup.
double StageTime1D(double scalar_work, int n, const CostParams& params) {
  return scalar_work / static_cast<double>(n) +
         params.startup_ms_per_site * static_cast<double>(n);
}

class SynchronousPlanner {
 public:
  SynchronousPlanner(const OperatorTree& op_tree, const TaskTree& task_tree,
                     const std::vector<OperatorCost>& costs,
                     const CostParams& params, const MachineConfig& machine,
                     const OverlapUsageModel& usage)
      : op_tree_(op_tree),
        task_tree_(task_tree),
        costs_(costs),
        params_(params),
        machine_(machine),
        usage_(usage) {}

  Result<SynchronousResult> Run() {
    subtree_work_.assign(static_cast<size_t>(task_tree_.num_tasks()), 0.0);
    ComputeSubtreeWork(task_tree_.root_task());
    result_.tasks.clear();
    auto finish = ScheduleTask(task_tree_.root_task(), 0,
                               machine_.num_sites, /*start=*/0.0);
    if (!finish.ok()) return finish.status();
    result_.response_time = finish.value();
    return std::move(result_);
  }

 private:
  /// Scalar (one-dimensional) work of one operator: processing area plus
  /// transfer work. Startup is modeled per-degree in StageTime1D.
  double ScalarWork(int op_id) const {
    const OperatorCost& c = costs_[static_cast<size_t>(op_id)];
    return c.ProcessingArea() + params_.TransferMs(c.data_bytes);
  }

  double ComputeSubtreeWork(int task_id) {
    const QueryTask& task = task_tree_.task(task_id);
    double w = 0.0;
    for (int oid : task.ops) w += ScalarWork(oid);
    for (int c : task.children) w += ComputeSubtreeWork(c);
    subtree_work_[static_cast<size_t>(task_id)] = w;
    return w;
  }

  /// Partitions `total` sites among weights proportionally, each part >= 1
  /// (largest-remainder rounding). Requires weights.size() <= total.
  static std::vector<int> ProportionalSplit(const std::vector<double>& weights,
                                            int total) {
    const size_t k = weights.size();
    MRS_CHECK(static_cast<int>(k) <= total)
        << "ProportionalSplit requires at least one site per part";
    double sum = 0.0;
    for (double w : weights) sum += w;
    std::vector<int> alloc(k, 1);
    int remaining = total - static_cast<int>(k);
    if (remaining <= 0 || sum <= 0.0) return alloc;
    std::vector<double> frac(k, 0.0);
    int given = 0;
    for (size_t i = 0; i < k; ++i) {
      const double share = weights[i] / sum * static_cast<double>(remaining);
      const int whole = static_cast<int>(std::floor(share));
      alloc[i] += whole;
      given += whole;
      frac[i] = share - static_cast<double>(whole);
    }
    std::vector<size_t> order(k);
    std::iota(order.begin(), order.end(), size_t{0});
    std::sort(order.begin(), order.end(),
              [&](size_t a, size_t b) { return frac[a] > frac[b]; });
    for (int r = 0; r < remaining - given; ++r) {
      alloc[order[static_cast<size_t>(r) % k]] += 1;
    }
    return alloc;
  }

  /// Greedy minimax distribution of `total` sites over stages with scalar
  /// works `works` (every stage >= 1 site): repeatedly grant a site to the
  /// currently slowest stage while that improves it. Optimal for convex
  /// decreasing stage-time functions, which StageTime1D is until its
  /// startup-driven minimum — granting stops there.
  static std::vector<int> MinimaxSplit(const std::vector<double>& works,
                                       int total, const CostParams& params) {
    const size_t m = works.size();
    std::vector<int> alloc(m, 1);
    int used = static_cast<int>(m);
    auto time_of = [&](size_t i) {
      return StageTime1D(works[i], alloc[i], params);
    };
    while (used < total) {
      size_t slowest = 0;
      double worst = -1.0;
      for (size_t i = 0; i < m; ++i) {
        if (time_of(i) > worst) {
          worst = time_of(i);
          slowest = i;
        }
      }
      const double next =
          StageTime1D(works[slowest], alloc[slowest] + 1, params);
      if (next >= worst) break;  // past the slowest stage's optimum
      alloc[slowest] += 1;
      ++used;
    }
    return alloc;
  }

  /// Schedules task `task_id` and its whole subtree in sites [lo, hi),
  /// with the subtree allowed to begin at absolute time `start`. Returns
  /// the absolute completion time of `task_id`.
  Result<double> ScheduleTask(int task_id, int lo, int hi, double start) {
    const QueryTask& task = task_tree_.task(task_id);
    const int range = hi - lo;
    MRS_CHECK(range >= 1) << "task allotted an empty site range";

    // 1. Children first (synchronous execution time): partition the range
    // proportionally to subtree work; serialize in waves when there are
    // more children than sites.
    double children_finish = start;
    if (!task.children.empty()) {
      std::vector<int> children = task.children;
      std::sort(children.begin(), children.end(), [&](int a, int b) {
        return subtree_work_[static_cast<size_t>(a)] >
               subtree_work_[static_cast<size_t>(b)];
      });
      double wave_start = start;
      for (size_t pos = 0; pos < children.size();) {
        const size_t wave_end =
            std::min(pos + static_cast<size_t>(range), children.size());
        std::vector<double> weights;
        for (size_t i = pos; i < wave_end; ++i) {
          weights.push_back(subtree_work_[static_cast<size_t>(children[i])]);
        }
        const std::vector<int> alloc =
            ProportionalSplit(weights, range);
        double wave_finish = wave_start;
        int cursor = lo;
        for (size_t i = pos; i < wave_end; ++i) {
          const int n = alloc[i - pos];
          auto f = ScheduleTask(children[i], cursor, cursor + n, wave_start);
          if (!f.ok()) return f.status();
          wave_finish = std::max(wave_finish, f.value());
          cursor += n;
        }
        wave_start = wave_finish;
        pos = wave_end;
      }
      children_finish = wave_start;
    }

    // 2. This task's pipeline: distribute sites over stages by minimax.
    std::vector<int> stage_ops = task.ops;
    std::vector<double> works;
    works.reserve(stage_ops.size());
    for (int oid : stage_ops) works.push_back(ScalarWork(oid));

    SyncTaskPlacement placement;
    placement.task_id = task_id;
    placement.range_lo = lo;
    placement.range_hi = hi;
    placement.start_time = children_finish;

    const int m = static_cast<int>(stage_ops.size());
    if (m <= range) {
      const std::vector<int> alloc = MinimaxSplit(works, range, params_);
      int cursor = lo;
      for (int i = 0; i < m; ++i) {
        SyncStagePlacement stage;
        stage.op_id = stage_ops[static_cast<size_t>(i)];
        for (int s = 0; s < alloc[static_cast<size_t>(i)]; ++s) {
          stage.sites.push_back(cursor + s);
        }
        cursor += alloc[static_cast<size_t>(i)];
        placement.stages.push_back(std::move(stage));
      }
    } else {
      // More stages than sites: wrap stages around the range, one site
      // each (stage sharing — the serialization fallback).
      for (int i = 0; i < m; ++i) {
        SyncStagePlacement stage;
        stage.op_id = stage_ops[static_cast<size_t>(i)];
        stage.sites.push_back(lo + (i % range));
        placement.stages.push_back(std::move(stage));
      }
    }

    // 3. Evaluate the task's duration under the multi-dimensional model.
    auto duration = EvaluateTask(placement);
    if (!duration.ok()) return duration.status();
    placement.duration = duration.value();
    const double finish = children_finish + placement.duration;
    StoreBuildHomes(placement);
    result_.tasks.push_back(std::move(placement));
    return finish;
  }

  /// Multi-dimensional makespan of one task's stages at their sites.
  Result<double> EvaluateTask(const SyncTaskPlacement& placement) {
    std::vector<ParallelizedOp> ops;
    ops.reserve(placement.stages.size());
    for (const auto& stage : placement.stages) {
      OperatorCost cost = costs_[static_cast<size_t>(stage.op_id)];
      // Shared-nothing extension: an op placed away from its blocking
      // producer ships the materialized state (hash table / sorted runs /
      // group table), approximated by the producer's input bytes.
      const PhysicalOp& op = op_tree_.op(stage.op_id);
      if (op.blocking_input >= 0) {
        auto it = build_homes_.find(op.blocking_input);
        if (it != build_homes_.end() && it->second != stage.sites) {
          cost.data_bytes += static_cast<double>(
              op_tree_.op(op.blocking_input).input_bytes());
        }
      }
      auto rooted = ParallelizeRooted(cost, params_, usage_, stage.sites,
                                      machine_.num_sites);
      if (!rooted.ok()) return rooted.status();
      ops.push_back(std::move(rooted).value());
    }
    Schedule schedule(machine_.num_sites, machine_.dims);
    for (const auto& op : ops) {
      MRS_RETURN_IF_ERROR(schedule.PlaceRooted(op));
    }
    return schedule.Makespan();
  }

  void StoreBuildHomes(const SyncTaskPlacement& placement) {
    for (const auto& stage : placement.stages) {
      if (op_tree_.op(stage.op_id).output_tuples == 0) {
        // First half of a blocking pair: it materializes local state.
        build_homes_[stage.op_id] = stage.sites;
      }
    }
  }

  const OperatorTree& op_tree_;
  const TaskTree& task_tree_;
  const std::vector<OperatorCost>& costs_;
  const CostParams& params_;
  const MachineConfig& machine_;
  const OverlapUsageModel& usage_;
  std::vector<double> subtree_work_;
  std::unordered_map<int, std::vector<int>> build_homes_;
  SynchronousResult result_;
};

}  // namespace

std::string SynchronousResult::ToString() const {
  std::string out = StrFormat("Synchronous(response=%.2fms, %zu tasks)\n",
                              response_time, tasks.size());
  for (const auto& t : tasks) {
    out += StrFormat("  T%d sites=[%d,%d) start=%.2f dur=%.2f (%zu stages)\n",
                     t.task_id, t.range_lo, t.range_hi, t.start_time,
                     t.duration, t.stages.size());
  }
  return out;
}

Result<SynchronousResult> SynchronousSchedule(
    const OperatorTree& op_tree, const TaskTree& task_tree,
    const std::vector<OperatorCost>& costs, const CostParams& params,
    const MachineConfig& machine, const OverlapUsageModel& usage,
    TraceSink* trace) {
  if (static_cast<int>(costs.size()) != op_tree.num_ops()) {
    return Status::InvalidArgument(
        StrFormat("costs size %zu != %d operators", costs.size(),
                  op_tree.num_ops()));
  }
  MachineConfig config = machine;
  MRS_RETURN_IF_ERROR(config.Validate());
  MRS_RETURN_IF_ERROR(params.Validate());
  SpanTimer span(trace, "synchronous_schedule");
  SynchronousPlanner planner(op_tree, task_tree, costs, params, config, usage);
  auto result = planner.Run();
  if (span.active() && result.ok()) {
    span.AttrDouble("response_time_ms", result->response_time);
    span.AttrInt("tasks", static_cast<int64_t>(result->tasks.size()));
  }
  return result;
}

}  // namespace mrs
