#ifndef MRS_IO_TRACE_EXPORT_H_
#define MRS_IO_TRACE_EXPORT_H_

#include <string>
#include <vector>

#include "common/metrics.h"
#include "exec/trace.h"

namespace mrs {

/// Schema version of the trace report JSON. Bump on any change to the
/// shape below; consumers key on it. Version 1:
///   {"version":1,
///    "traces":[{"label":"query-0",
///               "spans":[{"name":"parallelize","phase":0,
///                         "start_ms":0.000000,"end_ms":1.000000,
///                         "attrs":{"op3.degree":"4/nmax=7",...}}, ...]},
///              ...],
///    "metrics":{"counters":{...},"gauges":{...},"histograms":{...}}}
inline constexpr int kTraceExportVersion = 1;

/// One trace as a JSON object: {"label":...,"spans":[...]}. Spans keep
/// emission order; attributes keep insertion order.
std::string TraceToJson(const ScheduleTrace& trace);

/// The full versioned report: every trace plus a registry snapshot. Null
/// trace pointers are skipped. Output is deterministic for deterministic
/// inputs (fixed clock, fixed metric values) — the golden tests pin it.
std::string ExportTraceReport(const std::vector<const ScheduleTrace*>& traces,
                              const MetricsSnapshot& metrics);

}  // namespace mrs

#endif  // MRS_IO_TRACE_EXPORT_H_
