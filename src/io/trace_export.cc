#include "io/trace_export.h"

#include "common/str_util.h"

namespace mrs {

namespace {

/// Minimal JSON string escaping: quotes, backslashes, and control
/// characters (attribute values are scheduler-generated but may embed
/// arbitrary plan names).
std::string EscapeJson(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += StrFormat("\\u%04x", c);
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string SpanToJson(const TraceSpan& span) {
  std::string out = StrFormat(
      "{\"name\":\"%s\",\"phase\":%d,\"start_ms\":%.6f,\"end_ms\":%.6f,"
      "\"attrs\":{",
      EscapeJson(span.name).c_str(), span.phase, span.start_ms, span.end_ms);
  for (size_t i = 0; i < span.attrs.size(); ++i) {
    if (i > 0) out += ",";
    out += StrFormat("\"%s\":\"%s\"", EscapeJson(span.attrs[i].first).c_str(),
                     EscapeJson(span.attrs[i].second).c_str());
  }
  out += "}}";
  return out;
}

}  // namespace

std::string TraceToJson(const ScheduleTrace& trace) {
  std::string out =
      StrFormat("{\"label\":\"%s\",\"spans\":[",
                EscapeJson(trace.label()).c_str());
  const std::vector<TraceSpan> spans = trace.spans();
  for (size_t i = 0; i < spans.size(); ++i) {
    if (i > 0) out += ",";
    out += SpanToJson(spans[i]);
  }
  out += "]}";
  return out;
}

std::string ExportTraceReport(const std::vector<const ScheduleTrace*>& traces,
                              const MetricsSnapshot& metrics) {
  std::string out = StrFormat("{\"version\":%d,\"traces\":[",
                              kTraceExportVersion);
  bool first = true;
  for (const ScheduleTrace* trace : traces) {
    if (trace == nullptr) continue;
    if (!first) out += ",";
    first = false;
    out += TraceToJson(*trace);
  }
  out += StrFormat("],\"metrics\":%s}", metrics.ToJson().c_str());
  return out;
}

}  // namespace mrs
