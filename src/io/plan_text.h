#ifndef MRS_IO_PLAN_TEXT_H_
#define MRS_IO_PLAN_TEXT_H_

#include <memory>
#include <string>

#include "catalog/catalog.h"
#include "common/result.h"
#include "plan/plan_tree.h"

namespace mrs {

/// A parsed query description: catalog plus execution plan (heap-held so
/// the PlanTree's catalog pointer survives moves).
struct ParsedPlan {
  std::unique_ptr<Catalog> catalog;
  std::unique_ptr<PlanTree> plan;
};

/// Parses the plan text format:
///
///   # relations first: name and tuple count
///   relation customer 30000
///   relation orders   90000
///   relation nation   25
///
///   # then exactly one plan line; (join OUTER INNER) — INNER feeds the
///   # hash build; leaves are relation names
///   plan (join (join orders customer) nation)
///
/// Blank lines and '#' comments are ignored. Every relation must be
/// declared before the plan line; each relation may be scanned at most
/// once. Errors carry the offending line number.
Result<ParsedPlan> ParsePlanText(const std::string& text);

/// Renders a catalog and finalized plan back into the text format
/// (ParsePlanText(WritePlanText(x)) reproduces x).
Result<std::string> WritePlanText(const Catalog& catalog,
                                  const PlanTree& plan);

}  // namespace mrs

#endif  // MRS_IO_PLAN_TEXT_H_
