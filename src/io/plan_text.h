#ifndef MRS_IO_PLAN_TEXT_H_
#define MRS_IO_PLAN_TEXT_H_

#include <memory>
#include <string>

#include "catalog/catalog.h"
#include "common/result.h"
#include "plan/plan_tree.h"
#include "plan/query_graph.h"

namespace mrs {

/// A parsed query description: catalog plus either an execution plan or a
/// join graph (heap-held so the PlanTree's catalog pointer survives
/// moves). Exactly one of `plan` / `graph` is set on success: a plan file
/// hands the scheduler a finished join order, a graph file asks the
/// optimizer (sched_cli --optimize) to find one.
struct ParsedPlan {
  std::unique_ptr<Catalog> catalog;
  std::unique_ptr<PlanTree> plan;
  std::unique_ptr<QueryGraph> graph;
};

/// Parses the plan text format:
///
///   # relations first: name and tuple count
///   relation customer 30000
///   relation orders   90000
///   relation nation   25
///
///   # then exactly one plan line; (join OUTER INNER) — INNER feeds the
///   # hash build; leaves are relation names
///   plan (join (join orders customer) nation)
///
/// or, alternatively to the plan line, exactly one graph stanza listing
/// the join edges as (name name) pairs over the declared relations:
///
///   graph (customer orders) (orders nation)
///
/// Blank lines and '#' comments are ignored. Every relation must be
/// declared before the plan/graph line; each relation may be scanned at
/// most once; a file may not carry both a plan and a graph. Errors carry
/// the offending line number.
Result<ParsedPlan> ParsePlanText(const std::string& text);

/// Renders a catalog and finalized plan back into the text format
/// (ParsePlanText(WritePlanText(x)) reproduces x).
Result<std::string> WritePlanText(const Catalog& catalog,
                                  const PlanTree& plan);

/// Renders a catalog and join graph back into the text format
/// (ParsePlanText(WriteGraphText(x)) reproduces x). The graph must be
/// defined over exactly the catalog's relations.
Result<std::string> WriteGraphText(const Catalog& catalog,
                                   const QueryGraph& graph);

}  // namespace mrs

#endif  // MRS_IO_PLAN_TEXT_H_
