#include "io/plan_text.h"

#include <cctype>
#include <cstdlib>
#include <set>
#include <sstream>
#include <unordered_map>
#include <vector>

#include "common/str_util.h"

namespace mrs {

namespace {

struct Token {
  enum Kind { kLParen, kRParen, kAtom } kind;
  std::string text;
};

Result<std::vector<Token>> Tokenize(const std::string& s, int line_no) {
  std::vector<Token> tokens;
  size_t i = 0;
  while (i < s.size()) {
    const char c = s[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
    } else if (c == '(') {
      tokens.push_back({Token::kLParen, "("});
      ++i;
    } else if (c == ')') {
      tokens.push_back({Token::kRParen, ")"});
      ++i;
    } else if (c == '#') {
      break;
    } else {
      size_t j = i;
      while (j < s.size() && !std::isspace(static_cast<unsigned char>(s[j])) &&
             s[j] != '(' && s[j] != ')' && s[j] != '#') {
        ++j;
      }
      tokens.push_back({Token::kAtom, s.substr(i, j - i)});
      i = j;
    }
  }
  if (tokens.empty()) {
    return Status::InvalidArgument(
        StrFormat("line %d: empty expression", line_no));
  }
  return tokens;
}

/// Recursive-descent parse of (join OUTER INNER) | relation-name.
class SexprParser {
 public:
  SexprParser(const std::vector<Token>& tokens, int line_no, Catalog* catalog,
              PlanTree* plan)
      : tokens_(tokens), line_no_(line_no), catalog_(catalog), plan_(plan) {}

  Result<int> Parse() {
    auto node = ParseNode();
    if (!node.ok()) return node;
    if (pos_ != tokens_.size()) {
      return Status::InvalidArgument(
          StrFormat("line %d: trailing tokens after plan expression",
                    line_no_));
    }
    return node;
  }

 private:
  Result<int> ParseNode() {
    if (pos_ >= tokens_.size()) {
      return Status::InvalidArgument(
          StrFormat("line %d: unexpected end of plan expression", line_no_));
    }
    const Token& token = tokens_[pos_];
    if (token.kind == Token::kAtom) {
      ++pos_;
      auto rel = catalog_->GetRelationByName(token.text);
      if (!rel.ok()) {
        return Status::InvalidArgument(
            StrFormat("line %d: unknown relation '%s'", line_no_,
                      token.text.c_str()));
      }
      // Dense catalog ids are insertion-ordered; find the id by name scan.
      for (int id = 0; id < catalog_->num_relations(); ++id) {
        if (catalog_->GetRelation(id)->name == token.text) {
          if (used_relations_.count(id) > 0) {
            return Status::InvalidArgument(
                StrFormat("line %d: relation '%s' scanned more than once",
                          line_no_, token.text.c_str()));
          }
          used_relations_.insert(id);
          return plan_->AddLeaf(id);
        }
      }
      return Status::Internal("relation lookup inconsistency");
    }
    if (token.kind != Token::kLParen) {
      return Status::InvalidArgument(
          StrFormat("line %d: expected '(' or relation name, got '%s'",
                    line_no_, token.text.c_str()));
    }
    ++pos_;  // consume '('
    if (pos_ >= tokens_.size() || tokens_[pos_].kind != Token::kAtom) {
      return Status::InvalidArgument(StrFormat(
          "line %d: expected 'join', 'sort', or 'agg' after '('", line_no_));
    }
    const std::string op = tokens_[pos_].text;
    ++pos_;
    Result<int> node = Status::Internal("unset");
    if (op == "join") {
      auto outer = ParseNode();
      if (!outer.ok()) return outer;
      auto inner = ParseNode();
      if (!inner.ok()) return inner;
      node = plan_->AddJoin(outer.value(), inner.value());
    } else if (op == "sort") {
      auto child = ParseNode();
      if (!child.ok()) return child;
      node = plan_->AddSort(child.value());
    } else if (op == "agg") {
      // (agg FRACTION CHILD)
      if (pos_ >= tokens_.size() || tokens_[pos_].kind != Token::kAtom) {
        return Status::InvalidArgument(StrFormat(
            "line %d: expected a group fraction after 'agg'", line_no_));
      }
      char* end = nullptr;
      const double fraction =
          std::strtod(tokens_[pos_].text.c_str(), &end);
      if (end == nullptr || *end != '\0') {
        return Status::InvalidArgument(
            StrFormat("line %d: bad group fraction '%s'", line_no_,
                      tokens_[pos_].text.c_str()));
      }
      ++pos_;
      auto child = ParseNode();
      if (!child.ok()) return child;
      node = plan_->AddAggregate(child.value(), fraction);
    } else {
      return Status::InvalidArgument(StrFormat(
          "line %d: unknown operator '%s' (expected join/sort/agg)",
          line_no_, op.c_str()));
    }
    if (!node.ok()) return node;
    if (pos_ >= tokens_.size() || tokens_[pos_].kind != Token::kRParen) {
      return Status::InvalidArgument(
          StrFormat("line %d: expected ')' to close '%s'", line_no_,
                    op.c_str()));
    }
    ++pos_;  // consume ')'
    return node;
  }

  const std::vector<Token>& tokens_;
  int line_no_;
  Catalog* catalog_;
  PlanTree* plan_;
  size_t pos_ = 0;
  std::set<int> used_relations_;
};

/// Dense catalog id of a relation name; -1 when unknown.
int RelationIdByName(const Catalog& catalog, const std::string& name) {
  for (int id = 0; id < catalog.num_relations(); ++id) {
    if (catalog.GetRelation(id)->name == name) return id;
  }
  return -1;
}

/// Parses the `graph` stanza payload: a sequence of (name name) edge
/// pairs over the declared relations. Zero pairs is legal (the join-free
/// single-relation query).
Result<std::unique_ptr<QueryGraph>> ParseGraphEdges(
    const std::vector<Token>& tokens, int line_no, const Catalog& catalog) {
  auto graph = std::make_unique<QueryGraph>(catalog.num_relations());
  size_t pos = 0;
  while (pos < tokens.size()) {
    if (tokens[pos].kind != Token::kLParen) {
      return Status::InvalidArgument(StrFormat(
          "line %d: expected '(' to open a join edge, got '%s'", line_no,
          tokens[pos].text.c_str()));
    }
    ++pos;
    int ids[2];
    for (int side = 0; side < 2; ++side) {
      if (pos >= tokens.size() || tokens[pos].kind != Token::kAtom) {
        return Status::InvalidArgument(StrFormat(
            "line %d: expected two relation names inside a join edge",
            line_no));
      }
      ids[side] = RelationIdByName(catalog, tokens[pos].text);
      if (ids[side] < 0) {
        return Status::InvalidArgument(
            StrFormat("line %d: unknown relation '%s'", line_no,
                      tokens[pos].text.c_str()));
      }
      ++pos;
    }
    if (pos >= tokens.size() || tokens[pos].kind != Token::kRParen) {
      return Status::InvalidArgument(StrFormat(
          "line %d: expected ')' to close the join edge", line_no));
    }
    ++pos;
    Status added = graph->AddJoin(ids[0], ids[1]);
    if (!added.ok()) {
      return Status::InvalidArgument(
          StrFormat("line %d: %s", line_no, added.message().c_str()));
    }
  }
  return graph;
}

}  // namespace

Result<ParsedPlan> ParsePlanText(const std::string& text) {
  ParsedPlan parsed;
  parsed.catalog = std::make_unique<Catalog>();

  std::istringstream in(text);
  std::string line;
  int line_no = 0;
  bool saw_plan = false;
  while (std::getline(in, line)) {
    ++line_no;
    // Strip comments and whitespace-only lines early.
    std::string stripped = line;
    const size_t hash = stripped.find('#');
    if (hash != std::string::npos) stripped.resize(hash);
    size_t first = stripped.find_first_not_of(" \t\r");
    if (first == std::string::npos) continue;

    std::istringstream ls(stripped);
    std::string keyword;
    ls >> keyword;
    if (keyword == "relation") {
      if (saw_plan || parsed.graph != nullptr) {
        return Status::InvalidArgument(StrFormat(
            "line %d: relation declared after the plan line", line_no));
      }
      Relation r;
      long long tuples = -1;
      if (!(ls >> r.name >> tuples) || tuples < 0) {
        return Status::InvalidArgument(StrFormat(
            "line %d: expected 'relation <name> <tuples>'", line_no));
      }
      std::string extra;
      if (ls >> extra) {
        return Status::InvalidArgument(
            StrFormat("line %d: trailing text '%s'", line_no, extra.c_str()));
      }
      r.num_tuples = tuples;
      auto id = parsed.catalog->AddRelation(std::move(r));
      if (!id.ok()) {
        return Status::InvalidArgument(
            StrFormat("line %d: %s", line_no, id.status().message().c_str()));
      }
    } else if (keyword == "plan") {
      if (saw_plan) {
        return Status::InvalidArgument(
            StrFormat("line %d: duplicate plan line", line_no));
      }
      if (parsed.graph != nullptr) {
        return Status::InvalidArgument(StrFormat(
            "line %d: plan line after a graph stanza (a file carries one "
            "or the other)",
            line_no));
      }
      saw_plan = true;
      std::string rest;
      std::getline(ls, rest);
      auto tokens = Tokenize(rest, line_no);
      if (!tokens.ok()) return tokens.status();
      parsed.plan = std::make_unique<PlanTree>(parsed.catalog.get());
      SexprParser parser(tokens.value(), line_no, parsed.catalog.get(),
                         parsed.plan.get());
      auto root = parser.Parse();
      if (!root.ok()) return root.status();
    } else if (keyword == "graph") {
      if (saw_plan) {
        return Status::InvalidArgument(StrFormat(
            "line %d: graph stanza after the plan line (a file carries "
            "one or the other)",
            line_no));
      }
      if (parsed.graph != nullptr) {
        return Status::InvalidArgument(
            StrFormat("line %d: duplicate graph stanza", line_no));
      }
      std::string rest;
      std::getline(ls, rest);
      std::vector<Token> tokens;
      if (rest.find_first_not_of(" \t\r") != std::string::npos) {
        auto tokenized = Tokenize(rest, line_no);
        if (!tokenized.ok()) return tokenized.status();
        tokens = std::move(tokenized).value();
      }
      auto graph = ParseGraphEdges(tokens, line_no, *parsed.catalog);
      if (!graph.ok()) return graph.status();
      parsed.graph = std::move(graph).value();
    } else {
      return Status::InvalidArgument(StrFormat(
          "line %d: unknown keyword '%s' (expected 'relation', 'plan', or "
          "'graph')",
          line_no, keyword.c_str()));
    }
  }
  if (parsed.graph != nullptr) return parsed;
  if (!saw_plan) {
    return Status::InvalidArgument("missing plan or graph line");
  }
  MRS_RETURN_IF_ERROR(parsed.plan->Finalize());
  return parsed;
}

namespace {

void WriteNode(const PlanTree& plan, int node_id, std::string* out) {
  const PlanNode& node = plan.node(node_id);
  switch (node.kind) {
    case PlanNodeKind::kLeaf:
      *out += plan.catalog().GetRelation(node.relation_id)->name;
      return;
    case PlanNodeKind::kJoin:
      *out += "(join ";
      WriteNode(plan, node.outer_child, out);
      *out += " ";
      WriteNode(plan, node.inner_child, out);
      *out += ")";
      return;
    case PlanNodeKind::kSort:
      *out += "(sort ";
      WriteNode(plan, node.unary_child, out);
      *out += ")";
      return;
    case PlanNodeKind::kAggregate:
      *out += StrFormat("(agg %.6g ", node.group_fraction);
      WriteNode(plan, node.unary_child, out);
      *out += ")";
      return;
  }
}

}  // namespace

Result<std::string> WritePlanText(const Catalog& catalog,
                                  const PlanTree& plan) {
  if (!plan.finalized()) {
    return Status::FailedPrecondition("plan must be finalized");
  }
  std::string out;
  for (const auto& r : catalog.relations()) {
    out += StrFormat("relation %s %lld\n", r.name.c_str(),
                     static_cast<long long>(r.num_tuples));
  }
  out += "plan ";
  WriteNode(plan, plan.root(), &out);
  out += "\n";
  return out;
}

Result<std::string> WriteGraphText(const Catalog& catalog,
                                   const QueryGraph& graph) {
  if (graph.num_relations() != catalog.num_relations()) {
    return Status::InvalidArgument(
        StrFormat("graph covers %d relations but the catalog has %d",
                  graph.num_relations(), catalog.num_relations()));
  }
  std::string out;
  for (const auto& r : catalog.relations()) {
    out += StrFormat("relation %s %lld\n", r.name.c_str(),
                     static_cast<long long>(r.num_tuples));
  }
  out += "graph";
  for (const JoinEdge& e : graph.edges()) {
    out += StrFormat(
        " (%s %s)",
        catalog.GetRelation(e.left_relation)->name.c_str(),
        catalog.GetRelation(e.right_relation)->name.c_str());
  }
  out += "\n";
  return out;
}

}  // namespace mrs
