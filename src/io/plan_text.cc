#include "io/plan_text.h"

#include <cctype>
#include <cstdlib>
#include <set>
#include <sstream>
#include <unordered_map>
#include <vector>

#include "common/str_util.h"

namespace mrs {

namespace {

struct Token {
  enum Kind { kLParen, kRParen, kAtom } kind;
  std::string text;
};

Result<std::vector<Token>> Tokenize(const std::string& s, int line_no) {
  std::vector<Token> tokens;
  size_t i = 0;
  while (i < s.size()) {
    const char c = s[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
    } else if (c == '(') {
      tokens.push_back({Token::kLParen, "("});
      ++i;
    } else if (c == ')') {
      tokens.push_back({Token::kRParen, ")"});
      ++i;
    } else if (c == '#') {
      break;
    } else {
      size_t j = i;
      while (j < s.size() && !std::isspace(static_cast<unsigned char>(s[j])) &&
             s[j] != '(' && s[j] != ')' && s[j] != '#') {
        ++j;
      }
      tokens.push_back({Token::kAtom, s.substr(i, j - i)});
      i = j;
    }
  }
  if (tokens.empty()) {
    return Status::InvalidArgument(
        StrFormat("line %d: empty expression", line_no));
  }
  return tokens;
}

/// Recursive-descent parse of (join OUTER INNER) | relation-name.
class SexprParser {
 public:
  SexprParser(const std::vector<Token>& tokens, int line_no, Catalog* catalog,
              PlanTree* plan)
      : tokens_(tokens), line_no_(line_no), catalog_(catalog), plan_(plan) {}

  Result<int> Parse() {
    auto node = ParseNode();
    if (!node.ok()) return node;
    if (pos_ != tokens_.size()) {
      return Status::InvalidArgument(
          StrFormat("line %d: trailing tokens after plan expression",
                    line_no_));
    }
    return node;
  }

 private:
  Result<int> ParseNode() {
    if (pos_ >= tokens_.size()) {
      return Status::InvalidArgument(
          StrFormat("line %d: unexpected end of plan expression", line_no_));
    }
    const Token& token = tokens_[pos_];
    if (token.kind == Token::kAtom) {
      ++pos_;
      auto rel = catalog_->GetRelationByName(token.text);
      if (!rel.ok()) {
        return Status::InvalidArgument(
            StrFormat("line %d: unknown relation '%s'", line_no_,
                      token.text.c_str()));
      }
      // Dense catalog ids are insertion-ordered; find the id by name scan.
      for (int id = 0; id < catalog_->num_relations(); ++id) {
        if (catalog_->GetRelation(id)->name == token.text) {
          if (used_relations_.count(id) > 0) {
            return Status::InvalidArgument(
                StrFormat("line %d: relation '%s' scanned more than once",
                          line_no_, token.text.c_str()));
          }
          used_relations_.insert(id);
          return plan_->AddLeaf(id);
        }
      }
      return Status::Internal("relation lookup inconsistency");
    }
    if (token.kind != Token::kLParen) {
      return Status::InvalidArgument(
          StrFormat("line %d: expected '(' or relation name, got '%s'",
                    line_no_, token.text.c_str()));
    }
    ++pos_;  // consume '('
    if (pos_ >= tokens_.size() || tokens_[pos_].kind != Token::kAtom) {
      return Status::InvalidArgument(StrFormat(
          "line %d: expected 'join', 'sort', or 'agg' after '('", line_no_));
    }
    const std::string op = tokens_[pos_].text;
    ++pos_;
    Result<int> node = Status::Internal("unset");
    if (op == "join") {
      auto outer = ParseNode();
      if (!outer.ok()) return outer;
      auto inner = ParseNode();
      if (!inner.ok()) return inner;
      node = plan_->AddJoin(outer.value(), inner.value());
    } else if (op == "sort") {
      auto child = ParseNode();
      if (!child.ok()) return child;
      node = plan_->AddSort(child.value());
    } else if (op == "agg") {
      // (agg FRACTION CHILD)
      if (pos_ >= tokens_.size() || tokens_[pos_].kind != Token::kAtom) {
        return Status::InvalidArgument(StrFormat(
            "line %d: expected a group fraction after 'agg'", line_no_));
      }
      char* end = nullptr;
      const double fraction =
          std::strtod(tokens_[pos_].text.c_str(), &end);
      if (end == nullptr || *end != '\0') {
        return Status::InvalidArgument(
            StrFormat("line %d: bad group fraction '%s'", line_no_,
                      tokens_[pos_].text.c_str()));
      }
      ++pos_;
      auto child = ParseNode();
      if (!child.ok()) return child;
      node = plan_->AddAggregate(child.value(), fraction);
    } else {
      return Status::InvalidArgument(StrFormat(
          "line %d: unknown operator '%s' (expected join/sort/agg)",
          line_no_, op.c_str()));
    }
    if (!node.ok()) return node;
    if (pos_ >= tokens_.size() || tokens_[pos_].kind != Token::kRParen) {
      return Status::InvalidArgument(
          StrFormat("line %d: expected ')' to close '%s'", line_no_,
                    op.c_str()));
    }
    ++pos_;  // consume ')'
    return node;
  }

  const std::vector<Token>& tokens_;
  int line_no_;
  Catalog* catalog_;
  PlanTree* plan_;
  size_t pos_ = 0;
  std::set<int> used_relations_;
};

}  // namespace

Result<ParsedPlan> ParsePlanText(const std::string& text) {
  ParsedPlan parsed;
  parsed.catalog = std::make_unique<Catalog>();

  std::istringstream in(text);
  std::string line;
  int line_no = 0;
  bool saw_plan = false;
  while (std::getline(in, line)) {
    ++line_no;
    // Strip comments and whitespace-only lines early.
    std::string stripped = line;
    const size_t hash = stripped.find('#');
    if (hash != std::string::npos) stripped.resize(hash);
    size_t first = stripped.find_first_not_of(" \t\r");
    if (first == std::string::npos) continue;

    std::istringstream ls(stripped);
    std::string keyword;
    ls >> keyword;
    if (keyword == "relation") {
      if (saw_plan) {
        return Status::InvalidArgument(StrFormat(
            "line %d: relation declared after the plan line", line_no));
      }
      Relation r;
      long long tuples = -1;
      if (!(ls >> r.name >> tuples) || tuples < 0) {
        return Status::InvalidArgument(StrFormat(
            "line %d: expected 'relation <name> <tuples>'", line_no));
      }
      std::string extra;
      if (ls >> extra) {
        return Status::InvalidArgument(
            StrFormat("line %d: trailing text '%s'", line_no, extra.c_str()));
      }
      r.num_tuples = tuples;
      auto id = parsed.catalog->AddRelation(std::move(r));
      if (!id.ok()) {
        return Status::InvalidArgument(
            StrFormat("line %d: %s", line_no, id.status().message().c_str()));
      }
    } else if (keyword == "plan") {
      if (saw_plan) {
        return Status::InvalidArgument(
            StrFormat("line %d: duplicate plan line", line_no));
      }
      saw_plan = true;
      std::string rest;
      std::getline(ls, rest);
      auto tokens = Tokenize(rest, line_no);
      if (!tokens.ok()) return tokens.status();
      parsed.plan = std::make_unique<PlanTree>(parsed.catalog.get());
      SexprParser parser(tokens.value(), line_no, parsed.catalog.get(),
                         parsed.plan.get());
      auto root = parser.Parse();
      if (!root.ok()) return root.status();
    } else {
      return Status::InvalidArgument(StrFormat(
          "line %d: unknown keyword '%s' (expected 'relation' or 'plan')",
          line_no, keyword.c_str()));
    }
  }
  if (!saw_plan) {
    return Status::InvalidArgument("missing plan line");
  }
  MRS_RETURN_IF_ERROR(parsed.plan->Finalize());
  return parsed;
}

namespace {

void WriteNode(const PlanTree& plan, int node_id, std::string* out) {
  const PlanNode& node = plan.node(node_id);
  switch (node.kind) {
    case PlanNodeKind::kLeaf:
      *out += plan.catalog().GetRelation(node.relation_id)->name;
      return;
    case PlanNodeKind::kJoin:
      *out += "(join ";
      WriteNode(plan, node.outer_child, out);
      *out += " ";
      WriteNode(plan, node.inner_child, out);
      *out += ")";
      return;
    case PlanNodeKind::kSort:
      *out += "(sort ";
      WriteNode(plan, node.unary_child, out);
      *out += ")";
      return;
    case PlanNodeKind::kAggregate:
      *out += StrFormat("(agg %.6g ", node.group_fraction);
      WriteNode(plan, node.unary_child, out);
      *out += ")";
      return;
  }
}

}  // namespace

Result<std::string> WritePlanText(const Catalog& catalog,
                                  const PlanTree& plan) {
  if (!plan.finalized()) {
    return Status::FailedPrecondition("plan must be finalized");
  }
  std::string out;
  for (const auto& r : catalog.relations()) {
    out += StrFormat("relation %s %lld\n", r.name.c_str(),
                     static_cast<long long>(r.num_tuples));
  }
  out += "plan ";
  WriteNode(plan, plan.root(), &out);
  out += "\n";
  return out;
}

}  // namespace mrs
