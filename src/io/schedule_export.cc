#include "io/schedule_export.h"

#include "common/str_util.h"

namespace mrs {

namespace {

std::string VectorToJson(const WorkVector& w) {
  std::string out = "[";
  for (size_t i = 0; i < w.dim(); ++i) {
    if (i > 0) out += ",";
    out += StrFormat("%.6f", w[i]);
  }
  out += "]";
  return out;
}

}  // namespace

std::string ScheduleToJson(const Schedule& schedule) {
  std::string out = StrFormat(
      "{\"num_sites\":%d,\"dims\":%d,\"makespan\":%.6f,\"sites\":[",
      schedule.num_sites(), schedule.dims(), schedule.Makespan());
  for (int j = 0; j < schedule.num_sites(); ++j) {
    if (j > 0) out += ",";
    out += StrFormat("{\"site\":%d,\"time\":%.6f,\"load\":%s,\"clones\":[",
                     j, schedule.SiteTime(j),
                     VectorToJson(schedule.SiteLoad(j)).c_str());
    bool first = true;
    for (int p : schedule.SitePlacements(j)) {
      const ClonePlacement& c =
          schedule.placements()[static_cast<size_t>(p)];
      if (!first) out += ",";
      first = false;
      out += StrFormat(
          "{\"op\":%d,\"clone\":%d,\"work\":%s,\"t_seq\":%.6f}", c.op_id,
          c.clone_idx, VectorToJson(c.work).c_str(), c.t_seq);
    }
    out += "]}";
  }
  out += "]}";
  return out;
}

std::string TreeScheduleToJson(const TreeScheduleResult& result) {
  std::string out = StrFormat("{\"response_time\":%.6f,\"phases\":[",
                              result.response_time);
  for (size_t k = 0; k < result.phases.size(); ++k) {
    if (k > 0) out += ",";
    const PhaseSchedule& phase = result.phases[k];
    out += StrFormat("{\"phase\":%d,\"makespan\":%.6f,\"schedule\":%s}",
                     phase.phase, phase.makespan,
                     ScheduleToJson(phase.schedule).c_str());
  }
  out += "]}";
  return out;
}

std::string TreeScheduleToCsv(const TreeScheduleResult& result) {
  std::string out = "phase,site,site_time";
  const int dims = result.phases.empty()
                       ? 0
                       : result.phases.front().schedule.dims();
  for (int i = 0; i < dims; ++i) out += StrFormat(",load_%d", i);
  out += ",num_clones\n";
  for (const auto& phase : result.phases) {
    for (int j = 0; j < phase.schedule.num_sites(); ++j) {
      out += StrFormat("%d,%d,%.6f", phase.phase, j,
                       phase.schedule.SiteTime(j));
      const WorkVector& load = phase.schedule.SiteLoad(j);
      for (size_t i = 0; i < load.dim(); ++i) {
        out += StrFormat(",%.6f", load[i]);
      }
      out += StrFormat(",%zu\n", phase.schedule.SitePlacements(j).size());
    }
  }
  return out;
}

std::string ListScheduleToJson(const ListScheduleResult& result) {
  const Schedule& schedule = result.schedule;
  std::string out = StrFormat(
      "{\"makespan\":%.6f,\"tree_response\":%.6f,\"fallback\":%d,"
      "\"mode\":\"%s\",\"rounds\":%d,\"num_sites\":%d,\"dims\":%d,"
      "\"tasks\":[",
      result.makespan, result.tree_response_time,
      result.used_tree_fallback ? 1 : 0, result.ModeString(), result.rounds,
      schedule.num_sites(), schedule.dims());
  for (size_t i = 0; i < result.tasks.size(); ++i) {
    if (i > 0) out += ",";
    const ListTaskInterval& t = result.tasks[i];
    out += StrFormat("{\"task\":%d,\"start\":%.6f,\"finish\":%.6f}", t.task,
                     t.start, t.finish);
  }
  out += "],\"sites\":[";
  for (int j = 0; j < schedule.num_sites(); ++j) {
    if (j > 0) out += ",";
    out += StrFormat("{\"site\":%d,\"finish\":%.6f,\"load\":%s,\"clones\":[",
                     j, schedule.SiteFinish(j),
                     VectorToJson(schedule.SiteLoad(j)).c_str());
    bool first = true;
    for (int p : schedule.SitePlacements(j)) {
      const ClonePlacement& c =
          schedule.placements()[static_cast<size_t>(p)];
      if (!first) out += ",";
      first = false;
      out += StrFormat(
          "{\"op\":%d,\"clone\":%d,\"start\":%.6f,\"finish\":%.6f,"
          "\"work\":%s,\"t_seq\":%.6f}",
          c.op_id, c.clone_idx, c.start,
          result.clone_finish[static_cast<size_t>(p)],
          VectorToJson(c.work).c_str(), c.t_seq);
    }
    out += "]}";
  }
  out += "]}";
  return out;
}

std::string ListScheduleToCsv(const ListScheduleResult& result) {
  const Schedule& schedule = result.schedule;
  std::string out = "site,finish";
  for (int i = 0; i < schedule.dims(); ++i) out += StrFormat(",load_%d", i);
  out += ",num_clones\n";
  for (int j = 0; j < schedule.num_sites(); ++j) {
    out += StrFormat("%d,%.6f", j, schedule.SiteFinish(j));
    const WorkVector& load = schedule.SiteLoad(j);
    for (size_t i = 0; i < load.dim(); ++i) {
      out += StrFormat(",%.6f", load[i]);
    }
    out += StrFormat(",%zu\n", schedule.SitePlacements(j).size());
  }
  return out;
}

}  // namespace mrs
