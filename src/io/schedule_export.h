#ifndef MRS_IO_SCHEDULE_EXPORT_H_
#define MRS_IO_SCHEDULE_EXPORT_H_

#include <string>

#include "core/list_schedule.h"
#include "core/schedule.h"
#include "core/tree_schedule.h"

namespace mrs {

/// Serializes one phase schedule as JSON:
/// {"num_sites":P,"dims":d,"makespan":...,"sites":[{"site":j,"time":...,
///  "load":[...],"clones":[{"op":...,"clone":...,"work":[...],
///  "t_seq":...}]}]}
std::string ScheduleToJson(const Schedule& schedule);

/// Serializes a full phased result as JSON:
/// {"response_time":...,"phases":[{"phase":k,"makespan":...,
///  "schedule":{...}}]}
std::string TreeScheduleToJson(const TreeScheduleResult& result);

/// Per-site CSV (one row per site per phase):
/// phase,site,site_time,load_cpu,load_...,num_clones
std::string TreeScheduleToCsv(const TreeScheduleResult& result);

/// Serializes a barrier-free LISTSCHEDULE result as JSON:
/// {"makespan":...,"tree_response":...,"fallback":0|1,
///  "mode":"greedy|pipelined|wave-fallback|aligned-fallback",
///  "rounds":...,
///  "num_sites":P,"dims":d,"tasks":[{"task":...,"start":...,
///  "finish":...}],"sites":[{"site":j,"finish":...,"load":[...],
///  "clones":[{"op":...,"clone":...,"start":...,"finish":...,
///  "work":[...],"t_seq":...}]}]}
std::string ListScheduleToJson(const ListScheduleResult& result);

/// Per-site CSV for a barrier-free result (one row per site):
/// site,finish,load_0,...,num_clones
std::string ListScheduleToCsv(const ListScheduleResult& result);

}  // namespace mrs

#endif  // MRS_IO_SCHEDULE_EXPORT_H_
