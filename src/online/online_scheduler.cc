#include "online/online_scheduler.h"

#include <algorithm>
#include <utility>

#include "common/logging.h"
#include "common/str_util.h"
#include "core/list_schedule.h"
#include "cost/cost_model.h"
#include "exec/fluid_simulator.h"
#include "plan/operator_tree.h"
#include "plan/task_tree.h"

namespace mrs {

namespace {

constexpr double kTimeTol = 1e-9;

/// Fraction of a clone's work still ahead of it at time t under the A3
/// uniform-usage assumption (linear decay over [start, finish]).
double RemainingFraction(double start, double finish, double t) {
  const double span = finish - start;
  if (span <= 0) return 0.0;
  const double frac = (finish - t) / span;
  return std::min(1.0, std::max(0.0, frac));
}

/// True when the operator materializes state that stays resident for the
/// lifetime of its blocking consumer (hash table, group table, sorted
/// runs) — the footprint admission's memory budget meters.
bool MaterializesState(OperatorKind kind) {
  return kind == OperatorKind::kBuild || kind == OperatorKind::kAggBuild ||
         kind == OperatorKind::kSortRun;
}

/// The list-engine options are derived from the shared TREESCHEDULE knobs
/// (see OnlineSchedulerOptions::engine).
ListScheduleOptions ListOptionsFrom(const OnlineSchedulerOptions& options,
                                    ParallelizeCache* cache, TraceSink* trace,
                                    const std::vector<WorkVector>* base_load) {
  ListScheduleOptions out;
  out.granularity = options.tree.granularity;
  out.policy = options.tree.policy;
  out.build_degree = options.tree.build_degree;
  out.list_options = options.tree.list_options;
  out.cache = cache;
  out.trace = trace;
  out.base_load = base_load;
  return out;
}

}  // namespace

std::string_view OnlineQueryStateToString(OnlineQueryState state) {
  switch (state) {
    case OnlineQueryState::kQueued:
      return "queued";
    case OnlineQueryState::kRunning:
      return "running";
    case OnlineQueryState::kDone:
      return "done";
    case OnlineQueryState::kRejected:
      return "rejected";
    case OnlineQueryState::kTimedOut:
      return "timed-out";
  }
  return "unknown";
}

double OnlineQueryResult::QueueWaitMs() const {
  if (admit_ms >= 0) return admit_ms - arrival_ms;
  if (state == OnlineQueryState::kTimedOut) return finish_ms - arrival_ms;
  return 0.0;
}

double OnlineQueryResult::ProjectedFinishMs() const {
  if (finish_ms >= 0) return finish_ms;
  if (admit_ms >= 0) return admit_ms + schedule.response_time;
  return -1.0;
}

struct OnlineScheduler::QueryRec {
  OnlineQueryResult result;
  /// Absolute queue-wait deadline; < 0 = none.
  double deadline_ms = -1.0;
  // The expanded pipeline inputs must stay address-stable while the
  // planner references them (TaskTree also points back into the
  // OperatorTree); all are released once the query leaves the machine.
  std::unique_ptr<OperatorTree> ops;
  std::unique_ptr<TaskTree> task_tree;
  std::vector<OperatorCost> costs;
  std::unique_ptr<PhasePlanner> planner;
  bool fully_placed = false;
};

OnlineScheduler::OnlineScheduler(const CostParams& params,
                                 const MachineConfig& machine,
                                 const OnlineSchedulerOptions& options)
    : params_(params),
      machine_(machine),
      options_(options),
      usage_(options.overlap_eps),
      cache_(params, options.overlap_eps, options.tree.granularity,
             machine.num_sites, options.metrics),
      admission_(options.admission),
      resident_(static_cast<size_t>(machine.num_sites)) {
  MetricsRegistry* registry =
      options_.metrics != nullptr ? options_.metrics : &MetricsRegistry::Global();
  submitted_ = registry->GetCounter("online.submitted");
  admitted_ = registry->GetCounter("online.admitted");
  rejected_ = registry->GetCounter("online.rejected");
  timeout_ = registry->GetCounter("online.timeout");
  queue_gauge_ = registry->GetGauge("online.queue_depth");
  in_flight_gauge_ = registry->GetGauge("online.in_flight");
  queue_wait_hist_ = registry->GetHistogram("online.queue_wait_ms");
  makespan_hist_ = registry->GetHistogram("online.makespan_ms");
}

OnlineScheduler::~OnlineScheduler() = default;

uint64_t OnlineScheduler::Submit(const PlanTree& plan, double arrival_ms,
                                 double timeout_ms) {
  if (arrival_ms < now_) arrival_ms = now_;
  ProcessUntil(arrival_ms);

  const uint64_t id = next_id_++;
  auto owned = std::make_unique<QueryRec>();
  QueryRec* rec = owned.get();
  queries_.emplace(id, std::move(owned));
  rec->result.id = id;
  rec->result.arrival_ms = arrival_ms;
  submitted_->Increment();

  double timeout = timeout_ms;
  if (timeout < 0) {
    const double def = admission_.options().default_timeout_ms;
    timeout = def > 0 ? def : -1.0;
  }
  if (timeout >= 0) rec->deadline_ms = arrival_ms + timeout;

  ScheduleTrace* trace = nullptr;
  if (options_.collect_traces) {
    rec->result.trace =
        options_.trace_clock
            ? std::make_shared<ScheduleTrace>(options_.trace_clock)
            : std::make_shared<ScheduleTrace>();
    rec->result.trace->set_label(
        StrFormat("query-%llu", static_cast<unsigned long long>(id)));
    trace = rec->result.trace.get();
  }

  SpanTimer expand_span(trace, "expand");
  auto op_tree = OperatorTree::FromPlan(plan);
  if (!op_tree.ok()) {
    FinalizeRejected(rec, op_tree.status(), OnlineQueryState::kRejected);
    return id;
  }
  rec->ops = std::make_unique<OperatorTree>(std::move(op_tree).value());
  auto task_tree = TaskTree::FromOperatorTree(rec->ops.get());
  if (!task_tree.ok()) {
    FinalizeRejected(rec, task_tree.status(), OnlineQueryState::kRejected);
    return id;
  }
  rec->task_tree = std::make_unique<TaskTree>(std::move(task_tree).value());
  if (expand_span.active()) {
    expand_span.AttrInt("ops", rec->ops->num_ops());
    expand_span.AttrInt("phases", rec->task_tree->num_phases());
  }
  expand_span.End();

  SpanTimer cost_span(trace, "cost_model");
  const CostModel model(params_, machine_.dims, options_.num_disks);
  auto costs = model.CostAll(*rec->ops);
  if (!costs.ok()) {
    FinalizeRejected(rec, costs.status(), OnlineQueryState::kRejected);
    return id;
  }
  rec->costs = std::move(costs).value();
  cost_span.End();

  // Admission estimates: the idle-system response time (an offline
  // TreeSchedule over the shared memo cache) and the materialized-state
  // footprint.
  SpanTimer est_span(trace, "admission_estimate");
  ParallelizeCache* cache = options_.use_cost_cache ? &cache_ : nullptr;
  if (options_.engine == OnlineEngine::kList) {
    auto estimate =
        ListSchedule(*rec->ops, *rec->task_tree, rec->costs, params_, machine_,
                     usage_, ListOptionsFrom(options_, cache, nullptr, nullptr));
    if (!estimate.ok()) {
      FinalizeRejected(rec, estimate.status(), OnlineQueryState::kRejected);
      return id;
    }
    rec->result.expected_makespan_ms = estimate->makespan;
  } else {
    TreeScheduleOptions est_options = options_.tree;
    est_options.cache = cache;
    est_options.trace = nullptr;
    auto estimate = TreeSchedule(*rec->ops, *rec->task_tree, rec->costs,
                                 params_, machine_, usage_, est_options);
    if (!estimate.ok()) {
      FinalizeRejected(rec, estimate.status(), OnlineQueryState::kRejected);
      return id;
    }
    rec->result.expected_makespan_ms = estimate->response_time;
  }
  for (const PhysicalOp& op : rec->ops->ops()) {
    if (MaterializesState(op.kind)) {
      rec->result.memory_estimate_bytes +=
          static_cast<double>(op.input_bytes()) * options_.state_overhead;
    }
  }
  if (est_span.active()) {
    est_span.AttrDouble("expected_makespan_ms",
                        rec->result.expected_makespan_ms);
    est_span.AttrDouble("memory_bytes", rec->result.memory_estimate_bytes);
  }
  est_span.End();

  SpanTimer adm_span(trace, "admission");
  Status why;
  const auto decision = admission_.OnArrival(RequestOf(*rec), &why);
  switch (decision) {
    case AdmissionController::Decision::kAdmit:
      if (adm_span.active()) adm_span.Attr("decision", "admit");
      adm_span.End();
      AdmitQuery(rec);
      break;
    case AdmissionController::Decision::kQueue:
      if (adm_span.active()) {
        adm_span.Attr("decision", "queue");
        adm_span.AttrInt("queue_depth", admission_.queue_depth());
      }
      adm_span.End();
      if (rec->deadline_ms >= 0) {
        PushEvent(rec->deadline_ms, Event::kDeadline, id);
      }
      UpdateGauges();
      break;
    case AdmissionController::Decision::kReject:
      if (adm_span.active()) adm_span.Attr("decision", "reject");
      adm_span.End();
      FinalizeRejected(rec, std::move(why), OnlineQueryState::kRejected);
      break;
  }
  return id;
}

void OnlineScheduler::AdmitQuery(QueryRec* rec) {
  rec->result.state = OnlineQueryState::kRunning;
  rec->result.admit_ms = now_;
  admitted_->Increment();
  queue_wait_hist_->Record(now_ - rec->result.arrival_ms);
  admission_.OnAdmitted(RequestOf(*rec));
  UpdateGauges();

  if (options_.engine == OnlineEngine::kList) {
    PlaceListSchedule(rec);
    return;
  }

  TreeScheduleOptions tree_options = options_.tree;
  tree_options.cache = options_.use_cost_cache ? &cache_ : nullptr;
  tree_options.trace = rec->result.trace.get();
  auto planner = PhasePlanner::Create(*rec->ops, *rec->task_tree, rec->costs,
                                      params_, machine_, usage_, tree_options);
  if (!planner.ok()) {
    AbortQuery(rec, planner.status());
    return;
  }
  rec->planner = std::make_unique<PhasePlanner>(std::move(planner).value());
  rec->result.schedule.phases.reserve(
      static_cast<size_t>(rec->planner->num_phases()));
  PlaceNextPhase(rec);
}

void OnlineScheduler::PlaceNextPhase(QueryRec* rec) {
  RetireThrough(now_);
  bool any_resident = false;
  for (const auto& site : resident_) {
    if (!site.empty()) {
      any_resident = true;
      break;
    }
  }
  // A null base on an idle machine keeps OPERATORSCHEDULE on the exact
  // offline code path (bit-identical placements and makespans).
  std::vector<WorkVector> base;
  const std::vector<WorkVector>* base_ptr = nullptr;
  if (any_resident) {
    base = ResidualLoadAt(now_);
    base_ptr = &base;
  }

  const int k = rec->planner->next_phase();
  auto phase = rec->planner->NextPhase(base_ptr);
  if (!phase.ok()) {
    AbortQuery(rec, phase.status());
    return;
  }

  SpanTimer place_span(rec->result.trace.get(), "online_place", k);

  // Union schedule over the touched sites: each resident reservation
  // (with its *remaining* work) and each new clone becomes a synthetic
  // degree-1 operator, residents first, new clones in placement order.
  // The eq. (2)-exact fluid model over this union predicts when the new
  // clones complete under contention.
  const int num_sites = machine_.num_sites;
  std::vector<char> touched(static_cast<size_t>(num_sites), 0);
  for (const ClonePlacement& p : phase->schedule.placements()) {
    touched[static_cast<size_t>(p.site)] = 1;
  }
  Schedule union_sched(num_sites, machine_.dims);
  std::vector<double> serial(static_cast<size_t>(num_sites), 0.0);
  int next_synth_id = 0;
  const auto add_clone = [&](const WorkVector& work, double t_seq, int site) {
    ParallelizedOp synth;
    synth.op_id = next_synth_id++;
    synth.degree = 1;
    synth.clones = {work};
    synth.t_seq = {t_seq};
    synth.t_par = t_seq;
    const Status placed = union_sched.Place(synth, 0, site);
    MRS_CHECK(placed.ok()) << placed.ToString();
    serial[static_cast<size_t>(site)] += t_seq;
  };
  int resident_count = 0;
  for (int s = 0; s < num_sites; ++s) {
    if (!touched[static_cast<size_t>(s)]) continue;
    for (const ResidentClone& c : resident_[static_cast<size_t>(s)]) {
      const double frac = RemainingFraction(c.start, c.finish, now_);
      add_clone(c.work * frac, c.t_seq * frac, s);
      ++resident_count;
    }
  }
  for (const ClonePlacement& p : phase->schedule.placements()) {
    add_clone(p.work, p.t_seq, p.site);
  }

  const FluidSimulator simulator(usage_, SharingPolicy::kOptimalStretch);
  auto sim = simulator.SimulatePhase(union_sched);
  if (!sim.ok()) {
    place_span.End();
    AbortQuery(rec, sim.status());
    return;
  }

  // Reserve the new clones at their predicted completion instants and
  // close the phase at the barrier (the last new clone's finish).
  double barrier = 0.0;
  const auto& placements = phase->schedule.placements();
  for (size_t i = 0; i < placements.size(); ++i) {
    const double fin =
        sim->clone_finish[static_cast<size_t>(resident_count) + i];
    barrier = std::max(barrier, fin);
    resident_[static_cast<size_t>(placements[i].site)].push_back(
        ResidentClone{rec->result.id, placements[i].work, placements[i].t_seq,
                      now_, now_ + fin});
  }
  double serial_bound = 0.0;
  for (int s = 0; s < num_sites; ++s) {
    if (touched[static_cast<size_t>(s)]) {
      serial_bound = std::max(serial_bound, serial[static_cast<size_t>(s)]);
    }
  }

  OnlinePhaseTiming timing;
  timing.phase = k;
  timing.start_ms = now_;
  timing.finish_ms = now_ + barrier;
  timing.uncontended_ms = phase->makespan;
  timing.serial_bound_ms = serial_bound;
  rec->result.timings.push_back(timing);

  PhaseSchedule placed = std::move(phase).value();
  placed.makespan = barrier;  // contended duration
  rec->result.schedule.response_time += barrier;
  rec->result.schedule.phases.push_back(std::move(placed));

  if (place_span.active()) {
    place_span.AttrInt("residents", resident_count);
    place_span.AttrDouble("start_ms", timing.start_ms);
    place_span.AttrDouble("duration_ms", barrier);
    place_span.AttrDouble("uncontended_ms", timing.uncontended_ms);
    place_span.AttrDouble("serial_bound_ms", serial_bound);
  }
  place_span.End();

  rec->fully_placed = rec->planner->done();
  PushEvent(now_ + barrier, Event::kPhaseDone, rec->result.id);
}

void OnlineScheduler::PlaceListSchedule(QueryRec* rec) {
  RetireThrough(now_);
  bool any_resident = false;
  for (const auto& site : resident_) {
    if (!site.empty()) {
      any_resident = true;
      break;
    }
  }
  // A null base on an idle machine keeps every placement round on the
  // exact offline ListSchedule code path.
  std::vector<WorkVector> base;
  const std::vector<WorkVector>* base_ptr = nullptr;
  if (any_resident) {
    base = ResidualLoadAt(now_);
    base_ptr = &base;
  }

  ParallelizeCache* cache = options_.use_cost_cache ? &cache_ : nullptr;
  auto list = ListSchedule(
      *rec->ops, *rec->task_tree, rec->costs, params_, machine_, usage_,
      ListOptionsFrom(options_, cache, rec->result.trace.get(), base_ptr));
  if (!list.ok()) {
    AbortQuery(rec, list.status());
    return;
  }

  SpanTimer place_span(rec->result.trace.get(), "online_place_list");

  // Staggered reservations: each clone occupies its own [start, finish)
  // window of the shared virtual clock, so later arrivals see its linearly
  // decaying remaining work only while it is actually mid-flight.
  const auto& placements = list->schedule.placements();
  double serial = 0.0;
  for (size_t i = 0; i < placements.size(); ++i) {
    const ClonePlacement& p = placements[i];
    resident_[static_cast<size_t>(p.site)].push_back(
        ResidentClone{rec->result.id, p.work, p.t_seq, now_ + p.start,
                      now_ + list->clone_finish[i]});
    serial += p.t_seq;
  }
  const double makespan = list->makespan;

  // One whole-query timing record. The list makespan already reflects the
  // barrier-free timeline; residual load steered placement but does not
  // stretch durations, so contended == uncontended here, and the serial
  // bound is the run-everything-sequentially time of the query's clones.
  OnlinePhaseTiming timing;
  timing.phase = 0;
  timing.start_ms = now_;
  timing.finish_ms = now_ + makespan;
  timing.uncontended_ms = makespan;
  timing.serial_bound_ms = serial;
  rec->result.timings.push_back(timing);

  const int rounds = list->rounds;
  const bool fell_back = list->used_tree_fallback;
  PhaseSchedule placed{/*phase=*/0, std::move(list->ops),
                       std::move(list->schedule), makespan};
  rec->result.schedule.phases.push_back(std::move(placed));
  rec->result.schedule.response_time = makespan;

  if (place_span.active()) {
    place_span.AttrInt("rounds", rounds);
    place_span.AttrInt("tree_fallback", fell_back ? 1 : 0);
    place_span.AttrDouble("start_ms", timing.start_ms);
    place_span.AttrDouble("duration_ms", makespan);
    place_span.AttrDouble("serial_bound_ms", serial);
  }
  place_span.End();

  rec->fully_placed = true;
  PushEvent(now_ + makespan, Event::kPhaseDone, rec->result.id);
}

void OnlineScheduler::CompleteQuery(QueryRec* rec, double at_ms) {
  rec->result.state = OnlineQueryState::kDone;
  rec->result.finish_ms = at_ms;
  makespan_hist_->Record(at_ms - rec->result.admit_ms);
  admission_.OnFinished(RequestOf(*rec));
  rec->planner.reset();
  rec->task_tree.reset();
  rec->ops.reset();
  rec->costs.clear();
  rec->costs.shrink_to_fit();
  UpdateGauges();
  TryAdmitFromQueue();
}

void OnlineScheduler::AbortQuery(QueryRec* rec, Status status) {
  const uint64_t id = rec->result.id;
  for (auto& site : resident_) {
    site.erase(std::remove_if(
                   site.begin(), site.end(),
                   [id](const ResidentClone& c) { return c.query == id; }),
               site.end());
  }
  admission_.OnFinished(RequestOf(*rec));
  rec->result.state = OnlineQueryState::kRejected;
  rec->result.status = std::move(status);
  rec->result.finish_ms = now_;
  rejected_->Increment();
  rec->planner.reset();
  rec->task_tree.reset();
  rec->ops.reset();
  rec->costs.clear();
  rec->costs.shrink_to_fit();
  UpdateGauges();
  TryAdmitFromQueue();
}

void OnlineScheduler::FinalizeRejected(QueryRec* rec, Status status,
                                       OnlineQueryState state) {
  rec->result.state = state;
  rec->result.status = std::move(status);
  rec->result.finish_ms = now_;
  if (state == OnlineQueryState::kTimedOut) {
    timeout_->Increment();
  } else {
    rejected_->Increment();
  }
  rec->planner.reset();
  rec->task_tree.reset();
  rec->ops.reset();
  rec->costs.clear();
  rec->costs.shrink_to_fit();
  UpdateGauges();
}

void OnlineScheduler::TryAdmitFromQueue() {
  // Admissible waiters first — finish wins a deadline tie: when a clone
  // finish frees a slot at the very instant a waiter's budget runs out,
  // the waiter is admitted, not timed out. (A waiter whose deadline
  // passed *strictly* earlier cannot reach this point still queued: its
  // kDeadline event already fired and expired it — EventLater orders
  // equal-time finishes ahead of deadlines for exactly this case.)
  AdmissionRequest req;
  while (admission_.PopAdmissible(&req)) {
    auto it = queries_.find(req.id);
    MRS_CHECK(it != queries_.end()) << "queued id unknown to the scheduler";
    AdmitQuery(it->second.get());
  }
  // Whoever is still queued with an exhausted budget times out.
  for (const AdmissionRequest& expired : admission_.ExpireDeadlines(now_)) {
    auto it = queries_.find(expired.id);
    if (it == queries_.end()) continue;
    FinalizeRejected(
        it->second.get(),
        Status::DeadlineExceeded(StrFormat(
            "queue wait exceeded the %.3f ms budget",
            expired.deadline_ms - expired.arrival_ms)),
        OnlineQueryState::kTimedOut);
  }
  UpdateGauges();
}

Status OnlineScheduler::AdvanceTo(double t_ms) {
  ProcessUntil(t_ms);
  return Status::OK();
}

Status OnlineScheduler::Drain() {
  while (!events_.empty()) {
    const Event event = events_.top();
    events_.pop();
    Dispatch(event);
  }
  if (admission_.queue_depth() > 0 || admission_.in_flight() > 0) {
    return Status::Internal(
        StrFormat("drain left %d queued and %d running queries",
                  admission_.queue_depth(), admission_.in_flight()));
  }
  RetireThrough(now_);
  return Status::OK();
}

Status OnlineScheduler::ResolveQuery(uint64_t id) {
  if (queries_.find(id) == queries_.end()) {
    return Status::NotFound(StrFormat(
        "unknown query id %llu", static_cast<unsigned long long>(id)));
  }
  while (!Resolved(id)) {
    if (events_.empty()) {
      return Status::Internal("query unresolved but no pending events");
    }
    const Event event = events_.top();
    events_.pop();
    Dispatch(event);
  }
  return Status::OK();
}

bool OnlineScheduler::Resolved(uint64_t id) const {
  auto it = queries_.find(id);
  if (it == queries_.end()) return false;
  const QueryRec& rec = *it->second;
  return rec.result.terminal() ||
         (rec.result.state == OnlineQueryState::kRunning && rec.fully_placed);
}

const OnlineQueryResult* OnlineScheduler::result(uint64_t id) const {
  auto it = queries_.find(id);
  return it == queries_.end() ? nullptr : &it->second->result;
}

std::vector<WorkVector> OnlineScheduler::ResidualLoad() const {
  return ResidualLoadAt(now_);
}

Status OnlineScheduler::CheckInvariants() const {
  for (int s = 0; s < machine_.num_sites; ++s) {
    for (const ResidentClone& c : resident_[static_cast<size_t>(s)]) {
      if (!c.work.IsNonNegative()) {
        return Status::Internal(
            StrFormat("site %d holds a clone with negative work", s));
      }
      if (c.finish + kTimeTol < c.start) {
        return Status::Internal(
            StrFormat("site %d holds a clone finishing before it starts", s));
      }
    }
  }
  for (const WorkVector& w : ResidualLoadAt(now_)) {
    if (!w.IsNonNegative()) {
      return Status::Internal("negative residual load component");
    }
  }
  int running = 0;
  int queued = 0;
  for (const auto& entry : queries_) {
    const OnlineQueryState state = entry.second->result.state;
    if (state == OnlineQueryState::kRunning) ++running;
    if (state == OnlineQueryState::kQueued) ++queued;
  }
  if (running != admission_.in_flight()) {
    return Status::Internal(
        StrFormat("%d running queries but admission tracks %d", running,
                  admission_.in_flight()));
  }
  if (queued != admission_.queue_depth()) {
    return Status::Internal(
        StrFormat("%d queued queries but admission tracks %d", queued,
                  admission_.queue_depth()));
  }
  if (running > admission_.options().max_in_flight) {
    return Status::Internal("multiprogramming level exceeded");
  }
  return Status::OK();
}

void OnlineScheduler::ProcessUntil(double t_ms) {
  while (!events_.empty() && events_.top().time <= t_ms) {
    const Event event = events_.top();
    events_.pop();
    Dispatch(event);
  }
  if (t_ms > now_) now_ = t_ms;
}

void OnlineScheduler::Dispatch(const Event& event) {
  if (event.time > now_) now_ = event.time;
  auto it = queries_.find(event.query);
  if (it == queries_.end()) return;
  QueryRec* rec = it->second.get();
  switch (event.kind) {
    case Event::kPhaseDone:
      if (rec->result.state != OnlineQueryState::kRunning) return;  // stale
      RetireThrough(now_);
      if (rec->planner != nullptr && !rec->planner->done()) {
        PlaceNextPhase(rec);
      } else {
        CompleteQuery(rec, event.time);
      }
      break;
    case Event::kDeadline:
      if (rec->result.state != OnlineQueryState::kQueued) return;  // stale
      for (const AdmissionRequest& req : admission_.ExpireDeadlines(now_)) {
        auto qit = queries_.find(req.id);
        if (qit == queries_.end()) continue;
        FinalizeRejected(
            qit->second.get(),
            Status::DeadlineExceeded(StrFormat(
                "queue wait exceeded the %.3f ms budget",
                req.deadline_ms - req.arrival_ms)),
            OnlineQueryState::kTimedOut);
      }
      break;
  }
}

void OnlineScheduler::PushEvent(double time, Event::Kind kind,
                                uint64_t query) {
  Event event;
  event.time = time;
  event.seq = next_seq_++;
  event.kind = kind;
  event.query = query;
  events_.push(event);
}

void OnlineScheduler::RetireThrough(double t_ms) {
  for (auto& site : resident_) {
    site.erase(std::remove_if(site.begin(), site.end(),
                              [t_ms](const ResidentClone& c) {
                                return c.finish <= t_ms + kTimeTol;
                              }),
               site.end());
  }
}

std::vector<WorkVector> OnlineScheduler::ResidualLoadAt(double t_ms) const {
  std::vector<WorkVector> load(
      static_cast<size_t>(machine_.num_sites),
      WorkVector(static_cast<size_t>(machine_.dims)));
  for (int s = 0; s < machine_.num_sites; ++s) {
    for (const ResidentClone& c : resident_[static_cast<size_t>(s)]) {
      if (c.finish <= t_ms + kTimeTol) continue;
      load[static_cast<size_t>(s)].AddScaled(
          c.work, RemainingFraction(c.start, c.finish, t_ms));
    }
  }
  return load;
}

AdmissionRequest OnlineScheduler::RequestOf(const QueryRec& rec) const {
  AdmissionRequest req;
  req.id = rec.result.id;
  req.arrival_ms = rec.result.arrival_ms;
  req.deadline_ms = rec.deadline_ms;
  req.expected_makespan_ms = rec.result.expected_makespan_ms;
  req.memory_bytes = rec.result.memory_estimate_bytes;
  return req;
}

void OnlineScheduler::UpdateGauges() {
  queue_gauge_->Set(static_cast<double>(admission_.queue_depth()));
  in_flight_gauge_->Set(static_cast<double>(admission_.in_flight()));
}

}  // namespace mrs
