#include "online/admission.h"

#include <algorithm>
#include <iterator>

#include "common/logging.h"
#include "common/str_util.h"

namespace mrs {

std::string_view AdmissionPolicyToString(AdmissionPolicy policy) {
  switch (policy) {
    case AdmissionPolicy::kFifo:
      return "fifo";
    case AdmissionPolicy::kShortestMakespanFirst:
      return "shortest-makespan-first";
  }
  return "unknown";
}

Status AdmissionOptions::Validate() const {
  if (max_in_flight < 1) {
    return Status::InvalidArgument(
        StrFormat("max_in_flight must be >= 1, got %d", max_in_flight));
  }
  if (max_queue_depth < 0) {
    return Status::InvalidArgument(
        StrFormat("max_queue_depth must be >= 0, got %d", max_queue_depth));
  }
  return Status::OK();
}

AdmissionController::AdmissionController(const AdmissionOptions& options)
    : options_(options) {
  MRS_CHECK(options_.Validate().ok()) << "invalid AdmissionOptions";
}

AdmissionController::Decision AdmissionController::OnArrival(
    const AdmissionRequest& req, Status* why) {
  if (options_.memory_limit_bytes >= 0 &&
      req.memory_bytes > options_.memory_limit_bytes) {
    if (why != nullptr) {
      *why = Status::Unavailable(StrFormat(
          "query needs %s of table memory, budget is %s",
          FormatBytes(req.memory_bytes).c_str(),
          FormatBytes(options_.memory_limit_bytes).c_str()));
    }
    return Decision::kReject;
  }
  // Arrivals go behind the waiting queue: a free slot is only handed to a
  // newcomer when nobody is waiting (no overtaking at the door).
  if (queue_.empty() && HasSlot() && MemoryFits(req.memory_bytes)) {
    return Decision::kAdmit;
  }
  if (queue_depth() < options_.max_queue_depth) {
    queue_.push_back(req);
    return Decision::kQueue;
  }
  if (why != nullptr) {
    *why = Status::Unavailable(
        StrFormat("admission queue full (depth %d)", options_.max_queue_depth));
  }
  return Decision::kReject;
}

void AdmissionController::OnAdmitted(const AdmissionRequest& req) {
  ++in_flight_;
  memory_in_use_ += req.memory_bytes;
}

void AdmissionController::OnFinished(const AdmissionRequest& req) {
  MRS_CHECK(in_flight_ > 0) << "OnFinished without a running query";
  --in_flight_;
  memory_in_use_ -= req.memory_bytes;
  if (memory_in_use_ < 0) memory_in_use_ = 0;  // fp dust
}

std::vector<AdmissionRequest> AdmissionController::ExpireDeadlines(
    double now_ms) {
  std::vector<AdmissionRequest> expired;
  for (auto it = queue_.begin(); it != queue_.end();) {
    if (it->deadline_ms >= 0 && it->deadline_ms <= now_ms) {
      expired.push_back(*it);
      it = queue_.erase(it);
    } else {
      ++it;
    }
  }
  return expired;
}

bool AdmissionController::PopAdmissible(AdmissionRequest* out) {
  if (queue_.empty() || !HasSlot()) return false;
  if (options_.policy == AdmissionPolicy::kFifo) {
    if (MemoryFits(queue_.front().memory_bytes)) {
      *out = queue_.front();
      queue_.pop_front();
      return true;
    }
    // Head-of-line query does not fit memory. Strict FIFO (the default)
    // blocks here — smaller fitting queries behind the head wait until
    // running queries free its memory (see AdmissionOptions::
    // allow_fifo_bypass for the trade). With bypass, admit the first
    // fitting query in arrival order; the head keeps its place.
    if (!options_.allow_fifo_bypass) return false;
    for (auto it = std::next(queue_.begin()); it != queue_.end(); ++it) {
      if (!MemoryFits(it->memory_bytes)) continue;
      *out = *it;
      queue_.erase(it);
      return true;
    }
    return false;
  }
  // Shortest-expected-makespan-first among the entries that fit memory.
  auto best = queue_.end();
  for (auto it = queue_.begin(); it != queue_.end(); ++it) {
    if (!MemoryFits(it->memory_bytes)) continue;
    if (best == queue_.end() ||
        it->expected_makespan_ms < best->expected_makespan_ms) {
      best = it;
    }
  }
  if (best == queue_.end()) return false;
  *out = *best;
  queue_.erase(best);
  return true;
}

double AdmissionController::NextDeadline() const {
  double next = -1.0;
  for (const auto& req : queue_) {
    if (req.deadline_ms < 0) continue;
    if (next < 0 || req.deadline_ms < next) next = req.deadline_ms;
  }
  return next;
}

}  // namespace mrs
