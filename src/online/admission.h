#ifndef MRS_ONLINE_ADMISSION_H_
#define MRS_ONLINE_ADMISSION_H_

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "common/status.h"

namespace mrs {

/// Which queued query is admitted when a multiprogramming slot frees.
enum class AdmissionPolicy {
  /// Strict arrival order; a head-of-line query whose memory demand does
  /// not fit blocks the queue (fairness over utilization).
  kFifo,
  /// Shortest-expected-makespan-first: among the queued queries whose
  /// memory demand fits, admit the one with the smallest idle-system
  /// makespan estimate (ties broken by arrival order). The classic
  /// mean-response-time heuristic for on-line multi-query scheduling.
  kShortestMakespanFirst,
};

std::string_view AdmissionPolicyToString(AdmissionPolicy policy);

struct AdmissionOptions {
  AdmissionPolicy policy = AdmissionPolicy::kFifo;
  /// Multiprogramming level: queries running concurrently against the
  /// shared sites. Must be >= 1.
  int max_in_flight = 4;
  /// Arrivals beyond this many waiting queries are rejected with
  /// Unavailable. 0 = never queue (admit-or-reject).
  int max_queue_depth = 64;
  /// Default queue-wait budget for requests that do not carry their own
  /// (relative ms on the virtual clock); <= 0 = no deadline.
  double default_timeout_ms = -1.0;
  /// Aggregate memory budget for the materialized state (hash/group
  /// tables) of all running queries, in bytes; < 0 = unlimited. A single
  /// query whose estimate exceeds the budget is rejected outright.
  double memory_limit_bytes = -1.0;
  /// kFifo only: whether a head-of-line query whose memory demand does
  /// not currently fit may be overtaken by the first *fitting* query
  /// behind it (arrival order preserved among the bypassers).
  ///
  /// Default false — strict FIFO: the blocked head parks the whole queue
  /// until running queries release enough memory, starving smaller
  /// fitting requests behind it indefinitely (fairness over utilization;
  /// pinned by AdmissionControllerTest.FifoHeadOfLineStarvesSmallerFits).
  /// True trades that fairness for utilization; the head can in turn be
  /// starved by a stream of small bypassers, so deadlines remain the
  /// backstop. Ignored by kShortestMakespanFirst, which always selects
  /// among fitting entries.
  bool allow_fifo_bypass = false;

  Status Validate() const;
};

/// One query's admission-relevant footprint.
struct AdmissionRequest {
  uint64_t id = 0;
  double arrival_ms = 0.0;
  /// Absolute deadline on the virtual clock; < 0 = none.
  double deadline_ms = -1.0;
  /// Idle-system makespan estimate (drives kShortestMakespanFirst).
  double expected_makespan_ms = 0.0;
  /// Estimated bytes of materialized state while running.
  double memory_bytes = 0.0;
};

/// Admission control for the online scheduler: bounded waiting queue,
/// multiprogramming-level and memory budgets, pluggable dequeue policy,
/// and per-request deadlines. Purely mechanical and single-threaded —
/// the OnlineScheduler drives it from its virtual-time event loop, and
/// it owns no clock of its own.
class AdmissionController {
 public:
  explicit AdmissionController(const AdmissionOptions& options);

  enum class Decision { kAdmit, kQueue, kReject };

  /// Decides for an arriving request. kAdmit leaves all state untouched —
  /// the caller confirms with OnAdmitted once the query is actually
  /// placed. kQueue means the request was enqueued. kReject stores the
  /// typed reason in `why` (Unavailable for queue/memory pressure).
  Decision OnArrival(const AdmissionRequest& req, Status* why);

  /// Reserves a multiprogramming slot and the request's memory.
  void OnAdmitted(const AdmissionRequest& req);

  /// Releases the slot and memory of a running query that completed or
  /// was aborted.
  void OnFinished(const AdmissionRequest& req);

  /// Removes and returns every queued request whose deadline expired at
  /// or before `now_ms`, in arrival order.
  std::vector<AdmissionRequest> ExpireDeadlines(double now_ms);

  /// Removes the next admissible queued request (slot free and memory
  /// fits) into `out` per the policy; false when nothing can be admitted
  /// right now. Does not reserve — pair with OnAdmitted.
  bool PopAdmissible(AdmissionRequest* out);

  /// Earliest absolute deadline among queued requests; < 0 when none.
  double NextDeadline() const;

  int queue_depth() const { return static_cast<int>(queue_.size()); }
  int in_flight() const { return in_flight_; }
  double memory_in_use_bytes() const { return memory_in_use_; }
  const AdmissionOptions& options() const { return options_; }

 private:
  bool HasSlot() const { return in_flight_ < options_.max_in_flight; }
  bool MemoryFits(double bytes) const {
    return options_.memory_limit_bytes < 0 ||
           memory_in_use_ + bytes <= options_.memory_limit_bytes;
  }

  AdmissionOptions options_;
  std::deque<AdmissionRequest> queue_;  // arrival order
  int in_flight_ = 0;
  double memory_in_use_ = 0.0;
};

}  // namespace mrs

#endif  // MRS_ONLINE_ADMISSION_H_
