#ifndef MRS_ONLINE_ONLINE_SCHEDULER_H_
#define MRS_ONLINE_ONLINE_SCHEDULER_H_

#include <cstdint>
#include <map>
#include <memory>
#include <queue>
#include <string>
#include <vector>

#include "common/metrics.h"
#include "common/result.h"
#include "core/tree_schedule.h"
#include "cost/parallelize_cache.h"
#include "exec/trace.h"
#include "online/admission.h"
#include "plan/plan_tree.h"
#include "resource/machine.h"
#include "resource/usage_model.h"

namespace mrs {

/// Per-query scheduling engine of the online scheduler.
enum class OnlineEngine {
  /// Phased TREESCHEDULE: phases are placed one at a time against the
  /// residual load, and contended completions are predicted by the fluid
  /// union model (the default, byte-identical to the historical behavior).
  kTree,
  /// Barrier-free LISTSCHEDULE: the whole query is scheduled one-shot at
  /// admission with the residual-load snapshot threaded through
  /// ListScheduleOptions::base_load (ROADMAP item 1's leftover), so the
  /// least-loaded rule steers every placement round away from busy sites.
  /// Clone start/finish times become staggered reservations on the
  /// virtual clock and the query completes at its list makespan. The
  /// snapshot biases *placement* only — durations are not re-stretched by
  /// later arrivals, matching the non-preemptive reservation model.
  kList,
};

struct OnlineSchedulerOptions {
  /// Overlap epsilon of the usage model (EA2) used for costing, placement,
  /// and the fluid completion model.
  double overlap_eps = 0.5;
  int num_disks = 1;
  /// Per-query TREESCHEDULE knobs. `cache` and `trace` are managed by the
  /// scheduler itself (see use_cost_cache / collect_traces) and ignored.
  /// `tree.list_options.placement_index` selects the indexed placement
  /// engine for the residual-load OPERATORSCHEDULE path too (the
  /// base_load branch re-run per phase of every admitted query) — with P
  /// sites and MPL resident queries that path is the hot loop of the
  /// service, and the indexed and linear engines are pinned to produce
  /// byte-identical placements.
  TreeScheduleOptions tree;
  /// Engine each admitted query is scheduled with. Both engines share the
  /// `tree` knobs (granularity, policy, build_degree, list_options); the
  /// admission-time makespan estimate uses the selected engine too, so the
  /// documented "equals the contended response time when the query runs
  /// alone" property holds for either.
  OnlineEngine engine = OnlineEngine::kTree;
  AdmissionOptions admission;
  /// Share one memoized parallelize cache across all queries.
  bool use_cost_cache = true;
  /// Record a per-query ScheduleTrace (planner spans plus the online
  /// placement spans), retrievable from OnlineQueryResult::trace.
  bool collect_traces = false;
  /// Clock for the traces; default is wall time. Inject
  /// ScheduleTrace::CountingClock() for byte-deterministic traces.
  ScheduleTrace::ClockFn trace_clock;
  /// Registry for the online.* counters/gauges/histograms; nullptr = the
  /// process-global registry.
  MetricsRegistry* metrics = nullptr;
  /// Bytes of materialized state per input byte of a state-building
  /// operator (hash table / group table / sorted runs); feeds the
  /// admission memory estimate.
  double state_overhead = 1.2;
};

enum class OnlineQueryState {
  kQueued,    ///< waiting for a multiprogramming slot
  kRunning,   ///< admitted; phases placing/executing on the virtual clock
  kDone,      ///< all phases completed
  kRejected,  ///< never admitted (queue full, memory, or pipeline error)
  kTimedOut,  ///< queue wait exceeded the request deadline
};

std::string_view OnlineQueryStateToString(OnlineQueryState state);

/// Timing of one placed phase on the virtual clock.
struct OnlinePhaseTiming {
  int phase = -1;
  double start_ms = 0.0;
  /// Barrier instant: when the last of the phase's clones finishes under
  /// contention.
  double finish_ms = 0.0;
  /// The phase's uncontended eq. (3) makespan (what the phase would take
  /// on an idle machine) — a lower bound on the contended duration.
  double uncontended_ms = 0.0;
  /// No-overlap serial bound: the max over touched sites of the summed
  /// remaining stand-alone times of resident + new clones at placement
  /// time. Time sharing can never do worse, so DurationMs() <= this.
  double serial_bound_ms = 0.0;

  double DurationMs() const { return finish_ms - start_ms; }
};

/// Everything the scheduler knows about one submitted query.
struct OnlineQueryResult {
  uint64_t id = 0;
  OnlineQueryState state = OnlineQueryState::kQueued;
  /// OK unless rejected / timed out / aborted (then the typed reason).
  Status status;
  double arrival_ms = 0.0;
  double admit_ms = -1.0;
  double finish_ms = -1.0;
  /// Idle-system response-time estimate made at submit (drives the
  /// shortest-makespan-first policy; equals the contended response time
  /// exactly when the query runs alone).
  double expected_makespan_ms = 0.0;
  double memory_estimate_bytes = 0.0;
  /// Placed phases; each PhaseSchedule::makespan is the *contended*
  /// duration of the phase, so response_time = finish_ms - admit_ms.
  TreeScheduleResult schedule;
  std::vector<OnlinePhaseTiming> timings;
  std::shared_ptr<ScheduleTrace> trace;

  bool terminal() const {
    return state == OnlineQueryState::kDone ||
           state == OnlineQueryState::kRejected ||
           state == OnlineQueryState::kTimedOut;
  }
  /// Queue wait (admit - arrival); full wait for timed-out queries, 0
  /// while still queued or rejected.
  double QueueWaitMs() const;
  /// The (projected) completion instant: finish_ms once terminal, else
  /// admit_ms + the placed response time for a running query whose phases
  /// are all placed; -1 when not yet determined.
  double ProjectedFinishMs() const;
};

/// On-line multi-query scheduler: the multi-query follow-up the paper's
/// §9 sketches, built on the batch primitives. Queries arrive over a
/// *virtual* clock (milliseconds, same unit as the cost model); admission
/// control bounds the multiprogramming level; each admitted query's phases
/// are placed one at a time by PhasePlanner against the *residual* site
/// load — the remaining work vectors of the clones of co-resident queries
/// — so OPERATORSCHEDULE's least-loaded rule (eq. (2)/(3) over the union
/// of resident and new clones) becomes an incremental, residual-capacity
/// variant. Phase completions are predicted by the eq. (2)-exact fluid
/// model (FluidSimulator, kOptimalStretch) over the union schedule of each
/// touched site and drive the event loop.
///
/// The model is non-preemptive in reservations: a placed clone's finish
/// time is fixed when its phase is placed; later arrivals see its
/// *remaining* work (linear decay between start and finish) as residual
/// load but do not stretch it. On an idle machine the placements and the
/// phase durations are bit-identical to the offline TreeSchedule().
///
/// Deterministic and single-threaded: no wall clock, no threads; callers
/// (e.g. SchedService) serialize access.
class OnlineScheduler {
 public:
  OnlineScheduler(const CostParams& params, const MachineConfig& machine,
                  const OnlineSchedulerOptions& options = {});
  ~OnlineScheduler();  // out-of-line: QueryRec is incomplete here

  /// Submits a query arriving at virtual time max(arrival_ms, now());
  /// pending events up to the arrival instant fire first. `timeout_ms` is
  /// the queue-wait budget relative to arrival (< 0 = the admission
  /// default; 0 = reject unless admitted immediately). The plan is only
  /// read during the call. Returns the query id; the outcome — including
  /// a typed rejection — is read back via result().
  uint64_t Submit(const PlanTree& plan, double arrival_ms = -1.0,
                  double timeout_ms = -1.0);

  /// Fires all events up to `t_ms` and advances the clock to it.
  Status AdvanceTo(double t_ms);

  /// Runs the event loop until no query is queued or running.
  Status Drain();

  /// Advances the clock just far enough that `id` is Resolved().
  Status ResolveQuery(uint64_t id);

  /// True once the query is terminal OR running with every phase placed
  /// (its schedule and finish time are then fully determined, even though
  /// the virtual clock has not reached the finish instant).
  bool Resolved(uint64_t id) const;

  double now() const { return now_; }
  /// Result of a submitted query; nullptr for unknown ids. Valid until the
  /// scheduler dies (results of finished queries are kept).
  const OnlineQueryResult* result(uint64_t id) const;

  /// Residual load per site at now(): the summed remaining work vectors of
  /// all in-flight clones. Exactly zero on an idle system.
  std::vector<WorkVector> ResidualLoad() const;

  int in_flight() const { return admission_.in_flight(); }
  int queue_depth() const { return admission_.queue_depth(); }

  /// Structural invariants the property tests lean on: residual load
  /// non-negative, resident clones within their [start, finish] windows,
  /// admission accounting consistent with query states.
  Status CheckInvariants() const;

  const MachineConfig& machine() const { return machine_; }
  const OnlineSchedulerOptions& options() const { return options_; }

 private:
  struct QueryRec;
  struct Event {
    double time = 0.0;
    uint64_t seq = 0;  // tie-break: creation order
    enum Kind { kPhaseDone, kDeadline } kind = kPhaseDone;
    uint64_t query = 0;
  };
  struct EventLater {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      // Finish wins a timestamp tie against a deadline: a clone finish
      // that frees a slot at the very instant a waiter's budget runs out
      // must dispatch first, so the waiter is admitted rather than timed
      // out (the admission path makes the same choice — see
      // TryAdmitFromQueue).
      if (a.kind != b.kind) return a.kind == Event::kDeadline;
      return a.seq > b.seq;
    }
  };
  /// One in-flight clone's reservation at a site.
  struct ResidentClone {
    uint64_t query = 0;
    WorkVector work;   // full work vector
    double t_seq = 0.0;
    double start = 0.0;
    double finish = 0.0;
  };

  void ProcessUntil(double t_ms);
  void Dispatch(const Event& event);
  void PushEvent(double time, Event::Kind kind, uint64_t query);
  void AdmitQuery(QueryRec* rec);
  void PlaceNextPhase(QueryRec* rec);
  void PlaceListSchedule(QueryRec* rec);
  void CompleteQuery(QueryRec* rec, double at_ms);
  void AbortQuery(QueryRec* rec, Status status);
  void FinalizeRejected(QueryRec* rec, Status status, OnlineQueryState state);
  void TryAdmitFromQueue();
  void RetireThrough(double t_ms);
  std::vector<WorkVector> ResidualLoadAt(double t_ms) const;
  AdmissionRequest RequestOf(const QueryRec& rec) const;
  void UpdateGauges();

  CostParams params_;
  MachineConfig machine_;
  OnlineSchedulerOptions options_;
  OverlapUsageModel usage_;
  ParallelizeCache cache_;
  AdmissionController admission_;

  double now_ = 0.0;
  uint64_t next_id_ = 1;
  uint64_t next_seq_ = 0;
  std::priority_queue<Event, std::vector<Event>, EventLater> events_;
  std::map<uint64_t, std::unique_ptr<QueryRec>> queries_;
  /// Per-site reservations of running queries (retired lazily).
  std::vector<std::vector<ResidentClone>> resident_;

  Counter* submitted_ = nullptr;
  Counter* admitted_ = nullptr;
  Counter* rejected_ = nullptr;
  Counter* timeout_ = nullptr;
  Gauge* queue_gauge_ = nullptr;
  Gauge* in_flight_gauge_ = nullptr;
  Histogram* queue_wait_hist_ = nullptr;
  Histogram* makespan_hist_ = nullptr;
};

}  // namespace mrs

#endif  // MRS_ONLINE_ONLINE_SCHEDULER_H_
