#include "resource/work_vector.h"

#include <algorithm>

#include "common/logging.h"
#include "common/str_util.h"

namespace mrs {

double WorkVector::Length() const {
  double m = 0.0;
  for (double v : w_) m = std::max(m, v);
  return m;
}

double WorkVector::Total() const {
  double t = 0.0;
  for (double v : w_) t += v;
  return t;
}

bool WorkVector::IsNonNegative() const {
  for (double v : w_) {
    if (v < 0.0) return false;
  }
  return true;
}

bool WorkVector::DominatedBy(const WorkVector& other) const {
  MRS_CHECK(dim() == other.dim()) << "dimension mismatch in DominatedBy";
  for (size_t i = 0; i < w_.size(); ++i) {
    if (w_[i] > other.w_[i]) return false;
  }
  return true;
}

WorkVector& WorkVector::operator+=(const WorkVector& other) {
  MRS_CHECK(dim() == other.dim()) << "dimension mismatch in operator+=";
  for (size_t i = 0; i < w_.size(); ++i) w_[i] += other.w_[i];
  return *this;
}

WorkVector& WorkVector::operator-=(const WorkVector& other) {
  MRS_CHECK(dim() == other.dim()) << "dimension mismatch in operator-=";
  for (size_t i = 0; i < w_.size(); ++i) w_[i] -= other.w_[i];
  return *this;
}

WorkVector& WorkVector::operator*=(double s) {
  for (double& v : w_) v *= s;
  return *this;
}

std::string WorkVector::ToString() const {
  std::string out = "[";
  for (size_t i = 0; i < w_.size(); ++i) {
    if (i > 0) out += ", ";
    out += StrFormat("%.3f", w_[i]);
  }
  out += "]";
  return out;
}

double SetLength(const std::vector<WorkVector>& vectors) {
  return SumVectors(vectors).Length();
}

WorkVector SumVectors(const std::vector<WorkVector>& vectors) {
  if (vectors.empty()) return WorkVector();
  WorkVector sum(vectors.front().dim());
  for (const auto& v : vectors) sum += v;
  return sum;
}

}  // namespace mrs
