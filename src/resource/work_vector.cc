#include "resource/work_vector.h"

#include <algorithm>

#include "common/logging.h"
#include "common/str_util.h"

namespace mrs {

WorkVector::WorkVector(size_t dim) : dim_(dim) {
  if (dim_ <= kInlineDims) {
    std::fill(inline_.begin(), inline_.begin() + dim_, 0.0);
  } else {
    heap_.assign(dim_, 0.0);
  }
}

WorkVector::WorkVector(std::initializer_list<double> values)
    : dim_(values.size()) {
  if (dim_ <= kInlineDims) {
    std::copy(values.begin(), values.end(), inline_.begin());
  } else {
    heap_.assign(values.begin(), values.end());
  }
}

WorkVector::WorkVector(const std::vector<double>& values)
    : dim_(values.size()) {
  if (dim_ <= kInlineDims) {
    std::copy(values.begin(), values.end(), inline_.begin());
  } else {
    heap_ = values;
  }
}

double WorkVector::Length() const {
  double m = 0.0;
  const double* w = data();
  for (size_t i = 0; i < dim_; ++i) m = std::max(m, w[i]);
  return m;
}

double WorkVector::Total() const {
  double t = 0.0;
  const double* w = data();
  for (size_t i = 0; i < dim_; ++i) t += w[i];
  return t;
}

bool WorkVector::IsNonNegative() const {
  const double* w = data();
  for (size_t i = 0; i < dim_; ++i) {
    if (w[i] < 0.0) return false;
  }
  return true;
}

bool WorkVector::DominatedBy(const WorkVector& other) const {
  MRS_CHECK(dim() == other.dim()) << "dimension mismatch in DominatedBy";
  const double* a = data();
  const double* b = other.data();
  for (size_t i = 0; i < dim_; ++i) {
    if (a[i] > b[i]) return false;
  }
  return true;
}

WorkVector& WorkVector::operator+=(const WorkVector& other) {
  MRS_CHECK(dim() == other.dim()) << "dimension mismatch in operator+=";
  double* a = data();
  const double* b = other.data();
  for (size_t i = 0; i < dim_; ++i) a[i] += b[i];
  return *this;
}

WorkVector& WorkVector::operator-=(const WorkVector& other) {
  MRS_CHECK(dim() == other.dim()) << "dimension mismatch in operator-=";
  double* a = data();
  const double* b = other.data();
  for (size_t i = 0; i < dim_; ++i) a[i] -= b[i];
  return *this;
}

WorkVector& WorkVector::operator*=(double s) {
  double* a = data();
  for (size_t i = 0; i < dim_; ++i) a[i] *= s;
  return *this;
}

WorkVector& WorkVector::AddScaled(const WorkVector& v, double s) {
  MRS_CHECK(dim() == v.dim()) << "dimension mismatch in AddScaled";
  double* a = data();
  const double* b = v.data();
  for (size_t i = 0; i < dim_; ++i) a[i] += b[i] * s;
  return *this;
}

void WorkVector::SetZero() {
  double* a = data();
  for (size_t i = 0; i < dim_; ++i) a[i] = 0.0;
}

bool WorkVector::operator==(const WorkVector& other) const {
  if (dim_ != other.dim_) return false;
  const double* a = data();
  const double* b = other.data();
  for (size_t i = 0; i < dim_; ++i) {
    if (a[i] != b[i]) return false;
  }
  return true;
}

std::string WorkVector::ToString() const {
  std::string out = "[";
  const double* w = data();
  for (size_t i = 0; i < dim_; ++i) {
    if (i > 0) out += ", ";
    out += StrFormat("%.3f", w[i]);
  }
  out += "]";
  return out;
}

double SetLength(const std::vector<WorkVector>& vectors) {
  return SumVectors(vectors).Length();
}

WorkVector SumVectors(const std::vector<WorkVector>& vectors) {
  if (vectors.empty()) return WorkVector();
  WorkVector sum(vectors.front().dim());
  for (const auto& v : vectors) sum += v;
  return sum;
}

}  // namespace mrs
