#include "resource/usage_model.h"

#include <algorithm>

namespace mrs {

OverlapUsageModel::OverlapUsageModel(double epsilon)
    : epsilon_(std::clamp(epsilon, 0.0, 1.0)) {}

double OverlapUsageModel::SequentialTime(const WorkVector& w) const {
  return epsilon_ * w.Length() + (1.0 - epsilon_) * w.Total();
}

double OverlapUsageModel::SiteTime(const std::vector<WorkVector>& work) const {
  double slowest = 0.0;
  for (const auto& w : work) {
    slowest = std::max(slowest, SequentialTime(w));
  }
  return std::max(slowest, SetLength(work));
}

bool SequentialTimeWithinBounds(const WorkVector& w, double t_seq,
                                double tol) {
  return t_seq + tol >= w.Length() && t_seq <= w.Total() + tol;
}

}  // namespace mrs
