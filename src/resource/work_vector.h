#ifndef MRS_RESOURCE_WORK_VECTOR_H_
#define MRS_RESOURCE_WORK_VECTOR_H_

#include <cstddef>
#include <string>
#include <vector>

namespace mrs {

/// A d-dimensional work vector (paper §4.1): component i is the effective
/// busy time that an operator (or operator clone) imposes on resource i of
/// a site. Units are milliseconds of resource busy time throughout the
/// library.
///
/// The length of a vector, l(W) = max_i W[i], and the length of a set of
/// vectors, l(S) = max_i sum_{W in S} W[i], follow the paper's Table 1.
class WorkVector {
 public:
  WorkVector() = default;

  /// A zero vector of dimensionality `dim`.
  explicit WorkVector(size_t dim) : w_(dim, 0.0) {}

  /// From explicit components.
  WorkVector(std::initializer_list<double> values) : w_(values) {}
  explicit WorkVector(std::vector<double> values) : w_(std::move(values)) {}

  size_t dim() const { return w_.size(); }
  bool empty() const { return w_.empty(); }

  double operator[](size_t i) const { return w_[i]; }
  double& operator[](size_t i) { return w_[i]; }

  /// l(W): maximum component. 0 for an empty vector.
  double Length() const;

  /// Sum of all components (the vector's total work / processing area
  /// contribution).
  double Total() const;

  /// True iff every component is >= 0.
  bool IsNonNegative() const;

  /// True iff every component of *this is <= the matching component of
  /// `other` (the paper's componentwise partial order <=_d). Dimensions
  /// must match.
  bool DominatedBy(const WorkVector& other) const;

  WorkVector& operator+=(const WorkVector& other);
  WorkVector& operator-=(const WorkVector& other);
  WorkVector& operator*=(double s);

  friend WorkVector operator+(WorkVector a, const WorkVector& b) {
    a += b;
    return a;
  }
  friend WorkVector operator-(WorkVector a, const WorkVector& b) {
    a -= b;
    return a;
  }
  friend WorkVector operator*(WorkVector a, double s) {
    a *= s;
    return a;
  }
  friend WorkVector operator*(double s, WorkVector a) {
    a *= s;
    return a;
  }

  bool operator==(const WorkVector& other) const { return w_ == other.w_; }

  /// "[10.0, 15.0, 0.0]"
  std::string ToString() const;

  const std::vector<double>& components() const { return w_; }

 private:
  std::vector<double> w_;
};

/// l(S) for a set of work vectors: max component of the vector sum.
/// All vectors must share the same dimensionality; an empty set has length 0.
double SetLength(const std::vector<WorkVector>& vectors);

/// Componentwise sum of a set of vectors (the empty set sums to an empty
/// vector).
WorkVector SumVectors(const std::vector<WorkVector>& vectors);

}  // namespace mrs

#endif  // MRS_RESOURCE_WORK_VECTOR_H_
