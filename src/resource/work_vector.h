#ifndef MRS_RESOURCE_WORK_VECTOR_H_
#define MRS_RESOURCE_WORK_VECTOR_H_

#include <array>
#include <cstddef>
#include <initializer_list>
#include <string>
#include <vector>

namespace mrs {

/// A d-dimensional work vector (paper §4.1): component i is the effective
/// busy time that an operator (or operator clone) imposes on resource i of
/// a site. Units are milliseconds of resource busy time throughout the
/// library.
///
/// The length of a vector, l(W) = max_i W[i], and the length of a set of
/// vectors, l(S) = max_i sum_{W in S} W[i], follow the paper's Table 1.
///
/// Storage is inline (small-buffer) for d <= kInlineDims, which covers the
/// paper's experimental instantiation (d = 3: CPU/disk/net, §4.1/EA2) and
/// the multi-disk layouts up to six disks. Copying such a vector is a
/// plain memcpy-sized stack copy — no heap traffic — which is what keeps
/// the steady-state scheduling loops allocation-free (DESIGN.md §4f).
/// Dimensionalities above kInlineDims fall back to heap storage.
class WorkVector {
 public:
  static constexpr size_t kInlineDims = 8;

  WorkVector() = default;

  /// A zero vector of dimensionality `dim`.
  explicit WorkVector(size_t dim);

  /// From explicit components.
  WorkVector(std::initializer_list<double> values);
  explicit WorkVector(const std::vector<double>& values);

  size_t dim() const { return dim_; }
  bool empty() const { return dim_ == 0; }

  double operator[](size_t i) const { return data()[i]; }
  double& operator[](size_t i) { return data()[i]; }

  /// Contiguous component storage (inline buffer or heap fallback).
  const double* data() const {
    return dim_ <= kInlineDims ? inline_.data() : heap_.data();
  }
  double* data() { return dim_ <= kInlineDims ? inline_.data() : heap_.data(); }

  const double* begin() const { return data(); }
  const double* end() const { return data() + dim_; }
  double* begin() { return data(); }
  double* end() { return data() + dim_; }

  /// l(W): maximum component. 0 for an empty vector.
  double Length() const;

  /// Sum of all components (the vector's total work / processing area
  /// contribution).
  double Total() const;

  /// True iff every component is >= 0.
  bool IsNonNegative() const;

  /// True iff every component of *this is <= the matching component of
  /// `other` (the paper's componentwise partial order <=_d). Dimensions
  /// must match.
  bool DominatedBy(const WorkVector& other) const;

  WorkVector& operator+=(const WorkVector& other);
  WorkVector& operator-=(const WorkVector& other);
  WorkVector& operator*=(double s);

  /// Fused in-place scaled add: *this += v * s, without materializing the
  /// scaled temporary (one pass, bit-identical to the two-step form since
  /// each component performs the same multiply-then-add). `v` may alias
  /// *this, which yields w[i] += w[i] * s componentwise.
  WorkVector& AddScaled(const WorkVector& v, double s);

  /// Resets every component to zero, keeping the dimensionality (hot-loop
  /// helper so per-event accumulators can be hoisted and reused).
  void SetZero();

  friend WorkVector operator+(WorkVector a, const WorkVector& b) {
    a += b;
    return a;
  }
  friend WorkVector operator-(WorkVector a, const WorkVector& b) {
    a -= b;
    return a;
  }
  friend WorkVector operator*(WorkVector a, double s) {
    a *= s;
    return a;
  }
  friend WorkVector operator*(double s, WorkVector a) {
    a *= s;
    return a;
  }

  bool operator==(const WorkVector& other) const;
  bool operator!=(const WorkVector& other) const { return !(*this == other); }

  /// "[10.0, 15.0, 0.0]"
  std::string ToString() const;

  /// The components as a std::vector (a copy — the storage itself is
  /// inline for d <= kInlineDims).
  std::vector<double> components() const {
    return std::vector<double>(begin(), end());
  }

 private:
  size_t dim_ = 0;
  /// Valid for the first dim_ entries when dim_ <= kInlineDims.
  /// Value-initialized so that whole-object copies of short vectors never
  /// read indeterminate tail slots.
  std::array<double, kInlineDims> inline_{};
  /// Engaged only when dim_ > kInlineDims.
  std::vector<double> heap_;
};

/// l(S) for a set of work vectors: max component of the vector sum.
/// All vectors must share the same dimensionality; an empty set has length 0.
double SetLength(const std::vector<WorkVector>& vectors);

/// Componentwise sum of a set of vectors (the empty set sums to an empty
/// vector).
WorkVector SumVectors(const std::vector<WorkVector>& vectors);

}  // namespace mrs

#endif  // MRS_RESOURCE_WORK_VECTOR_H_
