#ifndef MRS_RESOURCE_USAGE_MODEL_H_
#define MRS_RESOURCE_USAGE_MODEL_H_

#include "resource/work_vector.h"

namespace mrs {

/// Maps a work vector to the stand-alone (sequential) execution time
/// T_seq(W) of an operator clone on one site (paper §4.1).
///
/// The paper's model only constrains T_seq to
///   max_i W[i]  <=  T_seq(W)  <=  sum_i W[i]
/// (perfect overlap of resource activity vs none). The experimental
/// instantiation EA2 parameterizes this interval by a single system-wide
/// *resource overlap* parameter epsilon in [0, 1]:
///
///   T(W) = eps * max_i W[i] + (1 - eps) * sum_i W[i]
///
/// eps = 1 means processing at different resources overlaps perfectly
/// (e.g. fully asynchronous I/O), eps = 0 means the resources are used
/// strictly one at a time.
class OverlapUsageModel {
 public:
  /// `epsilon` is clamped to [0, 1].
  explicit OverlapUsageModel(double epsilon);

  /// T_seq(W) under EA2.
  double SequentialTime(const WorkVector& w) const;

  /// The site execution time for a set of co-scheduled clones (paper
  /// eq. (2)): the larger of the slowest clone's stand-alone time and the
  /// busiest resource's total load l(work(s)).
  double SiteTime(const std::vector<WorkVector>& work) const;

  double epsilon() const { return epsilon_; }

 private:
  double epsilon_;
};

/// Verifies the model-inherent bounds max <= T_seq <= sum for a vector
/// (used by tests and validators; always true for OverlapUsageModel by
/// construction, modulo floating-point slack `tol`).
bool SequentialTimeWithinBounds(const WorkVector& w, double t_seq,
                                double tol = 1e-9);

}  // namespace mrs

#endif  // MRS_RESOURCE_USAGE_MODEL_H_
