#ifndef MRS_RESOURCE_MACHINE_H_
#define MRS_RESOURCE_MACHINE_H_

#include <string>
#include <vector>

#include "common/status.h"

namespace mrs {

/// Indices of the three resource dimensions used by the experimental
/// configuration (one CPU, one disk unit, one network interface per site,
/// paper §6.1). The library itself is generic in the dimensionality d; these
/// constants only name the default layout produced by the cost model.
inline constexpr size_t kCpuDim = 0;
inline constexpr size_t kDiskDim = 1;
inline constexpr size_t kNetDim = 2;
inline constexpr size_t kDefaultDims = 3;

/// Static description of the shared-nothing machine: P identical
/// multiprogrammed sites, each a collection of `dims` time-shareable
/// (preemptable) resources. Memory is intentionally absent (assumption A1:
/// it is not preemptable and the paper leaves it open).
///
/// Multi-disk sites (the paper's §4.1 example: "dimensions 1, 2, 3, and 4
/// may correspond to CPU, disk-1, disk-2, and network interface") keep the
/// canonical cpu/disk/net layout for dimensions 0-2 and append the extra
/// disks as dimensions 3, 4, ...; use WithDisks.
struct MachineConfig {
  /// Number of sites P.
  int num_sites = 16;
  /// Resources per site d.
  int dims = static_cast<int>(kDefaultDims);
  /// Optional resource names, used in reports; resized to `dims`.
  std::vector<std::string> resource_names = {"cpu", "disk", "net"};

  /// A machine whose sites have one CPU, `num_disks` disks, and one
  /// network interface (dims = 2 + num_disks). Requires num_disks >= 1.
  static MachineConfig WithDisks(int num_sites, int num_disks);

  /// Checks num_sites >= 1 and dims >= 1, and pads/truncates
  /// `resource_names` to exactly `dims` entries.
  Status Validate();

  /// A one-line summary, e.g. "P=80 sites x d=3 (cpu,disk,net)".
  std::string ToString() const;
};

}  // namespace mrs

#endif  // MRS_RESOURCE_MACHINE_H_
