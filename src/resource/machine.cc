#include "resource/machine.h"

#include "common/str_util.h"

namespace mrs {

MachineConfig MachineConfig::WithDisks(int num_sites, int num_disks) {
  MachineConfig config;
  config.num_sites = num_sites;
  config.dims = 2 + num_disks;
  config.resource_names = {"cpu", "disk0", "net"};
  for (int i = 1; i < num_disks; ++i) {
    config.resource_names.push_back(StrFormat("disk%d", i));
  }
  return config;
}

Status MachineConfig::Validate() {
  if (num_sites < 1) {
    return Status::InvalidArgument(
        StrFormat("MachineConfig.num_sites must be >= 1, got %d", num_sites));
  }
  if (dims < 1) {
    return Status::InvalidArgument(
        StrFormat("MachineConfig.dims must be >= 1, got %d", dims));
  }
  while (resource_names.size() < static_cast<size_t>(dims)) {
    resource_names.push_back(StrFormat("r%zu", resource_names.size()));
  }
  resource_names.resize(static_cast<size_t>(dims));
  return Status::OK();
}

std::string MachineConfig::ToString() const {
  std::vector<std::string> names(resource_names.begin(), resource_names.end());
  return StrFormat("P=%d sites x d=%d (%s)", num_sites, dims,
                   StrJoin(names, ",").c_str());
}

}  // namespace mrs
