#ifndef MRS_EXEC_TRACE_H_
#define MRS_EXEC_TRACE_H_

#include <chrono>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace mrs {

/// Per-query scheduler tracing: a ScheduleTrace records one timestamped
/// span per pipeline stage (parse → operator-tree expansion → costing →
/// parallelize → OPERATORSCHEDULE per phase → malleable adjustment →
/// TREESCHEDULE assembly), each annotated with what the paper's analysis
/// needs to audit the schedule: the binding eq. (3) term of a phase, the
/// chosen degree vs. N_max(op, f) per floating operator, parallelize-cache
/// hits/misses per stage, and pool queue-wait times in the batch engine.
///
/// Producers accept a nullable `TraceSink*`; every instrumentation site is
/// a branch on that pointer, so a null sink costs one predictable branch
/// and no allocation (the <2% claim is pinned by
/// bench/micro_trace_overhead). Aggregate, label-keyed process metrics
/// live in common/metrics.h — traces answer "where did *this* query's
/// time go", the registry answers "how is the process doing".

/// One timestamped stage of a query's scheduling pipeline.
struct TraceSpan {
  /// Stage name ("parse", "parallelize", "operator_schedule", ...).
  std::string name;
  /// Task-tree phase index the stage belongs to; -1 for whole-query
  /// stages.
  int phase = -1;
  double start_ms = 0.0;
  double end_ms = 0.0;
  /// Ordered key/value annotations (insertion order preserved).
  std::vector<std::pair<std::string, std::string>> attrs;

  double DurationMs() const { return end_ms - start_ms; }

  /// Value of an attribute by key; nullptr if absent.
  const std::string* FindAttr(const std::string& key) const;

  /// "parallelize[phase 0] 0.00..1.00ms {op3.degree=4, ...}"
  std::string ToString() const;
};

/// Receiver of trace spans. Instrumented code takes `TraceSink*` and must
/// treat nullptr as "tracing disabled".
class TraceSink {
 public:
  virtual ~TraceSink() = default;

  /// Current time in milliseconds on the sink's clock. Called once at span
  /// start and once at span end; implementations may use wall time or any
  /// deterministic stand-in.
  virtual double NowMs() = 0;

  virtual void AddSpan(TraceSpan span) = 0;
};

/// Scoped recorder of one span. Every method is a no-op when constructed
/// with a null sink — instrumentation sites pay one branch, no strings,
/// no clock reads. The span is emitted on End() (or destruction).
class SpanTimer {
 public:
  SpanTimer(TraceSink* sink, const char* name, int phase = -1);
  ~SpanTimer();

  SpanTimer(const SpanTimer&) = delete;
  SpanTimer& operator=(const SpanTimer&) = delete;

  /// True when a sink is attached; use to guard expensive annotation
  /// computations at the call site.
  bool active() const { return sink_ != nullptr; }

  void Attr(const std::string& key, std::string value);
  void AttrDouble(const std::string& key, double value);  // %.6g
  void AttrInt(const std::string& key, int64_t value);

  /// Stamps end_ms and emits the span to the sink. Idempotent.
  void End();

 private:
  TraceSink* sink_;
  TraceSpan span_;
  bool ended_ = false;
};

/// The standard TraceSink: an in-memory, thread-safe span log for one
/// query (or one batch item). The clock is injectable so tests and golden
/// files get byte-deterministic traces; the default clock is wall time
/// (steady_clock) in ms since construction.
class ScheduleTrace : public TraceSink {
 public:
  using ClockFn = std::function<double()>;

  ScheduleTrace();
  explicit ScheduleTrace(ClockFn clock);

  double NowMs() override;
  void AddSpan(TraceSpan span) override;

  /// Copy of the recorded spans, in emission order.
  std::vector<TraceSpan> spans() const;

  /// First recorded span with this name; nullopt-like: empty-name span if
  /// absent is awkward, so callers get a copy via found flag.
  bool FindSpan(const std::string& name, TraceSpan* out) const;

  void set_label(std::string label) { label_ = std::move(label); }
  const std::string& label() const { return label_; }

  /// Multi-line human-readable dump.
  std::string ToString() const;

  /// A deterministic clock for tests and goldens: successive calls return
  /// 0, 1, 2, ... (ms). Thread-safe.
  static ClockFn CountingClock();

 private:
  mutable std::mutex mu_;
  std::vector<TraceSpan> spans_;
  ClockFn clock_;
  std::string label_;
};

}  // namespace mrs

#endif  // MRS_EXEC_TRACE_H_
