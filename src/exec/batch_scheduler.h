#ifndef MRS_EXEC_BATCH_SCHEDULER_H_
#define MRS_EXEC_BATCH_SCHEDULER_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/metrics.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "core/tree_schedule.h"
#include "cost/cost_params.h"
#include "cost/parallelize_cache.h"
#include "exec/trace.h"
#include "plan/plan_tree.h"
#include "resource/machine.h"
#include "workload/generator.h"

namespace mrs {

/// Knobs of the batch scheduling engine.
struct BatchSchedulerOptions {
  /// Worker threads of the engine's pool (clamped to >= 1).
  int num_threads = 1;
  /// Resource overlap parameter epsilon (EA2).
  double overlap_eps = 0.5;
  /// Disks per site, forwarded to the cost model.
  int num_disks = 1;
  /// Per-query scheduling knobs (granularity, policy, list options).
  TreeScheduleOptions tree;
  /// Share one memoized parallelize cache across the whole batch. Caching
  /// is semantically invisible (entries are pure functions of operator
  /// signatures); disable only to measure its effect.
  bool use_cost_cache = true;
  /// When true every item records a per-query ScheduleTrace (expansion,
  /// costing, and the TREESCHEDULE stage spans) published on
  /// BatchItemResult::trace. Off by default: tracing allocates per item.
  bool collect_traces = false;
  /// Clock for the per-item traces; null = wall time since each trace's
  /// construction. Tests inject ScheduleTrace::CountingClock() for
  /// deterministic timestamps (shared across items, so batch-mode stamps
  /// interleave but stay monotone within each item's trace).
  ScheduleTrace::ClockFn trace_clock;
  /// Registry the engine's process metrics ("batch.items", "batch.errors",
  /// "batch.item_ms", "pool.queue_wait_ms", and the parallelize cache's
  /// hit/miss counters) report into; null = MetricsRegistry::Global().
  /// Not owned; must outlive the engine.
  MetricsRegistry* metrics = nullptr;
};

/// Outcome of one batch item, in input order.
struct BatchItemResult {
  int index = -1;
  Status status = Status::OK();
  /// Meaningful iff status.ok().
  TreeScheduleResult schedule;
  /// Per-query trace; non-null iff BatchSchedulerOptions::collect_traces.
  /// Shared so results stay copyable.
  std::shared_ptr<ScheduleTrace> trace;
};

/// Outcome of one batch run.
struct BatchOutput {
  /// items[i] is the result for input plan i, independent of thread count
  /// and execution interleaving.
  std::vector<BatchItemResult> items;
  /// Parallelize-cache counters for this run (both 0 when the cache is
  /// disabled).
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;

  /// Number of items with an OK status.
  int NumOk() const;
  /// Sum of the response times of the OK items.
  double TotalResponseTime() const;
  /// "batch: 100 ok / 100, cache 82.3% hits"
  std::string ToString() const;
};

/// The batch scheduling engine: runs the full compile-time pipeline
/// (operator-tree expansion → cost model → parallelization → TREESCHEDULE)
/// for N plans concurrently on a fixed thread pool, sharing one memoized
/// parallelize cache across all queries of the batch.
///
/// **Determinism guarantee.** For fixed inputs and options, the output is
/// byte-identical for every thread count (1 worker and 64 workers produce
/// the same makespans and the same site assignments):
///  * each item's pipeline depends only on that item's plan — there is no
///    cross-item state except the cache;
///  * cache entries are pure functions of the operator signature under the
///    engine's fixed (params, eps, f, P) context, so whichever thread
///    computes an entry first, every reader sees the same bits;
///  * results are written to a pre-sized slot per input index, never
///    appended in completion order;
///  * generated batches (ScheduleGenerated) derive one RNG stream per item
///    from (seed, index) — streams follow the work item, not the worker —
///    so generation is reproducible under any thread assignment.
class BatchScheduler {
 public:
  BatchScheduler(const CostParams& params, const MachineConfig& machine,
                 const BatchSchedulerOptions& options = {});

  /// Schedules every plan of the batch; items[i] corresponds to plans[i].
  /// Null plans yield an InvalidArgument item. Per-item failures are
  /// reported in the item's status — one bad plan never poisons the batch.
  BatchOutput ScheduleAll(const std::vector<const PlanTree*>& plans);

  /// Generates `count` random queries (query i from the stream derived
  /// from (seed, i), mirroring the experiment harness) and schedules them
  /// as one batch. Generation itself runs on the pool.
  BatchOutput ScheduleGenerated(const WorkloadParams& workload, uint64_t seed,
                                int count);

  const BatchSchedulerOptions& options() const { return options_; }
  const MachineConfig& machine() const { return machine_; }
  /// Cumulative parallelize-cache counters across all runs of this engine.
  const HitMissCounter& cache_counter() const { return cache_.counter(); }

 private:
  /// Runs the pipeline for one plan (cost → parallelize → TreeSchedule),
  /// wrapped with item-latency and error accounting.
  BatchItemResult ScheduleOne(const PlanTree& plan, int index);
  BatchItemResult ScheduleOneImpl(const PlanTree& plan, int index);

  CostParams params_;
  MachineConfig machine_;
  BatchSchedulerOptions options_;
  ParallelizeCache cache_;
  ThreadPool pool_;
  /// Engine metrics, resolved once (handles stay valid for the registry's
  /// lifetime, so the hot path records without locking).
  MetricsRegistry* metrics_ = nullptr;
  Histogram* item_hist_ = nullptr;
  Histogram* queue_wait_hist_ = nullptr;
  Counter* items_counter_ = nullptr;
  Counter* errors_counter_ = nullptr;
};

}  // namespace mrs

#endif  // MRS_EXEC_BATCH_SCHEDULER_H_
