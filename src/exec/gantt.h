#ifndef MRS_EXEC_GANTT_H_
#define MRS_EXEC_GANTT_H_

#include <string>

#include "core/list_schedule.h"
#include "core/schedule.h"
#include "core/tree_schedule.h"

namespace mrs {

/// ASCII utilization chart of one phase schedule: one row per site, bar
/// length proportional to the site's eq. (2) time, annotated with the
/// clones placed there. `width` is the number of character cells the
/// phase's makespan maps to.
std::string RenderPhaseGantt(const Schedule& schedule, int width = 60);

/// Phase-by-phase chart of a full TREESCHEDULE result: each phase rendered
/// with a shared time scale so relative phase lengths are visible.
std::string RenderTreeGantt(const TreeScheduleResult& result, int width = 60);

/// Standalone SVG document visualizing a full phased schedule: one row of
/// site lanes per phase on a shared time axis, one rectangle per clone
/// (height = the clone's share of its site's lane), colored by operator
/// id, with phase boundaries marked. Suitable for inclusion in docs or
/// viewing in a browser.
std::string RenderTreeGanttSvg(const TreeScheduleResult& result,
                               int width_px = 900);

/// ASCII chart of a barrier-free LISTSCHEDULE result: one row per site on
/// a single shared time axis; a cell is filled while any clone is resident
/// at the site, so the idle gaps the barriers would have forced are
/// visible. Each clone is annotated with its start instant.
std::string RenderListGantt(const ListScheduleResult& result, int width = 60);

/// Standalone SVG of a barrier-free result: one lane per site, one
/// rectangle per clone spanning [start, finish) on the shared time axis —
/// unlike the phased chart, rectangles of one site need not share x
/// extents.
std::string RenderListGanttSvg(const ListScheduleResult& result,
                               int width_px = 900);

}  // namespace mrs

#endif  // MRS_EXEC_GANTT_H_
