#include "exec/explain.h"

#include <algorithm>
#include <unordered_map>

#include "common/str_util.h"

namespace mrs {

PhaseExplanation ExplainPhase(const PhaseSchedule& phase) {
  PhaseExplanation exp;
  exp.phase = phase.phase;
  exp.makespan = phase.makespan;
  const Schedule& s = phase.schedule;

  // Critical site: the eq. (3) argmax.
  for (int j = 0; j < s.num_sites(); ++j) {
    if (exp.critical_site < 0 ||
        s.SiteTime(j) > s.SiteTime(exp.critical_site)) {
      exp.critical_site = j;
    }
  }
  if (exp.critical_site >= 0) {
    const WorkVector& load = s.SiteLoad(exp.critical_site);
    double max_t_seq = 0.0;
    for (int p : s.SitePlacements(exp.critical_site)) {
      max_t_seq = std::max(
          max_t_seq, s.placements()[static_cast<size_t>(p)].t_seq);
    }
    exp.load_bound = load.Length() >= max_t_seq;
    for (size_t i = 0; i < load.dim(); ++i) {
      if (exp.critical_resource < 0 ||
          load[i] > load[static_cast<size_t>(exp.critical_resource)]) {
        exp.critical_resource = static_cast<int>(i);
      }
    }
    // Heaviest operator at the critical site by total assigned work.
    std::unordered_map<int, double> per_op;
    for (int p : s.SitePlacements(exp.critical_site)) {
      const ClonePlacement& c = s.placements()[static_cast<size_t>(p)];
      per_op[c.op_id] += c.work.Total();
    }
    double best = -1.0;
    for (const auto& [op, work] : per_op) {
      if (work > best) {
        best = work;
        exp.heaviest_op = op;
      }
    }
  }

  // Machine-wide utilization per resource.
  if (s.num_sites() > 0 && phase.makespan > 0) {
    WorkVector total(static_cast<size_t>(s.dims()));
    for (int j = 0; j < s.num_sites(); ++j) total += s.SiteLoad(j);
    exp.utilization.resize(static_cast<size_t>(s.dims()));
    for (int i = 0; i < s.dims(); ++i) {
      exp.utilization[static_cast<size_t>(i)] =
          total[static_cast<size_t>(i)] /
          (static_cast<double>(s.num_sites()) * phase.makespan);
    }
  }
  return exp;
}

ScheduleExplanation ExplainSchedule(const TreeScheduleResult& result) {
  ScheduleExplanation out;
  out.response_time = result.response_time;
  for (const auto& phase : result.phases) {
    out.phases.push_back(ExplainPhase(phase));
  }
  return out;
}

ListScheduleExplanation ExplainListSchedule(const ListScheduleResult& result) {
  ListScheduleExplanation exp;
  exp.makespan = result.makespan;
  exp.tree_response_time = result.tree_response_time;
  exp.rounds = result.rounds;
  exp.used_tree_fallback = result.used_tree_fallback;
  exp.pipelined = result.pipelined;
  exp.used_list_fallback = result.used_list_fallback;
  exp.critical_site = result.critical_site;
  exp.load_bound = result.load_bound;
  exp.critical_resource = result.critical_resource;
  exp.tasks = result.tasks;
  const Schedule& s = result.schedule;

  if (exp.critical_site >= 0) {
    // Heaviest operator at the critical site by total assigned work.
    std::unordered_map<int, double> per_op;
    for (int p : s.SitePlacements(exp.critical_site)) {
      const ClonePlacement& c = s.placements()[static_cast<size_t>(p)];
      per_op[c.op_id] += c.work.Total();
    }
    double best = -1.0;
    for (const auto& [op, work] : per_op) {
      if (work > best) {
        best = work;
        exp.heaviest_op = op;
      }
    }
  }

  if (s.num_sites() > 0 && result.makespan > 0) {
    WorkVector total(static_cast<size_t>(s.dims()));
    for (int j = 0; j < s.num_sites(); ++j) total += s.SiteLoad(j);
    exp.utilization.resize(static_cast<size_t>(s.dims()));
    for (int i = 0; i < s.dims(); ++i) {
      exp.utilization[static_cast<size_t>(i)] =
          total[static_cast<size_t>(i)] /
          (static_cast<double>(s.num_sites()) * result.makespan);
    }
  }
  return exp;
}

std::string ListScheduleExplanation::ToString(
    const MachineConfig& machine) const {
  std::string binding = "slowest operator (T_par term)";
  if (load_bound && critical_resource >= 0) {
    const size_t r = static_cast<size_t>(critical_resource);
    binding = StrFormat(
        "resource congestion on %s",
        r < machine.resource_names.size()
            ? machine.resource_names[r].c_str()
            : StrFormat("r%d", critical_resource).c_str());
  }
  std::string util;
  for (size_t i = 0; i < utilization.size(); ++i) {
    if (i > 0) util += " ";
    util += StrFormat(
        "%s=%.0f%%",
        i < machine.resource_names.size()
            ? machine.resource_names[i].c_str()
            : StrFormat("r%zu", i).c_str(),
        utilization[i] * 100.0);
  }
  std::string out = StrFormat(
      "list schedule explanation — makespan %s (%s, %d rounds; "
      "phased reference %s)\n",
      FormatMillis(makespan).c_str(),
      used_tree_fallback ? "aligned-fallback"
      : pipelined        ? "pipelined"
      : used_list_fallback ? "wave-fallback"
                           : "greedy",
      rounds, FormatMillis(tree_response_time).c_str());
  out += StrFormat(
      "  critical site s%d bound by %s; heaviest op%d; utilization %s\n",
      critical_site, binding.c_str(), heaviest_op, util.c_str());
  for (const auto& t : tasks) {
    out += StrFormat("  task %d: [%s, %s]\n", t.task,
                     FormatMillis(t.start).c_str(),
                     FormatMillis(t.finish).c_str());
  }
  return out;
}

std::string ScheduleExplanation::ToString(const MachineConfig& machine) const {
  std::string out = StrFormat("schedule explanation — response %s\n",
                              FormatMillis(response_time).c_str());
  for (const auto& p : phases) {
    std::string binding = "slowest operator (T_par term)";
    if (p.load_bound && p.critical_resource >= 0) {
      const size_t r = static_cast<size_t>(p.critical_resource);
      binding = StrFormat(
          "resource congestion on %s",
          r < machine.resource_names.size()
              ? machine.resource_names[r].c_str()
              : StrFormat("r%d", p.critical_resource).c_str());
    }
    std::string util;
    for (size_t i = 0; i < p.utilization.size(); ++i) {
      if (i > 0) util += " ";
      util += StrFormat(
          "%s=%.0f%%",
          i < machine.resource_names.size()
              ? machine.resource_names[i].c_str()
              : StrFormat("r%zu", i).c_str(),
          p.utilization[i] * 100.0);
    }
    out += StrFormat(
        "  phase %d: %s; critical site s%d bound by %s; heaviest op%d; "
        "utilization %s\n",
        p.phase, FormatMillis(p.makespan).c_str(), p.critical_site,
        binding.c_str(), p.heaviest_op, util.c_str());
  }
  return out;
}

}  // namespace mrs
