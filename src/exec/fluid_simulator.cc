#include "exec/fluid_simulator.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/logging.h"
#include "common/str_util.h"

namespace mrs {

namespace {

constexpr double kTimeTol = 1e-9;

struct ActiveClone {
  int placement_index;
  WorkVector remaining;     // remaining work per resource
  double remaining_own;     // remaining stand-alone time
  double total_own;         // original T_seq
};

/// Simulates one site under the optimal-stretch discipline: at every
/// event, the earliest feasible common completion instant is
///   T_fin = now + max( max_c remaining_own_c , l({remaining_c}) )
/// and every clone runs at rate remaining_c / (T_fin - now). No resource
/// exceeds unit capacity (the second max term guarantees it) and no clone
/// runs faster than stand-alone (the first term guarantees it). All clones
/// finish together, which is exactly the eq. (2) site time when they start
/// together.
void SimulateSiteOptimal(std::vector<ActiveClone>* clones,
                         SiteUtilization* util,
                         std::vector<double>* finish_times) {
  double now = 0.0;
  WorkVector load(util->busy.dim());  // hoisted per-event accumulator
  while (!clones->empty()) {
    double longest_own = 0.0;
    load.SetZero();
    for (const auto& c : *clones) {
      longest_own = std::max(longest_own, c.remaining_own);
      load += c.remaining;
    }
    const double t_fin = now + std::max(longest_own, load.Length());
    for (auto& c : *clones) {
      util->busy += c.remaining;
      (*finish_times)[static_cast<size_t>(c.placement_index)] = t_fin;
    }
    now = t_fin;
    clones->clear();
  }
  util->finish = now;
}

/// Simulates one site under naive uniform time slicing: every active clone
/// progresses at the same speed factor sigma = min(1, 1/rho) where rho is
/// the peak resource oversubscription of the active set's stand-alone
/// rates. Clones finish one by one; each completion releases capacity and
/// sigma is recomputed.
void SimulateSiteUniform(std::vector<ActiveClone>* clones,
                         SiteUtilization* util,
                         std::vector<double>* finish_times) {
  double now = 0.0;
  WorkVector rate_sum(util->busy.dim());  // hoisted per-event accumulator
  while (!clones->empty()) {
    // Rates r_c[i] = W_c[i] / T_seq_c are constant over a clone's life
    // (uniform usage, A3); remaining work = r * remaining_own.
    rate_sum.SetZero();
    for (const auto& c : *clones) {
      if (c.remaining_own <= kTimeTol) continue;
      // Division, not reciprocal-multiply: keeps the event series (and the
      // golden schedules derived from it) bit-identical.
      for (size_t i = 0; i < rate_sum.dim(); ++i) {
        rate_sum[i] += c.remaining[i] / c.remaining_own;
      }
    }
    const double rho = rate_sum.Length();
    const double sigma = rho > 1.0 ? 1.0 / rho : 1.0;

    // Next completion.
    double min_own = std::numeric_limits<double>::infinity();
    for (const auto& c : *clones) {
      min_own = std::min(min_own, c.remaining_own);
    }
    const double dt = min_own / sigma;

    // Advance all clones by dt wall time (sigma*dt own time). The
    // consumed = remaining * fraction temporary is fused into two
    // in-place scaled adds: busy[i] += r[i]*f and r[i] += r[i]*(-f) are
    // bit-identical to the add/subtract of the materialized temporary
    // (IEEE sign flip is exact).
    for (auto& c : *clones) {
      const double own_progress = sigma * dt;
      const double fraction =
          c.remaining_own > 0 ? own_progress / c.remaining_own : 1.0;
      const double f = std::min(fraction, 1.0);
      util->busy.AddScaled(c.remaining, f);
      c.remaining.AddScaled(c.remaining, -f);
      c.remaining_own -= own_progress;
    }
    now += dt;
    for (auto it = clones->begin(); it != clones->end();) {
      if (it->remaining_own <= kTimeTol) {
        (*finish_times)[static_cast<size_t>(it->placement_index)] = now;
        it = clones->erase(it);
      } else {
        ++it;
      }
    }
  }
  util->finish = now;
}

/// A clone that joins its site mid-simulation.
struct TimedClone {
  double start = 0.0;
  ActiveClone clone;
};

/// Optimal-stretch discipline with staggered arrivals: between events the
/// resident set progresses toward the common completion
/// t_fin = now + max(max own, l(sum remaining)); an arrival before t_fin
/// rebases every resident's remaining work by the complementary fraction
/// and the common completion is recomputed over the enlarged set. With all
/// starts at 0 this collapses to the single event of SimulateSiteOptimal.
void SimulateSiteOptimalTimed(std::vector<TimedClone>* arrivals,
                              SiteUtilization* util,
                              std::vector<double>* finish_times) {
  double now = 0.0;
  WorkVector load(util->busy.dim());  // hoisted per-event accumulator
  std::vector<ActiveClone> active;
  size_t i = 0;
  const size_t n = arrivals->size();
  while (i < n || !active.empty()) {
    if (active.empty()) {
      now = std::max(now, (*arrivals)[i].start);
      while (i < n && (*arrivals)[i].start <= now) {
        active.push_back(std::move((*arrivals)[i].clone));
        ++i;
      }
    }
    double longest_own = 0.0;
    load.SetZero();
    for (const auto& c : active) {
      longest_own = std::max(longest_own, c.remaining_own);
      load += c.remaining;
    }
    const double t_fin = now + std::max(longest_own, load.Length());
    const double next_arrival =
        i < n ? (*arrivals)[i].start
              : std::numeric_limits<double>::infinity();
    if (next_arrival < t_fin) {
      // Residents complete the fraction (next_arrival - now) /
      // (t_fin - now) of their remaining work before the newcomer joins.
      const double factor = (t_fin - next_arrival) / (t_fin - now);
      for (auto& c : active) {
        util->busy.AddScaled(c.remaining, 1.0 - factor);
        c.remaining *= factor;
        c.remaining_own *= factor;
      }
      now = next_arrival;
      while (i < n && (*arrivals)[i].start <= now) {
        active.push_back(std::move((*arrivals)[i].clone));
        ++i;
      }
    } else {
      for (const auto& c : active) {
        util->busy += c.remaining;
        (*finish_times)[static_cast<size_t>(c.placement_index)] = t_fin;
      }
      active.clear();
      now = t_fin;
    }
  }
  util->finish = now;
}

/// Uniform time slicing with staggered arrivals: the event horizon is the
/// earlier of the next completion (min own / sigma) and the next arrival.
void SimulateSiteUniformTimed(std::vector<TimedClone>* arrivals,
                              SiteUtilization* util,
                              std::vector<double>* finish_times) {
  double now = 0.0;
  WorkVector rate_sum(util->busy.dim());  // hoisted per-event accumulator
  std::vector<ActiveClone> active;
  size_t i = 0;
  const size_t n = arrivals->size();
  while (i < n || !active.empty()) {
    if (active.empty()) {
      now = std::max(now, (*arrivals)[i].start);
      while (i < n && (*arrivals)[i].start <= now) {
        active.push_back(std::move((*arrivals)[i].clone));
        ++i;
      }
    }
    rate_sum.SetZero();
    for (const auto& c : active) {
      if (c.remaining_own <= kTimeTol) continue;
      for (size_t r = 0; r < rate_sum.dim(); ++r) {
        rate_sum[r] += c.remaining[r] / c.remaining_own;
      }
    }
    const double rho = rate_sum.Length();
    const double sigma = rho > 1.0 ? 1.0 / rho : 1.0;

    double min_own = std::numeric_limits<double>::infinity();
    for (const auto& c : active) {
      min_own = std::min(min_own, c.remaining_own);
    }
    const double next_arrival =
        i < n ? (*arrivals)[i].start
              : std::numeric_limits<double>::infinity();
    const double dt = std::min(min_own / sigma, next_arrival - now);

    for (auto& c : active) {
      const double own_progress = sigma * dt;
      const double fraction =
          c.remaining_own > 0 ? own_progress / c.remaining_own : 1.0;
      const double f = std::min(fraction, 1.0);
      util->busy.AddScaled(c.remaining, f);
      c.remaining.AddScaled(c.remaining, -f);
      c.remaining_own -= own_progress;
    }
    now += dt;
    for (auto it = active.begin(); it != active.end();) {
      if (it->remaining_own <= kTimeTol) {
        (*finish_times)[static_cast<size_t>(it->placement_index)] = now;
        it = active.erase(it);
      } else {
        ++it;
      }
    }
    while (i < n && (*arrivals)[i].start <= now) {
      active.push_back(std::move((*arrivals)[i].clone));
      ++i;
    }
  }
  util->finish = now;
}

}  // namespace

Result<PhaseSimulation> FluidSimulator::SimulatePhase(
    const Schedule& schedule) const {
  PhaseSimulation sim;
  sim.sites.assign(static_cast<size_t>(schedule.num_sites()),
                   SiteUtilization{
                       WorkVector(static_cast<size_t>(schedule.dims())), 0.0});
  sim.clone_finish.assign(schedule.placements().size(), 0.0);

  for (int j = 0; j < schedule.num_sites(); ++j) {
    std::vector<ActiveClone> clones;
    clones.reserve(schedule.SitePlacements(j).size());
    for (int p : schedule.SitePlacements(j)) {
      const ClonePlacement& placement =
          schedule.placements()[static_cast<size_t>(p)];
      ActiveClone c;
      c.placement_index = p;
      c.remaining = placement.work;
      c.remaining_own = placement.t_seq;
      c.total_own = placement.t_seq;
      if (!SequentialTimeWithinBounds(placement.work, placement.t_seq,
                                      1e-6)) {
        return Status::InvalidArgument(
            StrFormat("clone of op%d violates max <= T_seq <= sum",
                      placement.op_id));
      }
      clones.push_back(std::move(c));
    }
    SiteUtilization* util = &sim.sites[static_cast<size_t>(j)];
    if (policy_ == SharingPolicy::kOptimalStretch) {
      SimulateSiteOptimal(&clones, util, &sim.clone_finish);
    } else {
      SimulateSiteUniform(&clones, util, &sim.clone_finish);
    }
    sim.makespan = std::max(sim.makespan, util->finish);
  }
  return sim;
}

Result<PhaseSimulation> FluidSimulator::SimulateTimed(
    const Schedule& schedule) const {
  PhaseSimulation sim;
  sim.sites.assign(static_cast<size_t>(schedule.num_sites()),
                   SiteUtilization{
                       WorkVector(static_cast<size_t>(schedule.dims())), 0.0});
  sim.clone_finish.assign(schedule.placements().size(), 0.0);

  for (int j = 0; j < schedule.num_sites(); ++j) {
    std::vector<TimedClone> arrivals;
    arrivals.reserve(schedule.SitePlacements(j).size());
    for (int p : schedule.SitePlacements(j)) {
      const ClonePlacement& placement =
          schedule.placements()[static_cast<size_t>(p)];
      if (placement.start < 0.0) {
        return Status::InvalidArgument(
            StrFormat("clone of op%d starts at %g < 0", placement.op_id,
                      placement.start));
      }
      if (!SequentialTimeWithinBounds(placement.work, placement.t_seq,
                                      1e-6)) {
        return Status::InvalidArgument(
            StrFormat("clone of op%d violates max <= T_seq <= sum",
                      placement.op_id));
      }
      TimedClone t;
      t.start = placement.start;
      t.clone.placement_index = p;
      t.clone.remaining = placement.work;
      t.clone.remaining_own = placement.t_seq;
      t.clone.total_own = placement.t_seq;
      arrivals.push_back(std::move(t));
    }
    // Arrival order: start time, placement order within equal starts.
    std::stable_sort(arrivals.begin(), arrivals.end(),
                     [](const TimedClone& a, const TimedClone& b) {
                       return a.start < b.start;
                     });
    SiteUtilization* util = &sim.sites[static_cast<size_t>(j)];
    if (policy_ == SharingPolicy::kOptimalStretch) {
      SimulateSiteOptimalTimed(&arrivals, util, &sim.clone_finish);
    } else {
      SimulateSiteUniformTimed(&arrivals, util, &sim.clone_finish);
    }
    sim.makespan = std::max(sim.makespan, util->finish);
  }
  return sim;
}

Result<SimulationResult> FluidSimulator::Simulate(
    const TreeScheduleResult& plan) const {
  if (plan.phases.empty()) {
    // A zero-phase plan carries no machine description at all (no site
    // count, no resource dimensionality), so any result we fabricated
    // here would have made-up dimensions.
    return Status::InvalidArgument("plan has no phases to simulate");
  }
  SimulationResult result;
  int dims = 1;
  int num_sites = 1;
  for (const auto& phase : plan.phases) {
    auto sim = SimulatePhase(phase.schedule);
    if (!sim.ok()) return sim.status();
    dims = phase.schedule.dims();
    num_sites = phase.schedule.num_sites();
    result.response_time += sim->makespan;
    result.phases.push_back(std::move(sim).value());
  }
  // Machine-wide utilization.
  WorkVector busy(static_cast<size_t>(dims));
  for (const auto& phase : result.phases) {
    for (const auto& site : phase.sites) busy += site.busy;
  }
  result.average_utilization = WorkVector(static_cast<size_t>(dims));
  if (result.response_time > 0.0) {
    result.average_utilization =
        busy * (1.0 / (static_cast<double>(num_sites) * result.response_time));
  }
  return result;
}

std::string SimulationResult::ToString() const {
  std::string out =
      StrFormat("Simulation(response=%.2fms, %zu phases, util=%s)\n",
                response_time, phases.size(),
                average_utilization.ToString().c_str());
  for (size_t k = 0; k < phases.size(); ++k) {
    out += StrFormat("  phase %zu: makespan=%.2fms\n", k, phases[k].makespan);
  }
  return out;
}

}  // namespace mrs
