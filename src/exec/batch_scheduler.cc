#include "exec/batch_scheduler.h"

#include <chrono>
#include <utility>

#include "common/str_util.h"
#include "cost/cost_model.h"
#include "plan/operator_tree.h"
#include "plan/task_tree.h"
#include "resource/usage_model.h"

namespace mrs {

namespace {

/// Mixes (seed, index) into the 64-bit seed of item `index`'s private RNG
/// stream (SplitMix-style, mirroring the experiment harness): streams are
/// a function of the work item, never of the worker thread that happens to
/// run it.
double ElapsedMs(std::chrono::steady_clock::time_point since) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - since)
      .count();
}

uint64_t ItemSeed(uint64_t seed, int index) {
  uint64_t x = seed ^ 0x9e3779b97f4a7c15ULL;
  x ^= (x >> 30);
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= static_cast<uint64_t>(index) * 0x94d049bb133111ebULL;
  x ^= (x >> 27);
  x *= 0x94d049bb133111ebULL;
  x ^= (x >> 31);
  return x;
}

}  // namespace

int BatchOutput::NumOk() const {
  int ok = 0;
  for (const auto& item : items) {
    if (item.status.ok()) ++ok;
  }
  return ok;
}

double BatchOutput::TotalResponseTime() const {
  double total = 0.0;
  for (const auto& item : items) {
    if (item.status.ok()) total += item.schedule.response_time;
  }
  return total;
}

std::string BatchOutput::ToString() const {
  const uint64_t lookups = cache_hits + cache_misses;
  const double rate = lookups == 0 ? 0.0
                                   : 100.0 * static_cast<double>(cache_hits) /
                                         static_cast<double>(lookups);
  return StrFormat("batch: %d ok / %zu, cache %.1f%% hits", NumOk(),
                   items.size(), rate);
}

BatchScheduler::BatchScheduler(const CostParams& params,
                               const MachineConfig& machine,
                               const BatchSchedulerOptions& options)
    : params_(params),
      machine_(machine),
      options_(options),
      cache_(params, options.overlap_eps, options.tree.granularity,
             machine.num_sites, options.metrics),
      pool_(options.num_threads),
      metrics_(options.metrics != nullptr ? options.metrics
                                          : &MetricsRegistry::Global()) {
  options_.num_threads = pool_.num_threads();
  item_hist_ = metrics_->GetHistogram("batch.item_ms");
  queue_wait_hist_ = metrics_->GetHistogram("pool.queue_wait_ms");
  items_counter_ = metrics_->GetCounter("batch.items");
  errors_counter_ = metrics_->GetCounter("batch.errors");
}

BatchItemResult BatchScheduler::ScheduleOne(const PlanTree& plan, int index) {
  const auto start = std::chrono::steady_clock::now();
  BatchItemResult item = ScheduleOneImpl(plan, index);
  item_hist_->Record(ElapsedMs(start));
  items_counter_->Increment();
  if (!item.status.ok()) errors_counter_->Increment();
  return item;
}

BatchItemResult BatchScheduler::ScheduleOneImpl(const PlanTree& plan,
                                                int index) {
  BatchItemResult item;
  item.index = index;
  ScheduleTrace* trace = nullptr;
  if (options_.collect_traces) {
    item.trace = options_.trace_clock
                     ? std::make_shared<ScheduleTrace>(options_.trace_clock)
                     : std::make_shared<ScheduleTrace>();
    item.trace->set_label(StrFormat("query-%d", index));
    trace = item.trace.get();
  }

  SpanTimer expand_span(trace, "expand");
  auto op_tree = OperatorTree::FromPlan(plan);
  if (!op_tree.ok()) {
    item.status = op_tree.status();
    return item;
  }
  OperatorTree ops = std::move(op_tree).value();

  auto task_tree = TaskTree::FromOperatorTree(&ops);
  if (!task_tree.ok()) {
    item.status = task_tree.status();
    return item;
  }
  if (expand_span.active()) {
    expand_span.AttrInt("ops", ops.num_ops());
    expand_span.AttrInt("phases", task_tree->num_phases());
  }
  expand_span.End();

  SpanTimer cost_span(trace, "cost_model");
  const CostModel model(params_, machine_.dims, options_.num_disks);
  auto costs = model.CostAll(ops);
  if (!costs.ok()) {
    item.status = costs.status();
    return item;
  }
  cost_span.End();

  const OverlapUsageModel usage(options_.overlap_eps);
  TreeScheduleOptions tree_options = options_.tree;
  tree_options.cache = options_.use_cost_cache ? &cache_ : nullptr;
  tree_options.trace = trace;
  auto result = TreeSchedule(ops, *task_tree, costs.value(), params_,
                             machine_, usage, tree_options);
  if (!result.ok()) {
    item.status = result.status();
    return item;
  }
  item.schedule = std::move(result).value();
  return item;
}

BatchOutput BatchScheduler::ScheduleAll(
    const std::vector<const PlanTree*>& plans) {
  BatchOutput output;
  output.items.resize(plans.size());
  const uint64_t hits_before = cache_.counter().hits();
  const uint64_t misses_before = cache_.counter().misses();

  for (size_t i = 0; i < plans.size(); ++i) {
    const auto submitted = std::chrono::steady_clock::now();
    pool_.Submit([this, &output, &plans, i, submitted] {
      queue_wait_hist_->Record(ElapsedMs(submitted));
      const PlanTree* plan = plans[i];
      if (plan == nullptr) {
        output.items[i].index = static_cast<int>(i);
        output.items[i].status = Status::InvalidArgument("null plan in batch");
        return;
      }
      output.items[i] = ScheduleOne(*plan, static_cast<int>(i));
    });
  }
  pool_.WaitAll();

  output.cache_hits = cache_.counter().hits() - hits_before;
  output.cache_misses = cache_.counter().misses() - misses_before;
  return output;
}

BatchOutput BatchScheduler::ScheduleGenerated(const WorkloadParams& workload,
                                              uint64_t seed, int count) {
  BatchOutput output;
  if (count < 0) count = 0;
  output.items.resize(static_cast<size_t>(count));
  const uint64_t hits_before = cache_.counter().hits();
  const uint64_t misses_before = cache_.counter().misses();

  for (int i = 0; i < count; ++i) {
    const auto submitted = std::chrono::steady_clock::now();
    pool_.Submit([this, &output, &workload, seed, i, submitted] {
      queue_wait_hist_->Record(ElapsedMs(submitted));
      Rng rng(ItemSeed(seed, i));
      auto query = GenerateQuery(workload, &rng);
      if (!query.ok()) {
        output.items[static_cast<size_t>(i)].index = i;
        output.items[static_cast<size_t>(i)].status = query.status();
        return;
      }
      output.items[static_cast<size_t>(i)] = ScheduleOne(*query->plan, i);
    });
  }
  pool_.WaitAll();

  output.cache_hits = cache_.counter().hits() - hits_before;
  output.cache_misses = cache_.counter().misses() - misses_before;
  return output;
}

}  // namespace mrs
