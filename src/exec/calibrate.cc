#include "exec/calibrate.h"

#include <algorithm>
#include <cmath>

#include "common/str_util.h"
#include "exec/execute_backend.h"

namespace mrs {
namespace {

std::string EscapeJson(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  return out;
}

const char* MeterName(ExecMeter meter) {
  return meter == ExecMeter::kThreadCpu ? "thread_cpu" : "deterministic";
}

}  // namespace

Calibrator::Calibrator(int dims, OverlapUsageModel usage, ExecuteOptions exec)
    : dims_(dims), usage_(usage), exec_(std::move(exec)) {}

Status Calibrator::AccumulatePhase(ExecBackend* backend,
                                   const Schedule& schedule,
                                   const std::vector<ExecOpSpec>& specs,
                                   PlanSample* plan) {
  if (schedule.dims() != dims_) {
    return Status::InvalidArgument(
        StrFormat("schedule has d=%d, calibrator expects d=%d",
                  schedule.dims(), dims_));
  }
  MRS_ASSIGN_OR_RETURN(ExecutionResult run, backend->Run(schedule, specs));

  const size_t num_sites = static_cast<size_t>(schedule.num_sites());
  std::vector<double> measured(num_sites, 0.0);
  std::vector<WorkVector> load(num_sites,
                               WorkVector(static_cast<size_t>(dims_)));
  std::vector<bool> used(num_sites, false);
  for (size_t p = 0; p < run.clones.size(); ++p) {
    const CloneExecution& clone = run.clones[p];
    const ClonePlacement& placement = schedule.placements()[p];
    const size_t j = static_cast<size_t>(clone.site);
    measured[j] += clone.measured_ms;
    load[j].AddScaled(placement.work, clone.row_fraction);
    used[j] = true;

    CloneSample sample;
    sample.work = WorkVector(static_cast<size_t>(dims_));
    sample.work.AddScaled(placement.work, clone.row_fraction);
    sample.measured = clone.measured_ms;
    clones_.push_back(std::move(sample));
  }

  double predicted_makespan = 0.0;
  double measured_makespan = 0.0;
  for (size_t j = 0; j < num_sites; ++j) {
    if (!used[j]) continue;
    const double predicted = schedule.SiteFinish(static_cast<int>(j));
    SiteSample* site = nullptr;
    for (SiteSample& s : plan->sites) {
      if (s.site == static_cast<int>(j)) {
        site = &s;
        break;
      }
    }
    if (site == nullptr) {
      plan->sites.push_back(SiteSample{});
      site = &plan->sites.back();
      site->site = static_cast<int>(j);
      site->scaled_load = WorkVector(static_cast<size_t>(dims_));
    }
    site->predicted += predicted;
    site->measured += measured[j];
    site->scaled_load += load[j];
    predicted_makespan = std::max(predicted_makespan, predicted);
    measured_makespan = std::max(measured_makespan, measured[j]);
  }
  plan->predicted_makespan += predicted_makespan;
  plan->measured_makespan += measured_makespan;
  return Status::OK();
}

Status Calibrator::AddSchedule(const std::string& label,
                               const Schedule& schedule,
                               const std::vector<ExecOpSpec>& specs) {
  PlanSample plan;
  plan.label = label;
  ExecuteBackend backend(exec_);
  if (Status s = AccumulatePhase(&backend, schedule, specs, &plan); !s.ok()) {
    return s;
  }
  std::sort(plan.sites.begin(), plan.sites.end(),
            [](const SiteSample& a, const SiteSample& b) {
              return a.site < b.site;
            });
  plans_.push_back(std::move(plan));
  return Status::OK();
}

Status Calibrator::AddTreePlan(const std::string& label,
                               const TreeScheduleResult& tree,
                               const std::vector<ExecOpSpec>& specs) {
  PlanSample plan;
  plan.label = label;
  ExecuteBackend backend(exec_);
  for (const PhaseSchedule& phase : tree.phases) {
    if (Status s = AccumulatePhase(&backend, phase.schedule, specs, &plan);
        !s.ok()) {
      return s;
    }
  }
  std::sort(plan.sites.begin(), plan.sites.end(),
            [](const SiteSample& a, const SiteSample& b) {
              return a.site < b.site;
            });
  plans_.push_back(std::move(plan));
  return Status::OK();
}

std::vector<double> Calibrator::FitScale() const {
  const size_t d = static_cast<size_t>(dims_);
  std::vector<double> scale(d, 0.0);
  if (clones_.empty()) return scale;

  // Normal equations (A^T A + lambda I) x = A^T b over the clone samples.
  std::vector<std::vector<double>> m(d, std::vector<double>(d + 1, 0.0));
  double max_diag = 0.0;
  for (const CloneSample& s : clones_) {
    for (size_t i = 0; i < d; ++i) {
      for (size_t j = 0; j < d; ++j) m[i][j] += s.work[i] * s.work[j];
      m[i][d] += s.work[i] * s.measured;
    }
  }
  for (size_t i = 0; i < d; ++i) max_diag = std::max(max_diag, m[i][i]);
  // A whisper of ridge keeps all-zero dimensions (a resource no clone
  // touched) from making the system singular; it perturbs well-determined
  // dimensions by ~1e-9 relative.
  const double lambda = 1e-9 * max_diag + 1e-30;
  for (size_t i = 0; i < d; ++i) m[i][i] += lambda;

  // Gaussian elimination with partial pivoting.
  for (size_t col = 0; col < d; ++col) {
    size_t pivot = col;
    for (size_t r = col + 1; r < d; ++r) {
      if (std::fabs(m[r][col]) > std::fabs(m[pivot][col])) pivot = r;
    }
    if (std::fabs(m[pivot][col]) < 1e-30) continue;
    std::swap(m[col], m[pivot]);
    for (size_t r = 0; r < d; ++r) {
      if (r == col) continue;
      const double f = m[r][col] / m[col][col];
      for (size_t c = col; c <= d; ++c) m[r][c] -= f * m[col][c];
    }
  }
  for (size_t i = 0; i < d; ++i) {
    if (std::fabs(m[i][i]) < 1e-30) continue;
    // Negative unit costs are non-physical noise; clamp.
    scale[i] = std::max(0.0, m[i][d] / m[i][i]);
  }
  return scale;
}

CostModelOptions Calibrator::FittedOptions() const {
  CostModelOptions options;
  options.fitted = true;
  options.scale = FitScale();
  return options;
}

double Calibrator::FittedSiteTime(const std::vector<double>& scale,
                                  const SiteSample& site) {
  double t = 0.0;
  const size_t n =
      std::min(scale.size(), site.scaled_load.dim());
  for (size_t i = 0; i < n; ++i) t += scale[i] * site.scaled_load[i];
  return t;
}

double Calibrator::MeanRelativeError(bool fitted) const {
  const std::vector<double> scale = fitted ? FitScale() : std::vector<double>();
  double sum = 0.0;
  int count = 0;
  for (const PlanSample& plan : plans_) {
    for (const SiteSample& site : plan.sites) {
      if (site.measured <= 0.0) continue;
      const double predicted =
          fitted ? FittedSiteTime(scale, site) : site.predicted;
      sum += std::fabs(predicted - site.measured) / site.measured;
      ++count;
    }
  }
  return count > 0 ? sum / count : 0.0;
}

std::string Calibrator::ReportJson() const {
  const std::vector<double> scale = FitScale();
  std::string out = "{\n";
  out += "  \"calibration_report_version\": 1,\n";
  out += StrFormat("  \"meter\": \"%s\",\n", MeterName(exec_.meter));
  out += StrFormat("  \"data_seed\": %llu,\n",
                   static_cast<unsigned long long>(exec_.data_seed));
  out += StrFormat("  \"skew\": %.3f,\n", exec_.skew);
  out += StrFormat("  \"max_rows_per_op\": %lld,\n",
                   static_cast<long long>(exec_.max_rows_per_op));
  out += StrFormat("  \"eps\": %.3f,\n", usage_.epsilon());
  out += StrFormat("  \"dims\": %d,\n", dims_);
  out += StrFormat("  \"plans\": %d,\n", num_plans());
  out += StrFormat("  \"clone_samples\": %d,\n", num_clone_samples());
  out += "  \"fitted_scale\": [";
  for (size_t i = 0; i < scale.size(); ++i) {
    if (i > 0) out += ", ";
    out += StrFormat("%.9g", scale[i]);
  }
  out += "],\n";
  out += StrFormat("  \"mean_rel_error_unfitted\": %.6f,\n",
                   MeanRelativeError(/*fitted=*/false));
  out += StrFormat("  \"mean_rel_error_fitted\": %.6f,\n",
                   MeanRelativeError(/*fitted=*/true));
  out += "  \"per_plan\": [";
  for (size_t k = 0; k < plans_.size(); ++k) {
    const PlanSample& plan = plans_[k];
    double fitted_makespan = 0.0;
    for (const SiteSample& site : plan.sites) {
      fitted_makespan =
          std::max(fitted_makespan, FittedSiteTime(scale, site));
    }
    out += k > 0 ? ",\n    {" : "\n    {";
    out += StrFormat("\"label\": \"%s\", ", EscapeJson(plan.label).c_str());
    out += StrFormat("\"predicted_makespan_ms\": %.6f, ",
                     plan.predicted_makespan);
    out += StrFormat("\"measured_makespan\": %.6f, ", plan.measured_makespan);
    out += StrFormat("\"fitted_makespan\": %.6f, \"sites\": [",
                     fitted_makespan);
    for (size_t s = 0; s < plan.sites.size(); ++s) {
      const SiteSample& site = plan.sites[s];
      if (s > 0) out += ", ";
      out += StrFormat(
          "{\"site\": %d, \"predicted_ms\": %.6f, \"measured\": %.6f, "
          "\"fitted\": %.6f}",
          site.site, site.predicted, site.measured,
          FittedSiteTime(scale, site));
    }
    out += "]}";
  }
  out += plans_.empty() ? "]\n" : "\n  ]\n";
  out += "}\n";
  return out;
}

}  // namespace mrs
