#ifndef MRS_EXEC_EXPLAIN_H_
#define MRS_EXEC_EXPLAIN_H_

#include <string>
#include <vector>

#include "core/list_schedule.h"
#include "core/tree_schedule.h"
#include "resource/machine.h"

namespace mrs {

/// Per-phase diagnosis of a schedule: where the time goes and which term
/// of eq. (3) binds.
struct PhaseExplanation {
  int phase = -1;
  double makespan = 0.0;
  /// Site whose eq. (2) time equals the makespan.
  int critical_site = -1;
  /// True when the critical site is bound by its busiest resource
  /// (l(work(s))), false when its slowest clone's T_seq binds.
  bool load_bound = false;
  /// Resource dimension binding the critical site (valid if load_bound).
  int critical_resource = -1;
  /// Machine-wide utilization per resource in [0, 1] over this phase:
  /// total assigned work / (P * makespan).
  std::vector<double> utilization;
  /// Operator contributing the most work to the critical site.
  int heaviest_op = -1;
};

struct ScheduleExplanation {
  double response_time = 0.0;
  std::vector<PhaseExplanation> phases;

  /// Human-readable multi-line report ("phase 2: 5.1 s, site 7 bound by
  /// disk at 93% ...").
  std::string ToString(const MachineConfig& machine) const;
};

/// Diagnosis of a barrier-free LISTSCHEDULE result. The binding-term
/// fields mirror PhaseExplanation but describe the critical site's last
/// residency interval rather than a phase.
struct ListScheduleExplanation {
  double makespan = 0.0;
  /// Makespan TREESCHEDULE achieved under the same options (the dominance
  /// guard's reference point).
  double tree_response_time = 0.0;
  int rounds = 0;
  /// True when the greedy event loop lost to the phased engine and the
  /// aligned fallback schedule was emitted instead.
  bool used_tree_fallback = false;
  /// True when the intra-task pipelined mode produced this schedule.
  bool pipelined = false;
  /// True when the pipeline guard fell back to the plain task-wave
  /// schedule (see ListScheduleResult::used_list_fallback).
  bool used_list_fallback = false;
  /// Site whose last clone finishes at the makespan.
  int critical_site = -1;
  /// True when the critical site's final interval is bound by its busiest
  /// resource (the l(work(s)) term of eq. (2)), false when a clone's own
  /// T_seq binds.
  bool load_bound = false;
  /// Resource dimension binding the critical site (valid if load_bound).
  int critical_resource = -1;
  /// Machine-wide utilization per resource in [0, 1] over [0, makespan]:
  /// total assigned work / (P * makespan).
  std::vector<double> utilization;
  /// Operator contributing the most work to the critical site.
  int heaviest_op = -1;
  /// Task execution intervals, parallel to the result's task table.
  std::vector<ListTaskInterval> tasks;

  /// Human-readable multi-line report including per-task intervals.
  std::string ToString(const MachineConfig& machine) const;
};

/// Analyzes one phase: the critical site, the binding eq. (3) term,
/// per-resource utilization, and the heaviest operator on the critical
/// site. Pure analysis — no scheduling state is modified. Also used by the
/// tracing layer to annotate OPERATORSCHEDULE spans.
PhaseExplanation ExplainPhase(const PhaseSchedule& phase);

/// Analyzes a phased schedule: ExplainPhase over every phase.
ScheduleExplanation ExplainSchedule(const TreeScheduleResult& result);

/// Analyzes a barrier-free schedule: critical site, binding term,
/// utilization, heaviest operator, and the task timeline.
ListScheduleExplanation ExplainListSchedule(const ListScheduleResult& result);

}  // namespace mrs

#endif  // MRS_EXEC_EXPLAIN_H_
