#include "exec/exec_backend.h"

#include "common/str_util.h"
#include "exec/execute_backend.h"

namespace mrs {

std::vector<ExecOpSpec> ExecOpSpecsFromTree(const OperatorTree& tree) {
  std::vector<ExecOpSpec> specs;
  specs.reserve(static_cast<size_t>(tree.num_ops()));
  for (const PhysicalOp& op : tree.ops()) {
    ExecOpSpec spec;
    spec.op_id = op.id;
    spec.kind = op.kind;
    spec.input_tuples = op.input_tuples;
    spec.blocking_input = op.blocking_input;
    spec.data_inputs = op.data_inputs;
    specs.push_back(spec);
  }
  return specs;
}

Result<std::vector<ExecutionResult>> ExecBackend::RunTree(
    const TreeScheduleResult& plan, const std::vector<ExecOpSpec>& specs) {
  std::vector<ExecutionResult> results;
  results.reserve(plan.phases.size());
  for (const PhaseSchedule& phase : plan.phases) {
    MRS_ASSIGN_OR_RETURN(ExecutionResult r, Run(phase.schedule, specs));
    results.push_back(std::move(r));
  }
  return results;
}

SimulateBackend::SimulateBackend(const OverlapUsageModel& usage,
                                 SharingPolicy policy)
    : usage_(usage), simulator_(usage_, policy) {}

Result<ExecutionResult> SimulateBackend::Run(
    const Schedule& schedule, const std::vector<ExecOpSpec>& specs) {
  (void)specs;  // the simulator runs on placements alone
  ExecutionResult result;
  MRS_ASSIGN_OR_RETURN(result.timeline, simulator_.SimulateTimed(schedule));
  result.clones.resize(schedule.placements().size());
  for (size_t p = 0; p < schedule.placements().size(); ++p) {
    const ClonePlacement& placement = schedule.placements()[p];
    CloneExecution& clone = result.clones[p];
    clone.op_id = placement.op_id;
    clone.clone_idx = placement.clone_idx;
    clone.site = placement.site;
    clone.measured_ms = placement.t_seq;
    clone.virtual_start = placement.start;
    clone.virtual_finish = result.timeline.clone_finish[p];
  }
  return result;
}

Result<std::unique_ptr<ExecBackend>> MakeExecBackend(
    const std::string& mode, const OverlapUsageModel& usage,
    const ExecuteOptions& exec_options) {
  if (mode == "simulate") {
    return std::unique_ptr<ExecBackend>(new SimulateBackend(usage));
  }
  if (mode == "execute") {
    return std::unique_ptr<ExecBackend>(new ExecuteBackend(exec_options));
  }
  return Status::InvalidArgument(
      StrFormat("unknown exec backend '%s' (want simulate|execute)",
                mode.c_str()));
}

}  // namespace mrs
