#ifndef MRS_EXEC_OPERATORS_H_
#define MRS_EXEC_OPERATORS_H_

#include <cstdint>
#include <vector>

#include "common/thread_pool.h"
#include "workload/exec_data.h"

namespace mrs {

/// Real (not simulated) partitioned operator runtime: the execution
/// counterpart of the work-vector cost model. A partitioned hash join and
/// a two-phase partitioned group-by run actual hash tables over generated
/// ExecRow streams, clone-parallel on the repo's ThreadPool, so the
/// scheduler's predictions — per-clone (T_seq, W) and the eq. (2)/(3)
/// site times — can be compared against measured execution
/// (exec/calibrate.h) instead of only against the model itself.
///
/// Everything here is deterministic by construction: inputs are pure
/// functions of a seed (workload/exec_data.h), partitions are pure
/// functions of the key, and output digests combine per-row digests with
/// wrapping addition (order-independent), so results are byte-identical
/// across thread counts. The hot loops (hash-table insert/probe and group
/// accumulation) run allocation-free once their tables are Reset to
/// capacity — the steady-state property tests/alloc pins.

/// Open-addressing (linear probing) multiset of (key, payload) pairs: the
/// build side of a hash-join partition. Power-of-two capacity, bitmap
/// occupancy (keys are arbitrary 64-bit values, so no sentinel). Grows by
/// doubling while inserting; Reset keeps the allocated capacity, so a
/// table cycled through Reset at the same size never allocates again.
class ExecHashTable {
 public:
  /// Clears the table and ensures capacity for `expected` inserts without
  /// growth. Keeps existing storage when already large enough.
  void Reset(size_t expected);

  void Insert(uint64_t key, uint64_t payload);

  /// Invokes `fn(payload)` for every entry matching `key`, in insertion
  /// order along the probe chain.
  template <typename Fn>
  void ForEachMatch(uint64_t key, Fn&& fn) const {
    if (size_ == 0) return;
    size_t i = MixU64(key) & mask_;
    while (used_[i]) {
      if (keys_[i] == key) fn(payloads_[i]);
      i = (i + 1) & mask_;
    }
  }

  size_t size() const { return size_; }
  size_t capacity() const { return keys_.size(); }

 private:
  void Rehash(size_t new_capacity);

  std::vector<uint64_t> keys_;
  std::vector<uint64_t> payloads_;
  std::vector<uint8_t> used_;
  size_t mask_ = 0;
  size_t size_ = 0;
};

/// Open-addressing aggregation table: key -> (count, payload sum). The
/// state behind both halves of the two-phase group-by (per-clone partials
/// in phase 1, merged partitions in phase 2).
class ExecGroupTable {
 public:
  /// Clears the table and ensures capacity for `expected` distinct groups.
  void Reset(size_t expected);

  /// count(key) += 1, sum(key) += payload (wrapping).
  void Accumulate(uint64_t key, uint64_t payload);

  /// Adds `count`/`sum` to the entry for `key` (merge path).
  void Merge(uint64_t key, uint64_t count, uint64_t sum);

  /// Invokes `fn(key, count, sum)` for every group (storage order).
  template <typename Fn>
  void ForEachGroup(Fn&& fn) const {
    for (size_t i = 0; i < keys_.size(); ++i) {
      if (used_[i]) fn(keys_[i], counts_[i], sums_[i]);
    }
  }

  size_t num_groups() const { return size_; }
  size_t capacity() const { return keys_.size(); }

 private:
  void Rehash(size_t new_capacity);
  size_t FindSlot(uint64_t key);

  std::vector<uint64_t> keys_;
  std::vector<uint64_t> counts_;
  std::vector<uint64_t> sums_;
  std::vector<uint8_t> used_;
  size_t mask_ = 0;
  size_t size_ = 0;
};

/// Per-clone execution accounting shared by every operator driver.
struct OperatorExecStats {
  int clone = 0;
  /// Rows the clone consumed (its partition / slice of the input).
  int64_t rows_in = 0;
  /// Rows the clone emitted (matches for probes, groups for emitters).
  int64_t rows_out = 0;
  /// Order-independent digest of the clone's output.
  uint64_t digest = 0;
};

/// Digest of one joined output row; both the partitioned executor and the
/// single-threaded reference combine these with wrapping addition.
uint64_t JoinOutputDigest(uint64_t key, uint64_t build_payload,
                          uint64_t probe_payload);

/// Digest of one emitted group.
uint64_t GroupOutputDigest(uint64_t key, uint64_t count, uint64_t sum);

// ---------------------------------------------------------------------------
// Partitioned hash join.

struct HashJoinSpec {
  /// Streams: seeds into workload/exec_data.h row synthesis. Build and
  /// probe share `dist` (same key domain), so matches occur at the natural
  /// rate |build| / domain per probe row.
  uint64_t build_seed = 1;
  uint64_t probe_seed = 2;
  int64_t build_rows = 0;
  int64_t probe_rows = 0;
  ExecKeyDist dist;
  /// Clones; build side is key-partitioned (PartitionOf), probe side is
  /// sliced round-robin with a single lookup in the owning partition.
  int degree = 1;
};

struct HashJoinExecution {
  int64_t output_rows = 0;
  /// Order-independent digest over all joined rows.
  uint64_t output_digest = 0;
  /// Wrapping sum of output keys (a second independent invariant).
  uint64_t key_sum = 0;
  std::vector<OperatorExecStats> build_clones;
  std::vector<OperatorExecStats> probe_clones;
};

/// Clone-level primitives (shared with the execute backend, which runs
/// build and probe clones in different schedule phases):

/// Builds partition `clone` of the build stream into `table` (Reset +
/// key-partitioned inserts). Returns the clone's accounting.
OperatorExecStats BuildClonePartition(uint64_t seed, int64_t rows,
                                      const ExecKeyDist& dist, int clone,
                                      int degree, ExecHashTable* table);

/// Probes round-robin slice `clone` (of `degree`) of the probe stream
/// against the key-partitioned `tables` (one per build clone). `key_sum`,
/// when non-null, accumulates output keys (wrapping).
OperatorExecStats ProbeCloneSlice(uint64_t seed, int64_t rows,
                                  const ExecKeyDist& dist, int clone,
                                  int degree,
                                  const std::vector<const ExecHashTable*>& tables,
                                  uint64_t* key_sum);

/// Runs the full join, clone-parallel on `pool` (nullptr or degree 1 =
/// inline sequential). Deterministic for any pool size.
HashJoinExecution ExecutePartitionedHashJoin(const HashJoinSpec& spec,
                                             ThreadPool* pool);

/// Single-threaded reference: sorts the build side and answers probes by
/// binary search — an algorithm with no shared code with the hash path,
/// used to cross-check row counts, key sums, and digests.
HashJoinExecution ReferenceHashJoin(const HashJoinSpec& spec);

// ---------------------------------------------------------------------------
// Two-phase partitioned group-by.

struct GroupBySpec {
  uint64_t seed = 1;
  int64_t rows = 0;
  ExecKeyDist dist;
  /// Phase-1 (accumulate) clones: round-robin input slices into partial
  /// tables.
  int degree = 1;
  /// Phase-2 (emit) clones: each merges its key partition across all
  /// partials. 0 = same as `degree`.
  int output_degree = 0;
};

struct GroupByExecution {
  int64_t groups = 0;
  /// Wrapping sum of every input row's payload (conservation invariant:
  /// phase 2 must account for every accumulated row).
  uint64_t payload_sum = 0;
  /// Order-independent digest over emitted (key, count, sum) groups.
  uint64_t group_digest = 0;
  std::vector<OperatorExecStats> accumulate_clones;
  std::vector<OperatorExecStats> emit_clones;
};

/// Accumulates round-robin slice `clone` (of `degree`) into `partial`.
OperatorExecStats AccumulateCloneSlice(uint64_t seed, int64_t rows,
                                       const ExecKeyDist& dist, int clone,
                                       int degree, ExecGroupTable* partial);

/// Merges key partition `clone` (of `degree`) from all `partials` and
/// emits its groups. `payload_sum`, when non-null, accumulates the emitted
/// partition's payload total (wrapping).
OperatorExecStats EmitClonePartition(
    const std::vector<const ExecGroupTable*>& partials, int clone, int degree,
    ExecGroupTable* scratch, uint64_t* payload_sum);

/// Runs the two-phase group-by, clone-parallel on `pool` per phase.
GroupByExecution ExecuteTwoPhaseGroupBy(const GroupBySpec& spec,
                                        ThreadPool* pool);

/// Single-threaded reference via sort + run-length scan.
GroupByExecution ReferenceGroupBy(const GroupBySpec& spec);

}  // namespace mrs

#endif  // MRS_EXEC_OPERATORS_H_
