#include "exec/operators.h"

#include <algorithm>
#include <cstddef>

namespace mrs {
namespace {

/// Smallest power of two >= max(8, n / kMaxLoad). Load factor 0.5 keeps
/// linear-probe chains short even under skewed keys.
size_t TableCapacityFor(size_t n) {
  size_t want = n < 4 ? 8 : n * 2;
  size_t cap = 8;
  while (cap < want) cap <<= 1;
  return cap;
}

}  // namespace

// ---------------------------------------------------------------------------
// ExecHashTable.

void ExecHashTable::Reset(size_t expected) {
  const size_t want = TableCapacityFor(expected);
  if (keys_.size() < want) {
    keys_.assign(want, 0);
    payloads_.assign(want, 0);
    used_.assign(want, 0);
    mask_ = want - 1;
  } else {
    std::fill(used_.begin(), used_.end(), static_cast<uint8_t>(0));
  }
  size_ = 0;
}

void ExecHashTable::Insert(uint64_t key, uint64_t payload) {
  if (keys_.empty() || (size_ + 1) * 2 > keys_.size()) {
    Rehash(TableCapacityFor(size_ + 1));
  }
  size_t i = MixU64(key) & mask_;
  while (used_[i]) i = (i + 1) & mask_;
  used_[i] = 1;
  keys_[i] = key;
  payloads_[i] = payload;
  ++size_;
}

void ExecHashTable::Rehash(size_t new_capacity) {
  std::vector<uint64_t> old_keys = std::move(keys_);
  std::vector<uint64_t> old_payloads = std::move(payloads_);
  std::vector<uint8_t> old_used = std::move(used_);
  keys_.assign(new_capacity, 0);
  payloads_.assign(new_capacity, 0);
  used_.assign(new_capacity, 0);
  mask_ = new_capacity - 1;
  size_ = 0;
  for (size_t i = 0; i < old_keys.size(); ++i) {
    if (!old_used[i]) continue;
    size_t j = MixU64(old_keys[i]) & mask_;
    while (used_[j]) j = (j + 1) & mask_;
    used_[j] = 1;
    keys_[j] = old_keys[i];
    payloads_[j] = old_payloads[i];
    ++size_;
  }
}

// ---------------------------------------------------------------------------
// ExecGroupTable.

void ExecGroupTable::Reset(size_t expected) {
  const size_t want = TableCapacityFor(expected);
  if (keys_.size() < want) {
    keys_.assign(want, 0);
    counts_.assign(want, 0);
    sums_.assign(want, 0);
    used_.assign(want, 0);
    mask_ = want - 1;
  } else {
    std::fill(used_.begin(), used_.end(), static_cast<uint8_t>(0));
  }
  size_ = 0;
}

size_t ExecGroupTable::FindSlot(uint64_t key) {
  if (keys_.empty() || (size_ + 1) * 2 > keys_.size()) {
    Rehash(TableCapacityFor(size_ + 1));
  }
  size_t i = MixU64(key) & mask_;
  while (used_[i] && keys_[i] != key) i = (i + 1) & mask_;
  if (!used_[i]) {
    used_[i] = 1;
    keys_[i] = key;
    counts_[i] = 0;
    sums_[i] = 0;
    ++size_;
  }
  return i;
}

void ExecGroupTable::Accumulate(uint64_t key, uint64_t payload) {
  const size_t i = FindSlot(key);
  counts_[i] += 1;
  sums_[i] += payload;
}

void ExecGroupTable::Merge(uint64_t key, uint64_t count, uint64_t sum) {
  const size_t i = FindSlot(key);
  counts_[i] += count;
  sums_[i] += sum;
}

void ExecGroupTable::Rehash(size_t new_capacity) {
  std::vector<uint64_t> old_keys = std::move(keys_);
  std::vector<uint64_t> old_counts = std::move(counts_);
  std::vector<uint64_t> old_sums = std::move(sums_);
  std::vector<uint8_t> old_used = std::move(used_);
  keys_.assign(new_capacity, 0);
  counts_.assign(new_capacity, 0);
  sums_.assign(new_capacity, 0);
  used_.assign(new_capacity, 0);
  mask_ = new_capacity - 1;
  size_ = 0;
  for (size_t i = 0; i < old_keys.size(); ++i) {
    if (!old_used[i]) continue;
    size_t j = MixU64(old_keys[i]) & mask_;
    while (used_[j]) j = (j + 1) & mask_;
    used_[j] = 1;
    keys_[j] = old_keys[i];
    counts_[j] = old_counts[i];
    sums_[j] = old_sums[i];
    ++size_;
  }
}

// ---------------------------------------------------------------------------
// Digests.

uint64_t JoinOutputDigest(uint64_t key, uint64_t build_payload,
                          uint64_t probe_payload) {
  // Asymmetric in the two payloads so build/probe swaps are detected.
  return MixU64(key ^ MixU64(build_payload) ^
                MixU64(probe_payload ^ 0x517cc1b727220a95ull));
}

uint64_t GroupOutputDigest(uint64_t key, uint64_t count, uint64_t sum) {
  return MixU64(key ^ MixU64(count) ^ MixU64(sum ^ 0x2545f4914f6cdd1dull));
}

// ---------------------------------------------------------------------------
// Partitioned hash join.

OperatorExecStats BuildClonePartition(uint64_t seed, int64_t rows,
                                      const ExecKeyDist& dist, int clone,
                                      int degree, ExecHashTable* table) {
  OperatorExecStats stats;
  stats.clone = clone;
  // Expected partition size; the table grows if the hash split is uneven.
  table->Reset(degree > 0 ? static_cast<size_t>(rows) /
                                static_cast<size_t>(degree)
                          : static_cast<size_t>(rows));
  for (int64_t i = 0; i < rows; ++i) {
    const ExecRow row = SynthesizeRow(seed, static_cast<uint64_t>(i), dist);
    if (PartitionOf(row.key, degree) != clone) continue;
    table->Insert(row.key, row.payload);
    ++stats.rows_in;
    stats.digest += RowDigest(row);
  }
  stats.rows_out = stats.rows_in;
  return stats;
}

OperatorExecStats ProbeCloneSlice(
    uint64_t seed, int64_t rows, const ExecKeyDist& dist, int clone,
    int degree, const std::vector<const ExecHashTable*>& tables,
    uint64_t* key_sum) {
  OperatorExecStats stats;
  stats.clone = clone;
  const int build_degree = static_cast<int>(tables.size());
  if (build_degree == 0) return stats;  // no build side: no matches
  uint64_t keys = 0;
  for (int64_t i = clone; i < rows; i += degree) {
    const ExecRow row = SynthesizeRow(seed, static_cast<uint64_t>(i), dist);
    ++stats.rows_in;
    const ExecHashTable* table = tables[PartitionOf(row.key, build_degree)];
    table->ForEachMatch(row.key, [&](uint64_t build_payload) {
      ++stats.rows_out;
      keys += row.key;
      stats.digest += JoinOutputDigest(row.key, build_payload, row.payload);
    });
  }
  if (key_sum != nullptr) *key_sum += keys;
  return stats;
}

HashJoinExecution ExecutePartitionedHashJoin(const HashJoinSpec& spec,
                                             ThreadPool* pool) {
  const int degree = std::max(1, spec.degree);
  HashJoinExecution out;
  out.build_clones.resize(static_cast<size_t>(degree));
  out.probe_clones.resize(static_cast<size_t>(degree));

  std::vector<ExecHashTable> tables(static_cast<size_t>(degree));
  auto build = [&](int k) {
    out.build_clones[static_cast<size_t>(k)] =
        BuildClonePartition(spec.build_seed, spec.build_rows, spec.dist, k,
                            degree, &tables[static_cast<size_t>(k)]);
  };
  if (pool != nullptr && degree > 1) {
    for (int k = 0; k < degree; ++k) pool->Submit([&build, k] { build(k); });
    pool->WaitAll();  // barrier: probes read every table
  } else {
    for (int k = 0; k < degree; ++k) build(k);
  }

  std::vector<const ExecHashTable*> table_ptrs;
  table_ptrs.reserve(tables.size());
  for (const ExecHashTable& t : tables) table_ptrs.push_back(&t);

  std::vector<uint64_t> key_sums(static_cast<size_t>(degree), 0);
  auto probe = [&](int k) {
    out.probe_clones[static_cast<size_t>(k)] =
        ProbeCloneSlice(spec.probe_seed, spec.probe_rows, spec.dist, k, degree,
                        table_ptrs, &key_sums[static_cast<size_t>(k)]);
  };
  if (pool != nullptr && degree > 1) {
    for (int k = 0; k < degree; ++k) pool->Submit([&probe, k] { probe(k); });
    pool->WaitAll();
  } else {
    for (int k = 0; k < degree; ++k) probe(k);
  }

  for (int k = 0; k < degree; ++k) {
    out.output_rows += out.probe_clones[static_cast<size_t>(k)].rows_out;
    out.output_digest += out.probe_clones[static_cast<size_t>(k)].digest;
    out.key_sum += key_sums[static_cast<size_t>(k)];
  }
  return out;
}

HashJoinExecution ReferenceHashJoin(const HashJoinSpec& spec) {
  HashJoinExecution out;
  std::vector<ExecRow> build;
  SynthesizeRows(spec.build_seed, spec.build_rows, spec.dist, &build);
  std::sort(build.begin(), build.end(),
            [](const ExecRow& a, const ExecRow& b) {
              return a.key < b.key || (a.key == b.key && a.payload < b.payload);
            });
  for (int64_t i = 0; i < spec.probe_rows; ++i) {
    const ExecRow probe =
        SynthesizeRow(spec.probe_seed, static_cast<uint64_t>(i), spec.dist);
    auto lo = std::lower_bound(
        build.begin(), build.end(), probe.key,
        [](const ExecRow& r, uint64_t key) { return r.key < key; });
    for (; lo != build.end() && lo->key == probe.key; ++lo) {
      ++out.output_rows;
      out.key_sum += probe.key;
      out.output_digest +=
          JoinOutputDigest(probe.key, lo->payload, probe.payload);
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// Two-phase partitioned group-by.

OperatorExecStats AccumulateCloneSlice(uint64_t seed, int64_t rows,
                                       const ExecKeyDist& dist, int clone,
                                       int degree, ExecGroupTable* partial) {
  OperatorExecStats stats;
  stats.clone = clone;
  partial->Reset(degree > 0 ? static_cast<size_t>(rows) /
                                  static_cast<size_t>(degree)
                            : static_cast<size_t>(rows));
  for (int64_t i = clone; i < rows; i += degree) {
    const ExecRow row = SynthesizeRow(seed, static_cast<uint64_t>(i), dist);
    partial->Accumulate(row.key, row.payload);
    ++stats.rows_in;
  }
  stats.rows_out = static_cast<int64_t>(partial->num_groups());
  return stats;
}

OperatorExecStats EmitClonePartition(
    const std::vector<const ExecGroupTable*>& partials, int clone, int degree,
    ExecGroupTable* scratch, uint64_t* payload_sum) {
  OperatorExecStats stats;
  stats.clone = clone;
  size_t expected = 0;
  for (const ExecGroupTable* p : partials) expected += p->num_groups();
  scratch->Reset(degree > 0 ? expected / static_cast<size_t>(degree)
                            : expected);
  for (const ExecGroupTable* p : partials) {
    p->ForEachGroup([&](uint64_t key, uint64_t count, uint64_t sum) {
      if (PartitionOf(key, degree) != clone) return;
      scratch->Merge(key, count, sum);
      stats.rows_in += static_cast<int64_t>(count);
    });
  }
  uint64_t sums = 0;
  scratch->ForEachGroup([&](uint64_t key, uint64_t count, uint64_t sum) {
    ++stats.rows_out;
    sums += sum;
    stats.digest += GroupOutputDigest(key, count, sum);
  });
  if (payload_sum != nullptr) *payload_sum += sums;
  return stats;
}

GroupByExecution ExecuteTwoPhaseGroupBy(const GroupBySpec& spec,
                                        ThreadPool* pool) {
  const int degree = std::max(1, spec.degree);
  const int out_degree =
      spec.output_degree > 0 ? spec.output_degree : degree;
  GroupByExecution out;
  out.accumulate_clones.resize(static_cast<size_t>(degree));
  out.emit_clones.resize(static_cast<size_t>(out_degree));

  std::vector<ExecGroupTable> partials(static_cast<size_t>(degree));
  auto accumulate = [&](int k) {
    out.accumulate_clones[static_cast<size_t>(k)] =
        AccumulateCloneSlice(spec.seed, spec.rows, spec.dist, k, degree,
                             &partials[static_cast<size_t>(k)]);
  };
  if (pool != nullptr && degree > 1) {
    for (int k = 0; k < degree; ++k) {
      pool->Submit([&accumulate, k] { accumulate(k); });
    }
    pool->WaitAll();  // barrier: emitters read every partial
  } else {
    for (int k = 0; k < degree; ++k) accumulate(k);
  }

  std::vector<const ExecGroupTable*> partial_ptrs;
  partial_ptrs.reserve(partials.size());
  for (const ExecGroupTable& p : partials) partial_ptrs.push_back(&p);

  std::vector<ExecGroupTable> scratch(static_cast<size_t>(out_degree));
  std::vector<uint64_t> sums(static_cast<size_t>(out_degree), 0);
  auto emit = [&](int k) {
    out.emit_clones[static_cast<size_t>(k)] = EmitClonePartition(
        partial_ptrs, k, out_degree, &scratch[static_cast<size_t>(k)],
        &sums[static_cast<size_t>(k)]);
  };
  if (pool != nullptr && out_degree > 1) {
    for (int k = 0; k < out_degree; ++k) pool->Submit([&emit, k] { emit(k); });
    pool->WaitAll();
  } else {
    for (int k = 0; k < out_degree; ++k) emit(k);
  }

  for (int k = 0; k < out_degree; ++k) {
    out.groups += out.emit_clones[static_cast<size_t>(k)].rows_out;
    out.group_digest += out.emit_clones[static_cast<size_t>(k)].digest;
    out.payload_sum += sums[static_cast<size_t>(k)];
  }
  return out;
}

GroupByExecution ReferenceGroupBy(const GroupBySpec& spec) {
  GroupByExecution out;
  std::vector<ExecRow> rows;
  SynthesizeRows(spec.seed, spec.rows, spec.dist, &rows);
  std::sort(rows.begin(), rows.end(), [](const ExecRow& a, const ExecRow& b) {
    return a.key < b.key;
  });
  size_t i = 0;
  while (i < rows.size()) {
    const uint64_t key = rows[i].key;
    uint64_t count = 0;
    uint64_t sum = 0;
    for (; i < rows.size() && rows[i].key == key; ++i) {
      ++count;
      sum += rows[i].payload;
    }
    ++out.groups;
    out.payload_sum += sum;
    out.group_digest += GroupOutputDigest(key, count, sum);
  }
  return out;
}

}  // namespace mrs
