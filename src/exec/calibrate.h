#ifndef MRS_EXEC_CALIBRATE_H_
#define MRS_EXEC_CALIBRATE_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "core/schedule.h"
#include "core/tree_schedule.h"
#include "cost/cost_model.h"
#include "exec/exec_backend.h"
#include "resource/usage_model.h"

namespace mrs {

/// Replays schedules on the execute backend and holds the measurements
/// against the model — the loop ROADMAP item 5 closes:
///
///  * per clone: measured time (ExecMeter) vs the placement's predicted
///    (T_seq, W), scaled by the executed row fraction;
///  * per site: measured busy time (the sum of its clones' measured
///    times — the replay serializes a clone on one worker thread, so the
///    site's real cost is additive) vs the eq. (2) site time and, across
///    sites, the eq. (3) makespan;
///  * a fitted per-dimension scale x minimizing
///      sum_clones (measured_c - x . (frac_c * W_c))^2
///    (non-negative least squares via ridge-stabilized normal equations).
///    The fitted site prediction is x . (site's fraction-scaled load):
///    the eps = 0 (no intra-clone overlap) instantiation of the usage
///    model with learned unit costs, matching how the serialized replay
///    actually spends time. FittedOptions() packages x as the cost
///    model's CostModelOptions::fitted mode.
///
/// Feed it plans with AddSchedule (one timed schedule = one plan, the
/// LISTSCHEDULE shape) or AddTreePlan (phased; phases replay back to back
/// on one backend so probes find their builds' state), then read
/// FitScale / MeanRelativeError / ReportJson. Use
/// ExecMeter::kDeterministic for byte-stable reports (goldens), the
/// default kThreadCpu for real calibration runs.
class Calibrator {
 public:
  /// `dims` is the work-vector dimensionality of every schedule added.
  Calibrator(int dims, OverlapUsageModel usage, ExecuteOptions exec = {});

  /// Replays one timed schedule as a single-phase plan.
  Status AddSchedule(const std::string& label, const Schedule& schedule,
                     const std::vector<ExecOpSpec>& specs);

  /// Replays a phased plan (fresh backend; phases share state).
  Status AddTreePlan(const std::string& label, const TreeScheduleResult& plan,
                     const std::vector<ExecOpSpec>& specs);

  int num_plans() const { return static_cast<int>(plans_.size()); }
  int num_clone_samples() const { return static_cast<int>(clones_.size()); }

  /// The fitted per-dimension scale (>= 0 componentwise; zero vector when
  /// no samples were recorded).
  std::vector<double> FitScale() const;

  /// FitScale packaged for CostModel's fitted mode.
  CostModelOptions FittedOptions() const;

  /// Mean relative error of the per-site predictions against measured
  /// site busy time, over every (plan, non-idle site): unfitted compares
  /// the eq. (2) model value, fitted the scale-adjusted prediction.
  double MeanRelativeError(bool fitted) const;

  /// The versioned JSON calibration report: configuration, fitted scale,
  /// both error metrics, and measured vs predicted per-site makespan for
  /// every recorded plan. Byte-stable under ExecMeter::kDeterministic.
  std::string ReportJson() const;

 private:
  struct SiteSample {
    int site = -1;
    double predicted = 0.0;  // eq. (2) model ms, summed over phases
    double measured = 0.0;   // meter units, summed over phases
    WorkVector scaled_load;  // sum of frac_c * W_c at the site
  };
  struct PlanSample {
    std::string label;
    double predicted_makespan = 0.0;
    double measured_makespan = 0.0;
    std::vector<SiteSample> sites;  // non-idle sites only, ascending
  };
  struct CloneSample {
    WorkVector work;  // frac_c * W_c
    double measured = 0.0;
  };

  /// Replays one schedule into `plan` (aggregating by site) and records
  /// the clone samples.
  Status AccumulatePhase(ExecBackend* backend, const Schedule& schedule,
                         const std::vector<ExecOpSpec>& specs,
                         PlanSample* plan);

  /// Fitted site prediction under `scale`.
  static double FittedSiteTime(const std::vector<double>& scale,
                               const SiteSample& site);

  int dims_;
  OverlapUsageModel usage_;
  ExecuteOptions exec_;
  std::vector<PlanSample> plans_;
  std::vector<CloneSample> clones_;
};

}  // namespace mrs

#endif  // MRS_EXEC_CALIBRATE_H_
