#ifndef MRS_EXEC_EXECUTE_BACKEND_H_
#define MRS_EXEC_EXECUTE_BACKEND_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/thread_pool.h"
#include "exec/exec_backend.h"
#include "exec/operators.h"
#include "resource/machine.h"

namespace mrs {

/// Real execution of a Schedule: every placed clone runs an actual
/// operator fragment (exec/operators.h) over deterministic generated data
/// (workload/exec_data.h) on a thread pool, and the result carries both
///
///  * a *virtual timeline* — the optimal-stretch fluid discipline applied
///    to the placements' predicted (T_seq, W), implemented independently
///    of exec/fluid_simulator.cc (per-clone remaining *fractions* instead
///    of mutated work vectors) so the differential tests compare two
///    genuinely separate realizations of eq. (2)/(3); and
///  * *measured* per-clone times (ExecMeter), which never influence the
///    timeline — they exist to be compared against it (exec/calibrate.h).
///
/// Execution semantics, kept deliberately simple (a validation backend,
/// not a query engine):
///
///  * every operator reads its own generated input stream (stream seed =
///    mix(data_seed, op_id)); by default pipelined edges are not
///    replayed — only the blocking edges move data, through materialized
///    site-local state. With ExecuteOptions::pipeline_edges, ops connected
///    by live data edges form pipeline groups that run in one wave:
///    producer clones push their actual output rows through bounded
///    queues (key-hash routed, one queue per consumer clone) to consumer
///    clones running concurrently on dedicated threads, and a group waits
///    until every member's blocking producer has materialized. Digests
///    stay order-independent, so either mode is byte-identical across
///    thread counts (the two modes see different row streams, though);
///  * kBuild key-partitions its stream into one hash table per clone;
///    kProbe streams a fresh stream over the same key domain and probes
///    the owning partition (build and probe degrees may differ);
///  * kAggBuild accumulates round-robin slices into per-clone partials;
///    kAggOutput merges each key partition across all partials;
///  * kSortRun sorts round-robin slices into runs; kSortMerge collects
///    and orders its key partition from all runs;
///  * kScan materializes and digests its round-robin slice;
///  * clones of ops with a blocking producer run in a later pool wave
///    than the producer (WaitAll barriers give the happens-before edge
///    that keeps concurrent table reads TSan-clean).
///
/// Within one Run, waves follow blocking dependencies; across Run calls
/// the materialized state persists (TREESCHEDULE probes execute phases
/// after their builds), until Reset.
class ExecuteBackend : public ExecBackend {
 public:
  explicit ExecuteBackend(ExecuteOptions options = {});
  ~ExecuteBackend() override;

  std::string_view name() const override { return "execute"; }

  Result<ExecutionResult> Run(const Schedule& schedule,
                              const std::vector<ExecOpSpec>& specs) override;

  void Reset() override;

  const ExecuteOptions& options() const { return options_; }

 private:
  /// Materialized state of one executed operator.
  struct OpState {
    OperatorKind kind = OperatorKind::kScan;
    int degree = 0;
    uint64_t seed = 0;
    ExecKeyDist dist;
    int64_t rows_exec = 0;
    std::vector<ExecHashTable> tables;        // kBuild
    std::vector<ExecGroupTable> partials;     // kAggBuild
    std::vector<std::vector<ExecRow>> runs;   // kSortRun
    std::vector<ExecGroupTable> emit_scratch;  // kAggOutput
  };

  ThreadPool* pool();

  ExecuteOptions options_;
  std::unique_ptr<ThreadPool> pool_;
  std::unordered_map<int, OpState> state_;
};

/// Deterministic text rendering of an ExecutionResult (the `--execute`
/// explain output; golden-stable under ExecMeter::kDeterministic).
/// `wall` includes the real elapsed time line (off for goldens).
std::string ExplainExecution(const ExecutionResult& result,
                             const MachineConfig& machine, bool wall = false);

}  // namespace mrs

#endif  // MRS_EXEC_EXECUTE_BACKEND_H_
