#include "exec/gantt.h"

#include <algorithm>
#include <cmath>

#include "common/str_util.h"

namespace mrs {

std::string RenderPhaseGantt(const Schedule& schedule, int width) {
  width = std::max(width, 10);
  const double makespan = schedule.Makespan();
  std::string out =
      StrFormat("  time scale: |%s| = %s\n", std::string(
                    static_cast<size_t>(width), '-').c_str(),
                FormatMillis(makespan).c_str());
  for (int j = 0; j < schedule.num_sites(); ++j) {
    const double t = schedule.SiteTime(j);
    const int cells =
        makespan > 0
            ? static_cast<int>(std::round(t / makespan * width))
            : 0;
    std::string bar(static_cast<size_t>(std::clamp(cells, 0, width)), '#');
    bar.resize(static_cast<size_t>(width), ' ');
    std::vector<std::string> labels;
    for (int p : schedule.SitePlacements(j)) {
      const ClonePlacement& c = schedule.placements()[static_cast<size_t>(p)];
      labels.push_back(StrFormat("op%d.%d", c.op_id, c.clone_idx));
    }
    out += StrFormat("  s%-3d |%s| %7s  %s\n", j, bar.c_str(),
                     FormatMillis(t).c_str(),
                     StrJoin(labels, " ").c_str());
  }
  return out;
}

std::string RenderTreeGantt(const TreeScheduleResult& result, int width) {
  std::string out = StrFormat("response time %s over %zu phase(s)\n",
                              FormatMillis(result.response_time).c_str(),
                              result.phases.size());
  for (const auto& phase : result.phases) {
    const int phase_width =
        result.response_time > 0
            ? std::max(10, static_cast<int>(std::round(
                               phase.makespan / result.response_time *
                               width)))
            : width;
    out += StrFormat("phase %d (makespan %s):\n", phase.phase,
                     FormatMillis(phase.makespan).c_str());
    out += RenderPhaseGantt(phase.schedule, phase_width);
  }
  return out;
}

std::string RenderListGantt(const ListScheduleResult& result, int width) {
  width = std::max(width, 10);
  const Schedule& schedule = result.schedule;
  const double makespan = result.makespan;
  std::string out = StrFormat(
      "barrier-free schedule — makespan %s (%s, %d rounds)\n",
      FormatMillis(makespan).c_str(), result.ModeString(), result.rounds);
  out += StrFormat("  time scale: |%s| = %s\n",
                   std::string(static_cast<size_t>(width), '-').c_str(),
                   FormatMillis(makespan).c_str());
  for (int j = 0; j < schedule.num_sites(); ++j) {
    std::string bar(static_cast<size_t>(width), ' ');
    double site_finish = 0.0;
    std::vector<std::string> labels;
    for (int p : schedule.SitePlacements(j)) {
      const ClonePlacement& c = schedule.placements()[static_cast<size_t>(p)];
      const double finish = result.clone_finish[static_cast<size_t>(p)];
      site_finish = std::max(site_finish, finish);
      labels.push_back(StrFormat("op%d.%d@%s", c.op_id, c.clone_idx,
                                 FormatMillis(c.start).c_str()));
      if (makespan > 0) {
        // Fill every cell whose midpoint falls inside [start, finish).
        for (int cell = 0; cell < width; ++cell) {
          const double mid =
              (static_cast<double>(cell) + 0.5) * makespan / width;
          if (mid >= c.start && mid < finish) {
            bar[static_cast<size_t>(cell)] = '#';
          }
        }
      }
    }
    out += StrFormat("  s%-3d |%s| %7s  %s\n", j, bar.c_str(),
                     FormatMillis(site_finish).c_str(),
                     StrJoin(labels, " ").c_str());
  }
  return out;
}

std::string RenderTreeGanttSvg(const TreeScheduleResult& result,
                               int width_px) {
  width_px = std::max(width_px, 200);
  const int lane_height = 14;
  const int lane_gap = 2;
  const int phase_gap = 10;
  const int margin_left = 56;
  const int margin_top = 24;

  int num_sites = 0;
  for (const auto& phase : result.phases) {
    num_sites = std::max(num_sites, phase.schedule.num_sites());
  }
  const double total = result.response_time > 0 ? result.response_time : 1.0;
  const double px_per_ms =
      static_cast<double>(width_px - margin_left - 10) / total;
  const int height = margin_top +
                     static_cast<int>(result.phases.size()) * phase_gap +
                     num_sites * (lane_height + lane_gap) + 30;

  // A small qualitative palette cycled by operator id.
  static const char* kColors[] = {"#4e79a7", "#f28e2b", "#e15759", "#76b7b2",
                                  "#59a14f", "#edc948", "#b07aa1", "#ff9da7",
                                  "#9c755f", "#bab0ac"};
  std::string svg = StrFormat(
      "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"%d\" height=\"%d\" "
      "font-family=\"sans-serif\" font-size=\"10\">\n",
      width_px, height);
  svg += StrFormat(
      "  <text x=\"%d\" y=\"14\">phased schedule — response %s</text>\n",
      margin_left, FormatMillis(result.response_time).c_str());

  double phase_start_ms = 0.0;
  int phase_index = 0;
  for (const auto& phase : result.phases) {
    const double x0 =
        margin_left + phase_start_ms * px_per_ms;
    // Phase boundary line.
    svg += StrFormat(
        "  <line x1=\"%.1f\" y1=\"%d\" x2=\"%.1f\" y2=\"%d\" "
        "stroke=\"#999\" stroke-dasharray=\"3,3\"/>\n",
        x0, margin_top, x0,
        margin_top + num_sites * (lane_height + lane_gap));
    for (int j = 0; j < phase.schedule.num_sites(); ++j) {
      const int y = margin_top + j * (lane_height + lane_gap);
      if (phase_index == 0) {
        svg += StrFormat(
            "  <text x=\"4\" y=\"%d\">s%d</text>\n", y + lane_height - 3, j);
      }
      // Stack the site's clones vertically within the lane, each drawn
      // for the site's full duration (fluid sharing has no sub-intervals).
      const auto placements = phase.schedule.SitePlacements(j);
      const double site_ms = phase.schedule.SiteTime(j);
      if (placements.empty() || site_ms <= 0) continue;
      const double slot =
          static_cast<double>(lane_height) /
          static_cast<double>(placements.size());
      size_t p = 0;
      for (int placement_index : placements) {
        const ClonePlacement& clone =
            phase.schedule.placements()[static_cast<size_t>(placement_index)];
        svg += StrFormat(
            "  <rect x=\"%.1f\" y=\"%.1f\" width=\"%.1f\" height=\"%.1f\" "
            "fill=\"%s\" fill-opacity=\"0.85\"><title>op%d.%d t_seq=%s"
            "</title></rect>\n",
            x0, y + static_cast<double>(p) * slot, site_ms * px_per_ms,
            std::max(slot - 0.5, 0.5),
            kColors[static_cast<size_t>(clone.op_id) % 10], clone.op_id,
            clone.clone_idx, FormatMillis(clone.t_seq).c_str());
        ++p;
      }
    }
    phase_start_ms += phase.makespan;
    ++phase_index;
  }
  // Time axis.
  const int axis_y = margin_top + num_sites * (lane_height + lane_gap) + 12;
  svg += StrFormat(
      "  <text x=\"%d\" y=\"%d\">0</text>\n", margin_left, axis_y);
  svg += StrFormat(
      "  <text x=\"%.1f\" y=\"%d\" text-anchor=\"end\">%s</text>\n",
      margin_left + total * px_per_ms, axis_y,
      FormatMillis(total).c_str());
  svg += "</svg>\n";
  return svg;
}

std::string RenderListGanttSvg(const ListScheduleResult& result,
                               int width_px) {
  width_px = std::max(width_px, 200);
  const int lane_height = 14;
  const int lane_gap = 2;
  const int margin_left = 56;
  const int margin_top = 24;

  const Schedule& schedule = result.schedule;
  const int num_sites = schedule.num_sites();
  const double total = result.makespan > 0 ? result.makespan : 1.0;
  const double px_per_ms =
      static_cast<double>(width_px - margin_left - 10) / total;
  const int height =
      margin_top + num_sites * (lane_height + lane_gap) + 30;

  // Same qualitative palette as the phased chart, cycled by operator id.
  static const char* kColors[] = {"#4e79a7", "#f28e2b", "#e15759", "#76b7b2",
                                  "#59a14f", "#edc948", "#b07aa1", "#ff9da7",
                                  "#9c755f", "#bab0ac"};
  std::string svg = StrFormat(
      "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"%d\" height=\"%d\" "
      "font-family=\"sans-serif\" font-size=\"10\">\n",
      width_px, height);
  svg += StrFormat(
      "  <text x=\"%d\" y=\"14\">barrier-free schedule — makespan %s "
      "(%s)</text>\n",
      margin_left, FormatMillis(result.makespan).c_str(),
      result.ModeString());

  for (int j = 0; j < num_sites; ++j) {
    const int y = margin_top + j * (lane_height + lane_gap);
    svg += StrFormat(
        "  <text x=\"4\" y=\"%d\">s%d</text>\n", y + lane_height - 3, j);
    // Stack the site's clones vertically within the lane; unlike the
    // phased chart each rectangle spans its own [start, finish).
    const auto placements = schedule.SitePlacements(j);
    if (placements.empty()) continue;
    const double slot =
        static_cast<double>(lane_height) /
        static_cast<double>(placements.size());
    size_t p = 0;
    for (int placement_index : placements) {
      const ClonePlacement& clone =
          schedule.placements()[static_cast<size_t>(placement_index)];
      const double finish =
          result.clone_finish[static_cast<size_t>(placement_index)];
      const double span_ms = std::max(finish - clone.start, 0.0);
      svg += StrFormat(
          "  <rect x=\"%.1f\" y=\"%.1f\" width=\"%.1f\" height=\"%.1f\" "
          "fill=\"%s\" fill-opacity=\"0.85\"><title>op%d.%d start=%s "
          "t_seq=%s</title></rect>\n",
          margin_left + clone.start * px_per_ms,
          y + static_cast<double>(p) * slot, span_ms * px_per_ms,
          std::max(slot - 0.5, 0.5),
          kColors[static_cast<size_t>(clone.op_id) % 10], clone.op_id,
          clone.clone_idx, FormatMillis(clone.start).c_str(),
          FormatMillis(clone.t_seq).c_str());
      ++p;
    }
  }
  // Time axis.
  const int axis_y = margin_top + num_sites * (lane_height + lane_gap) + 12;
  svg += StrFormat(
      "  <text x=\"%d\" y=\"%d\">0</text>\n", margin_left, axis_y);
  svg += StrFormat(
      "  <text x=\"%.1f\" y=\"%d\" text-anchor=\"end\">%s</text>\n",
      margin_left + total * px_per_ms, axis_y,
      FormatMillis(total).c_str());
  svg += "</svg>\n";
  return svg;
}

}  // namespace mrs
