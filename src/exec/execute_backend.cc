#include "exec/execute_backend.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <ctime>
#include <limits>
#include <unordered_set>

#include "common/str_util.h"

namespace mrs {
namespace {

/// CPU time of the calling thread in milliseconds (the kThreadCpu meter).
double ThreadCpuMs() {
#if defined(CLOCK_THREAD_CPUTIME_ID)
  timespec ts;
  if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) == 0) {
    return static_cast<double>(ts.tv_sec) * 1e3 +
           static_cast<double>(ts.tv_nsec) * 1e-6;
  }
#endif
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// The execute backend's own realization of the optimal-stretch fluid
/// discipline with staggered arrivals — the same eq. (2)-on-remaining-work
/// math as FluidSimulator::SimulateTimed, implemented independently:
/// residents carry a single remaining *fraction* (remaining work =
/// frac * W, remaining stand-alone time = frac * T_seq) instead of
/// mutated work vectors, and rebasing on an arrival multiplies fractions.
/// The differential suite compares this sweep against the simulator's
/// within tolerance; neither derives from the other.
Status ComputeVirtualTimeline(const Schedule& schedule, PhaseSimulation* sim) {
  const size_t dims = static_cast<size_t>(schedule.dims());
  sim->makespan = 0.0;
  sim->sites.assign(static_cast<size_t>(schedule.num_sites()),
                    SiteUtilization{WorkVector(dims), 0.0});
  sim->clone_finish.assign(schedule.placements().size(), 0.0);

  struct Entry {
    double start;
    int p;
  };
  struct Resident {
    int p;
    double frac;
  };
  const std::vector<ClonePlacement>& placements = schedule.placements();
  WorkVector load(dims);
  for (int j = 0; j < schedule.num_sites(); ++j) {
    std::vector<Entry> entries;
    entries.reserve(schedule.SitePlacements(j).size());
    for (int p : schedule.SitePlacements(j)) {
      const ClonePlacement& placement = placements[static_cast<size_t>(p)];
      if (placement.start < 0.0) {
        return Status::InvalidArgument(
            StrFormat("clone of op%d starts at %g < 0", placement.op_id,
                      placement.start));
      }
      if (!SequentialTimeWithinBounds(placement.work, placement.t_seq, 1e-6)) {
        return Status::InvalidArgument(
            StrFormat("clone of op%d violates max <= T_seq <= sum",
                      placement.op_id));
      }
      entries.push_back(Entry{placement.start, p});
    }
    std::stable_sort(entries.begin(), entries.end(),
                     [](const Entry& a, const Entry& b) {
                       return a.start < b.start;
                     });

    SiteUtilization* util = &sim->sites[static_cast<size_t>(j)];
    std::vector<Resident> active;
    double now = 0.0;
    size_t i = 0;
    const size_t n = entries.size();
    while (i < n || !active.empty()) {
      if (active.empty()) {
        now = std::max(now, entries[i].start);
        while (i < n && entries[i].start <= now) {
          active.push_back(Resident{entries[i].p, 1.0});
          ++i;
        }
      }
      double longest_own = 0.0;
      load.SetZero();
      for (const Resident& r : active) {
        const ClonePlacement& pl = placements[static_cast<size_t>(r.p)];
        longest_own = std::max(longest_own, r.frac * pl.t_seq);
        load.AddScaled(pl.work, r.frac);
      }
      const double t_fin = now + std::max(longest_own, load.Length());
      const double next_arrival =
          i < n ? entries[i].start : std::numeric_limits<double>::infinity();
      if (next_arrival < t_fin) {
        const double keep = (t_fin - next_arrival) / (t_fin - now);
        for (Resident& r : active) {
          const ClonePlacement& pl = placements[static_cast<size_t>(r.p)];
          util->busy.AddScaled(pl.work, r.frac * (1.0 - keep));
          r.frac *= keep;
        }
        now = next_arrival;
        while (i < n && entries[i].start <= now) {
          active.push_back(Resident{entries[i].p, 1.0});
          ++i;
        }
      } else {
        for (const Resident& r : active) {
          util->busy.AddScaled(placements[static_cast<size_t>(r.p)].work,
                               r.frac);
          sim->clone_finish[static_cast<size_t>(r.p)] = t_fin;
        }
        active.clear();
        now = t_fin;
      }
    }
    util->finish = now;
    sim->makespan = std::max(sim->makespan, now);
  }
  return Status::OK();
}

/// Stream seed of one operator's generated input.
uint64_t OpStreamSeed(uint64_t data_seed, int op_id) {
  return MixU64(data_seed ^ MixU64(static_cast<uint64_t>(op_id) +
                                   0x51ed2701u));
}

}  // namespace

ExecuteBackend::ExecuteBackend(ExecuteOptions options)
    : options_(std::move(options)) {}

ExecuteBackend::~ExecuteBackend() = default;

ThreadPool* ExecuteBackend::pool() {
  if (pool_ == nullptr) {
    const int threads =
        options_.threads > 0 ? options_.threads : ThreadPool::DefaultThreads();
    pool_ = std::make_unique<ThreadPool>(threads);
  }
  return pool_.get();
}

void ExecuteBackend::Reset() { state_.clear(); }

Result<ExecutionResult> ExecuteBackend::Run(
    const Schedule& schedule, const std::vector<ExecOpSpec>& specs) {
  const auto wall_start = std::chrono::steady_clock::now();
  ExecKeyDist skew_probe;
  skew_probe.skew = options_.skew;
  if (Status s = ValidateKeyDist(skew_probe); !s.ok()) return s;

  // Index the specs and group the schedule's placements by operator.
  std::unordered_map<int, const ExecOpSpec*> spec_of;
  for (const ExecOpSpec& spec : specs) spec_of[spec.op_id] = &spec;
  std::unordered_map<int, std::vector<int>> clones_of;  // op -> placements
  std::vector<int> op_order;  // first-placement order, deterministic
  for (size_t p = 0; p < schedule.placements().size(); ++p) {
    const ClonePlacement& placement = schedule.placements()[p];
    auto [it, inserted] = clones_of.try_emplace(placement.op_id);
    if (inserted) op_order.push_back(placement.op_id);
    it->second.push_back(static_cast<int>(p));
    if (spec_of.find(placement.op_id) == spec_of.end()) {
      return Status::InvalidArgument(
          StrFormat("no ExecOpSpec for op%d", placement.op_id));
    }
  }
  for (int oid : op_order) {
    const size_t degree = schedule.HomeOf(oid).size();
    if (clones_of[oid].size() != degree) {
      return Status::InvalidArgument(
          StrFormat("op%d has %zu of %zu clones placed", oid,
                    clones_of[oid].size(), degree));
    }
  }

  ExecutionResult result;
  if (Status s = ComputeVirtualTimeline(schedule, &result.timeline); !s.ok()) {
    return s;
  }
  result.clones.resize(schedule.placements().size());
  std::vector<uint64_t> clone_digest(schedule.placements().size(), 0);

  // Execute in waves: an operator is runnable once its blocking producer
  // has materialized (in an earlier wave, or an earlier Run for phased
  // plans). WaitAll between waves is the happens-before edge that makes
  // cross-clone reads of the materialized state race-free.
  std::unordered_set<int> done;
  done.reserve(state_.size());
  for (const auto& [oid, st] : state_) done.insert(oid);
  std::vector<int> pending = op_order;
  const ExecMeter meter = options_.meter;
  while (!pending.empty()) {
    std::vector<int> wave;
    std::vector<int> rest;
    for (int oid : pending) {
      const ExecOpSpec& spec = *spec_of[oid];
      if (spec.blocking_input < 0 || done.count(spec.blocking_input) > 0) {
        wave.push_back(oid);
      } else {
        rest.push_back(oid);
      }
    }
    if (wave.empty()) {
      return Status::InvalidArgument(StrFormat(
          "op%d blocks on op%d, which is neither in this schedule nor "
          "materialized by an earlier phase",
          pending.front(), spec_of[pending.front()]->blocking_input));
    }

    // Prepare per-op state (sized before any task is submitted).
    for (int oid : wave) {
      const ExecOpSpec& spec = *spec_of[oid];
      OpState& st = state_[oid];
      st.kind = spec.kind;
      st.degree = static_cast<int>(clones_of[oid].size());
      st.seed = OpStreamSeed(options_.data_seed, oid);
      st.rows_exec = spec.input_tuples;
      if (options_.max_rows_per_op > 0) {
        st.rows_exec = std::min(st.rows_exec, options_.max_rows_per_op);
      }
      st.dist.skew = options_.skew;
      switch (spec.kind) {
        case OperatorKind::kBuild:
        case OperatorKind::kScan:
        case OperatorKind::kSortRun:
          st.dist.domain = static_cast<uint64_t>(std::max<int64_t>(
              st.rows_exec, 1));
          break;
        case OperatorKind::kAggBuild:
          // ~4 rows per group keeps duplicate handling exercised without
          // collapsing everything into a handful of keys.
          st.dist.domain = static_cast<uint64_t>(std::max<int64_t>(
              st.rows_exec / 4, 1));
          break;
        case OperatorKind::kProbe: {
          // The probe streams over its build's key domain so matches
          // occur at the natural rate.
          const OpState& build = state_[spec.blocking_input];
          if (build.kind != OperatorKind::kBuild) {
            return Status::InvalidArgument(
                StrFormat("op%d probes op%d, which is not a build", oid,
                          spec.blocking_input));
          }
          st.dist = build.dist;
          break;
        }
        case OperatorKind::kSortMerge:
        case OperatorKind::kAggOutput: {
          // Consume materialized state; no stream of their own.
          const OperatorKind want = spec.kind == OperatorKind::kSortMerge
                                        ? OperatorKind::kSortRun
                                        : OperatorKind::kAggBuild;
          if (state_[spec.blocking_input].kind != want) {
            return Status::InvalidArgument(StrFormat(
                "op%d consumes op%d, which materialized the wrong state",
                oid, spec.blocking_input));
          }
          st.dist.domain = 1;
          break;
        }
      }
      switch (spec.kind) {
        case OperatorKind::kBuild:
          st.tables.clear();
          st.tables.resize(static_cast<size_t>(st.degree));
          break;
        case OperatorKind::kAggBuild:
          st.partials.clear();
          st.partials.resize(static_cast<size_t>(st.degree));
          break;
        case OperatorKind::kSortRun:
          st.runs.clear();
          st.runs.resize(static_cast<size_t>(st.degree));
          break;
        case OperatorKind::kAggOutput:
          st.emit_scratch.clear();
          st.emit_scratch.resize(static_cast<size_t>(st.degree));
          break;
        default:
          break;
      }
    }

    // Launch the wave's clones.
    for (int oid : wave) {
      const ExecOpSpec& spec = *spec_of[oid];
      OpState& st = state_[oid];
      OpState* blocking =
          spec.blocking_input >= 0 ? &state_[spec.blocking_input] : nullptr;
      for (int p : clones_of[oid]) {
        const ClonePlacement& placement =
            schedule.placements()[static_cast<size_t>(p)];
        const int k = placement.clone_idx;
        CloneExecution* out = &result.clones[static_cast<size_t>(p)];
        uint64_t* digest = &clone_digest[static_cast<size_t>(p)];
        out->op_id = oid;
        out->clone_idx = k;
        out->site = placement.site;
        out->kind = spec.kind;
        out->row_fraction =
            spec.input_tuples > 0
                ? static_cast<double>(st.rows_exec) /
                      static_cast<double>(spec.input_tuples)
                : 1.0;
        out->virtual_start = placement.start;
        out->virtual_finish =
            result.timeline.clone_finish[static_cast<size_t>(p)];
        pool()->Submit([&st, blocking, out, digest, k, meter] {
          const double t0 = meter == ExecMeter::kThreadCpu ? ThreadCpuMs() : 0;
          OperatorExecStats stats;
          switch (st.kind) {
            case OperatorKind::kScan: {
              stats.clone = k;
              for (int64_t i = k; i < st.rows_exec; i += st.degree) {
                const ExecRow row =
                    SynthesizeRow(st.seed, static_cast<uint64_t>(i), st.dist);
                ++stats.rows_in;
                stats.digest += RowDigest(row);
              }
              stats.rows_out = stats.rows_in;
              break;
            }
            case OperatorKind::kBuild:
              stats = BuildClonePartition(st.seed, st.rows_exec, st.dist, k,
                                          st.degree,
                                          &st.tables[static_cast<size_t>(k)]);
              break;
            case OperatorKind::kProbe: {
              std::vector<const ExecHashTable*> tables;
              tables.reserve(blocking->tables.size());
              for (const ExecHashTable& t : blocking->tables) {
                tables.push_back(&t);
              }
              stats = ProbeCloneSlice(st.seed, st.rows_exec, st.dist, k,
                                      st.degree, tables, nullptr);
              break;
            }
            case OperatorKind::kAggBuild:
              stats = AccumulateCloneSlice(
                  st.seed, st.rows_exec, st.dist, k, st.degree,
                  &st.partials[static_cast<size_t>(k)]);
              break;
            case OperatorKind::kAggOutput: {
              std::vector<const ExecGroupTable*> partials;
              partials.reserve(blocking->partials.size());
              for (const ExecGroupTable& t : blocking->partials) {
                partials.push_back(&t);
              }
              stats = EmitClonePartition(
                  partials, k, st.degree,
                  &st.emit_scratch[static_cast<size_t>(k)], nullptr);
              break;
            }
            case OperatorKind::kSortRun: {
              stats.clone = k;
              std::vector<ExecRow>& run = st.runs[static_cast<size_t>(k)];
              run.clear();
              for (int64_t i = k; i < st.rows_exec; i += st.degree) {
                run.push_back(
                    SynthesizeRow(st.seed, static_cast<uint64_t>(i), st.dist));
              }
              std::sort(run.begin(), run.end(),
                        [](const ExecRow& a, const ExecRow& b) {
                          return a.key < b.key ||
                                 (a.key == b.key && a.payload < b.payload);
                        });
              for (const ExecRow& row : run) stats.digest += RowDigest(row);
              stats.rows_in = static_cast<int64_t>(run.size());
              stats.rows_out = stats.rows_in;
              break;
            }
            case OperatorKind::kSortMerge: {
              stats.clone = k;
              std::vector<ExecRow> merged;
              for (const std::vector<ExecRow>& run : blocking->runs) {
                for (const ExecRow& row : run) {
                  if (PartitionOf(row.key, st.degree) != k) continue;
                  merged.push_back(row);
                }
              }
              std::sort(merged.begin(), merged.end(),
                        [](const ExecRow& a, const ExecRow& b) {
                          return a.key < b.key ||
                                 (a.key == b.key && a.payload < b.payload);
                        });
              for (const ExecRow& row : merged) stats.digest += RowDigest(row);
              stats.rows_in = static_cast<int64_t>(merged.size());
              stats.rows_out = stats.rows_in;
              break;
            }
          }
          out->rows_in = stats.rows_in;
          out->rows_out = stats.rows_out;
          *digest = stats.digest;
          out->measured_ms =
              meter == ExecMeter::kThreadCpu
                  ? ThreadCpuMs() - t0
                  : 1e-3 * static_cast<double>(stats.rows_in + stats.rows_out);
        });
      }
    }
    pool()->WaitAll();
    for (int oid : wave) done.insert(oid);
    pending = std::move(rest);
  }

  for (size_t p = 0; p < result.clones.size(); ++p) {
    result.rows_out += result.clones[p].rows_out;
    result.digest += clone_digest[p];
  }
  result.wall_ms = std::chrono::duration<double, std::milli>(
                       std::chrono::steady_clock::now() - wall_start)
                       .count();
  return result;
}

std::string ExplainExecution(const ExecutionResult& result,
                             const MachineConfig& machine, bool wall) {
  std::string out = StrFormat(
      "EXECUTION %s\n  makespan=%.3fms rows_out=%lld digest=%016llx\n",
      machine.ToString().c_str(), result.timeline.makespan,
      static_cast<long long>(result.rows_out),
      static_cast<unsigned long long>(result.digest));
  if (wall) out += StrFormat("  wall=%.3fms\n", result.wall_ms);

  // Clones grouped by site, in placement order (deterministic).
  for (size_t j = 0; j < result.timeline.sites.size(); ++j) {
    const SiteUtilization& site = result.timeline.sites[j];
    bool any = false;
    for (const CloneExecution& c : result.clones) {
      if (c.site == static_cast<int>(j)) {
        any = true;
        break;
      }
    }
    if (!any) continue;
    out += StrFormat("  site %zu: finish=%.3fms busy=%s\n", j, site.finish,
                     site.busy.ToString().c_str());
    for (const CloneExecution& c : result.clones) {
      if (c.site != static_cast<int>(j)) continue;
      out += StrFormat(
          "    op%d/%d %-9s rows=%lld->%lld frac=%.3f measured=%.3f "
          "virt=[%.3f,%.3f]\n",
          c.op_id, c.clone_idx,
          std::string(OperatorKindToString(c.kind)).c_str(),
          static_cast<long long>(c.rows_in),
          static_cast<long long>(c.rows_out), c.row_fraction, c.measured_ms,
          c.virtual_start, c.virtual_finish);
    }
  }
  return out;
}

}  // namespace mrs
