#include "exec/execute_backend.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <ctime>
#include <deque>
#include <limits>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_set>

#include "common/str_util.h"

namespace mrs {
namespace {

/// Bounded MPSC row queue of one pipelined consumer clone: every clone of
/// the (co-resident) producer pushes the rows whose key hashes to this
/// consumer, blocking while the queue is full — the backpressure of a real
/// pipelined exchange. Pop blocks until a row arrives or every producer
/// clone has closed. The mutex/condvar pair is the happens-before edge
/// that makes the streamed hand-off race-free (the TSan suite runs it).
class RowQueue {
 public:
  /// Registers `n` more producer clones. Called only while the wave is
  /// being wired up, before any clone thread starts.
  void AddProducers(int n) { open_ += n; }

  void Push(const ExecRow& row) {
    std::unique_lock<std::mutex> lock(mu_);
    can_push_.wait(lock, [&] { return rows_.size() < kCapacity; });
    rows_.push_back(row);
    can_pop_.notify_one();
  }

  /// False once every producer closed and the queue drained.
  bool Pop(ExecRow* row) {
    std::unique_lock<std::mutex> lock(mu_);
    can_pop_.wait(lock, [&] { return !rows_.empty() || open_ == 0; });
    if (rows_.empty()) return false;
    *row = rows_.front();
    rows_.pop_front();
    can_push_.notify_one();
    return true;
  }

  /// One producer clone will push no more rows.
  void ProducerDone() {
    std::lock_guard<std::mutex> lock(mu_);
    if (--open_ == 0) can_pop_.notify_all();
  }

 private:
  static constexpr size_t kCapacity = 256;
  std::mutex mu_;
  std::condition_variable can_push_;
  std::condition_variable can_pop_;
  std::deque<ExecRow> rows_;
  int open_ = 0;
};

/// CPU time of the calling thread in milliseconds (the kThreadCpu meter).
double ThreadCpuMs() {
#if defined(CLOCK_THREAD_CPUTIME_ID)
  timespec ts;
  if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) == 0) {
    return static_cast<double>(ts.tv_sec) * 1e3 +
           static_cast<double>(ts.tv_nsec) * 1e-6;
  }
#endif
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// The execute backend's own realization of the optimal-stretch fluid
/// discipline with staggered arrivals — the same eq. (2)-on-remaining-work
/// math as FluidSimulator::SimulateTimed, implemented independently:
/// residents carry a single remaining *fraction* (remaining work =
/// frac * W, remaining stand-alone time = frac * T_seq) instead of
/// mutated work vectors, and rebasing on an arrival multiplies fractions.
/// The differential suite compares this sweep against the simulator's
/// within tolerance; neither derives from the other.
Status ComputeVirtualTimeline(const Schedule& schedule, PhaseSimulation* sim) {
  const size_t dims = static_cast<size_t>(schedule.dims());
  sim->makespan = 0.0;
  sim->sites.assign(static_cast<size_t>(schedule.num_sites()),
                    SiteUtilization{WorkVector(dims), 0.0});
  sim->clone_finish.assign(schedule.placements().size(), 0.0);

  struct Entry {
    double start;
    int p;
  };
  struct Resident {
    int p;
    double frac;
  };
  const std::vector<ClonePlacement>& placements = schedule.placements();
  WorkVector load(dims);
  for (int j = 0; j < schedule.num_sites(); ++j) {
    std::vector<Entry> entries;
    entries.reserve(schedule.SitePlacements(j).size());
    for (int p : schedule.SitePlacements(j)) {
      const ClonePlacement& placement = placements[static_cast<size_t>(p)];
      if (placement.start < 0.0) {
        return Status::InvalidArgument(
            StrFormat("clone of op%d starts at %g < 0", placement.op_id,
                      placement.start));
      }
      if (!SequentialTimeWithinBounds(placement.work, placement.t_seq, 1e-6)) {
        return Status::InvalidArgument(
            StrFormat("clone of op%d violates max <= T_seq <= sum",
                      placement.op_id));
      }
      entries.push_back(Entry{placement.start, p});
    }
    std::stable_sort(entries.begin(), entries.end(),
                     [](const Entry& a, const Entry& b) {
                       return a.start < b.start;
                     });

    SiteUtilization* util = &sim->sites[static_cast<size_t>(j)];
    std::vector<Resident> active;
    double now = 0.0;
    size_t i = 0;
    const size_t n = entries.size();
    while (i < n || !active.empty()) {
      if (active.empty()) {
        now = std::max(now, entries[i].start);
        while (i < n && entries[i].start <= now) {
          active.push_back(Resident{entries[i].p, 1.0});
          ++i;
        }
      }
      double longest_own = 0.0;
      load.SetZero();
      for (const Resident& r : active) {
        const ClonePlacement& pl = placements[static_cast<size_t>(r.p)];
        longest_own = std::max(longest_own, r.frac * pl.t_seq);
        load.AddScaled(pl.work, r.frac);
      }
      const double t_fin = now + std::max(longest_own, load.Length());
      const double next_arrival =
          i < n ? entries[i].start : std::numeric_limits<double>::infinity();
      if (next_arrival < t_fin) {
        const double keep = (t_fin - next_arrival) / (t_fin - now);
        for (Resident& r : active) {
          const ClonePlacement& pl = placements[static_cast<size_t>(r.p)];
          util->busy.AddScaled(pl.work, r.frac * (1.0 - keep));
          r.frac *= keep;
        }
        now = next_arrival;
        while (i < n && entries[i].start <= now) {
          active.push_back(Resident{entries[i].p, 1.0});
          ++i;
        }
      } else {
        for (const Resident& r : active) {
          util->busy.AddScaled(placements[static_cast<size_t>(r.p)].work,
                               r.frac);
          sim->clone_finish[static_cast<size_t>(r.p)] = t_fin;
        }
        active.clear();
        now = t_fin;
      }
    }
    util->finish = now;
    sim->makespan = std::max(sim->makespan, now);
  }
  return Status::OK();
}

/// Stream seed of one operator's generated input.
uint64_t OpStreamSeed(uint64_t data_seed, int op_id) {
  return MixU64(data_seed ^ MixU64(static_cast<uint64_t>(op_id) +
                                   0x51ed2701u));
}

}  // namespace

ExecuteBackend::ExecuteBackend(ExecuteOptions options)
    : options_(std::move(options)) {}

ExecuteBackend::~ExecuteBackend() = default;

ThreadPool* ExecuteBackend::pool() {
  if (pool_ == nullptr) {
    const int threads =
        options_.threads > 0 ? options_.threads : ThreadPool::DefaultThreads();
    pool_ = std::make_unique<ThreadPool>(threads);
  }
  return pool_.get();
}

void ExecuteBackend::Reset() { state_.clear(); }

Result<ExecutionResult> ExecuteBackend::Run(
    const Schedule& schedule, const std::vector<ExecOpSpec>& specs) {
  const auto wall_start = std::chrono::steady_clock::now();
  ExecKeyDist skew_probe;
  skew_probe.skew = options_.skew;
  if (Status s = ValidateKeyDist(skew_probe); !s.ok()) return s;

  // Index the specs and group the schedule's placements by operator.
  std::unordered_map<int, const ExecOpSpec*> spec_of;
  for (const ExecOpSpec& spec : specs) spec_of[spec.op_id] = &spec;
  std::unordered_map<int, std::vector<int>> clones_of;  // op -> placements
  std::vector<int> op_order;  // first-placement order, deterministic
  for (size_t p = 0; p < schedule.placements().size(); ++p) {
    const ClonePlacement& placement = schedule.placements()[p];
    auto [it, inserted] = clones_of.try_emplace(placement.op_id);
    if (inserted) op_order.push_back(placement.op_id);
    it->second.push_back(static_cast<int>(p));
    if (spec_of.find(placement.op_id) == spec_of.end()) {
      return Status::InvalidArgument(
          StrFormat("no ExecOpSpec for op%d", placement.op_id));
    }
  }
  for (int oid : op_order) {
    const size_t degree = schedule.HomeOf(oid).size();
    if (clones_of[oid].size() != degree) {
      return Status::InvalidArgument(
          StrFormat("op%d has %zu of %zu clones placed", oid,
                    clones_of[oid].size(), degree));
    }
  }

  ExecutionResult result;
  if (Status s = ComputeVirtualTimeline(schedule, &result.timeline); !s.ok()) {
    return s;
  }
  result.clones.resize(schedule.placements().size());
  std::vector<uint64_t> clone_digest(schedule.placements().size(), 0);

  // Execute in waves: an operator is runnable once its blocking producer
  // has materialized (in an earlier wave, or an earlier Run for phased
  // plans). WaitAll between waves is the happens-before edge that makes
  // cross-clone reads of the materialized state race-free.
  std::unordered_set<int> done;
  done.reserve(state_.size());
  for (const auto& [oid, st] : state_) done.insert(oid);
  std::vector<int> pending = op_order;
  const ExecMeter meter = options_.meter;
  const bool pipeline_edges = options_.pipeline_edges;

  // Pipeline groups: ops of THIS Run connected by live data edges (both
  // ends scheduled here — an edge whose producer materialized in an
  // earlier Run does not stream). In pipeline mode a whole group runs in
  // one wave, producer and consumer clones concurrently, so the group is
  // runnable only once every member's blocking input is done. Groups are
  // keyed by their minimum op id (deterministic).
  std::unordered_map<int, int> group_rep;
  if (pipeline_edges) {
    std::unordered_set<int> scheduled(pending.begin(), pending.end());
    for (int oid : pending) group_rep[oid] = oid;
    const auto find_rep = [&group_rep](int oid) {
      while (group_rep[oid] != oid) {
        group_rep[oid] = group_rep[group_rep[oid]];
        oid = group_rep[oid];
      }
      return oid;
    };
    for (int oid : pending) {
      for (int d : spec_of[oid]->data_inputs) {
        if (scheduled.count(d) == 0) continue;
        const int a = find_rep(oid);
        const int b = find_rep(d);
        if (a == b) continue;
        if (a < b) {
          group_rep[b] = a;
        } else {
          group_rep[a] = b;
        }
      }
    }
    for (int oid : pending) group_rep[oid] = find_rep(oid);
  }

  while (!pending.empty()) {
    std::vector<int> wave;
    std::vector<int> rest;
    std::unordered_set<int> wave_set;
    if (pipeline_edges) {
      // A group waits while any member's blocking producer is unfinished;
      // blocking edges always cross groups (a build never streams to its
      // probe), so some group is always runnable while progress is
      // possible.
      std::unordered_set<int> blocked_groups;
      for (int oid : pending) {
        const int b = spec_of[oid]->blocking_input;
        if (b >= 0 && done.count(b) == 0) blocked_groups.insert(group_rep[oid]);
      }
      for (int oid : pending) {
        if (blocked_groups.count(group_rep[oid]) == 0) {
          wave.push_back(oid);
          wave_set.insert(oid);
        } else {
          rest.push_back(oid);
        }
      }
    } else {
      for (int oid : pending) {
        const ExecOpSpec& spec = *spec_of[oid];
        if (spec.blocking_input < 0 || done.count(spec.blocking_input) > 0) {
          wave.push_back(oid);
          wave_set.insert(oid);
        } else {
          rest.push_back(oid);
        }
      }
    }
    if (wave.empty()) {
      return Status::InvalidArgument(StrFormat(
          "op%d blocks on op%d, which is neither in this schedule nor "
          "materialized by an earlier phase",
          pending.front(), spec_of[pending.front()]->blocking_input));
    }

    // Wire the wave's live pipelined edges: one bounded queue per consumer
    // clone (indexed by clone_idx), fed by every producer clone, rows
    // routed by key hash so each consumer clone sees a deterministic
    // multiset regardless of timing. `out_fanouts[p]` holds one fanout
    // (the consumer's per-clone queues) per consuming edge.
    std::unordered_map<int, std::vector<std::unique_ptr<RowQueue>>> in_queues;
    std::unordered_map<int, std::vector<std::vector<RowQueue*>>> out_fanouts;
    if (pipeline_edges) {
      for (int oid : wave) {
        const ExecOpSpec& spec = *spec_of[oid];
        for (int d : spec.data_inputs) {
          if (wave_set.count(d) == 0) continue;  // materialized earlier
          std::vector<std::unique_ptr<RowQueue>>& qs = in_queues[oid];
          if (qs.empty()) {
            for (size_t k = 0; k < clones_of[oid].size(); ++k) {
              qs.push_back(std::make_unique<RowQueue>());
            }
          }
          const int producers = static_cast<int>(clones_of[d].size());
          std::vector<RowQueue*> fan;
          fan.reserve(qs.size());
          for (const std::unique_ptr<RowQueue>& q : qs) {
            q->AddProducers(producers);
            fan.push_back(q.get());
          }
          out_fanouts[d].push_back(std::move(fan));
        }
      }
    }

    // Prepare per-op state (sized before any task is submitted).
    for (int oid : wave) {
      const ExecOpSpec& spec = *spec_of[oid];
      OpState& st = state_[oid];
      st.kind = spec.kind;
      st.degree = static_cast<int>(clones_of[oid].size());
      st.seed = OpStreamSeed(options_.data_seed, oid);
      st.rows_exec = spec.input_tuples;
      if (options_.max_rows_per_op > 0) {
        st.rows_exec = std::min(st.rows_exec, options_.max_rows_per_op);
      }
      st.dist.skew = options_.skew;
      switch (spec.kind) {
        case OperatorKind::kBuild:
        case OperatorKind::kScan:
        case OperatorKind::kSortRun:
          st.dist.domain = static_cast<uint64_t>(std::max<int64_t>(
              st.rows_exec, 1));
          break;
        case OperatorKind::kAggBuild:
          // ~4 rows per group keeps duplicate handling exercised without
          // collapsing everything into a handful of keys.
          st.dist.domain = static_cast<uint64_t>(std::max<int64_t>(
              st.rows_exec / 4, 1));
          break;
        case OperatorKind::kProbe: {
          // The probe streams over its build's key domain so matches
          // occur at the natural rate.
          const OpState& build = state_[spec.blocking_input];
          if (build.kind != OperatorKind::kBuild) {
            return Status::InvalidArgument(
                StrFormat("op%d probes op%d, which is not a build", oid,
                          spec.blocking_input));
          }
          st.dist = build.dist;
          break;
        }
        case OperatorKind::kSortMerge:
        case OperatorKind::kAggOutput: {
          // Consume materialized state; no stream of their own.
          const OperatorKind want = spec.kind == OperatorKind::kSortMerge
                                        ? OperatorKind::kSortRun
                                        : OperatorKind::kAggBuild;
          if (state_[spec.blocking_input].kind != want) {
            return Status::InvalidArgument(StrFormat(
                "op%d consumes op%d, which materialized the wrong state",
                oid, spec.blocking_input));
          }
          st.dist.domain = 1;
          break;
        }
      }
      switch (spec.kind) {
        case OperatorKind::kBuild:
          st.tables.clear();
          st.tables.resize(static_cast<size_t>(st.degree));
          break;
        case OperatorKind::kAggBuild:
          st.partials.clear();
          st.partials.resize(static_cast<size_t>(st.degree));
          break;
        case OperatorKind::kSortRun:
          st.runs.clear();
          st.runs.resize(static_cast<size_t>(st.degree));
          break;
        case OperatorKind::kAggOutput:
          st.emit_scratch.clear();
          st.emit_scratch.resize(static_cast<size_t>(st.degree));
          break;
        default:
          break;
      }
    }

    // Launch the wave's clones. Clones on a live pipelined edge (either
    // end) run on dedicated threads — a bounded queue plus a fixed-size
    // pool would deadlock when every worker blocks on a full or empty
    // queue — everything else keeps the pool. The streamed bodies mirror
    // the clone primitives' accounting (exec/operators.cc): same rows_in /
    // rows_out meaning, same order-independent digest sums, so results
    // stay byte-identical whether an edge streams or synthesizes.
    std::vector<std::thread> streamed_threads;
    for (int oid : wave) {
      const ExecOpSpec& spec = *spec_of[oid];
      OpState& st = state_[oid];
      OpState* blocking =
          spec.blocking_input >= 0 ? &state_[spec.blocking_input] : nullptr;
      const auto in_it = in_queues.find(oid);
      const auto out_it = out_fanouts.find(oid);
      const bool stream_clone =
          in_it != in_queues.end() || out_it != out_fanouts.end();
      for (int p : clones_of[oid]) {
        const ClonePlacement& placement =
            schedule.placements()[static_cast<size_t>(p)];
        const int k = placement.clone_idx;
        CloneExecution* out = &result.clones[static_cast<size_t>(p)];
        uint64_t* digest = &clone_digest[static_cast<size_t>(p)];
        out->op_id = oid;
        out->clone_idx = k;
        out->site = placement.site;
        out->kind = spec.kind;
        out->row_fraction =
            spec.input_tuples > 0
                ? static_cast<double>(st.rows_exec) /
                      static_cast<double>(spec.input_tuples)
                : 1.0;
        out->virtual_start = placement.start;
        out->virtual_finish =
            result.timeline.clone_finish[static_cast<size_t>(p)];
        if (stream_clone) {
          RowQueue* in_q = in_it != in_queues.end()
                               ? in_it->second[static_cast<size_t>(k)].get()
                               : nullptr;
          const std::vector<std::vector<RowQueue*>>* fans =
              out_it != out_fanouts.end() ? &out_it->second : nullptr;
          streamed_threads.emplace_back([&st, blocking, out, digest, k, meter,
                                         in_q, fans] {
            const double t0 =
                meter == ExecMeter::kThreadCpu ? ThreadCpuMs() : 0;
            OperatorExecStats stats;
            stats.clone = k;
            const auto emit = [fans](const ExecRow& row) {
              if (fans == nullptr) return;
              for (const std::vector<RowQueue*>& fan : *fans) {
                fan[static_cast<size_t>(
                        PartitionOf(row.key, static_cast<int>(fan.size())))]
                    ->Push(row);
              }
            };
            switch (st.kind) {
              case OperatorKind::kScan: {
                for (int64_t i = k; i < st.rows_exec; i += st.degree) {
                  const ExecRow row = SynthesizeRow(
                      st.seed, static_cast<uint64_t>(i), st.dist);
                  ++stats.rows_in;
                  stats.digest += RowDigest(row);
                  emit(row);
                }
                stats.rows_out = stats.rows_in;
                break;
              }
              case OperatorKind::kBuild: {
                // Streamed rows arrive pre-partitioned by key hash —
                // exactly the rows BuildClonePartition would have kept.
                ExecHashTable& table = st.tables[static_cast<size_t>(k)];
                table.Reset(static_cast<size_t>(
                    st.degree > 0 ? st.rows_exec / st.degree : st.rows_exec));
                ExecRow row;
                while (in_q->Pop(&row)) {
                  table.Insert(row.key, row.payload);
                  ++stats.rows_in;
                  stats.digest += RowDigest(row);
                }
                stats.rows_out = stats.rows_in;
                break;
              }
              case OperatorKind::kProbe: {
                const int parts = static_cast<int>(blocking->tables.size());
                const auto probe_row = [&](const ExecRow& row) {
                  ++stats.rows_in;
                  if (parts == 0) return;
                  const ExecHashTable& table =
                      blocking->tables[static_cast<size_t>(
                          PartitionOf(row.key, parts))];
                  table.ForEachMatch(row.key, [&](uint64_t build_payload) {
                    ++stats.rows_out;
                    stats.digest += JoinOutputDigest(row.key, build_payload,
                                                     row.payload);
                    // The joined row passed downstream: key plus a
                    // deterministic combination of both payloads.
                    emit(ExecRow{row.key, build_payload ^ row.payload});
                  });
                };
                if (in_q != nullptr) {
                  ExecRow row;
                  while (in_q->Pop(&row)) probe_row(row);
                } else {
                  for (int64_t i = k; i < st.rows_exec; i += st.degree) {
                    probe_row(SynthesizeRow(st.seed, static_cast<uint64_t>(i),
                                            st.dist));
                  }
                }
                break;
              }
              case OperatorKind::kAggBuild: {
                ExecGroupTable& partial =
                    st.partials[static_cast<size_t>(k)];
                partial.Reset(static_cast<size_t>(
                    st.degree > 0 ? st.rows_exec / st.degree : st.rows_exec));
                ExecRow row;
                while (in_q->Pop(&row)) {
                  partial.Accumulate(row.key, row.payload);
                  ++stats.rows_in;
                }
                stats.rows_out = static_cast<int64_t>(partial.num_groups());
                break;
              }
              case OperatorKind::kAggOutput: {
                // EmitClonePartition inlined so each group streams out as
                // it is emitted.
                ExecGroupTable& scratch =
                    st.emit_scratch[static_cast<size_t>(k)];
                size_t expected = 0;
                for (const ExecGroupTable& p : blocking->partials) {
                  expected += p.num_groups();
                }
                scratch.Reset(st.degree > 0 ? expected /
                                                  static_cast<size_t>(
                                                      st.degree)
                                            : expected);
                for (const ExecGroupTable& p : blocking->partials) {
                  p.ForEachGroup(
                      [&](uint64_t key, uint64_t count, uint64_t sum) {
                        if (PartitionOf(key, st.degree) != k) return;
                        scratch.Merge(key, count, sum);
                        stats.rows_in += static_cast<int64_t>(count);
                      });
                }
                scratch.ForEachGroup(
                    [&](uint64_t key, uint64_t count, uint64_t sum) {
                      ++stats.rows_out;
                      stats.digest += GroupOutputDigest(key, count, sum);
                      emit(ExecRow{key, sum});
                    });
                break;
              }
              case OperatorKind::kSortRun: {
                std::vector<ExecRow>& run = st.runs[static_cast<size_t>(k)];
                run.clear();
                ExecRow row;
                while (in_q->Pop(&row)) run.push_back(row);
                std::sort(run.begin(), run.end(),
                          [](const ExecRow& a, const ExecRow& b) {
                            return a.key < b.key ||
                                   (a.key == b.key && a.payload < b.payload);
                          });
                for (const ExecRow& r : run) stats.digest += RowDigest(r);
                stats.rows_in = static_cast<int64_t>(run.size());
                stats.rows_out = stats.rows_in;
                break;
              }
              case OperatorKind::kSortMerge: {
                std::vector<ExecRow> merged;
                for (const std::vector<ExecRow>& run : blocking->runs) {
                  for (const ExecRow& r : run) {
                    if (PartitionOf(r.key, st.degree) != k) continue;
                    merged.push_back(r);
                  }
                }
                std::sort(merged.begin(), merged.end(),
                          [](const ExecRow& a, const ExecRow& b) {
                            return a.key < b.key ||
                                   (a.key == b.key && a.payload < b.payload);
                          });
                for (const ExecRow& r : merged) {
                  stats.digest += RowDigest(r);
                  emit(r);
                }
                stats.rows_in = static_cast<int64_t>(merged.size());
                stats.rows_out = stats.rows_in;
                break;
              }
            }
            // Close every queue this clone fed, whether or not it pushed.
            if (fans != nullptr) {
              for (const std::vector<RowQueue*>& fan : *fans) {
                for (RowQueue* q : fan) q->ProducerDone();
              }
            }
            out->rows_in = stats.rows_in;
            out->rows_out = stats.rows_out;
            *digest = stats.digest;
            out->measured_ms =
                meter == ExecMeter::kThreadCpu
                    ? ThreadCpuMs() - t0
                    : 1e-3 *
                          static_cast<double>(stats.rows_in + stats.rows_out);
          });
          continue;
        }
        pool()->Submit([&st, blocking, out, digest, k, meter] {
          const double t0 = meter == ExecMeter::kThreadCpu ? ThreadCpuMs() : 0;
          OperatorExecStats stats;
          switch (st.kind) {
            case OperatorKind::kScan: {
              stats.clone = k;
              for (int64_t i = k; i < st.rows_exec; i += st.degree) {
                const ExecRow row =
                    SynthesizeRow(st.seed, static_cast<uint64_t>(i), st.dist);
                ++stats.rows_in;
                stats.digest += RowDigest(row);
              }
              stats.rows_out = stats.rows_in;
              break;
            }
            case OperatorKind::kBuild:
              stats = BuildClonePartition(st.seed, st.rows_exec, st.dist, k,
                                          st.degree,
                                          &st.tables[static_cast<size_t>(k)]);
              break;
            case OperatorKind::kProbe: {
              std::vector<const ExecHashTable*> tables;
              tables.reserve(blocking->tables.size());
              for (const ExecHashTable& t : blocking->tables) {
                tables.push_back(&t);
              }
              stats = ProbeCloneSlice(st.seed, st.rows_exec, st.dist, k,
                                      st.degree, tables, nullptr);
              break;
            }
            case OperatorKind::kAggBuild:
              stats = AccumulateCloneSlice(
                  st.seed, st.rows_exec, st.dist, k, st.degree,
                  &st.partials[static_cast<size_t>(k)]);
              break;
            case OperatorKind::kAggOutput: {
              std::vector<const ExecGroupTable*> partials;
              partials.reserve(blocking->partials.size());
              for (const ExecGroupTable& t : blocking->partials) {
                partials.push_back(&t);
              }
              stats = EmitClonePartition(
                  partials, k, st.degree,
                  &st.emit_scratch[static_cast<size_t>(k)], nullptr);
              break;
            }
            case OperatorKind::kSortRun: {
              stats.clone = k;
              std::vector<ExecRow>& run = st.runs[static_cast<size_t>(k)];
              run.clear();
              for (int64_t i = k; i < st.rows_exec; i += st.degree) {
                run.push_back(
                    SynthesizeRow(st.seed, static_cast<uint64_t>(i), st.dist));
              }
              std::sort(run.begin(), run.end(),
                        [](const ExecRow& a, const ExecRow& b) {
                          return a.key < b.key ||
                                 (a.key == b.key && a.payload < b.payload);
                        });
              for (const ExecRow& row : run) stats.digest += RowDigest(row);
              stats.rows_in = static_cast<int64_t>(run.size());
              stats.rows_out = stats.rows_in;
              break;
            }
            case OperatorKind::kSortMerge: {
              stats.clone = k;
              std::vector<ExecRow> merged;
              for (const std::vector<ExecRow>& run : blocking->runs) {
                for (const ExecRow& row : run) {
                  if (PartitionOf(row.key, st.degree) != k) continue;
                  merged.push_back(row);
                }
              }
              std::sort(merged.begin(), merged.end(),
                        [](const ExecRow& a, const ExecRow& b) {
                          return a.key < b.key ||
                                 (a.key == b.key && a.payload < b.payload);
                        });
              for (const ExecRow& row : merged) stats.digest += RowDigest(row);
              stats.rows_in = static_cast<int64_t>(merged.size());
              stats.rows_out = stats.rows_in;
              break;
            }
          }
          out->rows_in = stats.rows_in;
          out->rows_out = stats.rows_out;
          *digest = stats.digest;
          out->measured_ms =
              meter == ExecMeter::kThreadCpu
                  ? ThreadCpuMs() - t0
                  : 1e-3 * static_cast<double>(stats.rows_in + stats.rows_out);
        });
      }
    }
    pool()->WaitAll();
    for (std::thread& t : streamed_threads) t.join();
    for (int oid : wave) done.insert(oid);
    pending = std::move(rest);
  }

  for (size_t p = 0; p < result.clones.size(); ++p) {
    result.rows_out += result.clones[p].rows_out;
    result.digest += clone_digest[p];
  }
  result.wall_ms = std::chrono::duration<double, std::milli>(
                       std::chrono::steady_clock::now() - wall_start)
                       .count();
  return result;
}

std::string ExplainExecution(const ExecutionResult& result,
                             const MachineConfig& machine, bool wall) {
  std::string out = StrFormat(
      "EXECUTION %s\n  makespan=%.3fms rows_out=%lld digest=%016llx\n",
      machine.ToString().c_str(), result.timeline.makespan,
      static_cast<long long>(result.rows_out),
      static_cast<unsigned long long>(result.digest));
  if (wall) out += StrFormat("  wall=%.3fms\n", result.wall_ms);

  // Clones grouped by site, in placement order (deterministic).
  for (size_t j = 0; j < result.timeline.sites.size(); ++j) {
    const SiteUtilization& site = result.timeline.sites[j];
    bool any = false;
    for (const CloneExecution& c : result.clones) {
      if (c.site == static_cast<int>(j)) {
        any = true;
        break;
      }
    }
    if (!any) continue;
    out += StrFormat("  site %zu: finish=%.3fms busy=%s\n", j, site.finish,
                     site.busy.ToString().c_str());
    for (const CloneExecution& c : result.clones) {
      if (c.site != static_cast<int>(j)) continue;
      out += StrFormat(
          "    op%d/%d %-9s rows=%lld->%lld frac=%.3f measured=%.3f "
          "virt=[%.3f,%.3f]\n",
          c.op_id, c.clone_idx,
          std::string(OperatorKindToString(c.kind)).c_str(),
          static_cast<long long>(c.rows_in),
          static_cast<long long>(c.rows_out), c.row_fraction, c.measured_ms,
          c.virtual_start, c.virtual_finish);
    }
  }
  return out;
}

}  // namespace mrs
