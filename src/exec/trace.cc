#include "exec/trace.h"

#include <atomic>
#include <memory>

#include "common/str_util.h"

namespace mrs {

const std::string* TraceSpan::FindAttr(const std::string& key) const {
  for (const auto& [k, v] : attrs) {
    if (k == key) return &v;
  }
  return nullptr;
}

std::string TraceSpan::ToString() const {
  std::string out = name;
  if (phase >= 0) out += StrFormat("[phase %d]", phase);
  out += StrFormat(" %.3f..%.3fms", start_ms, end_ms);
  if (!attrs.empty()) {
    out += " {";
    for (size_t i = 0; i < attrs.size(); ++i) {
      if (i > 0) out += ", ";
      out += attrs[i].first + "=" + attrs[i].second;
    }
    out += "}";
  }
  return out;
}

SpanTimer::SpanTimer(TraceSink* sink, const char* name, int phase)
    : sink_(sink) {
  if (sink_ == nullptr) return;
  span_.name = name;
  span_.phase = phase;
  span_.start_ms = sink_->NowMs();
}

SpanTimer::~SpanTimer() { End(); }

void SpanTimer::Attr(const std::string& key, std::string value) {
  if (sink_ == nullptr || ended_) return;
  span_.attrs.emplace_back(key, std::move(value));
}

void SpanTimer::AttrDouble(const std::string& key, double value) {
  if (sink_ == nullptr || ended_) return;
  span_.attrs.emplace_back(key, StrFormat("%.6g", value));
}

void SpanTimer::AttrInt(const std::string& key, int64_t value) {
  if (sink_ == nullptr || ended_) return;
  span_.attrs.emplace_back(key, StrFormat("%lld", static_cast<long long>(value)));
}

void SpanTimer::End() {
  if (sink_ == nullptr || ended_) return;
  ended_ = true;
  span_.end_ms = sink_->NowMs();
  sink_->AddSpan(std::move(span_));
}

ScheduleTrace::ScheduleTrace() {
  const auto origin = std::chrono::steady_clock::now();
  clock_ = [origin] {
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - origin)
        .count();
  };
}

ScheduleTrace::ScheduleTrace(ClockFn clock) : clock_(std::move(clock)) {}

double ScheduleTrace::NowMs() { return clock_(); }

void ScheduleTrace::AddSpan(TraceSpan span) {
  std::lock_guard<std::mutex> lock(mu_);
  spans_.push_back(std::move(span));
}

std::vector<TraceSpan> ScheduleTrace::spans() const {
  std::lock_guard<std::mutex> lock(mu_);
  return spans_;
}

bool ScheduleTrace::FindSpan(const std::string& name, TraceSpan* out) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const TraceSpan& span : spans_) {
    if (span.name == name) {
      if (out != nullptr) *out = span;
      return true;
    }
  }
  return false;
}

std::string ScheduleTrace::ToString() const {
  std::string out =
      label_.empty() ? "trace:\n" : StrFormat("trace %s:\n", label_.c_str());
  for (const TraceSpan& span : spans()) {
    out += "  " + span.ToString() + "\n";
  }
  return out;
}

ScheduleTrace::ClockFn ScheduleTrace::CountingClock() {
  auto ticks = std::make_shared<std::atomic<int64_t>>(0);
  return [ticks] {
    return static_cast<double>(ticks->fetch_add(1, std::memory_order_relaxed));
  };
}

}  // namespace mrs
