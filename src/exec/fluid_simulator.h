#ifndef MRS_EXEC_FLUID_SIMULATOR_H_
#define MRS_EXEC_FLUID_SIMULATOR_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "core/schedule.h"
#include "core/tree_schedule.h"
#include "resource/usage_model.h"

namespace mrs {

/// How a site's preemptable resources are time-shared among clones.
enum class SharingPolicy {
  /// The model-optimal "squeeze" discipline behind eq. (2): every clone is
  /// stretched so all co-scheduled clones finish together at the earliest
  /// feasible instant — a clone never runs faster than its stand-alone
  /// T_seq, and no resource is oversubscribed. With this policy the
  /// simulated site time *operationally realizes* eq. (2).
  kOptimalStretch,
  /// Naive round-robin time slicing: all active clones slow down by the
  /// same factor, the peak resource oversubscription. Finishing clones
  /// release capacity event by event. Pessimistic; exists to quantify how
  /// much the paper's model assumes of the execution engine.
  kUniformSlowdown,
};

/// Utilization of one site over one simulated phase.
struct SiteUtilization {
  /// Busy time per resource dimension (integral of consumption rate).
  WorkVector busy;
  /// Completion time of the site's last clone (0 if the site idles).
  double finish = 0.0;
};

/// Result of simulating one phase (one Schedule).
struct PhaseSimulation {
  double makespan = 0.0;
  std::vector<SiteUtilization> sites;
  /// Completion time of every clone, parallel to Schedule::placements().
  std::vector<double> clone_finish;
};

/// Result of simulating a full phased (TREESCHEDULE-style) execution.
struct SimulationResult {
  std::vector<PhaseSimulation> phases;
  double response_time = 0.0;
  /// Machine-wide average utilization per resource dimension in [0, 1]:
  /// busy site-milliseconds over P * response_time.
  WorkVector average_utilization;

  std::string ToString() const;
};

/// Event-driven fluid simulator for the paper's multi-dimensional
/// preemptable-resource sites. Each clone is a fluid job demanding
/// capacity on every resource simultaneously, in proportion to its work
/// vector (assumption A3: uniform usage over its lifetime); sites have
/// unit capacity per resource and zero time-sharing overhead (A2).
///
/// This is the operational counterpart of the analytic cost model: under
/// SharingPolicy::kOptimalStretch the simulated phase makespan equals the
/// eq. (3) value reported by Schedule::Makespan() (tests assert equality
/// to floating-point tolerance), while kUniformSlowdown shows the price of
/// a naive engine.
class FluidSimulator {
 public:
  explicit FluidSimulator(const OverlapUsageModel& usage,
                          SharingPolicy policy = SharingPolicy::kOptimalStretch)
      : usage_(usage), policy_(policy) {}

  /// Simulates one phase: all clones of `schedule` start at time 0 on
  /// their sites. Historical phase-aligned entry point — per-clone start
  /// times are ignored (see SimulateTimed for schedules that stagger
  /// them).
  Result<PhaseSimulation> SimulatePhase(const Schedule& schedule) const;

  /// Simulates one schedule honoring per-clone start times
  /// (ClonePlacement::start, as produced by LISTSCHEDULE via
  /// Schedule::PlaceAt): a clone joins its site's resident set at its
  /// start instant and the sharing policy is applied to the time-varying
  /// set. For an aligned schedule (every start 0) this reproduces
  /// SimulatePhase exactly; under kOptimalStretch the per-site finish
  /// matches Schedule::SiteFinish to floating-point precision.
  Result<PhaseSimulation> SimulateTimed(const Schedule& schedule) const;

  /// Simulates a phased plan execution: phases run back to back with a
  /// synchronization barrier between them.
  Result<SimulationResult> Simulate(const TreeScheduleResult& plan) const;

 private:
  const OverlapUsageModel& usage_;
  SharingPolicy policy_;
};

}  // namespace mrs

#endif  // MRS_EXEC_FLUID_SIMULATOR_H_
