#ifndef MRS_EXEC_EXEC_BACKEND_H_
#define MRS_EXEC_EXEC_BACKEND_H_

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "core/schedule.h"
#include "core/tree_schedule.h"
#include "exec/fluid_simulator.h"
#include "plan/operator_tree.h"
#include "resource/usage_model.h"

namespace mrs {

/// The two ways a Schedule can be "run" behind one interface:
///
///  * SimulateBackend — the fluid simulator: clones are fluid jobs
///    consuming their predicted work vectors; site times come out of the
///    model itself (exec/fluid_simulator.h).
///  * ExecuteBackend — real execution: clones are actual partitioned
///    hash-join / group-by / sort / scan fragments running on a thread
///    pool over generated data (exec/execute_backend.h), with measured
///    per-clone CPU time alongside the model-time virtual timeline.
///
/// Both return the same ExecutionResult shape, so the differential tests
/// and the calibrator (exec/calibrate.h) can hold one against the other.

/// What a backend needs to know about an operator beyond its placement:
/// its kind, its modeled input cardinality, and the blocking producer
/// whose materialized state it consumes (probe -> build, sort merge ->
/// sort run, aggregate output -> aggregate build; -1 for none).
struct ExecOpSpec {
  int op_id = -1;
  OperatorKind kind = OperatorKind::kScan;
  int64_t input_tuples = 0;
  int blocking_input = -1;
  /// Producers feeding this operator through *pipelined* edges (a probe's
  /// outer stream, the stream below a build / sort run / aggregate
  /// build); empty for scans. Only consulted when
  /// ExecuteOptions::pipeline_edges is on.
  std::vector<int> data_inputs;
};

/// Specs for every operator of `tree`, indexed by operator id.
std::vector<ExecOpSpec> ExecOpSpecsFromTree(const OperatorTree& tree);

/// How ExecuteBackend measures per-clone execution time.
enum class ExecMeter {
  /// CLOCK_THREAD_CPUTIME_ID around the clone body: real CPU
  /// milliseconds. The honest meter for calibration runs.
  kThreadCpu,
  /// rows-processed pseudo-milliseconds (1e-3 * (rows_in + rows_out)):
  /// byte-identical on every machine and run. The meter behind golden
  /// files and deterministic tests.
  kDeterministic,
};

/// Knobs of a real-execution replay.
struct ExecuteOptions {
  /// Root seed of every generated input stream (streams are per-operator:
  /// stream seed = mix(data_seed, op_id)).
  uint64_t data_seed = 1;
  /// Key skew of every stream, in [0, 1) (workload/exec_data.h).
  double skew = 0.0;
  /// Per-operator cap on executed rows. Modeled cardinalities routinely
  /// reach millions of tuples; the replay executes
  /// min(input_tuples, max_rows_per_op) rows and reports the ratio as
  /// CloneExecution::row_fraction so the calibrator can scale predicted
  /// work down to what actually ran. <= 0 means uncapped.
  int64_t max_rows_per_op = 8192;
  ExecMeter meter = ExecMeter::kThreadCpu;
  /// Worker threads of the replay pool; 0 = ThreadPool::DefaultThreads().
  int threads = 0;
  /// Replay pipelined edges (ROADMAP item-5 remnant): when on, an
  /// operator whose pipelined producer executes in the same wave consumes
  /// the producer's actual output rows through bounded in-memory queues —
  /// producer and consumer clones run concurrently on dedicated threads —
  /// instead of synthesizing its own stream, and the wave partition
  /// itself keeps a consumer in its live producer's wave. Off by default:
  /// the classic replay (and its goldens) reads per-operator generated
  /// streams and moves data only across blocking edges. Digests stay
  /// order-independent and rows are routed by key hash, so results remain
  /// byte-identical across thread counts either way.
  bool pipeline_edges = false;
};

/// One clone's execution record, parallel to Schedule::placements().
struct CloneExecution {
  int op_id = -1;
  int clone_idx = 0;
  int site = -1;
  OperatorKind kind = OperatorKind::kScan;
  int64_t rows_in = 0;
  int64_t rows_out = 0;
  /// Per-clone measured time (ExecMeter units). SimulateBackend reports
  /// the model's own T_seq here — simulating *is* its measurement.
  double measured_ms = 0.0;
  /// Executed over modeled input rows (1 when the row cap did not bind).
  double row_fraction = 1.0;
  /// Model-time interval on the virtual timeline (optimal-stretch fluid
  /// discipline over the predicted work vectors).
  double virtual_start = 0.0;
  double virtual_finish = 0.0;
};

/// What running one Schedule produced.
struct ExecutionResult {
  /// The model-time timeline: per-site busy vectors and finish times plus
  /// per-clone completion, directly comparable to
  /// FluidSimulator::SimulateTimed (the execution differential tests pin
  /// the two against each other within tolerance).
  PhaseSimulation timeline;
  /// Per-clone records, parallel to Schedule::placements().
  std::vector<CloneExecution> clones;
  /// Total rows emitted across all clones (wrapping) and the
  /// order-independent digest of everything they produced — byte-identical
  /// across thread counts for a fixed seed.
  int64_t rows_out = 0;
  uint64_t digest = 0;
  /// Real elapsed wall time of the replay (0 for SimulateBackend).
  double wall_ms = 0.0;
};

/// Common interface over simulate / execute.
class ExecBackend {
 public:
  virtual ~ExecBackend() = default;

  virtual std::string_view name() const = 0;

  /// Runs one schedule, honoring per-clone start times. Stateful across
  /// calls: materialized operator state (hash tables, sorted runs, group
  /// partials) survives so a probe scheduled in a later phase finds the
  /// tables its build left behind. Call Reset between unrelated queries.
  virtual Result<ExecutionResult> Run(const Schedule& schedule,
                                      const std::vector<ExecOpSpec>& specs) = 0;

  /// Drops all cross-phase state.
  virtual void Reset() {}

  /// Runs a phased TREESCHEDULE plan: phases back to back through Run (so
  /// probes find their builds' state), one ExecutionResult per phase.
  Result<std::vector<ExecutionResult>> RunTree(
      const TreeScheduleResult& plan, const std::vector<ExecOpSpec>& specs);
};

/// The fluid simulator behind the backend interface. Owns its usage-model
/// copy; Run forwards to FluidSimulator::SimulateTimed and reports each
/// clone's T_seq as its "measured" time.
class SimulateBackend : public ExecBackend {
 public:
  explicit SimulateBackend(
      const OverlapUsageModel& usage,
      SharingPolicy policy = SharingPolicy::kOptimalStretch);

  std::string_view name() const override { return "simulate"; }

  Result<ExecutionResult> Run(const Schedule& schedule,
                              const std::vector<ExecOpSpec>& specs) override;

 private:
  OverlapUsageModel usage_;
  FluidSimulator simulator_;
};

/// Factory over the backend modes: `mode` is "simulate" or "execute".
/// `usage` parameterizes the simulator (and the execute backend's virtual
/// timeline is usage-independent: optimal stretch over (T_seq, W) as
/// placed). `exec_options` applies to the execute mode only.
Result<std::unique_ptr<ExecBackend>> MakeExecBackend(
    const std::string& mode, const OverlapUsageModel& usage,
    const ExecuteOptions& exec_options = {});

}  // namespace mrs

#endif  // MRS_EXEC_EXEC_BACKEND_H_
