#ifndef MRS_COMMON_STR_UTIL_H_
#define MRS_COMMON_STR_UTIL_H_

#include <string>
#include <vector>

namespace mrs {

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

/// Joins `parts` with `sep`.
std::string StrJoin(const std::vector<std::string>& parts,
                    const std::string& sep);

/// Formats a duration given in milliseconds with an adaptive unit
/// ("873 us", "12.3 ms", "4.56 s", "2.1 min").
std::string FormatMillis(double ms);

/// Formats a byte count with an adaptive unit ("512 B", "12.5 KB", ...).
std::string FormatBytes(double bytes);

/// Fixed-precision double ("%.*f") without trailing-zero trimming.
std::string FormatDouble(double v, int precision = 3);

}  // namespace mrs

#endif  // MRS_COMMON_STR_UTIL_H_
