#ifndef MRS_COMMON_LOGGING_H_
#define MRS_COMMON_LOGGING_H_

#include <sstream>
#include <string>

namespace mrs {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3, kFatal = 4 };

namespace internal_logging {

/// Stream-style log sink. Message is emitted (and the process aborted for
/// kFatal) when the temporary is destroyed at the end of the statement.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

/// Swallows the streamed expression when a log statement is compiled out.
class NullStream {
 public:
  template <typename T>
  NullStream& operator<<(const T&) {
    return *this;
  }
};

}  // namespace internal_logging

/// Minimum level that is actually emitted; defaults to kWarning so library
/// consumers see problems but not chatter. Not thread-safe by design: the
/// scheduler is a single-threaded compile-time component.
void SetLogThreshold(LogLevel level);
LogLevel GetLogThreshold();

}  // namespace mrs

#define MRS_LOG(level)                                                     \
  ::mrs::internal_logging::LogMessage(::mrs::LogLevel::k##level, __FILE__, \
                                      __LINE__)

/// Always-on invariant check; logs expression and aborts on failure.
#define MRS_CHECK(cond)                                              \
  if (cond) {                                                        \
  } else                                                             \
    MRS_LOG(Fatal) << "Check failed: " #cond " "

#define MRS_CHECK_OK(expr)                                           \
  do {                                                               \
    ::mrs::Status _mrs_check_status = (expr);                        \
    if (!_mrs_check_status.ok()) {                                   \
      MRS_LOG(Fatal) << "Check failed (status): "                    \
                     << _mrs_check_status.ToString();                \
    }                                                                \
  } while (false)

#define MRS_DCHECK(cond) MRS_CHECK(cond)

#endif  // MRS_COMMON_LOGGING_H_
