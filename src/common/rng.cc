#include "common/rng.h"

#include <cmath>

#include "common/logging.h"

namespace mrs {

namespace {

// SplitMix64, used to expand the user seed into xoshiro state.
uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(&sm);
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  MRS_CHECK(lo <= hi) << "UniformInt requires lo <= hi, got [" << lo << ", "
                      << hi << "]";
  const uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  if (span == 0) {
    // Full 64-bit range.
    return static_cast<int64_t>(Next());
  }
  // Rejection sampling to avoid modulo bias.
  const uint64_t limit = UINT64_MAX - (UINT64_MAX % span + 1) % span;
  uint64_t x;
  do {
    x = Next();
  } while (x > limit);
  return lo + static_cast<int64_t>(x % span);
}

double Rng::UniformDouble() {
  // 53 random bits into [0,1).
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

double Rng::UniformDouble(double lo, double hi) {
  MRS_CHECK(lo < hi) << "UniformDouble requires lo < hi";
  return lo + (hi - lo) * UniformDouble();
}

double Rng::LogUniform(double lo, double hi) {
  MRS_CHECK(lo > 0 && lo <= hi) << "LogUniform requires 0 < lo <= hi";
  if (lo == hi) return lo;
  return std::exp(UniformDouble(std::log(lo), std::log(hi)));
}

bool Rng::Bernoulli(double p) {
  if (p <= 0) return false;
  if (p >= 1) return true;
  return UniformDouble() < p;
}

size_t Rng::Index(size_t n) {
  MRS_CHECK(n > 0) << "Index requires n > 0";
  return static_cast<size_t>(
      UniformInt(0, static_cast<int64_t>(n) - 1));
}

Rng Rng::Fork() { return Rng(Next()); }

}  // namespace mrs
