#ifndef MRS_COMMON_RNG_H_
#define MRS_COMMON_RNG_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace mrs {

/// Deterministic pseudo-random number generator (xoshiro256**), seeded
/// explicitly so every experiment in the repository is reproducible from a
/// seed recorded in its output. Not a std-style engine on purpose: the
/// distribution helpers below are part of the reproducibility contract
/// (libstdc++'s std::uniform_int_distribution is not portable across
/// implementations).
class Rng {
 public:
  /// Seeds the generator; any 64-bit value (including 0) is acceptable.
  explicit Rng(uint64_t seed);

  /// Next raw 64 random bits.
  uint64_t Next();

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double UniformDouble();

  /// Uniform double in [lo, hi). Requires lo < hi.
  double UniformDouble(double lo, double hi);

  /// Log-uniform double: exp of a uniform sample in [ln lo, ln hi].
  /// Requires 0 < lo <= hi.
  double LogUniform(double lo, double hi);

  /// True with probability p (clamped to [0,1]).
  bool Bernoulli(double p);

  /// Uniformly selects an index in [0, n). Requires n > 0.
  size_t Index(size_t n);

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    if (v->empty()) return;
    for (size_t i = v->size() - 1; i > 0; --i) {
      size_t j = Index(i + 1);
      std::swap((*v)[i], (*v)[j]);
    }
  }

  /// Derives an independent child generator; used to give each experiment
  /// repetition its own stream so adding repetitions does not perturb
  /// earlier ones.
  Rng Fork();

 private:
  uint64_t s_[4];
};

}  // namespace mrs

#endif  // MRS_COMMON_RNG_H_
