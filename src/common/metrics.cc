#include "common/metrics.h"

#include <algorithm>
#include <cmath>

#include "common/str_util.h"

namespace mrs {

namespace {

/// Relaxed CAS add for pre-C++20-toolchain portability of atomic doubles.
void AtomicAdd(std::atomic<double>* target, double delta) {
  double cur = target->load(std::memory_order_relaxed);
  while (!target->compare_exchange_weak(cur, cur + delta,
                                        std::memory_order_relaxed)) {
  }
}

void AtomicMin(std::atomic<double>* target, double value) {
  double cur = target->load(std::memory_order_relaxed);
  while (value < cur && !target->compare_exchange_weak(
                            cur, value, std::memory_order_relaxed)) {
  }
}

void AtomicMax(std::atomic<double>* target, double value) {
  double cur = target->load(std::memory_order_relaxed);
  while (value > cur && !target->compare_exchange_weak(
                            cur, value, std::memory_order_relaxed)) {
  }
}

}  // namespace

double HitMissCounter::HitRate() const {
  const uint64_t h = hits();
  const uint64_t total = h + misses();
  if (total == 0) return 0.0;
  return static_cast<double>(h) / static_cast<double>(total);
}

std::string HitMissCounter::ToString() const {
  return StrFormat("hits=%llu misses=%llu (%.1f%%)",
                   static_cast<unsigned long long>(hits()),
                   static_cast<unsigned long long>(misses()),
                   100.0 * HitRate());
}

double Histogram::BucketUpperBound(size_t i) {
  return 0.001 * std::ldexp(1.0, static_cast<int>(i));  // 0.001 * 2^i ms
}

void Histogram::Record(double value_ms) {
  if (!(value_ms >= 0.0)) value_ms = 0.0;  // negatives and NaN clamp to 0
  size_t bucket = kNumBounds;  // overflow by default
  for (size_t i = 0; i < kNumBounds; ++i) {
    if (value_ms <= BucketUpperBound(i)) {
      bucket = i;
      break;
    }
  }
  buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  AtomicAdd(&sum_, value_ms);
  AtomicMin(&min_, value_ms);
  AtomicMax(&max_, value_ms);
}

double Histogram::min() const {
  return count() == 0 ? 0.0 : min_.load(std::memory_order_relaxed);
}

double Histogram::max() const {
  return count() == 0 ? 0.0 : max_.load(std::memory_order_relaxed);
}

double Histogram::mean() const {
  const uint64_t n = count();
  return n == 0 ? 0.0 : sum() / static_cast<double>(n);
}

double Histogram::ValueAtPercentile(double q) const {
  const uint64_t n = count();
  if (n == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  // Rank of the target observation (1-based, nearest-rank with a floor of
  // 1), then linear interpolation inside the covering bucket.
  const double rank = std::max(1.0, q * static_cast<double>(n));
  uint64_t seen = 0;
  for (size_t i = 0; i <= kNumBounds; ++i) {
    const uint64_t in_bucket = buckets_[i].load(std::memory_order_relaxed);
    if (in_bucket == 0) continue;
    if (static_cast<double>(seen + in_bucket) >= rank) {
      const double lo = i == 0 ? 0.0 : BucketUpperBound(i - 1);
      const double hi = i == kNumBounds ? max() : BucketUpperBound(i);
      const double frac =
          (rank - static_cast<double>(seen)) / static_cast<double>(in_bucket);
      const double v = lo + (hi - lo) * std::clamp(frac, 0.0, 1.0);
      return std::clamp(v, min(), max());
    }
    seen += in_bucket;
  }
  return max();
}

void Histogram::Reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
  min_.store(std::numeric_limits<double>::infinity(),
             std::memory_order_relaxed);
  max_.store(-std::numeric_limits<double>::infinity(),
             std::memory_order_relaxed);
}

uint64_t MetricsSnapshot::CounterValue(const std::string& name) const {
  for (const auto& [n, v] : counters) {
    if (n == name) return v;
  }
  return 0;
}

std::string MetricsSnapshot::ToJson() const {
  std::string out = "{\"counters\":{";
  for (size_t i = 0; i < counters.size(); ++i) {
    if (i > 0) out += ",";
    out += StrFormat("\"%s\":%llu", counters[i].first.c_str(),
                     static_cast<unsigned long long>(counters[i].second));
  }
  out += "},\"gauges\":{";
  for (size_t i = 0; i < gauges.size(); ++i) {
    if (i > 0) out += ",";
    out += StrFormat("\"%s\":%.6f", gauges[i].first.c_str(),
                     gauges[i].second);
  }
  out += "},\"histograms\":{";
  for (size_t i = 0; i < histograms.size(); ++i) {
    if (i > 0) out += ",";
    const HistogramSnapshot& h = histograms[i];
    out += StrFormat(
        "\"%s\":{\"count\":%llu,\"sum\":%.6f,\"min\":%.6f,\"max\":%.6f,"
        "\"p50\":%.6f,\"p95\":%.6f,\"p99\":%.6f}",
        h.name.c_str(), static_cast<unsigned long long>(h.count), h.sum,
        h.min, h.max, h.p50, h.p95, h.p99);
  }
  out += "}}";
  return out;
}

std::string MetricsSnapshot::ToString() const {
  std::string out = "metrics:\n";
  for (const auto& [name, v] : counters) {
    out += StrFormat("  counter   %-32s %llu\n", name.c_str(),
                     static_cast<unsigned long long>(v));
  }
  for (const auto& [name, v] : gauges) {
    out += StrFormat("  gauge     %-32s %.3f\n", name.c_str(), v);
  }
  for (const HistogramSnapshot& h : histograms) {
    out += StrFormat(
        "  histogram %-32s count=%llu mean=%s p50=%s p95=%s p99=%s max=%s\n",
        h.name.c_str(), static_cast<unsigned long long>(h.count),
        FormatMillis(h.count == 0 ? 0.0
                                  : h.sum / static_cast<double>(h.count))
            .c_str(),
        FormatMillis(h.p50).c_str(), FormatMillis(h.p95).c_str(),
        FormatMillis(h.p99).c_str(), FormatMillis(h.max).c_str());
  }
  return out;
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* global = new MetricsRegistry();  // never destroyed
  return *global;
}

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return slot.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>();
  return slot.get();
}

MetricsRegistry::CallbackHandle::CallbackHandle(CallbackHandle&& other) noexcept
    : registry_(other.registry_), id_(other.id_) {
  other.registry_ = nullptr;
  other.id_ = 0;
}

MetricsRegistry::CallbackHandle& MetricsRegistry::CallbackHandle::operator=(
    CallbackHandle&& other) noexcept {
  if (this != &other) {
    Release();
    registry_ = other.registry_;
    id_ = other.id_;
    other.registry_ = nullptr;
    other.id_ = 0;
  }
  return *this;
}

MetricsRegistry::CallbackHandle::~CallbackHandle() { Release(); }

void MetricsRegistry::CallbackHandle::Release() {
  if (registry_ != nullptr) {
    registry_->UnregisterCallback(id_);
    registry_ = nullptr;
    id_ = 0;
  }
}

MetricsRegistry::CallbackHandle MetricsRegistry::RegisterCounterCallback(
    std::string name, std::function<uint64_t()> fn) {
  std::lock_guard<std::mutex> lock(mu_);
  const uint64_t id = next_callback_id_++;
  callbacks_.push_back({id, std::move(name), std::move(fn)});
  return CallbackHandle(this, id);
}

void MetricsRegistry::UnregisterCallback(uint64_t id) {
  std::lock_guard<std::mutex> lock(mu_);
  for (size_t i = 0; i < callbacks_.size(); ++i) {
    if (callbacks_[i].id == id) {
      callbacks_.erase(callbacks_.begin() + static_cast<ptrdiff_t>(i));
      return;
    }
  }
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  MetricsSnapshot snap;
  // std::map iteration is name-sorted; callback values merge into the
  // counter map (summing with owned counters and same-name callbacks).
  std::map<std::string, uint64_t> counters;
  for (const auto& [name, counter] : counters_) {
    counters[name] += counter->value();
  }
  for (const CallbackEntry& cb : callbacks_) {
    counters[cb.name] += cb.fn();
  }
  snap.counters.assign(counters.begin(), counters.end());
  for (const auto& [name, gauge] : gauges_) {
    snap.gauges.emplace_back(name, gauge->value());
  }
  for (const auto& [name, histogram] : histograms_) {
    HistogramSnapshot h;
    h.name = name;
    h.count = histogram->count();
    h.sum = histogram->sum();
    h.min = histogram->min();
    h.max = histogram->max();
    h.p50 = histogram->ValueAtPercentile(0.50);
    h.p95 = histogram->ValueAtPercentile(0.95);
    h.p99 = histogram->ValueAtPercentile(0.99);
    snap.histograms.push_back(std::move(h));
  }
  return snap;
}

void MetricsRegistry::ResetAll() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, counter] : counters_) counter->Reset();
  for (auto& [name, gauge] : gauges_) gauge->Reset();
  for (auto& [name, histogram] : histograms_) histogram->Reset();
}

}  // namespace mrs
