#include "common/thread_pool.h"

#include <algorithm>

#include "common/logging.h"

namespace mrs {

ThreadPool::ThreadPool(int num_threads) {
  const size_t n = static_cast<size_t>(std::max(num_threads, 1));
  shards_.reserve(n);
  for (size_t i = 0; i < n; ++i) shards_.push_back(std::make_unique<Shard>());
  workers_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

ThreadPool::~ThreadPool() {
  stopping_.store(true, std::memory_order_release);
  for (auto& shard : shards_) {
    // Lock/unlock pairs with the worker's wait so the stop flag cannot be
    // missed between its predicate check and its sleep.
    std::lock_guard<std::mutex> lock(shard->mu);
    shard->cv.notify_all();
  }
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  MRS_CHECK(task != nullptr) << "Submit requires a callable task";
  MRS_CHECK(!stopping_.load(std::memory_order_acquire))
      << "Submit on a destroyed ThreadPool";
  pending_.fetch_add(1, std::memory_order_acq_rel);
  Shard& shard = *shards_[next_shard_.fetch_add(1, std::memory_order_relaxed) %
                          shards_.size()];
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    shard.tasks.push_back(std::move(task));
  }
  shard.cv.notify_one();
}

void ThreadPool::WaitAll() {
  std::unique_lock<std::mutex> lock(done_mu_);
  done_cv_.wait(lock, [this] {
    return pending_.load(std::memory_order_acquire) == 0;
  });
  if (first_error_) {
    std::exception_ptr error = first_error_;
    first_error_ = nullptr;
    std::rethrow_exception(error);
  }
}

int ThreadPool::DefaultThreads() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

void ThreadPool::WorkerLoop(size_t shard_index) {
  Shard& shard = *shards_[shard_index];
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(shard.mu);
      shard.cv.wait(lock, [&] {
        return !shard.tasks.empty() ||
               stopping_.load(std::memory_order_acquire);
      });
      if (shard.tasks.empty()) return;  // stopping and drained
      task = std::move(shard.tasks.front());
      shard.tasks.pop_front();
    }
    try {
      task();
    } catch (...) {
      std::lock_guard<std::mutex> lock(done_mu_);
      if (!first_error_) first_error_ = std::current_exception();
    }
    completed_.fetch_add(1, std::memory_order_relaxed);
    if (pending_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      // Empty critical section: a WaitAll-er between its predicate check
      // and its sleep holds done_mu_, so locking here prevents the notify
      // from slipping into that window and being lost.
      { std::lock_guard<std::mutex> lock(done_mu_); }
      done_cv_.notify_all();
    }
  }
}

}  // namespace mrs
