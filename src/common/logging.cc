#include "common/logging.h"

#include <cstdio>
#include <cstdlib>

namespace mrs {

namespace {
LogLevel g_threshold = LogLevel::kWarning;

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kFatal:
      return "FATAL";
  }
  return "?";
}
}  // namespace

void SetLogThreshold(LogLevel level) { g_threshold = level; }
LogLevel GetLogThreshold() { return g_threshold; }

namespace internal_logging {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  stream_ << "[" << LevelName(level) << " " << file << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  if (level_ >= g_threshold || level_ == LogLevel::kFatal) {
    std::fprintf(stderr, "%s\n", stream_.str().c_str());
  }
  if (level_ == LogLevel::kFatal) {
    std::abort();
  }
}

}  // namespace internal_logging
}  // namespace mrs
