#include "common/table_printer.h"

#include <algorithm>

#include "common/str_util.h"

namespace mrs {

void TablePrinter::SetHeader(std::vector<std::string> header) {
  header_ = std::move(header);
}

void TablePrinter::AddRow(std::vector<std::string> row) {
  row.resize(header_.size());
  rows_.push_back(std::move(row));
}

void TablePrinter::AddNumericRow(const std::vector<double>& row,
                                 int precision) {
  std::vector<std::string> cells;
  cells.reserve(row.size());
  for (double v : row) cells.push_back(FormatDouble(v, precision));
  AddRow(std::move(cells));
}

void TablePrinter::Print(std::FILE* out) const {
  std::vector<size_t> width(header_.size(), 0);
  for (size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  if (!title_.empty()) std::fprintf(out, "%s\n", title_.c_str());
  auto print_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < header_.size(); ++c) {
      std::fprintf(out, "%*s%s", static_cast<int>(width[c]),
                   c < row.size() ? row[c].c_str() : "",
                   c + 1 == header_.size() ? "\n" : "  ");
    }
  };
  print_row(header_);
  size_t total = 0;
  for (size_t c = 0; c < header_.size(); ++c) total += width[c] + 2;
  std::string rule(total > 2 ? total - 2 : 0, '-');
  std::fprintf(out, "%s\n", rule.c_str());
  for (const auto& row : rows_) print_row(row);
  std::fflush(out);
}

std::string TablePrinter::ToCsv() const {
  std::string out = StrJoin(header_, ",") + "\n";
  for (const auto& row : rows_) out += StrJoin(row, ",") + "\n";
  return out;
}

}  // namespace mrs
