#ifndef MRS_COMMON_STATUS_H_
#define MRS_COMMON_STATUS_H_

#include <string>
#include <string_view>
#include <utility>

namespace mrs {

/// Error category for a failed operation. The set is deliberately small:
/// scheduling is a compile-time activity and most failures are caller
/// mistakes (invalid arguments) or model violations detected by validators.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kFailedPrecondition,
  kNotFound,
  kOutOfRange,
  kUnimplemented,
  kInternal,
  /// The service cannot take the request right now (admission queue full,
  /// memory budget exhausted, server draining). Retrying later may succeed.
  kUnavailable,
  /// The request's deadline expired before it could be served (online
  /// admission queue wait exceeded the per-request timeout).
  kDeadlineExceeded,
};

/// Returns a human-readable name for `code` (e.g. "InvalidArgument").
std::string_view StatusCodeToString(StatusCode code);

/// A success-or-error value, modeled after the Status idiom used by
/// Arrow/RocksDB/Abseil. The library does not throw exceptions across its
/// public API; fallible operations return `Status` or `Result<T>`.
///
/// A default-constructed Status is OK and carries no message.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  /// Factory helpers, one per error category.
  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<Code>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

}  // namespace mrs

/// Propagates a non-OK Status to the caller. `expr` must evaluate to Status.
#define MRS_RETURN_IF_ERROR(expr)                \
  do {                                           \
    ::mrs::Status _mrs_status = (expr);          \
    if (!_mrs_status.ok()) return _mrs_status;   \
  } while (false)

#endif  // MRS_COMMON_STATUS_H_
