#include "common/stats.h"

#include <algorithm>
#include <cmath>

namespace mrs {

void RunningStat::Add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

void RunningStat::Merge(const RunningStat& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double n1 = static_cast<double>(count_);
  const double n2 = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double n = n1 + n2;
  mean_ += delta * n2 / n;
  m2_ += other.m2_ + delta * delta * n1 * n2 / n;
  count_ += other.count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double RunningStat::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStat::stddev() const { return std::sqrt(variance()); }

double Percentile(std::vector<double> samples, double q) {
  if (samples.empty()) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  std::sort(samples.begin(), samples.end());
  const double pos = q * static_cast<double>(samples.size() - 1);
  const size_t lo = static_cast<size_t>(pos);
  const size_t hi = std::min(lo + 1, samples.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return samples[lo] * (1.0 - frac) + samples[hi] * frac;
}

double GeometricMean(const std::vector<double>& samples) {
  double log_sum = 0.0;
  size_t n = 0;
  for (double s : samples) {
    if (s > 0) {
      log_sum += std::log(s);
      ++n;
    }
  }
  if (n == 0) return 0.0;
  return std::exp(log_sum / static_cast<double>(n));
}

}  // namespace mrs
