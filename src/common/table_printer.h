#ifndef MRS_COMMON_TABLE_PRINTER_H_
#define MRS_COMMON_TABLE_PRINTER_H_

#include <cstdio>
#include <string>
#include <vector>

namespace mrs {

/// Right-aligned plain-text table writer used by the benchmark harness to
/// print the series that correspond to the paper's figures. Also emits CSV
/// so plots can be regenerated from redirected output.
class TablePrinter {
 public:
  /// `title` is printed above the table.
  explicit TablePrinter(std::string title) : title_(std::move(title)) {}

  /// Sets the column headers; must be called before adding rows.
  void SetHeader(std::vector<std::string> header);

  /// Adds a row; cells beyond the header width are dropped, missing cells
  /// rendered empty.
  void AddRow(std::vector<std::string> row);

  /// Convenience: a row of doubles with fixed precision.
  void AddNumericRow(const std::vector<double>& row, int precision = 2);

  /// Renders the aligned table to `out` (default stdout).
  void Print(std::FILE* out = stdout) const;

  /// Renders the table as CSV (header + rows).
  std::string ToCsv() const;

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace mrs

#endif  // MRS_COMMON_TABLE_PRINTER_H_
