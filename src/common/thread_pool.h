#ifndef MRS_COMMON_THREAD_POOL_H_
#define MRS_COMMON_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace mrs {

/// A fixed-size thread pool with a sharded task queue, used by the batch
/// scheduling engine to run many independent compile-time pipelines
/// concurrently.
///
/// Design points (deliberately minimal — this is scheduler scaffolding,
/// not a general executor):
///
///  * **Fixed workers.** `num_threads` workers are spawned in the
///    constructor and live until destruction; no dynamic resizing.
///  * **Sharded queues, no stealing.** Each worker owns one task deque;
///    `Submit` distributes tasks round-robin over the shards. Workers only
///    consume their own shard, so two pools never contend on one lock and
///    a task's execution site is a pure function of its submission index.
///    Batch-scheduler determinism does not depend on this (results are
///    keyed by item index), but it keeps contention low and behavior easy
///    to reason about.
///  * **Exception propagation.** The mrs library itself never throws, but
///    user tasks may. The first exception thrown by any task is captured
///    and rethrown from `WaitAll`; subsequent tasks still run.
///
/// Thread-safe: `Submit` and `WaitAll` may be called from any thread
/// (including from inside a task, though `WaitAll` from inside a task
/// deadlocks if it would have to wait for the calling task itself).
class ThreadPool {
 public:
  /// Spawns `num_threads` workers. Values < 1 are clamped to 1.
  explicit ThreadPool(int num_threads);

  /// Drains all pending tasks (they run to completion), then joins the
  /// workers. Any pending captured exception is discarded.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task. Must not be called during/after destruction.
  void Submit(std::function<void()> task);

  /// Blocks until every task submitted so far has completed. If any task
  /// threw since the last WaitAll, rethrows the first captured exception
  /// (the pool stays usable afterwards). A zero-task WaitAll returns
  /// immediately.
  void WaitAll();

  int num_threads() const { return static_cast<int>(workers_.size()); }

  /// Number of tasks that have finished executing (monotone; test aid).
  uint64_t completed_tasks() const {
    return completed_.load(std::memory_order_relaxed);
  }

  /// std::thread::hardware_concurrency with a floor of 1.
  static int DefaultThreads();

 private:
  struct Shard {
    std::mutex mu;
    std::condition_variable cv;
    std::deque<std::function<void()>> tasks;
  };

  void WorkerLoop(size_t shard_index);

  std::vector<std::unique_ptr<Shard>> shards_;
  std::vector<std::thread> workers_;
  std::atomic<uint64_t> next_shard_{0};
  std::atomic<bool> stopping_{false};

  // Completion tracking for WaitAll.
  std::atomic<int64_t> pending_{0};
  std::atomic<uint64_t> completed_{0};
  std::mutex done_mu_;
  std::condition_variable done_cv_;
  std::exception_ptr first_error_;  // guarded by done_mu_
};

}  // namespace mrs

#endif  // MRS_COMMON_THREAD_POOL_H_
