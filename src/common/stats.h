#ifndef MRS_COMMON_STATS_H_
#define MRS_COMMON_STATS_H_

#include <cstddef>
#include <string>
#include <vector>

namespace mrs {

/// Streaming accumulator of count/mean/variance/min/max (Welford).
/// Used by the experiment harness to average schedule response times over
/// many randomly generated plans (the paper averages over 20 plans per
/// query size).
class RunningStat {
 public:
  RunningStat() = default;

  void Add(double x);

  /// Merges another accumulator into this one.
  void Merge(const RunningStat& other);

  size_t count() const { return count_; }
  double mean() const { return count_ == 0 ? 0.0 : mean_; }
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  double variance() const;
  double stddev() const;
  double min() const { return min_; }
  double max() const { return max_; }
  double sum() const { return mean_ * static_cast<double>(count_); }

 private:
  size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Exact percentile of a sample set (linear interpolation between order
/// statistics). `q` in [0,1]. Returns 0 for an empty sample.
double Percentile(std::vector<double> samples, double q);

/// Geometric mean; requires all samples > 0 (violations are skipped).
double GeometricMean(const std::vector<double>& samples);

}  // namespace mrs

#endif  // MRS_COMMON_STATS_H_
