#ifndef MRS_COMMON_METRICS_H_
#define MRS_COMMON_METRICS_H_

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace mrs {

/// Process-wide scheduler telemetry: named counters, gauges, and
/// fixed-bucket latency histograms, collected into deterministic-order
/// snapshots. This is the layer the batch engine, the parallelize cache,
/// and `sched_cli --metrics` report through; per-query *causality* (which
/// stage took how long, which eq. (3) term bound a phase) lives in
/// exec/trace.h — the registry holds the process aggregates.
///
/// All recording paths are lock-free (relaxed atomics); only
/// creation/lookup of a metric and snapshotting take the registry mutex.
/// Metric objects are owned by their registry and live until the registry
/// dies, so handles obtained once may be cached and hit without locking.

/// Monotone event counter.
class Counter {
 public:
  Counter() = default;

  void Increment(uint64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
  uint64_t value() const { return v_.load(std::memory_order_relaxed); }
  void Reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> v_{0};
};

/// Last-write-wins instantaneous value.
class Gauge {
 public:
  Gauge() = default;

  void Set(double v) { v_.store(v, std::memory_order_relaxed); }

  /// Atomic v += delta (CAS loop; doubles have no fetch_add pre-C++20
  /// on all toolchains). Used by up/down resource gauges recorded from
  /// many threads — the server's connection count and write backlog.
  void Add(double delta) {
    double cur = v_.load(std::memory_order_relaxed);
    while (!v_.compare_exchange_weak(cur, cur + delta,
                                     std::memory_order_relaxed)) {
    }
  }

  double value() const { return v_.load(std::memory_order_relaxed); }
  void Reset() { v_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> v_{0.0};
};

/// Fixed-bucket latency histogram for millisecond durations. Buckets are
/// log-spaced powers of two from 1 us up (values above the last boundary
/// land in an overflow bucket); percentiles are estimated by linear
/// interpolation inside the covering bucket and clamped to the observed
/// [min, max]. Thread-safe; recording is a relaxed atomic add.
class Histogram {
 public:
  /// Bucket i covers (upper(i-1), upper(i)] with upper(i) = 0.001 * 2^i ms,
  /// i.e. 1 us .. ~2^39 us (~9 days); +1 overflow bucket.
  static constexpr size_t kNumBounds = 40;

  Histogram() = default;

  void Record(double value_ms);

  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  /// 0 when empty.
  double min() const;
  double max() const;
  double mean() const;

  /// Estimated value at quantile q in [0, 1]; 0 when empty.
  double ValueAtPercentile(double q) const;

  void Reset();

  /// Upper bound of bucket i (i < kNumBounds).
  static double BucketUpperBound(size_t i);

 private:
  std::array<std::atomic<uint64_t>, kNumBounds + 1> buckets_{};
  std::atomic<uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  // +/-inf sentinels while empty; min()/max() report 0 until the first
  // Record.
  std::atomic<double> min_{std::numeric_limits<double>::infinity()};
  std::atomic<double> max_{-std::numeric_limits<double>::infinity()};
};

/// Thread-safe hit/miss counter pair for memoization caches (the batch
/// engine's parallelize cache reports through one of these). Relaxed
/// atomics: counts are monotone but only approximately ordered across
/// threads, which is all cache metrics need. Instances publish into a
/// MetricsRegistry via RegisterCounterCallback — the registry reads the
/// same atomics, so there is exactly one accounting path.
class HitMissCounter {
 public:
  HitMissCounter() = default;

  void RecordHit() { hits_.Increment(); }
  void RecordMiss() { misses_.Increment(); }

  uint64_t hits() const { return hits_.value(); }
  uint64_t misses() const { return misses_.value(); }
  uint64_t lookups() const { return hits() + misses(); }

  /// hits / (hits + misses); 0 before the first lookup.
  double HitRate() const;

  void Reset() {
    hits_.Reset();
    misses_.Reset();
  }

  /// "hits=12 misses=3 (80.0%)"
  std::string ToString() const;

 private:
  Counter hits_;
  Counter misses_;
};

/// Point-in-time view of a histogram, with the percentiles the serving
/// reports care about.
struct HistogramSnapshot {
  std::string name;
  uint64_t count = 0;
  double sum = 0.0;
  double min = 0.0;
  double max = 0.0;
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
};

/// Deterministically ordered (by name) view of a registry. Counter values
/// include registered callback providers (summed per name).
struct MetricsSnapshot {
  std::vector<std::pair<std::string, uint64_t>> counters;
  std::vector<std::pair<std::string, double>> gauges;
  std::vector<HistogramSnapshot> histograms;

  /// Value of a counter by name; 0 if absent (test aid).
  uint64_t CounterValue(const std::string& name) const;

  /// Stable JSON object: {"counters":{...},"gauges":{...},
  /// "histograms":{"name":{"count":..,"sum":..,"min":..,"max":..,
  /// "p50":..,"p95":..,"p99":..}}}. Keys sorted by name.
  std::string ToJson() const;

  /// Human-readable multi-line table.
  std::string ToString() const;
};

/// Registry of named metrics. `Global()` is the process-wide instance;
/// tests create their own for isolation. Get* calls are idempotent: the
/// first call creates, later calls return the same object.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  ~MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  static MetricsRegistry& Global();

  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  Histogram* GetHistogram(const std::string& name);

  /// RAII registration of an external monotone value (e.g. a cache's
  /// per-instance hit counter) published into snapshots without a second
  /// recording path: the snapshot reads through the callback. Multiple
  /// live callbacks under one name sum. Unregisters on destruction.
  class CallbackHandle {
   public:
    CallbackHandle() = default;
    CallbackHandle(CallbackHandle&& other) noexcept;
    CallbackHandle& operator=(CallbackHandle&& other) noexcept;
    CallbackHandle(const CallbackHandle&) = delete;
    CallbackHandle& operator=(const CallbackHandle&) = delete;
    ~CallbackHandle();

    void Release();

   private:
    friend class MetricsRegistry;
    CallbackHandle(MetricsRegistry* registry, uint64_t id)
        : registry_(registry), id_(id) {}
    MetricsRegistry* registry_ = nullptr;
    uint64_t id_ = 0;
  };

  CallbackHandle RegisterCounterCallback(std::string name,
                                         std::function<uint64_t()> fn);

  MetricsSnapshot Snapshot() const;

  /// Zeroes every owned metric (callback providers read through and are
  /// unaffected). Test aid.
  void ResetAll();

 private:
  friend class CallbackHandle;
  void UnregisterCallback(uint64_t id);

  struct CallbackEntry {
    uint64_t id = 0;
    std::string name;
    std::function<uint64_t()> fn;
  };

  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
  std::vector<CallbackEntry> callbacks_;
  uint64_t next_callback_id_ = 1;
};

}  // namespace mrs

#endif  // MRS_COMMON_METRICS_H_
