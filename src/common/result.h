#ifndef MRS_COMMON_RESULT_H_
#define MRS_COMMON_RESULT_H_

#include <cstdlib>
#include <utility>
#include <variant>

#include "common/status.h"

namespace mrs {

/// A value-or-error holder: either holds a `T` or a non-OK `Status`.
///
/// Usage:
///   Result<Schedule> r = scheduler.Run(ops);
///   if (!r.ok()) return r.status();
///   const Schedule& s = r.value();
///
/// Accessing `value()` on an error Result aborts the process (the library
/// treats it as a programming error, like dereferencing an empty optional).
template <typename T>
class Result {
 public:
  /// Implicit construction from a value (success).
  Result(T value) : repr_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Implicit construction from a non-OK status (failure). Constructing a
  /// Result from an OK status is a bug and aborts.
  Result(Status status) : repr_(std::move(status)) {  // NOLINT
    if (std::get<Status>(repr_).ok()) std::abort();
  }

  Result(const Result&) = default;
  Result& operator=(const Result&) = default;
  Result(Result&&) = default;
  Result& operator=(Result&&) = default;

  bool ok() const { return std::holds_alternative<T>(repr_); }

  /// Returns OK for a success Result, the stored error otherwise.
  Status status() const {
    if (ok()) return Status::OK();
    return std::get<Status>(repr_);
  }

  const T& value() const& {
    if (!ok()) std::abort();
    return std::get<T>(repr_);
  }
  T& value() & {
    if (!ok()) std::abort();
    return std::get<T>(repr_);
  }
  T&& value() && {
    if (!ok()) std::abort();
    return std::get<T>(std::move(repr_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::variant<T, Status> repr_;
};

}  // namespace mrs

/// Evaluates `rexpr` (a Result<T>), propagating an error Status to the
/// caller; on success assigns the value to `lhs`.
#define MRS_ASSIGN_OR_RETURN(lhs, rexpr)                        \
  MRS_ASSIGN_OR_RETURN_IMPL_(                                   \
      MRS_RESULT_CONCAT_(_mrs_result, __LINE__), lhs, rexpr)

#define MRS_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, rexpr)             \
  auto tmp = (rexpr);                                           \
  if (!tmp.ok()) return tmp.status();                           \
  lhs = std::move(tmp).value()

#define MRS_RESULT_CONCAT_(a, b) MRS_RESULT_CONCAT_IMPL_(a, b)
#define MRS_RESULT_CONCAT_IMPL_(a, b) a##b

#endif  // MRS_COMMON_RESULT_H_
