#include "common/str_util.h"

#include <cstdarg>
#include <cstdio>

namespace mrs {

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  if (needed < 0) {
    va_end(args_copy);
    return std::string();
  }
  std::string out(static_cast<size_t>(needed), '\0');
  std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  va_end(args_copy);
  return out;
}

std::string StrJoin(const std::vector<std::string>& parts,
                    const std::string& sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::string FormatMillis(double ms) {
  if (ms < 1.0) return StrFormat("%.0f us", ms * 1000.0);
  if (ms < 1000.0) return StrFormat("%.1f ms", ms);
  if (ms < 60000.0) return StrFormat("%.2f s", ms / 1000.0);
  return StrFormat("%.1f min", ms / 60000.0);
}

std::string FormatBytes(double bytes) {
  if (bytes < 1024.0) return StrFormat("%.0f B", bytes);
  if (bytes < 1024.0 * 1024.0) return StrFormat("%.1f KB", bytes / 1024.0);
  if (bytes < 1024.0 * 1024.0 * 1024.0) {
    return StrFormat("%.1f MB", bytes / (1024.0 * 1024.0));
  }
  return StrFormat("%.2f GB", bytes / (1024.0 * 1024.0 * 1024.0));
}

std::string FormatDouble(double v, int precision) {
  return StrFormat("%.*f", precision, v);
}

}  // namespace mrs
