#ifndef MRS_SERVER_TRANSPORT_H_
#define MRS_SERVER_TRANSPORT_H_

#include <atomic>
#include <memory>
#include <string>
#include <utility>

#include "common/result.h"

namespace mrs {

/// A bidirectional, blocking byte stream between a client and the
/// scheduling server. Two implementations: a TCP socket and an in-process
/// pipe pair (deterministic tests, benchmarks). Thread model: one reader
/// and one writer may use a connection concurrently; ShutdownRead/Close
/// may be called from any thread to unblock a reader.
class Connection {
 public:
  virtual ~Connection() = default;

  /// Blocking read of up to `n` bytes into `buf`. Returns the number of
  /// bytes read, 0 on clean end-of-stream, -1 on error.
  virtual int Read(char* buf, int n) = 0;

  /// Writes all `n` bytes; false on error. Writing to a peer that half-
  /// closed its read side is not an error (bytes are discarded, matching
  /// socket SHUT_RD semantics).
  virtual bool Write(const char* data, int n) = 0;

  /// Half-close of the receive direction: an in-progress or later Read
  /// returns end-of-stream, while writes (e.g. a response already being
  /// produced) still go through. This is the drain primitive — the server
  /// stops accepting new requests on the connection without cutting off
  /// the reply in flight.
  virtual void ShutdownRead() = 0;

  /// Full close; idempotent.
  virtual void Close() = 0;
};

/// A connected in-process pipe pair: bytes written to one endpoint are
/// read from the other. Both endpoints share buffers guarded by mutexes;
/// no file descriptors involved.
std::pair<std::unique_ptr<Connection>, std::unique_ptr<Connection>>
CreateInProcessPipe();

/// Connects to a listening SchedServer over TCP.
Result<std::unique_ptr<Connection>> ConnectTcp(const std::string& host,
                                               int port);

/// Sets or clears O_NONBLOCK on `fd`.
Status SetNonBlocking(int fd, bool nonblocking);

/// A listening TCP socket. Close() (from any thread) unblocks a pending
/// Accept, which then returns an error.
class SocketListener {
 public:
  SocketListener() = default;
  ~SocketListener();
  SocketListener(const SocketListener&) = delete;
  SocketListener& operator=(const SocketListener&) = delete;

  /// Binds and listens; `port` 0 picks an ephemeral port (read it back
  /// from port()).
  Status Listen(const std::string& host, int port);

  /// Blocking accept. Error taxonomy (the accept loop depends on it):
  ///   FailedPrecondition  the listener was Close()d — stop accepting;
  ///   Unavailable         transient resource pressure (EMFILE/ENFILE/
  ///                       ENOBUFS/ENOMEM) — count it, back off, retry;
  ///   Internal            anything else — genuinely broken.
  /// Per-connection aborts (ECONNABORTED) and EINTR are retried
  /// internally and never surface.
  Result<std::unique_ptr<Connection>> Accept();

  void Close();

  int port() const { return port_; }

  /// The raw listening fd (-1 after Close). The reactor front-end owns
  /// accept directly: it switches the fd to nonblocking and registers it
  /// with the event loop; the listener still owns closing it.
  int raw_fd() const { return fd_.load(std::memory_order_acquire); }

 private:
  // Close() runs concurrently with a blocked Accept(); the fd slot itself
  // must be a synchronized handoff (the kernel handles the syscall side).
  std::atomic<int> fd_{-1};
  int port_ = 0;
};

}  // namespace mrs

#endif  // MRS_SERVER_TRANSPORT_H_
