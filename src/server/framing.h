#ifndef MRS_SERVER_FRAMING_H_
#define MRS_SERVER_FRAMING_H_

#include <cstddef>
#include <deque>
#include <string>
#include <string_view>

#include "common/result.h"
#include "server/transport.h"

namespace mrs {

/// Wire format of the scheduling service: each message is one frame — a
/// 4-byte big-endian payload length followed by the payload bytes.
/// Requests carry plan text (plus optional @directives), responses carry
/// JSON; the framing layer itself is content-agnostic.

/// Upper bound on a frame payload; larger lengths are treated as protocol
/// corruption, not as an allocation request. Enforced symmetrically: the
/// sender refuses to emit what the parser would reject.
inline constexpr size_t kMaxFrameBytes = 16 * 1024 * 1024;

/// Number of bytes in the length prefix.
inline constexpr size_t kFrameHeaderBytes = 4;

/// Writes the 4-byte big-endian length prefix for an `n`-byte payload
/// into `out`. The caller has already validated n <= kMaxFrameBytes.
/// This is the zero-copy write path of the reactor front-end: the header
/// lives in the connection's pending-write slot and the payload is
/// writev'd straight out of the response string — no concatenated frame
/// is ever materialized.
void EncodeFrameHeader(uint32_t n, char out[kFrameHeaderBytes]);

/// The frame for `payload`: length prefix + payload bytes. Fails with
/// InvalidArgument when the payload exceeds kMaxFrameBytes — previously a
/// payload larger than 4 GiB was silently truncated through the uint32_t
/// length cast, emitting a frame whose prefix lied about its size.
Result<std::string> EncodeFrame(std::string_view payload);

/// Incremental decoder for a byte stream of frames. Feed arbitrary chunks
/// with Append; Next pops complete payloads in order.
class FrameParser {
 public:
  /// Consumes `n` bytes. Fails (sticky) when a frame length exceeds
  /// kMaxFrameBytes.
  Status Append(const char* data, size_t n);

  /// Moves the next complete payload into `out`; false when no complete
  /// frame is buffered yet.
  bool Next(std::string* out);

  /// True when the stream ends mid-frame (truncation detector).
  bool MidFrame() const { return buffer_.size() > pos_; }

 private:
  Status status_;
  /// Consumed frames advance `pos_` instead of erasing the buffer prefix
  /// (which is quadratic across a burst of pipelined frames landing in
  /// one Append); the dead prefix is compacted away periodically.
  std::string buffer_;
  size_t pos_ = 0;
  std::deque<std::string> ready_;
};

/// Writes one frame; InvalidArgument for a payload over kMaxFrameBytes
/// (nothing is written), Unavailable when the connection drops.
Status SendFrame(Connection* conn, std::string_view payload);

/// Reads exactly one frame. NotFound on clean end-of-stream at a frame
/// boundary (the peer is done), InvalidArgument on protocol corruption
/// (oversized length or truncated frame), Unavailable on a read error.
Result<std::string> ReadFrame(Connection* conn);

}  // namespace mrs

#endif  // MRS_SERVER_FRAMING_H_
