#ifndef MRS_SERVER_EVENT_LOOP_H_
#define MRS_SERVER_EVENT_LOOP_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/result.h"

namespace mrs {

/// A single-threaded epoll reactor: the core of the async server
/// front-end. One thread calls Run(); it multiplexes readiness events for
/// registered file descriptors, callbacks Post()ed from other threads
/// (worker-pool completions — an eventfd wakes the epoll wait), and
/// one-shot timers (accept backoff). Everything except Post() and Stop()
/// must be called from the loop thread; handlers run on the loop thread,
/// so per-connection state they touch needs no locking.
///
/// Registration is level-triggered: a handler that leaves bytes unread is
/// simply invoked again on the next iteration, which keeps per-event work
/// bounded (one read per connection per wakeup) and connections fair
/// under a firehose peer.
class EventLoop {
 public:
  using Handler = std::function<void(uint32_t epoll_events)>;

  EventLoop();
  ~EventLoop();
  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  /// Creates the epoll instance and the wakeup eventfd. Must be called
  /// (and succeed) before anything else.
  Status Init();

  /// Registers `fd` for `events` (EPOLLIN/EPOLLOUT/...); `handler` runs on
  /// the loop thread each time the fd is ready. The fd is not owned.
  Status Add(int fd, uint32_t events, Handler handler);

  /// Changes the interest set of a registered fd. `events` may be 0 to
  /// keep the registration but deliver nothing (accept backoff).
  Status Modify(int fd, uint32_t events);

  /// Deregisters `fd`. Safe to call from inside the fd's own handler: the
  /// dispatch loop looks handlers up by fd at delivery time, so a removed
  /// fd's stale readiness event is skipped, not dispatched.
  void Remove(int fd);

  /// Enqueues `fn` to run on the loop thread; wakes the loop. Thread-safe.
  /// After Stop() the task is retained but never runs (the drain protocol
  /// in SchedServer guarantees nothing observable is lost).
  void Post(std::function<void()> fn);

  /// Runs `fn` on the loop thread after `delay_ms`. Loop thread only.
  void RunAfter(double delay_ms, std::function<void()> fn);

  /// Dispatches until Stop(). Returns after the stop flag is observed;
  /// pending posted tasks queued before the stop are still drained once.
  void Run();

  /// Signals Run() to return. Thread-safe, idempotent.
  void Stop();

  bool stopped() const { return stop_.load(std::memory_order_acquire); }

  /// True on the thread currently inside Run() (false before Run starts).
  bool InLoopThread() const;

 private:
  using Clock = std::chrono::steady_clock;
  struct Timer {
    Clock::time_point when;
    uint64_t seq;  // FIFO among equal deadlines
    std::function<void()> fn;
    bool operator>(const Timer& other) const {
      if (when != other.when) return when > other.when;
      return seq > other.seq;
    }
  };

  void DrainWakeup();
  void RunPostedTasks();
  void RunDueTimers();
  int NextTimeoutMs() const;

  int epoll_fd_ = -1;
  int wake_fd_ = -1;
  std::atomic<bool> stop_{false};
  std::atomic<std::thread::id> loop_thread_{};

  // Loop-thread-only state.
  std::unordered_map<int, Handler> handlers_;
  std::priority_queue<Timer, std::vector<Timer>, std::greater<Timer>> timers_;
  uint64_t timer_seq_ = 0;

  std::mutex tasks_mu_;
  std::vector<std::function<void()>> tasks_;
};

}  // namespace mrs

#endif  // MRS_SERVER_EVENT_LOOP_H_
