#include "server/sched_service.h"

#include <cstdlib>

#include "common/str_util.h"
#include "io/plan_text.h"
#include "io/schedule_export.h"

namespace mrs {

namespace {

std::string EscapeJson(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += StrFormat("\\u%04x", c);
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string ErrorResponse(const char* status, const Status& why) {
  return StrFormat(
      "{\"status\":\"%s\",\"code\":\"%s\",\"message\":\"%s\"}", status,
      std::string(StatusCodeToString(why.code())).c_str(),
      EscapeJson(why.message()).c_str());
}

struct ParsedRequest {
  double arrival_ms = -1.0;
  double timeout_ms = -1.0;
  std::string plan_text;
};

Result<ParsedRequest> ParseRequest(const std::string& request) {
  ParsedRequest out;
  size_t pos = 0;
  while (pos < request.size() && request[pos] == '@') {
    size_t eol = request.find('\n', pos);
    if (eol == std::string::npos) eol = request.size();
    const std::string line = request.substr(pos, eol - pos);
    char* end = nullptr;
    const char* arg = line.c_str() + 8;
    if (line.rfind("@arrival", 0) == 0) {
      out.arrival_ms = std::strtod(arg, &end);
    } else if (line.rfind("@timeout", 0) == 0) {
      out.timeout_ms = std::strtod(arg, &end);
    } else {
      return Status::InvalidArgument(
          StrFormat("unknown directive: %s", line.c_str()));
    }
    const bool converted = end != nullptr && end != arg;
    while (end != nullptr && *end == ' ') ++end;
    if (!converted || *end != '\0') {
      return Status::InvalidArgument(
          StrFormat("malformed directive: %s", line.c_str()));
    }
    pos = eol < request.size() ? eol + 1 : eol;
  }
  out.plan_text = request.substr(pos);
  return out;
}

}  // namespace

SchedService::SchedService(const SchedServiceOptions& options)
    : scheduler_(options.params, options.machine, options.online) {}

std::string SchedService::Handle(const std::string& request) {
  auto parsed_request = ParseRequest(request);
  if (!parsed_request.ok()) {
    return ErrorResponse("error", parsed_request.status());
  }
  auto parsed_plan = ParsePlanText(parsed_request->plan_text);
  if (!parsed_plan.ok()) {
    return ErrorResponse("error", parsed_plan.status());
  }
  if (parsed_plan->plan == nullptr) {
    return ErrorResponse(
        "error",
        Status::InvalidArgument(
            "request carries a graph stanza, not a plan; run the join-order "
            "optimizer first (sched_cli --optimize)"));
  }

  std::lock_guard<std::mutex> lock(mu_);
  const uint64_t id = scheduler_.Submit(*parsed_plan->plan,
                                        parsed_request->arrival_ms,
                                        parsed_request->timeout_ms);
  const Status resolved = scheduler_.ResolveQuery(id);
  if (!resolved.ok()) {
    return ErrorResponse("error", resolved);
  }
  const OnlineQueryResult* result = scheduler_.result(id);
  if (result == nullptr) {
    return ErrorResponse("error", Status::Internal("query result vanished"));
  }
  switch (result->state) {
    case OnlineQueryState::kRejected:
      return ErrorResponse("rejected", result->status);
    case OnlineQueryState::kTimedOut:
      return ErrorResponse("timeout", result->status);
    case OnlineQueryState::kQueued:
      return ErrorResponse("error",
                           Status::Internal("query resolved while queued"));
    case OnlineQueryState::kRunning:
    case OnlineQueryState::kDone:
      break;
  }
  return StrFormat(
      "{\"status\":\"ok\",\"id\":%llu,\"arrival_ms\":%.6f,"
      "\"admit_ms\":%.6f,\"queue_wait_ms\":%.6f,\"finish_ms\":%.6f,"
      "\"response_ms\":%.6f,\"schedule\":%s}",
      static_cast<unsigned long long>(result->id), result->arrival_ms,
      result->admit_ms, result->QueueWaitMs(), result->ProjectedFinishMs(),
      result->schedule.response_time,
      TreeScheduleToJson(result->schedule).c_str());
}

}  // namespace mrs
