#include "server/sched_client.h"

#include "server/framing.h"

namespace mrs {

Result<SchedClient> SchedClient::ConnectTcp(const std::string& host,
                                            int port) {
  auto conn = ::mrs::ConnectTcp(host, port);
  if (!conn.ok()) return conn.status();
  return SchedClient(std::move(conn).value());
}

Result<std::string> SchedClient::Call(const std::string& request) {
  if (conn_ == nullptr) {
    return Status::FailedPrecondition("client is closed");
  }
  MRS_RETURN_IF_ERROR(SendFrame(conn_.get(), request));
  auto response = ReadFrame(conn_.get());
  if (!response.ok() && response.status().code() == StatusCode::kNotFound) {
    return Status::Unavailable("server closed the connection");
  }
  return response;
}

}  // namespace mrs
