#include "server/sched_server.h"

#include <algorithm>
#include <utility>

#include "server/framing.h"

namespace mrs {

SchedServer::SchedServer(SchedService* service) : service_(service) {}

SchedServer::~SchedServer() { Shutdown(); }

Status SchedServer::Start(const std::string& host, int port) {
  if (started_) return Status::FailedPrecondition("server already started");
  MRS_RETURN_IF_ERROR(listener_.Listen(host, port));
  started_ = true;
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return Status::OK();
}

int SchedServer::port() const { return listener_.port(); }

void SchedServer::AcceptLoop() {
  while (!shutting_down()) {
    auto conn = listener_.Accept();
    if (!conn.ok()) break;  // listener closed (shutdown) or fatal
    std::lock_guard<std::mutex> lock(mu_);
    if (shutting_down()) break;  // drop the late arrival
    Connection* raw = conn->get();
    owned_.push_back(std::move(conn).value());
    conn_threads_.emplace_back([this, raw] { ServeConnection(raw); });
  }
}

void SchedServer::Register(Connection* conn) {
  std::lock_guard<std::mutex> lock(mu_);
  live_.push_back(conn);
  if (shutting_down()) conn->ShutdownRead();
}

void SchedServer::Unregister(Connection* conn) {
  std::lock_guard<std::mutex> lock(mu_);
  live_.erase(std::remove(live_.begin(), live_.end(), conn), live_.end());
  idle_cv_.notify_all();
}

void SchedServer::ServeConnection(Connection* conn) {
  Register(conn);
  while (true) {
    auto request = ReadFrame(conn);
    if (!request.ok()) break;  // peer done, shutdown, or protocol error
    // A request fully received before shutdown is always answered —
    // that is the drain guarantee; only the read side was closed.
    const std::string response = service_->Handle(request.value());
    if (!SendFrame(conn, response).ok()) break;
  }
  Unregister(conn);
}

void SchedServer::Shutdown() {
  if (shutdown_.exchange(true, std::memory_order_acq_rel)) {
    // Second caller: the first one is (or was) draining; just fall
    // through to the joins below only if we own them — they are joined
    // exactly once by the first caller, so return.
    return;
  }
  listener_.Close();
  if (accept_thread_.joinable()) accept_thread_.join();

  std::vector<std::thread> to_join;
  {
    std::unique_lock<std::mutex> lock(mu_);
    for (Connection* conn : live_) conn->ShutdownRead();
    idle_cv_.wait(lock, [this] { return live_.empty(); });
    to_join.swap(conn_threads_);
  }
  for (std::thread& t : to_join) {
    if (t.joinable()) t.join();
  }
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& conn : owned_) conn->Close();
  owned_.clear();
}

}  // namespace mrs
