#include "server/sched_server.h"

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <sys/uio.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <deque>
#include <unordered_map>
#include <utility>

#include "common/thread_pool.h"
#include "server/event_loop.h"
#include "server/framing.h"

namespace mrs {

namespace {

using Clock = std::chrono::steady_clock;

double MsSince(Clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(Clock::now() - t0)
      .count();
}

}  // namespace

ServerMetrics::ServerMetrics(MetricsRegistry* registry) {
  MetricsRegistry* reg =
      registry != nullptr ? registry : &MetricsRegistry::Global();
  bytes_in = reg->GetCounter("server.bytes_in");
  bytes_out = reg->GetCounter("server.bytes_out");
  accept_errors = reg->GetCounter("server.accept_errors");
  protocol_errors = reg->GetCounter("server.protocol_errors");
  backlog_closed = reg->GetCounter("server.backlog_closed");
  epoll_errors = reg->GetCounter("server.epoll_errors");
  connections = reg->GetGauge("server.connections");
  write_backlog = reg->GetGauge("server.write_backlog_bytes");
  request_ms = reg->GetHistogram("server.request_ms");
}

/// The epoll engine. One thread runs the event loop; per-connection state
/// machines live entirely on that thread (no locks), and only
/// SchedService::Handle runs on the worker pool. Workers hand completed
/// responses back via EventLoop::Post, which is the single cross-thread
/// edge (the eventfd wakeup publishes the response string to the loop).
struct SchedServer::Reactor {
  /// Per-connection state machine. Owned by `conns` and by the handler
  /// closure registered with the loop; workers hold only a weak_ptr, so a
  /// connection that dies mid-request simply orphans the in-flight
  /// response.
  struct Conn {
    int fd = -1;
    FrameParser parser;
    /// Fully parsed requests not yet handed to a worker, with the parse
    /// timestamp that anchors server.request_ms (framing-to-flush).
    std::deque<std::pair<std::string, Clock::time_point>> requests;
    /// True while one request from this connection is inside the worker
    /// pool. One at a time keeps responses in request order — the wire
    /// contract the threaded oracle also provides.
    bool busy = false;
    /// No more reads: peer EOF, protocol fault pending, or server drain.
    bool read_eof = false;
    bool closed = false;
    uint32_t events = 0;  ///< currently registered epoll interest

    /// One queued response: 4-byte length prefix + the payload written
    /// scatter/gather straight from the response string (zero-copy).
    struct Out {
      char header[kFrameHeaderBytes];
      std::string payload;
      size_t off = 0;  ///< bytes of header+payload already on the wire
      Clock::time_point t0;
    };
    std::deque<Out> out;
    size_t out_bytes = 0;
  };

  explicit Reactor(SchedServer* server_in)
      : server(server_in),
        workers(server_in->options_.worker_threads) {}

  SchedServer* server;
  EventLoop loop;
  // Declared after `loop` so it is destroyed first: a worker draining
  // during destruction may still Post into the (stopped) loop.
  ThreadPool workers;
  std::thread loop_thread;
  int listen_fd = -1;
  bool accept_armed = true;
  bool draining = false;
  std::unordered_map<int, std::shared_ptr<Conn>> conns;  // loop thread only

  ServerMetrics& metrics() { return server->metrics_; }
  const SchedServerOptions& options() const { return server->options_; }

  Status Start(int listen_fd_in) {
    listen_fd = listen_fd_in;
    MRS_RETURN_IF_ERROR(loop.Init());
    MRS_RETURN_IF_ERROR(SetNonBlocking(listen_fd, true));
    MRS_RETURN_IF_ERROR(
        loop.Add(listen_fd, EPOLLIN, [this](uint32_t) { OnAccept(); }));
    loop_thread = std::thread([this] { loop.Run(); });
    return Status::OK();
  }

  /// Called from SchedServer::Shutdown (never the loop thread): starts
  /// the drain on the loop and waits for it to finish every response
  /// owed, close every connection, and stop.
  void DrainAndJoin() {
    loop.Post([this] { BeginDrain(); });
    if (loop_thread.joinable()) loop_thread.join();
  }

  // ---- loop-thread methods below ----

  void BeginDrain() {
    if (draining) return;
    draining = true;
    loop.Remove(listen_fd);
    // Stop reading everywhere. Bytes the kernel already buffered but the
    // loop has not parsed are dropped — exactly the threaded oracle's
    // ShutdownRead semantics; requests fully *parsed* are still answered.
    std::vector<std::shared_ptr<Conn>> snapshot;
    snapshot.reserve(conns.size());
    for (auto& [fd, c] : conns) snapshot.push_back(c);
    for (auto& c : snapshot) {
      c->read_eof = true;
      UpdateEvents(c);
      MaybeFinish(c);
    }
    CheckDrainDone();
  }

  void CheckDrainDone() {
    if (draining && conns.empty()) loop.Stop();
  }

  void OnAccept() {
    while (true) {
      const int fd = ::accept4(listen_fd, nullptr, nullptr,
                               SOCK_NONBLOCK | SOCK_CLOEXEC);
      if (fd >= 0) {
        const int one = 1;
        ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
        NewConn(fd);
        continue;
      }
      const int err = errno;
      if (err == EAGAIN || err == EWOULDBLOCK) return;
      if (err == EINTR) continue;
      if (err == ECONNABORTED) {
        // The peer gave up while queued; purely per-connection.
        metrics().accept_errors->Increment();
        continue;
      }
      // EMFILE/ENFILE/ENOBUFS/ENOMEM — and anything unexpected — must
      // not kill the loop: count it, unarm accept, retry after a beat.
      // (Level-triggered epoll would otherwise spin on the pending
      // connection we cannot take.)
      metrics().accept_errors->Increment();
      PauseAccept();
      return;
    }
  }

  void PauseAccept() {
    if (!accept_armed || draining) return;
    accept_armed = false;
    loop.Modify(listen_fd, 0);
    loop.RunAfter(options().accept_backoff_ms, [this] {
      if (draining || accept_armed) return;
      accept_armed = true;
      loop.Modify(listen_fd, EPOLLIN);
      OnAccept();  // level-triggered, but don't wait a cycle
    });
  }

  void NewConn(int fd) {
    auto c = std::make_shared<Conn>();
    c->fd = fd;
    c->events = EPOLLIN;
    Status added = loop.Add(
        fd, EPOLLIN, [this, c](uint32_t events) { OnConnEvent(c, events); });
    if (!added.ok()) {
      ::close(fd);
      return;
    }
    conns.emplace(fd, std::move(c));
    metrics().connections->Add(1);
  }

  void OnConnEvent(const std::shared_ptr<Conn>& c, uint32_t events) {
    if (c->closed) return;
    if (events & EPOLLERR) {
      CloseConn(c);
      return;
    }
    if ((events & EPOLLIN) && !c->read_eof) HandleRead(c);
    if (c->closed) return;
    if (events & EPOLLOUT) FlushOut(c);
    if (c->closed) return;
    if (events & EPOLLHUP) {
      // TCP raises HUP only once the connection is truly dead (RST, or
      // both directions down) — nothing can be delivered anymore, and
      // level-triggered HUP would refire every iteration if we waited
      // for in-flight work. Salvage whatever the kernel still takes,
      // then drop the connection (an orphaned worker response is
      // discarded through its weak_ptr).
      if (!c->out.empty()) FlushOut(c);
      if (!c->closed) CloseConn(c);
    }
  }

  void HandleRead(const std::shared_ptr<Conn>& c) {
    // One bounded read per readiness event: level-triggered epoll re-
    // reports leftover bytes next iteration, so a firehose peer cannot
    // starve 100k quiet ones.
    char buf[64 * 1024];
    const ssize_t n = ::read(c->fd, buf, sizeof(buf));
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) return;
      CloseConn(c);
      return;
    }
    if (n == 0) {
      c->read_eof = true;
      if (c->parser.MidFrame()) {
        // Stream ended inside a frame: the threaded oracle's ReadFrame
        // calls this corruption and drops the connection; so do we.
        metrics().protocol_errors->Increment();
        CloseConn(c);
        return;
      }
      UpdateEvents(c);
      MaybeFinish(c);
      return;
    }
    metrics().bytes_in->Increment(static_cast<uint64_t>(n));
    const Status appended = c->parser.Append(buf, static_cast<size_t>(n));
    if (!appended.ok()) {
      // Oversized frame length or sticky parser fault: protocol error.
      // Close this connection only — the loop and its other 100k sockets
      // don't care.
      metrics().protocol_errors->Increment();
      CloseConn(c);
      return;
    }
    const Clock::time_point now = Clock::now();
    std::string request;
    while (c->parser.Next(&request)) {
      c->requests.emplace_back(std::move(request), now);
    }
    Pump(c);
  }

  /// Hands the next parsed request to the worker pool (one in flight per
  /// connection). The worker runs SchedService::Handle — the potentially
  /// long scheduling computation — and posts the finished response back
  /// to the loop, which owns all connection state.
  void Pump(const std::shared_ptr<Conn>& c) {
    if (c->busy || c->closed || c->requests.empty()) return;
    c->busy = true;
    std::string request = std::move(c->requests.front().first);
    const Clock::time_point t0 = c->requests.front().second;
    c->requests.pop_front();
    workers.Submit([this, wc = std::weak_ptr<Conn>(c),
                    request = std::move(request), t0]() mutable {
      std::string response = server->service_->Handle(request);
      loop.Post([this, wc, response = std::move(response), t0]() mutable {
        std::shared_ptr<Conn> c = wc.lock();
        if (c == nullptr || c->closed) return;
        c->busy = false;
        Enqueue(c, std::move(response), t0);
        if (c->closed) return;
        Pump(c);
        MaybeFinish(c);
      });
    });
  }

  void Enqueue(const std::shared_ptr<Conn>& c, std::string response,
               Clock::time_point t0) {
    if (response.size() > kMaxFrameBytes) {
      // The sender refuses to emit what the parser would reject; the
      // threaded oracle's SendFrame fails the same way and the
      // connection drops without a response.
      metrics().protocol_errors->Increment();
      CloseConn(c);
      return;
    }
    Conn::Out out;
    EncodeFrameHeader(static_cast<uint32_t>(response.size()), out.header);
    out.payload = std::move(response);
    out.t0 = t0;
    const size_t total = kFrameHeaderBytes + out.payload.size();
    c->out.push_back(std::move(out));
    c->out_bytes += total;
    metrics().write_backlog->Add(static_cast<double>(total));
    FlushOut(c);
    if (!c->closed && c->out_bytes > options().max_write_backlog_bytes) {
      // The peer is not draining what it asked for. Backpressure is by
      // disconnection (typed: server.backlog_closed), never by letting
      // one connection's backlog grow without bound or block the loop.
      metrics().backlog_closed->Increment();
      CloseConn(c);
    }
  }

  void FlushOut(const std::shared_ptr<Conn>& c) {
    while (!c->out.empty()) {
      // Gather up to 8 queued frames per writev: header + payload pairs,
      // the front pair trimmed by what a previous partial write covered.
      iovec iov[16];
      int iovcnt = 0;
      for (const Conn::Out& o : c->out) {
        if (iovcnt > 14) break;
        size_t skip = o.off;
        if (skip < kFrameHeaderBytes) {
          iov[iovcnt].iov_base =
              const_cast<char*>(o.header) + skip;
          iov[iovcnt].iov_len = kFrameHeaderBytes - skip;
          ++iovcnt;
          skip = 0;
        } else {
          skip -= kFrameHeaderBytes;
        }
        if (skip < o.payload.size()) {
          iov[iovcnt].iov_base = const_cast<char*>(o.payload.data()) + skip;
          iov[iovcnt].iov_len = o.payload.size() - skip;
          ++iovcnt;
        }
      }
      if (iovcnt == 0) {
        // Only empty-payload frames whose bytes are all written — the
        // advance loop below would have popped them; defensive.
        break;
      }
      // sendmsg instead of writev for MSG_NOSIGNAL: a peer that resets
      // while responses are queued must surface as EPIPE on this
      // connection, not a process-fatal SIGPIPE (the threaded engine's
      // send in transport.cc carries the same flag).
      msghdr msg{};
      msg.msg_iov = iov;
      msg.msg_iovlen = static_cast<size_t>(iovcnt);
      const ssize_t n = ::sendmsg(c->fd, &msg, MSG_NOSIGNAL);
      if (n < 0) {
        if (errno == EAGAIN || errno == EWOULDBLOCK) break;
        if (errno == EINTR) continue;
        CloseConn(c);
        return;
      }
      metrics().bytes_out->Increment(static_cast<uint64_t>(n));
      metrics().write_backlog->Add(-static_cast<double>(n));
      c->out_bytes -= static_cast<size_t>(n);
      size_t written = static_cast<size_t>(n);
      while (written > 0) {
        Conn::Out& front = c->out.front();
        const size_t total = kFrameHeaderBytes + front.payload.size();
        const size_t advance = std::min(written, total - front.off);
        front.off += advance;
        written -= advance;
        if (front.off == total) {
          metrics().request_ms->Record(MsSince(front.t0));
          c->out.pop_front();
        }
      }
    }
    UpdateEvents(c);
    MaybeFinish(c);
  }

  void UpdateEvents(const std::shared_ptr<Conn>& c) {
    if (c->closed) return;
    const uint32_t desired = (c->read_eof ? 0u : uint32_t{EPOLLIN}) |
                             (c->out.empty() ? 0u : uint32_t{EPOLLOUT});
    if (desired == c->events) return;
    c->events = desired;
    const Status modified = loop.Modify(c->fd, desired);
    if (!modified.ok()) {
      // A connection stuck with a stale interest set would never see
      // EPOLLOUT for its queued output and could wedge the drain; better
      // to drop it than to hang it.
      metrics().epoll_errors->Increment();
      CloseConn(c);
    }
  }

  void MaybeFinish(const std::shared_ptr<Conn>& c) {
    if (c->closed || !c->read_eof) return;
    if (c->busy || !c->requests.empty() || !c->out.empty()) return;
    CloseConn(c);
  }

  void CloseConn(const std::shared_ptr<Conn>& c) {
    if (c->closed) return;
    c->closed = true;
    metrics().write_backlog->Add(-static_cast<double>(c->out_bytes));
    c->out_bytes = 0;
    c->out.clear();
    c->requests.clear();
    loop.Remove(c->fd);
    ::close(c->fd);
    conns.erase(c->fd);
    metrics().connections->Add(-1);
    CheckDrainDone();
  }
};

SchedServer::SchedServer(SchedService* service,
                         const SchedServerOptions& options)
    : service_(service), options_(options), metrics_(options.metrics) {}

SchedServer::~SchedServer() { Shutdown(); }

Status SchedServer::Start(const std::string& host, int port) {
  if (started_) return Status::FailedPrecondition("server already started");
  MRS_RETURN_IF_ERROR(listener_.Listen(host, port));
  started_ = true;
  if (options_.reactor) {
    reactor_ = std::make_unique<Reactor>(this);
    Status reactor_up = reactor_->Start(listener_.raw_fd());
    if (!reactor_up.ok()) {
      reactor_.reset();
      listener_.Close();
      started_ = false;
      return reactor_up;
    }
    return Status::OK();
  }
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return Status::OK();
}

int SchedServer::port() const { return listener_.port(); }

void SchedServer::AcceptLoop() {
  while (!shutting_down()) {
    auto conn = listener_.Accept();
    if (!conn.ok()) {
      if (conn.status().code() == StatusCode::kUnavailable) {
        // EMFILE/ENFILE-style pressure: survive it. Back off so the
        // retry isn't a busy loop against an exhausted fd table.
        metrics_.accept_errors->Increment();
        std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(
            options_.accept_backoff_ms));
        continue;
      }
      break;  // listener closed (shutdown) or fatal
    }
    std::lock_guard<std::mutex> lock(mu_);
    if (shutting_down()) break;  // drop the late arrival
    Connection* raw = conn->get();
    owned_.push_back(std::move(conn).value());
    conn_threads_.emplace_back([this, raw] { ServeConnection(raw); });
  }
}

void SchedServer::Register(Connection* conn) {
  std::lock_guard<std::mutex> lock(mu_);
  live_.push_back(conn);
  if (shutting_down()) conn->ShutdownRead();
}

void SchedServer::Unregister(Connection* conn) {
  std::lock_guard<std::mutex> lock(mu_);
  live_.erase(std::remove(live_.begin(), live_.end(), conn), live_.end());
  idle_cv_.notify_all();
}

void SchedServer::ServeConnection(Connection* conn) {
  Register(conn);
  metrics_.connections->Add(1);
  while (true) {
    auto request = ReadFrame(conn);
    if (!request.ok()) break;  // peer done, shutdown, or protocol error
    const Clock::time_point t0 = Clock::now();
    metrics_.bytes_in->Increment(kFrameHeaderBytes + request->size());
    // A request fully received before shutdown is always answered —
    // that is the drain guarantee; only the read side was closed.
    const std::string response = service_->Handle(request.value());
    if (!SendFrame(conn, response).ok()) break;
    metrics_.bytes_out->Increment(kFrameHeaderBytes + response.size());
    metrics_.request_ms->Record(MsSince(t0));
  }
  metrics_.connections->Add(-1);
  Unregister(conn);
}

void SchedServer::Shutdown() {
  if (shutdown_.exchange(true, std::memory_order_acq_rel)) {
    // Second caller: the first one is (or was) draining; the joins below
    // happen exactly once on the first caller, so return.
    return;
  }
  if (reactor_ != nullptr) {
    // Drain the reactor before closing the listener: the loop still owns
    // the listening fd (it deregisters it as the first drain step).
    reactor_->DrainAndJoin();
  }
  listener_.Close();
  if (accept_thread_.joinable()) accept_thread_.join();

  std::vector<std::thread> to_join;
  {
    std::unique_lock<std::mutex> lock(mu_);
    for (Connection* conn : live_) conn->ShutdownRead();
    idle_cv_.wait(lock, [this] { return live_.empty(); });
    to_join.swap(conn_threads_);
  }
  for (std::thread& t : to_join) {
    if (t.joinable()) t.join();
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto& conn : owned_) conn->Close();
    owned_.clear();
  }
  // Destroys the worker pool (drains any orphaned Handle calls) and then
  // the stopped loop. After this, no thread of ours exists.
  reactor_.reset();
}

}  // namespace mrs
