#include "server/event_loop.h"

#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "common/str_util.h"

namespace mrs {

EventLoop::EventLoop() = default;

EventLoop::~EventLoop() {
  if (wake_fd_ >= 0) ::close(wake_fd_);
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
}

Status EventLoop::Init() {
  if (epoll_fd_ >= 0) return Status::FailedPrecondition("loop already init");
  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  if (epoll_fd_ < 0) {
    return Status::Internal(
        StrFormat("epoll_create1 failed: %s", std::strerror(errno)));
  }
  wake_fd_ = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
  if (wake_fd_ < 0) {
    const int err = errno;
    ::close(epoll_fd_);
    epoll_fd_ = -1;
    return Status::Internal(
        StrFormat("eventfd failed: %s", std::strerror(err)));
  }
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = wake_fd_;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev) != 0) {
    return Status::Internal(
        StrFormat("epoll_ctl(wakeup) failed: %s", std::strerror(errno)));
  }
  return Status::OK();
}

Status EventLoop::Add(int fd, uint32_t events, Handler handler) {
  epoll_event ev{};
  ev.events = events;
  ev.data.fd = fd;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) != 0) {
    return Status::Internal(
        StrFormat("epoll_ctl(ADD fd %d) failed: %s", fd,
                  std::strerror(errno)));
  }
  handlers_[fd] = std::move(handler);
  return Status::OK();
}

Status EventLoop::Modify(int fd, uint32_t events) {
  epoll_event ev{};
  ev.events = events;
  ev.data.fd = fd;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, fd, &ev) != 0) {
    return Status::Internal(
        StrFormat("epoll_ctl(MOD fd %d) failed: %s", fd,
                  std::strerror(errno)));
  }
  return Status::OK();
}

void EventLoop::Remove(int fd) {
  // The fd may already be closed (kernel auto-removes it then) — EPERM /
  // EBADF / ENOENT here are not actionable.
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
  handlers_.erase(fd);
}

void EventLoop::Post(std::function<void()> fn) {
  {
    std::lock_guard<std::mutex> lock(tasks_mu_);
    tasks_.push_back(std::move(fn));
  }
  const uint64_t one = 1;
  // A full eventfd counter (EAGAIN) already guarantees a pending wakeup.
  [[maybe_unused]] ssize_t n = ::write(wake_fd_, &one, sizeof(one));
}

void EventLoop::RunAfter(double delay_ms, std::function<void()> fn) {
  Timer t;
  t.when = Clock::now() + std::chrono::duration_cast<Clock::duration>(
                              std::chrono::duration<double, std::milli>(
                                  delay_ms > 0 ? delay_ms : 0));
  t.seq = timer_seq_++;
  t.fn = std::move(fn);
  timers_.push(std::move(t));
}

void EventLoop::DrainWakeup() {
  uint64_t buf;
  while (::read(wake_fd_, &buf, sizeof(buf)) > 0) {
  }
}

void EventLoop::RunPostedTasks() {
  std::vector<std::function<void()>> batch;
  {
    std::lock_guard<std::mutex> lock(tasks_mu_);
    batch.swap(tasks_);
  }
  for (auto& fn : batch) fn();
}

void EventLoop::RunDueTimers() {
  const Clock::time_point now = Clock::now();
  while (!timers_.empty() && timers_.top().when <= now) {
    // top() is const; the function is copied, not moved — timers are rare
    // (accept backoff), so this is not a hot path.
    std::function<void()> fn = timers_.top().fn;
    timers_.pop();
    fn();
  }
}

int EventLoop::NextTimeoutMs() const {
  if (timers_.empty()) return -1;
  const auto delta = timers_.top().when - Clock::now();
  const auto ms =
      std::chrono::duration_cast<std::chrono::milliseconds>(delta).count();
  if (ms <= 0) return 0;
  if (ms > 60'000) return 60'000;
  return static_cast<int>(ms) + 1;  // round up so the timer is really due
}

bool EventLoop::InLoopThread() const {
  return loop_thread_.load(std::memory_order_acquire) ==
         std::this_thread::get_id();
}

void EventLoop::Run() {
  loop_thread_.store(std::this_thread::get_id(), std::memory_order_release);
  constexpr int kMaxEvents = 256;
  epoll_event events[kMaxEvents];
  while (!stopped()) {
    const int n = ::epoll_wait(epoll_fd_, events, kMaxEvents,
                               NextTimeoutMs());
    if (n < 0) {
      if (errno == EINTR) continue;
      break;  // epoll fd itself broke; nothing sane left to do
    }
    for (int i = 0; i < n; ++i) {
      const int fd = events[i].data.fd;
      if (fd == wake_fd_) {
        DrainWakeup();
        continue;
      }
      // Look the handler up at delivery time and invoke a copy: a handler
      // that removes its own (or a sibling's) registration mid-batch must
      // not invalidate what we are executing.
      auto it = handlers_.find(fd);
      if (it == handlers_.end()) continue;
      Handler h = it->second;
      h(events[i].events);
      if (stopped()) break;
    }
    RunDueTimers();
    RunPostedTasks();
  }
  // One final drain so tasks posted just before Stop() still run (the
  // server's shutdown handshake posts its last state transitions).
  RunPostedTasks();
}

void EventLoop::Stop() {
  stop_.store(true, std::memory_order_release);
  const uint64_t one = 1;
  [[maybe_unused]] ssize_t n = ::write(wake_fd_, &one, sizeof(one));
}

}  // namespace mrs
