#include "server/framing.h"

#include <cstdint>

#include "common/str_util.h"

namespace mrs {

namespace {

constexpr size_t kHeaderBytes = kFrameHeaderBytes;

uint32_t DecodeLength(const char* p) {
  return (static_cast<uint32_t>(static_cast<unsigned char>(p[0])) << 24) |
         (static_cast<uint32_t>(static_cast<unsigned char>(p[1])) << 16) |
         (static_cast<uint32_t>(static_cast<unsigned char>(p[2])) << 8) |
         static_cast<uint32_t>(static_cast<unsigned char>(p[3]));
}

}  // namespace

void EncodeFrameHeader(uint32_t n, char out[kFrameHeaderBytes]) {
  out[0] = static_cast<char>((n >> 24) & 0xff);
  out[1] = static_cast<char>((n >> 16) & 0xff);
  out[2] = static_cast<char>((n >> 8) & 0xff);
  out[3] = static_cast<char>(n & 0xff);
}

Result<std::string> EncodeFrame(std::string_view payload) {
  // The check must precede the uint32_t narrowing: without it a > 4 GiB
  // payload wraps the length prefix and the frame lies about its size
  // (and anything in (kMaxFrameBytes, 4 GiB] is a frame our own parser
  // rejects as corruption).
  if (payload.size() > kMaxFrameBytes) {
    return Status::InvalidArgument(
        StrFormat("payload of %zu bytes exceeds the %zu-byte frame cap",
                  payload.size(), kMaxFrameBytes));
  }
  char header[kHeaderBytes];
  EncodeFrameHeader(static_cast<uint32_t>(payload.size()), header);
  std::string frame;
  frame.reserve(kHeaderBytes + payload.size());
  frame.append(header, kHeaderBytes);
  frame.append(payload);
  return frame;
}

Status FrameParser::Append(const char* data, size_t n) {
  if (!status_.ok()) return status_;
  buffer_.append(data, n);
  while (buffer_.size() - pos_ >= kHeaderBytes) {
    const size_t len = DecodeLength(buffer_.data() + pos_);
    if (len > kMaxFrameBytes) {
      status_ = Status::InvalidArgument(
          StrFormat("frame length %zu exceeds the %zu-byte cap", len,
                    kMaxFrameBytes));
      return status_;
    }
    if (buffer_.size() - pos_ < kHeaderBytes + len) break;
    ready_.push_back(buffer_.substr(pos_ + kHeaderBytes, len));
    pos_ += kHeaderBytes + len;
  }
  // Compact the consumed prefix only when it dominates the buffer and is
  // big enough for the memmove to amortize — each byte is then moved O(1)
  // times overall, vs. once per frame with erase(0, ...).
  constexpr size_t kCompactBytes = 64 * 1024;
  if (pos_ == buffer_.size()) {
    buffer_.clear();
    pos_ = 0;
  } else if (pos_ >= kCompactBytes && pos_ >= buffer_.size() / 2) {
    buffer_.erase(0, pos_);
    pos_ = 0;
  }
  return Status::OK();
}

bool FrameParser::Next(std::string* out) {
  if (ready_.empty()) return false;
  *out = std::move(ready_.front());
  ready_.pop_front();
  return true;
}

Status SendFrame(Connection* conn, std::string_view payload) {
  std::string frame;
  MRS_ASSIGN_OR_RETURN(frame, EncodeFrame(payload));
  if (!conn->Write(frame.data(), static_cast<int>(frame.size()))) {
    return Status::Unavailable("connection dropped while sending a frame");
  }
  return Status::OK();
}

Result<std::string> ReadFrame(Connection* conn) {
  const auto read_exact = [conn](char* buf, size_t n,
                                 size_t* got) -> Status {
    *got = 0;
    while (*got < n) {
      const int r = conn->Read(buf + *got, static_cast<int>(n - *got));
      if (r < 0) return Status::Unavailable("connection read error");
      if (r == 0) return Status::OK();  // end of stream
      *got += static_cast<size_t>(r);
    }
    return Status::OK();
  };

  char header[kHeaderBytes];
  size_t got = 0;
  MRS_RETURN_IF_ERROR(read_exact(header, kHeaderBytes, &got));
  if (got == 0) return Status::NotFound("end of stream");
  if (got < kHeaderBytes) {
    return Status::InvalidArgument("stream truncated inside a frame header");
  }
  const size_t len = DecodeLength(header);
  if (len > kMaxFrameBytes) {
    return Status::InvalidArgument(
        StrFormat("frame length %zu exceeds the %zu-byte cap", len,
                  kMaxFrameBytes));
  }
  std::string payload(len, '\0');
  if (len > 0) {
    MRS_RETURN_IF_ERROR(read_exact(payload.data(), len, &got));
    if (got < len) {
      return Status::InvalidArgument("stream truncated inside a frame");
    }
  }
  return payload;
}

}  // namespace mrs
