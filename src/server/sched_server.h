#ifndef MRS_SERVER_SCHED_SERVER_H_
#define MRS_SERVER_SCHED_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/status.h"
#include "server/sched_service.h"
#include "server/transport.h"

namespace mrs {

/// Front-end of the scheduling service: accepts connections (TCP via
/// Start, or any Connection via ServeConnection) and runs the one-frame-
/// request / one-frame-response loop against a SchedService.
///
/// Shutdown drains: it stops accepting, half-closes the read side of
/// every live connection, waits for in-flight requests to finish and
/// their responses to be written, then joins all serving threads. A
/// request that was fully received before Shutdown always gets its
/// response.
class SchedServer {
 public:
  /// `service` is not owned and must outlive the server.
  explicit SchedServer(SchedService* service);
  ~SchedServer();

  SchedServer(const SchedServer&) = delete;
  SchedServer& operator=(const SchedServer&) = delete;

  /// Binds a TCP listener (port 0 = ephemeral; see port()) and starts the
  /// accept thread.
  Status Start(const std::string& host = "127.0.0.1", int port = 0);

  /// Bound TCP port; 0 when Start was not called.
  int port() const;

  /// Serves one connection on the caller's thread until the peer closes
  /// or the server shuts down. Used directly with an in-process pipe
  /// endpoint for deterministic tests and benches; Start's accept loop
  /// uses it too. Does not close `conn` (the caller owns it).
  void ServeConnection(Connection* conn);

  /// Drain-and-stop; idempotent, safe without Start.
  void Shutdown();

  bool shutting_down() const {
    return shutdown_.load(std::memory_order_acquire);
  }

 private:
  void AcceptLoop();
  void Register(Connection* conn);
  void Unregister(Connection* conn);

  SchedService* service_;
  SocketListener listener_;
  bool started_ = false;
  std::thread accept_thread_;
  std::atomic<bool> shutdown_{false};

  std::mutex mu_;
  std::condition_variable idle_cv_;
  /// Connections currently inside ServeConnection (any thread).
  std::vector<Connection*> live_;
  /// Accept-loop connections and their serving threads (owned).
  std::vector<std::unique_ptr<Connection>> owned_;
  std::vector<std::thread> conn_threads_;
};

}  // namespace mrs

#endif  // MRS_SERVER_SCHED_SERVER_H_
