#ifndef MRS_SERVER_SCHED_SERVER_H_
#define MRS_SERVER_SCHED_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/metrics.h"
#include "common/status.h"
#include "server/framing.h"
#include "server/sched_service.h"
#include "server/transport.h"

namespace mrs {

struct SchedServerOptions {
  /// Front-end engine for TCP connections accepted through Start().
  /// true: one epoll reactor thread drives every connection's state
  /// machine and a small worker pool runs SchedService::Handle — the
  /// thread count is O(workers), not O(connections), so one replica holds
  /// 100k idle sockets. false: the PR3 thread-per-connection oracle,
  /// retained as the differential reference (byte-identical response
  /// streams for the same request streams).
  bool reactor = true;

  /// Worker threads running SchedService::Handle under the reactor. The
  /// service serializes scheduling on its own mutex, so this pool exists
  /// to keep a long Handle (a 50-join monster) from stalling I/O, not to
  /// parallelize scheduling; a handful is plenty.
  int worker_threads = 2;

  /// Per-connection cap on buffered unsent response bytes. A connection
  /// whose peer stops reading while responses keep queueing is closed
  /// with a typed error (server.backlog_closed) once its backlog tops
  /// this — backpressure by disconnection, never by blocking the loop.
  /// Must exceed kMaxFrameBytes + 4 or a single maximal response could
  /// trip it; the default gives 4 maximal frames of slack.
  size_t max_write_backlog_bytes = 4 * (kMaxFrameBytes + kFrameHeaderBytes);

  /// Accept backoff after EMFILE/ENFILE-style resource pressure.
  double accept_backoff_ms = 50.0;

  /// Registry for the server.* metrics; nullptr uses the global one.
  MetricsRegistry* metrics = nullptr;
};

/// Cached handles for the server.* metrics (creation takes the registry
/// lock; recording is lock-free, so handles are resolved once).
struct ServerMetrics {
  explicit ServerMetrics(MetricsRegistry* registry);

  Counter* bytes_in;          ///< payload+header bytes read off sockets
  Counter* bytes_out;         ///< payload+header bytes written to sockets
  Counter* accept_errors;     ///< transient accept failures survived
  Counter* protocol_errors;   ///< connections dropped for bad framing
  Counter* backlog_closed;    ///< connections dropped over the write cap
  Counter* epoll_errors;      ///< connections dropped: epoll re-arm failed
  Gauge* connections;         ///< currently open connections
  Gauge* write_backlog;       ///< total unsent response bytes buffered
  Histogram* request_ms;      ///< frame fully parsed -> response flushed
};

/// Front-end of the scheduling service: accepts connections (TCP via
/// Start, or any Connection via ServeConnection) and runs the one-frame-
/// request / one-frame-response loop against a SchedService.
///
/// Start() serves TCP through one of two engines (SchedServerOptions::
/// reactor): the epoll reactor (default) or the thread-per-connection
/// oracle. ServeConnection() always runs the blocking loop on the
/// caller's thread (in-process pipes have no fd to poll).
///
/// Shutdown drains: it stops accepting, stops reading from every live
/// connection, waits for requests already parsed to finish and their
/// responses to be written, then tears the engine down. A request that
/// was fully received before Shutdown always gets its response.
class SchedServer {
 public:
  /// `service` is not owned and must outlive the server.
  explicit SchedServer(SchedService* service,
                       const SchedServerOptions& options = {});
  ~SchedServer();

  SchedServer(const SchedServer&) = delete;
  SchedServer& operator=(const SchedServer&) = delete;

  /// Binds a TCP listener (port 0 = ephemeral; see port()) and starts the
  /// configured engine.
  Status Start(const std::string& host = "127.0.0.1", int port = 0);

  /// Bound TCP port; 0 when Start was not called.
  int port() const;

  /// Serves one connection on the caller's thread until the peer closes
  /// or the server shuts down. Used directly with an in-process pipe
  /// endpoint for deterministic tests and benches; the threaded accept
  /// loop uses it too. Does not close `conn` (the caller owns it).
  void ServeConnection(Connection* conn);

  /// Drain-and-stop; idempotent, safe without Start.
  void Shutdown();

  bool shutting_down() const {
    return shutdown_.load(std::memory_order_acquire);
  }

  const SchedServerOptions& options() const { return options_; }

 private:
  struct Reactor;  // epoll engine; defined in sched_server.cc

  void AcceptLoop();
  void Register(Connection* conn);
  void Unregister(Connection* conn);

  SchedService* service_;
  SchedServerOptions options_;
  ServerMetrics metrics_;
  SocketListener listener_;
  bool started_ = false;
  std::atomic<bool> shutdown_{false};

  // Reactor engine (options_.reactor).
  std::unique_ptr<Reactor> reactor_;

  // Threaded engine (oracle path) + ServeConnection bookkeeping.
  std::thread accept_thread_;
  std::mutex mu_;
  std::condition_variable idle_cv_;
  /// Connections currently inside ServeConnection (any thread).
  std::vector<Connection*> live_;
  /// Accept-loop connections and their serving threads (owned).
  std::vector<std::unique_ptr<Connection>> owned_;
  std::vector<std::thread> conn_threads_;
};

}  // namespace mrs

#endif  // MRS_SERVER_SCHED_SERVER_H_
