#ifndef MRS_SERVER_SCHED_CLIENT_H_
#define MRS_SERVER_SCHED_CLIENT_H_

#include <memory>
#include <string>
#include <utility>

#include "common/result.h"
#include "server/transport.h"

namespace mrs {

/// Blocking request/response client of the scheduling service: one frame
/// out, one frame back. Works over any Connection (TCP or an in-process
/// pipe endpoint). Not thread-safe; use one client per thread.
class SchedClient {
 public:
  explicit SchedClient(std::unique_ptr<Connection> conn)
      : conn_(std::move(conn)) {}

  /// Connects to a SchedServer over TCP.
  static Result<SchedClient> ConnectTcp(const std::string& host, int port);

  /// One round trip: sends `request`, returns the response payload.
  Result<std::string> Call(const std::string& request);

  void Close() {
    if (conn_ != nullptr) conn_->Close();
  }

  Connection* connection() { return conn_.get(); }

 private:
  std::unique_ptr<Connection> conn_;
};

}  // namespace mrs

#endif  // MRS_SERVER_SCHED_CLIENT_H_
