#ifndef MRS_SERVER_SCHED_SERVICE_H_
#define MRS_SERVER_SCHED_SERVICE_H_

#include <mutex>
#include <string>

#include "cost/cost_params.h"
#include "online/online_scheduler.h"
#include "resource/machine.h"

namespace mrs {

struct SchedServiceOptions {
  CostParams params;
  MachineConfig machine;
  OnlineSchedulerOptions online;
};

/// The request/response core of the scheduling server, transport-free so
/// in-process tests and the socket front-end share one code path.
///
/// Request payload: optional leading directive lines, then plan text
/// (io/plan_text.h):
///
///   @arrival 120.5      # virtual arrival time in ms (default: now)
///   @timeout 50         # queue-wait budget in ms (default: admission's)
///   relation customer 30000
///   ...
///
/// Response payload: one JSON object.
///   admitted:  {"status":"ok","id":N,"arrival_ms":...,"admit_ms":...,
///               "queue_wait_ms":...,"finish_ms":...,"response_ms":...,
///               "schedule":<TreeScheduleToJson>}
///   rejected:  {"status":"rejected","code":"Unavailable","message":...}
///   timed out: {"status":"timeout","code":"DeadlineExceeded","message":...}
///   bad input: {"status":"error","code":...,"message":...}
///
/// Handle() serializes requests on an internal mutex (the scheduler is
/// single-threaded by design), so concurrent connections are safe; on an
/// otherwise idle system the embedded "schedule" JSON is byte-identical
/// to the offline TreeScheduleToJson output for the same plan.
class SchedService {
 public:
  explicit SchedService(const SchedServiceOptions& options = {});
  virtual ~SchedService() = default;

  /// Processes one request payload into one response payload. Never
  /// throws; malformed input yields an "error" response. Virtual so the
  /// reactor-vs-threaded differential tests can substitute deterministic
  /// or adversarial (slow, oversized) handlers for the real scheduler.
  virtual std::string Handle(const std::string& request);

  /// The underlying scheduler. Callers must not touch it while another
  /// thread may be inside Handle (test/diagnostic aid).
  OnlineScheduler* scheduler() { return &scheduler_; }

 private:
  std::mutex mu_;
  OnlineScheduler scheduler_;
};

}  // namespace mrs

#endif  // MRS_SERVER_SCHED_SERVICE_H_
