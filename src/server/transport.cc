#include "server/transport.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <condition_variable>
#include <cstring>
#include <deque>
#include <mutex>

#include "common/str_util.h"

namespace mrs {

namespace {

/// One direction of the in-process pipe: a byte queue with writer-closed
/// and reader-shutdown flags.
struct PipeChannel {
  std::mutex mu;
  std::condition_variable cv;
  std::deque<char> bytes;
  bool writer_closed = false;
  bool reader_shutdown = false;
};

struct PipeShared {
  // channel[0]: endpoint A writes, endpoint B reads; channel[1] reverse.
  PipeChannel channel[2];
};

class PipeEndpoint : public Connection {
 public:
  PipeEndpoint(std::shared_ptr<PipeShared> shared, int read_idx)
      : shared_(std::move(shared)), read_idx_(read_idx) {}

  ~PipeEndpoint() override { Close(); }

  int Read(char* buf, int n) override {
    if (n <= 0) return 0;
    PipeChannel& ch = shared_->channel[read_idx_];
    std::unique_lock<std::mutex> lock(ch.mu);
    ch.cv.wait(lock, [&ch] {
      return !ch.bytes.empty() || ch.writer_closed || ch.reader_shutdown;
    });
    if (ch.reader_shutdown) return 0;
    if (ch.bytes.empty()) return 0;  // writer closed, buffer drained
    int copied = 0;
    while (copied < n && !ch.bytes.empty()) {
      buf[copied++] = ch.bytes.front();
      ch.bytes.pop_front();
    }
    return copied;
  }

  bool Write(const char* data, int n) override {
    PipeChannel& ch = shared_->channel[1 - read_idx_];
    std::lock_guard<std::mutex> lock(ch.mu);
    if (ch.writer_closed) return false;  // we already closed our side
    if (ch.reader_shutdown) return true;  // peer discards, like SHUT_RD
    ch.bytes.insert(ch.bytes.end(), data, data + n);
    ch.cv.notify_all();
    return true;
  }

  void ShutdownRead() override {
    PipeChannel& ch = shared_->channel[read_idx_];
    std::lock_guard<std::mutex> lock(ch.mu);
    ch.reader_shutdown = true;
    ch.cv.notify_all();
  }

  void Close() override {
    {
      PipeChannel& out = shared_->channel[1 - read_idx_];
      std::lock_guard<std::mutex> lock(out.mu);
      out.writer_closed = true;
      out.cv.notify_all();
    }
    ShutdownRead();
  }

 private:
  std::shared_ptr<PipeShared> shared_;
  int read_idx_;
};

class SocketConnection : public Connection {
 public:
  explicit SocketConnection(int fd) : fd_(fd) {}

  ~SocketConnection() override { Close(); }

  int Read(char* buf, int n) override {
    while (true) {
      const int fd = fd_.load(std::memory_order_acquire);
      if (fd < 0) return 0;
      const ssize_t got = ::recv(fd, buf, static_cast<size_t>(n), 0);
      if (got >= 0) return static_cast<int>(got);
      if (errno == EINTR) continue;
      return -1;
    }
  }

  bool Write(const char* data, int n) override {
    int sent = 0;
    while (sent < n) {
      const int fd = fd_.load(std::memory_order_acquire);
      if (fd < 0) return false;
      const ssize_t put = ::send(fd, data + sent,
                                 static_cast<size_t>(n - sent), MSG_NOSIGNAL);
      if (put < 0) {
        if (errno == EINTR) continue;
        return false;
      }
      sent += static_cast<int>(put);
    }
    return true;
  }

  void ShutdownRead() override {
    const int fd = fd_.load(std::memory_order_acquire);
    if (fd >= 0) ::shutdown(fd, SHUT_RD);
  }

  void Close() override {
    const int fd = fd_.exchange(-1, std::memory_order_acq_rel);
    if (fd >= 0) {
      ::shutdown(fd, SHUT_RDWR);
      ::close(fd);
    }
  }

 private:
  std::atomic<int> fd_;
};

}  // namespace

std::pair<std::unique_ptr<Connection>, std::unique_ptr<Connection>>
CreateInProcessPipe() {
  auto shared = std::make_shared<PipeShared>();
  auto a = std::make_unique<PipeEndpoint>(shared, 1);  // reads channel 1
  auto b = std::make_unique<PipeEndpoint>(shared, 0);  // reads channel 0
  return {std::move(a), std::move(b)};
}

Result<std::unique_ptr<Connection>> ConnectTcp(const std::string& host,
                                               int port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::Internal(
        StrFormat("socket() failed: %s", std::strerror(errno)));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Status::InvalidArgument(
        StrFormat("not an IPv4 address: %s", host.c_str()));
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const int err = errno;
    ::close(fd);
    return Status::Unavailable(StrFormat("connect %s:%d failed: %s",
                                         host.c_str(), port,
                                         std::strerror(err)));
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return std::unique_ptr<Connection>(new SocketConnection(fd));
}

Status SetNonBlocking(int fd, bool nonblocking) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0) {
    return Status::Internal(
        StrFormat("fcntl(F_GETFL) failed: %s", std::strerror(errno)));
  }
  const int wanted =
      nonblocking ? (flags | O_NONBLOCK) : (flags & ~O_NONBLOCK);
  if (wanted != flags && ::fcntl(fd, F_SETFL, wanted) != 0) {
    return Status::Internal(
        StrFormat("fcntl(F_SETFL) failed: %s", std::strerror(errno)));
  }
  return Status::OK();
}

SocketListener::~SocketListener() { Close(); }

Status SocketListener::Listen(const std::string& host, int port) {
  if (fd_ >= 0) return Status::FailedPrecondition("already listening");
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::Internal(
        StrFormat("socket() failed: %s", std::strerror(errno)));
  }
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Status::InvalidArgument(
        StrFormat("not an IPv4 address: %s", host.c_str()));
  }
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const int err = errno;
    ::close(fd);
    return Status::Unavailable(StrFormat("bind %s:%d failed: %s", host.c_str(),
                                         port, std::strerror(err)));
  }
  // A deep backlog matters for the connection-scaling bench: tens of
  // thousands of connects arrive faster than the reactor accepts them.
  // The kernel clamps this to net.core.somaxconn.
  if (::listen(fd, 4096) != 0) {
    const int err = errno;
    ::close(fd);
    return Status::Internal(
        StrFormat("listen failed: %s", std::strerror(err)));
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) != 0) {
    const int err = errno;
    ::close(fd);
    return Status::Internal(
        StrFormat("getsockname failed: %s", std::strerror(err)));
  }
  fd_ = fd;
  port_ = static_cast<int>(ntohs(bound.sin_port));
  return Status::OK();
}

Result<std::unique_ptr<Connection>> SocketListener::Accept() {
  const int fd = fd_.load(std::memory_order_acquire);
  if (fd < 0) return Status::FailedPrecondition("listener closed");
  while (true) {
    const int conn = ::accept(fd, nullptr, nullptr);
    if (conn >= 0) {
      const int one = 1;
      ::setsockopt(conn, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      return std::unique_ptr<Connection>(new SocketConnection(conn));
    }
    const int err = errno;
    if (err == EINTR || err == ECONNABORTED) continue;
    // A concurrent Close() surfaces as EBADF/EINVAL on the old fd; report
    // it as the listener going away, not as an accept malfunction.
    if (fd_.load(std::memory_order_acquire) < 0) {
      return Status::FailedPrecondition("listener closed");
    }
    if (err == EMFILE || err == ENFILE || err == ENOBUFS || err == ENOMEM) {
      return Status::Unavailable(
          StrFormat("accept hit resource pressure: %s", std::strerror(err)));
    }
    return Status::Internal(
        StrFormat("accept failed: %s", std::strerror(err)));
  }
}

void SocketListener::Close() {
  const int fd = fd_.exchange(-1, std::memory_order_acq_rel);
  if (fd >= 0) {
    // shutdown() (not just close) reliably unblocks a concurrent accept.
    ::shutdown(fd, SHUT_RDWR);
    ::close(fd);
  }
}

}  // namespace mrs
