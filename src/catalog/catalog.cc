#include "catalog/catalog.h"

#include "common/str_util.h"

namespace mrs {

Result<int> Catalog::AddRelation(Relation relation) {
  if (relation.name.empty()) {
    return Status::InvalidArgument("relation name must not be empty");
  }
  if (relation.num_tuples < 0) {
    return Status::InvalidArgument(
        StrFormat("relation %s has negative cardinality",
                  relation.name.c_str()));
  }
  if (relation.layout.tuple_bytes <= 0 ||
      relation.layout.tuples_per_page <= 0) {
    return Status::InvalidArgument(
        StrFormat("relation %s has non-positive layout",
                  relation.name.c_str()));
  }
  if (by_name_.contains(relation.name)) {
    return Status::InvalidArgument(
        StrFormat("duplicate relation name %s", relation.name.c_str()));
  }
  const int id = static_cast<int>(relations_.size());
  by_name_.emplace(relation.name, id);
  relations_.push_back(std::move(relation));
  return id;
}

Result<Relation> Catalog::GetRelation(int id) const {
  if (id < 0 || id >= num_relations()) {
    return Status::NotFound(StrFormat("no relation with id %d", id));
  }
  return relations_[static_cast<size_t>(id)];
}

Result<Relation> Catalog::GetRelationByName(const std::string& name) const {
  auto it = by_name_.find(name);
  if (it == by_name_.end()) {
    return Status::NotFound(StrFormat("no relation named %s", name.c_str()));
  }
  return relations_[static_cast<size_t>(it->second)];
}

int64_t Catalog::TotalTuples() const {
  int64_t total = 0;
  for (const auto& r : relations_) total += r.num_tuples;
  return total;
}

std::string Catalog::ToString() const {
  std::vector<std::string> lines;
  lines.reserve(relations_.size());
  for (const auto& r : relations_) lines.push_back("  " + r.ToString());
  return StrFormat("Catalog(%d relations):\n", num_relations()) +
         StrJoin(lines, "\n");
}

}  // namespace mrs
