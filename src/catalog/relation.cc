#include "catalog/relation.h"

#include <algorithm>

#include "common/str_util.h"

namespace mrs {

int64_t Relation::NumPages() const {
  if (num_tuples <= 0) return 0;
  return (num_tuples + layout.tuples_per_page - 1) / layout.tuples_per_page;
}

int64_t Relation::NumBytes() const {
  return num_tuples * layout.tuple_bytes;
}

std::string Relation::ToString() const {
  return StrFormat("%s(|R|=%lld tuples, %lld pages, %s)", name.c_str(),
                   static_cast<long long>(num_tuples),
                   static_cast<long long>(NumPages()),
                   FormatBytes(static_cast<double>(NumBytes())).c_str());
}

int64_t KeyJoinResultTuples(int64_t left_tuples, int64_t right_tuples) {
  return std::max(left_tuples, right_tuples);
}

}  // namespace mrs
