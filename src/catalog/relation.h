#ifndef MRS_CATALOG_RELATION_H_
#define MRS_CATALOG_RELATION_H_

#include <cstdint>
#include <string>

namespace mrs {

/// Storage geometry shared by all relations (paper Table 2 defaults:
/// 128-byte tuples, 40 tuples per page).
struct TupleLayout {
  int tuple_bytes = 128;
  int tuples_per_page = 40;

  int64_t PageBytes() const {
    return static_cast<int64_t>(tuple_bytes) * tuples_per_page;
  }
};

/// A (base or intermediate) relation: a named bag of fixed-size tuples.
/// Intermediate join results are also described as Relations so that the
/// cost model treats base and derived inputs uniformly.
struct Relation {
  std::string name;
  int64_t num_tuples = 0;
  TupleLayout layout;

  /// Number of pages, rounded up; 0 tuples occupy 0 pages.
  int64_t NumPages() const;

  /// Total size in bytes (tuples * tuple size).
  int64_t NumBytes() const;

  std::string ToString() const;
};

/// Result cardinality of a key join (paper §6.1): "simple key join
/// operations in which the size of the result relation is always equal to
/// the size of the largest of the two join operands".
int64_t KeyJoinResultTuples(int64_t left_tuples, int64_t right_tuples);

}  // namespace mrs

#endif  // MRS_CATALOG_RELATION_H_
