#ifndef MRS_CATALOG_CATALOG_H_
#define MRS_CATALOG_CATALOG_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "catalog/relation.h"
#include "common/result.h"
#include "common/status.h"

namespace mrs {

/// Holds the base relations of a query's database instance. Relations are
/// identified by a dense integer id (their insertion order) and by name.
/// The workload generator populates one Catalog per generated query.
class Catalog {
 public:
  Catalog() = default;

  /// Adds a relation; fails if a relation with the same name exists or the
  /// relation is malformed (negative cardinality, non-positive layout).
  Result<int> AddRelation(Relation relation);

  /// Looks up by dense id.
  Result<Relation> GetRelation(int id) const;

  /// Looks up by name.
  Result<Relation> GetRelationByName(const std::string& name) const;

  int num_relations() const { return static_cast<int>(relations_.size()); }
  const std::vector<Relation>& relations() const { return relations_; }

  /// Sum of tuple counts over all relations.
  int64_t TotalTuples() const;

  std::string ToString() const;

 private:
  std::vector<Relation> relations_;
  std::unordered_map<std::string, int> by_name_;
};

}  // namespace mrs

#endif  // MRS_CATALOG_CATALOG_H_
