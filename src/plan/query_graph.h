#ifndef MRS_PLAN_QUERY_GRAPH_H_
#define MRS_PLAN_QUERY_GRAPH_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace mrs {

/// An undirected join edge between two relations (referenced by their
/// Catalog ids). The experiments use key joins, so no selectivity is
/// attached: result sizing follows KeyJoinResultTuples.
struct JoinEdge {
  int left_relation = -1;
  int right_relation = -1;
};

/// The join graph of a query: vertices are relations, edges are join
/// predicates. The paper's experiments use *tree* queries (acyclic,
/// connected: J joins over J+1 relations); the class supports general
/// graphs but provides acyclicity/connectivity validation for the tree
/// workloads.
class QueryGraph {
 public:
  /// `num_relations` vertices, no edges.
  explicit QueryGraph(int num_relations);

  /// Adds an undirected join edge; fails on out-of-range vertices, self
  /// joins, and duplicate edges.
  Status AddJoin(int left_relation, int right_relation);

  int num_relations() const { return num_relations_; }
  int num_joins() const { return static_cast<int>(edges_.size()); }
  const std::vector<JoinEdge>& edges() const { return edges_; }

  /// Edge ids incident to `relation`.
  const std::vector<int>& IncidentEdges(int relation) const;

  /// True iff every relation is reachable from relation 0 (or the graph is
  /// empty).
  bool IsConnected() const;

  /// True iff the graph contains no cycle.
  bool IsAcyclic() const;

  /// Tree query = connected and acyclic (J edges over J+1 vertices).
  bool IsTree() const { return IsConnected() && IsAcyclic(); }

  std::string ToString() const;

 private:
  int num_relations_;
  std::vector<JoinEdge> edges_;
  std::vector<std::vector<int>> incident_;  // relation -> edge ids
};

}  // namespace mrs

#endif  // MRS_PLAN_QUERY_GRAPH_H_
