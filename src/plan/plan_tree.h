#ifndef MRS_PLAN_PLAN_TREE_H_
#define MRS_PLAN_PLAN_TREE_H_

#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "catalog/relation.h"
#include "common/result.h"
#include "common/status.h"

namespace mrs {

/// Logical kinds of plan-tree nodes. Joins are hash joins; kSort is an
/// order-by / merge-feeding external sort; kAggregate is a hash-based
/// group-by. Sorts and aggregates are *blocking* unary operators: their
/// output stream starts only after the input is fully consumed.
enum class PlanNodeKind { kLeaf, kJoin, kSort, kAggregate };

std::string_view PlanNodeKindToString(PlanNodeKind kind);

/// A node of a bushy execution plan tree: a base-relation leaf, a binary
/// hash join, or a blocking unary operator (sort / aggregate). By
/// convention a join's *inner* child feeds the hash build and its *outer*
/// child feeds the probe.
struct PlanNode {
  int id = -1;
  PlanNodeKind kind = PlanNodeKind::kLeaf;

  bool is_leaf = false;  ///< kind == kLeaf (kept for ergonomic checks)

  /// Leaf only: Catalog id of the scanned base relation.
  int relation_id = -1;

  /// Join only: child plan-node ids.
  int outer_child = -1;  ///< probe input
  int inner_child = -1;  ///< build input

  /// Unary operators only: the input plan node.
  int unary_child = -1;

  /// Aggregates only: |groups| / |input|.
  double group_fraction = 1.0;

  /// Cardinality and layout of this node's output stream.
  Relation output;
};

/// A bushy execution plan tree (paper Figure 1(a)). Built bottom-up with
/// AddLeaf/AddJoin; every node except the root must be consumed by exactly
/// one join. Join output cardinalities follow the key-join rule of §6.1.
class PlanTree {
 public:
  explicit PlanTree(const Catalog* catalog);

  /// Adds a leaf scanning `relation_id`; returns the new node id.
  Result<int> AddLeaf(int relation_id);

  /// Adds a hash join of two existing, not-yet-consumed nodes; returns the
  /// new node id. `outer` feeds the probe, `inner` feeds the build.
  Result<int> AddJoin(int outer, int inner);

  /// Adds a blocking sort on top of `child` (same output cardinality).
  Result<int> AddSort(int child);

  /// Adds a hash group-by on top of `child`; the output has
  /// ceil(|child| * group_fraction) tuples. Requires 0 < group_fraction
  /// <= 1.
  Result<int> AddAggregate(int child, double group_fraction = 0.1);

  /// Verifies the tree is complete: exactly one unconsumed node (the root)
  /// and at least one node. Must be called (and succeed) before the tree
  /// is handed to the operator-tree expansion.
  Status Finalize();

  bool finalized() const { return finalized_; }
  int root() const { return root_; }
  int num_nodes() const { return static_cast<int>(nodes_.size()); }
  int num_joins() const { return num_joins_; }
  int num_leaves() const { return num_nodes() - num_joins_; }
  const PlanNode& node(int id) const;
  const Catalog& catalog() const { return *catalog_; }

  /// Depth of the deepest node (a single leaf has height 0).
  int Height() const;

  /// Number of unary (sort/aggregate) nodes.
  int num_unary() const { return num_unary_; }

  /// Nested-parenthesis rendering, e.g. "((R0 ⋈ R1) ⋈ R2)".
  std::string ToString() const;

 private:
  int HeightBelow(int id) const;
  /// Checks a prospective child is a valid, unconsumed node; marks it
  /// consumed on success.
  Status ConsumeChild(int child);

  const Catalog* catalog_;
  std::vector<PlanNode> nodes_;
  std::vector<bool> consumed_;
  int num_joins_ = 0;
  int num_unary_ = 0;
  int root_ = -1;
  bool finalized_ = false;
};

}  // namespace mrs

#endif  // MRS_PLAN_PLAN_TREE_H_
