#ifndef MRS_PLAN_TASK_TREE_H_
#define MRS_PLAN_TASK_TREE_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "plan/operator_tree.h"

namespace mrs {

/// A query task (paper §3.1): a maximal subgraph of the operator tree
/// connected by pipelining edges only — i.e. one operator pipeline whose
/// operators execute concurrently.
struct QueryTask {
  int id = -1;
  /// Operator ids in this pipeline.
  std::vector<int> ops;
  /// Parent task (the task containing the consumer across our terminating
  /// blocking edge); -1 for the root task.
  int parent = -1;
  std::vector<int> children;
  /// Distance from the root task (root = 0). Tasks are executed in phases
  /// of decreasing depth (ALAP / MinShelf, paper §5.4).
  int depth = 0;
};

/// The query task tree (paper Figure 1(c)): tasks as nodes, blocking
/// edges between them. Provides the synchronized-phase (shelf)
/// decomposition used by TREESCHEDULE: phase k contains all tasks at depth
/// height - k, so each task runs in the phase closest to the root that
/// respects the blocking constraints (the MinShelf policy of Tan and Lu).
class TaskTree {
 public:
  /// An empty tree; assign from FromOperatorTree before use.
  TaskTree() = default;

  /// Groups `ops` into tasks via pipelined-edge connectivity and links
  /// tasks through blocking edges. Also back-fills PhysicalOp::task in
  /// `ops` (hence the mutable pointer).
  static Result<TaskTree> FromOperatorTree(OperatorTree* ops);

  int num_tasks() const { return static_cast<int>(tasks_.size()); }
  const QueryTask& task(int id) const;
  const std::vector<QueryTask>& tasks() const { return tasks_; }
  int root_task() const { return root_task_; }

  /// Height of the task tree = number of phases - 1. A single-task tree
  /// has height 0 (one phase).
  int height() const { return height_; }
  int num_phases() const { return height_ + 1; }

  /// Phase k (k = 0 first) -> task ids executed in that phase.
  const std::vector<int>& phase(int k) const;

  /// All operator ids executed in phase k, across its tasks.
  std::vector<int> PhaseOps(int k) const;

  std::string ToString() const;

 private:
  std::vector<QueryTask> tasks_;
  std::vector<std::vector<int>> phases_;
  int root_task_ = -1;
  int height_ = 0;
};

}  // namespace mrs

#endif  // MRS_PLAN_TASK_TREE_H_
