#include "plan/task_tree.h"

#include <algorithm>

#include "common/logging.h"
#include "common/str_util.h"

namespace mrs {

Result<TaskTree> TaskTree::FromOperatorTree(OperatorTree* op_tree) {
  if (op_tree == nullptr || op_tree->num_ops() == 0) {
    return Status::InvalidArgument("task tree requires a non-empty operator tree");
  }
  const int n = op_tree->num_ops();

  // Union-find over pipelined (data) edges.
  std::vector<int> parent(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) parent[static_cast<size_t>(i)] = i;
  auto find = [&](int x) {
    while (parent[static_cast<size_t>(x)] != x) {
      parent[static_cast<size_t>(x)] =
          parent[static_cast<size_t>(parent[static_cast<size_t>(x)])];
      x = parent[static_cast<size_t>(x)];
    }
    return x;
  };
  auto unite = [&](int a, int b) {
    a = find(a);
    b = find(b);
    if (a != b) parent[static_cast<size_t>(a)] = b;
  };
  for (int i = 0; i < n; ++i) {
    for (int in : op_tree->op(i).data_inputs) unite(i, in);
  }

  // Dense task ids per component.
  TaskTree tree;
  std::vector<int> comp_to_task(static_cast<size_t>(n), -1);
  for (int i = 0; i < n; ++i) {
    const int c = find(i);
    if (comp_to_task[static_cast<size_t>(c)] == -1) {
      comp_to_task[static_cast<size_t>(c)] =
          static_cast<int>(tree.tasks_.size());
      QueryTask t;
      t.id = comp_to_task[static_cast<size_t>(c)];
      tree.tasks_.push_back(t);
    }
    const int tid = comp_to_task[static_cast<size_t>(c)];
    tree.tasks_[static_cast<size_t>(tid)].ops.push_back(i);
    op_tree->mutable_op(i).task = tid;
  }

  // Blocking edges (build -> probe, sort run -> merge, agg accumulate ->
  // emit) define the task tree: the consumer's task is the parent of the
  // producer's task.
  for (int i = 0; i < n; ++i) {
    const PhysicalOp& o = op_tree->op(i);
    if (o.blocking_input < 0) continue;
    const int build = o.blocking_input;
    const int child_task = op_tree->op(build).task;
    const int parent_task = o.task;
    MRS_CHECK(child_task != parent_task)
        << "blocking edge inside a single task: operator tree is malformed";
    QueryTask& child = tree.tasks_[static_cast<size_t>(child_task)];
    if (child.parent != -1 && child.parent != parent_task) {
      return Status::Internal(
          StrFormat("task %d has two parents (%d and %d)", child_task,
                    child.parent, parent_task));
    }
    if (child.parent == -1) {
      child.parent = parent_task;
      tree.tasks_[static_cast<size_t>(parent_task)].children.push_back(
          child_task);
    }
  }

  // Root and depths.
  tree.root_task_ = op_tree->op(op_tree->root_op()).task;
  MRS_CHECK(tree.tasks_[static_cast<size_t>(tree.root_task_)].parent == -1)
      << "root task must not have a parent";
  // BFS from root; also verifies every task is reachable (tree-ness).
  std::vector<int> order = {tree.root_task_};
  tree.tasks_[static_cast<size_t>(tree.root_task_)].depth = 0;
  for (size_t k = 0; k < order.size(); ++k) {
    const QueryTask& t = tree.tasks_[static_cast<size_t>(order[k])];
    for (int c : t.children) {
      tree.tasks_[static_cast<size_t>(c)].depth = t.depth + 1;
      order.push_back(c);
    }
  }
  if (order.size() != tree.tasks_.size()) {
    return Status::Internal("task graph is not a tree (unreachable tasks)");
  }

  tree.height_ = 0;
  for (const auto& t : tree.tasks_) tree.height_ = std::max(tree.height_, t.depth);

  // Phase k executes tasks at depth (height - k): deepest tasks first, the
  // root task last. This is the ALAP placement: each task runs in the phase
  // closest to the root that still precedes its parent.
  tree.phases_.assign(static_cast<size_t>(tree.height_ + 1), {});
  for (const auto& t : tree.tasks_) {
    tree.phases_[static_cast<size_t>(tree.height_ - t.depth)].push_back(t.id);
  }
  return tree;
}

const QueryTask& TaskTree::task(int id) const {
  MRS_CHECK(id >= 0 && id < num_tasks()) << "task " << id << " out of range";
  return tasks_[static_cast<size_t>(id)];
}

const std::vector<int>& TaskTree::phase(int k) const {
  MRS_CHECK(k >= 0 && k < num_phases()) << "phase " << k << " out of range";
  return phases_[static_cast<size_t>(k)];
}

std::vector<int> TaskTree::PhaseOps(int k) const {
  std::vector<int> out;
  for (int tid : phase(k)) {
    const QueryTask& t = task(tid);
    out.insert(out.end(), t.ops.begin(), t.ops.end());
  }
  return out;
}

std::string TaskTree::ToString() const {
  std::vector<std::string> lines;
  for (const auto& t : tasks_) {
    std::vector<std::string> ops;
    ops.reserve(t.ops.size());
    for (int o : t.ops) ops.push_back(StrFormat("op%d", o));
    lines.push_back(StrFormat("  T%d(depth=%d, parent=%d): %s", t.id, t.depth,
                              t.parent, StrJoin(ops, " ").c_str()));
  }
  return StrFormat("TaskTree(%d tasks, height=%d, root=T%d):\n", num_tasks(),
                   height_, root_task_) +
         StrJoin(lines, "\n");
}

}  // namespace mrs
