#ifndef MRS_PLAN_OPERATOR_TREE_H_
#define MRS_PLAN_OPERATOR_TREE_H_

#include <string>
#include <vector>

#include "catalog/relation.h"
#include "common/result.h"
#include "common/status.h"
#include "plan/plan_tree.h"

namespace mrs {

/// Physical operator kinds produced by macro-expanding a plan (paper
/// Figure 1(b)): table scans, the build/probe halves of each hash join,
/// and the two halves of each blocking unary operator — an external
/// sort's run-generation/merge phases and a hash aggregate's
/// accumulate/emit phases. Each blocking pair mirrors build/probe: the
/// first half materializes site-local state (hash table, sorted runs,
/// group table) that the second half consumes in place.
enum class OperatorKind {
  kScan,
  kBuild,
  kProbe,
  kSortRun,    ///< consume input, write sorted runs (local)
  kSortMerge,  ///< merge runs, emit sorted stream (rooted at kSortRun)
  kAggBuild,   ///< consume input into the group hash table (local)
  kAggOutput,  ///< emit one tuple per group (rooted at kAggBuild)
};

std::string_view OperatorKindToString(OperatorKind kind);

/// A node of the physical operator tree. Edges are split into *pipelined*
/// data edges (producer streams tuples to consumer; thin edges in the
/// paper's Figure 1) and the *blocking* edge from a join's build to its
/// probe (thick edges: probing may only start once the hash table is
/// complete).
struct PhysicalOp {
  int id = -1;
  OperatorKind kind = OperatorKind::kScan;

  /// Originating plan node.
  int plan_node = -1;

  /// Query task (pipeline) this operator belongs to; filled by TaskTree.
  int task = -1;

  /// Tuples streaming in over the data input(s): the scanned relation for
  /// scans, the inner input for builds, the outer input for probes.
  int64_t input_tuples = 0;

  /// Tuples this operator emits downstream (0 for builds: the hash table
  /// stays site-local and is consumed through the blocking edge).
  int64_t output_tuples = 0;

  TupleLayout layout;

  /// Producer ops feeding this op through pipelined data edges.
  std::vector<int> data_inputs;

  /// The op this one blocks on (probe -> build, sort merge -> sort run,
  /// aggregate output -> aggregate build). -1 when this op only has
  /// pipelined inputs. An op with a blocking input executes at the home
  /// of that producer (its materialized state is site-local).
  int blocking_input = -1;

  /// Tuples of site-local *memory-resident* state this operator
  /// materializes (hash/group tables; 0 for operators that spill to disk
  /// or keep no state). Consumed by the memory-aware scheduler.
  int64_t table_tuples = 0;

  /// The op consuming our output through a pipelined edge; -1 for the plan
  /// root and for builds.
  int consumer = -1;

  int64_t input_bytes() const { return input_tuples * layout.tuple_bytes; }
  int64_t output_bytes() const { return output_tuples * layout.tuple_bytes; }

  std::string ToString() const;
};

/// The operator tree: the macro-expansion of a finalized PlanTree. A
/// J-join plan over J+1 base relations expands to exactly 3J+1 operators
/// (J builds, J probes, J+1 scans); each unary sort/aggregate adds two
/// more (its blocking halves).
class OperatorTree {
 public:
  /// An empty tree; assign from FromPlan before use.
  OperatorTree() = default;

  /// Expands `plan`; fails if the plan is not finalized.
  static Result<OperatorTree> FromPlan(const PlanTree& plan);

  int num_ops() const { return static_cast<int>(ops_.size()); }
  const PhysicalOp& op(int id) const;
  PhysicalOp& mutable_op(int id);
  const std::vector<PhysicalOp>& ops() const { return ops_; }

  /// The operator producing the final query result (the root join's probe,
  /// or the single scan of a join-free plan).
  int root_op() const { return root_op_; }

  /// Ids of all ops of a given kind.
  std::vector<int> OpsOfKind(OperatorKind kind) const;

  /// For a probe op, the id of its matching build; error otherwise.
  Result<int> BuildForProbe(int probe_id) const;

  std::string ToString() const;

 private:
  // Returns the id of the op producing the output of plan node `node`.
  int Expand(const PlanTree& plan, int node);

  std::vector<PhysicalOp> ops_;
  int root_op_ = -1;
};

}  // namespace mrs

#endif  // MRS_PLAN_OPERATOR_TREE_H_
