#include "plan/plan_tree.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "common/str_util.h"

namespace mrs {

std::string_view PlanNodeKindToString(PlanNodeKind kind) {
  switch (kind) {
    case PlanNodeKind::kLeaf:
      return "leaf";
    case PlanNodeKind::kJoin:
      return "join";
    case PlanNodeKind::kSort:
      return "sort";
    case PlanNodeKind::kAggregate:
      return "aggregate";
  }
  return "?";
}

PlanTree::PlanTree(const Catalog* catalog) : catalog_(catalog) {
  MRS_CHECK(catalog != nullptr) << "PlanTree requires a catalog";
}

Result<int> PlanTree::AddLeaf(int relation_id) {
  if (finalized_) {
    return Status::FailedPrecondition("plan tree already finalized");
  }
  auto rel = catalog_->GetRelation(relation_id);
  if (!rel.ok()) return rel.status();
  PlanNode node;
  node.id = static_cast<int>(nodes_.size());
  node.kind = PlanNodeKind::kLeaf;
  node.is_leaf = true;
  node.relation_id = relation_id;
  node.output = rel.value();
  nodes_.push_back(node);
  consumed_.push_back(false);
  return node.id;
}

Status PlanTree::ConsumeChild(int child) {
  if (child < 0 || child >= num_nodes()) {
    return Status::OutOfRange(StrFormat("child node %d out of range", child));
  }
  if (consumed_[static_cast<size_t>(child)]) {
    return Status::InvalidArgument(
        StrFormat("node %d already consumed by another operator", child));
  }
  consumed_[static_cast<size_t>(child)] = true;
  return Status::OK();
}

Result<int> PlanTree::AddJoin(int outer, int inner) {
  if (finalized_) {
    return Status::FailedPrecondition("plan tree already finalized");
  }
  if (outer == inner) {
    return Status::InvalidArgument("join children must be distinct nodes");
  }
  // Validate both before consuming either, so failures leave no state.
  for (int child : {outer, inner}) {
    if (child < 0 || child >= num_nodes()) {
      return Status::OutOfRange(StrFormat("child node %d out of range", child));
    }
    if (consumed_[static_cast<size_t>(child)]) {
      return Status::InvalidArgument(
          StrFormat("node %d already consumed by another operator", child));
    }
  }
  MRS_RETURN_IF_ERROR(ConsumeChild(outer));
  MRS_RETURN_IF_ERROR(ConsumeChild(inner));
  PlanNode node;
  node.id = static_cast<int>(nodes_.size());
  node.kind = PlanNodeKind::kJoin;
  node.outer_child = outer;
  node.inner_child = inner;
  const Relation& l = nodes_[static_cast<size_t>(outer)].output;
  const Relation& r = nodes_[static_cast<size_t>(inner)].output;
  node.output.name = StrFormat("J%d", num_joins_);
  node.output.num_tuples = KeyJoinResultTuples(l.num_tuples, r.num_tuples);
  node.output.layout = l.layout;
  nodes_.push_back(node);
  consumed_.push_back(false);
  ++num_joins_;
  return node.id;
}

Result<int> PlanTree::AddSort(int child) {
  if (finalized_) {
    return Status::FailedPrecondition("plan tree already finalized");
  }
  MRS_RETURN_IF_ERROR(ConsumeChild(child));
  PlanNode node;
  node.id = static_cast<int>(nodes_.size());
  node.kind = PlanNodeKind::kSort;
  node.unary_child = child;
  node.output = nodes_[static_cast<size_t>(child)].output;
  node.output.name = StrFormat("S%d", node.id);
  nodes_.push_back(node);
  consumed_.push_back(false);
  ++num_unary_;
  return node.id;
}

Result<int> PlanTree::AddAggregate(int child, double group_fraction) {
  if (finalized_) {
    return Status::FailedPrecondition("plan tree already finalized");
  }
  if (!(group_fraction > 0.0) || group_fraction > 1.0) {
    return Status::InvalidArgument(
        StrFormat("group_fraction %.3f outside (0, 1]", group_fraction));
  }
  MRS_RETURN_IF_ERROR(ConsumeChild(child));
  PlanNode node;
  node.id = static_cast<int>(nodes_.size());
  node.kind = PlanNodeKind::kAggregate;
  node.unary_child = child;
  node.group_fraction = group_fraction;
  const Relation& in = nodes_[static_cast<size_t>(child)].output;
  node.output = in;
  node.output.name = StrFormat("G%d", node.id);
  node.output.num_tuples = std::max<int64_t>(
      1, static_cast<int64_t>(
             std::ceil(static_cast<double>(in.num_tuples) * group_fraction)));
  nodes_.push_back(node);
  consumed_.push_back(false);
  ++num_unary_;
  return node.id;
}

Status PlanTree::Finalize() {
  if (finalized_) return Status::OK();
  if (nodes_.empty()) {
    return Status::FailedPrecondition("plan tree has no nodes");
  }
  int root = -1;
  for (int i = 0; i < num_nodes(); ++i) {
    if (!consumed_[static_cast<size_t>(i)]) {
      if (root != -1) {
        return Status::FailedPrecondition(
            StrFormat("plan tree has multiple roots (%d and %d)", root, i));
      }
      root = i;
    }
  }
  MRS_CHECK(root != -1) << "cyclic plan tree should be impossible";
  root_ = root;
  finalized_ = true;
  return Status::OK();
}

const PlanNode& PlanTree::node(int id) const {
  MRS_CHECK(id >= 0 && id < num_nodes()) << "plan node " << id << " out of range";
  return nodes_[static_cast<size_t>(id)];
}

int PlanTree::HeightBelow(int id) const {
  const PlanNode& n = node(id);
  switch (n.kind) {
    case PlanNodeKind::kLeaf:
      return 0;
    case PlanNodeKind::kJoin:
      return 1 + std::max(HeightBelow(n.outer_child),
                          HeightBelow(n.inner_child));
    case PlanNodeKind::kSort:
    case PlanNodeKind::kAggregate:
      return 1 + HeightBelow(n.unary_child);
  }
  return 0;
}

int PlanTree::Height() const {
  MRS_CHECK(finalized_) << "Height() requires a finalized tree";
  return HeightBelow(root_);
}

namespace {
void Render(const PlanTree& tree, int id, std::string* out) {
  const PlanNode& n = tree.node(id);
  switch (n.kind) {
    case PlanNodeKind::kLeaf:
      *out += StrFormat("R%d", n.relation_id);
      return;
    case PlanNodeKind::kJoin:
      *out += "(";
      Render(tree, n.outer_child, out);
      *out += " JOIN ";
      Render(tree, n.inner_child, out);
      *out += ")";
      return;
    case PlanNodeKind::kSort:
      *out += "SORT(";
      Render(tree, n.unary_child, out);
      *out += ")";
      return;
    case PlanNodeKind::kAggregate:
      *out += "AGG(";
      Render(tree, n.unary_child, out);
      *out += ")";
      return;
  }
}
}  // namespace

std::string PlanTree::ToString() const {
  if (!finalized_) return "PlanTree(unfinalized)";
  std::string out;
  Render(*this, root_, &out);
  return out;
}

}  // namespace mrs
