#ifndef MRS_PLAN_PLAN_PRINTER_H_
#define MRS_PLAN_PLAN_PRINTER_H_

#include <string>

#include "plan/operator_tree.h"
#include "plan/plan_tree.h"
#include "plan/task_tree.h"

namespace mrs {

/// Multi-line ASCII rendering of a plan tree (indentation = depth).
std::string RenderPlanTree(const PlanTree& plan);

/// Multi-line ASCII rendering of an operator tree with edge kinds
/// annotated ("~>" pipelined, "=>" blocking).
std::string RenderOperatorTree(const OperatorTree& ops);

/// Graphviz dot output for the operator tree; blocking edges drawn bold.
std::string OperatorTreeToDot(const OperatorTree& ops);

/// Phase-by-phase listing of a task tree.
std::string RenderPhases(const TaskTree& tasks, const OperatorTree& ops);

}  // namespace mrs

#endif  // MRS_PLAN_PLAN_PRINTER_H_
