#include "plan/query_graph.h"

#include <algorithm>

#include "common/logging.h"
#include "common/str_util.h"

namespace mrs {

QueryGraph::QueryGraph(int num_relations)
    : num_relations_(std::max(num_relations, 0)),
      incident_(static_cast<size_t>(num_relations_)) {}

Status QueryGraph::AddJoin(int left_relation, int right_relation) {
  if (left_relation < 0 || left_relation >= num_relations_ ||
      right_relation < 0 || right_relation >= num_relations_) {
    return Status::OutOfRange(
        StrFormat("join edge (%d, %d) out of range [0, %d)", left_relation,
                  right_relation, num_relations_));
  }
  if (left_relation == right_relation) {
    return Status::InvalidArgument(
        StrFormat("self join on relation %d", left_relation));
  }
  for (const auto& e : edges_) {
    if ((e.left_relation == left_relation &&
         e.right_relation == right_relation) ||
        (e.left_relation == right_relation &&
         e.right_relation == left_relation)) {
      return Status::InvalidArgument(
          StrFormat("duplicate join edge (%d, %d)", left_relation,
                    right_relation));
    }
  }
  const int edge_id = static_cast<int>(edges_.size());
  edges_.push_back({left_relation, right_relation});
  incident_[static_cast<size_t>(left_relation)].push_back(edge_id);
  incident_[static_cast<size_t>(right_relation)].push_back(edge_id);
  return Status::OK();
}

const std::vector<int>& QueryGraph::IncidentEdges(int relation) const {
  MRS_CHECK(relation >= 0 && relation < num_relations_)
      << "relation " << relation << " out of range";
  return incident_[static_cast<size_t>(relation)];
}

bool QueryGraph::IsConnected() const {
  if (num_relations_ == 0) return true;
  std::vector<bool> seen(static_cast<size_t>(num_relations_), false);
  std::vector<int> stack = {0};
  seen[0] = true;
  int visited = 1;
  while (!stack.empty()) {
    const int v = stack.back();
    stack.pop_back();
    for (int e : incident_[static_cast<size_t>(v)]) {
      const auto& edge = edges_[static_cast<size_t>(e)];
      const int u =
          edge.left_relation == v ? edge.right_relation : edge.left_relation;
      if (!seen[static_cast<size_t>(u)]) {
        seen[static_cast<size_t>(u)] = true;
        ++visited;
        stack.push_back(u);
      }
    }
  }
  return visited == num_relations_;
}

bool QueryGraph::IsAcyclic() const {
  // Union-find: a cycle exists iff some edge joins two vertices already in
  // the same component.
  std::vector<int> parent(static_cast<size_t>(num_relations_));
  for (int i = 0; i < num_relations_; ++i) parent[static_cast<size_t>(i)] = i;
  auto find = [&](int x) {
    while (parent[static_cast<size_t>(x)] != x) {
      parent[static_cast<size_t>(x)] =
          parent[static_cast<size_t>(parent[static_cast<size_t>(x)])];
      x = parent[static_cast<size_t>(x)];
    }
    return x;
  };
  for (const auto& e : edges_) {
    const int a = find(e.left_relation);
    const int b = find(e.right_relation);
    if (a == b) return false;
    parent[static_cast<size_t>(a)] = b;
  }
  return true;
}

std::string QueryGraph::ToString() const {
  std::vector<std::string> parts;
  parts.reserve(edges_.size());
  for (const auto& e : edges_) {
    parts.push_back(StrFormat("R%d-R%d", e.left_relation, e.right_relation));
  }
  return StrFormat("QueryGraph(%d relations, %d joins: %s)", num_relations_,
                   num_joins(), StrJoin(parts, " ").c_str());
}

}  // namespace mrs
