#include "plan/operator_tree.h"

#include "common/logging.h"
#include "common/str_util.h"

namespace mrs {

std::string_view OperatorKindToString(OperatorKind kind) {
  switch (kind) {
    case OperatorKind::kScan:
      return "scan";
    case OperatorKind::kBuild:
      return "build";
    case OperatorKind::kProbe:
      return "probe";
    case OperatorKind::kSortRun:
      return "sort-run";
    case OperatorKind::kSortMerge:
      return "sort-merge";
    case OperatorKind::kAggBuild:
      return "agg-build";
    case OperatorKind::kAggOutput:
      return "agg-output";
  }
  return "?";
}

std::string PhysicalOp::ToString() const {
  return StrFormat("op%d[%s plan=%d task=%d in=%lld out=%lld]", id,
                   std::string(OperatorKindToString(kind)).c_str(), plan_node,
                   task, static_cast<long long>(input_tuples),
                   static_cast<long long>(output_tuples));
}

Result<OperatorTree> OperatorTree::FromPlan(const PlanTree& plan) {
  if (!plan.finalized()) {
    return Status::FailedPrecondition(
        "operator tree requires a finalized plan tree");
  }
  OperatorTree tree;
  tree.root_op_ = tree.Expand(plan, plan.root());
  return tree;
}

int OperatorTree::Expand(const PlanTree& plan, int node_id) {
  const PlanNode& node = plan.node(node_id);
  switch (node.kind) {
    case PlanNodeKind::kLeaf: {
      PhysicalOp scan;
      scan.id = static_cast<int>(ops_.size());
      scan.kind = OperatorKind::kScan;
      scan.plan_node = node_id;
      scan.input_tuples = node.output.num_tuples;
      scan.output_tuples = node.output.num_tuples;
      scan.layout = node.output.layout;
      ops_.push_back(scan);
      return scan.id;
    }
    case PlanNodeKind::kJoin: {
      // Children first so operator ids follow a bottom-up (post-order)
      // numbering; the id order is not semantically meaningful.
      const int inner_producer = Expand(plan, node.inner_child);
      const int outer_producer = Expand(plan, node.outer_child);
      const Relation& inner_out = plan.node(node.inner_child).output;
      const Relation& outer_out = plan.node(node.outer_child).output;

      PhysicalOp build;
      build.id = static_cast<int>(ops_.size());
      build.kind = OperatorKind::kBuild;
      build.plan_node = node_id;
      build.input_tuples = inner_out.num_tuples;
      build.output_tuples = 0;  // hash table consumed locally by the probe
      build.table_tuples = inner_out.num_tuples;
      build.layout = inner_out.layout;
      build.data_inputs.push_back(inner_producer);
      ops_.push_back(build);
      ops_[static_cast<size_t>(inner_producer)].consumer = build.id;

      PhysicalOp probe;
      probe.id = static_cast<int>(ops_.size());
      probe.kind = OperatorKind::kProbe;
      probe.plan_node = node_id;
      probe.input_tuples = outer_out.num_tuples;
      probe.output_tuples = node.output.num_tuples;
      probe.layout = node.output.layout;
      probe.data_inputs.push_back(outer_producer);
      probe.blocking_input = build.id;
      ops_.push_back(probe);
      ops_[static_cast<size_t>(outer_producer)].consumer = probe.id;

      return probe.id;
    }
    case PlanNodeKind::kSort: {
      const int producer = Expand(plan, node.unary_child);
      const Relation& in = plan.node(node.unary_child).output;

      PhysicalOp run;
      run.id = static_cast<int>(ops_.size());
      run.kind = OperatorKind::kSortRun;
      run.plan_node = node_id;
      run.input_tuples = in.num_tuples;
      run.output_tuples = 0;  // sorted runs stay on local disk
      run.table_tuples = 0;   // disk-resident, not memory
      run.layout = in.layout;
      run.data_inputs.push_back(producer);
      ops_.push_back(run);
      ops_[static_cast<size_t>(producer)].consumer = run.id;

      PhysicalOp merge;
      merge.id = static_cast<int>(ops_.size());
      merge.kind = OperatorKind::kSortMerge;
      merge.plan_node = node_id;
      merge.input_tuples = in.num_tuples;
      merge.output_tuples = node.output.num_tuples;
      merge.layout = node.output.layout;
      merge.blocking_input = run.id;
      ops_.push_back(merge);

      return merge.id;
    }
    case PlanNodeKind::kAggregate: {
      const int producer = Expand(plan, node.unary_child);
      const Relation& in = plan.node(node.unary_child).output;

      PhysicalOp accumulate;
      accumulate.id = static_cast<int>(ops_.size());
      accumulate.kind = OperatorKind::kAggBuild;
      accumulate.plan_node = node_id;
      accumulate.input_tuples = in.num_tuples;
      accumulate.output_tuples = 0;  // group table consumed in place
      accumulate.table_tuples = node.output.num_tuples;  // one per group
      accumulate.layout = in.layout;
      accumulate.data_inputs.push_back(producer);
      ops_.push_back(accumulate);
      ops_[static_cast<size_t>(producer)].consumer = accumulate.id;

      PhysicalOp emit;
      emit.id = static_cast<int>(ops_.size());
      emit.kind = OperatorKind::kAggOutput;
      emit.plan_node = node_id;
      emit.input_tuples = node.output.num_tuples;  // reads the group table
      emit.output_tuples = node.output.num_tuples;
      emit.layout = node.output.layout;
      emit.blocking_input = accumulate.id;
      ops_.push_back(emit);

      return emit.id;
    }
  }
  MRS_CHECK(false) << "unreachable plan node kind";
  return -1;
}

const PhysicalOp& OperatorTree::op(int id) const {
  MRS_CHECK(id >= 0 && id < num_ops()) << "op " << id << " out of range";
  return ops_[static_cast<size_t>(id)];
}

PhysicalOp& OperatorTree::mutable_op(int id) {
  MRS_CHECK(id >= 0 && id < num_ops()) << "op " << id << " out of range";
  return ops_[static_cast<size_t>(id)];
}

std::vector<int> OperatorTree::OpsOfKind(OperatorKind kind) const {
  std::vector<int> out;
  for (const auto& o : ops_) {
    if (o.kind == kind) out.push_back(o.id);
  }
  return out;
}

Result<int> OperatorTree::BuildForProbe(int probe_id) const {
  if (probe_id < 0 || probe_id >= num_ops()) {
    return Status::OutOfRange(StrFormat("op %d out of range", probe_id));
  }
  const PhysicalOp& probe = ops_[static_cast<size_t>(probe_id)];
  if (probe.kind != OperatorKind::kProbe) {
    return Status::InvalidArgument(
        StrFormat("op %d is not a probe", probe_id));
  }
  return probe.blocking_input;
}

std::string OperatorTree::ToString() const {
  std::vector<std::string> lines;
  lines.reserve(ops_.size());
  for (const auto& o : ops_) lines.push_back("  " + o.ToString());
  return StrFormat("OperatorTree(%d ops, root=op%d):\n", num_ops(), root_op_) +
         StrJoin(lines, "\n");
}

}  // namespace mrs
