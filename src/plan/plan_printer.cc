#include "plan/plan_printer.h"

#include "common/str_util.h"

namespace mrs {

namespace {

void RenderPlanNode(const PlanTree& plan, int id, int depth,
                    std::string* out) {
  const PlanNode& n = plan.node(id);
  out->append(static_cast<size_t>(depth) * 2, ' ');
  switch (n.kind) {
    case PlanNodeKind::kLeaf:
      *out += StrFormat("scan R%d  (|out|=%lld)\n", n.relation_id,
                        static_cast<long long>(n.output.num_tuples));
      return;
    case PlanNodeKind::kJoin:
      *out += StrFormat("join #%d  (|out|=%lld)\n", n.id,
                        static_cast<long long>(n.output.num_tuples));
      RenderPlanNode(plan, n.outer_child, depth + 1, out);
      RenderPlanNode(plan, n.inner_child, depth + 1, out);
      return;
    case PlanNodeKind::kSort:
    case PlanNodeKind::kAggregate:
      *out += StrFormat("%s #%d  (|out|=%lld)\n",
                        std::string(PlanNodeKindToString(n.kind)).c_str(),
                        n.id, static_cast<long long>(n.output.num_tuples));
      RenderPlanNode(plan, n.unary_child, depth + 1, out);
      return;
  }
}

void RenderOpNode(const OperatorTree& ops, int id, int depth,
                  const char* edge, std::string* out) {
  const PhysicalOp& o = ops.op(id);
  out->append(static_cast<size_t>(depth) * 2, ' ');
  *out += StrFormat("%sop%d %s (in=%lld out=%lld task=%d)\n", edge, o.id,
                    std::string(OperatorKindToString(o.kind)).c_str(),
                    static_cast<long long>(o.input_tuples),
                    static_cast<long long>(o.output_tuples), o.task);
  if (o.blocking_input >= 0) {
    RenderOpNode(ops, o.blocking_input, depth + 1, "=> ", out);
  }
  for (int in : o.data_inputs) {
    RenderOpNode(ops, in, depth + 1, "~> ", out);
  }
}

}  // namespace

std::string RenderPlanTree(const PlanTree& plan) {
  std::string out;
  if (!plan.finalized()) return "PlanTree(unfinalized)\n";
  RenderPlanNode(plan, plan.root(), 0, &out);
  return out;
}

std::string RenderOperatorTree(const OperatorTree& ops) {
  std::string out;
  RenderOpNode(ops, ops.root_op(), 0, "", &out);
  return out;
}

std::string OperatorTreeToDot(const OperatorTree& ops) {
  std::string out = "digraph operator_tree {\n  rankdir=BT;\n";
  for (const auto& o : ops.ops()) {
    out += StrFormat(
        "  op%d [label=\"op%d\\n%s\\nout=%lld\"];\n", o.id, o.id,
        std::string(OperatorKindToString(o.kind)).c_str(),
        static_cast<long long>(o.output_tuples));
  }
  for (const auto& o : ops.ops()) {
    for (int in : o.data_inputs) {
      out += StrFormat("  op%d -> op%d;\n", in, o.id);
    }
    if (o.blocking_input >= 0) {
      out += StrFormat("  op%d -> op%d [style=bold, color=red];\n",
                       o.blocking_input, o.id);
    }
  }
  out += "}\n";
  return out;
}

std::string RenderPhases(const TaskTree& tasks, const OperatorTree& ops) {
  std::string out;
  for (int k = 0; k < tasks.num_phases(); ++k) {
    out += StrFormat("phase %d:\n", k);
    for (int tid : tasks.phase(k)) {
      const QueryTask& t = tasks.task(tid);
      std::vector<std::string> parts;
      parts.reserve(t.ops.size());
      for (int oid : t.ops) {
        parts.push_back(StrFormat(
            "op%d(%s)", oid,
            std::string(OperatorKindToString(ops.op(oid).kind)).c_str()));
      }
      out += StrFormat("  T%d: %s\n", tid, StrJoin(parts, " ").c_str());
    }
  }
  return out;
}

}  // namespace mrs
