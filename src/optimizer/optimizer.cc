#include "optimizer/optimizer.h"

#include <algorithm>
#include <bit>
#include <utility>
#include <vector>

#include "catalog/relation.h"
#include "common/str_util.h"
#include "common/thread_pool.h"
#include "cost/parallelize_cache.h"

namespace mrs {

namespace {

/// Shift separating the slice index from the slice-local combination
/// counter in a plan id. 2^40 combinations per slice is far beyond
/// max_candidates-squared territory.
constexpr int kSliceShift = 40;

const char* EngineName(OptimizerEngine engine) {
  return engine == OptimizerEngine::kList ? "list" : "tree";
}

/// Greedy connectivity-ordered seed plan: repeatedly joins the two
/// components whose join has the smallest result, the build side the
/// smaller input. Deterministic (ties by edge index / plan-node id); its
/// makespan is the pruning incumbent, and the plan itself is regenerated
/// by the enumeration, so the search result is never worse than the seed.
Result<PlanTree> BuildGreedyPlan(const Catalog& catalog,
                                 const QueryGraph& graph) {
  const int n = graph.num_relations();
  PlanTree plan(&catalog);
  struct Component {
    int node = -1;
    int64_t out_tuples = 0;
  };
  std::vector<int> comp_of(static_cast<size_t>(n));
  std::vector<Component> comps(static_cast<size_t>(n));
  for (int r = 0; r < n; ++r) {
    MRS_ASSIGN_OR_RETURN(int leaf, plan.AddLeaf(r));
    MRS_ASSIGN_OR_RETURN(Relation rel, catalog.GetRelation(r));
    comp_of[static_cast<size_t>(r)] = r;
    comps[static_cast<size_t>(r)] = {leaf, rel.num_tuples};
  }
  const std::vector<JoinEdge>& edges = graph.edges();
  for (int step = 0; step + 1 < n; ++step) {
    int best_edge = -1;
    int64_t best_out = 0;
    for (int ei = 0; ei < static_cast<int>(edges.size()); ++ei) {
      const JoinEdge& e = edges[static_cast<size_t>(ei)];
      const int ca = comp_of[static_cast<size_t>(e.left_relation)];
      const int cb = comp_of[static_cast<size_t>(e.right_relation)];
      if (ca == cb) continue;
      const int64_t out =
          KeyJoinResultTuples(comps[static_cast<size_t>(ca)].out_tuples,
                              comps[static_cast<size_t>(cb)].out_tuples);
      if (best_edge < 0 || out < best_out) {
        best_edge = ei;
        best_out = out;
      }
    }
    if (best_edge < 0) {
      return Status::InvalidArgument(
          "query graph is disconnected; cannot seed the optimizer");
    }
    const JoinEdge& e = edges[static_cast<size_t>(best_edge)];
    const int ca = comp_of[static_cast<size_t>(e.left_relation)];
    const int cb = comp_of[static_cast<size_t>(e.right_relation)];
    const Component& a = comps[static_cast<size_t>(ca)];
    const Component& b = comps[static_cast<size_t>(cb)];
    // Build on the smaller input; ties by plan-node id for determinism.
    int inner = cb;
    if (b.out_tuples > a.out_tuples ||
        (b.out_tuples == a.out_tuples && a.node < b.node)) {
      inner = ca;
    }
    const int outer = inner == ca ? cb : ca;
    MRS_ASSIGN_OR_RETURN(
        int join,
        plan.AddJoin(comps[static_cast<size_t>(outer)].node,
                     comps[static_cast<size_t>(inner)].node));
    comps[static_cast<size_t>(ca)] = {join,
                                      plan.node(join).output.num_tuples};
    for (int r = 0; r < n; ++r) {
      if (comp_of[static_cast<size_t>(r)] == cb) {
        comp_of[static_cast<size_t>(r)] = ca;
      }
    }
  }
  MRS_RETURN_IF_ERROR(plan.Finalize());
  return plan;
}

/// Result slot of one bottom-up DP job (one memo subset).
struct SubsetOutcome {
  Status status;
  uint64_t generated = 0;
  uint64_t kept = 0;
  uint64_t pruned = 0;
};

/// Result slot of one root-slice job.
struct SliceOutcome {
  Status status;
  bool has_best = false;
  double best_makespan = 0.0;
  uint64_t best_id = 0;
  PlanEnumerator::CandidateRef best_outer;
  PlanEnumerator::CandidateRef best_inner;
  uint64_t considered = 0;
  uint64_t scheduled = 0;
  uint64_t pruned = 0;
};

}  // namespace

std::string OptimizeResult::Explain() const {
  std::string out;
  out += StrFormat("optimizer: engine=%s prune=%s relations=%d joins=%d\n",
                   EngineName(engine), prune ? "on" : "off", num_relations,
                   num_joins);
  out += StrFormat("plan: %s\n",
                   plan ? plan->ToString().c_str() : "(none)");
  out += StrFormat("makespan_ms: %.6f\n", makespan);
  out += StrFormat("plan_id: %llu\n",
                   static_cast<unsigned long long>(plan_id));
  out += StrFormat("seed_makespan_ms: %.6f\n", seed_makespan);
  out += StrFormat(
      "plans: considered=%llu scheduled=%llu pruned=%llu\n",
      static_cast<unsigned long long>(stats.plans_considered),
      static_cast<unsigned long long>(stats.plans_scheduled),
      static_cast<unsigned long long>(stats.plans_pruned));
  out += StrFormat(
      "subplans: considered=%llu kept=%llu pruned=%llu subsets=%d "
      "slices=%d\n",
      static_cast<unsigned long long>(stats.subplans_considered),
      static_cast<unsigned long long>(stats.subplans_kept),
      static_cast<unsigned long long>(stats.subplans_pruned),
      stats.num_subsets, stats.num_slices);
  return out;
}

Result<OptimizeResult> OptimizeJoinOrder(const Catalog& catalog,
                                         const QueryGraph& graph,
                                         const CostParams& params,
                                         const MachineConfig& machine,
                                         const OverlapUsageModel& usage,
                                         const OptimizerOptions& options) {
  if (graph.num_relations() != catalog.num_relations()) {
    return Status::InvalidArgument(
        StrFormat("query graph covers %d relations but the catalog has %d",
                  graph.num_relations(), catalog.num_relations()));
  }
  MRS_ASSIGN_OR_RETURN(PlanEnumerator enumerator,
                       PlanEnumerator::Create(graph));

  MachineConfig config = machine;
  MRS_RETURN_IF_ERROR(config.Validate());
  MetricsRegistry* registry =
      options.metrics != nullptr ? options.metrics : &MetricsRegistry::Global();
  ParallelizeCache cache(params, usage.epsilon(), options.granularity,
                         config.num_sites, registry);

  MakespanCostOptions cost_options;
  cost_options.granularity = options.granularity;
  cost_options.policy = options.policy;
  cost_options.build_degree = options.build_degree;
  cost_options.engine = options.engine;
  cost_options.num_disks = options.num_disks;
  cost_options.cost_options = options.cost_options;
  cost_options.cache = &cache;
  MRS_ASSIGN_OR_RETURN(
      MakespanCostFn cost_fn,
      MakespanCostFn::Create(&catalog, params, config, usage, cost_options));

  const int n = enumerator.num_relations();
  const uint64_t full_mask =
      n == 64 ? ~uint64_t{0} : ((uint64_t{1} << n) - 1);

  OptimizeResult result;
  result.num_relations = n;
  result.num_joins = graph.num_joins();
  result.engine = options.engine;
  result.prune = options.prune;
  result.stats.num_subsets = enumerator.num_subsets();
  result.stats.num_slices =
      static_cast<int>(enumerator.root_slices().size());

  SpanTimer whole(options.trace, "optimize");

  // Stage 1: greedy seed — the fixed pruning incumbent.
  double seed_makespan = 0.0;
  {
    SpanTimer span(options.trace, "opt_seed");
    MRS_ASSIGN_OR_RETURN(PlanTree seed_plan,
                         BuildGreedyPlan(catalog, graph));
    MRS_ASSIGN_OR_RETURN(PreparedPlan prepared, cost_fn.Prepare(seed_plan));
    MRS_ASSIGN_OR_RETURN(seed_makespan, cost_fn.Makespan(prepared));
    if (span.active()) span.AttrDouble("makespan_ms", seed_makespan);
  }
  result.seed_makespan = seed_makespan;

  if (n == 1) {
    // A join-free query has exactly one plan: the lone scan.
    PlanEnumerator::CandidateRef leaf{0, 0};
    MRS_ASSIGN_OR_RETURN(PlanTree plan,
                         enumerator.BuildPlan(&catalog, leaf));
    MRS_ASSIGN_OR_RETURN(PreparedPlan prepared, cost_fn.Prepare(plan));
    MRS_ASSIGN_OR_RETURN(result.makespan, cost_fn.Makespan(prepared));
    result.plan = std::make_unique<PlanTree>(std::move(plan));
    result.plan_id = 0;
    result.stats.plans_considered = 1;
    result.stats.plans_scheduled = 1;
    result.stats.subplans_considered = 1;
    result.stats.subplans_kept = 1;
    result.stats.cache_hits = cache.counter().hits();
    result.stats.cache_misses = cache.counter().misses();
    return result;
  }

  ThreadPool pool(options.num_threads);

  // Per-candidate pruning aggregates, index-aligned with the enumerator's
  // memo lists. Each DP job writes only its own subset's vector and reads
  // completed smaller subsets (the size barrier below), so no locking.
  std::vector<std::vector<SubplanBound>> bounds(
      static_cast<size_t>(enumerator.num_subsets()));
  if (options.prune) {
    for (int id : enumerator.SubsetsOfSize(1)) {
      const int r = std::countr_zero(enumerator.subset_mask(id));
      MRS_ASSIGN_OR_RETURN(SubplanBound leaf, cost_fn.LeafBound(r));
      bounds[static_cast<size_t>(id)].push_back(std::move(leaf));
    }
  }

  // Stage 2: fill the memo bottom-up, one job per subset, a barrier
  // between sizes. Pruning compares each candidate's O(1) compositional
  // bound (CombineBound: only the two root operators are costed) against
  // the *fixed* seed incumbent, so the memo is identical for every thread
  // count and no candidate ever pays a full Prepare() here.
  {
    SpanTimer span(options.trace, "opt_dp");
    std::vector<SubsetOutcome> outcomes(
        static_cast<size_t>(enumerator.num_subsets()));
    for (int size = 2; size <= n - 1; ++size) {
      for (int id : enumerator.SubsetsOfSize(size)) {
        pool.Submit([&, id] {
          SubsetOutcome& slot = outcomes[static_cast<size_t>(id)];
          std::vector<SubplanBound>& my_bounds =
              bounds[static_cast<size_t>(id)];
          const uint64_t mask = enumerator.subset_mask(id);
          auto keep = [&](const PlanEnumerator::Candidate& cand) -> bool {
            if (!options.prune) return true;
            Result<SubplanBound> b = cost_fn.CombineBound(
                bounds[static_cast<size_t>(cand.outer.subset)]
                      [static_cast<size_t>(cand.outer.idx)],
                bounds[static_cast<size_t>(cand.inner.subset)]
                      [static_cast<size_t>(cand.inner.idx)]);
            if (!b.ok()) {
              if (slot.status.ok()) slot.status = b.status();
              my_bounds.emplace_back();  // keep memo/bounds aligned
              return true;
            }
            if (cost_fn.CheapLowerBound(*b, mask) > seed_makespan) {
              ++slot.pruned;
              return false;
            }
            my_bounds.push_back(*std::move(b));
            return true;
          };
          PlanEnumerator::GenerateCounts counts =
              enumerator.GenerateCandidates(id, keep);
          slot.generated = counts.generated;
          slot.kept = counts.kept;
        });
      }
      pool.WaitAll();
      const uint64_t memo_size = enumerator.total_candidates();
      if (memo_size > options.max_candidates) {
        return Status::InvalidArgument(StrFormat(
            "plan space too large: %llu memoized subplan candidates at "
            "subset size %d exceed max_candidates=%llu",
            static_cast<unsigned long long>(memo_size), size,
            static_cast<unsigned long long>(options.max_candidates)));
      }
    }
    for (const SubsetOutcome& slot : outcomes) {
      MRS_RETURN_IF_ERROR(slot.status);
      result.stats.subplans_considered += slot.generated;
      result.stats.subplans_kept += slot.kept;
      result.stats.subplans_pruned += slot.pruned;
    }
    // Leaf candidates exist without a generation pass.
    result.stats.subplans_considered += static_cast<uint64_t>(n);
    result.stats.subplans_kept += static_cast<uint64_t>(n);
    if (span.active()) {
      span.AttrInt("subsets", enumerator.num_subsets());
      span.AttrInt("kept",
                   static_cast<int64_t>(result.stats.subplans_kept));
    }
  }

  // Stage 3: price complete plans slice by slice (one root partition per
  // job), each slice keeping a local incumbent seeded from the greedy
  // makespan. Plan ids count every combination before pruning, so they are
  // comparable between pruned and exhaustive runs.
  std::vector<SliceOutcome> slices(enumerator.root_slices().size());
  {
    SpanTimer span(options.trace, "opt_search");
    for (int si = 0; si < static_cast<int>(slices.size()); ++si) {
      pool.Submit([&, si] {
        const PlanEnumerator::RootSlice& slice =
            enumerator.root_slices()[static_cast<size_t>(si)];
        SliceOutcome& out = slices[static_cast<size_t>(si)];
        const auto& outer_cands = enumerator.candidates(slice.outer_subset);
        const auto& inner_cands = enumerator.candidates(slice.inner_subset);
        double incumbent = seed_makespan;
        uint64_t counter = 0;
        for (int i = 0; i < static_cast<int>(outer_cands.size()); ++i) {
          for (int j = 0; j < static_cast<int>(inner_cands.size()); ++j) {
            for (int orient = 0; orient < 2; ++orient) {
              const uint64_t id =
                  (static_cast<uint64_t>(si) << kSliceShift) | counter;
              ++counter;
              ++out.considered;
              PlanEnumerator::CandidateRef outer{slice.outer_subset, i};
              PlanEnumerator::CandidateRef inner{slice.inner_subset, j};
              if (orient == 1) std::swap(outer, inner);
              if (options.prune) {
                // Tier 1: the O(1) compositional bound — no plan is
                // materialized, no operator tree costed.
                Result<SubplanBound> rb = cost_fn.CombineBound(
                    bounds[static_cast<size_t>(outer.subset)]
                          [static_cast<size_t>(outer.idx)],
                    bounds[static_cast<size_t>(inner.subset)]
                          [static_cast<size_t>(inner.idx)]);
                if (!rb.ok()) {
                  out.status = rb.status();
                  return;
                }
                if (cost_fn.CheapLowerBound(*rb, full_mask) > incumbent) {
                  ++out.pruned;
                  continue;
                }
              }
              Result<PlanTree> plan =
                  enumerator.BuildRootPlan(&catalog, outer, inner);
              if (!plan.ok()) {
                out.status = plan.status();
                return;
              }
              Result<PreparedPlan> prepared = cost_fn.Prepare(*plan);
              if (!prepared.ok()) {
                out.status = prepared.status();
                return;
              }
              if (options.prune) {
                // Tier 2: the full prepared-plan bound (exact in-context
                // costs plus the phase-sum term) before a schedule is
                // paid.
                Result<double> lb = cost_fn.LowerBound(*prepared, full_mask);
                if (!lb.ok()) {
                  out.status = lb.status();
                  return;
                }
                if (*lb > incumbent) {
                  ++out.pruned;
                  continue;
                }
              }
              Result<double> makespan = cost_fn.Makespan(*prepared);
              if (!makespan.ok()) {
                out.status = makespan.status();
                return;
              }
              ++out.scheduled;
              const double ms = *makespan;
              if (ms < incumbent) incumbent = ms;
              if (!out.has_best || ms < out.best_makespan ||
                  (ms == out.best_makespan && id < out.best_id)) {
                out.has_best = true;
                out.best_makespan = ms;
                out.best_id = id;
                out.best_outer = outer;
                out.best_inner = inner;
              }
            }
          }
        }
      });
    }
    pool.WaitAll();
    if (span.active()) {
      span.AttrInt("slices", static_cast<int64_t>(slices.size()));
    }
  }

  // Stage 4: deterministic merge — errors by slice order, then argmin by
  // (makespan, plan id).
  int best_slice = -1;
  for (int si = 0; si < static_cast<int>(slices.size()); ++si) {
    const SliceOutcome& out = slices[static_cast<size_t>(si)];
    MRS_RETURN_IF_ERROR(out.status);
    result.stats.plans_considered += out.considered;
    result.stats.plans_scheduled += out.scheduled;
    result.stats.plans_pruned += out.pruned;
    if (!out.has_best) continue;
    if (best_slice < 0 ||
        out.best_makespan <
            slices[static_cast<size_t>(best_slice)].best_makespan ||
        (out.best_makespan ==
             slices[static_cast<size_t>(best_slice)].best_makespan &&
         out.best_id < slices[static_cast<size_t>(best_slice)].best_id)) {
      best_slice = si;
    }
  }
  if (best_slice < 0) {
    // Every combination was pruned — possible only through floating-point
    // corner cases, since the greedy plan itself passes the bound checks.
    // Fall back to the seed plan, deterministically.
    MRS_ASSIGN_OR_RETURN(PlanTree seed_plan,
                         BuildGreedyPlan(catalog, graph));
    result.plan = std::make_unique<PlanTree>(std::move(seed_plan));
    result.makespan = seed_makespan;
    result.plan_id = ~uint64_t{0};
  } else {
    const SliceOutcome& winner = slices[static_cast<size_t>(best_slice)];
    MRS_ASSIGN_OR_RETURN(
        PlanTree plan,
        enumerator.BuildRootPlan(&catalog, winner.best_outer,
                                 winner.best_inner));
    result.plan = std::make_unique<PlanTree>(std::move(plan));
    result.makespan = winner.best_makespan;
    result.plan_id = winner.best_id;
  }

  result.stats.cache_hits = cache.counter().hits();
  result.stats.cache_misses = cache.counter().misses();

  registry->GetCounter("opt.plans_considered")
      ->Increment(result.stats.plans_considered);
  registry->GetCounter("opt.plans_scheduled")
      ->Increment(result.stats.plans_scheduled);
  registry->GetCounter("opt.plans_pruned")
      ->Increment(result.stats.plans_pruned);
  registry->GetCounter("opt.subplans_considered")
      ->Increment(result.stats.subplans_considered);
  registry->GetCounter("opt.subplans_pruned")
      ->Increment(result.stats.subplans_pruned);

  if (whole.active()) {
    whole.AttrInt("relations", n);
    whole.AttrInt("joins", result.num_joins);
    whole.AttrInt("plans_considered",
                  static_cast<int64_t>(result.stats.plans_considered));
    whole.AttrInt("plans_scheduled",
                  static_cast<int64_t>(result.stats.plans_scheduled));
    whole.AttrInt("plans_pruned",
                  static_cast<int64_t>(result.stats.plans_pruned));
    whole.AttrDouble("makespan_ms", result.makespan);
  }
  return result;
}

Result<OptimizeResult> ExhaustivePlanSearch(const Catalog& catalog,
                                            const QueryGraph& graph,
                                            const CostParams& params,
                                            const MachineConfig& machine,
                                            const OverlapUsageModel& usage,
                                            OptimizerOptions options) {
  options.prune = false;
  return OptimizeJoinOrder(catalog, graph, params, machine, usage, options);
}

}  // namespace mrs
