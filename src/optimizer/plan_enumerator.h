#ifndef MRS_OPTIMIZER_PLAN_ENUMERATOR_H_
#define MRS_OPTIMIZER_PLAN_ENUMERATOR_H_

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "catalog/catalog.h"
#include "common/result.h"
#include "plan/plan_tree.h"
#include "plan/query_graph.h"

namespace mrs {

/// Dynamic-programming enumeration of the bushy join-plan space of a
/// connected QueryGraph (the front half of the scheduler-in-the-loop
/// optimizer, see src/optimizer/optimizer.h).
///
/// The memo holds every *proper* connected subgraph of the relation set
/// (as a bitmask over catalog relation ids) together with the list of
/// join-tree candidates that cover it. Candidates for a subset S are
/// generated from csg-cmp partitions: every split of S into two connected
/// halves (A, B) joined by at least one graph edge, with A canonically the
/// half containing the lowest relation of S so each unordered partition is
/// visited exactly once; both build-side orientations are emitted at
/// combine time. Together with the root slices below, every bushy
/// cross-product-free plan of the query is generated exactly once.
///
/// The full relation set is deliberately *not* memoized: complete plans
/// are formed by the search driver from "root slices" — the connected
/// partitions {S, S̄} of the full set with relation 0 in S. Each complete
/// plan's root join belongs to exactly one slice, which is what lets the
/// driver partition the plan space across worker threads with a
/// deterministic argmin merge (Trummer & Koch, arxiv 1511.01768).
///
/// Thread-safety: after Create(), concurrent GenerateCandidates() calls on
/// *different* subsets are safe (each writes only its own list and reads
/// the completed lists of strictly smaller subsets); the driver enforces a
/// barrier between size levels.
class PlanEnumerator {
 public:
  /// Bitmask enumeration is O(2^n); beyond this the DP table alone is
  /// intractable regardless.
  static constexpr int kMaxRelations = 20;

  /// A candidate join tree, addressed by (subset id, index in the
  /// subset's candidate list).
  struct CandidateRef {
    int subset = -1;
    int idx = -1;
  };

  /// One memoized join-tree candidate: a base-relation leaf
  /// (relation >= 0) or a join of two smaller candidates (outer feeds the
  /// probe, inner feeds the hash build).
  struct Candidate {
    int relation = -1;
    CandidateRef outer;
    CandidateRef inner;
  };

  /// A root partition {outer ∪ inner = all relations}: the unit of
  /// plan-space partitioning across search workers. `outer_subset` is the
  /// half containing relation 0; the driver applies both build-side
  /// orientations when combining.
  struct RootSlice {
    int outer_subset = -1;
    int inner_subset = -1;
  };

  /// Per-call generation counters (see GenerateCandidates).
  struct GenerateCounts {
    uint64_t generated = 0;  ///< candidates formed (before the keep test)
    uint64_t kept = 0;       ///< candidates appended to the memo
  };

  /// Validates the graph (1..kMaxRelations relations, connected — the
  /// optimizer does not introduce cross products) and seeds the memo with
  /// every connected subset and the size-1 leaf candidates.
  static Result<PlanEnumerator> Create(const QueryGraph& graph);

  int num_relations() const { return num_relations_; }
  /// Number of memoized (proper, connected) subsets.
  int num_subsets() const { return static_cast<int>(subsets_.size()); }
  uint64_t subset_mask(int id) const {
    return subsets_[static_cast<size_t>(id)].mask;
  }
  int subset_size(int id) const {
    return subsets_[static_cast<size_t>(id)].size;
  }
  /// Dense subset ids of a given size, in increasing mask order.
  const std::vector<int>& SubsetsOfSize(int size) const;
  const std::vector<Candidate>& candidates(int id) const {
    return subsets_[static_cast<size_t>(id)].cands;
  }
  /// Total candidates stored across all subsets.
  uint64_t total_candidates() const;

  /// Root partitions of the full relation set, in increasing outer-mask
  /// order. Empty for a single-relation query.
  const std::vector<RootSlice>& root_slices() const { return slices_; }

  /// Generates every candidate covering subset `id` from the memoized
  /// lists of its csg-cmp partitions, in a deterministic order (submask
  /// partitions in decreasing canonical order, outer candidates before
  /// inner, A-outer orientation before B-outer). `keep` decides whether
  /// the candidate enters the memo (the driver's lower-bound prune);
  /// candidates it rejects are never seen again. Requires every smaller
  /// subset's list to be complete.
  GenerateCounts GenerateCandidates(
      int id, const std::function<bool(const Candidate&)>& keep);

  /// Materializes the plan tree of a memoized candidate over `catalog`
  /// (the catalog the graph's relation ids index into).
  Result<PlanTree> BuildPlan(const Catalog* catalog, CandidateRef ref) const;

  /// Materializes a not-yet-memoized candidate (its children must be
  /// memoized refs) — what the driver's keep-callback prices before
  /// deciding whether the candidate enters the memo.
  Result<PlanTree> BuildCandidatePlan(const Catalog* catalog,
                                      const Candidate& cand) const;

  /// Materializes a complete plan whose root joins two memoized
  /// candidates (outer feeds the probe, inner feeds the build).
  Result<PlanTree> BuildRootPlan(const Catalog* catalog, CandidateRef outer,
                                 CandidateRef inner) const;

  /// Dense id of a connected subset mask; -1 when the mask is not
  /// memoized (disconnected, empty, or the full set).
  int SubsetId(uint64_t mask) const;

 private:
  struct Subset {
    uint64_t mask = 0;
    int size = 0;
    std::vector<Candidate> cands;
  };

  PlanEnumerator() = default;

  /// Appends the candidate's leaves/joins to `plan` bottom-up; returns
  /// the plan-node id of the candidate's root.
  Result<int> EmitNode(PlanTree* plan, CandidateRef ref) const;

  int num_relations_ = 0;
  uint64_t full_mask_ = 0;
  /// Neighbor mask per relation (graph adjacency).
  std::vector<uint64_t> adj_;
  std::vector<Subset> subsets_;
  std::unordered_map<uint64_t, int> id_of_;
  std::vector<std::vector<int>> by_size_;
  std::vector<RootSlice> slices_;
};

}  // namespace mrs

#endif  // MRS_OPTIMIZER_PLAN_ENUMERATOR_H_
