#ifndef MRS_OPTIMIZER_OPTIMIZER_H_
#define MRS_OPTIMIZER_OPTIMIZER_H_

#include <cstdint>
#include <memory>
#include <string>

#include "catalog/catalog.h"
#include "common/metrics.h"
#include "common/result.h"
#include "exec/trace.h"
#include "optimizer/makespan_cost.h"
#include "optimizer/plan_enumerator.h"
#include "plan/plan_tree.h"
#include "plan/query_graph.h"

namespace mrs {

/// Knobs of the scheduler-in-the-loop join-order search.
struct OptimizerOptions {
  /// Granularity parameter f of the CG_f condition.
  double granularity = 0.7;
  ParallelizationPolicy policy = ParallelizationPolicy::kCoarseGrain;
  BuildDegreePolicy build_degree = BuildDegreePolicy::kJoinAware;
  /// Which engine prices each candidate plan.
  OptimizerEngine engine = OptimizerEngine::kTree;
  /// Disks per site (machine.dims must be >= 2 + num_disks).
  int num_disks = 1;
  /// Cost-model mode (e.g. a Calibrator's fitted scales).
  CostModelOptions cost_options;
  /// Search worker threads (clamped to >= 1). The result is byte-identical
  /// across thread counts.
  int num_threads = 1;
  /// Lower-bound pruning (OPTBOUND vs the greedy-seed incumbent). Pruning
  /// never changes the returned makespan — only how many schedules are
  /// paid. prune=false is the exhaustive baseline.
  bool prune = true;
  /// Hard cap on memoized subplan candidates; exceeding it fails with
  /// InvalidArgument ("plan space too large") instead of thrashing.
  uint64_t max_candidates = 4000000;
  /// Metrics registry for the opt.* counters (null = process global).
  MetricsRegistry* metrics = nullptr;
  /// Optional trace sink: spans opt_seed / opt_dp / opt_search plus a
  /// whole-call `optimize` span carrying the counters.
  TraceSink* trace = nullptr;
};

/// Search counters. All except cache_{hits,misses} are deterministic for a
/// fixed option set regardless of thread count; the cache counters depend
/// on racing double-computes and are informational only.
struct OptimizerStats {
  uint64_t plans_considered = 0;  ///< complete plans formed at the root
  uint64_t plans_scheduled = 0;   ///< complete plans fully scheduled
  uint64_t plans_pruned = 0;      ///< complete plans skipped via lower bound
  uint64_t subplans_considered = 0;  ///< memo candidates generated
  uint64_t subplans_kept = 0;        ///< memo candidates kept
  uint64_t subplans_pruned = 0;      ///< memo candidates pruned
  uint64_t cache_hits = 0;    ///< shared parallelize-cache hits
  uint64_t cache_misses = 0;  ///< shared parallelize-cache misses
  int num_subsets = 0;  ///< proper connected subsets memoized
  int num_slices = 0;   ///< root slices (search-space partitions)
};

/// The optimum and how it was found.
struct OptimizeResult {
  /// The winning plan (never null on success), finalized over the input
  /// catalog.
  std::unique_ptr<PlanTree> plan;
  /// Its scheduled makespan under the configured engine — bit-equal to
  /// the exhaustive baseline's optimum by construction.
  double makespan = 0.0;
  /// Stable identity of the winning plan: (root slice << 40) | slice-local
  /// combination index, counted before pruning, so ids are comparable
  /// between pruned and exhaustive runs of the same graph. Ties in
  /// makespan resolve to the lowest id.
  uint64_t plan_id = 0;
  /// Makespan of the greedy connectivity-ordered seed plan (the pruning
  /// incumbent; always >= makespan).
  double seed_makespan = 0.0;
  OptimizerStats stats;

  /// Option echo for reports.
  int num_relations = 0;
  int num_joins = 0;
  OptimizerEngine engine = OptimizerEngine::kTree;
  bool prune = true;

  /// Deterministic multi-line report (no thread count, no timings, no
  /// cache counters — byte-identical across thread counts; golden-pinned).
  std::string Explain() const;
};

/// Finds the bushy cross-product-free join order of `graph` minimizing the
/// *scheduler's own makespan* (TreeSchedule response time or ListSchedule
/// makespan), searching the DP memo of PlanEnumerator in parallel:
///
///   1. a greedy connectivity-ordered seed plan is scheduled to obtain the
///      pruning incumbent;
///   2. the memo of proper connected subsets is filled bottom-up, one
///      thread-pool job per subset with a barrier between sizes; with
///      pruning on, a candidate is dropped when its O(1) compositional
///      lower bound (SubplanBound: work/packing, operator floors, and the
///      build blocking chain, including the scans the subplan does not
///      cover) already exceeds the seed — a *fixed* incumbent, so the
///      memo is identical for every thread count;
///   3. complete plans are priced slice by slice (a slice = one connected
///      root partition, Trummer & Koch's per-worker plan-space partition),
///      each slice keeping a local incumbent and gating in two tiers: the
///      compositional bound first (no plan materialized), then the full
///      prepared-plan bound (MakespanCostFn::LowerBound) before the
///      scheduler is paid;
///   4. per-slice argmins merge deterministically by (makespan, plan_id).
///
/// All candidate evaluation is pure, so the returned plan, makespan, and
/// all non-cache counters are byte-identical across `num_threads`.
Result<OptimizeResult> OptimizeJoinOrder(const Catalog& catalog,
                                         const QueryGraph& graph,
                                         const CostParams& params,
                                         const MachineConfig& machine,
                                         const OverlapUsageModel& usage,
                                         const OptimizerOptions& options = {});

/// The exhaustive baseline: the same search with pruning disabled — every
/// candidate is memoized and every complete plan is scheduled. Agrees with
/// OptimizeJoinOrder bit-exactly on makespan (the differential tests pin
/// this); pays the full plan space.
Result<OptimizeResult> ExhaustivePlanSearch(const Catalog& catalog,
                                            const QueryGraph& graph,
                                            const CostParams& params,
                                            const MachineConfig& machine,
                                            const OverlapUsageModel& usage,
                                            OptimizerOptions options = {});

}  // namespace mrs

#endif  // MRS_OPTIMIZER_OPTIMIZER_H_
