#ifndef MRS_OPTIMIZER_MAKESPAN_COST_H_
#define MRS_OPTIMIZER_MAKESPAN_COST_H_

#include <cstdint>
#include <vector>

#include "catalog/catalog.h"
#include "common/result.h"
#include "core/list_schedule.h"
#include "core/tree_schedule.h"
#include "cost/cost_model.h"
#include "cost/parallelize_cache.h"
#include "plan/operator_tree.h"
#include "plan/plan_tree.h"
#include "plan/task_tree.h"
#include "resource/machine.h"
#include "resource/usage_model.h"

namespace mrs {

/// Which scheduling engine prices a candidate plan.
enum class OptimizerEngine {
  kTree,  ///< TREESCHEDULE response time (synchronized phases)
  kList,  ///< barrier-free LISTSCHEDULE makespan (tree_guard on)
};

struct MakespanCostOptions {
  /// Granularity parameter f of the CG_f condition.
  double granularity = 0.7;
  ParallelizationPolicy policy = ParallelizationPolicy::kCoarseGrain;
  BuildDegreePolicy build_degree = BuildDegreePolicy::kJoinAware;
  OptimizerEngine engine = OptimizerEngine::kTree;
  /// Disks per site (widens the work-vector layout, see CostModel).
  int num_disks = 1;
  /// Cost-model mode (e.g. a Calibrator's fitted per-dimension scales).
  CostModelOptions cost_options;
  /// Shared memoized parallelization cache (not owned, may be null). The
  /// cache is thread-safe and its entries are pure functions of the
  /// operator signature, so one cache serves all search workers — the
  /// optimizer's subplan-schedule memoization rides on it.
  ParallelizeCache* cache = nullptr;
};

/// A plan expanded and costed once, ready for repeated bound/schedule
/// evaluation. TaskTree holds operator ids only, so the struct is movable.
struct PreparedPlan {
  OperatorTree ops;
  TaskTree tasks;
  std::vector<OperatorCost> costs;
  /// Per-dimension sum of all operators' zero-communication work.
  WorkVector total_processing{1};
};

/// Compositional pruning aggregates of a memoized subplan candidate:
/// everything needed to lower-bound the candidate — and any join of two
/// candidates — *without* materializing a PlanTree or costing the whole
/// operator tree. CombineBound() prices only the two root operators of
/// the join (an O(1) step given the children's aggregates), which is what
/// lets the search gate the vast majority of candidates for a fraction of
/// the cost of Prepare().
struct SubplanBound {
  /// Root output cardinality (key-join sizing, as PlanTree::AddJoin).
  int64_t out_tuples = 0;
  /// Root output layout (a join inherits its outer child's layout).
  TupleLayout layout;
  /// Sum of every operator's zero-communication processing work.
  WorkVector work{1};
  /// Lower bound on when the root task can start: the blocking chain of
  /// hash builds below it (tree engine only; see LowerBound's phase-sum).
  double root_start = 0.0;
  /// Slowest-operator floor within the root pipeline.
  double root_floor = 0.0;
  /// Slowest-operator floor across the whole subplan.
  double max_floor = 0.0;
};

/// The optimizer's cost function: the scheduler's own makespan, plus a
/// lower bound used to prune partial plans before a full schedule is
/// paid (the packing term comes from OPTBOUND; see src/core/opt_bound.h).
///
/// The lower bound is sound for *partial* plans (subplans over a relation
/// subset) because every term is monotone under embedding into any
/// completion: (i) packing — a scan's processing vector depends only on
/// the relation (its consumer affects communication bytes, never the
/// zero-communication work), so l(subplan work + uncovered scan work)/P
/// never exceeds the completion's work bound, and l(.) subadditivity
/// makes that a bound on any schedule; (ii) operator floors — an operator
/// runs at some degree N in [1, P] and lasts at least
/// min_n T_par(op, n) = T_par(op, OptimalDegree); (iii) tree engine only
/// — synchronized phases run back to back and the subplan's ALAP phase
/// partition maps into the completion's with per-phase terms only
/// growing, so the per-phase sum of max(slowest floor, l(phase)/P) bounds
/// the completion's response time. OPTBOUND's CG_f-capped critical path
/// is *not* a valid pruning bound here: kJoinAware builds legally exceed
/// their own CG_f degree, so that path can overshoot the priced schedule.
class MakespanCostFn {
 public:
  /// Validates the machine config and precomputes the per-relation scan
  /// work vectors. `catalog` must outlive the cost function.
  static Result<MakespanCostFn> Create(const Catalog* catalog,
                                       const CostParams& params,
                                       const MachineConfig& machine,
                                       const OverlapUsageModel& usage,
                                       const MakespanCostOptions& options);

  /// Expands, groups, and costs `plan` (which may cover any subset of the
  /// catalog's relations).
  Result<PreparedPlan> Prepare(const PlanTree& plan) const;

  /// Lower bound on the makespan of any complete plan containing `p` as a
  /// subplan. `relations_mask` holds the catalog relation ids `p` covers
  /// (bit r = relation r); scan work of the relations outside the mask is
  /// folded into the work bound.
  Result<double> LowerBound(const PreparedPlan& p,
                            uint64_t relations_mask) const;

  /// The scheduled makespan of a complete plan under the configured
  /// engine. Deterministic: equal inputs give bit-equal results, with or
  /// without the shared cache.
  Result<double> Makespan(const PreparedPlan& p) const;

  /// Pruning aggregates of a single-relation (leaf) candidate.
  Result<SubplanBound> LeafBound(int relation) const;

  /// Aggregates of `outer JOIN inner`: costs only the root build and
  /// probe operators (mirroring OperatorTree::FromPlan, consumer-less
  /// root — a completion only adds communication, keeping every term a
  /// valid lower bound) and folds the children's aggregates in O(1).
  Result<SubplanBound> CombineBound(const SubplanBound& outer,
                                    const SubplanBound& inner) const;

  /// Cheap counterpart of LowerBound() over the aggregates alone: the
  /// augmented work bound plus the structural floors (the build blocking
  /// chain for the tree engine, the slowest single operator for both).
  /// Never exceeds the makespan of any completion of the candidate.
  double CheapLowerBound(const SubplanBound& b, uint64_t relations_mask) const;

  const MachineConfig& machine() const { return machine_; }
  const MakespanCostOptions& options() const { return options_; }

 private:
  MakespanCostFn(const Catalog* catalog, const CostParams& params,
                 MachineConfig machine, const OverlapUsageModel& usage,
                 const MakespanCostOptions& options);

  /// min_n T_par(cost, n): the cheapest stand-alone time any degree in
  /// [1, P] admits (T_par is unimodal with its min at OptimalDegree).
  double OperatorFloor(const OperatorCost& cost) const;

  const Catalog* catalog_;
  CostParams params_;
  MachineConfig machine_;
  OverlapUsageModel usage_;
  MakespanCostOptions options_;
  CostModel cost_model_;
  /// Zero-communication scan work per catalog relation id.
  std::vector<WorkVector> scan_work_;
};

}  // namespace mrs

#endif  // MRS_OPTIMIZER_MAKESPAN_COST_H_
