#include "optimizer/plan_enumerator.h"

#include <algorithm>

#include "common/str_util.h"

namespace mrs {

namespace {

int PopCount(uint64_t mask) {
  int count = 0;
  while (mask != 0) {
    mask &= mask - 1;
    ++count;
  }
  return count;
}

}  // namespace

Result<PlanEnumerator> PlanEnumerator::Create(const QueryGraph& graph) {
  const int n = graph.num_relations();
  if (n < 1) {
    return Status::InvalidArgument("query graph has no relations");
  }
  if (n > kMaxRelations) {
    return Status::InvalidArgument(
        StrFormat("query graph has %d relations; the optimizer supports at "
                  "most %d (the DP table is exponential in the count)",
                  n, kMaxRelations));
  }
  if (!graph.IsConnected()) {
    return Status::InvalidArgument(
        "query graph is disconnected; the optimizer does not introduce "
        "cross products");
  }

  PlanEnumerator e;
  e.num_relations_ = n;
  e.full_mask_ = (n == 64) ? ~uint64_t{0} : ((uint64_t{1} << n) - 1);
  e.adj_.assign(static_cast<size_t>(n), 0);
  for (const JoinEdge& edge : graph.edges()) {
    e.adj_[static_cast<size_t>(edge.left_relation)] |=
        uint64_t{1} << edge.right_relation;
    e.adj_[static_cast<size_t>(edge.right_relation)] |=
        uint64_t{1} << edge.left_relation;
  }

  // Memoize every connected mask except the full set (handled via root
  // slices); a single-relation query keeps its one subset so BuildPlan can
  // emit the lone leaf.
  e.by_size_.assign(static_cast<size_t>(n) + 1, {});
  for (uint64_t mask = 1; mask <= e.full_mask_; ++mask) {
    if (n > 1 && mask == e.full_mask_) continue;
    // Flood-fill from the lowest relation; connected iff the fill covers
    // the whole mask.
    uint64_t reach = mask & (~mask + 1);
    for (;;) {
      uint64_t frontier = 0;
      for (uint64_t bits = reach; bits != 0; bits &= bits - 1) {
        int r = PopCount((bits & (~bits + 1)) - 1);
        frontier |= e.adj_[static_cast<size_t>(r)];
      }
      uint64_t next = reach | (frontier & mask);
      if (next == reach) break;
      reach = next;
    }
    if (reach != mask) continue;
    int id = static_cast<int>(e.subsets_.size());
    Subset s;
    s.mask = mask;
    s.size = PopCount(mask);
    e.subsets_.push_back(std::move(s));
    e.id_of_.emplace(mask, id);
    e.by_size_[static_cast<size_t>(e.subsets_.back().size)].push_back(id);
  }

  // Masks were visited in increasing order, so each by_size_ level is in
  // increasing mask order and ids within a level are contiguous-ascending:
  // the deterministic iteration order every later stage relies on.
  for (int id = 0; id < e.num_subsets(); ++id) {
    Subset& s = e.subsets_[static_cast<size_t>(id)];
    if (s.size == 1) {
      Candidate leaf;
      leaf.relation = PopCount(s.mask - 1);
      s.cands.push_back(leaf);
    }
  }

  if (n > 1) {
    for (uint64_t outer = 1; outer < e.full_mask_; ++outer) {
      if ((outer & 1) == 0) continue;
      int outer_id = e.SubsetId(outer);
      if (outer_id < 0) continue;
      int inner_id = e.SubsetId(e.full_mask_ ^ outer);
      if (inner_id < 0) continue;
      RootSlice slice;
      slice.outer_subset = outer_id;
      slice.inner_subset = inner_id;
      e.slices_.push_back(slice);
    }
  }
  return e;
}

const std::vector<int>& PlanEnumerator::SubsetsOfSize(int size) const {
  static const std::vector<int> kEmpty;
  if (size < 0 || size >= static_cast<int>(by_size_.size())) return kEmpty;
  return by_size_[static_cast<size_t>(size)];
}

uint64_t PlanEnumerator::total_candidates() const {
  uint64_t total = 0;
  for (const Subset& s : subsets_) total += s.cands.size();
  return total;
}

int PlanEnumerator::SubsetId(uint64_t mask) const {
  auto it = id_of_.find(mask);
  return it == id_of_.end() ? -1 : it->second;
}

PlanEnumerator::GenerateCounts PlanEnumerator::GenerateCandidates(
    int id, const std::function<bool(const Candidate&)>& keep) {
  GenerateCounts counts;
  Subset& s = subsets_[static_cast<size_t>(id)];
  if (s.size <= 1) {
    counts.generated = counts.kept = s.cands.size();
    return counts;
  }
  const uint64_t mask = s.mask;
  const uint64_t low = mask & (~mask + 1);
  // Candidates are appended to a fresh list so `keep` never observes a
  // partially built memo entry for this subset.
  std::vector<Candidate> cands;
  for (uint64_t a = (mask - 1) & mask; a != 0; a = (a - 1) & mask) {
    if ((a & low) == 0) continue;  // canonical half holds the lowest bit
    const uint64_t b = mask ^ a;
    const int ia = SubsetId(a);
    if (ia < 0) continue;
    const int ib = SubsetId(b);
    if (ib < 0) continue;
    // A connected mask split into two connected halves always has a graph
    // edge across the cut, so every (a, b) pair here is join-compatible.
    const auto& ca = subsets_[static_cast<size_t>(ia)].cands;
    const auto& cb = subsets_[static_cast<size_t>(ib)].cands;
    for (int i = 0; i < static_cast<int>(ca.size()); ++i) {
      for (int j = 0; j < static_cast<int>(cb.size()); ++j) {
        Candidate first;
        first.outer = CandidateRef{ia, i};
        first.inner = CandidateRef{ib, j};
        ++counts.generated;
        if (keep(first)) {
          cands.push_back(first);
          ++counts.kept;
        }
        Candidate second;
        second.outer = CandidateRef{ib, j};
        second.inner = CandidateRef{ia, i};
        ++counts.generated;
        if (keep(second)) {
          cands.push_back(second);
          ++counts.kept;
        }
      }
    }
  }
  s.cands = std::move(cands);
  return counts;
}

Result<int> PlanEnumerator::EmitNode(PlanTree* plan, CandidateRef ref) const {
  if (ref.subset < 0 || ref.subset >= num_subsets()) {
    return Status::InvalidArgument(
        StrFormat("candidate subset %d out of range", ref.subset));
  }
  const Subset& s = subsets_[static_cast<size_t>(ref.subset)];
  if (ref.idx < 0 || ref.idx >= static_cast<int>(s.cands.size())) {
    return Status::InvalidArgument(
        StrFormat("candidate index %d out of range for subset %d (%d "
                  "candidates)",
                  ref.idx, ref.subset, static_cast<int>(s.cands.size())));
  }
  const Candidate& cand = s.cands[static_cast<size_t>(ref.idx)];
  if (cand.relation >= 0) {
    return plan->AddLeaf(cand.relation);
  }
  MRS_ASSIGN_OR_RETURN(int outer_id, EmitNode(plan, cand.outer));
  MRS_ASSIGN_OR_RETURN(int inner_id, EmitNode(plan, cand.inner));
  return plan->AddJoin(outer_id, inner_id);
}

Result<PlanTree> PlanEnumerator::BuildPlan(const Catalog* catalog,
                                           CandidateRef ref) const {
  PlanTree plan(catalog);
  MRS_RETURN_IF_ERROR(EmitNode(&plan, ref).status());
  MRS_RETURN_IF_ERROR(plan.Finalize());
  return plan;
}

Result<PlanTree> PlanEnumerator::BuildCandidatePlan(
    const Catalog* catalog, const Candidate& cand) const {
  PlanTree plan(catalog);
  if (cand.relation >= 0) {
    MRS_RETURN_IF_ERROR(plan.AddLeaf(cand.relation).status());
  } else {
    MRS_ASSIGN_OR_RETURN(int outer_id, EmitNode(&plan, cand.outer));
    MRS_ASSIGN_OR_RETURN(int inner_id, EmitNode(&plan, cand.inner));
    MRS_RETURN_IF_ERROR(plan.AddJoin(outer_id, inner_id).status());
  }
  MRS_RETURN_IF_ERROR(plan.Finalize());
  return plan;
}

Result<PlanTree> PlanEnumerator::BuildRootPlan(const Catalog* catalog,
                                               CandidateRef outer,
                                               CandidateRef inner) const {
  PlanTree plan(catalog);
  MRS_ASSIGN_OR_RETURN(int outer_id, EmitNode(&plan, outer));
  MRS_ASSIGN_OR_RETURN(int inner_id, EmitNode(&plan, inner));
  MRS_RETURN_IF_ERROR(plan.AddJoin(outer_id, inner_id).status());
  MRS_RETURN_IF_ERROR(plan.Finalize());
  return plan;
}

}  // namespace mrs
