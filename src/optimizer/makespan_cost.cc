#include "optimizer/makespan_cost.h"

#include <algorithm>
#include <utility>

#include "common/str_util.h"
#include "core/opt_bound.h"
#include "cost/parallelize.h"

namespace mrs {

MakespanCostFn::MakespanCostFn(const Catalog* catalog,
                               const CostParams& params,
                               MachineConfig machine,
                               const OverlapUsageModel& usage,
                               const MakespanCostOptions& options)
    : catalog_(catalog),
      params_(params),
      machine_(std::move(machine)),
      usage_(usage),
      options_(options),
      cost_model_(params, machine_.dims, options.num_disks,
                  options.cost_options) {}

Result<MakespanCostFn> MakespanCostFn::Create(
    const Catalog* catalog, const CostParams& params,
    const MachineConfig& machine, const OverlapUsageModel& usage,
    const MakespanCostOptions& options) {
  if (catalog == nullptr) {
    return Status::InvalidArgument("MakespanCostFn: null catalog");
  }
  if (catalog->num_relations() > 64) {
    return Status::InvalidArgument(
        StrFormat("MakespanCostFn: catalog has %d relations; subset masks "
                  "support at most 64",
                  catalog->num_relations()));
  }
  MRS_RETURN_IF_ERROR(params.Validate());
  MachineConfig config = machine;
  MRS_RETURN_IF_ERROR(config.Validate());
  if (options.num_disks < 1) {
    return Status::InvalidArgument(
        StrFormat("MakespanCostFn: num_disks must be >= 1, got %d",
                  options.num_disks));
  }
  if (config.dims < 2 + options.num_disks) {
    return Status::InvalidArgument(
        StrFormat("MakespanCostFn: machine dims %d too small for %d disks "
                  "(need >= %d)",
                  config.dims, options.num_disks, 2 + options.num_disks));
  }
  MakespanCostFn fn(catalog, params, std::move(config), usage, options);

  // Precompute each relation's zero-communication scan work. The cost
  // model charges a scan's consumer only through data_bytes, so this
  // vector is exactly the scan's processing vector in *any* plan — the
  // fact that makes the outside-subset work augmentation in LowerBound
  // sound.
  fn.scan_work_.reserve(static_cast<size_t>(catalog->num_relations()));
  for (int r = 0; r < catalog->num_relations(); ++r) {
    MRS_ASSIGN_OR_RETURN(Relation rel, catalog->GetRelation(r));
    PhysicalOp scan;
    scan.id = 0;
    scan.kind = OperatorKind::kScan;
    scan.input_tuples = rel.num_tuples;
    scan.output_tuples = rel.num_tuples;
    scan.layout = rel.layout;
    MRS_ASSIGN_OR_RETURN(OperatorCost cost, fn.cost_model_.Cost(scan));
    fn.scan_work_.push_back(std::move(cost.processing));
  }
  return fn;
}

Result<PreparedPlan> MakespanCostFn::Prepare(const PlanTree& plan) const {
  PreparedPlan p;
  MRS_ASSIGN_OR_RETURN(p.ops, OperatorTree::FromPlan(plan));
  MRS_ASSIGN_OR_RETURN(p.tasks, TaskTree::FromOperatorTree(&p.ops));
  MRS_ASSIGN_OR_RETURN(p.costs, cost_model_.CostAll(p.ops));
  p.total_processing = WorkVector(static_cast<size_t>(machine_.dims));
  for (const OperatorCost& cost : p.costs) {
    p.total_processing += cost.processing;
  }
  return p;
}

Result<double> MakespanCostFn::LowerBound(const PreparedPlan& p,
                                          uint64_t relations_mask) const {
  MRS_ASSIGN_OR_RETURN(
      OptBoundResult ob,
      OptBound(p.ops, p.tasks, p.costs, params_, usage_,
               options_.granularity, machine_.num_sites));
  const double sites = static_cast<double>(machine_.num_sites);
  // Work bound over the *whole* query: the subplan's own processing plus
  // the scan work of every relation it does not cover — work any
  // completion of this subplan must still perform. l(.) is subadditive
  // and every site's time is at least the length of its load, so this
  // holds for any schedule under either engine.
  WorkVector total = p.total_processing;
  for (int r = 0; r < catalog_->num_relations(); ++r) {
    if ((relations_mask >> r) & 1) continue;
    total += scan_work_[static_cast<size_t>(r)];
  }
  double bound = std::max(ob.work_bound, total.Length() / sites);

  // Per-operator floor: an operator runs at *some* degree N in [1, P] and
  // lasts at least T_par(op, N) >= min_n T_par(op, n); T_par is unimodal,
  // so the min sits at OptimalDegree. OPTBOUND's CG_f-capped critical
  // path is deliberately NOT used here: the kJoinAware build policy
  // legally sizes a build by the *combined* join cost and so exceeds the
  // build's own CG_f degree — the capped path can overshoot the very
  // schedules being priced.
  std::vector<double> op_floor(p.costs.size(), 0.0);
  for (size_t i = 0; i < p.costs.size(); ++i) {
    op_floor[i] = OperatorFloor(p.costs[i]);
  }

  if (options_.engine == OptimizerEngine::kTree) {
    // Synchronized phases execute back to back, and each phase lasts at
    // least as long as its slowest operator's floor and its packing bound
    // l(phase work)/P. The subplan's ALAP phase partition embeds into
    // every completion's at a constant phase shift (non-root tasks keep
    // their parent chains; the root pipeline only gains operators and
    // moves later), with every per-phase term only growing — so the sum
    // bounds the response time of every completion.
    double phase_sum = 0.0;
    for (int k = 0; k < p.tasks.num_phases(); ++k) {
      double slowest = 0.0;
      WorkVector phase_work(static_cast<size_t>(machine_.dims));
      for (int tid : p.tasks.phase(k)) {
        for (int oid : p.tasks.task(tid).ops) {
          slowest = std::max(slowest, op_floor[static_cast<size_t>(oid)]);
          phase_work += p.costs[static_cast<size_t>(oid)].processing;
        }
      }
      phase_sum += std::max(slowest, phase_work.Length() / sites);
    }
    bound = std::max(bound, phase_sum);
  } else {
    // Barrier-free list schedules overlap phases, so only the slowest
    // single operator is a safe structural floor.
    for (double f : op_floor) bound = std::max(bound, f);
  }
  return bound;
}

double MakespanCostFn::OperatorFloor(const OperatorCost& cost) const {
  const int n_opt = OptimalDegree(cost, params_, usage_, machine_.num_sites);
  return ParallelTime(cost, n_opt, params_, usage_);
}

Result<SubplanBound> MakespanCostFn::LeafBound(int relation) const {
  MRS_ASSIGN_OR_RETURN(Relation rel, catalog_->GetRelation(relation));
  PhysicalOp scan;
  scan.id = 0;
  scan.kind = OperatorKind::kScan;
  scan.input_tuples = rel.num_tuples;
  scan.output_tuples = rel.num_tuples;
  scan.layout = rel.layout;
  MRS_ASSIGN_OR_RETURN(OperatorCost cost, cost_model_.Cost(scan));
  SubplanBound b;
  b.out_tuples = rel.num_tuples;
  b.layout = rel.layout;
  b.work = std::move(cost.processing);
  b.root_start = 0.0;
  b.root_floor = OperatorFloor(cost);
  b.max_floor = b.root_floor;
  return b;
}

Result<SubplanBound> MakespanCostFn::CombineBound(
    const SubplanBound& outer, const SubplanBound& inner) const {
  // The root join's two operators, exactly as OperatorTree::FromPlan
  // would emit them for `outer JOIN inner` (the root probe has no
  // consumer; one only appears in a completion and only adds
  // communication, so these costs never exceed the in-context ones).
  PhysicalOp build;
  build.id = 0;
  build.kind = OperatorKind::kBuild;
  build.input_tuples = inner.out_tuples;
  build.output_tuples = 0;
  build.table_tuples = inner.out_tuples;
  build.layout = inner.layout;
  MRS_ASSIGN_OR_RETURN(OperatorCost build_cost, cost_model_.Cost(build));

  PhysicalOp probe;
  probe.id = 1;
  probe.kind = OperatorKind::kProbe;
  probe.input_tuples = outer.out_tuples;
  probe.output_tuples = KeyJoinResultTuples(outer.out_tuples,
                                            inner.out_tuples);
  probe.layout = outer.layout;
  MRS_ASSIGN_OR_RETURN(OperatorCost probe_cost, cost_model_.Cost(probe));

  const double build_floor = OperatorFloor(build_cost);
  const double probe_floor = OperatorFloor(probe_cost);

  SubplanBound b;
  b.out_tuples = probe.output_tuples;
  b.layout = outer.layout;
  b.work = outer.work;
  b.work += inner.work;
  b.work += build_cost.processing;
  b.work += probe_cost.processing;
  // The build joins the inner's root pipeline (its task floor grows to
  // the slower of the two); that task must finish before the root task —
  // the outer's root pipeline merged with the probe — can start.
  const double build_done =
      inner.root_start + std::max(inner.root_floor, build_floor);
  b.root_start = std::max(outer.root_start, build_done);
  b.root_floor = std::max(outer.root_floor, probe_floor);
  b.max_floor = std::max({outer.max_floor, inner.max_floor, build_floor,
                          probe_floor});
  return b;
}

double MakespanCostFn::CheapLowerBound(const SubplanBound& b,
                                       uint64_t relations_mask) const {
  WorkVector total = b.work;
  for (int r = 0; r < catalog_->num_relations(); ++r) {
    if ((relations_mask >> r) & 1) continue;
    total += scan_work_[static_cast<size_t>(r)];
  }
  double bound = total.Length() / static_cast<double>(machine_.num_sites);
  bound = std::max(bound, b.max_floor);
  if (options_.engine == OptimizerEngine::kTree) {
    // Synchronized phases make the build blocking chain additive; see
    // LowerBound's phase-sum term for the embedding argument.
    bound = std::max(bound, b.root_start + b.root_floor);
  }
  return bound;
}

Result<double> MakespanCostFn::Makespan(const PreparedPlan& p) const {
  if (options_.engine == OptimizerEngine::kList) {
    ListScheduleOptions opts;
    opts.granularity = options_.granularity;
    opts.policy = options_.policy;
    opts.build_degree = options_.build_degree;
    opts.cache = options_.cache;
    MRS_ASSIGN_OR_RETURN(
        ListScheduleResult result,
        ListSchedule(p.ops, p.tasks, p.costs, params_, machine_, usage_,
                     opts));
    return result.makespan;
  }
  TreeScheduleOptions opts;
  opts.granularity = options_.granularity;
  opts.policy = options_.policy;
  opts.build_degree = options_.build_degree;
  opts.cache = options_.cache;
  MRS_ASSIGN_OR_RETURN(
      TreeScheduleResult result,
      TreeSchedule(p.ops, p.tasks, p.costs, params_, machine_, usage_,
                   opts));
  return result.response_time;
}

}  // namespace mrs
