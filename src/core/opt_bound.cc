#include "core/opt_bound.h"

#include <algorithm>

#include "common/str_util.h"

namespace mrs {

Result<OptBoundResult> OptBound(const OperatorTree& op_tree,
                                const TaskTree& task_tree,
                                const std::vector<OperatorCost>& costs,
                                const CostParams& params,
                                const OverlapUsageModel& usage, double f,
                                int num_sites) {
  if (static_cast<int>(costs.size()) != op_tree.num_ops()) {
    return Status::InvalidArgument(
        StrFormat("costs size %zu != %d operators", costs.size(),
                  op_tree.num_ops()));
  }
  if (num_sites < 1) {
    return Status::InvalidArgument("num_sites must be >= 1");
  }
  OptBoundResult result;

  // Work bound: total zero-communication work per resource over P sites.
  WorkVector total(costs.front().processing.dim());
  for (const auto& c : costs) total += c.processing;
  result.work_bound = total.Length() / static_cast<double>(num_sites);

  // Critical path: per task, the slowest operator at its best CG_f degree;
  // summed along the deepest blocking chain.
  std::vector<double> task_lb(static_cast<size_t>(task_tree.num_tasks()), 0.0);
  for (const auto& task : task_tree.tasks()) {
    double lb = 0.0;
    for (int oid : task.ops) {
      const OperatorCost& cost = costs[static_cast<size_t>(oid)];
      const int n_max = std::min(
          {MaxCoarseGrainDegree(cost.ProcessingArea(), cost.data_bytes,
                                params, f),
           OptimalDegree(cost, params, usage, num_sites), num_sites});
      lb = std::max(lb, ParallelTime(cost, n_max, params, usage));
    }
    task_lb[static_cast<size_t>(task.id)] = lb;
  }
  // Longest root-to-leaf chain. Process tasks deepest-first so children
  // are finished before their parents (tasks are stored in creation order,
  // so we sort ids by decreasing depth).
  std::vector<int> order(static_cast<size_t>(task_tree.num_tasks()));
  for (int i = 0; i < task_tree.num_tasks(); ++i)
    order[static_cast<size_t>(i)] = i;
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    return task_tree.task(a).depth > task_tree.task(b).depth;
  });
  std::vector<double> chain(static_cast<size_t>(task_tree.num_tasks()), 0.0);
  for (int tid : order) {
    const QueryTask& t = task_tree.task(tid);
    double best_child = 0.0;
    for (int c : t.children) {
      best_child = std::max(best_child, chain[static_cast<size_t>(c)]);
    }
    chain[static_cast<size_t>(tid)] =
        best_child + task_lb[static_cast<size_t>(tid)];
  }
  result.critical_path_bound =
      chain[static_cast<size_t>(task_tree.root_task())];
  return result;
}

}  // namespace mrs
