#include "core/memory_aware.h"

#include <algorithm>
#include <limits>
#include <unordered_map>

#include "common/logging.h"
#include "common/str_util.h"

namespace mrs {

namespace {

/// A build clone's resident hash-table share.
struct TableResidence {
  int build_op = -1;
  std::vector<std::pair<int, double>> site_shares;  // (site, bytes)
};

/// Memory-constrained variant of the OPERATORSCHEDULE list rule: clones
/// of operators with a memory demand may only go to sites with enough
/// free memory, and placing one reserves it. Returns the placements'
/// schedule and mutates `free_mem` on success only.
class SubphasePacker {
 public:
  SubphasePacker(int num_sites, int dims, std::vector<double>* free_mem)
      : num_sites_(num_sites), dims_(dims), free_mem_(free_mem) {}

  /// `mem_demand[i]` is the per-clone memory demand of ops[i] (0 for
  /// memory-less operators).
  Result<Schedule> Pack(const std::vector<ParallelizedOp>& ops,
                        const std::vector<double>& mem_demand) {
    Schedule schedule(num_sites_, dims_);
    std::vector<double> mem = *free_mem_;  // tentative

    // Rooted first (constraint B). Rooted probes have no memory demand.
    for (size_t i = 0; i < ops.size(); ++i) {
      if (!ops[i].rooted) continue;
      MRS_RETURN_IF_ERROR(schedule.PlaceRooted(ops[i]));
    }

    // Floating clones in non-increasing length order.
    struct CloneRef {
      size_t op_index;
      int clone_idx;
      double length;
    };
    std::vector<CloneRef> list;
    for (size_t i = 0; i < ops.size(); ++i) {
      if (ops[i].rooted) continue;
      for (int k = 0; k < ops[i].degree; ++k) {
        list.push_back(
            {i, k, ops[i].clones[static_cast<size_t>(k)].Length()});
      }
    }
    std::stable_sort(list.begin(), list.end(),
                     [](const CloneRef& a, const CloneRef& b) {
                       return a.length > b.length;
                     });

    std::vector<std::vector<char>> used(
        ops.size(), std::vector<char>(static_cast<size_t>(num_sites_), 0));
    std::vector<double> load_length(static_cast<size_t>(num_sites_), 0.0);
    for (int j = 0; j < num_sites_; ++j) {
      load_length[static_cast<size_t>(j)] = schedule.SiteLoadLength(j);
    }
    for (const CloneRef& clone : list) {
      const ParallelizedOp& op = ops[clone.op_index];
      const double demand = mem_demand[clone.op_index];
      int chosen = -1;
      double chosen_load = std::numeric_limits<double>::infinity();
      for (int j = 0; j < num_sites_; ++j) {
        if (used[clone.op_index][static_cast<size_t>(j)]) continue;
        if (demand > 0 && mem[static_cast<size_t>(j)] < demand) continue;
        if (load_length[static_cast<size_t>(j)] < chosen_load) {
          chosen = j;
          chosen_load = load_length[static_cast<size_t>(j)];
        }
      }
      if (chosen < 0) {
        return Status::FailedPrecondition(
            StrFormat("no site with %.0f free bytes for a clone of op%d",
                      demand, op.op_id));
      }
      MRS_RETURN_IF_ERROR(schedule.Place(op, clone.clone_idx, chosen));
      used[clone.op_index][static_cast<size_t>(chosen)] = 1;
      load_length[static_cast<size_t>(chosen)] =
          schedule.SiteLoadLength(chosen);
      if (demand > 0) mem[static_cast<size_t>(chosen)] -= demand;
    }
    *free_mem_ = std::move(mem);  // commit
    return schedule;
  }

 private:
  int num_sites_;
  int dims_;
  std::vector<double>* free_mem_;
};

/// Smallest degree n such that n distinct sites each have free memory for
/// a 1/n share of `table_bytes`; 0 if impossible even at n = P.
int MinDegreeForMemory(double table_bytes, const std::vector<double>& free_mem) {
  std::vector<double> sorted = free_mem;
  std::sort(sorted.begin(), sorted.end(), std::greater<double>());
  for (int n = 1; n <= static_cast<int>(sorted.size()); ++n) {
    const double share = table_bytes / static_cast<double>(n);
    if (sorted[static_cast<size_t>(n - 1)] >= share) return n;
  }
  return 0;
}

}  // namespace

std::vector<int> MemoryAwareResult::HomeOf(int op_id) const {
  for (const auto& phase : phases) {
    std::vector<int> home = phase.schedule.HomeOf(op_id);
    if (!home.empty()) return home;
  }
  return {};
}

std::string MemoryAwareResult::ToString() const {
  std::string out = StrFormat(
      "MemoryAwareSchedule(response=%.2fms, %zu subphases, %d splits, "
      "peak=%s)\n",
      response_time, phases.size(), phase_splits,
      FormatBytes(peak_site_memory).c_str());
  for (const auto& p : phases) {
    out += StrFormat("  phase %d.%d: %zu ops, makespan=%.2fms, peak=%s\n",
                     p.task_phase, p.subphase, p.ops.size(), p.makespan,
                     FormatBytes(p.peak_site_memory).c_str());
  }
  return out;
}

Result<MemoryAwareResult> MemoryAwareTreeSchedule(
    const OperatorTree& op_tree, const TaskTree& task_tree,
    const std::vector<OperatorCost>& costs, const CostParams& params,
    const MachineConfig& machine, const OverlapUsageModel& usage,
    const TreeScheduleOptions& options, const MemoryOptions& memory) {
  if (static_cast<int>(costs.size()) != op_tree.num_ops()) {
    return Status::InvalidArgument(
        StrFormat("costs size %zu != %d operators", costs.size(),
                  op_tree.num_ops()));
  }
  if (memory.site_memory_bytes <= 0 || memory.hash_table_overhead < 1.0) {
    return Status::InvalidArgument("invalid memory options");
  }
  MRS_RETURN_IF_ERROR(params.Validate());
  MachineConfig config = machine;
  MRS_RETURN_IF_ERROR(config.Validate());

  std::unordered_map<int, int> dependent_of;
  for (const auto& op : op_tree.ops()) {
    if (op.blocking_input >= 0) {
      dependent_of[op.blocking_input] = op.id;
    }
  }
  auto sizing_cost = [&](int oid) {
    const OperatorCost& own = costs[static_cast<size_t>(oid)];
    if (options.build_degree == BuildDegreePolicy::kJoinAware) {
      auto it = dependent_of.find(oid);
      if (it != dependent_of.end()) {
        OperatorCost joint = own;
        const OperatorCost& dep = costs[static_cast<size_t>(it->second)];
        joint.processing += dep.processing;
        joint.data_bytes += dep.data_bytes;
        return joint;
      }
    }
    return own;
  };
  // Memory-resident state materialized by an operator (hash/group tables;
  // 0 for disk-resident sorted runs and stateless operators).
  auto table_bytes = [&](int op_id) {
    const PhysicalOp& op = op_tree.op(op_id);
    return static_cast<double>(op.table_tuples) *
           static_cast<double>(op.layout.tuple_bytes) *
           memory.hash_table_overhead;
  };

  MemoryAwareResult result;
  std::vector<double> free_mem(static_cast<size_t>(config.num_sites),
                               memory.site_memory_bytes);
  // build op id -> resident shares, released when its probe's subphase ends.
  std::unordered_map<int, TableResidence> resident;

  for (int k = 0; k < task_tree.num_phases(); ++k) {
    std::vector<int> pending = task_tree.phase(k);
    // Memory-releasing tasks (those containing probes, which free their
    // builds' tables at subphase end) go first, so that under pressure
    // releases happen before reservations.
    std::stable_partition(pending.begin(), pending.end(), [&](int tid) {
      for (int oid : task_tree.task(tid).ops) {
        if (op_tree.op(oid).blocking_input >= 0) return true;
      }
      return false;
    });
    int subphase = 0;
    while (!pending.empty()) {
      // Greedily select a prefix of pending tasks whose aggregate table
      // demand fits the aggregate free memory.
      double free_total = 0.0;
      for (double m : free_mem) free_total += m;
      std::vector<int> selected;
      double demand_total = 0.0;
      for (int tid : pending) {
        double d = 0.0;
        for (int oid : task_tree.task(tid).ops) {
          d += table_bytes(oid);
        }
        if (selected.empty() || demand_total + d <= free_total) {
          selected.push_back(tid);
          demand_total += d;
        }
      }

      // Try to pack the selected tasks; on failure shed tasks from the
      // back until something fits.
      Result<Schedule> packed = Status::Internal("unattempted");
      std::vector<ParallelizedOp> ops;
      while (true) {
        ops.clear();
        std::vector<double> mem_demand;
        bool degree_ok = true;
        for (int tid : selected) {
          for (int oid : task_tree.task(tid).ops) {
            const PhysicalOp& op = op_tree.op(oid);
            const OperatorCost& cost = costs[static_cast<size_t>(oid)];
            if (op.blocking_input >= 0) {
              std::vector<int> home = result.HomeOf(op.blocking_input);
              if (home.empty()) {
                return Status::Internal(StrFormat(
                    "op%d scheduled before its blocking producer", oid));
              }
              auto rooted = ParallelizeRooted(cost, params, usage, home,
                                              config.num_sites);
              if (!rooted.ok()) return rooted.status();
              ops.push_back(std::move(rooted).value());
              mem_demand.push_back(0.0);
            } else {
              auto sized =
                  ParallelizeFloating(sizing_cost(oid), params, usage,
                                      options.granularity, config.num_sites);
              if (!sized.ok()) return sized.status();
              int degree = sized->degree;
              double demand = 0.0;
              if (op.table_tuples > 0) {
                const double table = table_bytes(oid);
                const int n_min = MinDegreeForMemory(table, free_mem);
                if (n_min == 0) {
                  degree_ok = false;
                  break;
                }
                degree = std::min(std::max(degree, n_min), config.num_sites);
                demand = table / static_cast<double>(degree);
              }
              auto par = ParallelizeAtDegree(cost, params, usage, degree,
                                             config.num_sites);
              if (!par.ok()) return par.status();
              ops.push_back(std::move(par).value());
              mem_demand.push_back(demand);
            }
          }
          if (!degree_ok) break;
        }
        if (degree_ok) {
          SubphasePacker packer(config.num_sites, config.dims, &free_mem);
          packed = packer.Pack(ops, mem_demand);
          if (packed.ok()) break;
        }
        if (selected.size() == 1) {
          // Try any other pending task alone before giving up: one that
          // contains probes may release memory for the rest.
          bool swapped = false;
          for (int tid : pending) {
            if (tid == selected[0]) continue;
            bool materializes_state = false;
            for (int oid : task_tree.task(tid).ops) {
              if (op_tree.op(oid).table_tuples > 0) {
                materializes_state = true;
              }
            }
            if (!materializes_state) {
              selected[0] = tid;
              swapped = true;
              break;
            }
          }
          if (!swapped) {
            return Status::FailedPrecondition(StrFormat(
                "phase %d: insufficient memory (%s/site) to place the hash "
                "tables of task %d",
                k, FormatBytes(memory.site_memory_bytes).c_str(),
                selected[0]));
          }
        } else {
          selected.pop_back();
        }
      }

      // Commit: record residencies, release tables probed this subphase.
      MemoryPhase phase{k, subphase, std::move(ops),
                        std::move(packed).value(), 0.0, 0.0};
      phase.makespan = phase.schedule.Makespan();
      for (const auto& op : phase.ops) {
        if (op.rooted) continue;
        if (op_tree.op(op.op_id).table_tuples <= 0) continue;
        TableResidence res;
        res.build_op = op.op_id;
        const double share =
            table_bytes(op.op_id) / static_cast<double>(op.degree);
        for (int site : phase.schedule.HomeOf(op.op_id)) {
          res.site_shares.emplace_back(site, share);
        }
        resident[op.op_id] = std::move(res);
      }
      double peak = 0.0;
      for (double m : free_mem) {
        peak = std::max(peak, memory.site_memory_bytes - m);
      }
      phase.peak_site_memory = peak;
      result.peak_site_memory = std::max(result.peak_site_memory, peak);
      for (const auto& op : phase.ops) {
        if (op_tree.op(op.op_id).blocking_input < 0) continue;
        auto it = resident.find(op_tree.op(op.op_id).blocking_input);
        if (it != resident.end()) {
          for (const auto& [site, share] : it->second.site_shares) {
            free_mem[static_cast<size_t>(site)] += share;
          }
          resident.erase(it);
        }
      }

      result.response_time += phase.makespan;
      if (subphase > 0) ++result.phase_splits;
      result.phases.push_back(std::move(phase));
      // Remove the selected tasks from pending (preserving order).
      std::vector<int> rest;
      for (int tid : pending) {
        if (std::find(selected.begin(), selected.end(), tid) ==
            selected.end()) {
          rest.push_back(tid);
        }
      }
      pending = std::move(rest);
      ++subphase;
    }
  }
  return result;
}

}  // namespace mrs
