#include "core/placement_index.h"

#include <algorithm>

namespace mrs {

void PlacementIndex::Reset(const std::vector<double>& loads) {
  num_sites_ = static_cast<int>(loads.size());
  load_ = loads;
  if (num_sites_ == 0) {
    size_ = 0;
    win_.clear();
    return;
  }
  size_ = 1;
  while (size_ < num_sites_) size_ <<= 1;
  win_.assign(static_cast<size_t>(2 * size_), -1);
  for (int s = 0; s < num_sites_; ++s) {
    win_[static_cast<size_t>(size_ + s)] = s;
  }
  for (int i = size_ - 1; i >= 1; --i) {
    win_[static_cast<size_t>(i)] = Winner(win_[static_cast<size_t>(2 * i)],
                                          win_[static_cast<size_t>(2 * i + 1)]);
  }
}

int PlacementIndex::Winner(int left, int right) const {
  if (left < 0) return right;
  if (right < 0) return left;
  // <= keeps the left (lower-index) site on equal loads — the same site
  // the reference scan's strict-< update would have stopped at first.
  return load_[static_cast<size_t>(left)] <= load_[static_cast<size_t>(right)]
             ? left
             : right;
}

void PlacementIndex::Update(int site, double load) {
  load_[static_cast<size_t>(site)] = load;
  for (int i = (size_ + site) >> 1; i >= 1; i >>= 1) {
    win_[static_cast<size_t>(i)] = Winner(win_[static_cast<size_t>(2 * i)],
                                          win_[static_cast<size_t>(2 * i + 1)]);
  }
}

int PlacementIndex::MinSiteExcluding(const std::vector<int>& excluded) const {
  if (win_.empty()) return -1;
  if (excluded.empty()) return win_[1];
  return Descend(1, 0, size_, excluded.data(),
                 excluded.data() + excluded.size());
}

int PlacementIndex::Descend(int node, int lo, int hi, const int* ex_begin,
                            const int* ex_end) const {
  if (ex_begin == ex_end) return win_[static_cast<size_t>(node)];
  if (hi - lo == 1) return -1;  // a single excluded site
  const int mid = lo + (hi - lo) / 2;
  const int* split = std::lower_bound(ex_begin, ex_end, mid);
  const int left = split == ex_begin
                       ? win_[static_cast<size_t>(2 * node)]
                       : Descend(2 * node, lo, mid, ex_begin, split);
  const int right = split == ex_end
                        ? win_[static_cast<size_t>(2 * node + 1)]
                        : Descend(2 * node + 1, mid, hi, split, ex_end);
  return Winner(left, right);
}

}  // namespace mrs
