#include "core/placement_index.h"

#include <algorithm>

namespace mrs {

void PlacementIndex::Reset(const std::vector<double>& loads) {
  num_sites_ = static_cast<int>(loads.size());
  load_ = loads;
  if (num_sites_ <= kLinearScanMaxSites) {
    // Leaf-scan mode: queries walk load_ directly, no tree to maintain.
    size_ = 0;
    win_.clear();
    return;
  }
  size_ = 1;
  while (size_ < num_sites_) size_ <<= 1;
  win_.assign(static_cast<size_t>(2 * size_), -1);
  for (int s = 0; s < num_sites_; ++s) {
    win_[static_cast<size_t>(size_ + s)] = s;
  }
  for (int i = size_ - 1; i >= 1; --i) {
    win_[static_cast<size_t>(i)] = Winner(win_[static_cast<size_t>(2 * i)],
                                          win_[static_cast<size_t>(2 * i + 1)]);
  }
}

int PlacementIndex::Winner(int left, int right) const {
  if (left < 0) return right;
  if (right < 0) return left;
  // <= keeps the left (lower-index) site on equal loads — the same site
  // the reference scan's strict-< update would have stopped at first.
  return load_[static_cast<size_t>(left)] <= load_[static_cast<size_t>(right)]
             ? left
             : right;
}

void PlacementIndex::Update(int site, double load) {
  load_[static_cast<size_t>(site)] = load;
  if (size_ == 0) return;  // leaf-scan mode: no winners to repair
  for (int i = (size_ + site) >> 1; i >= 1; i >>= 1) {
    win_[static_cast<size_t>(i)] = Winner(win_[static_cast<size_t>(2 * i)],
                                          win_[static_cast<size_t>(2 * i + 1)]);
  }
}

int PlacementIndex::MinSite() const {
  if (num_sites_ == 0) return -1;
  if (size_ == 0) return ScanExcluding(nullptr, nullptr);
  return win_[1];
}

int PlacementIndex::ScanExcluding(const int* ex, const int* ex_end) const {
  int best = -1;
  double best_load = 0.0;
  for (int s = 0; s < num_sites_; ++s) {
    if (ex != ex_end && *ex == s) {
      ++ex;
      continue;
    }
    const double load = load_[static_cast<size_t>(s)];
    // Strict <: ties keep the earlier (lower-index) site, like the
    // reference scan and the tree's left-on-tie Winner.
    if (best < 0 || load < best_load) {
      best = s;
      best_load = load;
    }
  }
  return best;
}

int PlacementIndex::MinSiteExcluding(const std::vector<int>& excluded) const {
  if (num_sites_ == 0) return -1;
  if (size_ == 0) {
    return ScanExcluding(excluded.data(), excluded.data() + excluded.size());
  }
  if (excluded.empty()) return win_[1];
  // Dense exclusions (a high-degree operator on a modest machine) touch
  // nearly every subtree, so the pruned descent visits ~all nodes; one
  // pass over the leaves is cheaper from about 1/kDenseExclusionRatio of
  // the sites on. load_ is always current, so the answer is the same.
  if (static_cast<int>(excluded.size()) * kDenseExclusionRatio >= num_sites_) {
    return ScanExcluding(excluded.data(), excluded.data() + excluded.size());
  }
  return Descend(1, 0, size_, excluded.data(),
                 excluded.data() + excluded.size());
}

int PlacementIndex::Descend(int node, int lo, int hi, const int* ex_begin,
                            const int* ex_end) const {
  if (ex_begin == ex_end) return win_[static_cast<size_t>(node)];
  if (hi - lo == 1) return -1;  // a single excluded site
  const int mid = lo + (hi - lo) / 2;
  const int* split = std::lower_bound(ex_begin, ex_end, mid);
  const int left = split == ex_begin
                       ? win_[static_cast<size_t>(2 * node)]
                       : Descend(2 * node, lo, mid, ex_begin, split);
  const int right = split == ex_end
                        ? win_[static_cast<size_t>(2 * node + 1)]
                        : Descend(2 * node + 1, mid, hi, split, ex_end);
  return Winner(left, right);
}

}  // namespace mrs
