#ifndef MRS_CORE_LIST_SCHEDULE_H_
#define MRS_CORE_LIST_SCHEDULE_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "core/operator_schedule.h"
#include "core/schedule.h"
#include "core/tree_schedule.h"
#include "cost/cost_model.h"
#include "cost/parallelize.h"
#include "cost/parallelize_cache.h"
#include "exec/trace.h"
#include "plan/operator_tree.h"
#include "plan/task_tree.h"
#include "resource/machine.h"
#include "resource/usage_model.h"

namespace mrs {

struct ListScheduleOptions {
  /// Granularity parameter f of the CG_f condition (ignored by kMalleable).
  double granularity = 0.7;
  ParallelizationPolicy policy = ParallelizationPolicy::kCoarseGrain;
  BuildDegreePolicy build_degree = BuildDegreePolicy::kJoinAware;
  /// Clone ordering / site selection knobs forwarded to the per-round
  /// OPERATORSCHEDULE pass (least-loaded selection then runs over the
  /// *residual* site load at the round's virtual time).
  OperatorScheduleOptions list_options;
  /// Optional memoized parallelization cache (not owned); same
  /// compatibility contract as TreeScheduleOptions::cache.
  ParallelizeCache* cache = nullptr;
  /// Optional trace sink (not owned): one `list_place` span per placement
  /// round plus a whole-call `list_schedule` span carrying the makespan,
  /// the eq. (3) binding term of the critical site, and whether the
  /// barrier-aligned guard fired.
  TraceSink* trace = nullptr;
  /// Optional external residual site load (not owned): the remaining work
  /// of co-resident queries per site, treated as static over this query's
  /// horizon. Added into every placement round's residual (so the
  /// least-loaded rule avoids busy sites) and forwarded to the
  /// tree_guard's TREESCHEDULE. Must hold exactly num_sites vectors of
  /// the machine's dims. Setting list_options.base_load instead is
  /// honored identically (ListSchedule folds the per-round residual on
  /// top of it); setting *both* is an InvalidArgument — the two fields
  /// would otherwise silently shadow each other.
  const std::vector<WorkVector>* base_load = nullptr;
  /// Intra-task pipelined parallelism (arxiv 1403.7729's extension of the
  /// model): treat each ready task as the producer/consumer pipeline the
  /// plan layer says it is, instead of an undifferentiated wave. Two
  /// changes to the round: (1) *rate matching* — the task's bottleneck
  /// stage sets the pipeline's drain rate, and every floating stage
  /// without a blocking dependent is re-parallelized down to
  /// RateMatchedDegree (fewer clones, same pipeline rate, less alpha*N
  /// startup and site load); (2) consumers are placed in pipeline-stage
  /// order, each stage's least-loaded pass seeing its producers' freshly
  /// committed load. Every consumer clone starts at the instant its
  /// pipelined producer starts (maximal overlap), and eq. (2)'s
  /// finish-together rule applies per co-resident set as always.
  bool pipeline = false;
  /// Dominance guard of pipeline mode: also compute the plain task-wave
  /// LIST schedule (itself tree-guarded) and fall back to it whenever
  /// the rate-matched overlap loses, so PIPELINED <= LIST <= TREE by
  /// construction and Theorem 5.1(a)'s (2d+1)-competitive bound is
  /// inherited. Ignored when `pipeline` is off.
  bool pipeline_guard = true;
  /// Dominance guard: also run TREESCHEDULE with the same options and, if
  /// the barrier-free greedy schedule comes out *longer* (contention along
  /// the critical path can beat the barriers it removed), fall back to the
  /// tree schedule replayed on the shared timeline (phase k starting at
  /// the sum of the earlier phase makespans). With the guard on,
  /// ListSchedule's makespan never exceeds TreeSchedule's response time on
  /// any plan — the invariant the differential harness pins.
  bool tree_guard = true;
};

/// Execution interval of one query task on the virtual timeline.
struct ListTaskInterval {
  int task = -1;
  double start = 0.0;
  double finish = 0.0;
};

/// A barrier-free LISTSCHEDULE result: one global Schedule whose clones
/// carry individual start times instead of per-phase barriers.
struct ListScheduleResult {
  Schedule schedule{1, 1};
  /// All parallelized operators, in placement-round order.
  std::vector<ParallelizedOp> ops;
  /// Completion time of every clone, parallel to schedule.placements().
  std::vector<double> clone_finish;
  /// Per-task execution intervals, indexed by task id.
  std::vector<ListTaskInterval> tasks;
  double makespan = 0.0;
  /// Number of placement rounds the event loop ran (leaf round + one per
  /// readiness wave); 1 round == a single synchronized shelf.
  int rounds = 0;
  /// True when the tree_guard replaced the greedy schedule with the
  /// barrier-aligned TREESCHEDULE placement (see
  /// ListScheduleOptions::tree_guard).
  bool used_tree_fallback = false;
  /// TREESCHEDULE response time the guard compared against (0 when the
  /// guard is disabled).
  double tree_response_time = 0.0;
  /// True when pipeline mode kept the rate-matched schedule; false when
  /// pipeline mode is off or the pipeline_guard fell back.
  bool pipelined = false;
  /// True when the pipeline_guard replaced the rate-matched schedule with
  /// the plain task-wave LIST schedule.
  bool used_list_fallback = false;
  /// Plain task-wave LIST makespan the pipeline_guard compared against
  /// (0 when pipeline mode is off).
  double list_makespan = 0.0;
  /// eq. (3) diagnosis: the site whose completion time is the makespan,
  /// and whether its last wave was bound by resource congestion
  /// (l(remaining work), `critical_resource` = the arg max dimension) or
  /// by its slowest clone's stand-alone time.
  int critical_site = -1;
  bool load_bound = false;
  int critical_resource = -1;

  /// Placement (home) of an operator; empty if unknown.
  std::vector<int> HomeOf(int op_id) const { return schedule.HomeOf(op_id); }

  /// Which mode produced the schedule: "aligned-fallback" (tree_guard
  /// fell back), "pipelined", "wave-fallback" (pipeline_guard fell
  /// back), or "greedy". Shared by ToString, explains, and gantts.
  const char* ModeString() const {
    return used_tree_fallback ? "aligned-fallback"
           : pipelined        ? "pipelined"
           : used_list_fallback ? "wave-fallback"
                                : "greedy";
  }

  std::string ToString() const;
};

/// Barrier-free precedence-aware moldable list scheduling — the third
/// engine beside TREESCHEDULE and SYNCHRONOUS, in the spirit of
/// multi-resource moldable list schedulers for precedence-constrained
/// jobs (Perotin/Sun/Raghavan, arxiv 2106.07059) applied to the paper's
/// work-vector model:
///
///   1. a query task becomes *ready* when every child task has finished
///      (blocking edges of the task tree; leaves are ready at time 0);
///   2. at each readiness instant t the ready tasks' operators are
///      parallelized exactly like TREESCHEDULE parallelizes a phase
///      (constraint B roots blocked operators at their producer's home,
///      floating degrees via CG_f or the §7 malleable selection), then
///      list-scheduled onto the sites with OPERATORSCHEDULE, with the
///      *residual* work of mid-flight clones as the base load — the
///      least-loaded rule runs over the time-varying l(R_s(t)) instead of
///      a per-phase snapshot;
///   3. each site shares its resources under the optimal-stretch fluid
///      discipline generalized to staggered arrivals: at every arrival
///      the common completion of the co-resident clones is recomputed as
///      F = t + max(max_c own_c(t), l(sum_c remaining_c(t))), which is
///      eq. (2) on remaining work (and exactly eq. (2) when everything
///      starts together);
///   4. virtual time advances to the earliest site completion; finished
///      tasks unlock their parents, and the loop repeats.
///
/// The greedy schedule reclaims the idle time TREESCHEDULE's synchronized
/// shelves leave at phase boundaries, but contention on a critical path
/// can occasionally cost more than the barriers saved; the tree_guard
/// (default on) makes the result never worse than TREESCHEDULE by
/// construction. Inputs and validity checks match TreeSchedule.
///
/// With options.pipeline, step 2 additionally exploits that every task is
/// a producer/consumer pipeline: non-bottleneck stages are rate-matched
/// down to RateMatchedDegree and stages are placed in pipeline order (see
/// ListScheduleOptions::pipeline), with the pipeline_guard falling back
/// to the plain task-wave schedule whenever the overlap loses.
Result<ListScheduleResult> ListSchedule(const OperatorTree& op_tree,
                                        const TaskTree& task_tree,
                                        const std::vector<OperatorCost>& costs,
                                        const CostParams& params,
                                        const MachineConfig& machine,
                                        const OverlapUsageModel& usage,
                                        const ListScheduleOptions& options = {});

}  // namespace mrs

#endif  // MRS_CORE_LIST_SCHEDULE_H_
