#ifndef MRS_CORE_MALLEABLE_H_
#define MRS_CORE_MALLEABLE_H_

#include <vector>

#include "common/result.h"
#include "core/operator_schedule.h"
#include "core/schedule.h"
#include "cost/cost_model.h"
#include "cost/parallelize.h"
#include "resource/usage_model.h"

namespace mrs {

/// Which candidate of the GF family the selection returns.
enum class MalleableObjective {
  /// argmin LB(N) = max(l(S)/P, h) — the exact Theorem 7.1 construction.
  /// Provably within (2d+1) of the optimum over all parallelizations, but
  /// LB is a *lower* bound: it stops crediting parallelism once the
  /// packing term dominates, which under-parallelizes multi-dimensional
  /// workloads in practice (the paper proves §7 but never evaluates it).
  kLowerBound,
  /// argmin h(N) + l(S(N))/P — a makespan *surrogate* in the shape of the
  /// classical list-scheduling upper bound. Keeps pushing parallelism
  /// while the slowest operator shrinks faster than total work grows;
  /// empirically tracks the best fixed-f coarse-grain configuration
  /// (bench: ablation_malleable). The schedule is still within (2d+1) of
  /// LB(N_chosen). Default.
  kSurrogateMakespan,
};

/// Result of the §7 greedy parallelization selection.
struct MalleableSelection {
  /// Chosen degree of parallelism per floating operator (parallel to the
  /// `floating` input vector).
  std::vector<int> degrees;
  /// LB(N) = max( l(S(N))/P , h(N) ) of the chosen parallelization — a
  /// lower bound on the optimal response time for that parallelization.
  double lower_bound = 0.0;
  /// Number of candidate parallelizations examined (<= 1 + M(P-1)).
  int candidates = 0;
};

/// Greedy generation of candidate parallelizations for the malleable
/// scheduling problem (paper §7, adapting the GF method of Turek et al.):
///
///   N^1 = (1, ..., 1); N^k is N^{k-1} with the degree of the operator
///   whose T_par equals h(N^{k-1}) increased by one; stop when that
///   operator is already at P sites.
///
/// Returns the candidate minimizing LB(N). Feeding the selection to the
/// list scheduling rule yields a schedule within 2d+1 of the optimum over
/// *all* parallelizations (Theorem 7.1). Unlike the coarse-grain path,
/// no CG_f condition and no A4 assumption are used — only the fact that
/// work vectors are componentwise non-decreasing in N.
///
/// `fixed` carries the operators whose parallelization cannot change
/// (rooted operators): their total work vectors enter l(S) and their
/// T_par values floor h(N).
Result<MalleableSelection> SelectMalleableParallelization(
    const std::vector<OperatorCost>& floating,
    const std::vector<ParallelizedOp>& fixed, const CostParams& params,
    const OverlapUsageModel& usage, int num_sites,
    MalleableObjective objective = MalleableObjective::kSurrogateMakespan);

/// Convenience driver: selects a malleable parallelization for `floating`,
/// materializes the clones, merges in the `fixed` (rooted) operators, and
/// runs OperatorSchedule. The returned schedule covers fixed + floating.
Result<Schedule> MalleableSchedule(
    const std::vector<OperatorCost>& floating,
    const std::vector<ParallelizedOp>& fixed, const CostParams& params,
    const OverlapUsageModel& usage, int num_sites, int dims,
    const OperatorScheduleOptions& options = {},
    MalleableObjective objective = MalleableObjective::kSurrogateMakespan);

}  // namespace mrs

#endif  // MRS_CORE_MALLEABLE_H_
