#ifndef MRS_CORE_PLACEMENT_INDEX_H_
#define MRS_CORE_PLACEMENT_INDEX_H_

#include <cstddef>
#include <vector>

namespace mrs {

/// Tournament (min-segment) tree over the per-site load lengths
/// l(work(s)) — the site-selection kernel of OPERATORSCHEDULE.
///
/// The list scheduler asks one question per floating clone: "which site
/// has the minimal load among the sites that do not already host a clone
/// of this operator (constraint A)?". The reference implementation scans
/// all P sites per clone; this index answers it by exclusion-aware
/// descent over a complete binary tournament tree:
///
///   * MinSite()                    — global argmin, O(1)
///   * MinSiteExcluding(excluded)   — argmin over sites outside a small
///                                    sorted exclusion set (the < degree
///                                    sites already used by the operator);
///                                    subtrees containing no excluded site
///                                    are pruned to their precomputed
///                                    winner, so a query costs
///                                    O(log P + k) for k exclusions
///                                    clustered in one region and
///                                    O((1 + k) log P) worst case
///   * Update(site, load)           — O(log P)
///
/// Tie-breaking is pinned to lowest-index-among-minima: an internal node
/// keeps its *left* child's winner on equal loads, and left subtrees hold
/// strictly lower site indices, so by induction the winner of any subtree
/// is the lowest-index minimum of that subtree. This is bit-for-bit the
/// site the reference linear scan (strict `<` update, ascending order)
/// selects on the same doubles — the property the differential placement
/// test (tests/core/placement_index_test.cc) locks across machine sizes.
///
/// Below kLinearScanMaxSites the index skips the tree entirely and
/// answers queries with an exclusion-aware scan over the leaf loads: at
/// small P the operator degrees approach P, the exclusion set then covers
/// most subtrees, and the pruned descent degenerates to visiting nearly
/// every node — strictly worse than one cache-friendly pass over P
/// doubles. The hybrid keeps every query bit-identical (same strict-<
/// lowest-index tie-break); only the data structure behind it changes.
class PlacementIndex {
 public:
  /// Machine sizes up to this use the leaf-scan mode (no tournament
  /// tree); measured crossover is between P=64 (scan ties the tree) and
  /// P=256 (tree wins 1.5x, growing with P).
  static constexpr int kLinearScanMaxSites = 64;
  /// In tree mode, a query whose exclusion set covers at least
  /// 1/kDenseExclusionRatio of the sites falls back to the leaf scan:
  /// that many exclusions intersect nearly every subtree, degenerating
  /// the pruned descent to a full (and costlier) tree walk.
  static constexpr int kDenseExclusionRatio = 8;
  PlacementIndex() = default;
  explicit PlacementIndex(const std::vector<double>& loads) { Reset(loads); }

  /// Rebuilds the tree over `loads` (index = site), O(P).
  void Reset(const std::vector<double>& loads);

  /// Sets site's load and repairs the winners on its root path, O(log P).
  void Update(int site, double load);

  int num_sites() const { return num_sites_; }
  double LoadOf(int site) const { return load_[static_cast<size_t>(site)]; }

  /// Lowest-index site of minimal load; -1 for an empty index.
  int MinSite() const;

  /// Lowest-index minimal-load site outside `excluded`. `excluded` must be
  /// sorted ascending, duplicate-free, and within [0, num_sites); returns
  /// -1 when every site is excluded.
  int MinSiteExcluding(const std::vector<int>& excluded) const;

 private:
  /// The better of two subtree winners (-1 = empty subtree); keeps `left`
  /// on ties, which is the lower site index.
  int Winner(int left, int right) const;

  /// Winner of the node covering sites [lo, hi) with the excluded sites in
  /// [ex_begin, ex_end); prunes exclusion-free subtrees to win_[node].
  int Descend(int node, int lo, int hi, const int* ex_begin,
              const int* ex_end) const;

  /// Lowest-index minimal-load site outside the sorted range
  /// [ex, ex_end) by one pass over load_ — the small-P mode.
  int ScanExcluding(const int* ex, const int* ex_end) const;

  int num_sites_ = 0;
  /// Leaf count: smallest power of two >= num_sites_ (extra leaves are
  /// empty, winner -1). 0 in leaf-scan mode (num_sites_ <=
  /// kLinearScanMaxSites), where no tree is maintained.
  int size_ = 0;
  std::vector<double> load_;
  /// Heap-ordered winners: win_[1] is the root, node i has children 2i and
  /// 2i+1, leaf for site s is size_ + s. Values are site indices (-1 =
  /// subtree holds no site).
  std::vector<int> win_;
};

}  // namespace mrs

#endif  // MRS_CORE_PLACEMENT_INDEX_H_
