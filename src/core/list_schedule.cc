#include "core/list_schedule.h"

#include <algorithm>
#include <limits>
#include <unordered_map>
#include <utility>

#include "common/logging.h"
#include "common/str_util.h"
#include "core/malleable.h"
#include "exec/explain.h"

namespace mrs {

namespace {

/// One clone mid-flight at a site during the virtual-time event loop.
struct RunningClone {
  int placement = -1;  ///< index into the global schedule's placements()
  int task = -1;
  WorkVector remaining;
  double own = 0.0;  ///< remaining stand-alone time
};

/// Per-site state of the event loop: the resident clones, the instant the
/// site's remainders were last rebased to (`now`), the projected common
/// completion `finish`, and the eq. (3) diagnosis of the last projection.
struct SiteState {
  double now = 0.0;
  double finish = 0.0;
  double last_finish = 0.0;  ///< committed completion of the last wave
  bool congestion = false;
  int resource = -1;
  std::vector<RunningClone> active;
};

/// Rebases a site's remainders to instant `t` (now <= t <= finish): the
/// residents have completed the fraction (t - now) / (finish - now) of
/// their remaining work, all progressing toward the common completion.
void AdvanceSite(SiteState* s, double t) {
  if (s->active.empty() || t <= s->now) {
    s->now = std::max(s->now, t);
    return;
  }
  const double factor = (s->finish - t) / (s->finish - s->now);
  for (RunningClone& c : s->active) {
    c.remaining *= factor;
    c.own *= factor;
  }
  s->now = t;
}

/// Recomputes the common completion of a site's residents — eq. (2) on
/// remaining work: finish = now + max(max_c own_c, l(sum_c remaining_c)) —
/// and records which term binds (plus the arg max resource).
void ProjectSiteFinish(SiteState* s, WorkVector* scratch) {
  double longest_own = 0.0;
  scratch->SetZero();
  for (const RunningClone& c : s->active) {
    longest_own = std::max(longest_own, c.own);
    *scratch += c.remaining;
  }
  const double load_len = scratch->Length();
  s->finish = s->now + std::max(longest_own, load_len);
  s->congestion = load_len >= longest_own;
  s->resource = -1;
  for (size_t i = 0; i < scratch->dim(); ++i) {
    if (s->resource < 0 ||
        (*scratch)[i] > (*scratch)[static_cast<size_t>(s->resource)]) {
      s->resource = static_cast<int>(i);
    }
  }
}

/// The cost an operator's degree is derived from (see
/// BuildDegreePolicy::kJoinAware; identical to TREESCHEDULE's rule).
OperatorCost SizingCost(int oid, const std::vector<OperatorCost>& costs,
                        const std::unordered_map<int, int>& dependent_of,
                        BuildDegreePolicy build_degree) {
  const OperatorCost& own = costs[static_cast<size_t>(oid)];
  if (build_degree == BuildDegreePolicy::kJoinAware) {
    auto it = dependent_of.find(oid);
    if (it != dependent_of.end()) {
      OperatorCost joint = own;
      const OperatorCost& dep = costs[static_cast<size_t>(it->second)];
      joint.processing += dep.processing;
      joint.data_bytes += dep.data_bytes;
      return joint;
    }
  }
  return own;
}

/// Replays a TREESCHEDULE result on the shared timeline: phase k's clones
/// all start at the sum of the earlier phase makespans. Every site's last
/// wave then completes by the next barrier, so the evaluated makespan
/// equals the tree's response time — the guard's worst case is exactly
/// TREESCHEDULE.
ListScheduleResult AlignedFallback(const TreeScheduleResult& tree,
                                   const TaskTree& task_tree, int num_sites,
                                   int dims) {
  ListScheduleResult r;
  r.schedule = Schedule(num_sites, dims);
  r.used_tree_fallback = true;
  r.rounds = static_cast<int>(tree.phases.size());
  r.tasks.resize(static_cast<size_t>(task_tree.num_tasks()));
  for (int tid = 0; tid < task_tree.num_tasks(); ++tid) {
    r.tasks[static_cast<size_t>(tid)].task = tid;
  }
  std::unordered_map<int, int> op_task;
  for (const QueryTask& task : task_tree.tasks()) {
    for (int oid : task.ops) op_task[oid] = task.id;
  }

  double t = 0.0;
  for (const PhaseSchedule& phase : tree.phases) {
    std::unordered_map<int, const ParallelizedOp*> by_id;
    for (const ParallelizedOp& op : phase.ops) by_id[op.op_id] = &op;
    r.schedule.ReserveFor(phase.ops);
    for (const ClonePlacement& c : phase.schedule.placements()) {
      const Status placed =
          r.schedule.PlaceAt(*by_id.at(c.op_id), c.clone_idx, c.site, t);
      MRS_CHECK(placed.ok()) << placed.ToString();
    }
    for (int tid : task_tree.phase(phase.phase)) {
      r.tasks[static_cast<size_t>(tid)].start = t;
    }
    r.ops.insert(r.ops.end(), phase.ops.begin(), phase.ops.end());
    t += phase.makespan;
  }
  r.clone_finish = r.schedule.CloneFinishTimes();
  r.makespan = r.schedule.Makespan();
  for (size_t p = 0; p < r.clone_finish.size(); ++p) {
    ListTaskInterval& interval = r.tasks[static_cast<size_t>(
        op_task.at(r.schedule.placements()[p].op_id))];
    interval.finish = std::max(interval.finish, r.clone_finish[p]);
  }
  // eq. (3) diagnosis: the overall critical site is the last phase's
  // critical site (earlier phases complete by their barrier).
  if (!tree.phases.empty()) {
    const PhaseExplanation exp = ExplainPhase(tree.phases.back());
    r.critical_site = exp.critical_site;
    r.load_bound = exp.load_bound;
    r.critical_resource = exp.critical_resource;
  }
  return r;
}

/// The greedy virtual-time event loop (steps 1-4 of the header comment),
/// without either guard. `external` is the resolved external base load
/// (from either ListScheduleOptions field); `pipeline` enables the
/// rate-matched, stage-ordered round described at
/// ListScheduleOptions::pipeline; `trace` is the sink for round spans
/// (null for the shadow baseline runs the guards make).
Result<ListScheduleResult> GreedyListSchedule(
    const OperatorTree& op_tree, const TaskTree& task_tree,
    const std::vector<OperatorCost>& costs, const CostParams& params,
    const MachineConfig& config, const OverlapUsageModel& usage,
    const ListScheduleOptions& options,
    const std::vector<WorkVector>* external, bool pipeline,
    TraceSink* trace) {
  // Parallelization entry points, memoized when a cache is supplied
  // (identical to TREESCHEDULE's, so the two engines pick the same
  // degrees for the same readiness sets).
  auto par_rooted = [&](const OperatorCost& cost, std::vector<int> home) {
    return options.cache != nullptr
               ? options.cache->Rooted(cost, std::move(home))
               : ParallelizeRooted(cost, params, usage, std::move(home),
                                   config.num_sites);
  };
  auto par_floating = [&](const OperatorCost& cost) {
    return options.cache != nullptr
               ? options.cache->Floating(cost)
               : ParallelizeFloating(cost, params, usage, options.granularity,
                                     config.num_sites);
  };
  auto par_at_degree = [&](const OperatorCost& cost, int degree) {
    return options.cache != nullptr
               ? options.cache->AtDegree(cost, degree)
               : ParallelizeAtDegree(cost, params, usage, degree,
                                     config.num_sites);
  };

  std::unordered_map<int, int> dependent_of;
  for (const PhysicalOp& op : op_tree.ops()) {
    if (op.blocking_input >= 0) dependent_of[op.blocking_input] = op.id;
  }
  std::unordered_map<int, int> op_task;
  for (const QueryTask& task : task_tree.tasks()) {
    for (int oid : task.ops) op_task[oid] = task.id;
  }

  const int num_tasks = task_tree.num_tasks();
  ListScheduleResult result;
  result.schedule = Schedule(config.num_sites, config.dims);
  result.tasks.resize(static_cast<size_t>(num_tasks));
  std::vector<int> pending_children(static_cast<size_t>(num_tasks), 0);
  std::vector<int> outstanding_clones(static_cast<size_t>(num_tasks), 0);
  std::vector<int> ready;
  for (const QueryTask& task : task_tree.tasks()) {
    result.tasks[static_cast<size_t>(task.id)].task = task.id;
    pending_children[static_cast<size_t>(task.id)] =
        static_cast<int>(task.children.size());
    if (task.children.empty()) ready.push_back(task.id);
  }
  std::sort(ready.begin(), ready.end());

  std::vector<SiteState> sites(static_cast<size_t>(config.num_sites));
  std::unordered_map<int, std::vector<int>> home_of;
  WorkVector scratch(static_cast<size_t>(config.dims));
  double t = 0.0;
  int completed_tasks = 0;

  while (true) {
    if (!ready.empty()) {
      SpanTimer round_span(trace, "list_place", result.rounds);
      // 1. Parallelize the ready tasks' operators (TREESCHEDULE's rules,
      // applied to a readiness wave instead of a shelf).
      std::vector<int> op_ids;
      for (int tid : ready) {
        const QueryTask& task = task_tree.task(tid);
        op_ids.insert(op_ids.end(), task.ops.begin(), task.ops.end());
        result.tasks[static_cast<size_t>(tid)].start = t;
      }
      std::vector<ParallelizedOp> round_ops;
      std::vector<int> floating_ids;
      round_ops.reserve(op_ids.size());
      for (int oid : op_ids) {
        const PhysicalOp& op = op_tree.op(oid);
        const OperatorCost& cost = costs[static_cast<size_t>(oid)];
        if (op.blocking_input >= 0) {
          auto home_it = home_of.find(op.blocking_input);
          if (home_it == home_of.end() || home_it->second.empty()) {
            return Status::Internal(
                StrFormat("blocking producer op%d of op%d not scheduled in "
                          "an earlier round",
                          op.blocking_input, oid));
          }
          auto rooted = par_rooted(cost, home_it->second);
          if (!rooted.ok()) return rooted.status();
          round_ops.push_back(std::move(rooted).value());
        } else {
          floating_ids.push_back(oid);
        }
      }
      if (options.policy == ParallelizationPolicy::kMalleable) {
        std::vector<OperatorCost> sizing;
        sizing.reserve(floating_ids.size());
        for (int oid : floating_ids) {
          sizing.push_back(
              SizingCost(oid, costs, dependent_of, options.build_degree));
        }
        SpanTimer malleable_span(trace, "malleable_select", result.rounds);
        auto selection = SelectMalleableParallelization(
            sizing, round_ops, params, usage, config.num_sites);
        if (!selection.ok()) return selection.status();
        if (malleable_span.active()) {
          malleable_span.AttrInt("floating_ops",
                                 static_cast<int64_t>(floating_ids.size()));
          malleable_span.AttrDouble("lower_bound_ms", selection->lower_bound);
        }
        malleable_span.End();
        for (size_t i = 0; i < floating_ids.size(); ++i) {
          auto op = par_at_degree(costs[static_cast<size_t>(floating_ids[i])],
                                  selection->degrees[i]);
          if (!op.ok()) return op.status();
          round_ops.push_back(std::move(op).value());
        }
      } else {
        for (int oid : floating_ids) {
          const OperatorCost& own = costs[static_cast<size_t>(oid)];
          const bool joint_sizing =
              options.build_degree == BuildDegreePolicy::kJoinAware &&
              dependent_of.find(oid) != dependent_of.end();
          auto sized = par_floating(
              joint_sizing
                  ? SizingCost(oid, costs, dependent_of, options.build_degree)
                  : own);
          if (!sized.ok()) return sized.status();
          const int degree = sized->degree;
          if (joint_sizing || options.cache != nullptr) {
            auto op = par_at_degree(own, degree);
            if (!op.ok()) return op.status();
            round_ops.push_back(std::move(op).value());
          } else {
            round_ops.push_back(std::move(sized).value());
          }
        }
      }

      if (pipeline) {
        // Rate matching (arxiv 1403.7729's pipelined extension): a task is
        // a producer/consumer pipeline that drains at its bottleneck
        // stage's rate, so every floating stage without a blocking
        // dependent drops to RateMatchedDegree — fewer clones, the same
        // pipeline rate, and alpha*N startup plus per-site load shrink.
        // Stages *with* a blocking dependent keep their joint-sized
        // degree: constraint B roots the dependent at their home, so
        // narrowing them would throttle a later round, not this pipeline.
        std::unordered_map<int, double> bottleneck;
        for (const ParallelizedOp& op : round_ops) {
          double& b = bottleneck[op_task.at(op.op_id)];
          b = std::max(b, op.t_par);
        }
        for (ParallelizedOp& op : round_ops) {
          if (op.rooted || op.degree <= 1) continue;
          if (dependent_of.find(op.op_id) != dependent_of.end()) continue;
          const OperatorCost& own = costs[static_cast<size_t>(op.op_id)];
          const int matched =
              RateMatchedDegree(own, params, usage,
                                bottleneck.at(op_task.at(op.op_id)),
                                op.degree);
          if (matched == op.degree) continue;
          auto lowered = par_at_degree(own, matched);
          if (!lowered.ok()) return lowered.status();
          op = std::move(lowered).value();
        }
      }

      // 2. Residual load at instant t: rebase every mid-flight site and
      // sum its remaining work vectors. OPERATORSCHEDULE's least-loaded
      // rule then minimizes l(R_s(t) + work(s)) over the new clones.
      std::vector<WorkVector> residual(
          static_cast<size_t>(config.num_sites),
          WorkVector(static_cast<size_t>(config.dims)));
      for (int j = 0; j < config.num_sites; ++j) {
        SiteState& s = sites[static_cast<size_t>(j)];
        // Rebase even idle sites: their `now` must reach t so a new wave
        // projects from the clones' arrival instant, not the old finish.
        AdvanceSite(&s, t);
        for (const RunningClone& c : s.active) {
          residual[static_cast<size_t>(j)] += c.remaining;
        }
        // External co-resident load is static over the query's horizon.
        if (external != nullptr) {
          residual[static_cast<size_t>(j)] +=
              (*external)[static_cast<size_t>(j)];
        }
      }

      // Stage split: pipeline mode places producers before their
      // consumers (one stage per intra-task pipeline depth), so each
      // consumer's least-loaded pass sees its producers' freshly
      // committed load; plain mode is a single stage. Operator ids are
      // topological (a producer is created before its consumer), so one
      // ascending pass settles the depths.
      std::vector<std::vector<ParallelizedOp>> stages;
      if (pipeline) {
        std::unordered_map<int, int> stage_of;
        stage_of.reserve(round_ops.size());
        std::vector<int> order = op_ids;
        std::sort(order.begin(), order.end());
        int num_stages = 1;
        for (int oid : order) {
          int depth = 0;
          for (int d : op_tree.op(oid).data_inputs) {
            auto it = stage_of.find(d);
            if (it != stage_of.end()) depth = std::max(depth, it->second + 1);
          }
          stage_of[oid] = depth;
          num_stages = std::max(num_stages, depth + 1);
        }
        stages.resize(static_cast<size_t>(num_stages));
        for (ParallelizedOp& op : round_ops) {
          stages[static_cast<size_t>(stage_of.at(op.op_id))].push_back(
              std::move(op));
        }
      } else {
        stages.push_back(std::move(round_ops));
      }

      // 3. Place and commit the stages into the global timeline and the
      // per-site resident sets, then re-project the touched sites'
      // completions. Every clone of the round starts at t — a consumer
      // starts the instant its pipelined producer does.
      std::vector<char> touched(static_cast<size_t>(config.num_sites), 0);
      int64_t round_clones = 0;
      for (std::vector<ParallelizedOp>& stage_ops : stages) {
        OperatorScheduleOptions round_options = options.list_options;
        round_options.base_load = &residual;
        auto round_schedule = OperatorSchedule(stage_ops, config.num_sites,
                                               config.dims, round_options);
        if (!round_schedule.ok()) return round_schedule.status();
        std::unordered_map<int, const ParallelizedOp*> by_id;
        for (const ParallelizedOp& op : stage_ops) by_id[op.op_id] = &op;
        result.schedule.ReserveFor(stage_ops);
        for (const ClonePlacement& c : round_schedule->placements()) {
          MRS_RETURN_IF_ERROR(result.schedule.PlaceAt(*by_id.at(c.op_id),
                                                      c.clone_idx, c.site, t));
          const int placement = result.schedule.num_placements() - 1;
          const int tid = op_task.at(c.op_id);
          RunningClone running;
          running.placement = placement;
          running.task = tid;
          running.remaining = c.work;
          running.own = c.t_seq;
          sites[static_cast<size_t>(c.site)].active.push_back(
              std::move(running));
          touched[static_cast<size_t>(c.site)] = 1;
          // The next stage's least-loaded pass must see this clone.
          residual[static_cast<size_t>(c.site)] += c.work;
          ++outstanding_clones[static_cast<size_t>(tid)];
        }
        for (const ParallelizedOp& op : stage_ops) {
          home_of[op.op_id] = round_schedule->HomeOf(op.op_id);
        }
        round_clones +=
            static_cast<int64_t>(round_schedule->placements().size());
        result.ops.insert(result.ops.end(),
                          std::make_move_iterator(stage_ops.begin()),
                          std::make_move_iterator(stage_ops.end()));
      }
      // Re-project only the sites that received clones: an untouched
      // site's completion is unchanged (re-deriving it from the rebased
      // remainders would only jitter the float).
      for (int j = 0; j < config.num_sites; ++j) {
        if (touched[static_cast<size_t>(j)]) {
          ProjectSiteFinish(&sites[static_cast<size_t>(j)], &scratch);
        }
      }
      if (round_span.active()) {
        round_span.AttrInt("tasks", static_cast<int64_t>(ready.size()));
        round_span.AttrInt("ops", static_cast<int64_t>(op_ids.size()));
        round_span.AttrInt("clones", round_clones);
        round_span.AttrDouble("virtual_time_ms", t);
        if (pipeline) {
          round_span.AttrInt("stages", static_cast<int64_t>(stages.size()));
        }
      }
      round_span.End();
      result.clone_finish.resize(
          static_cast<size_t>(result.schedule.num_placements()), 0.0);
      ++result.rounds;
      ready.clear();
    }

    // 4. Advance virtual time to the earliest site completion.
    double t_next = std::numeric_limits<double>::infinity();
    for (const SiteState& s : sites) {
      if (!s.active.empty()) t_next = std::min(t_next, s.finish);
    }
    if (t_next == std::numeric_limits<double>::infinity()) break;
    for (SiteState& s : sites) {
      if (s.active.empty() || s.finish > t_next) continue;
      for (const RunningClone& c : s.active) {
        result.clone_finish[static_cast<size_t>(c.placement)] = s.finish;
        int& left = outstanding_clones[static_cast<size_t>(c.task)];
        if (--left == 0) {
          ListTaskInterval& interval =
              result.tasks[static_cast<size_t>(c.task)];
          interval.finish = s.finish;
          ++completed_tasks;
          const int parent = task_tree.task(c.task).parent;
          if (parent >= 0 &&
              --pending_children[static_cast<size_t>(parent)] == 0) {
            ready.push_back(parent);
          }
        }
      }
      s.last_finish = s.finish;
      s.now = s.finish;
      s.active.clear();
    }
    std::sort(ready.begin(), ready.end());
    t = t_next;
  }

  if (completed_tasks != num_tasks) {
    return Status::Internal(
        StrFormat("event loop stalled: %d of %d tasks completed",
                  completed_tasks, num_tasks));
  }
  result.makespan = t;
  for (size_t j = 0; j < sites.size(); ++j) {
    const SiteState& s = sites[j];
    if (result.critical_site < 0 ||
        s.last_finish >
            sites[static_cast<size_t>(result.critical_site)].last_finish) {
      result.critical_site = static_cast<int>(j);
    }
  }
  if (result.critical_site >= 0) {
    const SiteState& s = sites[static_cast<size_t>(result.critical_site)];
    result.load_bound = s.congestion;
    result.critical_resource = s.resource;
  }
  return result;
}

/// Dominance guard: never worse than TREESCHEDULE (see
/// ListScheduleOptions::tree_guard).
Status ApplyTreeGuard(const OperatorTree& op_tree, const TaskTree& task_tree,
                      const std::vector<OperatorCost>& costs,
                      const CostParams& params, const MachineConfig& config,
                      const OverlapUsageModel& usage,
                      const ListScheduleOptions& options,
                      const std::vector<WorkVector>* external,
                      ListScheduleResult* result) {
  TreeScheduleOptions tree_options;
  tree_options.granularity = options.granularity;
  tree_options.policy = options.policy;
  tree_options.build_degree = options.build_degree;
  tree_options.list_options = options.list_options;
  tree_options.list_options.base_load = external;
  tree_options.cache = options.cache;
  auto tree = TreeSchedule(op_tree, task_tree, costs, params, config, usage,
                           tree_options);
  if (!tree.ok()) return tree.status();
  result->tree_response_time = tree->response_time;
  if (result->makespan > tree->response_time) {
    ListScheduleResult fallback =
        AlignedFallback(*tree, task_tree, config.num_sites, config.dims);
    fallback.tree_response_time = tree->response_time;
    *result = std::move(fallback);
  }
  return Status::OK();
}

}  // namespace

std::string ListScheduleResult::ToString() const {
  const char* mode = ModeString();
  std::string out = StrFormat(
      "ListSchedule(makespan=%.2fms, %zu tasks, %d rounds, mode=%s)\n",
      makespan, tasks.size(), rounds, mode);
  for (const ListTaskInterval& t : tasks) {
    out += StrFormat("  task %d: [%.2f, %.2f]ms\n", t.task, t.start,
                     t.finish);
  }
  return out;
}

Result<ListScheduleResult> ListSchedule(const OperatorTree& op_tree,
                                        const TaskTree& task_tree,
                                        const std::vector<OperatorCost>& costs,
                                        const CostParams& params,
                                        const MachineConfig& machine,
                                        const OverlapUsageModel& usage,
                                        const ListScheduleOptions& options) {
  if (static_cast<int>(costs.size()) != op_tree.num_ops()) {
    return Status::InvalidArgument(
        StrFormat("costs size %zu != %d operators", costs.size(),
                  op_tree.num_ops()));
  }
  MRS_RETURN_IF_ERROR(params.Validate());
  MachineConfig config = machine;
  MRS_RETURN_IF_ERROR(config.Validate());
  if (options.cache != nullptr &&
      !options.cache->CompatibleWith(params, usage.epsilon(),
                                     options.granularity, config.num_sites)) {
    return Status::InvalidArgument(
        "parallelize cache was built for a different scheduling context");
  }
  if (task_tree.num_tasks() == 0) {
    return Status::InvalidArgument("task tree has no tasks to schedule");
  }
  // Resolve the external base load: either field carries it, both is an
  // error (they would silently shadow each other — the footgun this
  // check replaces).
  if (options.base_load != nullptr &&
      options.list_options.base_load != nullptr) {
    return Status::InvalidArgument(
        "both ListScheduleOptions::base_load and list_options.base_load are "
        "set; thread the external load through exactly one of them");
  }
  const std::vector<WorkVector>* external =
      options.base_load != nullptr ? options.base_load
                                   : options.list_options.base_load;
  if (external != nullptr) {
    if (static_cast<int>(external->size()) != config.num_sites) {
      return Status::InvalidArgument(
          StrFormat("base_load has %zu sites, machine has %d",
                    external->size(), config.num_sites));
    }
    for (const WorkVector& w : *external) {
      if (static_cast<int>(w.dim()) != config.dims) {
        return Status::InvalidArgument(
            StrFormat("base_load vector has %zu dims, machine has %d",
                      w.dim(), config.dims));
      }
    }
  }

  TraceSink* const trace = options.trace;
  SpanTimer call_span(trace, "list_schedule");

  ListScheduleResult result;
  if (!options.pipeline) {
    auto plain = GreedyListSchedule(op_tree, task_tree, costs, params, config,
                                    usage, options, external,
                                    /*pipeline=*/false, trace);
    if (!plain.ok()) return plain.status();
    result = std::move(plain).value();
    if (options.tree_guard) {
      MRS_RETURN_IF_ERROR(ApplyTreeGuard(op_tree, task_tree, costs, params,
                                         config, usage, options, external,
                                         &result));
    }
  } else {
    auto piped = GreedyListSchedule(op_tree, task_tree, costs, params, config,
                                    usage, options, external,
                                    /*pipeline=*/true, trace);
    if (!piped.ok()) return piped.status();
    result = std::move(piped).value();
    result.pipelined = true;
    if (options.pipeline_guard) {
      // Shadow task-wave baseline (untraced, itself tree-guarded when
      // tree_guard is on): the LIST side of PIPELINED <= LIST <= TREE.
      auto plain = GreedyListSchedule(op_tree, task_tree, costs, params,
                                      config, usage, options, external,
                                      /*pipeline=*/false, /*trace=*/nullptr);
      if (!plain.ok()) return plain.status();
      ListScheduleResult baseline = std::move(plain).value();
      if (options.tree_guard) {
        MRS_RETURN_IF_ERROR(ApplyTreeGuard(op_tree, task_tree, costs, params,
                                           config, usage, options, external,
                                           &baseline));
      }
      result.tree_response_time = baseline.tree_response_time;
      result.list_makespan = baseline.makespan;
      if (result.makespan > baseline.makespan) {
        baseline.tree_response_time = result.tree_response_time;
        baseline.list_makespan = result.list_makespan;
        baseline.used_list_fallback = true;
        result = std::move(baseline);
      }
    } else if (options.tree_guard) {
      MRS_RETURN_IF_ERROR(ApplyTreeGuard(op_tree, task_tree, costs, params,
                                         config, usage, options, external,
                                         &result));
    }
  }

  if (call_span.active()) {
    call_span.AttrInt("tasks", static_cast<int64_t>(result.tasks.size()));
    call_span.AttrInt("rounds", static_cast<int64_t>(result.rounds));
    call_span.AttrDouble("makespan_ms", result.makespan);
    call_span.AttrInt("fallback", result.used_tree_fallback ? 1 : 0);
    call_span.AttrInt("critical_site", result.critical_site);
    if (result.load_bound && result.critical_resource >= 0) {
      const size_t r = static_cast<size_t>(result.critical_resource);
      call_span.Attr("eq3_binding",
                     StrFormat("congestion:%s",
                               r < config.resource_names.size()
                                   ? config.resource_names[r].c_str()
                                   : StrFormat("r%zu", r).c_str()));
    } else {
      call_span.Attr("eq3_binding", "t_seq");
    }
    if (options.pipeline) {
      call_span.AttrInt("pipelined", result.pipelined ? 1 : 0);
      call_span.AttrInt("list_fallback", result.used_list_fallback ? 1 : 0);
    }
  }
  return result;
}

}  // namespace mrs
