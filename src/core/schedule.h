#ifndef MRS_CORE_SCHEDULE_H_
#define MRS_CORE_SCHEDULE_H_

#include <cstddef>
#include <iterator>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "cost/parallelize.h"
#include "resource/work_vector.h"

namespace mrs {

/// One operator clone placed at a site.
struct ClonePlacement {
  int op_id = -1;
  int clone_idx = 0;
  int site = -1;
  WorkVector work;
  double t_seq = 0.0;
  /// Virtual time the clone begins executing. Phase-aligned schedules
  /// (TREESCHEDULE / SYNCHRONOUS) leave this at 0 — their phases each get
  /// their own Schedule starting at a barrier. LISTSCHEDULE places clones
  /// mid-flight via PlaceAt, and the schedule's time evaluation then
  /// switches from the closed-form eq. (2) to the event sweep (see
  /// SiteFinish).
  double start = 0.0;
};

/// A schedule for one collection of concurrently executing operators
/// (paper Def. 5.1): a mapping of operator clones to sites such that no
/// two clones of the same operator share a site (constraint A — enforced
/// at placement time).
///
/// Site times follow eq. (2):
///   T_site(s) = max( max_{clones at s} T_seq, l(work(s)) )
/// and the schedule's makespan follows eq. (3): the max site time, i.e.
/// the larger of the slowest operator and the most congested resource.
///
/// Per-site placement lists are stored as index chains threaded through
/// the placement array (head/tail per site + one next link per placement)
/// instead of P growable vectors, so a Place call after ReserveFor
/// performs zero heap allocations — the property the steady-state
/// OPERATORSCHEDULE loop relies on (DESIGN.md §4f).
class Schedule {
 public:
  Schedule(int num_sites, int dims);

  /// Pre-sizes the placement storage (and registers the operator ids) for
  /// every clone of `ops`, so that the subsequent Place calls perform no
  /// heap allocation (for work vectors with d <= WorkVector::kInlineDims).
  /// Purely an optimization: placements and results are unchanged.
  void ReserveFor(const std::vector<ParallelizedOp>& ops);

  /// Places clone `clone_idx` of `op` at `site`. Fails if the site is out
  /// of range, the clone index is invalid, the clone was already placed,
  /// or the site already hosts another clone of the same operator.
  Status Place(const ParallelizedOp& op, int clone_idx, int site);

  /// Places clone `clone_idx` of `op` at `site` starting at virtual time
  /// `start` >= 0 (same validity checks as Place). A non-zero start marks
  /// the schedule non-aligned: SiteFinish/Makespan switch to the event
  /// sweep over arrival times. PlaceAt with start == 0 is exactly Place.
  Status PlaceAt(const ParallelizedOp& op, int clone_idx, int site,
                 double start);

  /// Places all clones of a rooted operator at its home sites.
  Status PlaceRooted(const ParallelizedOp& op);

  int num_sites() const { return num_sites_; }
  int dims() const { return dims_; }
  int num_placements() const { return static_cast<int>(placements_.size()); }
  const std::vector<ClonePlacement>& placements() const { return placements_; }

  /// Forward range over the indices (into placements()) of the clones
  /// placed at one site, in placement order.
  class SitePlacementRange {
   public:
    class iterator {
     public:
      using iterator_category = std::forward_iterator_tag;
      using value_type = int;
      using difference_type = std::ptrdiff_t;
      using pointer = const int*;
      using reference = int;

      iterator(int cur, const std::vector<int>* next)
          : cur_(cur), next_(next) {}
      int operator*() const { return cur_; }
      iterator& operator++() {
        cur_ = (*next_)[static_cast<size_t>(cur_)];
        return *this;
      }
      iterator operator++(int) {
        iterator prev = *this;
        ++(*this);
        return prev;
      }
      bool operator==(const iterator& o) const { return cur_ == o.cur_; }
      bool operator!=(const iterator& o) const { return cur_ != o.cur_; }

     private:
      int cur_;
      const std::vector<int>* next_;
    };

    SitePlacementRange(int head, int count, const std::vector<int>* next)
        : head_(head), count_(count), next_(next) {}
    iterator begin() const { return iterator(head_, next_); }
    iterator end() const { return iterator(-1, next_); }
    size_t size() const { return static_cast<size_t>(count_); }
    bool empty() const { return count_ == 0; }

   private:
    int head_;
    int count_;
    const std::vector<int>* next_;
  };

  /// Clones placed at `site` (indices into placements()).
  SitePlacementRange SitePlacements(int site) const;

  /// Aggregate work vector at `site` (the vector sum of its clones).
  const WorkVector& SiteLoad(int site) const;

  /// l(work(s)): the busiest-resource load at `site`.
  double SiteLoadLength(int site) const;

  /// T_site(s) per eq. (2): max(max T_seq, l(work(s))), evaluated as if
  /// every clone at the site started at time 0. For aligned schedules this
  /// is the site's completion time; for non-aligned schedules prefer
  /// SiteFinish.
  double SiteTime(int site) const;

  /// True while every placement starts at time 0 (the historical
  /// phase-aligned case). All schedules built through Place/PlaceRooted
  /// are aligned; PlaceAt with a positive start clears the flag.
  bool aligned() const { return aligned_; }

  /// Completion time of the last clone at `site` under the optimal-stretch
  /// fluid discipline, honoring per-clone start times: clones arriving at
  /// the site join the resident set, and at every arrival instant t the
  /// common completion of the co-resident clones is recomputed as
  ///   F = t + max( max_c own_c(t) , l(sum_c remaining_c(t)) )
  /// — the eq. (2) rule applied to *remaining* work, which reduces to
  /// SiteTime exactly when all starts are 0 (and that closed form is used
  /// for aligned schedules, keeping the historical code path
  /// byte-identical).
  double SiteFinish(int site) const;

  /// Completion time of every placed clone (parallel to placements()),
  /// under the same discipline as SiteFinish. For aligned schedules every
  /// clone finishes at its site's SiteTime.
  std::vector<double> CloneFinishTimes() const;

  /// Response time of the schedule per eq. (3): max site completion time
  /// (SiteTime for aligned schedules, SiteFinish otherwise).
  double Makespan() const;

  /// True iff `site` already hosts a clone of `op_id`.
  bool HasOpAtSite(int op_id, int site) const;

  /// The home of an operator: the sites of its clones, indexed by clone
  /// number (so home[0] is the coordinator's site). Entries are -1 for
  /// unplaced clones; an operator never seen by Place/ReserveFor yields an
  /// empty vector.
  std::vector<int> HomeOf(int op_id) const;

  /// Verifies that every clone of every operator in `ops` is placed
  /// exactly once, rooted operators sit at their homes, and constraint A
  /// holds. (Placement-time checks make violations impossible through this
  /// API; Validate exists to check schedules assembled from parts.)
  Status Validate(const std::vector<ParallelizedOp>& ops) const;

  std::string ToString() const;

 private:
  /// Placement-chain anchors of one site.
  struct SiteChain {
    int head = -1;
    int tail = -1;
    int count = 0;
  };

  /// Event sweep behind SiteFinish/CloneFinishTimes for non-aligned
  /// schedules; `finish`, when non-null, receives per-placement completion
  /// times (only entries for `site` are written).
  double SweepSiteFinish(int site, std::vector<double>* finish) const;

  int num_sites_;
  int dims_;
  bool aligned_ = true;
  std::vector<ClonePlacement> placements_;
  /// next_at_site_[p] = index of the next placement at the same site as
  /// placements_[p], or -1 (parallel to placements_).
  std::vector<int> next_at_site_;
  std::vector<SiteChain> site_chain_;
  std::vector<WorkVector> site_load_;
  std::vector<double> site_max_t_seq_;
  // op_id -> site per clone index (-1 = unplaced).
  std::unordered_map<int, std::vector<int>> op_sites_;
};

}  // namespace mrs

#endif  // MRS_CORE_SCHEDULE_H_
