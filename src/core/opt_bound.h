#ifndef MRS_CORE_OPT_BOUND_H_
#define MRS_CORE_OPT_BOUND_H_

#include <vector>

#include "common/result.h"
#include "cost/cost_model.h"
#include "cost/parallelize.h"
#include "plan/operator_tree.h"
#include "plan/task_tree.h"
#include "resource/usage_model.h"

namespace mrs {

/// Components of the OPTBOUND lower bound (paper §6.2) so benches can
/// report which term binds.
struct OptBoundResult {
  /// l(S)/P: the busiest resource class's total zero-communication work,
  /// spread perfectly over all P sites.
  double work_bound = 0.0;
  /// T(CP): the critical path through the blocking structure, with every
  /// operator at its best coarse-grain parallel time.
  double critical_path_bound = 0.0;

  double Bound() const {
    return work_bound > critical_path_bound ? work_bound
                                            : critical_path_bound;
  }
};

/// Computes OPTBOUND = max( l(S)/P , T(CP) ), a lower bound on the
/// response time of the optimal CG_f execution of the plan (valid under
/// assumption A4):
///
///  * S is the set of zero-communication work vectors of all operators —
///    no schedule can beat perfect load balance with zero overhead;
///  * T(CP) walks root-to-leaf chains of the *task tree* (operators inside
///    one task overlap in a pipeline, tasks along a chain are separated by
///    blocking edges and cannot overlap), charging each task its slowest
///    operator at the maximum allowable CG_f degree of parallelism.
///
/// `costs` indexed by operator id; `f` is the granularity parameter.
Result<OptBoundResult> OptBound(const OperatorTree& op_tree,
                                const TaskTree& task_tree,
                                const std::vector<OperatorCost>& costs,
                                const CostParams& params,
                                const OverlapUsageModel& usage, double f,
                                int num_sites);

}  // namespace mrs

#endif  // MRS_CORE_OPT_BOUND_H_
