#include "core/tree_schedule.h"

#include <algorithm>
#include <unordered_map>

#include "common/logging.h"
#include "common/str_util.h"
#include "core/malleable.h"
#include "exec/explain.h"

namespace mrs {

namespace {

/// Annotates a finished OPERATORSCHEDULE span with the phase diagnosis the
/// paper's analysis audits: the critical site of the eq. (3) argmax and
/// whether its l(work(s)) (resource congestion) or its slowest clone's
/// T_seq binds.
void AnnotateOperatorScheduleSpan(SpanTimer* span, const PhaseSchedule& phase,
                                  const MachineConfig& config) {
  const PhaseExplanation exp = ExplainPhase(phase);
  span->AttrInt("ops", static_cast<int64_t>(phase.ops.size()));
  span->AttrDouble("makespan_ms", phase.makespan);
  span->AttrInt("critical_site", exp.critical_site);
  if (exp.load_bound && exp.critical_resource >= 0) {
    const size_t r = static_cast<size_t>(exp.critical_resource);
    span->Attr("eq3_binding",
               StrFormat("congestion:%s",
                         r < config.resource_names.size()
                             ? config.resource_names[r].c_str()
                             : StrFormat("r%zu", r).c_str()));
  } else {
    span->Attr("eq3_binding", "t_seq");
  }
  span->AttrInt("heaviest_op", exp.heaviest_op);
}

}  // namespace

std::vector<int> TreeScheduleResult::HomeOf(int op_id) const {
  for (const auto& phase : phases) {
    std::vector<int> home = phase.schedule.HomeOf(op_id);
    if (!home.empty()) return home;
  }
  return {};
}

std::string TreeScheduleResult::ToString() const {
  std::string out = StrFormat("TreeSchedule(response=%.2fms, %zu phases)\n",
                              response_time, phases.size());
  for (const auto& p : phases) {
    out += StrFormat("  phase %d: %zu ops, makespan=%.2fms\n", p.phase,
                     p.ops.size(), p.makespan);
  }
  return out;
}

Result<TreeScheduleResult> TreeSchedule(const OperatorTree& op_tree,
                                        const TaskTree& task_tree,
                                        const std::vector<OperatorCost>& costs,
                                        const CostParams& params,
                                        const MachineConfig& machine,
                                        const OverlapUsageModel& usage,
                                        const TreeScheduleOptions& options) {
  if (static_cast<int>(costs.size()) != op_tree.num_ops()) {
    return Status::InvalidArgument(
        StrFormat("costs size %zu != %d operators", costs.size(),
                  op_tree.num_ops()));
  }
  MRS_RETURN_IF_ERROR(params.Validate());
  MachineConfig config = machine;
  MRS_RETURN_IF_ERROR(config.Validate());
  if (options.cache != nullptr &&
      !options.cache->CompatibleWith(params, usage.epsilon(),
                                     options.granularity,
                                     config.num_sites)) {
    return Status::InvalidArgument(
        "parallelize cache was built for a different scheduling context");
  }
  TraceSink* const trace = options.trace;
  SpanTimer call_span(trace, "tree_schedule");
  uint64_t call_hits0 = 0;
  uint64_t call_misses0 = 0;
  if (trace != nullptr && options.cache != nullptr) {
    call_hits0 = options.cache->counter().hits();
    call_misses0 = options.cache->counter().misses();
  }

  // Parallelization entry points, memoized when a cache is supplied.
  auto par_rooted = [&](const OperatorCost& cost, std::vector<int> home) {
    return options.cache != nullptr
               ? options.cache->Rooted(cost, std::move(home))
               : ParallelizeRooted(cost, params, usage, std::move(home),
                                   config.num_sites);
  };
  auto par_floating = [&](const OperatorCost& cost) {
    return options.cache != nullptr
               ? options.cache->Floating(cost)
               : ParallelizeFloating(cost, params, usage,
                                     options.granularity, config.num_sites);
  };
  auto par_at_degree = [&](const OperatorCost& cost, int degree) {
    return options.cache != nullptr
               ? options.cache->AtDegree(cost, degree)
               : ParallelizeAtDegree(cost, params, usage, degree,
                                     config.num_sites);
  };

  TreeScheduleResult result;
  result.phases.reserve(static_cast<size_t>(task_tree.num_phases()));

  // The blocking dependent of each state-materializing operator (probe of
  // a build, merge of a sort run, emit of an aggregate), for join-aware
  // parallelization.
  std::unordered_map<int, int> dependent_of;
  for (const auto& op : op_tree.ops()) {
    if (op.blocking_input >= 0) {
      dependent_of[op.blocking_input] = op.id;
    }
  }
  // The cost an operator's degree of parallelism is derived from: under
  // kJoinAware a first-half operator (build / sort run / agg accumulate)
  // uses the combined cost of itself and its blocking dependent, since
  // the dependent will execute at its home (constraint B).
  auto sizing_cost = [&](int oid) {
    const OperatorCost& own = costs[static_cast<size_t>(oid)];
    if (options.build_degree == BuildDegreePolicy::kJoinAware) {
      auto it = dependent_of.find(oid);
      if (it != dependent_of.end()) {
        OperatorCost joint = own;
        const OperatorCost& dep = costs[static_cast<size_t>(it->second)];
        joint.processing += dep.processing;
        joint.data_bytes += dep.data_bytes;
        return joint;
      }
    }
    return own;
  };

  for (int k = 0; k < task_tree.num_phases(); ++k) {
    SpanTimer par_span(trace, "parallelize", k);
    uint64_t phase_hits0 = 0;
    uint64_t phase_misses0 = 0;
    if (par_span.active() && options.cache != nullptr) {
      phase_hits0 = options.cache->counter().hits();
      phase_misses0 = options.cache->counter().misses();
    }
    std::vector<int> op_ids = task_tree.PhaseOps(k);
    std::vector<ParallelizedOp> ops;
    std::vector<int> floating_ids;
    ops.reserve(op_ids.size());
    for (int oid : op_ids) {
      const PhysicalOp& op = op_tree.op(oid);
      const OperatorCost& cost = costs[static_cast<size_t>(oid)];
      if (op.blocking_input >= 0) {
        // Constraint B: the op executes where its blocking producer
        // materialized its state (hash table / sorted runs / group
        // table); that producer always ran in an earlier phase.
        std::vector<int> home = result.HomeOf(op.blocking_input);
        if (home.empty()) {
          return Status::Internal(
              StrFormat("blocking producer op%d of op%d not scheduled in "
                        "an earlier phase",
                        op.blocking_input, oid));
        }
        auto rooted = par_rooted(cost, std::move(home));
        if (!rooted.ok()) return rooted.status();
        ops.push_back(std::move(rooted).value());
        if (par_span.active()) {
          par_span.Attr(StrFormat("op%d.degree", oid),
                        StrFormat("%d:rooted", ops.back().degree));
        }
      } else {
        floating_ids.push_back(oid);
      }
    }

    // Fix the parallelization of the floating operators. The *degree* is
    // derived from the sizing cost (join-aware for builds); the clones are
    // split from the operator's own cost.
    if (options.policy == ParallelizationPolicy::kMalleable) {
      std::vector<OperatorCost> sizing;
      sizing.reserve(floating_ids.size());
      for (int oid : floating_ids) sizing.push_back(sizing_cost(oid));
      SpanTimer malleable_span(trace, "malleable_select", k);
      auto selection = SelectMalleableParallelization(sizing, ops, params,
                                                      usage, config.num_sites);
      if (!selection.ok()) return selection.status();
      if (malleable_span.active()) {
        malleable_span.AttrInt("floating_ops",
                               static_cast<int64_t>(floating_ids.size()));
        malleable_span.AttrDouble("lower_bound_ms", selection->lower_bound);
      }
      malleable_span.End();
      for (size_t i = 0; i < floating_ids.size(); ++i) {
        auto op = par_at_degree(costs[static_cast<size_t>(floating_ids[i])],
                                selection->degrees[i]);
        if (!op.ok()) return op.status();
        ops.push_back(std::move(op).value());
        if (par_span.active()) {
          par_span.Attr(StrFormat("op%d.degree", floating_ids[i]),
                        StrFormat("%d:malleable", selection->degrees[i]));
        }
      }
    } else {
      for (int oid : floating_ids) {
        auto sized = par_floating(sizing_cost(oid));
        if (!sized.ok()) return sized.status();
        auto op = par_at_degree(costs[static_cast<size_t>(oid)],
                                sized->degree);
        if (!op.ok()) return op.status();
        ops.push_back(std::move(op).value());
        if (par_span.active()) {
          // Chosen degree vs. the Prop. 4.1 cap the CG_f rule derived it
          // from (on the sizing cost: join-aware for builds).
          const OperatorCost sc = sizing_cost(oid);
          const int n_max = MaxCoarseGrainDegree(
              sc.ProcessingArea(), sc.data_bytes, params, options.granularity);
          par_span.Attr(StrFormat("op%d.degree", oid),
                        StrFormat("%d/nmax=%d", sized->degree, n_max));
        }
      }
    }
    if (par_span.active() && options.cache != nullptr) {
      par_span.AttrInt(
          "cache.hits",
          static_cast<int64_t>(options.cache->counter().hits() - phase_hits0));
      par_span.AttrInt("cache.misses",
                       static_cast<int64_t>(options.cache->counter().misses() -
                                            phase_misses0));
    }
    par_span.End();

    SpanTimer sched_span(trace, "operator_schedule", k);
    auto schedule = OperatorSchedule(ops, config.num_sites, config.dims,
                                     options.list_options);
    if (!schedule.ok()) return schedule.status();
    PhaseSchedule phase{k, std::move(ops), std::move(schedule).value(), 0.0};
    phase.makespan = phase.schedule.Makespan();
    if (sched_span.active()) {
      AnnotateOperatorScheduleSpan(&sched_span, phase, config);
    }
    sched_span.End();
    result.response_time += phase.makespan;
    result.phases.push_back(std::move(phase));
  }
  if (call_span.active()) {
    call_span.AttrInt("phases", static_cast<int64_t>(result.phases.size()));
    call_span.AttrDouble("response_time_ms", result.response_time);
    if (options.cache != nullptr) {
      call_span.AttrInt(
          "cache.hits",
          static_cast<int64_t>(options.cache->counter().hits() - call_hits0));
      call_span.AttrInt("cache.misses",
                        static_cast<int64_t>(options.cache->counter().misses() -
                                             call_misses0));
    }
  }
  return result;
}

}  // namespace mrs
