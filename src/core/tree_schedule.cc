#include "core/tree_schedule.h"

#include <algorithm>
#include <utility>

#include "common/logging.h"
#include "common/str_util.h"
#include "core/malleable.h"
#include "exec/explain.h"

namespace mrs {

namespace {

/// Annotates a finished OPERATORSCHEDULE span with the phase diagnosis the
/// paper's analysis audits: the critical site of the eq. (3) argmax and
/// whether its l(work(s)) (resource congestion) or its slowest clone's
/// T_seq binds.
void AnnotateOperatorScheduleSpan(SpanTimer* span, const PhaseSchedule& phase,
                                  const MachineConfig& config) {
  const PhaseExplanation exp = ExplainPhase(phase);
  span->AttrInt("ops", static_cast<int64_t>(phase.ops.size()));
  span->AttrDouble("makespan_ms", phase.makespan);
  span->AttrInt("critical_site", exp.critical_site);
  if (exp.load_bound && exp.critical_resource >= 0) {
    const size_t r = static_cast<size_t>(exp.critical_resource);
    span->Attr("eq3_binding",
               StrFormat("congestion:%s",
                         r < config.resource_names.size()
                             ? config.resource_names[r].c_str()
                             : StrFormat("r%zu", r).c_str()));
  } else {
    span->Attr("eq3_binding", "t_seq");
  }
  span->AttrInt("heaviest_op", exp.heaviest_op);
}

}  // namespace

std::vector<int> TreeScheduleResult::HomeOf(int op_id) const {
  for (const auto& phase : phases) {
    std::vector<int> home = phase.schedule.HomeOf(op_id);
    if (!home.empty()) return home;
  }
  return {};
}

std::string TreeScheduleResult::ToString() const {
  std::string out = StrFormat("TreeSchedule(response=%.2fms, %zu phases)\n",
                              response_time, phases.size());
  for (const auto& p : phases) {
    out += StrFormat("  phase %d: %zu ops, makespan=%.2fms\n", p.phase,
                     p.ops.size(), p.makespan);
  }
  return out;
}

Result<PhasePlanner> PhasePlanner::Create(const OperatorTree& op_tree,
                                          const TaskTree& task_tree,
                                          const std::vector<OperatorCost>& costs,
                                          const CostParams& params,
                                          const MachineConfig& machine,
                                          const OverlapUsageModel& usage,
                                          const TreeScheduleOptions& options) {
  if (static_cast<int>(costs.size()) != op_tree.num_ops()) {
    return Status::InvalidArgument(
        StrFormat("costs size %zu != %d operators", costs.size(),
                  op_tree.num_ops()));
  }
  MRS_RETURN_IF_ERROR(params.Validate());
  MachineConfig config = machine;
  MRS_RETURN_IF_ERROR(config.Validate());
  if (options.cache != nullptr &&
      !options.cache->CompatibleWith(params, usage.epsilon(),
                                     options.granularity,
                                     config.num_sites)) {
    return Status::InvalidArgument(
        "parallelize cache was built for a different scheduling context");
  }
  return PhasePlanner(op_tree, task_tree, costs, params, std::move(config),
                      usage, options);
}

PhasePlanner::PhasePlanner(const OperatorTree& op_tree,
                           const TaskTree& task_tree,
                           const std::vector<OperatorCost>& costs,
                           const CostParams& params, MachineConfig config,
                           const OverlapUsageModel& usage,
                           const TreeScheduleOptions& options)
    : op_tree_(&op_tree),
      task_tree_(&task_tree),
      costs_(&costs),
      params_(params),
      config_(std::move(config)),
      usage_(usage),
      options_(options) {
  for (const auto& op : op_tree_->ops()) {
    if (op.blocking_input >= 0) {
      dependent_of_[op.blocking_input] = op.id;
    }
  }
}

int PhasePlanner::num_phases() const { return task_tree_->num_phases(); }

OperatorCost PhasePlanner::SizingCost(int oid) const {
  const OperatorCost& own = (*costs_)[static_cast<size_t>(oid)];
  if (options_.build_degree == BuildDegreePolicy::kJoinAware) {
    auto it = dependent_of_.find(oid);
    if (it != dependent_of_.end()) {
      OperatorCost joint = own;
      const OperatorCost& dep = (*costs_)[static_cast<size_t>(it->second)];
      joint.processing += dep.processing;
      joint.data_bytes += dep.data_bytes;
      return joint;
    }
  }
  return own;
}

Result<PhaseSchedule> PhasePlanner::NextPhase(
    const std::vector<WorkVector>* base_load) {
  if (done()) {
    return Status::FailedPrecondition(
        StrFormat("all %d phases already scheduled", num_phases()));
  }
  const int k = next_;
  TraceSink* const trace = options_.trace;

  // Parallelization entry points, memoized when a cache is supplied.
  auto par_rooted = [&](const OperatorCost& cost, std::vector<int> home) {
    return options_.cache != nullptr
               ? options_.cache->Rooted(cost, std::move(home))
               : ParallelizeRooted(cost, params_, usage_, std::move(home),
                                   config_.num_sites);
  };
  auto par_floating = [&](const OperatorCost& cost) {
    return options_.cache != nullptr
               ? options_.cache->Floating(cost)
               : ParallelizeFloating(cost, params_, usage_,
                                     options_.granularity, config_.num_sites);
  };
  auto par_at_degree = [&](const OperatorCost& cost, int degree) {
    return options_.cache != nullptr
               ? options_.cache->AtDegree(cost, degree)
               : ParallelizeAtDegree(cost, params_, usage_, degree,
                                     config_.num_sites);
  };

  SpanTimer par_span(trace, "parallelize", k);
  uint64_t phase_hits0 = 0;
  uint64_t phase_misses0 = 0;
  if (par_span.active() && options_.cache != nullptr) {
    phase_hits0 = options_.cache->counter().hits();
    phase_misses0 = options_.cache->counter().misses();
  }
  std::vector<int> op_ids = task_tree_->PhaseOps(k);
  std::vector<ParallelizedOp> ops;
  std::vector<int> floating_ids;
  ops.reserve(op_ids.size());
  for (int oid : op_ids) {
    const PhysicalOp& op = op_tree_->op(oid);
    const OperatorCost& cost = (*costs_)[static_cast<size_t>(oid)];
    if (op.blocking_input >= 0) {
      // Constraint B: the op executes where its blocking producer
      // materialized its state (hash table / sorted runs / group
      // table); that producer always ran in an earlier phase.
      auto home_it = home_of_.find(op.blocking_input);
      if (home_it == home_of_.end() || home_it->second.empty()) {
        return Status::Internal(
            StrFormat("blocking producer op%d of op%d not scheduled in "
                      "an earlier phase",
                      op.blocking_input, oid));
      }
      auto rooted = par_rooted(cost, home_it->second);
      if (!rooted.ok()) return rooted.status();
      ops.push_back(std::move(rooted).value());
      if (par_span.active()) {
        par_span.Attr(StrFormat("op%d.degree", oid),
                      StrFormat("%d:rooted", ops.back().degree));
      }
    } else {
      floating_ids.push_back(oid);
    }
  }

  // Fix the parallelization of the floating operators. The *degree* is
  // derived from the sizing cost (join-aware for builds); the clones are
  // split from the operator's own cost.
  if (options_.policy == ParallelizationPolicy::kMalleable) {
    std::vector<OperatorCost> sizing;
    sizing.reserve(floating_ids.size());
    for (int oid : floating_ids) sizing.push_back(SizingCost(oid));
    SpanTimer malleable_span(trace, "malleable_select", k);
    auto selection = SelectMalleableParallelization(sizing, ops, params_,
                                                    usage_, config_.num_sites);
    if (!selection.ok()) return selection.status();
    if (malleable_span.active()) {
      malleable_span.AttrInt("floating_ops",
                             static_cast<int64_t>(floating_ids.size()));
      malleable_span.AttrDouble("lower_bound_ms", selection->lower_bound);
    }
    malleable_span.End();
    for (size_t i = 0; i < floating_ids.size(); ++i) {
      auto op = par_at_degree((*costs_)[static_cast<size_t>(floating_ids[i])],
                              selection->degrees[i]);
      if (!op.ok()) return op.status();
      ops.push_back(std::move(op).value());
      if (par_span.active()) {
        par_span.Attr(StrFormat("op%d.degree", floating_ids[i]),
                      StrFormat("%d:malleable", selection->degrees[i]));
      }
    }
  } else {
    for (int oid : floating_ids) {
      const OperatorCost& own = (*costs_)[static_cast<size_t>(oid)];
      // Joint sizing only changes the cost for builds under kJoinAware;
      // for every other floating op SizingCost returns `own` unchanged.
      const bool joint_sizing =
          options_.build_degree == BuildDegreePolicy::kJoinAware &&
          dependent_of_.find(oid) != dependent_of_.end();
      auto sized = par_floating(joint_sizing ? SizingCost(oid) : own);
      if (!sized.ok()) return sized.status();
      const int degree = sized->degree;
      if (joint_sizing || options_.cache != nullptr) {
        auto op = par_at_degree(own, degree);
        if (!op.ok()) return op.status();
        ops.push_back(std::move(op).value());
      } else {
        // Sizing cost == own cost and no cache: ParallelizeFloating
        // already returned MakeParallelized(own, degree) — reusing it is
        // bit-identical to re-splitting via ParallelizeAtDegree. (With a
        // cache we still call AtDegree so memoization sees both keys.)
        ops.push_back(std::move(sized).value());
      }
      if (par_span.active()) {
        // Chosen degree vs. the Prop. 4.1 cap the CG_f rule derived it
        // from (on the sizing cost: join-aware for builds).
        const OperatorCost sc = SizingCost(oid);
        const int n_max = MaxCoarseGrainDegree(
            sc.ProcessingArea(), sc.data_bytes, params_, options_.granularity);
        par_span.Attr(StrFormat("op%d.degree", oid),
                      StrFormat("%d/nmax=%d", degree, n_max));
      }
    }
  }
  if (par_span.active() && options_.cache != nullptr) {
    par_span.AttrInt(
        "cache.hits",
        static_cast<int64_t>(options_.cache->counter().hits() - phase_hits0));
    par_span.AttrInt("cache.misses",
                     static_cast<int64_t>(options_.cache->counter().misses() -
                                          phase_misses0));
  }
  par_span.End();

  SpanTimer sched_span(trace, "operator_schedule", k);
  OperatorScheduleOptions list_options = options_.list_options;
  // A per-call base load (the online scheduler's phase-instant residual)
  // overrides a static one carried in the options (the list engine's
  // tree_guard threading ListScheduleOptions::base_load through).
  if (base_load != nullptr) list_options.base_load = base_load;
  if (sched_span.active()) {
    // Which site-selection engine ran (see OperatorScheduleOptions::
    // placement_index) — the schedules are pinned byte-identical, so this
    // only matters for performance forensics.
    sched_span.Attr("placement",
                    list_options.placement_index &&
                            list_options.site_choice == SiteChoice::kLeastLoaded
                        ? "indexed"
                        : "linear");
  }
  auto schedule = OperatorSchedule(ops, config_.num_sites, config_.dims,
                                   list_options);
  if (!schedule.ok()) return schedule.status();
  PhaseSchedule phase{k, std::move(ops), std::move(schedule).value(), 0.0};
  phase.makespan = phase.schedule.Makespan();
  if (sched_span.active()) {
    AnnotateOperatorScheduleSpan(&sched_span, phase, config_);
  }
  sched_span.End();

  // Record homes for constraint B lookups in later phases.
  for (const auto& op : phase.ops) {
    home_of_[op.op_id] = phase.schedule.HomeOf(op.op_id);
  }
  ++next_;
  return phase;
}

Result<TreeScheduleResult> TreeSchedule(const OperatorTree& op_tree,
                                        const TaskTree& task_tree,
                                        const std::vector<OperatorCost>& costs,
                                        const CostParams& params,
                                        const MachineConfig& machine,
                                        const OverlapUsageModel& usage,
                                        const TreeScheduleOptions& options) {
  auto planner = PhasePlanner::Create(op_tree, task_tree, costs, params,
                                      machine, usage, options);
  if (!planner.ok()) return planner.status();

  TraceSink* const trace = options.trace;
  SpanTimer call_span(trace, "tree_schedule");
  uint64_t call_hits0 = 0;
  uint64_t call_misses0 = 0;
  if (trace != nullptr && options.cache != nullptr) {
    call_hits0 = options.cache->counter().hits();
    call_misses0 = options.cache->counter().misses();
  }

  TreeScheduleResult result;
  result.phases.reserve(static_cast<size_t>(task_tree.num_phases()));
  while (!planner->done()) {
    auto phase = planner->NextPhase();
    if (!phase.ok()) return phase.status();
    result.response_time += phase->makespan;
    result.phases.push_back(std::move(phase).value());
  }
  if (call_span.active()) {
    call_span.AttrInt("phases", static_cast<int64_t>(result.phases.size()));
    call_span.AttrDouble("response_time_ms", result.response_time);
    if (options.cache != nullptr) {
      call_span.AttrInt(
          "cache.hits",
          static_cast<int64_t>(options.cache->counter().hits() - call_hits0));
      call_span.AttrInt("cache.misses",
                        static_cast<int64_t>(options.cache->counter().misses() -
                                             call_misses0));
    }
  }
  return result;
}

}  // namespace mrs
