#include "core/preemptability.h"

#include <algorithm>
#include <limits>

#include "common/logging.h"
#include "common/rng.h"
#include "common/str_util.h"

namespace mrs {

PreemptabilityPenalty PreemptabilityPenalty::ForDim(size_t dims, size_t dim,
                                                    double value) {
  PreemptabilityPenalty penalty;
  penalty.delta.assign(dims, 0.0);
  MRS_CHECK(dim < dims) << "penalty dimension out of range";
  penalty.delta[dim] = value;
  return penalty;
}

std::string PreemptabilityPenalty::ToString() const {
  std::vector<std::string> parts;
  parts.reserve(delta.size());
  for (double d : delta) parts.push_back(StrFormat("%.3f", d));
  return "delta=[" + StrJoin(parts, ", ") + "]";
}

namespace {

/// Penalized load vector at a site: per-dimension load scaled by
/// 1 + delta*(sharers-1).
double PenalizedLoadLength(const Schedule& schedule, int site,
                           const PreemptabilityPenalty& penalty) {
  const WorkVector& load = schedule.SiteLoad(site);
  std::vector<int> sharers(load.dim(), 0);
  for (int p : schedule.SitePlacements(site)) {
    const ClonePlacement& c =
        schedule.placements()[static_cast<size_t>(p)];
    for (size_t i = 0; i < load.dim(); ++i) {
      if (c.work[i] > 0.0) ++sharers[i];
    }
  }
  double length = 0.0;
  for (size_t i = 0; i < load.dim(); ++i) {
    const double inflation =
        1.0 + penalty.DeltaFor(i) *
                  std::max(0, sharers[i] - 1);
    length = std::max(length, load[i] * inflation);
  }
  return length;
}

}  // namespace

double PenalizedSiteTime(const Schedule& schedule, int site,
                         const PreemptabilityPenalty& penalty) {
  double slowest = 0.0;
  for (int p : schedule.SitePlacements(site)) {
    slowest = std::max(
        slowest, schedule.placements()[static_cast<size_t>(p)].t_seq);
  }
  return std::max(slowest, PenalizedLoadLength(schedule, site, penalty));
}

double PenalizedMakespan(const Schedule& schedule,
                         const PreemptabilityPenalty& penalty) {
  double m = 0.0;
  for (int j = 0; j < schedule.num_sites(); ++j) {
    m = std::max(m, PenalizedSiteTime(schedule, j, penalty));
  }
  return m;
}

double PenalizedResponseTime(const TreeScheduleResult& result,
                             const PreemptabilityPenalty& penalty) {
  double total = 0.0;
  for (const auto& phase : result.phases) {
    total += PenalizedMakespan(phase.schedule, penalty);
  }
  return total;
}

Result<Schedule> PenaltyAwareOperatorSchedule(
    const std::vector<ParallelizedOp>& ops, int num_sites, int dims,
    const PreemptabilityPenalty& penalty,
    const OperatorScheduleOptions& options) {
  if (num_sites < 1) {
    return Status::InvalidArgument("num_sites must be >= 1");
  }
  Schedule schedule(num_sites, dims);
  for (const auto& op : ops) {
    if (op.degree > num_sites) {
      return Status::InvalidArgument(
          StrFormat("op%d degree %d exceeds %d sites", op.op_id, op.degree,
                    num_sites));
    }
    if (op.rooted) {
      MRS_RETURN_IF_ERROR(schedule.PlaceRooted(op));
    }
  }

  struct CloneRef {
    size_t op_index;
    int clone_idx;
    double length;
  };
  std::vector<CloneRef> list;
  for (size_t i = 0; i < ops.size(); ++i) {
    if (ops[i].rooted) continue;
    for (int k = 0; k < ops[i].degree; ++k) {
      list.push_back({i, k, ops[i].clones[static_cast<size_t>(k)].Length()});
    }
  }
  switch (options.order) {
    case ListOrder::kDecreasingLength:
      std::stable_sort(list.begin(), list.end(),
                       [](const CloneRef& a, const CloneRef& b) {
                         return a.length > b.length;
                       });
      break;
    case ListOrder::kIncreasingLength:
      std::stable_sort(list.begin(), list.end(),
                       [](const CloneRef& a, const CloneRef& b) {
                         return a.length < b.length;
                       });
      break;
    case ListOrder::kInputOrder:
      break;
    case ListOrder::kRandom: {
      Rng rng(options.shuffle_seed);
      rng.Shuffle(&list);
      break;
    }
  }

  std::vector<std::vector<char>> used(
      ops.size(), std::vector<char>(static_cast<size_t>(num_sites), 0));
  for (const CloneRef& clone : list) {
    const ParallelizedOp& op = ops[clone.op_index];
    std::vector<char>& op_used = used[clone.op_index];
    int chosen = -1;
    double chosen_time = std::numeric_limits<double>::infinity();
    for (int j = 0; j < num_sites; ++j) {
      if (op_used[static_cast<size_t>(j)]) continue;
      if (options.site_choice == SiteChoice::kFirstAllowable) {
        chosen = j;
        break;
      }
      // Penalized load after hypothetically adding this clone: approximate
      // by current penalized length plus the clone's contribution with its
      // own inflation; exact enough to steer the greedy choice, cheap
      // enough to stay within the Prop. 5.1 complexity.
      const double current = PenalizedLoadLength(schedule, j, penalty);
      double with_clone = current;
      const WorkVector& load = schedule.SiteLoad(j);
      for (size_t i = 0; i < load.dim(); ++i) {
        const double w = op.clones[static_cast<size_t>(clone.clone_idx)][i];
        if (w <= 0.0) continue;
        // Count existing sharers on dimension i.
        int sharers = 1;  // the new clone
        for (int p : schedule.SitePlacements(j)) {
          if (schedule.placements()[static_cast<size_t>(p)].work[i] > 0.0) {
            ++sharers;
          }
        }
        const double inflation =
            1.0 + penalty.DeltaFor(i) * std::max(0, sharers - 1);
        with_clone = std::max(with_clone, (load[i] + w) * inflation);
      }
      if (with_clone < chosen_time) {
        chosen = j;
        chosen_time = with_clone;
      }
    }
    MRS_CHECK(chosen >= 0) << "no allowable site for op" << op.op_id;
    MRS_RETURN_IF_ERROR(schedule.Place(op, clone.clone_idx, chosen));
    op_used[static_cast<size_t>(chosen)] = 1;
  }
  return schedule;
}

}  // namespace mrs
