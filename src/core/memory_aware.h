#ifndef MRS_CORE_MEMORY_AWARE_H_
#define MRS_CORE_MEMORY_AWARE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "core/tree_schedule.h"

namespace mrs {

/// Parameters of the memory extension. The paper's assumption A1 gives
/// every operator unlimited memory and §8 names the non-preemptable
/// memory dimension as an open problem; this module implements the
/// natural first step: hash tables occupy site memory from the end of
/// their build phase until their probe completes, and phases whose
/// resident tables would overflow a site are *split* (tasks deferred into
/// an extra synchronized subphase, in the spirit of Hsiao et al.'s
/// serialization), trading parallelism for feasibility.
struct MemoryOptions {
  /// Usable memory per site, in bytes.
  double site_memory_bytes = 64.0 * 1024 * 1024;
  /// Hash-table size as a multiple of the inner relation's bytes
  /// (directory + bucket overhead).
  double hash_table_overhead = 1.2;
};

/// One scheduled subphase of a memory-aware execution.
struct MemoryPhase {
  /// Index of the originating task-tree phase.
  int task_phase = -1;
  /// Subphase within the task phase (0 when no split happened).
  int subphase = 0;
  std::vector<ParallelizedOp> ops;
  Schedule schedule;
  double makespan = 0.0;
  /// Peak resident memory over all sites at the end of this subphase.
  double peak_site_memory = 0.0;
};

struct MemoryAwareResult {
  std::vector<MemoryPhase> phases;
  double response_time = 0.0;
  /// Number of extra synchronization points introduced by memory pressure
  /// (0 means assumption A1 was never violated and the schedule matches
  /// plain TREESCHEDULE's structure).
  int phase_splits = 0;
  /// Peak resident memory across the whole execution (bytes, one site).
  double peak_site_memory = 0.0;

  /// Placement of an operator across subphases (cf.
  /// TreeScheduleResult::HomeOf).
  std::vector<int> HomeOf(int op_id) const;

  std::string ToString() const;
};

/// TREESCHEDULE extended with non-preemptable memory:
///
///  * a build's hash table (inner bytes * overhead) is divided evenly
///    among its home sites and stays resident until its probe's phase
///    completes;
///  * the per-phase list scheduler only places a build clone on a site
///    with enough free memory; builds are given at least the degree
///    needed for their per-clone share to fit on a site;
///  * when a phase's builds cannot all be placed, the unplaceable tasks
///    are deferred into an additional synchronized subphase (memory
///    frees as earlier probes complete);
///  * fails with FailedPrecondition when even an empty machine cannot
///    hold a single table (per-site memory too small at maximum degree).
Result<MemoryAwareResult> MemoryAwareTreeSchedule(
    const OperatorTree& op_tree, const TaskTree& task_tree,
    const std::vector<OperatorCost>& costs, const CostParams& params,
    const MachineConfig& machine, const OverlapUsageModel& usage,
    const TreeScheduleOptions& options = {},
    const MemoryOptions& memory = {});

}  // namespace mrs

#endif  // MRS_CORE_MEMORY_AWARE_H_
