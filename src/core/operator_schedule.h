#ifndef MRS_CORE_OPERATOR_SCHEDULE_H_
#define MRS_CORE_OPERATOR_SCHEDULE_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "core/schedule.h"
#include "cost/parallelize.h"

namespace mrs {

/// Ordering of the floating-clone list (the paper's rule is
/// kDecreasingLength; the alternatives exist for the list-order ablation).
enum class ListOrder {
  kDecreasingLength,  ///< non-increasing l(w) — the paper's rule
  kIncreasingLength,
  kInputOrder,
  kRandom,
};

/// Site-selection rule (the paper's rule is kLeastLoaded; kFirstAllowable
/// exists for the ablation).
enum class SiteChoice {
  kLeastLoaded,     ///< site minimizing l(work(s)) among allowable sites
  kFirstAllowable,  ///< lowest-numbered allowable site
};

struct OperatorScheduleOptions {
  ListOrder order = ListOrder::kDecreasingLength;
  SiteChoice site_choice = SiteChoice::kLeastLoaded;
  /// Seed for ListOrder::kRandom.
  uint64_t shuffle_seed = 0;
  /// Residual per-site load from clones of *other* in-flight queries (the
  /// online scheduler's incremental variant: eq. (2)/(3) evaluated over
  /// the union of resident and new clones). When non-null it must hold
  /// exactly `num_sites` work vectors of dimensionality `dims`;
  /// least-loaded site selection then minimizes l(base[s] + work(s)).
  /// The returned Schedule still contains only the clones of `ops` —
  /// the base only biases placement. Null (the default) reproduces the
  /// paper's offline behavior exactly (an all-zero base is equivalent).
  const std::vector<WorkVector>* base_load = nullptr;
  /// Use the indexed placement engine (a tournament tree over per-site
  /// l(work(s)) with exclusion-aware descent, see core/placement_index.h)
  /// for kLeastLoaded site selection: O(log P + degree) per clone instead
  /// of the O(P) reference scan, with or without a base_load. Tie-breaking
  /// is pinned to lowest-index-among-minima in both paths, so schedules
  /// are byte-identical either way — the linear scan is retained as the
  /// oracle for differential testing (and is what kFirstAllowable always
  /// uses, where the scan stops within degree+1 steps anyway).
  bool placement_index = true;
};

/// The paper's OPERATORSCHEDULE list scheduling heuristic (§5.3, Figure 3)
/// for a collection of concurrently executable (pipelined/independent)
/// operators whose degrees of parallelism are already fixed:
///
///   1. place the clones of every rooted operator at its home sites;
///   2. list the clones of all floating operators in non-increasing order
///      of their length l(w);
///   3. place each clone on the least-filled allowable site, i.e. the site
///      s with minimal l(work(s)) among sites hosting no other clone of
///      the same operator.
///
/// The resulting schedule satisfies constraints (A) and (B); its makespan
/// is within 2d+1 of the optimum for the given parallelization
/// (Theorem 5.1(a)) and within 2d(fd+1)+1 of the optimal CG_f schedule
/// (Theorem 5.1(b)).
///
/// Fails if any operator's degree exceeds `num_sites` or rooted homes are
/// malformed. Runs in O(M P (M + log P)) (Prop. 5.1); this implementation
/// is O(total_clones * (log P + degree)) with the placement index (the
/// default) and O(total_clones * P) with the reference linear scan
/// (OperatorScheduleOptions::placement_index = false).
Result<Schedule> OperatorSchedule(const std::vector<ParallelizedOp>& ops,
                                  int num_sites, int dims,
                                  const OperatorScheduleOptions& options = {});

}  // namespace mrs

#endif  // MRS_CORE_OPERATOR_SCHEDULE_H_
