#include "core/schedule.h"

#include <algorithm>
#include <limits>

#include "common/logging.h"
#include "common/str_util.h"

namespace mrs {

Schedule::Schedule(int num_sites, int dims)
    : num_sites_(num_sites),
      dims_(dims),
      site_chain_(static_cast<size_t>(std::max(num_sites, 0))),
      site_load_(static_cast<size_t>(std::max(num_sites, 0)),
                 WorkVector(static_cast<size_t>(std::max(dims, 0)))),
      site_max_t_seq_(static_cast<size_t>(std::max(num_sites, 0)), 0.0) {
  MRS_CHECK(num_sites >= 1) << "schedule needs at least one site";
  MRS_CHECK(dims >= 1) << "schedule needs at least one resource dimension";
}

void Schedule::ReserveFor(const std::vector<ParallelizedOp>& ops) {
  size_t total = placements_.size();
  for (const auto& op : ops) {
    if (op.degree > 0) total += static_cast<size_t>(op.degree);
  }
  placements_.reserve(total);
  next_at_site_.reserve(total);
  op_sites_.reserve(op_sites_.size() + ops.size());
  for (const auto& op : ops) {
    if (op.degree < 1) continue;
    auto it = op_sites_.find(op.op_id);
    if (it == op_sites_.end()) {
      op_sites_.emplace(op.op_id,
                        std::vector<int>(static_cast<size_t>(op.degree), -1));
    }
  }
}

Status Schedule::Place(const ParallelizedOp& op, int clone_idx, int site) {
  return PlaceAt(op, clone_idx, site, 0.0);
}

Status Schedule::PlaceAt(const ParallelizedOp& op, int clone_idx, int site,
                         double start) {
  if (start < 0.0) {
    return Status::InvalidArgument(
        StrFormat("op%d clone %d start %g < 0", op.op_id, clone_idx, start));
  }
  if (site < 0 || site >= num_sites_) {
    return Status::OutOfRange(StrFormat("site %d outside [0, %d)", site,
                                        num_sites_));
  }
  if (clone_idx < 0 || clone_idx >= op.degree) {
    return Status::OutOfRange(
        StrFormat("clone %d outside [0, %d) for op%d", clone_idx, op.degree,
                  op.op_id));
  }
  if (static_cast<int>(op.clones[static_cast<size_t>(clone_idx)].dim()) !=
      dims_) {
    return Status::InvalidArgument(
        StrFormat("op%d clone dimensionality %zu != schedule dims %d",
                  op.op_id, op.clones[static_cast<size_t>(clone_idx)].dim(),
                  dims_));
  }
  // find-then-emplace instead of try_emplace with a vector argument: the
  // latter constructs (allocates) the vector before probing the map, even
  // when the key is already present — i.e. on every placement after the
  // operator's first.
  auto it = op_sites_.find(op.op_id);
  if (it == op_sites_.end()) {
    it = op_sites_
             .emplace(op.op_id,
                      std::vector<int>(static_cast<size_t>(op.degree), -1))
             .first;
  }
  std::vector<int>& sites = it->second;
  if (static_cast<int>(sites.size()) != op.degree) {
    return Status::InvalidArgument(
        StrFormat("op%d placed with inconsistent degrees", op.op_id));
  }
  if (sites[static_cast<size_t>(clone_idx)] != -1) {
    return Status::InvalidArgument(
        StrFormat("clone %d of op%d already placed", clone_idx, op.op_id));
  }
  // Constraint (A): no two clones of one operator on the same site.
  if (HasOpAtSite(op.op_id, site)) {
    return Status::InvalidArgument(
        StrFormat("site %d already hosts a clone of op%d", site, op.op_id));
  }

  ClonePlacement placement;
  placement.op_id = op.op_id;
  placement.clone_idx = clone_idx;
  placement.site = site;
  placement.work = op.clones[static_cast<size_t>(clone_idx)];
  placement.t_seq = op.t_seq[static_cast<size_t>(clone_idx)];
  placement.start = start;
  if (start > 0.0) aligned_ = false;

  const int index = static_cast<int>(placements_.size());
  sites[static_cast<size_t>(clone_idx)] = site;
  SiteChain& chain = site_chain_[static_cast<size_t>(site)];
  if (chain.tail >= 0) {
    next_at_site_[static_cast<size_t>(chain.tail)] = index;
  } else {
    chain.head = index;
  }
  chain.tail = index;
  ++chain.count;
  site_load_[static_cast<size_t>(site)] += placement.work;
  site_max_t_seq_[static_cast<size_t>(site)] =
      std::max(site_max_t_seq_[static_cast<size_t>(site)], placement.t_seq);
  placements_.push_back(std::move(placement));
  next_at_site_.push_back(-1);
  return Status::OK();
}

Status Schedule::PlaceRooted(const ParallelizedOp& op) {
  if (!op.rooted) {
    return Status::InvalidArgument(
        StrFormat("op%d is not rooted", op.op_id));
  }
  if (static_cast<int>(op.home.size()) != op.degree) {
    return Status::InvalidArgument(
        StrFormat("op%d home size %zu != degree %d", op.op_id,
                  op.home.size(), op.degree));
  }
  for (int k = 0; k < op.degree; ++k) {
    MRS_RETURN_IF_ERROR(Place(op, k, op.home[static_cast<size_t>(k)]));
  }
  return Status::OK();
}

Schedule::SitePlacementRange Schedule::SitePlacements(int site) const {
  MRS_CHECK(site >= 0 && site < num_sites_) << "site out of range";
  const SiteChain& chain = site_chain_[static_cast<size_t>(site)];
  return SitePlacementRange(chain.head, chain.count, &next_at_site_);
}

const WorkVector& Schedule::SiteLoad(int site) const {
  MRS_CHECK(site >= 0 && site < num_sites_) << "site out of range";
  return site_load_[static_cast<size_t>(site)];
}

double Schedule::SiteLoadLength(int site) const {
  return SiteLoad(site).Length();
}

double Schedule::SiteTime(int site) const {
  MRS_CHECK(site >= 0 && site < num_sites_) << "site out of range";
  return std::max(site_max_t_seq_[static_cast<size_t>(site)],
                  SiteLoadLength(site));
}

double Schedule::SweepSiteFinish(int site,
                                 std::vector<double>* finish) const {
  // Arrival order: by start time, placement order within equal starts
  // (starts of one placement round are bit-identical doubles, so exact
  // comparisons keep the sweep deterministic).
  std::vector<int> order;
  order.reserve(SitePlacements(site).size());
  for (int p : SitePlacements(site)) order.push_back(p);
  std::stable_sort(order.begin(), order.end(), [this](int a, int b) {
    return placements_[static_cast<size_t>(a)].start <
           placements_[static_cast<size_t>(b)].start;
  });

  struct Active {
    int placement;
    WorkVector remaining;
    double own;
  };
  std::vector<Active> active;
  WorkVector load(static_cast<size_t>(dims_));
  double now = 0.0;
  double site_finish = 0.0;
  size_t i = 0;
  const size_t n = order.size();
  while (i < n || !active.empty()) {
    if (active.empty()) {
      // Idle until the next arrival wave.
      now = std::max(now, placements_[static_cast<size_t>(order[i])].start);
      while (i < n &&
             placements_[static_cast<size_t>(order[i])].start <= now) {
        const ClonePlacement& c = placements_[static_cast<size_t>(order[i])];
        active.push_back(Active{order[i], c.work, c.t_seq});
        ++i;
      }
    }
    // Earliest common completion of the resident set (eq. (2) over the
    // remaining work).
    double longest_own = 0.0;
    load.SetZero();
    for (const Active& a : active) {
      longest_own = std::max(longest_own, a.own);
      load += a.remaining;
    }
    const double f = now + std::max(longest_own, load.Length());
    const double next_arrival =
        i < n ? placements_[static_cast<size_t>(order[i])].start
              : std::numeric_limits<double>::infinity();
    if (next_arrival < f) {
      // A new clone joins mid-wave: the residents have completed the
      // fraction (next_arrival - now) / (f - now) of their remaining work
      // (they all progress toward the common instant f), so both the
      // remaining vectors and the stand-alone remainders scale by the
      // complementary factor. f > now here since next_arrival >= now.
      const double factor = (f - next_arrival) / (f - now);
      for (Active& a : active) {
        a.remaining *= factor;
        a.own *= factor;
      }
      now = next_arrival;
      while (i < n &&
             placements_[static_cast<size_t>(order[i])].start <= now) {
        const ClonePlacement& c = placements_[static_cast<size_t>(order[i])];
        active.push_back(Active{order[i], c.work, c.t_seq});
        ++i;
      }
    } else {
      // The wave runs to completion: all residents finish together at f.
      for (const Active& a : active) {
        if (finish != nullptr) {
          (*finish)[static_cast<size_t>(a.placement)] = f;
        }
      }
      active.clear();
      now = f;
      site_finish = f;
    }
  }
  return site_finish;
}

double Schedule::SiteFinish(int site) const {
  MRS_CHECK(site >= 0 && site < num_sites_) << "site out of range";
  if (aligned_) return SiteTime(site);
  return SweepSiteFinish(site, nullptr);
}

std::vector<double> Schedule::CloneFinishTimes() const {
  std::vector<double> finish(placements_.size(), 0.0);
  if (aligned_) {
    for (size_t p = 0; p < placements_.size(); ++p) {
      finish[p] = SiteTime(placements_[p].site);
    }
    return finish;
  }
  for (int j = 0; j < num_sites_; ++j) SweepSiteFinish(j, &finish);
  return finish;
}

double Schedule::Makespan() const {
  if (aligned_) {
    double m = 0.0;
    for (int j = 0; j < num_sites_; ++j) m = std::max(m, SiteTime(j));
    return m;
  }
  double m = 0.0;
  for (int j = 0; j < num_sites_; ++j) m = std::max(m, SiteFinish(j));
  return m;
}

bool Schedule::HasOpAtSite(int op_id, int site) const {
  auto it = op_sites_.find(op_id);
  if (it == op_sites_.end()) return false;
  for (int s : it->second) {
    if (s == site) return true;
  }
  return false;
}

std::vector<int> Schedule::HomeOf(int op_id) const {
  auto it = op_sites_.find(op_id);
  if (it == op_sites_.end()) return {};
  return it->second;
}

Status Schedule::Validate(const std::vector<ParallelizedOp>& ops) const {
  for (const auto& op : ops) {
    auto it = op_sites_.find(op.op_id);
    if (it == op_sites_.end()) {
      return Status::FailedPrecondition(
          StrFormat("op%d has no placements", op.op_id));
    }
    const std::vector<int>& sites = it->second;
    if (static_cast<int>(sites.size()) != op.degree) {
      return Status::FailedPrecondition(
          StrFormat("op%d placed with degree %zu, expected %d", op.op_id,
                    sites.size(), op.degree));
    }
    std::vector<int> sorted = sites;
    std::sort(sorted.begin(), sorted.end());
    for (size_t k = 0; k < sorted.size(); ++k) {
      if (sorted[k] < 0) {
        return Status::FailedPrecondition(
            StrFormat("op%d has an unplaced clone", op.op_id));
      }
      if (k > 0 && sorted[k] == sorted[k - 1]) {
        return Status::FailedPrecondition(
            StrFormat("op%d has two clones at site %d (constraint A)",
                      op.op_id, sorted[k]));
      }
    }
    if (op.rooted && sites != op.home) {
      return Status::FailedPrecondition(
          StrFormat("rooted op%d not placed at its home (constraint B)",
                    op.op_id));
    }
  }
  return Status::OK();
}

std::string Schedule::ToString() const {
  std::string out = StrFormat("Schedule(P=%d, makespan=%.2fms):\n",
                              num_sites_, Makespan());
  for (int j = 0; j < num_sites_; ++j) {
    std::vector<std::string> parts;
    for (int p : SitePlacements(j)) {
      const auto& c = placements_[static_cast<size_t>(p)];
      parts.push_back(StrFormat("op%d.%d", c.op_id, c.clone_idx));
    }
    out += StrFormat("  s%-3d T=%.2fms load=%s: %s\n", j, SiteTime(j),
                     site_load_[static_cast<size_t>(j)].ToString().c_str(),
                     StrJoin(parts, " ").c_str());
  }
  return out;
}

}  // namespace mrs
