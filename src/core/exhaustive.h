#ifndef MRS_CORE_EXHAUSTIVE_H_
#define MRS_CORE_EXHAUSTIVE_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "cost/parallelize.h"

namespace mrs {

class ThreadPool;
struct TraceSink;

struct ExhaustiveOptions {
  /// Abort the search after this many branch-and-bound nodes; the result
  /// is then the best schedule found so far with proven_optimal = false.
  /// With a pool, the budget is split evenly across the root branches.
  uint64_t max_nodes = 20'000'000;
  /// Optional thread pool (not owned). When set, the search fans the root
  /// of the branch-and-bound tree — one task per candidate site of the
  /// first (largest) floating clone — across the pool. The result is
  /// identical to the sequential search when both run to proof (each
  /// branch is explored deterministically and the final makespan is the
  /// min over branches); under a node budget the two may differ, since
  /// parallel branches cannot share incumbents.
  ThreadPool* pool = nullptr;
  /// Optional trace sink (not owned). Records one "exhaustive_search" span
  /// annotated with clone counts, nodes explored, the incumbent seed, and
  /// whether optimality was proven. Null = tracing disabled.
  TraceSink* trace = nullptr;
};

struct ExhaustiveResult {
  /// Best (possibly optimal) makespan found.
  double makespan = 0.0;
  /// True iff the search space was exhausted (the value is the optimum
  /// for the given parallelization).
  bool proven_optimal = false;
  uint64_t nodes_explored = 0;
};

/// Exact optimal schedule makespan for a set of independent operators with
/// *fixed* degrees of parallelism — the yardstick of Theorem 5.1(a).
/// Branch-and-bound over clone->site assignments honoring constraint (A)
/// (rooted operators are pre-placed, honoring constraint (B)), minimizing
/// the eq. (3) makespan. Exponential: intended for instances with at most
/// ~15 floating clones and a handful of sites (the bound-validation
/// ablation), not production use.
Result<ExhaustiveResult> ExhaustiveOptimalMakespan(
    const std::vector<ParallelizedOp>& ops, int num_sites, int dims,
    const ExhaustiveOptions& options = {});

}  // namespace mrs

#endif  // MRS_CORE_EXHAUSTIVE_H_
