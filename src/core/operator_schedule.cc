#include "core/operator_schedule.h"

#include <algorithm>
#include <limits>

#include "common/logging.h"
#include "common/rng.h"
#include "common/str_util.h"
#include "core/placement_index.h"

namespace mrs {

namespace {

struct CloneRef {
  size_t op_index;  // into ops
  int clone_idx;
  double length;
};

}  // namespace

Result<Schedule> OperatorSchedule(const std::vector<ParallelizedOp>& ops,
                                  int num_sites, int dims,
                                  const OperatorScheduleOptions& options) {
  if (num_sites < 1) {
    return Status::InvalidArgument("num_sites must be >= 1");
  }
  if (options.base_load != nullptr) {
    if (static_cast<int>(options.base_load->size()) != num_sites) {
      return Status::InvalidArgument(
          StrFormat("base_load has %zu sites, schedule has %d",
                    options.base_load->size(), num_sites));
    }
    for (const WorkVector& base : *options.base_load) {
      if (static_cast<int>(base.dim()) != dims) {
        return Status::InvalidArgument(
            StrFormat("base_load vector has %zu dims, schedule has %d",
                      base.dim(), dims));
      }
      if (!base.IsNonNegative()) {
        return Status::InvalidArgument("base_load has a negative component");
      }
    }
  }
  Schedule schedule(num_sites, dims);

  // Degrees must fit: constraint (A) caps an operator's parallelism at P.
  size_t floating_clones = 0;
  for (const auto& op : ops) {
    if (op.degree > num_sites) {
      return Status::InvalidArgument(
          StrFormat("op%d degree %d exceeds %d sites", op.op_id, op.degree,
                    num_sites));
    }
    if (static_cast<int>(op.clones.size()) != op.degree ||
        static_cast<int>(op.t_seq.size()) != op.degree) {
      return Status::InvalidArgument(
          StrFormat("op%d has inconsistent clone data", op.op_id));
    }
    if (!op.rooted) floating_clones += static_cast<size_t>(op.degree);
  }
  // All allocation happens up front; the placement loop below then runs
  // heap-allocation-free (pinned by tests/core/alloc_free_test.cc).
  schedule.ReserveFor(ops);

  // Step 1: rooted operators are pinned by data placement.
  for (const auto& op : ops) {
    if (op.rooted) {
      MRS_RETURN_IF_ERROR(schedule.PlaceRooted(op));
    }
  }

  // Step 2: list the floating clones.
  std::vector<CloneRef> list;
  list.reserve(floating_clones);
  for (size_t i = 0; i < ops.size(); ++i) {
    if (ops[i].rooted) continue;
    for (int k = 0; k < ops[i].degree; ++k) {
      list.push_back(
          {i, k, ops[i].clones[static_cast<size_t>(k)].Length()});
    }
  }
  switch (options.order) {
    case ListOrder::kDecreasingLength:
      std::stable_sort(list.begin(), list.end(),
                       [](const CloneRef& a, const CloneRef& b) {
                         return a.length > b.length;
                       });
      break;
    case ListOrder::kIncreasingLength:
      std::stable_sort(list.begin(), list.end(),
                       [](const CloneRef& a, const CloneRef& b) {
                         return a.length < b.length;
                       });
      break;
    case ListOrder::kInputOrder:
      break;
    case ListOrder::kRandom: {
      Rng rng(options.shuffle_seed);
      rng.Shuffle(&list);
      break;
    }
  }

  // Step 3: place each clone on the least-filled allowable site.
  // Cache l(work(s)) per site (a placement only changes one site's value)
  // and per-floating-op site occupancy (constraint A lookups in O(1)).
  // With a residual base the cached value is l(base[s] + work(s)): the
  // union load of resident and new clones drives site selection.
  std::vector<WorkVector> combined;
  std::vector<double> load_length(static_cast<size_t>(num_sites), 0.0);
  if (options.base_load != nullptr) {
    combined = *options.base_load;
    for (int j = 0; j < num_sites; ++j) {
      combined[static_cast<size_t>(j)] += schedule.SiteLoad(j);
      load_length[static_cast<size_t>(j)] =
          combined[static_cast<size_t>(j)].Length();
    }
  } else {
    for (int j = 0; j < num_sites; ++j) {
      load_length[static_cast<size_t>(j)] = schedule.SiteLoadLength(j);
    }
  }
  // Site selection runs in one of two modes with pinned-identical output:
  // the indexed engine descends a tournament tree over load_length with
  // the operator's already-used sites excluded (O(log P + degree) per
  // clone, per-op sorted exclusion lists; below
  // PlacementIndex::kLinearScanMaxSites it scans its leaves instead —
  // see placement_index.h), while the reference linear scan walks all P
  // sites (the differential-testing oracle, and the kFirstAllowable
  // path, which stops within degree+1 steps regardless).
  const bool indexed = options.placement_index &&
                       options.site_choice == SiteChoice::kLeastLoaded;
  PlacementIndex index;
  std::vector<std::vector<int>> used_sorted;
  std::vector<std::vector<char>> used;
  if (indexed) {
    index.Reset(load_length);
    used_sorted.resize(ops.size());
    for (size_t i = 0; i < ops.size(); ++i) {
      if (!ops[i].rooted) {
        used_sorted[i].reserve(static_cast<size_t>(ops[i].degree));
      }
    }
  } else {
    used.assign(ops.size(),
                std::vector<char>(static_cast<size_t>(num_sites), 0));
  }
  for (const CloneRef& clone : list) {
    const ParallelizedOp& op = ops[clone.op_index];
    int chosen = -1;
    if (indexed) {
      chosen = index.MinSiteExcluding(used_sorted[clone.op_index]);
    } else {
      std::vector<char>& op_used = used[clone.op_index];
      double chosen_load = std::numeric_limits<double>::infinity();
      for (int j = 0; j < num_sites; ++j) {
        if (op_used[static_cast<size_t>(j)]) continue;
        if (options.site_choice == SiteChoice::kFirstAllowable) {
          chosen = j;
          break;
        }
        if (load_length[static_cast<size_t>(j)] < chosen_load) {
          chosen = j;
          chosen_load = load_length[static_cast<size_t>(j)];
        }
      }
    }
    MRS_CHECK(chosen >= 0)
        << "no allowable site for op" << op.op_id
        << " — degree should have been capped at P";
    MRS_RETURN_IF_ERROR(schedule.Place(op, clone.clone_idx, chosen));
    if (indexed) {
      std::vector<int>& ex = used_sorted[clone.op_index];
      ex.insert(std::upper_bound(ex.begin(), ex.end(), chosen), chosen);
    } else {
      used[clone.op_index][static_cast<size_t>(chosen)] = 1;
    }
    if (options.base_load != nullptr) {
      combined[static_cast<size_t>(chosen)] +=
          op.clones[static_cast<size_t>(clone.clone_idx)];
      load_length[static_cast<size_t>(chosen)] =
          combined[static_cast<size_t>(chosen)].Length();
    } else {
      load_length[static_cast<size_t>(chosen)] =
          schedule.SiteLoadLength(chosen);
    }
    if (indexed) index.Update(chosen, load_length[static_cast<size_t>(chosen)]);
  }
  return schedule;
}

}  // namespace mrs
