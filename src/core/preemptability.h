#ifndef MRS_CORE_PREEMPTABILITY_H_
#define MRS_CORE_PREEMPTABILITY_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "core/operator_schedule.h"
#include "core/schedule.h"
#include "core/tree_schedule.h"

namespace mrs {

/// Degrees of resource preemptability (paper §8: "disks do not time share
/// as gracefully as processors or network interfaces; slicing a disk
/// among many tasks can reduce the disk's effective bandwidth").
///
/// Assumption A2 (zero time-sharing overhead) is relaxed per resource:
/// when n clones with nonzero demand on resource i share a site, the
/// effective work on that resource inflates by the factor
///
///   1 + delta[i] * (n - 1)
///
/// delta[i] = 0 recovers the paper's perfectly preemptable resource; a
/// disk with delta ~ 0.05-0.2 models seek/rotational interference from
/// interleaved request streams.
struct PreemptabilityPenalty {
  /// Per-dimension penalty slopes; missing entries default to 0.
  std::vector<double> delta;

  double DeltaFor(size_t dim) const {
    return dim < delta.size() ? delta[dim] : 0.0;
  }

  /// A d-dimensional penalty with a single non-zero slope (typically the
  /// disk dimension).
  static PreemptabilityPenalty ForDim(size_t dims, size_t dim, double value);

  std::string ToString() const;
};

/// Site time under the relaxed model: eq. (2) with each resource's load
/// scaled by its sharing inflation. `sharers[i]` counts the clones at the
/// site with nonzero work on dimension i (computed internally).
double PenalizedSiteTime(const Schedule& schedule, int site,
                         const PreemptabilityPenalty& penalty);

/// Max over sites of PenalizedSiteTime — the schedule's response time when
/// executed on imperfectly preemptable resources.
double PenalizedMakespan(const Schedule& schedule,
                         const PreemptabilityPenalty& penalty);

/// Response time of a phased schedule under the penalty.
double PenalizedResponseTime(const TreeScheduleResult& result,
                             const PreemptabilityPenalty& penalty);

/// Penalty-aware variant of OPERATORSCHEDULE: the list rule is unchanged
/// but the site choice minimizes the penalized site load *after*
/// hypothetically adding the clone, so the scheduler avoids stacking many
/// disk-hungry clones on one disk even when the raw vector sum looks
/// balanced. (A lookahead metric rather than the paper's current-load
/// metric: with delta = 0 the two rules pick from the same candidate sets
/// but may break near-ties differently.)
Result<Schedule> PenaltyAwareOperatorSchedule(
    const std::vector<ParallelizedOp>& ops, int num_sites, int dims,
    const PreemptabilityPenalty& penalty,
    const OperatorScheduleOptions& options = {});

}  // namespace mrs

#endif  // MRS_CORE_PREEMPTABILITY_H_
