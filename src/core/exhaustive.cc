#include "core/exhaustive.h"

#include <algorithm>
#include <limits>

#include "common/logging.h"
#include "common/str_util.h"
#include "common/thread_pool.h"
#include "core/operator_schedule.h"
#include "exec/trace.h"

namespace mrs {

namespace {

struct Clone {
  size_t op_index;
  int op_id;
  WorkVector work;
  double t_seq;
};

class Search {
 public:
  Search(std::vector<Clone> clones, int num_sites, int dims, double t_par_max,
         std::vector<WorkVector> initial_load, uint64_t max_nodes,
         double initial_best)
      : clones_(std::move(clones)),
        num_sites_(num_sites),
        dims_(dims),
        t_par_max_(t_par_max),
        load_(std::move(initial_load)),
        max_nodes_(max_nodes),
        best_(initial_best) {
    // Suffix totals for the packing lower bound.
    suffix_total_.assign(clones_.size() + 1,
                         WorkVector(static_cast<size_t>(dims_)));
    for (size_t i = clones_.size(); i > 0; --i) {
      suffix_total_[i - 1] = suffix_total_[i] + clones_[i - 1].work;
    }
    op_used_.assign(clones_.size(),
                    std::vector<char>(static_cast<size_t>(num_sites_), 0));
    // Sites pre-loaded by rooted operators are not interchangeable with
    // truly empty sites; exclude them from the empty-site symmetry class.
    for (int j = 0; j < num_sites_; ++j) {
      if (load_[static_cast<size_t>(j)].Length() > 0.0) {
        site_count_[static_cast<size_t>(j)] = 1;
      }
    }
  }

  ExhaustiveResult Run() {
    Dfs(0);
    ExhaustiveResult result;
    result.makespan = best_;
    result.proven_optimal = nodes_ <= max_nodes_;
    result.nodes_explored = nodes_;
    return result;
  }

  /// Marks `site` as unavailable for all clones of the operator at
  /// `op_index` (used for rooted pre-placements).
  void ForbidSiteForOp(size_t op_index, int site) {
    for (size_t i = 0; i < clones_.size(); ++i) {
      if (clones_[i].op_index == op_index) {
        op_used_[i][static_cast<size_t>(site)] = 1;
      }
    }
  }

 private:
  double CurrentMakespanFloor() const {
    double m = t_par_max_;
    for (const auto& l : load_) m = std::max(m, l.Length());
    return m;
  }

  void Dfs(size_t next) {
    if (nodes_ > max_nodes_) return;
    ++nodes_;
    // Lower bound: already-congested resource, slowest operator, and the
    // perfect-balance packing of everything still unplaced.
    WorkVector remaining_total = suffix_total_[next];
    for (const auto& l : load_) remaining_total += l;
    const double packing_lb =
        remaining_total.Length() / static_cast<double>(num_sites_);
    double lb = std::max(CurrentMakespanFloor(), packing_lb);
    if (lb >= best_) return;
    if (next == clones_.size()) {
      best_ = std::min(best_, CurrentMakespanFloor());
      return;
    }
    const Clone& clone = clones_[next];
    bool tried_empty = false;
    for (int j = 0; j < num_sites_; ++j) {
      if (op_used_[next][static_cast<size_t>(j)]) continue;
      const bool empty = site_count_[static_cast<size_t>(j)] == 0;
      // Symmetry breaking: all empty, clone-free sites are equivalent.
      if (empty) {
        if (tried_empty) continue;
        tried_empty = true;
      }
      // Apply.
      load_[static_cast<size_t>(j)] += clone.work;
      ++site_count_[static_cast<size_t>(j)];
      MarkOp(next, j, 1);
      Dfs(next + 1);
      // Undo.
      MarkOp(next, j, 0);
      --site_count_[static_cast<size_t>(j)];
      load_[static_cast<size_t>(j)] -= clone.work;
      if (nodes_ > max_nodes_) return;
    }
  }

  void MarkOp(size_t clone_index, int site, char value) {
    const size_t op = clones_[clone_index].op_index;
    for (size_t i = clone_index; i < clones_.size(); ++i) {
      if (clones_[i].op_index == op) {
        op_used_[i][static_cast<size_t>(site)] = value;
      }
    }
  }

  std::vector<Clone> clones_;
  int num_sites_;
  int dims_;
  double t_par_max_;
  std::vector<WorkVector> load_;
  std::vector<int> site_count_ = std::vector<int>(
      static_cast<size_t>(num_sites_), 0);
  std::vector<std::vector<char>> op_used_;
  std::vector<WorkVector> suffix_total_;
  uint64_t max_nodes_;
  uint64_t nodes_ = 0;
  double best_;
};

}  // namespace

Result<ExhaustiveResult> ExhaustiveOptimalMakespan(
    const std::vector<ParallelizedOp>& ops, int num_sites, int dims,
    const ExhaustiveOptions& options) {
  if (num_sites < 1) {
    return Status::InvalidArgument("num_sites must be >= 1");
  }
  SpanTimer span(options.trace, "exhaustive_search");
  // Seed the incumbent with the list schedule: the search then only has to
  // prove or improve it.
  auto seed = OperatorSchedule(ops, num_sites, dims);
  if (!seed.ok()) return seed.status();
  const double incumbent = seed->Makespan() + 1e-9;

  std::vector<WorkVector> load(static_cast<size_t>(num_sites),
                               WorkVector(static_cast<size_t>(dims)));
  double t_par_max = 0.0;
  std::vector<Clone> clones;
  std::vector<std::pair<size_t, int>> rooted_sites;  // (op index, site)
  for (size_t i = 0; i < ops.size(); ++i) {
    const ParallelizedOp& op = ops[i];
    t_par_max = std::max(t_par_max, op.t_par);
    if (op.rooted) {
      for (int k = 0; k < op.degree; ++k) {
        const int site = op.home[static_cast<size_t>(k)];
        if (site < 0 || site >= num_sites) {
          return Status::OutOfRange(
              StrFormat("rooted site %d out of range", site));
        }
        load[static_cast<size_t>(site)] +=
            op.clones[static_cast<size_t>(k)];
        rooted_sites.emplace_back(i, site);
      }
    } else {
      for (int k = 0; k < op.degree; ++k) {
        clones.push_back({i, op.op_id, op.clones[static_cast<size_t>(k)],
                          op.t_seq[static_cast<size_t>(k)]});
      }
    }
  }
  // Largest-first ordering tightens pruning dramatically.
  std::stable_sort(clones.begin(), clones.end(),
                   [](const Clone& a, const Clone& b) {
                     return a.work.Length() > b.work.Length();
                   });
  const size_t num_floating = clones.size();

  ExhaustiveResult result;
  if (options.pool != nullptr && clones.size() >= 2 && num_sites >= 2) {
    // Fan the root of the branch-and-bound tree across the pool: one
    // independent sub-search per candidate site of the first clone,
    // replicating the sequential root loop (including its empty-site
    // symmetry breaking). Constraint A at the root is enforced by
    // pre-forbidding the branch site for the clone's siblings.
    std::vector<char> forbidden(static_cast<size_t>(num_sites), 0);
    for (const auto& [op_index, site] : rooted_sites) {
      if (op_index == clones.front().op_index) {
        forbidden[static_cast<size_t>(site)] = 1;
      }
    }
    std::vector<int> branch_sites;
    bool tried_empty = false;
    for (int j = 0; j < num_sites; ++j) {
      if (forbidden[static_cast<size_t>(j)]) continue;
      const bool empty = load[static_cast<size_t>(j)].Length() == 0.0;
      if (empty) {
        if (tried_empty) continue;
        tried_empty = true;
      }
      branch_sites.push_back(j);
    }
    const uint64_t branch_budget = std::max<uint64_t>(
        options.max_nodes / std::max<size_t>(branch_sites.size(), 1), 1);
    const Clone first = clones.front();
    const std::vector<Clone> rest(clones.begin() + 1, clones.end());
    std::vector<ExhaustiveResult> branch_results(branch_sites.size());
    for (size_t b = 0; b < branch_sites.size(); ++b) {
      options.pool->Submit([&, b] {
        const int site = branch_sites[b];
        std::vector<WorkVector> branch_load = load;
        branch_load[static_cast<size_t>(site)] += first.work;
        Search branch(rest, num_sites, dims, t_par_max,
                      std::move(branch_load), branch_budget, incumbent);
        for (const auto& [op_index, rooted_site] : rooted_sites) {
          branch.ForbidSiteForOp(op_index, rooted_site);
        }
        branch.ForbidSiteForOp(first.op_index, site);
        branch_results[b] = branch.Run();
      });
    }
    options.pool->WaitAll();
    result.makespan = incumbent;
    result.proven_optimal = true;
    for (const ExhaustiveResult& branch : branch_results) {
      result.makespan = std::min(result.makespan, branch.makespan);
      result.proven_optimal = result.proven_optimal && branch.proven_optimal;
      result.nodes_explored += branch.nodes_explored;
    }
  } else {
    Search search(std::move(clones), num_sites, dims, t_par_max,
                  std::move(load), options.max_nodes, incumbent);
    for (const auto& [op_index, site] : rooted_sites) {
      search.ForbidSiteForOp(op_index, site);
    }
    result = search.Run();
  }
  // The incumbent seed is a valid schedule; report it if nothing better.
  result.makespan = std::min(result.makespan, seed->Makespan());
  if (span.active()) {
    span.AttrInt("floating_clones", static_cast<int64_t>(num_floating));
    span.AttrInt("rooted_clones", static_cast<int64_t>(rooted_sites.size()));
    span.AttrDouble("incumbent_ms", seed->Makespan());
    span.AttrDouble("makespan_ms", result.makespan);
    span.AttrInt("nodes_explored",
                 static_cast<int64_t>(result.nodes_explored));
    span.Attr("proven_optimal", result.proven_optimal ? "true" : "false");
  }
  return result;
}

}  // namespace mrs
