#ifndef MRS_CORE_TREE_SCHEDULE_H_
#define MRS_CORE_TREE_SCHEDULE_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "core/operator_schedule.h"
#include "core/schedule.h"
#include "cost/cost_model.h"
#include "cost/parallelize.h"
#include "cost/parallelize_cache.h"
#include "exec/trace.h"
#include "plan/operator_tree.h"
#include "plan/task_tree.h"
#include "resource/machine.h"
#include "resource/usage_model.h"

namespace mrs {

/// How floating operators get their degree of partitioned parallelism.
enum class ParallelizationPolicy {
  /// Coarse-grain: N = min(N_max(op, f), optimal degree, P) — the paper's
  /// main algorithm (Prop. 4.1 plus the A4 guard of §6.1).
  kCoarseGrain,
  /// Malleable: the §7 greedy LB-minimizing selection, per phase.
  kMalleable,
};

/// How the degree of parallelism of a *build* operator is determined.
/// Because the probe inherits the build's home (constraint B), the build's
/// degree caps the probe's parallelism one phase later.
enum class BuildDegreePolicy {
  /// Size the build for the build alone (Prop. 4.1 on the build's own
  /// work vector). A tiny inner relation then strangles a huge probe —
  /// kept for the ablation bench.
  kBuildOnly,
  /// Size the build for the whole hash join: apply the CG_f condition and
  /// the A4 cap to the combined build+probe cost (default). This is the
  /// natural reading of [HCY94]-style models where the join is the unit
  /// of processor allocation.
  kJoinAware,
};

struct TreeScheduleOptions {
  /// Granularity parameter f of the CG_f condition (ignored by kMalleable).
  double granularity = 0.7;
  ParallelizationPolicy policy = ParallelizationPolicy::kCoarseGrain;
  BuildDegreePolicy build_degree = BuildDegreePolicy::kJoinAware;
  /// List scheduling knobs forwarded to OperatorSchedule.
  OperatorScheduleOptions list_options;
  /// Optional memoized parallelization cache (not owned), typically shared
  /// across the queries of a batch. Must have been constructed for the same
  /// (CostParams, overlap epsilon, granularity, num_sites) this call uses,
  /// or TreeSchedule fails with InvalidArgument. Caching never changes the
  /// result: entries are pure functions of the operator signature.
  ParallelizeCache* cache = nullptr;
  /// Optional per-query trace sink (not owned). When set, TreeSchedule
  /// records one span per stage (parallelize and OPERATORSCHEDULE per
  /// phase, malleable selection, whole-call assembly) annotated with the
  /// chosen degrees vs. N_max(op, f), the binding eq. (3) term per phase,
  /// and parallelize-cache hits/misses per stage. Null = tracing disabled
  /// at the cost of one branch per instrumentation site.
  TraceSink* trace = nullptr;
};

/// One synchronized phase of a TREESCHEDULE execution.
struct PhaseSchedule {
  /// Task-tree phase index (0 executes first).
  int phase = -1;
  /// The parallelized operators scheduled in this phase.
  std::vector<ParallelizedOp> ops;
  Schedule schedule;
  /// Response time of the phase (eq. (3) over this phase's schedule).
  double makespan = 0.0;
};

/// A full schedule for a bushy plan: synchronized phases executed back to
/// back (phase k+1 starts when phase k completes).
struct TreeScheduleResult {
  std::vector<PhaseSchedule> phases;
  /// Sum of the phase makespans: the plan's response time.
  double response_time = 0.0;

  /// Placement (home) of an operator, searched across phases; empty if the
  /// operator is unknown.
  std::vector<int> HomeOf(int op_id) const;

  std::string ToString() const;
};

/// Incremental per-phase driver of TREESCHEDULE: parallelizes and
/// list-schedules one task-tree phase at a time, so a caller can
/// interleave the phases of a query with external events. TreeSchedule()
/// itself is a loop over NextPhase(); the online scheduler places phase
/// k+1 of a query only when phase k completes on the virtual clock and
/// passes the residual site load (remaining work of co-resident queries)
/// observed at that instant, turning OPERATORSCHEDULE into the
/// residual-capacity incremental variant of the multi-query follow-up.
///
/// Data placement constraints propagate across the planner's own phases
/// exactly as in TreeSchedule (a probe is rooted at the home of its
/// build). All referenced inputs must outlive the planner; the planner is
/// movable but not copyable.
class PhasePlanner {
 public:
  /// Validates the inputs (cost vector size, cost params, machine config,
  /// cache compatibility) exactly like TreeSchedule.
  static Result<PhasePlanner> Create(const OperatorTree& op_tree,
                                     const TaskTree& task_tree,
                                     const std::vector<OperatorCost>& costs,
                                     const CostParams& params,
                                     const MachineConfig& machine,
                                     const OverlapUsageModel& usage,
                                     const TreeScheduleOptions& options = {});

  PhasePlanner(PhasePlanner&&) = default;
  PhasePlanner& operator=(PhasePlanner&&) = default;
  PhasePlanner(const PhasePlanner&) = delete;
  PhasePlanner& operator=(const PhasePlanner&) = delete;

  int num_phases() const;
  /// Index of the phase the next NextPhase call schedules.
  int next_phase() const { return next_; }
  bool done() const { return next_ >= num_phases(); }

  /// Parallelizes and list-schedules the next phase. `base_load`, when
  /// non-null, is forwarded to OperatorSchedule as the residual site load
  /// of co-resident queries (see OperatorScheduleOptions::base_load); the
  /// returned PhaseSchedule::makespan is the *uncontended* eq. (3) value
  /// of the phase's own clones. Fails with FailedPrecondition once done().
  Result<PhaseSchedule> NextPhase(
      const std::vector<WorkVector>* base_load = nullptr);

  const MachineConfig& machine() const { return config_; }

 private:
  PhasePlanner(const OperatorTree& op_tree, const TaskTree& task_tree,
               const std::vector<OperatorCost>& costs,
               const CostParams& params, MachineConfig config,
               const OverlapUsageModel& usage,
               const TreeScheduleOptions& options);

  /// The cost an operator's degree of parallelism is derived from (see
  /// BuildDegreePolicy::kJoinAware).
  OperatorCost SizingCost(int oid) const;

  const OperatorTree* op_tree_;
  const TaskTree* task_tree_;
  const std::vector<OperatorCost>* costs_;
  CostParams params_;
  MachineConfig config_;
  OverlapUsageModel usage_;
  TreeScheduleOptions options_;
  /// The blocking dependent of each state-materializing operator (probe
  /// of a build, merge of a sort run, emit of an aggregate).
  std::unordered_map<int, int> dependent_of_;
  /// Homes of operators scheduled in earlier phases (constraint B).
  std::unordered_map<int, std::vector<int>> home_of_;
  int next_ = 0;
};

/// The paper's TREESCHEDULE algorithm (§5.4, Figure 4): split the query
/// task tree into synchronized phases (MinShelf) and schedule each phase's
/// operators with OPERATORSCHEDULE. Data placement constraints propagate
/// across phases: a probe is rooted at the home of its build, which always
/// executes in an earlier phase (the hash table must be probed where it
/// was built). All other operators are floating.
///
/// `costs` must be indexed by operator id (as produced by
/// CostModel::CostAll) and `params` must be the CostParams the costs were
/// derived with (alpha/beta are needed again for parallelization). Runs in
/// O(J P (J + log P)) overall (Prop. 5.2).
Result<TreeScheduleResult> TreeSchedule(const OperatorTree& op_tree,
                                        const TaskTree& task_tree,
                                        const std::vector<OperatorCost>& costs,
                                        const CostParams& params,
                                        const MachineConfig& machine,
                                        const OverlapUsageModel& usage,
                                        const TreeScheduleOptions& options = {});

}  // namespace mrs

#endif  // MRS_CORE_TREE_SCHEDULE_H_
