#ifndef MRS_CORE_TREE_SCHEDULE_H_
#define MRS_CORE_TREE_SCHEDULE_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "core/operator_schedule.h"
#include "core/schedule.h"
#include "cost/cost_model.h"
#include "cost/parallelize.h"
#include "cost/parallelize_cache.h"
#include "exec/trace.h"
#include "plan/operator_tree.h"
#include "plan/task_tree.h"
#include "resource/machine.h"
#include "resource/usage_model.h"

namespace mrs {

/// How floating operators get their degree of partitioned parallelism.
enum class ParallelizationPolicy {
  /// Coarse-grain: N = min(N_max(op, f), optimal degree, P) — the paper's
  /// main algorithm (Prop. 4.1 plus the A4 guard of §6.1).
  kCoarseGrain,
  /// Malleable: the §7 greedy LB-minimizing selection, per phase.
  kMalleable,
};

/// How the degree of parallelism of a *build* operator is determined.
/// Because the probe inherits the build's home (constraint B), the build's
/// degree caps the probe's parallelism one phase later.
enum class BuildDegreePolicy {
  /// Size the build for the build alone (Prop. 4.1 on the build's own
  /// work vector). A tiny inner relation then strangles a huge probe —
  /// kept for the ablation bench.
  kBuildOnly,
  /// Size the build for the whole hash join: apply the CG_f condition and
  /// the A4 cap to the combined build+probe cost (default). This is the
  /// natural reading of [HCY94]-style models where the join is the unit
  /// of processor allocation.
  kJoinAware,
};

struct TreeScheduleOptions {
  /// Granularity parameter f of the CG_f condition (ignored by kMalleable).
  double granularity = 0.7;
  ParallelizationPolicy policy = ParallelizationPolicy::kCoarseGrain;
  BuildDegreePolicy build_degree = BuildDegreePolicy::kJoinAware;
  /// List scheduling knobs forwarded to OperatorSchedule.
  OperatorScheduleOptions list_options;
  /// Optional memoized parallelization cache (not owned), typically shared
  /// across the queries of a batch. Must have been constructed for the same
  /// (CostParams, overlap epsilon, granularity, num_sites) this call uses,
  /// or TreeSchedule fails with InvalidArgument. Caching never changes the
  /// result: entries are pure functions of the operator signature.
  ParallelizeCache* cache = nullptr;
  /// Optional per-query trace sink (not owned). When set, TreeSchedule
  /// records one span per stage (parallelize and OPERATORSCHEDULE per
  /// phase, malleable selection, whole-call assembly) annotated with the
  /// chosen degrees vs. N_max(op, f), the binding eq. (3) term per phase,
  /// and parallelize-cache hits/misses per stage. Null = tracing disabled
  /// at the cost of one branch per instrumentation site.
  TraceSink* trace = nullptr;
};

/// One synchronized phase of a TREESCHEDULE execution.
struct PhaseSchedule {
  /// Task-tree phase index (0 executes first).
  int phase = -1;
  /// The parallelized operators scheduled in this phase.
  std::vector<ParallelizedOp> ops;
  Schedule schedule;
  /// Response time of the phase (eq. (3) over this phase's schedule).
  double makespan = 0.0;
};

/// A full schedule for a bushy plan: synchronized phases executed back to
/// back (phase k+1 starts when phase k completes).
struct TreeScheduleResult {
  std::vector<PhaseSchedule> phases;
  /// Sum of the phase makespans: the plan's response time.
  double response_time = 0.0;

  /// Placement (home) of an operator, searched across phases; empty if the
  /// operator is unknown.
  std::vector<int> HomeOf(int op_id) const;

  std::string ToString() const;
};

/// The paper's TREESCHEDULE algorithm (§5.4, Figure 4): split the query
/// task tree into synchronized phases (MinShelf) and schedule each phase's
/// operators with OPERATORSCHEDULE. Data placement constraints propagate
/// across phases: a probe is rooted at the home of its build, which always
/// executes in an earlier phase (the hash table must be probed where it
/// was built). All other operators are floating.
///
/// `costs` must be indexed by operator id (as produced by
/// CostModel::CostAll) and `params` must be the CostParams the costs were
/// derived with (alpha/beta are needed again for parallelization). Runs in
/// O(J P (J + log P)) overall (Prop. 5.2).
Result<TreeScheduleResult> TreeSchedule(const OperatorTree& op_tree,
                                        const TaskTree& task_tree,
                                        const std::vector<OperatorCost>& costs,
                                        const CostParams& params,
                                        const MachineConfig& machine,
                                        const OverlapUsageModel& usage,
                                        const TreeScheduleOptions& options = {});

}  // namespace mrs

#endif  // MRS_CORE_TREE_SCHEDULE_H_
