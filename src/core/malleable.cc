#include "core/malleable.h"

#include <algorithm>

#include "common/logging.h"
#include "common/str_util.h"
#include "resource/machine.h"

namespace mrs {

Result<MalleableSelection> SelectMalleableParallelization(
    const std::vector<OperatorCost>& floating,
    const std::vector<ParallelizedOp>& fixed, const CostParams& params,
    const OverlapUsageModel& usage, int num_sites,
    MalleableObjective objective) {
  if (num_sites < 1) {
    return Status::InvalidArgument("num_sites must be >= 1");
  }
  const size_t m = floating.size();
  MalleableSelection out;
  out.degrees.assign(m, 1);
  if (m == 0 && fixed.empty()) {
    out.lower_bound = 0.0;
    out.candidates = 0;
    return out;
  }

  const size_t dims = !floating.empty()
                          ? floating.front().processing.dim()
                          : fixed.front().clones.front().dim();

  // Contributions that never change: rooted operators.
  WorkVector fixed_sum(dims);
  double fixed_t_par = 0.0;
  for (const auto& op : fixed) {
    fixed_sum += op.TotalWork();
    fixed_t_par = std::max(fixed_t_par, op.t_par);
  }

  // Running state for the current candidate N^k.
  std::vector<int> degrees(m, 1);
  std::vector<double> t_par(m, 0.0);
  WorkVector sum = fixed_sum;
  auto total_work = [&](size_t i, int n) {
    // W_op(n): processing + beta*D on the net dimension + startup alpha*n
    // split between coordinator CPU and net. Componentwise non-decreasing
    // in n (only the startup terms depend on it).
    WorkVector w = floating[i].processing;
    w[kNetDim] += params.TransferMs(floating[i].data_bytes);
    const double startup =
        params.startup_ms_per_site * static_cast<double>(n);
    w[kCpuDim] += startup / 2.0;
    w[kNetDim] += startup / 2.0;
    return w;
  };
  for (size_t i = 0; i < m; ++i) {
    if (floating[i].processing.dim() != dims) {
      return Status::InvalidArgument("inconsistent cost dimensionalities");
    }
    t_par[i] = ParallelTime(floating[i], 1, params, usage);
    sum += total_work(i, 1);
  }

  double best_lb = 0.0;
  double best_score = 0.0;
  bool have_best = false;
  out.candidates = 0;

  while (true) {
    ++out.candidates;
    // h(N): slowest operator overall; the increment target is the slowest
    // *floating* operator (rooted operators cannot change degree — with
    // the pure §7 problem, R = empty, the two coincide).
    double h_floating = 0.0;
    size_t slowest = m;
    for (size_t i = 0; i < m; ++i) {
      if (t_par[i] > h_floating) {
        h_floating = t_par[i];
        slowest = i;
      }
    }
    const double h = std::max(fixed_t_par, h_floating);
    const double packing = sum.Length() / static_cast<double>(num_sites);
    const double lb = std::max(packing, h);
    const double score =
        objective == MalleableObjective::kLowerBound ? lb : h + packing;
    // Prefer the most parallel candidate among score ties: when a fixed
    // operator pins the score, extra parallelism is free and shortens the
    // floating operators' own times.
    if (!have_best || score <= best_score + 1e-9) {
      best_score = have_best ? std::min(best_score, score) : score;
      best_lb = lb;  // LB of the *chosen* candidate
      out.degrees = degrees;
      have_best = true;
    }
    // Advance: give one more site to the slowest floating operator.
    if (slowest == m) break;                   // nothing floating to grow
    if (degrees[slowest] >= num_sites) break;  // no more sites to allot
    const int n_old = degrees[slowest];
    const int n_new = n_old + 1;
    sum -= total_work(slowest, n_old);
    degrees[slowest] = n_new;
    sum += total_work(slowest, n_new);
    t_par[slowest] = ParallelTime(floating[slowest], n_new, params, usage);
  }

  out.lower_bound = best_lb;
  return out;
}

Result<Schedule> MalleableSchedule(const std::vector<OperatorCost>& floating,
                                   const std::vector<ParallelizedOp>& fixed,
                                   const CostParams& params,
                                   const OverlapUsageModel& usage,
                                   int num_sites, int dims,
                                   const OperatorScheduleOptions& options,
                                   MalleableObjective objective) {
  auto selection = SelectMalleableParallelization(floating, fixed, params,
                                                  usage, num_sites, objective);
  if (!selection.ok()) return selection.status();

  std::vector<ParallelizedOp> ops = fixed;
  ops.reserve(fixed.size() + floating.size());
  for (size_t i = 0; i < floating.size(); ++i) {
    auto op = ParallelizeAtDegree(floating[i], params, usage,
                                  selection->degrees[i], num_sites);
    if (!op.ok()) return op.status();
    ops.push_back(std::move(op).value());
  }
  return OperatorSchedule(ops, num_sites, dims, options);
}

}  // namespace mrs
