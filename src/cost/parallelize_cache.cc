#include "cost/parallelize_cache.h"

#include <cstring>
#include <utility>

namespace mrs {

namespace {

/// Hashes the bit pattern of a double (so the key comparison and the hash
/// agree on exact equality; note -0.0 and 0.0 hash differently, which only
/// costs a spurious miss, never a wrong hit — operator== on the component
/// vectors is the authority).
uint64_t HashDouble(double value, uint64_t seed) {
  uint64_t bits;
  static_assert(sizeof(bits) == sizeof(value));
  std::memcpy(&bits, &value, sizeof(bits));
  uint64_t x = seed ^ (bits + 0x9e3779b97f4a7c15ULL + (seed << 6) +
                       (seed >> 2));
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  return x;
}

bool SameParams(const CostParams& a, const CostParams& b) {
  return a.cpu_mips == b.cpu_mips &&
         a.disk_ms_per_page == b.disk_ms_per_page &&
         a.startup_ms_per_site == b.startup_ms_per_site &&
         a.net_ms_per_byte == b.net_ms_per_byte &&
         a.tuple_bytes == b.tuple_bytes &&
         a.tuples_per_page == b.tuples_per_page &&
         a.instr_read_page == b.instr_read_page &&
         a.instr_write_page == b.instr_write_page &&
         a.instr_extract_tuple == b.instr_extract_tuple &&
         a.instr_hash_tuple == b.instr_hash_tuple &&
         a.instr_probe_hash == b.instr_probe_hash &&
         a.instr_sort_tuple == b.instr_sort_tuple &&
         a.instr_merge_tuple == b.instr_merge_tuple;
}

}  // namespace

size_t ParallelizeCache::KeyHash::operator()(const Key& key) const {
  uint64_t h = 0x51ed27f4a7c15ULL ^ static_cast<uint64_t>(key.degree);
  h = HashDouble(key.data_bytes, h);
  for (double component : key.processing) h = HashDouble(component, h);
  return static_cast<size_t>(h);
}

ParallelizeCache::ParallelizeCache(const CostParams& params,
                                   double overlap_eps, double granularity,
                                   int num_sites, MetricsRegistry* registry)
    : params_(params),
      usage_(overlap_eps),
      granularity_(granularity),
      num_sites_(num_sites) {
  MetricsRegistry& reg =
      registry != nullptr ? *registry : MetricsRegistry::Global();
  hits_callback_ = reg.RegisterCounterCallback(
      "parallelize_cache.hits", [this] { return counter_.hits(); });
  misses_callback_ = reg.RegisterCounterCallback(
      "parallelize_cache.misses", [this] { return counter_.misses(); });
}

ParallelizeCache::Key ParallelizeCache::MakeKey(const OperatorCost& cost,
                                                int degree) {
  Key key;
  key.processing = cost.processing.components();
  key.data_bytes = cost.data_bytes;
  key.degree = degree;
  return key;
}

ParallelizeCache::Shard& ParallelizeCache::ShardFor(const Key& key) {
  return shards_[KeyHash{}(key) % kNumShards];
}

template <typename ComputeFn>
Result<ParallelizedOp> ParallelizeCache::Lookup(const OperatorCost& cost,
                                                int degree,
                                                ComputeFn compute) {
  Key key = MakeKey(cost, degree);
  Shard& shard = ShardFor(key);
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.entries.find(key);
    if (it != shard.entries.end()) {
      counter_.RecordHit();
      ParallelizedOp op = it->second;
      op.op_id = cost.op_id;
      op.kind = cost.kind;
      return op;
    }
  }
  counter_.RecordMiss();
  // Compute outside the lock; a concurrent double-compute of the same key
  // yields bit-identical values (the computation is a pure function of the
  // key under this cache's fixed context), so first-insert-wins is safe.
  Result<ParallelizedOp> computed = compute();
  if (!computed.ok()) return computed.status();  // errors are not cached
  ParallelizedOp canonical = computed.value();
  canonical.op_id = -1;
  canonical.kind = OperatorKind::kScan;
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    shard.entries.emplace(std::move(key), std::move(canonical));
  }
  ParallelizedOp op = std::move(computed).value();
  op.op_id = cost.op_id;
  op.kind = cost.kind;
  return op;
}

Result<ParallelizedOp> ParallelizeCache::Floating(const OperatorCost& cost) {
  return Lookup(cost, kFloatingDegree, [&] {
    return ParallelizeFloating(cost, params_, usage_, granularity_,
                               num_sites_);
  });
}

Result<ParallelizedOp> ParallelizeCache::AtDegree(const OperatorCost& cost,
                                                  int degree) {
  if (degree < 1 || degree > num_sites_) {
    // Out-of-range degrees bypass the cache entirely: degree 0 is the
    // floating sentinel in the key space and must not alias a stored
    // floating entry.
    return ParallelizeAtDegree(cost, params_, usage_, degree, num_sites_);
  }
  return Lookup(cost, degree, [&] {
    return ParallelizeAtDegree(cost, params_, usage_, degree, num_sites_);
  });
}

Result<ParallelizedOp> ParallelizeCache::Rooted(const OperatorCost& cost,
                                                std::vector<int> home) {
  // Validate the home exactly as ParallelizeRooted would, then serve the
  // degree-dependent clone split from the cache.
  MRS_RETURN_IF_ERROR(ValidateHome(home, num_sites_));
  auto split = AtDegree(cost, static_cast<int>(home.size()));
  if (!split.ok()) return split.status();
  ParallelizedOp op = std::move(split).value();
  op.rooted = true;
  op.home = std::move(home);
  return op;
}

bool ParallelizeCache::CompatibleWith(const CostParams& params,
                                      double overlap_eps, double granularity,
                                      int num_sites) const {
  return SameParams(params_, params) && usage_.epsilon() == overlap_eps &&
         granularity_ == granularity && num_sites_ == num_sites;
}

size_t ParallelizeCache::NumEntries() const {
  size_t total = 0;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    total += shard.entries.size();
  }
  return total;
}

}  // namespace mrs
