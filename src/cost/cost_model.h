#ifndef MRS_COST_COST_MODEL_H_
#define MRS_COST_COST_MODEL_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "cost/cost_params.h"
#include "plan/operator_tree.h"
#include "resource/work_vector.h"

namespace mrs {

/// The multi-dimensional cost of one physical operator before
/// parallelization:
///  * `processing` is the zero-communication work vector (CPU and disk
///    components filled, network component 0) — its total is the paper's
///    processing area W_p(op);
///  * `data_bytes` is D, the bytes this operator ships over the
///    interconnect (its repartitioned input streams plus its output stream,
///    assumption A5), from which the communication area
///    W_c(op, N) = alpha*N + beta*D derives.
struct OperatorCost {
  int op_id = -1;
  OperatorKind kind = OperatorKind::kScan;
  WorkVector processing;
  double data_bytes = 0.0;

  /// Processing area W_p(op) = sum of the processing vector's components.
  double ProcessingArea() const { return processing.Total(); }

  std::string ToString() const;
};

/// Modes of the cost model beyond the Table-2 analytic defaults.
struct CostModelOptions {
  /// Fitted mode: multiply dimension d of every processing vector by
  /// scale[d] — the per-dimension unit costs a Calibrator least-squares
  /// fit against measured execution (exec/calibrate.h), turning model
  /// milliseconds into measured-meter units. Dimensions beyond
  /// scale.size() keep their analytic value.
  bool fitted = false;
  std::vector<double> scale;
};

/// Estimates operator work vectors in the style of Hsiao et al. [HCY94],
/// using the instruction counts of Table 2 (see CostParams):
///
///  scan:  CPU  = read_page * pages + extract * tuples
///         disk = disk_ms_per_page * pages
///  build: CPU  = (extract + hash) * inner_tuples
///  probe: CPU  = (extract + probe) * outer_tuples
///
/// Every operator that consumes a repartitioned input stream pays the
/// extract cost per input tuple (unpacking tuples from network pages);
/// join result tuples are therefore charged to their consumer.
///
/// Data volume D per assumption A5 (pipelined outputs are always
/// repartitioned): every pipelined data edge is charged to both endpoints
/// (the producer ships its output, the consumer receives its input). Scans
/// read their fragment from local disk, so their inputs contribute nothing;
/// builds keep the hash table site-local, so they ship nothing downstream.
class CostModel {
 public:
  /// `dims` must be >= 2 + num_disks: the model fills the CPU/disk/net
  /// layout of resource/machine.h; with num_disks > 1 the disk time of
  /// every operator is striped evenly over dimensions {1, 3, 4, ...}
  /// (data declustered across the site's disks — the paper's §4.1
  /// multi-disk example). Remaining dimensions stay zero.
  CostModel(CostParams params, int dims, int num_disks = 1,
            CostModelOptions options = {});

  /// Costs a single operator.
  Result<OperatorCost> Cost(const PhysicalOp& op) const;

  /// Costs every operator of `tree`; index = operator id.
  Result<std::vector<OperatorCost>> CostAll(const OperatorTree& tree) const;

  const CostParams& params() const { return params_; }
  int dims() const { return dims_; }
  int num_disks() const { return num_disks_; }
  const CostModelOptions& options() const { return options_; }

 private:
  /// Spreads `disk_ms` of disk time evenly over the disk dimensions.
  void AddDiskWork(WorkVector* processing, double disk_ms) const;

  CostParams params_;
  int dims_;
  int num_disks_;
  CostModelOptions options_;
};

}  // namespace mrs

#endif  // MRS_COST_COST_MODEL_H_
