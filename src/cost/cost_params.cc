#include "cost/cost_params.h"

#include "common/str_util.h"

namespace mrs {

Status CostParams::Validate() const {
  if (cpu_mips <= 0) return Status::InvalidArgument("cpu_mips must be > 0");
  if (disk_ms_per_page < 0) {
    return Status::InvalidArgument("disk_ms_per_page must be >= 0");
  }
  if (startup_ms_per_site <= 0) {
    return Status::InvalidArgument("startup_ms_per_site must be > 0");
  }
  if (net_ms_per_byte < 0) {
    return Status::InvalidArgument("net_ms_per_byte must be >= 0");
  }
  if (tuple_bytes <= 0 || tuples_per_page <= 0) {
    return Status::InvalidArgument("tuple layout must be positive");
  }
  if (instr_read_page < 0 || instr_write_page < 0 ||
      instr_extract_tuple < 0 || instr_hash_tuple < 0 ||
      instr_probe_hash < 0 || instr_sort_tuple < 0 ||
      instr_merge_tuple < 0) {
    return Status::InvalidArgument("instruction counts must be >= 0");
  }
  return Status::OK();
}

std::string CostParams::ToString() const {
  return StrFormat(
      "CostParams (paper Table 2):\n"
      "  CPU speed                  %.2f MIPS\n"
      "  Disk service time          %.1f ms/page\n"
      "  Startup cost alpha         %.1f ms/site\n"
      "  Network transfer beta      %.2f us/byte\n"
      "  Tuple size                 %d bytes\n"
      "  Page size                  %d tuples\n"
      "  Read/Write page            %.0f/%.0f instr\n"
      "  Extract/Hash/Probe tuple   %.0f/%.0f/%.0f instr",
      cpu_mips, disk_ms_per_page, startup_ms_per_site,
      net_ms_per_byte * 1000.0, tuple_bytes, tuples_per_page,
      instr_read_page, instr_write_page, instr_extract_tuple,
      instr_hash_tuple, instr_probe_hash);
}

}  // namespace mrs
