#ifndef MRS_COST_COST_PARAMS_H_
#define MRS_COST_COST_PARAMS_H_

#include <string>

#include "common/status.h"

namespace mrs {

/// System and catalog cost parameters. Defaults reproduce the paper's
/// Table 2 exactly:
///
///   CPU speed                     1 MIPS
///   Effective disk service time   20 ms/page
///   Startup cost per site (alpha) 15 ms
///   Network transfer (beta)       0.6 us/byte
///   Tuple size                    128 bytes
///   Page size                     40 tuples
///   Read/Write page               5000 instr
///   Extract tuple                 300 instr
///   Hash tuple                    100 instr
///   Probe hash table              200 instr
///
/// All derived costs are expressed in milliseconds of resource busy time.
struct CostParams {
  // Hardware.
  double cpu_mips = 1.0;              ///< million instructions per second
  double disk_ms_per_page = 20.0;     ///< effective disk service time
  double startup_ms_per_site = 15.0;  ///< alpha: parallel-execution startup
  double net_ms_per_byte = 0.0006;    ///< beta: 0.6 us per byte

  // Catalog geometry.
  int tuple_bytes = 128;
  int tuples_per_page = 40;

  // CPU cost constants (instructions). The first five are Table 2; the
  // sort/merge constants extend the model to the blocking unary operators
  // (external sort run generation and merge) in the same style.
  double instr_read_page = 5000.0;
  double instr_write_page = 5000.0;
  double instr_extract_tuple = 300.0;
  double instr_hash_tuple = 100.0;
  double instr_probe_hash = 200.0;
  double instr_sort_tuple = 200.0;   ///< per-tuple run-generation cost
  double instr_merge_tuple = 100.0;  ///< per-tuple multiway-merge cost

  /// Converts an instruction count to CPU milliseconds.
  double InstrToMs(double instructions) const {
    return instructions / (cpu_mips * 1000.0);
  }

  /// beta * bytes, in milliseconds of network-interface busy time.
  double TransferMs(double bytes) const { return net_ms_per_byte * bytes; }

  /// Communication area W_c(op, N) = alpha*N + beta*D (paper §4.2).
  double CommunicationArea(int degree, double data_bytes) const {
    return startup_ms_per_site * degree + TransferMs(data_bytes);
  }

  Status Validate() const;

  /// Table-2-style textual rendering used by the bench harness headers.
  std::string ToString() const;
};

}  // namespace mrs

#endif  // MRS_COST_COST_PARAMS_H_
