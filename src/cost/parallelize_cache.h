#ifndef MRS_COST_PARALLELIZE_CACHE_H_
#define MRS_COST_PARALLELIZE_CACHE_H_

#include <array>
#include <cstdint>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "common/metrics.h"
#include "common/result.h"
#include "cost/cost_model.h"
#include "cost/parallelize.h"
#include "resource/usage_model.h"

namespace mrs {

/// Memoized front-end to the parallelization routines of cost/parallelize.h
/// — the compile-time hot path of TREESCHEDULE. Parallelizing a floating
/// operator evaluates T_par(N) for every candidate degree (the OptimalDegree
/// scan), and a batch of queries over a shared catalog re-derives the exact
/// same clone splits over and over: two scans of equally sized relations,
/// the build sides of identically sized joins, every probe re-rooted at an
/// equal home degree. This cache keys on the *operator signature* — the
/// processing work vector and shipped bytes, compared bit-exactly — times
/// the degree, so one computation serves every recurrence within and across
/// the queries of a batch.
///
/// A cache instance is bound to one (CostParams, overlap epsilon,
/// granularity f, num_sites) context at construction; entries are pure
/// functions of (signature, degree) under that context, which is what makes
/// concurrent use deterministic: a racing double-compute produces the same
/// bits, and whichever insert wins, every reader sees an identical value.
///
/// Thread-safe. Hit/miss accounting is recorded exactly once, into the
/// instance's HitMissCounter; the counter is additionally published into a
/// MetricsRegistry ("parallelize_cache.hits"/"parallelize_cache.misses",
/// summed across live caches) via read-through callbacks, so registry
/// snapshots and `counter()` can never disagree.
class ParallelizeCache {
 public:
  /// `registry` is where the hit/miss counters are published; nullptr
  /// means the process-global MetricsRegistry.
  ParallelizeCache(const CostParams& params, double overlap_eps,
                   double granularity, int num_sites,
                   MetricsRegistry* registry = nullptr);

  /// Memoized ParallelizeFloating(cost, params, usage, f, num_sites).
  Result<ParallelizedOp> Floating(const OperatorCost& cost);

  /// Memoized ParallelizeAtDegree(cost, params, usage, degree, num_sites).
  Result<ParallelizedOp> AtDegree(const OperatorCost& cost, int degree);

  /// Memoized ParallelizeRooted: the clone split is served from the
  /// degree cache; only the home vector is per-call.
  Result<ParallelizedOp> Rooted(const OperatorCost& cost,
                                std::vector<int> home);

  /// True iff this cache was built for exactly this scheduling context
  /// (bit-exact parameter comparison, same granularity/epsilon/sites).
  bool CompatibleWith(const CostParams& params, double overlap_eps,
                      double granularity, int num_sites) const;

  const CostParams& params() const { return params_; }
  double overlap_eps() const { return usage_.epsilon(); }
  double granularity() const { return granularity_; }
  int num_sites() const { return num_sites_; }

  const HitMissCounter& counter() const { return counter_; }
  HitMissCounter& counter() { return counter_; }

  /// Total number of memoized entries across both maps (test aid).
  size_t NumEntries() const;

 private:
  /// Degree kFloatingDegree marks the "degree chosen by the CG_f rule"
  /// entry; real degrees are >= 1.
  static constexpr int kFloatingDegree = 0;

  struct Key {
    std::vector<double> processing;
    double data_bytes = 0.0;
    int degree = kFloatingDegree;

    bool operator==(const Key& other) const {
      return degree == other.degree && data_bytes == other.data_bytes &&
             processing == other.processing;
    }
  };

  struct KeyHash {
    size_t operator()(const Key& key) const;
  };

  struct Shard {
    mutable std::mutex mu;
    std::unordered_map<Key, ParallelizedOp, KeyHash> entries;
  };

  static Key MakeKey(const OperatorCost& cost, int degree);
  Shard& ShardFor(const Key& key);

  /// Looks up `key`; on miss runs `compute` (outside the shard lock) and
  /// memoizes its value. `compute` must be a pure function of the key.
  template <typename ComputeFn>
  Result<ParallelizedOp> Lookup(const OperatorCost& cost, int degree,
                                ComputeFn compute);

  static constexpr size_t kNumShards = 16;

  CostParams params_;
  OverlapUsageModel usage_;
  double granularity_;
  int num_sites_;
  std::array<Shard, kNumShards> shards_;
  HitMissCounter counter_;
  // Read-through publication of counter_ into the metrics registry; must
  // be declared after counter_ (unregisters before counter_ dies).
  MetricsRegistry::CallbackHandle hits_callback_;
  MetricsRegistry::CallbackHandle misses_callback_;
};

}  // namespace mrs

#endif  // MRS_COST_PARALLELIZE_CACHE_H_
