#ifndef MRS_COST_CLONE_SET_H_
#define MRS_COST_CLONE_SET_H_

#include <cstddef>
#include <initializer_list>
#include <iterator>
#include <vector>

#include "resource/work_vector.h"

namespace mrs {

/// The work vectors of an operator's clones, stored in compressed form
/// when they are uniform.
///
/// Under assumption EA1 (no execution skew), SplitIntoClones produces N
/// near-identical vectors: every clone carries W/N of the operator's work
/// and the coordinator (clone 0) additionally carries the serial startup
/// alpha*N. Materializing those N vectors is the dominant allocation cost
/// of parallelization at large P, so the uniform case stores just
/// {coordinator, base, degree} — O(d) space and zero heap allocations for
/// d <= WorkVector::kInlineDims — while exposing the same indexed-read
/// API (operator[], size, iteration) as the expanded vector it replaces.
///
/// Mutation (the execution-skew path of workload/skew.cc, or hand-crafted
/// test instances) expands the set to N distinct vectors on first write
/// ("expand-on-write"); reads never expand.
class CloneSet {
 public:
  CloneSet() = default;

  /// An expanded set with explicitly distinct vectors.
  CloneSet(std::vector<WorkVector> clones) : distinct_(std::move(clones)) {}
  CloneSet(std::initializer_list<WorkVector> clones) : distinct_(clones) {}

  /// The compressed EA1 form: clone 0 is `coordinator`, clones 1..degree-1
  /// are `base`. Requires degree >= 1.
  static CloneSet Uniform(WorkVector coordinator, WorkVector base, int degree);

  size_t size() const {
    return uniform_degree_ > 0 ? static_cast<size_t>(uniform_degree_)
                               : distinct_.size();
  }
  bool empty() const { return size() == 0; }

  /// True while the set is stored in compressed uniform form.
  bool uniform() const { return uniform_degree_ > 0; }

  const WorkVector& operator[](size_t k) const {
    if (uniform_degree_ > 0) return k == 0 ? coordinator_ : base_;
    return distinct_[k];
  }
  const WorkVector& front() const { return (*this)[0]; }

  /// Mutable access to one clone vector; expands a uniform set first.
  WorkVector& Mutable(size_t k) {
    Materialize();
    return distinct_[k];
  }

  /// Appends a clone vector; expands a uniform set first.
  void push_back(WorkVector w) {
    Materialize();
    distinct_.push_back(std::move(w));
  }

  /// The distinct per-clone vectors, expanding a uniform set first. The
  /// returned reference stays valid until the next mutation.
  std::vector<WorkVector>& Materialized() {
    Materialize();
    return distinct_;
  }

  /// Expands the compressed form to size() distinct vectors (no-op when
  /// already expanded).
  void Materialize();

  /// Componentwise sum of the clone vectors, accumulated in index order
  /// (bit-identical to summing the expanded set).
  WorkVector Sum() const;

  /// Read-only forward iteration in clone-index order.
  class const_iterator {
   public:
    using iterator_category = std::forward_iterator_tag;
    using value_type = WorkVector;
    using difference_type = std::ptrdiff_t;
    using pointer = const WorkVector*;
    using reference = const WorkVector&;

    const_iterator(const CloneSet* set, size_t i) : set_(set), i_(i) {}
    reference operator*() const { return (*set_)[i_]; }
    pointer operator->() const { return &(*set_)[i_]; }
    const_iterator& operator++() {
      ++i_;
      return *this;
    }
    const_iterator operator++(int) {
      const_iterator prev = *this;
      ++i_;
      return prev;
    }
    bool operator==(const const_iterator& o) const { return i_ == o.i_; }
    bool operator!=(const const_iterator& o) const { return i_ != o.i_; }

   private:
    const CloneSet* set_;
    size_t i_;
  };

  const_iterator begin() const { return const_iterator(this, 0); }
  const_iterator end() const { return const_iterator(this, size()); }

  /// Value equality over the expanded view (a uniform set equals its
  /// materialized counterpart).
  bool operator==(const CloneSet& other) const;
  bool operator!=(const CloneSet& other) const { return !(*this == other); }

 private:
  /// > 0 iff compressed: clone 0 = coordinator_, clones 1.. = base_.
  int uniform_degree_ = 0;
  WorkVector coordinator_;
  WorkVector base_;
  std::vector<WorkVector> distinct_;
};

}  // namespace mrs

#endif  // MRS_COST_CLONE_SET_H_
