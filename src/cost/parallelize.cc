#include "cost/parallelize.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <unordered_set>

#include "common/logging.h"
#include "common/str_util.h"
#include "resource/machine.h"

namespace mrs {

WorkVector ParallelizedOp::TotalWork() const { return clones.Sum(); }

std::string ParallelizedOp::ToString() const {
  return StrFormat("par(op%d %s N=%d t_par=%.2fms%s)", op_id,
                   std::string(OperatorKindToString(kind)).c_str(), degree,
                   t_par, rooted ? " rooted" : "");
}

int MaxCoarseGrainDegree(double processing_area_ms, double data_bytes,
                         const CostParams& params, double f) {
  const double numer = f * processing_area_ms - params.TransferMs(data_bytes);
  if (params.startup_ms_per_site <= 0.0) {
    // alpha = 0: the startup term never binds, so the CG_f condition is
    // purely a communication budget — unbounded when it admits any
    // parallelism, 1 otherwise (the alpha -> 0+ limit).
    return numer > 0.0 ? std::numeric_limits<int>::max() : 1;
  }
  const double n = std::floor(numer / params.startup_ms_per_site);
  // Clamp before the int cast: a strongly negative numerator (beta*D >
  // f*W_p at scale) or a huge budget would otherwise cast out of range.
  if (n < 1.0) return 1;
  if (n >= static_cast<double>(std::numeric_limits<int>::max())) {
    return std::numeric_limits<int>::max();
  }
  return static_cast<int>(n);
}

CloneSet SplitIntoCloneSet(const OperatorCost& cost, int n,
                           const CostParams& params) {
  MRS_CHECK(n >= 1) << "degree must be >= 1";
  const double share = 1.0 / static_cast<double>(n);
  WorkVector base = cost.processing * share;
  MRS_CHECK(base.dim() > kNetDim) << "cost vectors must have a net dimension";
  base[kNetDim] += params.TransferMs(cost.data_bytes) * share;

  // EA1: the serial startup alpha*N is incurred at the coordinator (clone
  // 0), half on its CPU and half on its network interface.
  WorkVector coordinator = base;
  const double startup = params.startup_ms_per_site * static_cast<double>(n);
  coordinator[kCpuDim] += startup / 2.0;
  coordinator[kNetDim] += startup / 2.0;
  return CloneSet::Uniform(std::move(coordinator), std::move(base), n);
}

std::vector<WorkVector> SplitIntoClones(const OperatorCost& cost, int n,
                                        const CostParams& params) {
  CloneSet set = SplitIntoCloneSet(cost, n, params);
  return std::move(set.Materialized());
}

double ParallelTime(const OperatorCost& cost, int n, const CostParams& params,
                    const OverlapUsageModel& usage) {
  MRS_CHECK(n >= 1) << "degree must be >= 1";
  // The coordinator clone dominates every other clone componentwise, and
  // T_seq is monotone in each component, so only clone 0 matters. Build it
  // without materializing the other n-1 clones.
  const double share = 1.0 / static_cast<double>(n);
  WorkVector coord = cost.processing * share;
  coord[kNetDim] += params.TransferMs(cost.data_bytes) * share;
  const double startup = params.startup_ms_per_site * static_cast<double>(n);
  coord[kCpuDim] += startup / 2.0;
  coord[kNetDim] += startup / 2.0;
  return usage.SequentialTime(coord);
}

int OptimalDegree(const OperatorCost& cost, const CostParams& params,
                  const OverlapUsageModel& usage, int p_max) {
  MRS_CHECK(p_max >= 1) << "p_max must be >= 1";
  // T_par(N) is a maximum/sum of convex functions of N, hence unimodal;
  // stop at the first increase.
  int best = 1;
  double best_t = ParallelTime(cost, 1, params, usage);
  for (int n = 2; n <= p_max; ++n) {
    const double t = ParallelTime(cost, n, params, usage);
    if (t >= best_t) break;
    best = n;
    best_t = t;
  }
  return best;
}

namespace {

ParallelizedOp MakeParallelized(const OperatorCost& cost, int degree,
                                const CostParams& params,
                                const OverlapUsageModel& usage) {
  ParallelizedOp op;
  op.op_id = cost.op_id;
  op.kind = cost.kind;
  op.degree = degree;
  op.clones = SplitIntoCloneSet(cost, degree, params);
  // Uniform split: one SequentialTime evaluation covers clones 1..N-1
  // (same base vector, same time) instead of N near-identical passes.
  const double t_coord = usage.SequentialTime(op.clones[0]);
  const double t_base =
      degree > 1 ? usage.SequentialTime(op.clones[1]) : t_coord;
  op.t_seq.assign(static_cast<size_t>(degree), t_base);
  op.t_seq[0] = t_coord;
  op.t_par = std::max(t_coord, t_base);
  return op;
}

}  // namespace

Result<ParallelizedOp> ParallelizeFloating(const OperatorCost& cost,
                                           const CostParams& params,
                                           const OverlapUsageModel& usage,
                                           double f, int num_sites) {
  if (num_sites < 1) {
    return Status::InvalidArgument("num_sites must be >= 1");
  }
  if (f < 0) {
    return Status::InvalidArgument("granularity parameter f must be >= 0");
  }
  if (!cost.processing.IsNonNegative() || cost.data_bytes < 0) {
    return Status::InvalidArgument(
        StrFormat("op%d has negative cost components", cost.op_id));
  }
  const int n_max =
      MaxCoarseGrainDegree(cost.ProcessingArea(), cost.data_bytes, params, f);
  const int n_opt = OptimalDegree(cost, params, usage, num_sites);
  const int degree = std::min({n_max, n_opt, num_sites});
  return MakeParallelized(cost, degree, params, usage);
}

int RateMatchedDegree(const OperatorCost& cost, const CostParams& params,
                      const OverlapUsageModel& usage, double bottleneck_ms,
                      int base_degree) {
  MRS_CHECK(base_degree >= 1) << "base_degree must be >= 1";
  // Walk down instead of binary-searching: base_degree may exceed the
  // OptimalDegree of `cost` itself (kJoinAware sizes builds on the joint
  // build+probe cost), and beyond the optimum T_par is no longer
  // monotone, so "T_par(n) <= bottleneck" is not an upward-closed
  // predicate. The walk keeps every intermediate degree admissible.
  int n = base_degree;
  while (n > 1 &&
         ParallelTime(cost, n - 1, params, usage) <= bottleneck_ms) {
    --n;
  }
  return n;
}

Result<ParallelizedOp> ParallelizeAtDegree(const OperatorCost& cost,
                                           const CostParams& params,
                                           const OverlapUsageModel& usage,
                                           int degree, int num_sites) {
  if (degree < 1 || degree > num_sites) {
    return Status::InvalidArgument(
        StrFormat("degree %d outside [1, %d]", degree, num_sites));
  }
  if (!cost.processing.IsNonNegative() || cost.data_bytes < 0) {
    return Status::InvalidArgument(
        StrFormat("op%d has negative cost components", cost.op_id));
  }
  return MakeParallelized(cost, degree, params, usage);
}

Status ValidateHome(const std::vector<int>& home, int num_sites) {
  if (home.empty()) {
    return Status::InvalidArgument("rooted operator requires a non-empty home");
  }
  std::unordered_set<int> distinct;
  for (int s : home) {
    if (s < 0 || s >= num_sites) {
      return Status::OutOfRange(
          StrFormat("home site %d outside [0, %d)", s, num_sites));
    }
    if (!distinct.insert(s).second) {
      return Status::InvalidArgument(
          StrFormat("home lists site %d twice", s));
    }
  }
  return Status::OK();
}

Result<ParallelizedOp> ParallelizeRooted(const OperatorCost& cost,
                                         const CostParams& params,
                                         const OverlapUsageModel& usage,
                                         std::vector<int> home,
                                         int num_sites) {
  MRS_RETURN_IF_ERROR(ValidateHome(home, num_sites));
  auto op = ParallelizeAtDegree(cost, params, usage,
                                static_cast<int>(home.size()), num_sites);
  if (!op.ok()) return op.status();
  ParallelizedOp rooted = std::move(op).value();
  rooted.rooted = true;
  rooted.home = std::move(home);
  return rooted;
}

}  // namespace mrs
