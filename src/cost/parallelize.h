#ifndef MRS_COST_PARALLELIZE_H_
#define MRS_COST_PARALLELIZE_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "cost/clone_set.h"
#include "cost/cost_model.h"
#include "cost/cost_params.h"
#include "resource/usage_model.h"
#include "resource/work_vector.h"

namespace mrs {

/// An operator after its degree of partitioned parallelism has been fixed:
/// `clones[k]` is the work vector of the k-th operator clone *including*
/// communication costs, `t_seq[k]` its stand-alone execution time under the
/// usage model, and `t_par = max_k t_seq[k]` the operator's parallel
/// execution time when it runs without contention (paper eq. (1)).
///
/// Clone 0 is the coordinator: per assumption EA1 the (inherently serial)
/// startup cost alpha*N is charged to it, split evenly between its CPU and
/// network-interface components.
struct ParallelizedOp {
  int op_id = -1;
  OperatorKind kind = OperatorKind::kScan;
  int degree = 1;
  /// Uniform EA1 splits stay in compressed {coordinator, base, degree}
  /// form (no per-clone heap vectors); the skew path expands on write.
  CloneSet clones;
  std::vector<double> t_seq;
  double t_par = 0.0;

  /// True when data placement pins the clones to `home` (|home| == degree,
  /// clone k at site home[k]); false for floating operators.
  bool rooted = false;
  std::vector<int> home;

  /// Componentwise sum of the clone vectors: the operator's total work
  /// vector W_op (processing + communication).
  WorkVector TotalWork() const;

  std::string ToString() const;
};

/// Maximum degree of partitioned parallelism admitting a CG_f execution
/// (paper Prop. 4.1): max(floor((f*W_p - beta*D) / alpha), 1), clamped to
/// [1, INT_MAX] (callers cap at P). alpha = 0 makes startup never bind:
/// the degree is communication-unbounded (INT_MAX) whenever the
/// communication budget admits any parallelism (f*W_p - beta*D > 0) and 1
/// otherwise — the alpha -> 0+ limit of the formula, instead of the
/// floor(+-inf) int cast the division would produce.
int MaxCoarseGrainDegree(double processing_area_ms, double data_bytes,
                         const CostParams& params, double f);

/// Work vectors of the N clones of `cost` under EA1 (no execution skew),
/// in compressed uniform form: processing work and the beta*D transfer
/// work are split evenly; the coordinator (clone 0) additionally carries
/// alpha*N/2 on CPU and alpha*N/2 on the network interface. Requires
/// n >= 1. O(d) time and space regardless of n.
CloneSet SplitIntoCloneSet(const OperatorCost& cost, int n,
                           const CostParams& params);

/// Expanded-form convenience wrapper around SplitIntoCloneSet (tests and
/// diagnostics; the scheduling path keeps the compressed form).
std::vector<WorkVector> SplitIntoClones(const OperatorCost& cost, int n,
                                        const CostParams& params);

/// T_par(op, N): stand-alone parallel execution time at degree n — the
/// coordinator clone's sequential time (it dominates all other clones
/// componentwise). Requires n >= 1.
double ParallelTime(const OperatorCost& cost, int n, const CostParams& params,
                    const OverlapUsageModel& usage);

/// The response-time-optimal degree of parallelism in [1, p_max]: the
/// smallest minimizer of ParallelTime. Because per-clone work shrinks as
/// 1/N while coordinator startup grows as alpha*N, T_par is unimodal and
/// this is where assumption A4 (non-increasing execution times) stops
/// holding; the scheduler never exceeds it (paper §6.1).
int OptimalDegree(const OperatorCost& cost, const CostParams& params,
                  const OverlapUsageModel& usage, int p_max);

/// Parallelizes a floating operator for a CG_f execution:
/// N = min(N_max(op, f), OptimalDegree, P).
Result<ParallelizedOp> ParallelizeFloating(const OperatorCost& cost,
                                           const CostParams& params,
                                           const OverlapUsageModel& usage,
                                           double f, int num_sites);

/// Rate-matched degree for a non-bottleneck pipeline stage (the journal
/// version's pipelined extension, arxiv 1403.7729): a producer/consumer
/// chain drains at the rate of its slowest stage, so any stage whose
/// stand-alone time T_par is below the bottleneck's is over-parallelized —
/// its extra clones burn alpha*N coordinator startup and occupy sites
/// without making the pipeline finish earlier. Returns the smallest degree
/// n <= base_degree whose ParallelTime still fits within `bottleneck_ms`,
/// walking down from base_degree (so the returned degree is always
/// contiguous-with-base even where T_par is not monotone below the
/// optimum). Requires base_degree >= 1 and
/// ParallelTime(cost, base_degree) <= bottleneck_ms.
int RateMatchedDegree(const OperatorCost& cost, const CostParams& params,
                      const OverlapUsageModel& usage, double bottleneck_ms,
                      int base_degree);

/// Parallelizes a floating operator at an explicitly chosen degree (used by
/// the malleable scheduler of §7). Requires 1 <= degree <= num_sites.
Result<ParallelizedOp> ParallelizeAtDegree(const OperatorCost& cost,
                                           const CostParams& params,
                                           const OverlapUsageModel& usage,
                                           int degree, int num_sites);

/// Checks that `home` names distinct sites in [0, num_sites) and is
/// non-empty (the validity precondition of ParallelizeRooted; exposed so
/// memoizing callers can validate without recomputing the clone split).
Status ValidateHome(const std::vector<int>& home, int num_sites);

/// Parallelizes a rooted operator whose home (and hence degree) is fixed by
/// data placement. `home` must name distinct sites in [0, num_sites).
Result<ParallelizedOp> ParallelizeRooted(const OperatorCost& cost,
                                         const CostParams& params,
                                         const OverlapUsageModel& usage,
                                         std::vector<int> home,
                                         int num_sites);

}  // namespace mrs

#endif  // MRS_COST_PARALLELIZE_H_
