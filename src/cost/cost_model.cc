#include "cost/cost_model.h"

#include <algorithm>
#include <utility>

#include "common/logging.h"
#include "common/str_util.h"
#include "resource/machine.h"

namespace mrs {

std::string OperatorCost::ToString() const {
  return StrFormat("cost(op%d %s: W_p=%s total=%.2fms D=%s)", op_id,
                   std::string(OperatorKindToString(kind)).c_str(),
                   processing.ToString().c_str(), ProcessingArea(),
                   FormatBytes(data_bytes).c_str());
}

CostModel::CostModel(CostParams params, int dims, int num_disks,
                     CostModelOptions options)
    : params_(params),
      dims_(dims),
      num_disks_(num_disks),
      options_(std::move(options)) {
  MRS_CHECK(num_disks_ >= 1) << "CostModel requires at least one disk";
  MRS_CHECK(dims_ >= 2 + num_disks_)
      << "CostModel requires d >= 2 + num_disks (cpu/net + disks)";
  MRS_CHECK_OK(params_.Validate());
}

void CostModel::AddDiskWork(WorkVector* processing, double disk_ms) const {
  const double share = disk_ms / static_cast<double>(num_disks_);
  (*processing)[kDiskDim] += share;
  for (int i = 1; i < num_disks_; ++i) {
    (*processing)[kDefaultDims + static_cast<size_t>(i) - 1] += share;
  }
}

Result<OperatorCost> CostModel::Cost(const PhysicalOp& op) const {
  if (op.input_tuples < 0 || op.output_tuples < 0) {
    return Status::InvalidArgument(
        StrFormat("op%d has negative cardinalities", op.id));
  }
  OperatorCost cost;
  cost.op_id = op.id;
  cost.kind = op.kind;
  cost.processing = WorkVector(static_cast<size_t>(dims_));

  const double in_tuples = static_cast<double>(op.input_tuples);
  const double pages =
      static_cast<double>((op.input_tuples + op.layout.tuples_per_page - 1) /
                          op.layout.tuples_per_page);

  switch (op.kind) {
    case OperatorKind::kScan:
      cost.processing[kCpuDim] =
          params_.InstrToMs(params_.instr_read_page * pages +
                            params_.instr_extract_tuple * in_tuples);
      AddDiskWork(&cost.processing, params_.disk_ms_per_page * pages);
      // Input pages are read from the local disk fragment; only the output
      // stream crosses the interconnect (when there is a consumer).
      if (op.consumer >= 0) {
        cost.data_bytes += static_cast<double>(op.output_bytes());
      }
      break;
    case OperatorKind::kBuild:
      // Extracts each tuple of the (repartitioned) inner stream and
      // inserts it into the hash table.
      cost.processing[kCpuDim] =
          params_.InstrToMs((params_.instr_extract_tuple +
                             params_.instr_hash_tuple) *
                            in_tuples);
      // Ships nothing: the hash table is consumed in place by the probe.
      cost.data_bytes += static_cast<double>(op.input_bytes());
      break;
    case OperatorKind::kProbe:
      // Extracts each tuple of the outer stream and probes the table;
      // result tuples are charged to their consumer (which extracts them
      // from its own input stream).
      cost.processing[kCpuDim] =
          params_.InstrToMs((params_.instr_extract_tuple +
                             params_.instr_probe_hash) *
                            in_tuples);
      cost.data_bytes += static_cast<double>(op.input_bytes());
      if (op.consumer >= 0) {
        cost.data_bytes += static_cast<double>(op.output_bytes());
      }
      break;
    case OperatorKind::kSortRun: {
      // External sort phase 1: extract + sort each input tuple, write the
      // sorted runs to local disk.
      const double run_pages = pages;
      cost.processing[kCpuDim] =
          params_.InstrToMs((params_.instr_extract_tuple +
                             params_.instr_sort_tuple) *
                                in_tuples +
                            params_.instr_write_page * run_pages);
      AddDiskWork(&cost.processing, params_.disk_ms_per_page * run_pages);
      cost.data_bytes += static_cast<double>(op.input_bytes());
      break;
    }
    case OperatorKind::kSortMerge: {
      // External sort phase 2: read the local runs back and merge.
      const double run_pages = pages;
      cost.processing[kCpuDim] =
          params_.InstrToMs(params_.instr_merge_tuple * in_tuples +
                            params_.instr_read_page * run_pages);
      AddDiskWork(&cost.processing, params_.disk_ms_per_page * run_pages);
      if (op.consumer >= 0) {
        cost.data_bytes += static_cast<double>(op.output_bytes());
      }
      break;
    }
    case OperatorKind::kAggBuild:
      // Hash aggregation: extract + hash each input tuple into the group
      // table (memory-resident, A1).
      cost.processing[kCpuDim] =
          params_.InstrToMs((params_.instr_extract_tuple +
                             params_.instr_hash_tuple) *
                            in_tuples);
      cost.data_bytes += static_cast<double>(op.input_bytes());
      break;
    case OperatorKind::kAggOutput:
      // Emit one result tuple per group from the local table.
      cost.processing[kCpuDim] =
          params_.InstrToMs(params_.instr_extract_tuple * in_tuples);
      if (op.consumer >= 0) {
        cost.data_bytes += static_cast<double>(op.output_bytes());
      }
      break;
  }
  if (options_.fitted) {
    const size_t n = std::min(cost.processing.dim(), options_.scale.size());
    for (size_t d = 0; d < n; ++d) cost.processing[d] *= options_.scale[d];
  }
  return cost;
}

Result<std::vector<OperatorCost>> CostModel::CostAll(
    const OperatorTree& tree) const {
  std::vector<OperatorCost> costs;
  costs.reserve(static_cast<size_t>(tree.num_ops()));
  for (const auto& op : tree.ops()) {
    auto c = Cost(op);
    if (!c.ok()) return c.status();
    costs.push_back(std::move(c).value());
  }
  return costs;
}

}  // namespace mrs
