#include "cost/clone_set.h"

#include <utility>

#include "common/logging.h"

namespace mrs {

CloneSet CloneSet::Uniform(WorkVector coordinator, WorkVector base,
                           int degree) {
  MRS_CHECK(degree >= 1) << "uniform clone set needs degree >= 1";
  MRS_CHECK(coordinator.dim() == base.dim())
      << "coordinator/base dimension mismatch";
  CloneSet set;
  set.uniform_degree_ = degree;
  set.coordinator_ = std::move(coordinator);
  set.base_ = std::move(base);
  return set;
}

void CloneSet::Materialize() {
  if (uniform_degree_ == 0) return;
  distinct_.clear();
  distinct_.reserve(static_cast<size_t>(uniform_degree_));
  distinct_.push_back(coordinator_);
  for (int k = 1; k < uniform_degree_; ++k) distinct_.push_back(base_);
  uniform_degree_ = 0;
  coordinator_ = WorkVector();
  base_ = WorkVector();
}

WorkVector CloneSet::Sum() const {
  const size_t n = size();
  if (n == 0) return WorkVector();
  WorkVector sum((*this)[0].dim());
  for (size_t k = 0; k < n; ++k) sum += (*this)[k];
  return sum;
}

bool CloneSet::operator==(const CloneSet& other) const {
  const size_t n = size();
  if (n != other.size()) return false;
  for (size_t k = 0; k < n; ++k) {
    if ((*this)[k] != other[k]) return false;
  }
  return true;
}

}  // namespace mrs
