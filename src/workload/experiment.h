#ifndef MRS_WORKLOAD_EXPERIMENT_H_
#define MRS_WORKLOAD_EXPERIMENT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/stats.h"
#include "core/tree_schedule.h"
#include "cost/cost_model.h"
#include "plan/operator_tree.h"
#include "plan/task_tree.h"
#include "resource/machine.h"
#include "workload/generator.h"

namespace mrs {

/// The algorithms compared in the paper's §6 plus the malleable variant.
enum class SchedulerKind {
  kTreeSchedule,           ///< multi-dimensional phased list scheduling
  kTreeScheduleMalleable,  ///< TREESCHEDULE with §7 parallelization
  kSynchronous,            ///< one-dimensional baseline [HCY94]+[LCRY93]
  kHongPairing,            ///< XPRS-style IO/CPU pipeline pairing [Hon92]
  kOptBound,               ///< lower bound on the optimal CG_f execution
};

std::string_view SchedulerKindToString(SchedulerKind kind);

/// Everything derived from one generated query that all schedulers share:
/// the plan, its operator and task trees, and the per-operator costs.
/// Reusing one QueryArtifacts across schedulers guarantees they compete on
/// identical inputs.
struct QueryArtifacts {
  GeneratedQuery query;
  OperatorTree op_tree;
  TaskTree task_tree;
  std::vector<OperatorCost> costs;
};

/// Configuration of one experiment point (one (algorithm, parameter)
/// combination averaged over `queries_per_point` random queries).
struct ExperimentConfig {
  /// Master seed; query i of a J-join workload derives its own stream from
  /// (seed, J, i), so the same queries recur across algorithms and sweep
  /// values — the paper compares algorithms on the same twenty plans.
  uint64_t seed = 9607;
  int queries_per_point = 20;
  WorkloadParams workload;
  MachineConfig machine;
  CostParams cost;
  /// Disks per site (machine.dims must be >= 2 + num_disks).
  int num_disks = 1;
  /// Granularity parameter f (TREESCHEDULE and OPTBOUND).
  double granularity = 0.7;
  /// Resource overlap parameter epsilon (EA2).
  double overlap = 0.5;
};

/// Generates query `index` of the config's workload and derives all
/// scheduler inputs.
Result<QueryArtifacts> PrepareQuery(const ExperimentConfig& config, int index);

/// Runs one scheduler on prepared artifacts; returns the response time in
/// milliseconds (for kOptBound: the lower-bound value).
Result<double> RunScheduler(SchedulerKind kind, QueryArtifacts* artifacts,
                            const ExperimentConfig& config);

/// Full experiment point: average response time of `kind` over the
/// config's query set.
Result<RunningStat> MeasureAverageResponse(SchedulerKind kind,
                                           const ExperimentConfig& config);

/// Convenience for benches: measures several schedulers on the *same*
/// query set (each query generated once, all schedulers run on it).
Result<std::vector<RunningStat>> MeasureSchedulers(
    const std::vector<SchedulerKind>& kinds, const ExperimentConfig& config);

}  // namespace mrs

#endif  // MRS_WORKLOAD_EXPERIMENT_H_
