#include "workload/tpch_like.h"

#include <algorithm>
#include <cmath>

#include "common/str_util.h"

namespace mrs {

namespace {

/// TPC-H base cardinalities at scale factor 1.
struct BaseRelation {
  const char* name;
  double sf1_tuples;
};

constexpr BaseRelation kRelations[] = {
    {"lineitem", 6'000'000}, {"orders", 1'500'000}, {"partsupp", 800'000},
    {"part", 200'000},       {"customer", 150'000}, {"supplier", 10'000},
    {"nation", 25},          {"region", 5},
};

std::string CatalogText(double sf) {
  std::string out;
  for (const auto& r : kRelations) {
    const long long tuples = std::max<long long>(
        1, static_cast<long long>(std::llround(r.sf1_tuples * sf)));
    out += StrFormat("relation %s %lld\n", r.name, tuples);
  }
  return out;
}

}  // namespace

std::vector<std::string> TpchLikeShapes() {
  return {"q3-like", "q9-like", "q18-like"};
}

Result<TpchLikeQuery> MakeTpchLikeQuery(const std::string& shape,
                                        double scale_factor) {
  if (scale_factor <= 0) {
    return Status::InvalidArgument("scale_factor must be > 0");
  }
  std::string plan_line;
  std::string description;
  if (shape == "q3-like") {
    // Shipping-priority shape: (customer ⋈ orders) ⋈ lineitem, sorted by
    // revenue. Builds on the smaller inputs.
    plan_line =
        "plan (sort (join (join lineitem orders) customer))";
    description =
        "two-join pricing pipeline with an order-by on top (TPC-H Q3 "
        "shape)";
  } else if (shape == "q9-like") {
    // Product-type profit: bushy join of five relations with a group-by.
    plan_line =
        "plan (agg 0.05 (join (join lineitem (join partsupp (join part "
        "supplier))) (join orders nation)))";
    description =
        "bushy five-join profit query aggregated by nation/year (TPC-H "
        "Q9 shape)";
  } else if (shape == "q18-like") {
    // Large-volume customers: group lineitem before joining up.
    plan_line =
        "plan (join (join (agg 0.2 lineitem) orders) customer)";
    description =
        "pre-aggregated lineitem joined to orders and customer (TPC-H "
        "Q18 shape)";
  } else {
    return Status::InvalidArgument(
        StrFormat("unknown TPC-H-like shape '%s' (supported: q3-like, "
                  "q9-like, q18-like)",
                  shape.c_str()));
  }

  auto parsed = ParsePlanText(CatalogText(scale_factor) + plan_line + "\n");
  if (!parsed.ok()) return parsed.status();
  TpchLikeQuery query;
  query.name = shape;
  query.description = std::move(description);
  query.parsed = std::move(parsed).value();
  return query;
}

}  // namespace mrs
