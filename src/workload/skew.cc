#include "workload/skew.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/logging.h"

namespace mrs {

ParallelizedOp ApplySkew(const ParallelizedOp& op, const SkewParams& params,
                         const OverlapUsageModel& usage, Rng* rng) {
  MRS_CHECK(rng != nullptr) << "ApplySkew requires an Rng";
  if (params.theta <= 0.0 || op.degree <= 1) return op;

  const size_t n = static_cast<size_t>(op.degree);
  // Zipf weights normalized to sum to N: total work is preserved.
  std::vector<double> weights(n);
  double sum = 0.0;
  for (size_t r = 0; r < n; ++r) {
    weights[r] = std::pow(static_cast<double>(r + 1), -params.theta);
    sum += weights[r];
  }
  for (double& w : weights) w *= static_cast<double>(n) / sum;
  // Random rank assignment: any clone may be the hot one.
  rng->Shuffle(&weights);

  ParallelizedOp skewed = op;
  skewed.t_par = 0.0;
  for (size_t k = 0; k < n; ++k) {
    // Mutable() expands a uniform clone set into distinct per-clone
    // vectors (copy-on-write) — skew is exactly the path that breaks
    // the uniform-split invariant.
    skewed.clones.Mutable(k) = op.clones[k] * weights[k];
    skewed.t_seq[k] = usage.SequentialTime(skewed.clones[k]);
    skewed.t_par = std::max(skewed.t_par, skewed.t_seq[k]);
  }
  return skewed;
}

Result<double> SkewedResponseTime(const TreeScheduleResult& result,
                                  const SkewParams& params,
                                  const OverlapUsageModel& usage) {
  Rng rng(params.seed);
  double response = 0.0;
  for (const auto& phase : result.phases) {
    // Skew each operator once, then replay the phase's placements with
    // the skewed clone vectors.
    Schedule replay(phase.schedule.num_sites(), phase.schedule.dims());
    std::vector<ParallelizedOp> skewed;
    skewed.reserve(phase.ops.size());
    for (const auto& op : phase.ops) {
      skewed.push_back(ApplySkew(op, params, usage, &rng));
    }
    for (const auto& placement : phase.schedule.placements()) {
      const ParallelizedOp* op = nullptr;
      for (const auto& candidate : skewed) {
        if (candidate.op_id == placement.op_id) {
          op = &candidate;
          break;
        }
      }
      if (op == nullptr) {
        return Status::Internal("placement references an unknown operator");
      }
      MRS_RETURN_IF_ERROR(
          replay.Place(*op, placement.clone_idx, placement.site));
    }
    response += replay.Makespan();
  }
  return response;
}

}  // namespace mrs
