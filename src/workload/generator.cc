#include "workload/generator.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "common/str_util.h"

namespace mrs {

Status WorkloadParams::Validate() const {
  if (num_joins < 0) {
    return Status::InvalidArgument("num_joins must be >= 0");
  }
  if (min_tuples < 1 || max_tuples < min_tuples) {
    return Status::InvalidArgument(
        StrFormat("tuple range [%lld, %lld] invalid",
                  static_cast<long long>(min_tuples),
                  static_cast<long long>(max_tuples)));
  }
  if (layout.tuple_bytes <= 0 || layout.tuples_per_page <= 0) {
    return Status::InvalidArgument("layout must be positive");
  }
  if (sort_probability < 0 || sort_probability > 1 ||
      aggregate_probability < 0 || aggregate_probability > 1) {
    return Status::InvalidArgument(
        "operator probabilities must be within [0, 1]");
  }
  if (!(agg_group_fraction > 0.0) || agg_group_fraction > 1.0) {
    return Status::InvalidArgument("agg_group_fraction outside (0, 1]");
  }
  return Status::OK();
}

std::string GeneratedQuery::ToString() const {
  return StrFormat("GeneratedQuery(%s; plan %s)",
                   graph ? graph->ToString().c_str() : "?",
                   plan ? plan->ToString().c_str() : "?");
}

Result<GeneratedQuery> GenerateQuery(const WorkloadParams& params, Rng* rng) {
  MRS_RETURN_IF_ERROR(params.Validate());
  MRS_CHECK(rng != nullptr) << "GenerateQuery requires an Rng";

  GeneratedQuery q;
  const int num_relations = params.num_joins + 1;

  // Catalog with random cardinalities.
  q.catalog = std::make_unique<Catalog>();
  for (int i = 0; i < num_relations; ++i) {
    Relation r;
    r.name = StrFormat("R%d", i);
    r.layout = params.layout;
    if (params.sizing == RelationSizing::kLogUniform) {
      r.num_tuples = static_cast<int64_t>(std::llround(
          rng->LogUniform(static_cast<double>(params.min_tuples),
                          static_cast<double>(params.max_tuples))));
    } else {
      r.num_tuples = rng->UniformInt(params.min_tuples, params.max_tuples);
    }
    r.num_tuples = std::clamp(r.num_tuples, params.min_tuples,
                              params.max_tuples);
    auto id = q.catalog->AddRelation(std::move(r));
    if (!id.ok()) return id.status();
  }

  // Random recursive tree join graph.
  q.graph = std::make_unique<QueryGraph>(num_relations);
  for (int i = 1; i < num_relations; ++i) {
    const int j = static_cast<int>(rng->UniformInt(0, i - 1));
    MRS_RETURN_IF_ERROR(q.graph->AddJoin(i, j));
  }

  // Random bushy plan: apply the join edges in random order, maintaining
  // per-relation the plan component it currently belongs to.
  q.plan = std::make_unique<PlanTree>(q.catalog.get());
  std::vector<int> component(static_cast<size_t>(num_relations));
  for (int i = 0; i < num_relations; ++i) {
    auto leaf = q.plan->AddLeaf(i);
    if (!leaf.ok()) return leaf.status();
    component[static_cast<size_t>(i)] = leaf.value();
  }
  // Union-find over relations to locate component roots.
  std::vector<int> parent(static_cast<size_t>(num_relations));
  for (int i = 0; i < num_relations; ++i) parent[static_cast<size_t>(i)] = i;
  auto find = [&](int x) {
    while (parent[static_cast<size_t>(x)] != x) {
      parent[static_cast<size_t>(x)] =
          parent[static_cast<size_t>(parent[static_cast<size_t>(x)])];
      x = parent[static_cast<size_t>(x)];
    }
    return x;
  };

  std::vector<JoinEdge> edges = q.graph->edges();
  rng->Shuffle(&edges);
  for (const JoinEdge& e : edges) {
    const int ca = find(e.left_relation);
    const int cb = find(e.right_relation);
    MRS_CHECK(ca != cb) << "tree edge joining a single component";
    const int plan_a = component[static_cast<size_t>(ca)];
    const int plan_b = component[static_cast<size_t>(cb)];
    const int64_t size_a = q.plan->node(plan_a).output.num_tuples;
    const int64_t size_b = q.plan->node(plan_b).output.num_tuples;

    int outer = plan_a;
    int inner = plan_b;
    switch (params.build_side) {
      case BuildSideRule::kSmaller:
        if (size_a < size_b) std::swap(outer, inner);
        break;
      case BuildSideRule::kRandom:
        if (rng->Bernoulli(0.5)) std::swap(outer, inner);
        break;
    }
    auto join = q.plan->AddJoin(outer, inner);
    if (!join.ok()) return join.status();
    int top = join.value();
    // Optionally cap the join with a blocking unary operator.
    if (rng->Bernoulli(params.sort_probability)) {
      auto sorted = q.plan->AddSort(top);
      if (!sorted.ok()) return sorted.status();
      top = sorted.value();
    } else if (rng->Bernoulli(params.aggregate_probability)) {
      auto agg = q.plan->AddAggregate(top, params.agg_group_fraction);
      if (!agg.ok()) return agg.status();
      top = agg.value();
    }
    parent[static_cast<size_t>(ca)] = cb;
    component[static_cast<size_t>(find(cb))] = top;
  }
  MRS_RETURN_IF_ERROR(q.plan->Finalize());
  return q;
}

}  // namespace mrs
