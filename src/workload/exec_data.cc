#include "workload/exec_data.h"

#include <cmath>

#include "common/str_util.h"

namespace mrs {

uint64_t MixU64(uint64_t x) {
  // SplitMix64 finalizer (Steele/Lea/Flood): full-avalanche, stateless.
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

ExecRow SynthesizeRow(uint64_t seed, uint64_t index, const ExecKeyDist& dist) {
  const uint64_t bits = MixU64(seed ^ MixU64(index));
  ExecRow row;
  if (dist.skew <= 0.0) {
    row.key = dist.domain > 0 ? bits % dist.domain : 0;
  } else {
    // u in [0, 1) from the top 53 bits; the power transform concentrates
    // mass near key 0 as skew -> 1.
    const double u =
        static_cast<double>(bits >> 11) * (1.0 / 9007199254740992.0);
    const double exponent = 1.0 / (1.0 - dist.skew);
    uint64_t key = static_cast<uint64_t>(
        static_cast<double>(dist.domain) * std::pow(u, exponent));
    if (key >= dist.domain) key = dist.domain - 1;
    row.key = key;
  }
  // An independent mix for the payload so aggregate sums do not correlate
  // with key order.
  row.payload = MixU64(bits ^ 0xa5a5a5a5a5a5a5a5ull);
  return row;
}

void SynthesizeRows(uint64_t seed, int64_t count, const ExecKeyDist& dist,
                    std::vector<ExecRow>* out) {
  if (count <= 0) return;
  out->reserve(out->size() + static_cast<size_t>(count));
  for (int64_t i = 0; i < count; ++i) {
    out->push_back(SynthesizeRow(seed, static_cast<uint64_t>(i), dist));
  }
}

int PartitionOf(uint64_t key, int degree) {
  if (degree <= 1) return 0;
  return static_cast<int>(MixU64(key) % static_cast<uint64_t>(degree));
}

uint64_t RowDigest(const ExecRow& row) {
  return MixU64(row.key ^ MixU64(row.payload));
}

Status ValidateKeyDist(const ExecKeyDist& dist) {
  if (dist.domain < 1) {
    return Status::InvalidArgument("key domain must be >= 1");
  }
  if (dist.skew < 0.0 || dist.skew >= 1.0) {
    return Status::InvalidArgument(
        StrFormat("key skew must be in [0, 1), got %g", dist.skew));
  }
  return Status::OK();
}

}  // namespace mrs
