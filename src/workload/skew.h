#ifndef MRS_WORKLOAD_SKEW_H_
#define MRS_WORKLOAD_SKEW_H_

#include <cstdint>

#include "common/result.h"
#include "common/rng.h"
#include "core/schedule.h"
#include "core/tree_schedule.h"
#include "resource/usage_model.h"

namespace mrs {

/// Execution-skew model — relaxing experimental assumption EA1 ("the work
/// vector of an operator is distributed perfectly among all sites
/// participating in its execution").
///
/// Real partitionings are skewed: hash buckets are uneven, value
/// distributions pile onto some clones. We model this with Zipf-shaped
/// clone shares: for an operator with N clones, clone ranks r = 1..N get
/// weight r^-theta, normalized to sum to N (total work preserved), and
/// ranks are assigned to clones uniformly at random per operator.
/// theta = 0 reproduces EA1; theta around 0.5 is mild skew; theta >= 1 is
/// severe.
struct SkewParams {
  double theta = 0.0;
  /// Seed for the rank assignment (results are deterministic per seed).
  uint64_t seed = 1;
};

/// Applies skew to one parallelized operator: clone work vectors are
/// rescaled by Zipf weights (componentwise totals preserved up to
/// rounding), t_seq/t_par recomputed under `usage`. The coordinator's
/// startup surcharge is part of its vector and skews with it —
/// pessimistic but simple. No-op for theta == 0 or degree 1.
ParallelizedOp ApplySkew(const ParallelizedOp& op, const SkewParams& params,
                         const OverlapUsageModel& usage, Rng* rng);

/// Re-evaluates a phased schedule as if the parallelizer's even splits had
/// come out skewed: same placements, Zipf-perturbed clone vectors. Returns
/// the realized response time (>= the analytic response for theta > 0 in
/// expectation; equality at theta = 0). The scheduler is *not* told about
/// the skew — this measures how brittle its EA1-based promises are.
Result<double> SkewedResponseTime(const TreeScheduleResult& result,
                                  const SkewParams& params,
                                  const OverlapUsageModel& usage);

}  // namespace mrs

#endif  // MRS_WORKLOAD_SKEW_H_
