#ifndef MRS_WORKLOAD_TPCH_LIKE_H_
#define MRS_WORKLOAD_TPCH_LIKE_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "io/plan_text.h"

namespace mrs {

/// A TPC-H-shaped demo workload: the eight classic relations at a given
/// scale factor and three canonical plan shapes. Cardinalities follow the
/// TPC-H ratios (per scale factor 1: lineitem 6M, orders 1.5M, partsupp
/// 800k, part/customer 200k/150k, supplier 10k, nation 25, region 5),
/// scaled linearly and clamped to at least one tuple. Join sizing still
/// follows the paper's key-join max rule, so the cardinalities up the
/// plans are approximations, not TPC-H semantics — this is a demo
/// workload for the scheduler, not a TPC-H implementation.
struct TpchLikeQuery {
  std::string name;
  std::string description;
  ParsedPlan parsed;
};

/// The supported canonical shapes.
///  * "q3-like":  customer JOIN orders JOIN lineitem, sorted (pricing
///    summary pipeline: two joins + order-by);
///  * "q9-like":  a bushy five-join product-profit shape over part,
///    supplier, partsupp, lineitem, orders, nation with an aggregate on
///    top;
///  * "q18-like": large customer/orders/lineitem join with a group-by
///    below the top join (pre-aggregation shape).
Result<TpchLikeQuery> MakeTpchLikeQuery(const std::string& shape,
                                        double scale_factor = 0.01);

/// All supported shape names.
std::vector<std::string> TpchLikeShapes();

}  // namespace mrs

#endif  // MRS_WORKLOAD_TPCH_LIKE_H_
