#ifndef MRS_WORKLOAD_GENERATOR_H_
#define MRS_WORKLOAD_GENERATOR_H_

#include <memory>
#include <string>

#include "catalog/catalog.h"
#include "common/result.h"
#include "common/rng.h"
#include "plan/plan_tree.h"
#include "plan/query_graph.h"

namespace mrs {

/// How the workload generator sizes base relations.
enum class RelationSizing {
  /// Uniform over [min_tuples, max_tuples].
  kUniform,
  /// Log-uniform over [min_tuples, max_tuples] (default: the paper gives
  /// the range 10^3..10^5 tuples; a log-uniform draw spreads work over the
  /// decades instead of being dominated by near-10^5 relations).
  kLogUniform,
};

/// How the build (inner) side of each hash join is chosen when assembling
/// a random bushy plan.
enum class BuildSideRule {
  /// Build on the smaller input (the standard optimizer choice; default).
  kSmaller,
  /// Random side (stresses schedulers with poor plans).
  kRandom,
};

struct WorkloadParams {
  /// Number of joins J; the query has J+1 base relations.
  int num_joins = 10;
  int64_t min_tuples = 1'000;
  int64_t max_tuples = 100'000;
  RelationSizing sizing = RelationSizing::kLogUniform;
  BuildSideRule build_side = BuildSideRule::kSmaller;
  TupleLayout layout;

  /// Probability that a join's output is wrapped in a blocking sort /
  /// hash aggregate (both 0 reproduces the paper's pure hash-join
  /// workload). At most one wrapper is applied per join; sort is tried
  /// first.
  double sort_probability = 0.0;
  double aggregate_probability = 0.0;
  /// |groups| / |input| for generated aggregates.
  double agg_group_fraction = 0.1;

  Status Validate() const;
};

/// A randomly generated query: its base-relation catalog, its (tree) join
/// graph, and one randomly selected bushy execution plan. The catalog is
/// heap-allocated so the PlanTree's pointer into it survives moves.
struct GeneratedQuery {
  std::unique_ptr<Catalog> catalog;
  std::unique_ptr<QueryGraph> graph;
  std::unique_ptr<PlanTree> plan;

  std::string ToString() const;
};

/// Generates a random tree query and a random bushy plan for it
/// (paper §6.1: tree query graphs, random bushy plan per graph, relation
/// cardinalities in 10^3..10^5 tuples, key joins sized by the max rule):
///
///  * the join graph is a uniformly random recursive tree over J+1
///    relations (relation i joins a uniformly random earlier relation);
///  * the plan applies the J join edges in a uniformly random order; each
///    edge joins the plans of the two components it connects, so every
///    intermediate join is connected (no cross products);
///  * the build side follows `build_side`.
Result<GeneratedQuery> GenerateQuery(const WorkloadParams& params, Rng* rng);

}  // namespace mrs

#endif  // MRS_WORKLOAD_GENERATOR_H_
