#ifndef MRS_WORKLOAD_EXEC_DATA_H_
#define MRS_WORKLOAD_EXEC_DATA_H_

#include <cstdint>
#include <vector>

#include "common/status.h"

namespace mrs {

/// Deterministic row synthesis for the execution backend (ROADMAP item 5:
/// real partitioned hash-join / group-by execution over generated data).
///
/// Rows are a (key, payload) pair of 64-bit integers — the minimal shape
/// that exercises every operator class the cost model knows about:
/// hashing, probing, grouping, and ordering all act on `key`, aggregate
/// sums act on `payload`. Generation is a pure function of (seed, index),
/// so any clone can materialize any slice of any stream without
/// coordination, and the same seed yields byte-identical streams on every
/// thread count and platform (the determinism contract the execute
/// backend's digest tests pin).
struct ExecRow {
  uint64_t key = 0;
  uint64_t payload = 0;
};

/// Key distribution of a synthesized stream.
struct ExecKeyDist {
  /// Keys are drawn from [0, domain). domain >= 1.
  uint64_t domain = 1;
  /// Skew knob in [0, 1): 0 = uniform; larger values concentrate mass on
  /// the low end of the domain via the power transform
  ///   key = floor(domain * u^(1/(1-skew)))
  /// (a self-similar hot-key distribution: skew 0.5 sends ~75% of rows to
  /// the lowest-keyed half of the domain, 0.9 makes a handful of keys
  /// dominate — the hash-partition imbalance EA1 assumes away).
  double skew = 0.0;
};

/// SplitMix64 finalizer: the stateless mixing function behind row
/// synthesis, hash partitioning, and digests. Public because operator
/// implementations and tests must agree on partition assignment.
uint64_t MixU64(uint64_t x);

/// The i-th row of the stream identified by `seed` under `dist`.
/// Stateless: rows can be generated in any order, by any clone.
ExecRow SynthesizeRow(uint64_t seed, uint64_t index, const ExecKeyDist& dist);

/// Appends `count` rows (indices [0, count)) of stream `seed` to `out`.
void SynthesizeRows(uint64_t seed, int64_t count, const ExecKeyDist& dist,
                    std::vector<ExecRow>* out);

/// Hash partition of a key among `degree` clones (degree >= 1). Build and
/// probe sides of a join use the same function, so matching keys always
/// meet in the same partition.
int PartitionOf(uint64_t key, int degree);

/// Order-independent digest of one row; combine per-row digests with
/// unsigned addition to get a stream digest that is invariant under
/// execution order (and hence thread count).
uint64_t RowDigest(const ExecRow& row);

/// Validates an ExecKeyDist (domain >= 1, skew in [0, 1)).
Status ValidateKeyDist(const ExecKeyDist& dist);

}  // namespace mrs

#endif  // MRS_WORKLOAD_EXEC_DATA_H_
