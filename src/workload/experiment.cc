#include "workload/experiment.h"

#include "baseline/hong.h"
#include "baseline/synchronous.h"
#include "common/logging.h"
#include "common/str_util.h"
#include "core/opt_bound.h"
#include "resource/usage_model.h"

namespace mrs {

namespace {

/// Mixes (seed, J, index) into one 64-bit query seed (SplitMix-style).
uint64_t QuerySeed(uint64_t seed, int num_joins, int index) {
  uint64_t x = seed;
  x ^= 0x9e3779b97f4a7c15ULL + static_cast<uint64_t>(num_joins) * 0x1000193ULL;
  x ^= (x >> 30);
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= static_cast<uint64_t>(index) * 0x94d049bb133111ebULL;
  x ^= (x >> 27);
  return x;
}

}  // namespace

std::string_view SchedulerKindToString(SchedulerKind kind) {
  switch (kind) {
    case SchedulerKind::kTreeSchedule:
      return "TREESCHEDULE";
    case SchedulerKind::kTreeScheduleMalleable:
      return "TREESCHEDULE-M";
    case SchedulerKind::kSynchronous:
      return "SYNCHRONOUS";
    case SchedulerKind::kHongPairing:
      return "HONG-PAIRING";
    case SchedulerKind::kOptBound:
      return "OPTBOUND";
  }
  return "?";
}

Result<QueryArtifacts> PrepareQuery(const ExperimentConfig& config,
                                    int index) {
  Rng rng(QuerySeed(config.seed, config.workload.num_joins, index));
  auto query = GenerateQuery(config.workload, &rng);
  if (!query.ok()) return query.status();

  auto op_tree = OperatorTree::FromPlan(*query->plan);
  if (!op_tree.ok()) return op_tree.status();
  OperatorTree ops = std::move(op_tree).value();

  auto task_tree = TaskTree::FromOperatorTree(&ops);
  if (!task_tree.ok()) return task_tree.status();

  CostModel model(config.cost, config.machine.dims, config.num_disks);
  auto costs = model.CostAll(ops);
  if (!costs.ok()) return costs.status();

  return QueryArtifacts{std::move(query).value(), std::move(ops),
                        std::move(task_tree).value(),
                        std::move(costs).value()};
}

Result<double> RunScheduler(SchedulerKind kind, QueryArtifacts* artifacts,
                            const ExperimentConfig& config) {
  MRS_CHECK(artifacts != nullptr) << "RunScheduler requires artifacts";
  const OverlapUsageModel usage(config.overlap);
  switch (kind) {
    case SchedulerKind::kTreeSchedule:
    case SchedulerKind::kTreeScheduleMalleable: {
      TreeScheduleOptions options;
      options.granularity = config.granularity;
      options.policy = kind == SchedulerKind::kTreeScheduleMalleable
                           ? ParallelizationPolicy::kMalleable
                           : ParallelizationPolicy::kCoarseGrain;
      auto result = TreeSchedule(artifacts->op_tree, artifacts->task_tree,
                                 artifacts->costs, config.cost,
                                 config.machine, usage, options);
      if (!result.ok()) return result.status();
      return result->response_time;
    }
    case SchedulerKind::kSynchronous: {
      auto result = SynchronousSchedule(artifacts->op_tree,
                                        artifacts->task_tree,
                                        artifacts->costs, config.cost,
                                        config.machine, usage);
      if (!result.ok()) return result.status();
      return result->response_time;
    }
    case SchedulerKind::kHongPairing: {
      auto result = HongSchedule(artifacts->op_tree, artifacts->task_tree,
                                 artifacts->costs, config.cost,
                                 config.machine, usage);
      if (!result.ok()) return result.status();
      return result->response_time;
    }
    case SchedulerKind::kOptBound: {
      auto result = OptBound(artifacts->op_tree, artifacts->task_tree,
                             artifacts->costs, config.cost, usage,
                             config.granularity, config.machine.num_sites);
      if (!result.ok()) return result.status();
      return result->Bound();
    }
  }
  return Status::InvalidArgument("unknown scheduler kind");
}

Result<RunningStat> MeasureAverageResponse(SchedulerKind kind,
                                           const ExperimentConfig& config) {
  auto stats = MeasureSchedulers({kind}, config);
  if (!stats.ok()) return stats.status();
  return stats->front();
}

Result<std::vector<RunningStat>> MeasureSchedulers(
    const std::vector<SchedulerKind>& kinds, const ExperimentConfig& config) {
  std::vector<RunningStat> stats(kinds.size());
  for (int q = 0; q < config.queries_per_point; ++q) {
    auto artifacts = PrepareQuery(config, q);
    if (!artifacts.ok()) return artifacts.status();
    for (size_t k = 0; k < kinds.size(); ++k) {
      auto response = RunScheduler(kinds[k], &artifacts.value(), config);
      if (!response.ok()) return response.status();
      stats[k].Add(response.value());
    }
  }
  return stats;
}

}  // namespace mrs
