#!/usr/bin/env python3
"""Diff two google-benchmark JSON result files.

Usage:
  scripts/compare_bench.py BASELINE.json CONTENDER.json [--filter REGEX]
                           [--counters]

Matches benchmarks by name, prints per-benchmark wall-time deltas and the
speedup factor (baseline_time / contender_time; > 1 means the contender is
faster), and a geometric-mean speedup over the matched set. With
--counters it also diffs every shared user counter (e.g. the calibration
error metrics of BENCH_exec.json, where the counters — not the times —
carry the model-quality result). Exits nonzero on malformed inputs or
when no benchmark names match, so it can gate CI.
"""

import argparse
import json
import math
import re
import sys


def load_benchmarks(path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as exc:
        sys.exit(f"error: cannot read benchmark JSON {path!r}: {exc}")
    out = {}
    for bench in doc.get("benchmarks", []):
        # Skip aggregate rows (mean/median/stddev of repetitions); compare
        # the raw iterations only.
        if bench.get("run_type") == "aggregate":
            continue
        name = bench.get("name")
        if name is None or "real_time" not in bench:
            continue
        out[name] = bench
    if not out:
        sys.exit(f"error: {path!r} contains no benchmark entries")
    return out


def fmt_time(value, unit):
    return f"{value:,.0f} {unit}"


# Numeric fields of a benchmark entry that are bookkeeping, not user
# counters.
_NON_COUNTER_KEYS = frozenset({
    "real_time", "cpu_time", "iterations", "repetitions",
    "repetition_index", "family_index", "per_family_instance_index",
    "threads",
})


def counters_of(bench):
    """User counters of one benchmark entry (includes items_per_second)."""
    return {
        key: value
        for key, value in bench.items()
        if isinstance(value, (int, float)) and not isinstance(value, bool)
        and key not in _NON_COUNTER_KEYS
    }


def print_counter_diffs(names, base, cont):
    rows = []
    for name in names:
        base_counters = counters_of(base[name])
        cont_counters = counters_of(cont[name])
        for key in sorted(base_counters):
            if key in cont_counters:
                rows.append((name, key, base_counters[key],
                             cont_counters[key]))
    if not rows:
        print("\nno shared user counters to compare")
        return
    width = max(len(f"{name} [{key}]") for name, key, _, _ in rows)
    print(f"\n{'counter':<{width}}  {'baseline':>14}  {'contender':>14}  "
          f"{'delta':>8}")
    for name, key, bv, cv in rows:
        label = f"{name} [{key}]"
        delta = (cv - bv) / bv * 100.0 if bv != 0 else float("inf")
        print(f"{label:<{width}}  {bv:>14,.4g}  {cv:>14,.4g}  "
              f"{delta:>+7.1f}%")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline", help="baseline results (JSON)")
    parser.add_argument("contender", help="new results (JSON)")
    parser.add_argument(
        "--filter", default=None, metavar="REGEX",
        help="only compare benchmarks whose name matches REGEX")
    parser.add_argument(
        "--counters", action="store_true",
        help="also diff user counters shared by baseline and contender")
    args = parser.parse_args()

    base = load_benchmarks(args.baseline)
    cont = load_benchmarks(args.contender)
    names = [n for n in base if n in cont]
    if args.filter:
        pattern = re.compile(args.filter)
        names = [n for n in names if pattern.search(n)]
    if not names:
        sys.exit("error: no common benchmark names to compare")

    width = max(len(n) for n in names)
    print(f"{'benchmark':<{width}}  {'baseline':>14}  {'contender':>14}  "
          f"{'delta':>8}  {'speedup':>8}")
    log_sum = 0.0
    for name in names:
        b, c = base[name], cont[name]
        bt, ct = b["real_time"], c["real_time"]
        unit = b.get("time_unit", "ns")
        if c.get("time_unit", "ns") != unit:
            sys.exit(f"error: time units differ for {name!r}")
        speedup = bt / ct if ct > 0 else float("inf")
        delta = (ct - bt) / bt * 100.0 if bt > 0 else float("inf")
        log_sum += math.log(speedup)
        print(f"{name:<{width}}  {fmt_time(bt, unit):>14}  "
              f"{fmt_time(ct, unit):>14}  {delta:>+7.1f}%  {speedup:>7.2f}x")
    geomean = math.exp(log_sum / len(names))
    print(f"\n{len(names)} benchmark(s) compared; geometric-mean speedup "
          f"{geomean:.2f}x (baseline/contender, >1 = contender faster)")
    if args.counters:
        print_counter_diffs(names, base, cont)


if __name__ == "__main__":
    main()
