#!/usr/bin/env bash
# Runs the full test suite under both sanitizer configurations:
#
#   build-tsan  MRS_SANITIZE=thread   (ThreadSanitizer)
#   build-asan  MRS_SANITIZE=address  (AddressSanitizer + UBSan)
#
# Each config is configured/built/run in its own tree next to the source
# checkout, so the regular `build/` directory is untouched. Any extra
# arguments are forwarded to ctest (e.g. -R BatchFuzz).
#
# The execution-backend suites (ExecData/ExecOperator/ExecBackend/
# Calibrate plus the ExecDifferential cross-engine tests) are part of
# mrs_tests, so every real thread-pool replay runs under TSan here; the
# alloc-pinning tests skip themselves when a sanitizer owns the allocator.
# The pipelined-replay cases (ExecDifferential's pipeline_edges runs and
# the pipelined golden executions) matter most under TSan: the bounded
# row queues between co-resident clones are new happens-before edges —
# dedicated producer/consumer threads synchronizing through RowQueue's
# mutex/condvars — that the pool-only paths never exercised.
# mrs_slow_tests is built too, so the optimizer differential suite (the
# multi-threaded DP/slice search racing over the shared parallelize
# cache) runs under both sanitizers as well.
#
# The server suites (Framing/SchedServer/Reactor*) matter most under
# TSan: the epoll front-end's cross-thread seams are all eventfd- or
# queue-mediated — EventLoop::Post's task queue (worker threads handing
# completed responses back to the loop thread, synchronized by the task
# mutex + eventfd wakeup), ThreadPool::Submit carrying request payloads
# the other way, and the loop thread's exclusive ownership of every
# connection state machine in between. The reactor-vs-threaded
# differential runs N concurrent clients against both engines here, so a
# missing happens-before edge on either handoff shows up as a TSan race
# on the connection's parser/output buffers.
#
# Usage: scripts/run_sanitized_tests.sh [ctest args...]

set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
generator_args=()
if command -v ninja >/dev/null 2>&1; then
  generator_args=(-G Ninja)
fi

run_config() {
  local name="$1" sanitize="$2"
  shift 2
  local build_dir="${repo_root}/build-${name}"
  echo "=== ${name}: MRS_SANITIZE=${sanitize} (${build_dir}) ==="
  cmake -B "${build_dir}" -S "${repo_root}" "${generator_args[@]}" \
    -DMRS_SANITIZE="${sanitize}" -DCMAKE_BUILD_TYPE=RelWithDebInfo
  cmake --build "${build_dir}" --target mrs_tests mrs_golden_tests mrs_slow_tests
  ctest --test-dir "${build_dir}" --output-on-failure "$@"
}

run_config tsan thread "$@"
run_config asan address "$@"
echo "=== both sanitizer suites passed ==="
