#!/usr/bin/env bash
# Runs clang-tidy (checks configured in .clang-tidy: bugprone-*,
# performance-*, concurrency-*) over the library, benches, and examples
# using the compile database from the main build tree.
#
# Exits 0 with a notice when clang-tidy is not installed, so CI recipes
# can call it unconditionally.
#
# Usage: scripts/run_clang_tidy.sh [clang-tidy args...]
#   BUILD_DIR=... build tree with compile_commands.json (default: build)

set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${BUILD_DIR:-${repo_root}/build}"

if ! command -v clang-tidy >/dev/null 2>&1; then
  echo "clang-tidy not found; skipping lint (install clang-tidy to enable)"
  exit 0
fi

if [ ! -f "${build_dir}/compile_commands.json" ]; then
  cmake -B "${build_dir}" -S "${repo_root}" -DCMAKE_EXPORT_COMPILE_COMMANDS=ON
fi

mapfile -t files < <(find "${repo_root}/src" "${repo_root}/bench" \
  "${repo_root}/examples" -name '*.cc' -o -name '*.cpp' | sort)

clang-tidy -p "${build_dir}" "$@" "${files[@]}"
