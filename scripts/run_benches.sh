#!/usr/bin/env bash
# Builds and runs the benchmark suite, collecting machine-readable results
# under bench_results/ (override with OUT_DIR):
#
#   BENCH_online.json  one JSON object per line from micro_online_throughput
#                      (three load points: light, saturating, overloaded)
#   BENCH_micro.json   google-benchmark JSON from micro_scheduler_runtime
#   BENCH_workvector.json  google-benchmark JSON from micro_workvector
#                      (split/place/simulate across d and P; diff against
#                      a saved baseline with scripts/compare_bench.py)
#   BENCH_list.json    google-benchmark JSON from micro_list_schedule
#                      (LIST vs TREE makespan ratio and engine wall time
#                      across J x P x d)
#   BENCH_pipeline.json  google-benchmark JSON from micro_pipeline
#                      (pipelined vs task-wave LIST makespan ratio and
#                      guard-fallback rate across J x P x d)
#   BENCH_exec.json    google-benchmark JSON from micro_exec_calibration
#                      (real execution vs simulation of the same schedules;
#                      the calibration loop's mean-relative-error counters —
#                      diff with scripts/compare_bench.py --counters)
#   BENCH_opt.json     google-benchmark JSON from micro_optimizer
#                      (join-order search wall time and plans/s across
#                      J x threads, pruned vs the exhaustive baseline)
#   BENCH_server.json  one JSON object per line from micro_online_throughput
#                      --connections mode (reactor vs threaded front-end
#                      holding N idle TCP connections while timing requests
#                      on one active connection; >=10k connections ride in
#                      forked hold-helper processes so the fd limit is
#                      spent on server-side sockets)
#   BENCH_trace.txt    PASS/FAIL line from micro_trace_overhead
#   BENCH_placement.json  one JSON object per line from
#                      micro_placement_scale (indexed vs. linear clone
#                      placement across machine sizes P)
#
# Usage: scripts/run_benches.sh
#   BUILD_DIR=...  build tree to use (default: <repo>/build)
#   OUT_DIR=...    where to write results (default: <repo>/bench_results)

set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${BUILD_DIR:-${repo_root}/build}"
out_dir="${OUT_DIR:-${repo_root}/bench_results}"

if [ ! -d "${build_dir}" ]; then
  cmake -B "${build_dir}" -S "${repo_root}" -DCMAKE_BUILD_TYPE=Release
fi
cmake --build "${build_dir}" \
  --target micro_online_throughput micro_scheduler_runtime \
  micro_trace_overhead micro_placement_scale micro_workvector \
  micro_list_schedule micro_pipeline micro_exec_calibration micro_optimizer
mkdir -p "${out_dir}"

echo "=== online service throughput -> ${out_dir}/BENCH_online.json ==="
: > "${out_dir}/BENCH_online.json"
# Three operating points: arrivals slower than service, near saturation,
# and overloaded (queueing + timeouts kick in).
"${build_dir}/bench/micro_online_throughput" 60 60 4 >> "${out_dir}/BENCH_online.json"
"${build_dir}/bench/micro_online_throughput" 60 30 4 >> "${out_dir}/BENCH_online.json"
"${build_dir}/bench/micro_online_throughput" 60 10 2 >> "${out_dir}/BENCH_online.json"
cat "${out_dir}/BENCH_online.json"

echo "=== scheduler microbenchmarks -> ${out_dir}/BENCH_micro.json ==="
"${build_dir}/bench/micro_scheduler_runtime" \
  --benchmark_format=json > "${out_dir}/BENCH_micro.json"

echo "=== work-vector core -> ${out_dir}/BENCH_workvector.json ==="
"${build_dir}/bench/micro_workvector" \
  --benchmark_format=json > "${out_dir}/BENCH_workvector.json"

echo "=== list vs tree engines -> ${out_dir}/BENCH_list.json ==="
"${build_dir}/bench/micro_list_schedule" \
  --benchmark_format=json > "${out_dir}/BENCH_list.json"

echo "=== pipelined vs task-wave list -> ${out_dir}/BENCH_pipeline.json ==="
"${build_dir}/bench/micro_pipeline" \
  --benchmark_format=json > "${out_dir}/BENCH_pipeline.json"

echo "=== execution backend + calibration -> ${out_dir}/BENCH_exec.json ==="
"${build_dir}/bench/micro_exec_calibration" \
  --benchmark_format=json > "${out_dir}/BENCH_exec.json"

echo "=== join-order optimizer search -> ${out_dir}/BENCH_opt.json ==="
"${build_dir}/bench/micro_optimizer" \
  --benchmark_format=json > "${out_dir}/BENCH_opt.json"

echo "=== server connection scaling -> ${out_dir}/BENCH_server.json ==="
: > "${out_dir}/BENCH_server.json"
# Matched pairs at interactive scales, then the connection-count ladder the
# reactor exists for: one epoll loop thread holding 10k/16k idle sockets vs
# one thread per connection. The top reactor point sits just under the
# container's RLIMIT_NOFILE hard cap.
for engine in reactor threaded; do
  for conns in 64 1024 10000; do
    "${build_dir}/bench/micro_online_throughput" \
      --server="${engine}" --connections="${conns}" --requests=1000 \
      >> "${out_dir}/BENCH_server.json"
  done
done
"${build_dir}/bench/micro_online_throughput" \
  --server=reactor --connections=16000 --requests=1000 \
  >> "${out_dir}/BENCH_server.json"
cat "${out_dir}/BENCH_server.json"

echo "=== tracing overhead -> ${out_dir}/BENCH_trace.txt ==="
"${build_dir}/bench/micro_trace_overhead" | tee "${out_dir}/BENCH_trace.txt"

echo "=== clone placement scaling -> ${out_dir}/BENCH_placement.json ==="
"${build_dir}/bench/micro_placement_scale" \
  | tee "${out_dir}/BENCH_placement.json"

echo "bench results written to ${out_dir}"
