// Figure 5(b): effect of the resource overlap parameter eps on the
// average response time of TREESCHEDULE (several f values) vs the
// SYNCHRONOUS baseline. Paper settings: 40-join queries, eps in
// 0.1..0.7, 20 random plans per point.

#include <cstdio>

#include "bench_common.h"
#include "common/str_util.h"
#include "common/table_printer.h"

int main(int argc, char** argv) {
  using namespace mrs;
  ExperimentConfig config = bench::DefaultConfig();
  config.workload.num_joins = 40;
  if (bench::QuickMode(argc, argv)) {
    config.queries_per_point = 5;
  }
  bench::PrintHeader("fig5b_overlap: response time vs resource overlap eps",
                     "Figure 5(b)", config);

  const std::vector<double> overlaps = {0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7};
  const std::vector<double> granularities = {0.5, 0.7, 0.9};

  // Two system sizes: on the saturated machine the advantage of resource
  // sharing is largest; the larger machine exposes the eps-sensitivity of
  // the response itself (the work bound no longer pins it).
  for (int sites : {40, 120}) {
    config.machine.num_sites = sites;
    TablePrinter table(StrFormat(
        "Average response time (seconds), 40-join queries, %d sites",
        sites));
    std::vector<std::string> header = {"eps"};
    for (double f : granularities) {
      header.push_back(StrFormat("TREE(f=%.1f)", f));
    }
    header.push_back("SYNCHRONOUS");
    header.push_back("SYNC/TREE(0.7)");
    table.SetHeader(header);

    for (double eps : overlaps) {
      config.overlap = eps;
      std::vector<std::string> row = {StrFormat("%.1f", eps)};
      double tree_07 = 0.0;
      for (double f : granularities) {
        config.granularity = f;
        auto stat =
            MeasureAverageResponse(SchedulerKind::kTreeSchedule, config);
        if (!stat.ok()) return 1;
        if (f == 0.7) tree_07 = stat->mean();
        row.push_back(StrFormat("%.2f", stat->mean() / 1000.0));
      }
      auto sync = MeasureAverageResponse(SchedulerKind::kSynchronous, config);
      if (!sync.ok()) return 1;
      row.push_back(StrFormat("%.2f", sync->mean() / 1000.0));
      row.push_back(StrFormat("%.2f", sync->mean() / tree_07));
      table.AddRow(row);
    }
    table.Print();
    std::printf("\nCSV:\n%s\n", table.ToCsv().c_str());
  }
  std::printf(
      "\nExpected shape (paper): TREESCHEDULE wins for every eps; the\n"
      "benefit of multi-dimensional scheduling is largest for small eps\n"
      "(little intra-operator overlap leaves idle resource slots that\n"
      "only time-sharing across operators can fill).\n");
  return 0;
}
