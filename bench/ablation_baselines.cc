// Ablation A13: the three-way baseline comparison. SYNCHRONOUS is the
// paper's adversary (one-dimensional, no sharing); the Hong/XPRS pairing
// adaptation shares resources but only between TWO complementary
// pipelines at a time (§2's critique); TREESCHEDULE shares among all
// concurrent operators. The gap between Hong and TREESCHEDULE isolates
// the value of *general* multi-operator sharing beyond pairwise
// IO/CPU matching.

#include <cstdio>

#include "bench_common.h"
#include "common/str_util.h"
#include "common/table_printer.h"

int main(int argc, char** argv) {
  using namespace mrs;
  ExperimentConfig config = bench::DefaultConfig();
  config.workload.num_joins = 40;
  config.overlap = 0.3;
  if (bench::QuickMode(argc, argv)) {
    config.queries_per_point = 5;
  }
  bench::PrintHeader(
      "ablation_baselines: TREESCHEDULE vs SYNCHRONOUS vs Hong pairing",
      "the related-work comparison of Section 2", config);

  TablePrinter table("Average response time (seconds), 40-join queries");
  table.SetHeader({"sites", "TREESCHEDULE", "HONG-PAIRING", "SYNCHRONOUS",
                   "HONG/TREE", "SYNC/TREE"});
  for (int sites : {10, 20, 40, 80, 140}) {
    config.machine.num_sites = sites;
    auto stats = MeasureSchedulers(
        {SchedulerKind::kTreeSchedule, SchedulerKind::kHongPairing,
         SchedulerKind::kSynchronous},
        config);
    if (!stats.ok()) {
      std::printf("error: %s\n", stats.status().ToString().c_str());
      return 1;
    }
    table.AddRow({StrFormat("%d", sites),
                  StrFormat("%.2f", (*stats)[0].mean() / 1000.0),
                  StrFormat("%.2f", (*stats)[1].mean() / 1000.0),
                  StrFormat("%.2f", (*stats)[2].mean() / 1000.0),
                  StrFormat("%.2f",
                            (*stats)[1].mean() / (*stats)[0].mean()),
                  StrFormat("%.2f",
                            (*stats)[2].mean() / (*stats)[0].mean())});
  }
  table.Print();
  std::printf(
      "\nExpected shape: on small machines Hong's pairing nearly matches\n"
      "TREESCHEDULE (two complementary pipelines saturate few sites) and\n"
      "clearly beats the sharing-free SYNCHRONOUS. As the machine grows,\n"
      "two-at-a-time concurrency plateaus — Hong falls behind TREESCHEDULE\n"
      "and eventually even behind SYNCHRONOUS, whose independent subtrees\n"
      "at least run in parallel. General multi-operator sharing, not just\n"
      "IO/CPU pairing, is what scales.\n");
  return 0;
}
