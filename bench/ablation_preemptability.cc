// Ablation A9 (extension): degrees of preemptability. Relaxes assumption
// A2 for the disk dimension (sharing a disk among n clones inflates disk
// work by 1 + delta*(n-1)) and measures (a) how much a penalty-blind
// schedule degrades and (b) how much of that the penalty-aware list rule
// recovers.

#include <cstdio>

#include "bench_common.h"
#include "common/rng.h"
#include "common/stats.h"
#include "common/str_util.h"
#include "common/table_printer.h"
#include "core/preemptability.h"
#include "resource/machine.h"
#include "test_support.h"

int main(int argc, char** argv) {
  using namespace mrs;
  const int trials = bench::QuickMode(argc, argv) ? 30 : 150;
  ExperimentConfig config = bench::DefaultConfig();
  bench::PrintHeader(
      "ablation_preemptability: imperfectly time-shareable disks",
      "Section 8 extension: degrees of preemptability", config);

  const OverlapUsageModel usage(0.5);
  const int p = 8;
  const int d = 3;

  TablePrinter table(
      "Random independent operator batches, disk penalty delta");
  table.SetHeader({"delta", "blind/ideal", "aware/ideal",
                   "aware recovers"});
  for (double delta : {0.0, 0.05, 0.1, 0.2, 0.4}) {
    const auto penalty = PreemptabilityPenalty::ForDim(d, kDiskDim, delta);
    RunningStat blind_ratio;
    RunningStat aware_ratio;
    Rng rng(static_cast<uint64_t>(9000 + delta * 1000));
    for (int t = 0; t < trials; ++t) {
      std::vector<ParallelizedOp> ops;
      const int m = 12 + static_cast<int>(rng.Index(12));
      for (int i = 0; i < m; ++i) {
        WorkVector w(d);
        w[kCpuDim] = rng.UniformDouble(0, 8);
        w[kDiskDim] = rng.Bernoulli(0.5) ? rng.UniformDouble(4, 12)
                                         : rng.UniformDouble(0, 2);
        w[kNetDim] = rng.UniformDouble(0, 4);
        ops.push_back(bench_support::MakeOp(i, {std::move(w)}, usage));
      }
      auto blind = OperatorSchedule(ops, p, d);
      auto aware = PenaltyAwareOperatorSchedule(ops, p, d, penalty);
      if (!blind.ok() || !aware.ok()) return 1;
      const double ideal = blind->Makespan();  // delta=0 reference
      blind_ratio.Add(PenalizedMakespan(*blind, penalty) / ideal);
      aware_ratio.Add(PenalizedMakespan(*aware, penalty) / ideal);
    }
    table.AddRow({StrFormat("%.2f", delta),
                  StrFormat("%.3f", blind_ratio.mean()),
                  StrFormat("%.3f", aware_ratio.mean()),
                  StrFormat("%.0f%%",
                            blind_ratio.mean() <= 1.0 + 1e-9
                                ? 100.0
                                : 100.0 * (blind_ratio.mean() -
                                           aware_ratio.mean()) /
                                      (blind_ratio.mean() - 1.0))});
  }
  table.Print();
  std::printf(
      "\nExpected shape: at delta=0 both equal the ideal model; as disks\n"
      "share less gracefully the penalty-blind schedule degrades linearly\n"
      "while the penalty-aware site choice recovers a large fraction of\n"
      "the loss by spreading disk-hungry clones.\n");
  return 0;
}
