// Clone-placement scaling bench: the OPERATORSCHEDULE site-selection
// kernel, indexed vs. linear. For each machine size P it synthesizes one
// phase of floating operators (~2P clones, quantized work vectors so load
// ties are frequent), then times the full OperatorSchedule call
//
//   (a) with the reference linear scan (placement_index = false), and
//   (b) with the tournament-tree placement index (the default),
//
// in interleaved trials (min-of-trials estimator, same reasoning as
// micro_trace_overhead) and verifies once per configuration that both
// paths produce identical placements. Half the configurations carry a
// random residual base load, exercising the online scheduler's branch.
//
// Output: one JSON object per line (scripts/run_benches.sh collects them
// as BENCH_placement.json), e.g.
//   {"bench":"placement_scale","p":1024,"ops":341,"clones":2048,
//    "base_load":false,"linear_us":...,"indexed_us":...,
//    "speedup":...,"identical":true}
//
// Usage: micro_placement_scale [trials] [--quick]

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "common/rng.h"
#include "core/operator_schedule.h"
#include "cost/parallelize.h"
#include "resource/usage_model.h"
#include "resource/work_vector.h"

namespace mrs {
namespace {

constexpr int kDims = 3;

/// One phase worth of floating operators with ~`target_clones` clones.
std::vector<ParallelizedOp> MakePhase(int num_sites, int target_clones,
                                      Rng* rng) {
  const OverlapUsageModel usage(0.5);
  std::vector<ParallelizedOp> ops;
  int clones = 0;
  int id = 0;
  while (clones < target_clones) {
    const int max_degree = std::min(num_sites, 8);
    const int degree =
        1 + static_cast<int>(rng->Index(static_cast<size_t>(max_degree)));
    ParallelizedOp op;
    op.op_id = id++;
    op.degree = degree;
    for (int k = 0; k < degree; ++k) {
      WorkVector w(static_cast<size_t>(kDims));
      for (int r = 0; r < kDims; ++r) {
        // Quantized work: frequent load ties stress the tie-break contract.
        w[static_cast<size_t>(r)] = static_cast<double>(1 + rng->Index(8));
      }
      const double t = usage.SequentialTime(w);
      op.clones.push_back(std::move(w));
      op.t_seq.push_back(t);
      op.t_par = std::max(op.t_par, t);
    }
    clones += degree;
    ops.push_back(std::move(op));
  }
  return ops;
}

std::vector<WorkVector> MakeBase(int num_sites, Rng* rng) {
  std::vector<WorkVector> base;
  for (int s = 0; s < num_sites; ++s) {
    WorkVector w(static_cast<size_t>(kDims));
    for (int r = 0; r < kDims; ++r) {
      w[static_cast<size_t>(r)] = static_cast<double>(rng->Index(6));
    }
    base.push_back(std::move(w));
  }
  return base;
}

bool SamePlacements(const Schedule& a, const Schedule& b) {
  if (a.num_placements() != b.num_placements()) return false;
  for (int i = 0; i < a.num_placements(); ++i) {
    const ClonePlacement& pa = a.placements()[static_cast<size_t>(i)];
    const ClonePlacement& pb = b.placements()[static_cast<size_t>(i)];
    if (pa.op_id != pb.op_id || pa.clone_idx != pb.clone_idx ||
        pa.site != pb.site) {
      return false;
    }
  }
  return true;
}

int Run(int trials, bool quick) {
  const std::vector<int> machine_sizes =
      quick ? std::vector<int>{64, 1024} : std::vector<int>{64, 256, 1024, 4096};
  bool all_identical = true;
  for (int p : machine_sizes) {
    for (bool with_base : {false, true}) {
      Rng rng(0x9e3779b9u + static_cast<uint64_t>(p) * 2 +
              (with_base ? 1 : 0));
      const int target_clones = 2 * p;
      const std::vector<ParallelizedOp> ops = MakePhase(p, target_clones, &rng);
      const std::vector<WorkVector> base = MakeBase(p, &rng);
      int clones = 0;
      for (const auto& op : ops) clones += op.degree;

      OperatorScheduleOptions linear;
      linear.placement_index = false;
      linear.base_load = with_base ? &base : nullptr;
      OperatorScheduleOptions indexed = linear;
      indexed.placement_index = true;

      auto lin = OperatorSchedule(ops, p, kDims, linear);
      auto idx = OperatorSchedule(ops, p, kDims, indexed);
      if (!lin.ok() || !idx.ok()) {
        std::fprintf(stderr, "schedule failed: %s %s\n",
                     lin.status().ToString().c_str(),
                     idx.status().ToString().c_str());
        return 1;
      }
      const bool identical = SamePlacements(*lin, *idx) &&
                             lin->Makespan() == idx->Makespan();
      all_identical = all_identical && identical;

      // Repetitions sized so one trial stays ~tens of ms on the indexed
      // path while the linear path keeps enough work to time reliably.
      const int reps = std::max(1, (quick ? 16384 : 32768) / p);
      double checksum = 0.0;
      auto time_one = [&](const OperatorScheduleOptions& options) {
        const auto start = std::chrono::steady_clock::now();
        for (int i = 0; i < reps; ++i) {
          auto s = OperatorSchedule(ops, p, kDims, options);
          if (s.ok()) checksum += s->Makespan();
        }
        return std::chrono::duration<double, std::micro>(
                   std::chrono::steady_clock::now() - start)
                   .count() /
               static_cast<double>(reps);
      };
      std::vector<double> linear_us;
      std::vector<double> indexed_us;
      time_one(indexed);  // warmup
      for (int t = 0; t < trials; ++t) {
        linear_us.push_back(time_one(linear));
        indexed_us.push_back(time_one(indexed));
      }
      const double lin_best =
          *std::min_element(linear_us.begin(), linear_us.end());
      const double idx_best =
          *std::min_element(indexed_us.begin(), indexed_us.end());
      std::printf(
          "{\"bench\":\"placement_scale\",\"p\":%d,\"ops\":%zu,"
          "\"clones\":%d,\"base_load\":%s,\"linear_us\":%.2f,"
          "\"indexed_us\":%.2f,\"speedup\":%.2f,\"identical\":%s,"
          "\"checksum\":%.3e}\n",
          p, ops.size(), clones, with_base ? "true" : "false", lin_best,
          idx_best, idx_best > 0 ? lin_best / idx_best : 0.0,
          identical ? "true" : "false", checksum);
      std::fflush(stdout);
    }
  }
  if (!all_identical) {
    std::fprintf(stderr,
                 "FAIL: indexed and linear placement diverged — the "
                 "differential contract is broken\n");
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace mrs

int main(int argc, char** argv) {
  int trials = 5;
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else {
      trials = std::atoi(argv[i]);
    }
  }
  if (trials < 1) trials = 1;
  return mrs::Run(trials, quick);
}
