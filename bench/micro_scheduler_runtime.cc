// Ablation A5: scheduler runtime scaling (Propositions 5.1 / 5.2 and the
// Section 7 selection cost), measured with google-benchmark.
//
//   OPERATORSCHEDULE:  O(M P (M + log P))
//   TREESCHEDULE:      O(J P (J + log P))
//   GF selection:      O(M P log M)
//
// plus the batch scheduling engine: BM_BatchSchedule reports queries/sec
// (items_per_second) for a generated batch at 1/2/4/8 worker threads —
// the speedup column of the ROADMAP's throughput story — and
// BM_BatchSchedule_NoCache isolates the memoized parallelize cache.

#include <benchmark/benchmark.h>

#include "core/malleable.h"
#include "core/operator_schedule.h"
#include "core/tree_schedule.h"
#include "exec/batch_scheduler.h"
#include "workload/experiment.h"

namespace mrs {
namespace {

ExperimentConfig ConfigFor(int joins, int sites) {
  ExperimentConfig config;
  config.workload.num_joins = joins;
  config.machine.num_sites = sites;
  config.granularity = 0.7;
  config.overlap = 0.5;
  return config;
}

void BM_TreeSchedule(benchmark::State& state) {
  const int joins = static_cast<int>(state.range(0));
  const int sites = static_cast<int>(state.range(1));
  ExperimentConfig config = ConfigFor(joins, sites);
  auto artifacts = PrepareQuery(config, 0);
  if (!artifacts.ok()) {
    state.SkipWithError("query preparation failed");
    return;
  }
  const OverlapUsageModel usage(config.overlap);
  TreeScheduleOptions options;
  options.granularity = config.granularity;
  for (auto _ : state) {
    auto result = TreeSchedule(artifacts->op_tree, artifacts->task_tree,
                               artifacts->costs, config.cost, config.machine,
                               usage, options);
    benchmark::DoNotOptimize(result);
  }
  state.SetLabel("J=" + std::to_string(joins) +
                 " P=" + std::to_string(sites));
}
BENCHMARK(BM_TreeSchedule)
    ->Args({10, 32})
    ->Args({20, 32})
    ->Args({40, 32})
    ->Args({80, 32})
    ->Args({40, 16})
    ->Args({40, 64})
    ->Args({40, 140});

void BM_TreeScheduleMalleable(benchmark::State& state) {
  const int joins = static_cast<int>(state.range(0));
  ExperimentConfig config = ConfigFor(joins, 64);
  auto artifacts = PrepareQuery(config, 0);
  if (!artifacts.ok()) {
    state.SkipWithError("query preparation failed");
    return;
  }
  const OverlapUsageModel usage(config.overlap);
  TreeScheduleOptions options;
  options.policy = ParallelizationPolicy::kMalleable;
  for (auto _ : state) {
    auto result = TreeSchedule(artifacts->op_tree, artifacts->task_tree,
                               artifacts->costs, config.cost, config.machine,
                               usage, options);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_TreeScheduleMalleable)->Arg(10)->Arg(20)->Arg(40);

void BM_SynchronousBaseline(benchmark::State& state) {
  const int joins = static_cast<int>(state.range(0));
  ExperimentConfig config = ConfigFor(joins, 64);
  auto artifacts = PrepareQuery(config, 0);
  if (!artifacts.ok()) {
    state.SkipWithError("query preparation failed");
    return;
  }
  const OverlapUsageModel usage(config.overlap);
  for (auto _ : state) {
    auto result = RunScheduler(SchedulerKind::kSynchronous,
                               &artifacts.value(), config);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_SynchronousBaseline)->Arg(10)->Arg(20)->Arg(40);

void BM_OperatorScheduleOnly(benchmark::State& state) {
  const int m = static_cast<int>(state.range(0));
  const int sites = static_cast<int>(state.range(1));
  const OverlapUsageModel usage(0.5);
  const CostParams params;
  std::vector<ParallelizedOp> ops;
  for (int i = 0; i < m; ++i) {
    OperatorCost cost;
    cost.op_id = i;
    cost.processing =
        WorkVector({500.0 + 13.0 * (i % 7), 400.0 + 29.0 * (i % 5), 0.0});
    cost.data_bytes = 30000.0 * (1 + i % 4);
    auto op = ParallelizeFloating(cost, params, usage, 0.7, sites);
    if (!op.ok()) {
      state.SkipWithError("parallelization failed");
      return;
    }
    ops.push_back(std::move(op).value());
  }
  for (auto _ : state) {
    auto schedule = OperatorSchedule(ops, sites, 3);
    benchmark::DoNotOptimize(schedule);
  }
  state.SetLabel("M=" + std::to_string(m) + " P=" + std::to_string(sites));
}
BENCHMARK(BM_OperatorScheduleOnly)
    ->Args({16, 32})
    ->Args({64, 32})
    ->Args({256, 32})
    ->Args({64, 8})
    ->Args({64, 128});

// Batch scheduling engine throughput: one batch of `range(1)` generated
// queries per iteration on `range(0)` worker threads. items_per_second is
// queries/sec; divide across thread counts for the speedup vs. 1 thread.
void BM_BatchSchedule(benchmark::State& state, bool use_cache) {
  const int threads = static_cast<int>(state.range(0));
  const int queries = static_cast<int>(state.range(1));
  BatchSchedulerOptions options;
  options.num_threads = threads;
  options.overlap_eps = 0.5;
  options.tree.granularity = 0.7;
  options.use_cost_cache = use_cache;
  WorkloadParams workload;
  workload.num_joins = 10;
  CostParams params;
  MachineConfig machine;
  machine.num_sites = 32;
  BatchScheduler engine(params, machine, options);
  int failed = 0;
  for (auto _ : state) {
    BatchOutput output = engine.ScheduleGenerated(workload, 9607, queries);
    failed += queries - output.NumOk();
    benchmark::DoNotOptimize(output);
  }
  if (failed > 0) {
    state.SkipWithError("batch items failed");
    return;
  }
  state.SetItemsProcessed(state.iterations() * queries);
  state.SetLabel("K=" + std::to_string(threads) +
                 " Q=" + std::to_string(queries) +
                 (use_cache ? " cache" : " nocache"));
}

void BM_BatchScheduleCached(benchmark::State& state) {
  BM_BatchSchedule(state, /*use_cache=*/true);
}
void BM_BatchScheduleNoCache(benchmark::State& state) {
  BM_BatchSchedule(state, /*use_cache=*/false);
}

BENCHMARK(BM_BatchScheduleCached)
    ->Args({1, 1000})
    ->Args({2, 1000})
    ->Args({4, 1000})
    ->Args({8, 1000})
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_BatchScheduleNoCache)
    ->Args({1, 1000})
    ->Args({8, 1000})
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace mrs
