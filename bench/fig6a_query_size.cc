// Figure 6(a): effect of query size (number of joins) on the average
// response times of TREESCHEDULE and SYNCHRONOUS for two system sizes
// (20 and 80 sites). Paper settings: J in {10..50}, f = 0.7, eps = 0.5,
// 20 random plans per query size.

#include <cstdio>

#include "bench_common.h"
#include "common/str_util.h"
#include "common/table_printer.h"

int main(int argc, char** argv) {
  using namespace mrs;
  ExperimentConfig config = bench::DefaultConfig();
  config.granularity = 0.7;
  config.overlap = 0.5;
  if (bench::QuickMode(argc, argv)) {
    config.queries_per_point = 5;
  }
  bench::PrintHeader("fig6a_query_size: response time vs number of joins",
                     "Figure 6(a)", config);

  const std::vector<int> query_sizes = {10, 20, 30, 40, 50};
  const std::vector<int> site_counts = {20, 80};

  TablePrinter table(
      "Average response time (seconds), f=0.7, eps=0.5");
  std::vector<std::string> header = {"joins"};
  for (int p : site_counts) {
    header.push_back(StrFormat("TREE(P=%d)", p));
    header.push_back(StrFormat("SYNC(P=%d)", p));
    header.push_back(StrFormat("ratio(P=%d)", p));
  }
  table.SetHeader(header);

  for (int joins : query_sizes) {
    config.workload.num_joins = joins;
    std::vector<std::string> row = {StrFormat("%d", joins)};
    for (int p : site_counts) {
      config.machine.num_sites = p;
      auto stats = MeasureSchedulers(
          {SchedulerKind::kTreeSchedule, SchedulerKind::kSynchronous},
          config);
      if (!stats.ok()) {
        std::printf("error: %s\n", stats.status().ToString().c_str());
        return 1;
      }
      row.push_back(StrFormat("%.2f", (*stats)[0].mean() / 1000.0));
      row.push_back(StrFormat("%.2f", (*stats)[1].mean() / 1000.0));
      row.push_back(
          StrFormat("%.2f", (*stats)[1].mean() / (*stats)[0].mean()));
    }
    table.AddRow(row);
  }
  table.Print();
  std::printf("\nCSV:\n%s", table.ToCsv().c_str());
  std::printf(
      "\nExpected shape (paper): for a given system size, the relative\n"
      "improvement of TREESCHEDULE over SYNCHRONOUS (the ratio columns)\n"
      "increases monotonically with query size.\n");
  return 0;
}
