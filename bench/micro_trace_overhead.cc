// Tracing overhead bench: pins the "zero-cost-when-null" contract of
// exec/trace.h. Every instrumentation site in TreeSchedule is a branch on
// a nullable TraceSink*; this bench measures the full pipeline
//
//   (a) with tracing disabled (null sink) — the production default,
//   (b) with tracing enabled on a counting clock (no clock syscalls), and
//   (c) with tracing enabled on the wall clock,
//
// in interleaved trials so drift cancels. (b) minus (a) bounds the whole
// instrumentation cost from above — span construction, attribute
// formatting, the lot — so the disabled path (a strict subset: just the
// branches) costs at most that. The PASS/FAIL line checks two things:
// the disabled path is reproducible to within the 2% budget (two
// independent interleaved disabled series agree), and the *fully enabled*
// counting-clock overhead stays within 25% (tracing is for debugging, but
// it must not distort what it measures beyond that).
//
// Usage: micro_trace_overhead [iters-per-trial] [trials]

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <vector>

#include "core/tree_schedule.h"
#include "exec/trace.h"
#include "workload/experiment.h"

namespace mrs {
namespace {

// Per-series estimator: the *minimum* trial. On a shared/virtualized
// box the median still carries preemption spikes (observed 5-12% swings
// between back-to-back identical series); the min of interleaved trials
// is the classic noise-robust stand-in for "true cost without
// interference", and it is what the 2% reproducibility budget is
// checked against.
double MinOf(const std::vector<double>& v) {
  return v.empty() ? 0.0 : *std::min_element(v.begin(), v.end());
}

int Run(int iters, int trials) {
  ExperimentConfig config;
  config.workload.num_joins = 20;
  config.machine.num_sites = 32;
  config.granularity = 0.7;
  config.overlap = 0.5;
  auto artifacts = PrepareQuery(config, 0);
  if (!artifacts.ok()) {
    std::fprintf(stderr, "query preparation failed: %s\n",
                 artifacts.status().ToString().c_str());
    return 1;
  }
  const OverlapUsageModel usage(config.overlap);
  TreeScheduleOptions options;
  options.granularity = config.granularity;

  double checksum = 0.0;
  auto run_once = [&](TraceSink* trace) {
    options.trace = trace;
    auto result = TreeSchedule(artifacts->op_tree, artifacts->task_tree,
                               artifacts->costs, config.cost, config.machine,
                               usage, options);
    if (result.ok()) checksum += result->response_time;
  };
  auto time_batch = [&](TraceSink* (*make)(void*), void* arg) {
    const auto start = std::chrono::steady_clock::now();
    for (int i = 0; i < iters; ++i) run_once(make(arg));
    return std::chrono::duration<double, std::micro>(
               std::chrono::steady_clock::now() - start)
               .count() /
           static_cast<double>(iters);
  };
  auto null_sink = [](void*) -> TraceSink* { return nullptr; };
  // A fresh trace per call, as the batch engine allocates one per item.
  std::unique_ptr<ScheduleTrace> slot;
  auto counting_sink = [](void* s) -> TraceSink* {
    auto* holder = static_cast<std::unique_ptr<ScheduleTrace>*>(s);
    *holder =
        std::make_unique<ScheduleTrace>(ScheduleTrace::CountingClock());
    return holder->get();
  };
  auto wall_sink = [](void* s) -> TraceSink* {
    auto* holder = static_cast<std::unique_ptr<ScheduleTrace>*>(s);
    *holder = std::make_unique<ScheduleTrace>();
    return holder->get();
  };

  // Warmup.
  for (int i = 0; i < iters; ++i) run_once(nullptr);
  for (int i = 0; i < iters; ++i) run_once(counting_sink(&slot));

  std::vector<double> disabled_a;
  std::vector<double> disabled_b;
  std::vector<double> counting;
  std::vector<double> wall;
  for (int t = 0; t < trials; ++t) {
    disabled_a.push_back(time_batch(null_sink, nullptr));
    counting.push_back(time_batch(counting_sink, &slot));
    disabled_b.push_back(time_batch(null_sink, nullptr));
    wall.push_back(time_batch(wall_sink, &slot));
  }

  const double d_a = MinOf(disabled_a);
  const double d_b = MinOf(disabled_b);
  const double d = std::min(d_a, d_b);
  const double c = MinOf(counting);
  const double w = MinOf(wall);
  const double disabled_delta_pct = 100.0 * std::fabs(d_a - d_b) / d;
  const double counting_pct = 100.0 * (c - d) / d;
  const double wall_pct = 100.0 * (w - d) / d;

  std::printf("# tracing overhead, J=%d P=%d, %d iters x %d trials "
              "(checksum %.3e)\n",
              config.workload.num_joins, config.machine.num_sites, iters,
              trials, checksum);
  std::printf("mode,us_per_schedule,overhead_pct\n");
  std::printf("disabled,%.3f,%.2f\n", d, disabled_delta_pct);
  std::printf("enabled_counting_clock,%.3f,%.2f\n", c, counting_pct);
  std::printf("enabled_wall_clock,%.3f,%.2f\n", w, wall_pct);

  const bool disabled_ok = disabled_delta_pct < 2.0;
  const bool enabled_ok = counting_pct < 25.0;
  std::printf("%s: disabled-path delta %.2f%% (budget 2%%), "
              "enabled instrumentation bound %.2f%% (budget 25%%)\n",
              disabled_ok && enabled_ok ? "PASS" : "FAIL",
              disabled_delta_pct, counting_pct);
  return disabled_ok && enabled_ok ? 0 : 1;
}

}  // namespace
}  // namespace mrs

int main(int argc, char** argv) {
  // 21 interleaved trials keep the min-of-series estimator stable on
  // shared/virtualized hardware (~25 s total); fewer trials re-admit
  // scheduler noise into the 2% reproducibility check.
  int iters = argc > 1 ? std::atoi(argv[1]) : 300;
  int trials = argc > 2 ? std::atoi(argv[2]) : 21;
  if (iters < 1) iters = 1;
  if (trials < 1) trials = 1;
  return mrs::Run(iters, trials);
}
