// Online scheduling service throughput bench: drives the full server
// stack — framing, in-process transport, plan-text parsing, admission,
// residual-capacity placement — with a Poisson arrival stream in virtual
// time, and reports wall-clock request throughput plus the virtual-time
// queueing behaviour (admitted/sec, p50/p95 queue wait and makespan).
//
// Prints one JSON object on stdout (stable schema, consumed by
// scripts/run_benches.sh into BENCH_online.json).
//
// Usage: micro_online_throughput [queries] [mean-interarrival-ms] [mpl]

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "common/str_util.h"
#include "io/plan_text.h"
#include "server/sched_client.h"
#include "server/sched_server.h"
#include "server/sched_service.h"
#include "workload/generator.h"

namespace mrs {
namespace {

int Run(int queries, double mean_interarrival_ms, int mpl) {
  WorkloadParams wp;
  wp.num_joins = 4;
  wp.min_tuples = 1'000;
  wp.max_tuples = 50'000;
  Rng rng(0x9e3779b97f4a7c15ull);

  // Pre-render the request payloads so generation cost stays out of the
  // measured loop.
  std::vector<std::string> requests;
  requests.reserve(static_cast<size_t>(queries));
  double arrival = 0.0;
  for (int q = 0; q < queries; ++q) {
    auto gen = GenerateQuery(wp, &rng);
    if (!gen.ok()) {
      std::fprintf(stderr, "generation failed: %s\n",
                   gen.status().ToString().c_str());
      return 1;
    }
    auto text = WritePlanText(*gen->catalog, *gen->plan);
    if (!text.ok()) {
      std::fprintf(stderr, "plan render failed: %s\n",
                   text.status().ToString().c_str());
      return 1;
    }
    // Poisson arrivals: exponential inter-arrival times.
    arrival += -std::log(1.0 - rng.UniformDouble()) * mean_interarrival_ms;
    requests.push_back(StrFormat("@arrival %.6f\n", arrival) + text.value());
  }

  MetricsRegistry metrics;
  SchedServiceOptions options;
  options.online.metrics = &metrics;
  options.online.admission.max_in_flight = mpl;
  options.online.admission.default_timeout_ms = 20.0 * mean_interarrival_ms;
  SchedService service(options);
  SchedServer server(&service);

  auto [client_end, server_end] = CreateInProcessPipe();
  std::thread server_thread([&server, conn = server_end.get()] {
    server.ServeConnection(conn);
  });
  SchedClient client(std::move(client_end));

  int ok = 0, failed = 0;
  const auto wall_start = std::chrono::steady_clock::now();
  for (const std::string& request : requests) {
    auto response = client.Call(request);
    if (response.ok() &&
        response.value().find("\"status\":\"ok\"") != std::string::npos) {
      ++ok;
    } else if (!response.ok()) {
      ++failed;
    }
  }
  const double wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    wall_start)
          .count();

  client.Close();
  server_thread.join();
  server.Shutdown();
  Status drained = service.scheduler()->Drain();
  if (!drained.ok() || failed != 0) {
    std::fprintf(stderr, "bench failed: %d transport errors, drain %s\n",
                 failed, drained.ToString().c_str());
    return 1;
  }
  const double horizon_ms = service.scheduler()->now();

  const MetricsSnapshot snap = metrics.Snapshot();
  const uint64_t admitted = snap.CounterValue("online.admitted");
  const uint64_t rejected = snap.CounterValue("online.rejected");
  const uint64_t timeout = snap.CounterValue("online.timeout");
  HistogramSnapshot queue_wait, makespan;
  for (const HistogramSnapshot& h : snap.histograms) {
    if (h.name == "online.queue_wait_ms") queue_wait = h;
    if (h.name == "online.makespan_ms") makespan = h;
  }

  std::printf(
      "{\"bench\":\"micro_online_throughput\",\"version\":1,"
      "\"queries\":%d,\"mean_interarrival_ms\":%.3f,\"mpl\":%d,"
      "\"wall_seconds\":%.6f,\"requests_per_sec\":%.1f,"
      "\"admitted\":%llu,\"rejected\":%llu,\"timeout\":%llu,"
      "\"virtual_horizon_ms\":%.3f,\"admitted_per_virtual_sec\":%.2f,"
      "\"queue_wait_ms\":{\"p50\":%.3f,\"p95\":%.3f,\"max\":%.3f},"
      "\"makespan_ms\":{\"p50\":%.3f,\"p95\":%.3f,\"max\":%.3f}}\n",
      queries, mean_interarrival_ms, mpl, wall_seconds,
      wall_seconds > 0 ? static_cast<double>(queries) / wall_seconds : 0.0,
      static_cast<unsigned long long>(admitted),
      static_cast<unsigned long long>(rejected),
      static_cast<unsigned long long>(timeout), horizon_ms,
      horizon_ms > 0 ? 1000.0 * static_cast<double>(admitted) / horizon_ms
                     : 0.0,
      queue_wait.p50, queue_wait.p95, queue_wait.max, makespan.p50,
      makespan.p95, makespan.max);
  return 0;
}

}  // namespace
}  // namespace mrs

int main(int argc, char** argv) {
  int queries = argc > 1 ? std::atoi(argv[1]) : 60;
  double mean = argc > 2 ? std::atof(argv[2]) : 30.0;
  int mpl = argc > 3 ? std::atoi(argv[3]) : 4;
  if (queries <= 0 || mean <= 0 || mpl <= 0) {
    std::fprintf(stderr,
                 "usage: %s [queries>0] [mean-interarrival-ms>0] [mpl>0]\n",
                 argv[0]);
    return 2;
  }
  return mrs::Run(queries, mean, mpl);
}
