// Online scheduling service throughput bench: drives the full server
// stack — framing, in-process transport, plan-text parsing, admission,
// residual-capacity placement — with a Poisson arrival stream in virtual
// time, and reports wall-clock request throughput plus the virtual-time
// queueing behaviour (admitted/sec, p50/p95 queue wait and makespan).
//
// Prints one JSON object on stdout (stable schema, consumed by
// scripts/run_benches.sh into BENCH_online.json).
//
// Usage: micro_online_throughput [queries] [mean-interarrival-ms] [mpl]
//
// Connection-scaling mode (real TCP; one JSON line per run, collected by
// scripts/run_benches.sh into BENCH_server.json): holds N idle
// connections against the chosen front-end engine while timing requests
// on one active connection — the "can one replica hold 100k sockets
// without hurting p99" axis of ROADMAP item 3.
//
// Usage: micro_online_throughput --connections=N [--server=reactor|threaded]
//                                [--requests=R]

#include <sys/resource.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/metrics.h"
#include "common/rng.h"
#include "common/str_util.h"
#include "io/plan_text.h"
#include "server/sched_client.h"
#include "server/sched_server.h"
#include "server/sched_service.h"
#include "server/transport.h"
#include "workload/generator.h"

namespace mrs {
namespace {

int Run(int queries, double mean_interarrival_ms, int mpl) {
  WorkloadParams wp;
  wp.num_joins = 4;
  wp.min_tuples = 1'000;
  wp.max_tuples = 50'000;
  Rng rng(0x9e3779b97f4a7c15ull);

  // Pre-render the request payloads so generation cost stays out of the
  // measured loop.
  std::vector<std::string> requests;
  requests.reserve(static_cast<size_t>(queries));
  double arrival = 0.0;
  for (int q = 0; q < queries; ++q) {
    auto gen = GenerateQuery(wp, &rng);
    if (!gen.ok()) {
      std::fprintf(stderr, "generation failed: %s\n",
                   gen.status().ToString().c_str());
      return 1;
    }
    auto text = WritePlanText(*gen->catalog, *gen->plan);
    if (!text.ok()) {
      std::fprintf(stderr, "plan render failed: %s\n",
                   text.status().ToString().c_str());
      return 1;
    }
    // Poisson arrivals: exponential inter-arrival times.
    arrival += -std::log(1.0 - rng.UniformDouble()) * mean_interarrival_ms;
    requests.push_back(StrFormat("@arrival %.6f\n", arrival) + text.value());
  }

  MetricsRegistry metrics;
  SchedServiceOptions options;
  options.online.metrics = &metrics;
  options.online.admission.max_in_flight = mpl;
  options.online.admission.default_timeout_ms = 20.0 * mean_interarrival_ms;
  SchedService service(options);
  SchedServer server(&service);

  auto [client_end, server_end] = CreateInProcessPipe();
  std::thread server_thread([&server, conn = server_end.get()] {
    server.ServeConnection(conn);
  });
  SchedClient client(std::move(client_end));

  int ok = 0, failed = 0;
  const auto wall_start = std::chrono::steady_clock::now();
  for (const std::string& request : requests) {
    auto response = client.Call(request);
    if (response.ok() &&
        response.value().find("\"status\":\"ok\"") != std::string::npos) {
      ++ok;
    } else if (!response.ok()) {
      ++failed;
    }
  }
  const double wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    wall_start)
          .count();

  client.Close();
  server_thread.join();
  server.Shutdown();
  Status drained = service.scheduler()->Drain();
  if (!drained.ok() || failed != 0) {
    std::fprintf(stderr, "bench failed: %d transport errors, drain %s\n",
                 failed, drained.ToString().c_str());
    return 1;
  }
  const double horizon_ms = service.scheduler()->now();

  const MetricsSnapshot snap = metrics.Snapshot();
  const uint64_t admitted = snap.CounterValue("online.admitted");
  const uint64_t rejected = snap.CounterValue("online.rejected");
  const uint64_t timeout = snap.CounterValue("online.timeout");
  HistogramSnapshot queue_wait, makespan;
  for (const HistogramSnapshot& h : snap.histograms) {
    if (h.name == "online.queue_wait_ms") queue_wait = h;
    if (h.name == "online.makespan_ms") makespan = h;
  }

  std::printf(
      "{\"bench\":\"micro_online_throughput\",\"version\":1,"
      "\"queries\":%d,\"mean_interarrival_ms\":%.3f,\"mpl\":%d,"
      "\"wall_seconds\":%.6f,\"requests_per_sec\":%.1f,"
      "\"admitted\":%llu,\"rejected\":%llu,\"timeout\":%llu,"
      "\"virtual_horizon_ms\":%.3f,\"admitted_per_virtual_sec\":%.2f,"
      "\"queue_wait_ms\":{\"p50\":%.3f,\"p95\":%.3f,\"max\":%.3f},"
      "\"makespan_ms\":{\"p50\":%.3f,\"p95\":%.3f,\"max\":%.3f}}\n",
      queries, mean_interarrival_ms, mpl, wall_seconds,
      wall_seconds > 0 ? static_cast<double>(queries) / wall_seconds : 0.0,
      static_cast<unsigned long long>(admitted),
      static_cast<unsigned long long>(rejected),
      static_cast<unsigned long long>(timeout), horizon_ms,
      horizon_ms > 0 ? 1000.0 * static_cast<double>(admitted) / horizon_ms
                     : 0.0,
      queue_wait.p50, queue_wait.p95, queue_wait.max, makespan.p50,
      makespan.p95, makespan.max);
  return 0;
}

/// Resident set size of this process in bytes (VmRSS; both ends of every
/// loopback connection live here, so the number covers server + harness).
int64_t ReadRssBytes() {
  std::ifstream status("/proc/self/status");
  std::string line;
  while (std::getline(status, line)) {
    if (line.rfind("VmRSS:", 0) == 0) {
      return std::atoll(line.c_str() + 6) * 1024;
    }
  }
  return -1;
}

/// Raises RLIMIT_NOFILE so `connections` loopback pairs (two fds each,
/// both in this process) fit; returns the usable soft limit.
rlim_t RaiseFdLimit(int connections) {
  rlimit lim{};
  ::getrlimit(RLIMIT_NOFILE, &lim);
  const rlim_t wanted = static_cast<rlim_t>(connections) * 2 + 128;
  if (lim.rlim_cur < wanted) {
    rlimit raised = lim;
    raised.rlim_cur = wanted;
    if (raised.rlim_max != RLIM_INFINITY && raised.rlim_max < wanted) {
      raised.rlim_max = wanted;  // needs CAP_SYS_RESOURCE; harmless to try
    }
    if (::setrlimit(RLIMIT_NOFILE, &raised) != 0) {
      raised.rlim_max = lim.rlim_max;
      raised.rlim_cur = std::min(wanted, lim.rlim_max);
      ::setrlimit(RLIMIT_NOFILE, &raised);
    }
    ::getrlimit(RLIMIT_NOFILE, &lim);
  }
  return lim.rlim_cur;
}

/// Helper-process mode (--hold-connections): opens `count` connections to
/// `port`, reports each connect's latency as a "C <ms>" line plus a final
/// "DONE <n>" on stdout, then holds every connection open until stdin
/// reaches EOF. Client-side fds live in these helpers so the parent's
/// RLIMIT_NOFILE is spent entirely on server-side sockets — the container
/// caps the fd hard limit (no CAP_SYS_RESOURCE), and both ends of a
/// loopback pair would otherwise share it.
int RunHold(int port, int count) {
  RaiseFdLimit(count);
  std::vector<std::unique_ptr<Connection>> held;
  held.reserve(static_cast<size_t>(count));
  for (int i = 0; i < count; ++i) {
    const auto t0 = std::chrono::steady_clock::now();
    auto conn = ConnectTcp("127.0.0.1", port);
    if (!conn.ok()) break;
    std::printf("C %.6f\n", std::chrono::duration<double, std::milli>(
                                std::chrono::steady_clock::now() - t0)
                                .count());
    held.push_back(std::move(conn).value());
  }
  std::printf("DONE %zu\n", held.size());
  std::fflush(stdout);
  char buf[64];
  while (std::fgets(buf, sizeof(buf), stdin) != nullptr) {
  }
  return 0;
}

struct HoldChild {
  pid_t pid = -1;
  int hold_fd = -1;   // write end; closing releases the connections
  FILE* stats = nullptr;
};

/// Spawns a helper holding `count` idle connections against `port`. The
/// exec args are rendered before fork(): the parent is multithreaded, so
/// the child keeps to async-signal-safe calls until execl.
bool SpawnHold(int port, int count, HoldChild* child) {
  const std::string port_arg = StrFormat("--hold-connections=%d", port);
  const std::string count_arg = StrFormat("--hold-count=%d", count);
  int to_child[2], from_child[2];
  if (::pipe(to_child) != 0) return false;
  if (::pipe(from_child) != 0) {
    ::close(to_child[0]);
    ::close(to_child[1]);
    return false;
  }
  const pid_t pid = ::fork();
  if (pid < 0) {
    ::close(to_child[0]);
    ::close(to_child[1]);
    ::close(from_child[0]);
    ::close(from_child[1]);
    return false;
  }
  if (pid == 0) {
    ::dup2(to_child[0], 0);
    ::dup2(from_child[1], 1);
    ::close(to_child[0]);
    ::close(to_child[1]);
    ::close(from_child[0]);
    ::close(from_child[1]);
    ::execl("/proc/self/exe", "micro_online_throughput", port_arg.c_str(),
            count_arg.c_str(), static_cast<char*>(nullptr));
    _exit(127);  // exec failed
  }
  ::close(to_child[0]);
  ::close(from_child[1]);
  child->pid = pid;
  child->hold_fd = to_child[1];
  child->stats = ::fdopen(from_child[0], "r");
  return child->stats != nullptr;
}

/// Connection-scaling axis: N idle connections held open while one active
/// connection runs `requests` scheduling round trips.
int RunConnections(bool reactor, int connections, int requests) {
  const rlim_t fd_limit = RaiseFdLimit(connections);
  // Parent budget: one server-side fd per connection plus slack for the
  // listener, epoll/eventfd, stats pipes, and stdio.
  const int usable =
      static_cast<int>(fd_limit > 256 ? fd_limit - 256 : fd_limit / 2);
  if (connections > usable) {
    std::fprintf(stderr,
                 "clamping --connections=%d to %d (RLIMIT_NOFILE %llu)\n",
                 connections, usable,
                 static_cast<unsigned long long>(fd_limit));
    connections = usable;
  }

  WorkloadParams wp;
  wp.num_joins = 4;
  wp.min_tuples = 1'000;
  wp.max_tuples = 50'000;
  Rng rng(0x9e3779b97f4a7c15ull);
  auto gen = GenerateQuery(wp, &rng);
  if (!gen.ok()) {
    std::fprintf(stderr, "generation failed: %s\n",
                 gen.status().ToString().c_str());
    return 1;
  }
  auto text = WritePlanText(*gen->catalog, *gen->plan);
  if (!text.ok()) return 1;

  MetricsRegistry metrics;
  SchedServiceOptions service_options;
  service_options.online.metrics = &metrics;
  SchedService service(service_options);
  SchedServerOptions server_options;
  server_options.reactor = reactor;
  server_options.metrics = &metrics;
  SchedServer server(&service, server_options);
  Status started = server.Start("127.0.0.1", 0);
  if (!started.ok()) {
    std::fprintf(stderr, "server start failed: %s\n",
                 started.ToString().c_str());
    return 1;
  }

  const int64_t rss_before = ReadRssBytes();
  Histogram connect_ms;
  // Small runs hold the client ends in-process (2 fds per connection);
  // larger runs spawn helper processes so the parent's fd budget is spent
  // on server-side sockets only (1 fd per connection).
  const int in_process_cap =
      static_cast<int>(fd_limit > 256 ? (fd_limit - 256) / 2 : 32);
  std::vector<std::unique_ptr<Connection>> idle;
  std::vector<HoldChild> children;
  size_t established = 0;
  const auto establish_start = std::chrono::steady_clock::now();
  if (connections <= in_process_cap) {
    idle.reserve(static_cast<size_t>(connections));
    for (int i = 0; i < connections; ++i) {
      const auto t0 = std::chrono::steady_clock::now();
      auto conn = ConnectTcp("127.0.0.1", server.port());
      if (!conn.ok()) {
        std::fprintf(stderr, "connect %d/%d failed: %s\n", i, connections,
                     conn.status().ToString().c_str());
        break;
      }
      connect_ms.Record(std::chrono::duration<double, std::milli>(
                            std::chrono::steady_clock::now() - t0)
                            .count());
      idle.push_back(std::move(conn).value());
    }
    established = idle.size();
  } else {
    constexpr int kPerChild = 5000;
    for (int remaining = connections; remaining > 0;
         remaining -= kPerChild) {
      HoldChild child;
      if (!SpawnHold(server.port(), std::min(remaining, kPerChild),
                     &child)) {
        std::fprintf(stderr, "failed to spawn hold helper\n");
        break;
      }
      children.push_back(child);
    }
    // Helpers connect concurrently; read each stats stream to completion
    // ("DONE <n>" terminates it) to learn how many stuck.
    for (const HoldChild& child : children) {
      char line[64];
      while (std::fgets(line, sizeof(line), child.stats) != nullptr) {
        if (std::strncmp(line, "C ", 2) == 0) {
          connect_ms.Record(std::atof(line + 2));
        } else if (std::strncmp(line, "DONE ", 5) == 0) {
          established += static_cast<size_t>(std::atoll(line + 5));
          break;
        }
      }
    }
  }
  const double establish_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    establish_start)
          .count();

  // Wait for the server side to have absorbed every connection (accepts
  // lag connects), so the request timings below really run against N
  // resident sockets.
  const auto settle_deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(60);
  while (true) {
    double server_conns = 0.0;
    for (const auto& [name, value] : metrics.Snapshot().gauges) {
      if (name == "server.connections") server_conns = value;
    }
    if (server_conns >= static_cast<double>(established)) break;
    if (std::chrono::steady_clock::now() > settle_deadline) {
      std::fprintf(stderr, "server absorbed only %.0f/%zu connections\n",
                   server_conns, established);
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }

  Histogram request_ms;
  auto active = SchedClient::ConnectTcp("127.0.0.1", server.port());
  if (!active.ok()) {
    std::fprintf(stderr, "active connect failed: %s\n",
                 active.status().ToString().c_str());
    return 1;
  }
  int ok = 0;
  for (int r = 0; r < requests; ++r) {
    // Arrivals far apart in virtual time: every request schedules onto an
    // idle machine, so the work per request is constant and the timing
    // isolates the front-end.
    const std::string request =
        StrFormat("@arrival %d\n", r * 1'000'000) + text.value();
    const auto t0 = std::chrono::steady_clock::now();
    auto response = active->Call(request);
    request_ms.Record(std::chrono::duration<double, std::milli>(
                          std::chrono::steady_clock::now() - t0)
                          .count());
    if (response.ok() &&
        response.value().find("\"status\":\"ok\"") != std::string::npos) {
      ++ok;
    }
  }
  const int64_t rss_after = ReadRssBytes();
  active->Close();

  const MetricsSnapshot snap = metrics.Snapshot();
  std::printf(
      "{\"bench\":\"micro_server_connections\",\"version\":1,"
      "\"server\":\"%s\",\"loop_threads\":%d,"
      "\"connections_requested\":%d,\"connections_established\":%zu,"
      "\"hold_processes\":%zu,\"establish_seconds\":%.3f,"
      "\"connect_ms\":{\"p50\":%.4f,\"p99\":%.4f,\"max\":%.4f},"
      "\"requests\":%d,\"requests_ok\":%d,"
      "\"request_ms\":{\"p50\":%.4f,\"p99\":%.4f,\"max\":%.4f},"
      "\"rss_before_bytes\":%lld,\"rss_bytes\":%lld,"
      "\"accept_errors\":%llu,\"fd_limit\":%llu}\n",
      reactor ? "reactor" : "threaded",
      reactor ? 1 : static_cast<int>(established), connections, established,
      children.size(), establish_seconds, connect_ms.ValueAtPercentile(0.5),
      connect_ms.ValueAtPercentile(0.99), connect_ms.max(), requests, ok,
      request_ms.ValueAtPercentile(0.5), request_ms.ValueAtPercentile(0.99),
      request_ms.max(), static_cast<long long>(rss_before),
      static_cast<long long>(rss_after),
      static_cast<unsigned long long>(
          snap.CounterValue("server.accept_errors")),
      static_cast<unsigned long long>(fd_limit));
  std::fflush(stdout);

  idle.clear();
  for (HoldChild& child : children) {
    ::close(child.hold_fd);  // stdin EOF tells the helper to release
    if (child.stats != nullptr) ::fclose(child.stats);
  }
  for (HoldChild& child : children) {
    int wstatus = 0;
    ::waitpid(child.pid, &wstatus, 0);
  }
  server.Shutdown();
  return ok == requests ? 0 : 1;
}

}  // namespace
}  // namespace mrs

int main(int argc, char** argv) {
  int connections = -1;
  bool reactor = true;
  int requests = 200;
  bool flag_mode = false;
  int hold_port = -1, hold_count = -1;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--hold-connections=", 19) == 0) {
      hold_port = std::atoi(argv[i] + 19);
    } else if (std::strncmp(argv[i], "--hold-count=", 13) == 0) {
      hold_count = std::atoi(argv[i] + 13);
    } else if (std::strncmp(argv[i], "--connections=", 14) == 0) {
      connections = std::atoi(argv[i] + 14);
      flag_mode = true;
    } else if (std::strncmp(argv[i], "--server=", 9) == 0) {
      flag_mode = true;
      if (std::strcmp(argv[i] + 9, "reactor") == 0) {
        reactor = true;
      } else if (std::strcmp(argv[i] + 9, "threaded") == 0) {
        reactor = false;
      } else {
        std::fprintf(stderr, "--server must be reactor or threaded\n");
        return 2;
      }
    } else if (std::strncmp(argv[i], "--requests=", 11) == 0) {
      requests = std::atoi(argv[i] + 11);
      flag_mode = true;
    }
  }
  if (hold_port > 0 && hold_count > 0) {
    return mrs::RunHold(hold_port, hold_count);
  }
  if (flag_mode) {
    if (connections < 0 || requests <= 0) {
      std::fprintf(stderr,
                   "usage: %s --connections=N [--server=reactor|threaded] "
                   "[--requests=R]\n",
                   argv[0]);
      return 2;
    }
    return mrs::RunConnections(reactor, connections, requests);
  }
  int queries = argc > 1 ? std::atoi(argv[1]) : 60;
  double mean = argc > 2 ? std::atof(argv[2]) : 30.0;
  int mpl = argc > 3 ? std::atoi(argv[3]) : 4;
  if (queries <= 0 || mean <= 0 || mpl <= 0) {
    std::fprintf(stderr,
                 "usage: %s [queries>0] [mean-interarrival-ms>0] [mpl>0]\n",
                 argv[0]);
    return 2;
  }
  return mrs::Run(queries, mean, mpl);
}
