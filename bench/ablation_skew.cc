// Ablation A12: execution skew — relaxing experimental assumption EA1
// ("no execution skew"). The scheduler plans with perfectly even clone
// splits; reality delivers Zipf-skewed ones. This bench measures how the
// realized response degrades with the skew parameter theta, for both
// schedulers, on the paper's workload.

#include <cstdio>

#include "bench_common.h"
#include "common/stats.h"
#include "common/str_util.h"
#include "common/table_printer.h"
#include "core/tree_schedule.h"
#include "workload/skew.h"

int main(int argc, char** argv) {
  using namespace mrs;
  ExperimentConfig config = bench::DefaultConfig();
  config.workload.num_joins = 20;
  config.machine.num_sites = 40;
  if (bench::QuickMode(argc, argv)) {
    config.queries_per_point = 5;
  }
  bench::PrintHeader("ablation_skew: relaxing assumption EA1 (no skew)",
                     "experimental assumption EA1", config);

  const OverlapUsageModel usage(config.overlap);
  TreeScheduleOptions options;
  options.granularity = config.granularity;

  TablePrinter table(
      "Realized/planned response ratio under Zipf(theta) clone skew");
  table.SetHeader({"theta", "mean", "p95", "max"});
  for (double theta : {0.0, 0.25, 0.5, 1.0, 1.5}) {
    RunningStat ratio;
    std::vector<double> ratios;
    for (int q = 0; q < config.queries_per_point; ++q) {
      auto artifacts = PrepareQuery(config, q);
      if (!artifacts.ok()) return 1;
      auto plan = TreeSchedule(artifacts->op_tree, artifacts->task_tree,
                               artifacts->costs, config.cost, config.machine,
                               usage, options);
      if (!plan.ok()) return 1;
      for (uint64_t trial = 0; trial < 3; ++trial) {
        SkewParams skew;
        skew.theta = theta;
        skew.seed = config.seed + trial;
        auto realized = SkewedResponseTime(*plan, skew, usage);
        if (!realized.ok()) return 1;
        const double r = realized.value() / plan->response_time;
        ratio.Add(r);
        ratios.push_back(r);
      }
    }
    table.AddRow({StrFormat("%.2f", theta), StrFormat("%.3f", ratio.mean()),
                  StrFormat("%.3f", Percentile(ratios, 0.95)),
                  StrFormat("%.3f", ratio.max())});
  }
  table.Print();
  std::printf(
      "\nExpected shape: theta=0 reproduces the analytic response exactly\n"
      "(assumption EA1); realized response degrades smoothly with skew.\n"
      "Zipf weights are harsh — at theta=1 the hottest of N clones gets\n"
      "~N/ln(N) times the mean share, so multi-x degradation there is the\n"
      "model behaving correctly, not a scheduler defect. The analytic\n"
      "makespans of Section 6 carry this error bar wherever EA1 fails.\n");
  return 0;
}
