// Ablation A6: agreement between the analytic cost model (eq. (2)/(3))
// and the operational fluid simulator, plus the price of a naive
// uniform-time-slicing engine relative to the model-optimal discipline.

#include <cmath>
#include <cstdio>

#include "bench_common.h"
#include "common/stats.h"
#include "common/str_util.h"
#include "common/table_printer.h"
#include "core/tree_schedule.h"
#include "exec/fluid_simulator.h"

int main(int argc, char** argv) {
  using namespace mrs;
  ExperimentConfig config = bench::DefaultConfig();
  config.queries_per_point = bench::QuickMode(argc, argv) ? 5 : 20;
  bench::PrintHeader(
      "sim_agreement: analytic response time vs fluid simulation",
      "operational validation of the Section 5.2 execution model", config);

  TablePrinter table("Per-query agreement over random 20-join plans");
  table.SetHeader({"sites", "max |analytic-sim|/analytic",
                   "naive/optimal mean", "naive/optimal max"});

  config.workload.num_joins = 20;
  for (int sites : {10, 40, 140}) {
    config.machine.num_sites = sites;
    double max_rel_err = 0.0;
    RunningStat naive_ratio;
    for (int q = 0; q < config.queries_per_point; ++q) {
      auto artifacts = PrepareQuery(config, q);
      if (!artifacts.ok()) return 1;
      const OverlapUsageModel usage(config.overlap);
      TreeScheduleOptions options;
      options.granularity = config.granularity;
      auto plan = TreeSchedule(artifacts->op_tree, artifacts->task_tree,
                               artifacts->costs, config.cost, config.machine,
                               usage, options);
      if (!plan.ok()) return 1;
      FluidSimulator optimal(usage, SharingPolicy::kOptimalStretch);
      FluidSimulator naive(usage, SharingPolicy::kUniformSlowdown);
      auto fast = optimal.Simulate(*plan);
      auto slow = naive.Simulate(*plan);
      if (!fast.ok() || !slow.ok()) return 1;
      max_rel_err = std::max(
          max_rel_err, std::fabs(fast->response_time - plan->response_time) /
                           plan->response_time);
      naive_ratio.Add(slow->response_time / fast->response_time);
    }
    table.AddRow({StrFormat("%d", sites), StrFormat("%.2e", max_rel_err),
                  StrFormat("%.3f", naive_ratio.mean()),
                  StrFormat("%.3f", naive_ratio.max())});
  }
  table.Print();
  std::printf(
      "\nExpected shape: the optimal-stretch simulation reproduces the\n"
      "analytic eq. (3) response to floating-point precision (the model\n"
      "is operationally achievable under assumptions A2/A3); a naive\n"
      "round-robin engine pays a modest overhead, quantifying how much\n"
      "the model asks of the execution engine.\n");
  return 0;
}
