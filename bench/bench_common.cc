#include "bench_common.h"

#include <cstdio>
#include <cstring>

namespace mrs {
namespace bench {

void PrintHeader(const std::string& title, const std::string& paper_artifact,
                 const ExperimentConfig& config) {
  std::printf("==============================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("Reproduces: %s of Garofalakis & Ioannidis, SIGMOD 1996\n",
              paper_artifact.c_str());
  std::printf("==============================================================\n");
  std::printf("%s\n", config.cost.ToString().c_str());
  std::printf("Queries per point: %d (seed %llu)\n\n",
              config.queries_per_point,
              static_cast<unsigned long long>(config.seed));
}

ExperimentConfig DefaultConfig() {
  ExperimentConfig config;
  config.seed = 9607;
  config.queries_per_point = 20;
  config.workload.num_joins = 40;
  config.workload.min_tuples = 1'000;
  config.workload.max_tuples = 100'000;
  config.machine.num_sites = 80;
  config.granularity = 0.7;
  config.overlap = 0.5;
  return config;
}

bool QuickMode(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) return true;
  }
  return false;
}

}  // namespace bench
}  // namespace mrs
