// Figure 5(a): effect of the granularity parameter f on the average
// response time of TREESCHEDULE, vs. the f-independent SYNCHRONOUS
// baseline. Paper settings: 40-join queries, overlap eps = 0.3, system
// sizes 10..140 sites, f in 0.3..0.9, 20 random plans per point.

#include <cstdio>

#include "bench_common.h"
#include "common/table_printer.h"
#include "common/str_util.h"

int main(int argc, char** argv) {
  using namespace mrs;
  ExperimentConfig config = bench::DefaultConfig();
  config.workload.num_joins = 40;
  config.overlap = 0.3;
  if (bench::QuickMode(argc, argv)) {
    config.queries_per_point = 5;
  }
  bench::PrintHeader("fig5a_granularity: response time vs granularity f",
                     "Figure 5(a)", config);

  const std::vector<double> granularities = {0.3, 0.4, 0.5, 0.7, 0.9};
  const std::vector<int> site_counts = {10, 20, 40, 60, 80, 100, 120, 140};

  TablePrinter table(
      "Average response time (seconds), 40-join queries, eps=0.3");
  std::vector<std::string> header = {"sites"};
  for (double f : granularities) {
    header.push_back(StrFormat("TREE(f=%.1f)", f));
  }
  header.push_back("SYNCHRONOUS");
  table.SetHeader(header);

  for (int sites : site_counts) {
    config.machine.num_sites = sites;
    std::vector<std::string> row = {StrFormat("%d", sites)};
    for (double f : granularities) {
      config.granularity = f;
      auto stat =
          MeasureAverageResponse(SchedulerKind::kTreeSchedule, config);
      if (!stat.ok()) {
        std::printf("error: %s\n", stat.status().ToString().c_str());
        return 1;
      }
      row.push_back(StrFormat("%.2f", stat->mean() / 1000.0));
    }
    auto sync = MeasureAverageResponse(SchedulerKind::kSynchronous, config);
    if (!sync.ok()) return 1;
    row.push_back(StrFormat("%.2f", sync->mean() / 1000.0));
    table.AddRow(row);
  }
  table.Print();
  std::printf("\nCSV:\n%s", table.ToCsv().c_str());
  std::printf(
      "\nExpected shape (paper): small f over-restricts parallelism and\n"
      "response drops as f grows until the operator-parallelism cap binds;\n"
      "for sufficiently large f TREESCHEDULE beats SYNCHRONOUS across all\n"
      "system sizes, most visibly on small machines.\n");
  return 0;
}
