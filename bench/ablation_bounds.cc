// Ablation A1: empirical tightness of Theorem 5.1(a). For random small
// instances of independent parallelized operators, compare the
// OPERATORSCHEDULE makespan against the exact optimum (branch and bound)
// and report the observed performance-ratio distribution vs the proved
// (2d+1) worst case.

#include <cstdio>

#include "bench_common.h"
#include "common/rng.h"
#include "common/stats.h"
#include "common/str_util.h"
#include "common/table_printer.h"
#include "core/exhaustive.h"
#include "core/operator_schedule.h"
#include "test_support.h"

int main(int argc, char** argv) {
  using namespace mrs;
  const int trials = bench::QuickMode(argc, argv) ? 20 : 60;
  ExperimentConfig config = bench::DefaultConfig();
  bench::PrintHeader(
      "ablation_bounds: OPERATORSCHEDULE vs exact optimum (Theorem 5.1a)",
      "Theorem 5.1 (worst-case analysis), empirical counterpart", config);

  TablePrinter table("Observed performance ratio, list/optimal");
  table.SetHeader({"d", "bound 2d+1", "mean", "p95", "max", "optimal found"});

  for (int d : {1, 2, 3}) {
    OverlapUsageModel usage(0.5);
    Rng rng(static_cast<uint64_t>(1000 + d));
    RunningStat ratio;
    std::vector<double> ratios;
    int proven = 0;
    for (int t = 0; t < trials; ++t) {
      std::vector<ParallelizedOp> ops;
      const int m = 3 + static_cast<int>(rng.Index(3));
      for (int i = 0; i < m; ++i) {
        const int degree = 1 + static_cast<int>(rng.Index(2));
        std::vector<WorkVector> clones;
        for (int k = 0; k < degree; ++k) {
          WorkVector w(static_cast<size_t>(d));
          for (int r = 0; r < d; ++r) {
            w[static_cast<size_t>(r)] =
                rng.Bernoulli(0.3) ? rng.UniformDouble(5, 20)
                                   : rng.UniformDouble(0, 3);
          }
          clones.push_back(std::move(w));
        }
        ops.push_back(bench_support::MakeOp(i, std::move(clones), usage));
      }
      auto list = OperatorSchedule(ops, 3, d);
      auto exact = ExhaustiveOptimalMakespan(ops, 3, d);
      if (!list.ok() || !exact.ok() || exact->makespan <= 0) continue;
      if (exact->proven_optimal) ++proven;
      const double r = list->Makespan() / exact->makespan;
      ratio.Add(r);
      ratios.push_back(r);
    }
    table.AddRow({StrFormat("%d", d), StrFormat("%d", 2 * d + 1),
                  StrFormat("%.3f", ratio.mean()),
                  StrFormat("%.3f", Percentile(ratios, 0.95)),
                  StrFormat("%.3f", ratio.max()),
                  StrFormat("%d/%d", proven, trials)});
  }
  table.Print();
  std::printf(
      "\nExpected shape (paper §5.5/§6.2): the average ratio is very close\n"
      "to 1 — the analytical worst-case bounds are pessimistic relative to\n"
      "average behavior.\n");
  return 0;
}
