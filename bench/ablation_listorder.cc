// Ablation A3: why the paper's list scheduling rule looks the way it
// does. Compares the makespan of OPERATORSCHEDULE variants on the same
// workloads:
//   * list order: non-increasing l(w) (paper) vs increasing, input,
//     random;
//   * site choice: least-loaded (paper) vs first-allowable.

#include <cstdio>

#include "bench_common.h"
#include "common/rng.h"
#include "common/stats.h"
#include "common/str_util.h"
#include "common/table_printer.h"
#include "core/operator_schedule.h"
#include "test_support.h"

int main(int argc, char** argv) {
  using namespace mrs;
  const int trials = bench::QuickMode(argc, argv) ? 30 : 200;
  ExperimentConfig config = bench::DefaultConfig();
  bench::PrintHeader(
      "ablation_listorder: list-order and site-choice policies",
      "design choices behind Figure 3 (OPERATORSCHEDULE)", config);

  struct Variant {
    const char* name;
    OperatorScheduleOptions options;
  };
  std::vector<Variant> variants = {
      {"decreasing l(w) + least-loaded (paper)", {}},
      {"increasing l(w) + least-loaded",
       {ListOrder::kIncreasingLength, SiteChoice::kLeastLoaded, 0}},
      {"input order + least-loaded",
       {ListOrder::kInputOrder, SiteChoice::kLeastLoaded, 0}},
      {"random order + least-loaded",
       {ListOrder::kRandom, SiteChoice::kLeastLoaded, 17}},
      {"decreasing l(w) + first-allowable",
       {ListOrder::kDecreasingLength, SiteChoice::kFirstAllowable, 0}},
  };

  OverlapUsageModel usage(0.5);
  const int p = 8;
  const int d = 3;

  std::vector<RunningStat> stats(variants.size());
  Rng rng(2024);
  for (int t = 0; t < trials; ++t) {
    std::vector<ParallelizedOp> ops;
    const int m = 10 + static_cast<int>(rng.Index(20));
    for (int i = 0; i < m; ++i) {
      const int degree = 1 + static_cast<int>(rng.Index(4));
      std::vector<WorkVector> clones;
      for (int k = 0; k < degree; ++k) {
        WorkVector w(static_cast<size_t>(d));
        for (int r = 0; r < d; ++r) {
          w[static_cast<size_t>(r)] = rng.Bernoulli(0.25)
                                          ? rng.UniformDouble(10, 50)
                                          : rng.UniformDouble(0, 5);
        }
        clones.push_back(std::move(w));
      }
      ops.push_back(bench_support::MakeOp(i, std::move(clones), usage));
    }
    double baseline = 0.0;
    for (size_t v = 0; v < variants.size(); ++v) {
      auto s = OperatorSchedule(ops, p, d, variants[v].options);
      if (!s.ok()) return 1;
      if (v == 0) baseline = s->Makespan();
      stats[v].Add(s->Makespan() / baseline);
    }
  }

  TablePrinter table("Makespan relative to the paper's rule (lower=better)");
  table.SetHeader({"variant", "mean", "max"});
  for (size_t v = 0; v < variants.size(); ++v) {
    table.AddRow({variants[v].name, StrFormat("%.3f", stats[v].mean()),
                  StrFormat("%.3f", stats[v].max())});
  }
  table.Print();
  std::printf(
      "\nExpected shape: the paper's longest-first + least-loaded rule\n"
      "dominates; random/input orders lose moderately, first-allowable\n"
      "site choice loses badly (it ignores load balance entirely).\n");
  return 0;
}
