// Execution-backend microbenchmark: the cost of really running a schedule
// (partitioned hash joins / group-bys over generated data on the replay
// pool, exec/execute_backend.h) next to simulating it, and the cost plus
// quality of a full calibration pass (exec/calibrate.h).
//
// BM_ExecuteTree replays a generated plan's TREESCHEDULE on the execute
// backend, sweeping the per-operator row cap R and the replay pool size;
// the throughput counter is input rows executed per second. BM_SimulateTree
// pushes the same schedules through the fluid simulator backend for scale.
// BM_Calibrate runs the whole measure-and-fit loop over a small plan mix
// (tree + list schedules) and reports the resulting mean relative errors
// as counters — compare_bench.py --counters diffs them across runs. See
// scripts/run_benches.sh -> BENCH_exec.json.

#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "common/rng.h"
#include "core/list_schedule.h"
#include "core/tree_schedule.h"
#include "cost/cost_model.h"
#include "exec/calibrate.h"
#include "exec/exec_backend.h"
#include "exec/execute_backend.h"
#include "plan/operator_tree.h"
#include "plan/task_tree.h"
#include "resource/machine.h"
#include "resource/usage_model.h"
#include "workload/generator.h"

namespace mrs {
namespace {

constexpr uint64_t kBenchSeed = 20260808;
constexpr int kJoins = 4;
constexpr int kSites = 16;
constexpr int kDims = 3;

/// One generated plan scheduled both ways, with its exec specs. The task
/// tree points into the operator tree, so instances are built in place.
struct ExecBenchPlan {
  GeneratedQuery query;
  OperatorTree op_tree;
  TaskTree task_tree;
  std::vector<OperatorCost> costs;
  std::vector<ExecOpSpec> specs;
  TreeScheduleResult tree;
  Schedule list_schedule{1, 1};  // placeholder until Build()

  bool Build(const MachineConfig& machine, const OverlapUsageModel& usage,
             Rng* rng) {
    WorkloadParams workload;
    workload.num_joins = kJoins;
    workload.sort_probability = 0.2;
    auto generated = GenerateQuery(workload, rng);
    if (!generated.ok()) return false;
    query = std::move(generated).value();
    auto ops = OperatorTree::FromPlan(*query.plan);
    if (!ops.ok()) return false;
    op_tree = std::move(ops).value();
    auto tasks = TaskTree::FromOperatorTree(&op_tree);
    if (!tasks.ok()) return false;
    task_tree = std::move(tasks).value();
    CostModel model(CostParams{}, machine.dims, machine.dims - 2);
    auto costed = model.CostAll(op_tree);
    if (!costed.ok()) return false;
    costs = std::move(costed).value();
    specs = ExecOpSpecsFromTree(op_tree);
    auto scheduled = TreeSchedule(op_tree, task_tree, costs, CostParams{},
                                  machine, usage);
    if (!scheduled.ok()) return false;
    tree = std::move(scheduled).value();
    auto listed = ListSchedule(op_tree, task_tree, costs, CostParams{},
                               machine, usage);
    if (!listed.ok()) return false;
    list_schedule = std::move(listed).value().schedule;
    return true;
  }
};

std::vector<ExecBenchPlan> MakePlans(int count, const MachineConfig& machine,
                                     const OverlapUsageModel& usage) {
  std::vector<ExecBenchPlan> plans(count);
  Rng master(kBenchSeed);
  for (ExecBenchPlan& plan : plans) {
    Rng stream = master.Fork();
    if (!plan.Build(machine, usage, &stream)) {
      plans.clear();
      break;
    }
  }
  return plans;
}

ExecuteOptions BenchExecOptions(int64_t row_cap, int threads) {
  ExecuteOptions options;
  options.meter = ExecMeter::kDeterministic;
  options.max_rows_per_op = row_cap;
  options.threads = threads;
  return options;
}

void BM_ExecuteTree(benchmark::State& state) {
  const int64_t row_cap = state.range(0);
  const int threads = static_cast<int>(state.range(1));
  const MachineConfig machine = MachineConfig::WithDisks(kSites, kDims - 2);
  const OverlapUsageModel usage(0.5);
  const std::vector<ExecBenchPlan> plans = MakePlans(3, machine, usage);
  if (plans.empty()) {
    state.SkipWithError("plan generation failed");
    return;
  }
  int64_t rows = 0;
  for (auto _ : state) {
    for (const ExecBenchPlan& plan : plans) {
      ExecuteBackend backend(BenchExecOptions(row_cap, threads));
      auto runs = backend.RunTree(plan.tree, plan.specs);
      if (!runs.ok()) {
        state.SkipWithError("execution failed");
        return;
      }
      for (const ExecutionResult& run : *runs) {
        for (const CloneExecution& clone : run.clones) rows += clone.rows_in;
        benchmark::DoNotOptimize(run.digest);
      }
    }
  }
  state.SetItemsProcessed(rows);
  state.SetLabel("R=" + std::to_string(row_cap) +
                 " threads=" + std::to_string(threads));
}
BENCHMARK(BM_ExecuteTree)
    ->ArgsProduct({{2048, 8192}, {1, 2, 4}})
    ->Unit(benchmark::kMillisecond);

void BM_SimulateTree(benchmark::State& state) {
  const MachineConfig machine = MachineConfig::WithDisks(kSites, kDims - 2);
  const OverlapUsageModel usage(0.5);
  const std::vector<ExecBenchPlan> plans = MakePlans(3, machine, usage);
  if (plans.empty()) {
    state.SkipWithError("plan generation failed");
    return;
  }
  for (auto _ : state) {
    for (const ExecBenchPlan& plan : plans) {
      SimulateBackend backend(usage);
      auto runs = backend.RunTree(plan.tree, plan.specs);
      if (!runs.ok()) {
        state.SkipWithError("simulation failed");
        return;
      }
      benchmark::DoNotOptimize(runs->back().timeline.makespan);
    }
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(plans.size()));
}
BENCHMARK(BM_SimulateTree)->Unit(benchmark::kMillisecond);

// The full calibration loop: replay every plan (tree and list shapes),
// collect clone samples, fit the per-dimension scale, and evaluate both
// error metrics. Counters carry the model-quality side of the story.
void BM_Calibrate(benchmark::State& state) {
  const MachineConfig machine = MachineConfig::WithDisks(kSites, kDims - 2);
  const OverlapUsageModel usage(0.5);
  const std::vector<ExecBenchPlan> plans = MakePlans(3, machine, usage);
  if (plans.empty()) {
    state.SkipWithError("plan generation failed");
    return;
  }
  double unfitted = 0.0;
  double fitted = 0.0;
  for (auto _ : state) {
    Calibrator calibrator(machine.dims, usage, BenchExecOptions(4096, 2));
    for (size_t p = 0; p < plans.size(); ++p) {
      const std::string label = "plan" + std::to_string(p);
      if (!calibrator.AddTreePlan(label + "-tree", plans[p].tree,
                                  plans[p].specs)
               .ok() ||
          !calibrator
               .AddSchedule(label + "-list", plans[p].list_schedule,
                            plans[p].specs)
               .ok()) {
        state.SkipWithError("calibration failed");
        return;
      }
    }
    unfitted = calibrator.MeanRelativeError(/*fitted=*/false);
    fitted = calibrator.MeanRelativeError(/*fitted=*/true);
    benchmark::DoNotOptimize(fitted);
  }
  state.counters["mean_rel_error_unfitted"] = unfitted;
  state.counters["mean_rel_error_fitted"] = fitted;
}
BENCHMARK(BM_Calibrate)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace mrs
