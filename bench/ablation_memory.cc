// Ablation A8 (extension): the cost of non-preemptable memory. Sweeps
// per-site memory over the paper's workload and reports average response
// time, phase splits, and infeasibility rate — quantifying how far
// assumption A1 (no memory limits) is from a real machine.

#include <cstdio>

#include "bench_common.h"
#include "common/stats.h"
#include "common/str_util.h"
#include "common/table_printer.h"
#include "core/memory_aware.h"

int main(int argc, char** argv) {
  using namespace mrs;
  ExperimentConfig config = bench::DefaultConfig();
  config.workload.num_joins = 20;
  config.machine.num_sites = 20;
  if (bench::QuickMode(argc, argv)) {
    config.queries_per_point = 5;
  }
  bench::PrintHeader(
      "ablation_memory: relaxing assumption A1 (no memory limits)",
      "Section 8 extension: memory as a non-preemptable resource", config);

  const OverlapUsageModel usage(config.overlap);
  TreeScheduleOptions options;
  options.granularity = config.granularity;

  TablePrinter table(
      "20-join queries on 20 sites, varying per-site memory");
  table.SetHeader({"site memory", "avg response (s)", "avg splits",
                   "feasible", "avg peak residency"});
  for (double mb : {1024.0, 32.0, 16.0, 8.0, 4.0, 2.0}) {
    MemoryOptions memory;
    memory.site_memory_bytes = mb * 1024 * 1024;
    RunningStat response;
    RunningStat splits;
    RunningStat peak;
    int feasible = 0;
    for (int q = 0; q < config.queries_per_point; ++q) {
      auto artifacts = PrepareQuery(config, q);
      if (!artifacts.ok()) return 1;
      auto result = MemoryAwareTreeSchedule(
          artifacts->op_tree, artifacts->task_tree, artifacts->costs,
          config.cost, config.machine, usage, options, memory);
      if (!result.ok()) continue;
      ++feasible;
      response.Add(result->response_time);
      splits.Add(static_cast<double>(result->phase_splits));
      peak.Add(result->peak_site_memory);
    }
    table.AddRow(
        {StrFormat("%.0f MB", mb),
         feasible > 0 ? StrFormat("%.2f", response.mean() / 1000.0) : "-",
         feasible > 0 ? StrFormat("%.1f", splits.mean()) : "-",
         StrFormat("%d/%d", feasible, config.queries_per_point),
         feasible > 0 ? FormatBytes(peak.mean()) : "-"});
  }
  table.Print();
  std::printf(
      "\nExpected shape: ample memory reproduces plain TREESCHEDULE (zero\n"
      "splits); shrinking memory first leaves response untouched (degrees\n"
      "rise to spread tables), then adds synchronization subphases with a\n"
      "growing response penalty, then turns infeasible.\n");
  return 0;
}
