// Figure 6(b): average performance of TREESCHEDULE relative to OPTBOUND,
// a lower bound on the optimal CG_f execution. Paper settings: 20- and
// 40-join queries, f = 0.7, eps = 0.5, system sizes 10..140.

#include <cstdio>

#include "bench_common.h"
#include "common/str_util.h"
#include "common/table_printer.h"

int main(int argc, char** argv) {
  using namespace mrs;
  ExperimentConfig config = bench::DefaultConfig();
  config.granularity = 0.7;
  config.overlap = 0.5;
  if (bench::QuickMode(argc, argv)) {
    config.queries_per_point = 5;
  }
  bench::PrintHeader(
      "fig6b_optbound: TREESCHEDULE vs lower bound on the optimum",
      "Figure 6(b)", config);

  const std::vector<int> query_sizes = {20, 40};
  const std::vector<int> site_counts = {10, 20, 40, 60, 80, 100, 120, 140};

  TablePrinter table("Average response time (seconds), f=0.7, eps=0.5");
  std::vector<std::string> header = {"sites"};
  for (int joins : query_sizes) {
    header.push_back(StrFormat("TREE(J=%d)", joins));
    header.push_back(StrFormat("OPTBOUND(J=%d)", joins));
    header.push_back(StrFormat("ratio(J=%d)", joins));
  }
  table.SetHeader(header);

  for (int sites : site_counts) {
    config.machine.num_sites = sites;
    std::vector<std::string> row = {StrFormat("%d", sites)};
    for (int joins : query_sizes) {
      config.workload.num_joins = joins;
      auto stats = MeasureSchedulers(
          {SchedulerKind::kTreeSchedule, SchedulerKind::kOptBound}, config);
      if (!stats.ok()) {
        std::printf("error: %s\n", stats.status().ToString().c_str());
        return 1;
      }
      row.push_back(StrFormat("%.2f", (*stats)[0].mean() / 1000.0));
      row.push_back(StrFormat("%.2f", (*stats)[1].mean() / 1000.0));
      row.push_back(
          StrFormat("%.2f", (*stats)[0].mean() / (*stats)[1].mean()));
    }
    table.AddRow(row);
  }
  table.Print();
  std::printf("\nCSV:\n%s", table.ToCsv().c_str());
  std::printf(
      "\nExpected shape (paper): the average TREESCHEDULE response stays\n"
      "within a small constant of OPTBOUND — far below the worst-case\n"
      "(2d+1)=7 per phase of Theorem 5.1 — echoing Karp et al.'s\n"
      "probabilistic vector-packing results.\n");
  return 0;
}
