// Ablation A4: the value of multi-dimensional packing as dimensionality
// grows. Synthetic operator batches whose work vectors are concentrated
// on one random resource each — the best case for resource sharing —
// packed (a) by the multi-dimensional rule and (b) by a scalar
// (one-dimensional) rendering of the same instance that only sees total
// work. Both evaluated under the multi-dimensional makespan.

#include <cstdio>

#include "bench_common.h"
#include "common/rng.h"
#include "common/stats.h"
#include "common/str_util.h"
#include "common/table_printer.h"
#include "core/operator_schedule.h"
#include "test_support.h"

namespace {

// Packs the instance pretending it's one-dimensional (vectors replaced by
// their totals) and then re-evaluates the resulting placement in full
// dimensionality.
double ScalarPackedMakespan(const std::vector<mrs::ParallelizedOp>& ops,
                            int p, int d,
                            const mrs::OverlapUsageModel& usage) {
  using namespace mrs;
  std::vector<ParallelizedOp> scalar = ops;
  for (auto& op : scalar) {
    for (size_t k = 0; k < static_cast<size_t>(op.degree); ++k) {
      WorkVector& w = op.clones.Mutable(k);
      const double total = w.Total();
      w = WorkVector(w.dim());
      w[0] = total;  // all mass on one axis: scalar view
    }
  }
  auto packed = OperatorSchedule(scalar, p, d);
  if (!packed.ok()) return -1.0;
  // Replay the placement with the true vectors.
  Schedule replay(p, d);
  for (const auto& placement : packed->placements()) {
    for (const auto& op : ops) {
      if (op.op_id == placement.op_id) {
        if (!replay.Place(op, placement.clone_idx, placement.site).ok()) {
          return -1.0;
        }
      }
    }
  }
  (void)usage;
  return replay.Makespan();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mrs;
  const int trials = bench::QuickMode(argc, argv) ? 30 : 150;
  ExperimentConfig config = bench::DefaultConfig();
  bench::PrintHeader(
      "ablation_dimensionality: multi-dimensional vs scalar packing",
      "the core premise of Sections 4-5 (multi-dimensionality)", config);

  TablePrinter table(
      "Scalar-packing makespan relative to multi-dimensional (higher = "
      "multi-dim wins)");
  table.SetHeader({"d", "mean", "p95"});

  for (int d : {1, 2, 3, 4, 5}) {
    OverlapUsageModel usage(1.0);  // perfect overlap isolates packing
    Rng rng(static_cast<uint64_t>(77 + d));
    RunningStat ratio;
    std::vector<double> ratios;
    for (int t = 0; t < trials; ++t) {
      std::vector<ParallelizedOp> ops;
      const int m = 12;
      for (int i = 0; i < m; ++i) {
        WorkVector w(static_cast<size_t>(d));
        // Work concentrated on one random resource.
        w[rng.Index(static_cast<size_t>(d))] = rng.UniformDouble(5, 15);
        ops.push_back(bench_support::MakeOp(i, {std::move(w)}, usage));
      }
      auto multi = OperatorSchedule(ops, 4, d);
      if (!multi.ok()) return 1;
      const double scalar = ScalarPackedMakespan(ops, 4, d, usage);
      if (scalar < 0) return 1;
      const double r = scalar / multi->Makespan();
      ratio.Add(r);
      ratios.push_back(r);
    }
    table.AddRow({StrFormat("%d", d), StrFormat("%.3f", ratio.mean()),
                  StrFormat("%.3f", Percentile(ratios, 0.95))});
  }
  table.Print();
  std::printf(
      "\nExpected shape: at d=1 the two rules coincide (ratio 1); the\n"
      "advantage of seeing per-resource loads grows with d because scalar\n"
      "packing cannot co-locate operators with complementary needs.\n");
  return 0;
}
