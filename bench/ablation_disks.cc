// Ablation A11: multi-disk sites — the paper's own §4.1 example of
// higher-dimensional sites ("dimensions 1, 2, 3, and 4 may correspond to
// CPU, disk-1, disk-2, and network interface"). More disks per site both
// add I/O bandwidth and raise the dimensionality d of the packing
// problem; this bench separates the two effects by also reporting the
// theoretical best (the work bound).

#include <cstdio>

#include "bench_common.h"
#include "common/str_util.h"
#include "common/table_printer.h"
#include "core/opt_bound.h"
#include "resource/machine.h"

int main(int argc, char** argv) {
  using namespace mrs;
  ExperimentConfig config = bench::DefaultConfig();
  config.workload.num_joins = 20;
  config.overlap = 0.3;
  // Table 2's settings are CPU/disk balanced, so a single disk is not a
  // bottleneck and striping would show nothing; model slower disks (the
  // regime where multi-disk sites exist in the first place).
  config.cost.disk_ms_per_page = 60.0;
  if (bench::QuickMode(argc, argv)) {
    config.queries_per_point = 5;
  }
  bench::PrintHeader(
      "ablation_disks: multi-disk sites (d = 2 + disks)",
      "the Section 4.1 multi-disk site example", config);

  TablePrinter table(
      "Average response time (seconds), 20-join queries, 20 sites, 60 ms/page disks");
  table.SetHeader({"disks/site", "d", "TREESCHEDULE", "SYNCHRONOUS",
                   "OPTBOUND", "SYNC/TREE"});
  for (int disks : {1, 2, 3, 4}) {
    config.machine = MachineConfig::WithDisks(20, disks);
    config.num_disks = disks;
    auto stats = MeasureSchedulers(
        {SchedulerKind::kTreeSchedule, SchedulerKind::kSynchronous,
         SchedulerKind::kOptBound},
        config);
    if (!stats.ok()) {
      std::printf("error: %s\n", stats.status().ToString().c_str());
      return 1;
    }
    table.AddRow({StrFormat("%d", disks),
                  StrFormat("%d", 2 + disks),
                  StrFormat("%.2f", (*stats)[0].mean() / 1000.0),
                  StrFormat("%.2f", (*stats)[1].mean() / 1000.0),
                  StrFormat("%.2f", (*stats)[2].mean() / 1000.0),
                  StrFormat("%.2f",
                            (*stats)[1].mean() / (*stats)[0].mean())});
  }
  table.Print();
  std::printf(
      "\nExpected shape: striping I/O over more disks removes the disk\n"
      "bottleneck and shifts the work bound toward CPU; TREESCHEDULE keeps\n"
      "its advantage at every dimensionality (the 2d+1 worst case grows,\n"
      "the average does not).\n");
  return 0;
}
