// Ablation A2: coarse-grain CG_f parallelization vs the §7 malleable
// (GF, LB-minimizing) selection, on full bushy plans via TREESCHEDULE.
// The malleable scheduler pays extra selection work for freedom from the
// granularity knob.

#include <algorithm>
#include <cstdio>

#include "bench_common.h"
#include "core/malleable.h"
#include "core/tree_schedule.h"
#include "common/stats.h"
#include "common/str_util.h"
#include "common/table_printer.h"

int main(int argc, char** argv) {
  using namespace mrs;
  ExperimentConfig config = bench::DefaultConfig();
  config.workload.num_joins = 30;
  config.overlap = 0.5;
  if (bench::QuickMode(argc, argv)) {
    config.queries_per_point = 5;
  }
  bench::PrintHeader(
      "ablation_malleable: CG_f parallelization vs malleable (Section 7)",
      "Section 7 (malleable extension)", config);

  // The per-phase malleable selection with the Theorem 7.1 objective
  // (argmin LB) vs the practical surrogate (argmin h + l/P); see
  // MalleableObjective in core/malleable.h. The TreeSchedule malleable
  // policy uses the surrogate; the LB objective is measured here directly.
  auto measure_lb_objective = [&](const ExperimentConfig& cfg) {
    RunningStat stat;
    for (int q = 0; q < cfg.queries_per_point; ++q) {
      auto artifacts = PrepareQuery(cfg, q);
      if (!artifacts.ok()) return stat;
      const OverlapUsageModel usage(cfg.overlap);
      // Phase-by-phase with the LB objective: reuse TreeSchedule's phases
      // but swap the selection objective by scheduling each phase here.
      double response = 0.0;
      TreeScheduleResult partial;
      for (int k = 0; k < artifacts->task_tree.num_phases(); ++k) {
        std::vector<ParallelizedOp> fixed;
        std::vector<OperatorCost> floating;
        for (int oid : artifacts->task_tree.PhaseOps(k)) {
          const PhysicalOp& op = artifacts->op_tree.op(oid);
          const OperatorCost& cost =
              artifacts->costs[static_cast<size_t>(oid)];
          if (op.kind == OperatorKind::kProbe) {
            auto home = partial.HomeOf(op.blocking_input);
            auto rooted = ParallelizeRooted(cost, cfg.cost, usage, home,
                                            cfg.machine.num_sites);
            if (!rooted.ok()) return stat;
            fixed.push_back(std::move(rooted).value());
          } else {
            floating.push_back(cost);
          }
        }
        auto schedule = MalleableSchedule(
            floating, fixed, cfg.cost, usage, cfg.machine.num_sites,
            cfg.machine.dims, {}, MalleableObjective::kLowerBound);
        if (!schedule.ok()) return stat;
        PhaseSchedule phase{k, fixed, std::move(schedule).value(), 0.0};
        phase.makespan = phase.schedule.Makespan();
        response += phase.makespan;
        partial.phases.push_back(std::move(phase));
      }
      stat.Add(response);
    }
    return stat;
  };

  TablePrinter table("Average response time (seconds), 30-join queries");
  table.SetHeader({"sites", "TREE(f=0.3)", "TREE(f=0.7)",
                   "malleable(surrogate)", "malleable(LB obj)",
                   "best-f/surrogate"});
  for (int sites : {10, 20, 40, 80, 140}) {
    config.machine.num_sites = sites;
    config.granularity = 0.3;
    auto f03 = MeasureAverageResponse(SchedulerKind::kTreeSchedule, config);
    config.granularity = 0.7;
    auto f07 = MeasureAverageResponse(SchedulerKind::kTreeSchedule, config);
    auto malleable =
        MeasureAverageResponse(SchedulerKind::kTreeScheduleMalleable, config);
    RunningStat lb_obj = measure_lb_objective(config);
    if (!f03.ok() || !f07.ok() || !malleable.ok()) return 1;
    const double best_f = std::min(f03->mean(), f07->mean());
    table.AddRow({StrFormat("%d", sites),
                  StrFormat("%.2f", f03->mean() / 1000.0),
                  StrFormat("%.2f", f07->mean() / 1000.0),
                  StrFormat("%.2f", malleable->mean() / 1000.0),
                  StrFormat("%.2f", lb_obj.mean() / 1000.0),
                  StrFormat("%.2f", best_f / malleable->mean())});
  }
  table.Print();
  std::printf(
      "\nExpected shape: the surrogate-objective malleable scheduler tracks\n"
      "the best fixed-f configuration without tuning f. The pure Theorem\n"
      "7.1 objective (argmin LB) honors its (2d+1) guarantee but\n"
      "under-parallelizes in practice — minimizing a lower bound stops\n"
      "crediting parallelism once the packing term dominates. The paper\n"
      "proves Section 7 but never evaluates it; this table is why the\n"
      "library defaults to the surrogate.\n");
  return 0;
}
