// Table 2: experiment parameter settings. This binary prints the
// configuration block every other bench runs with, and derives a few
// per-operator costs from it so the mapping from Table 2 to work vectors
// is auditable.

#include <cstdio>

#include "bench_common.h"
#include "catalog/relation.h"
#include "common/str_util.h"
#include "common/table_printer.h"
#include "cost/cost_model.h"
#include "plan/plan_tree.h"
#include "resource/machine.h"

int main(int argc, char** argv) {
  using namespace mrs;
  (void)argc;
  (void)argv;
  ExperimentConfig config = bench::DefaultConfig();
  bench::PrintHeader("table2_params: experiment parameter settings",
                     "Table 2", config);

  std::printf("Machine range: 10 - 140 sites, %d resources per site "
              "(cpu, disk, net)\n",
              config.machine.dims);
  std::printf("Relation sizes: %lld - %lld tuples (log-uniform)\n",
              static_cast<long long>(config.workload.min_tuples),
              static_cast<long long>(config.workload.max_tuples));
  std::printf("Query sizes: 10 - 50 joins, 20 random bushy plans each\n\n");

  // Derived operator work vectors for reference relation sizes.
  TablePrinter table("Derived work vectors (ms of busy time per resource)");
  table.SetHeader({"operator", "|input| tuples", "cpu", "disk",
                   "D transferred"});
  CostModel model(config.cost, kDefaultDims);
  for (int64_t tuples : {1'000LL, 10'000LL, 100'000LL}) {
    PhysicalOp scan;
    scan.id = 0;
    scan.kind = OperatorKind::kScan;
    scan.input_tuples = tuples;
    scan.output_tuples = tuples;
    scan.consumer = 1;
    auto scan_cost = model.Cost(scan);
    if (!scan_cost.ok()) return 1;
    table.AddRow({"scan", StrFormat("%lld", static_cast<long long>(tuples)),
                  StrFormat("%.0f", scan_cost->processing[kCpuDim]),
                  StrFormat("%.0f", scan_cost->processing[kDiskDim]),
                  FormatBytes(scan_cost->data_bytes)});

    PhysicalOp build;
    build.id = 0;
    build.kind = OperatorKind::kBuild;
    build.input_tuples = tuples;
    auto build_cost = model.Cost(build);
    if (!build_cost.ok()) return 1;
    table.AddRow({"build", StrFormat("%lld", static_cast<long long>(tuples)),
                  StrFormat("%.0f", build_cost->processing[kCpuDim]),
                  StrFormat("%.0f", build_cost->processing[kDiskDim]),
                  FormatBytes(build_cost->data_bytes)});

    PhysicalOp probe;
    probe.id = 0;
    probe.kind = OperatorKind::kProbe;
    probe.input_tuples = tuples;
    probe.output_tuples = tuples;
    probe.consumer = 1;
    auto probe_cost = model.Cost(probe);
    if (!probe_cost.ok()) return 1;
    table.AddRow({"probe", StrFormat("%lld", static_cast<long long>(tuples)),
                  StrFormat("%.0f", probe_cost->processing[kCpuDim]),
                  StrFormat("%.0f", probe_cost->processing[kDiskDim]),
                  FormatBytes(probe_cost->data_bytes)});
  }
  table.Print();
  std::printf(
      "\nNote: the CPU speed and disk rate of Table 2 keep the system\n"
      "balanced (scan CPU work ~= scan disk work), which the scan rows\n"
      "above confirm.\n");
  return 0;
}
