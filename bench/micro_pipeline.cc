// Pipelined vs task-wave LISTSCHEDULE microbenchmark: what intra-task
// pipelining (rate-matched degrees + stage-ordered placement, guarded by
// pipeline_guard) buys over the plain barrier-free engine, swept over
// query size J (joins), machine size P (sites), and dimensionality d
// (one CPU, d-2 disks, one network interface via
// MachineConfig::WithDisks).
//
// Each BM_PipelinedVsList iteration runs both modes on the same
// generated plan; the counters report the makespan ratio
// (pipelined/list, <= 1 by the guard) and the fraction of plans where
// the guard had to fall back to the task-wave schedule.
// BM_PipelinedScheduleOnly isolates the wall-time of the pipelined
// mode (guard on and off). See scripts/run_benches.sh ->
// BENCH_pipeline.json.

#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "common/rng.h"
#include "core/list_schedule.h"
#include "cost/cost_model.h"
#include "plan/operator_tree.h"
#include "plan/task_tree.h"
#include "resource/machine.h"
#include "resource/usage_model.h"
#include "workload/generator.h"

namespace mrs {
namespace {

constexpr uint64_t kBenchSeed = 20260808;
constexpr int kPlansPerSweepPoint = 8;

/// One generated plan with its derived scheduler inputs. The task tree
/// points into the operator tree, so instances must not be moved after
/// Build() — they are held in a stable vector reserved up front.
struct BenchPlan {
  GeneratedQuery query;
  OperatorTree op_tree;
  TaskTree task_tree;
  std::vector<OperatorCost> costs;

  bool Build(int joins, int dims, Rng* rng) {
    WorkloadParams workload;
    workload.num_joins = joins;
    workload.sort_probability = 0.2;
    auto generated = GenerateQuery(workload, rng);
    if (!generated.ok()) return false;
    query = std::move(generated).value();
    auto ops = OperatorTree::FromPlan(*query.plan);
    if (!ops.ok()) return false;
    op_tree = std::move(ops).value();
    auto tasks = TaskTree::FromOperatorTree(&op_tree);
    if (!tasks.ok()) return false;
    task_tree = std::move(tasks).value();
    CostModel model(CostParams{}, dims, dims - 2);
    auto costed = model.CostAll(op_tree);
    if (!costed.ok()) return false;
    costs = std::move(costed).value();
    return true;
  }
};

std::vector<BenchPlan> MakePlans(int joins, int dims) {
  std::vector<BenchPlan> plans(kPlansPerSweepPoint);
  Rng master(kBenchSeed);
  for (BenchPlan& plan : plans) {
    Rng stream = master.Fork();
    if (!plan.Build(joins, dims, &stream)) plans.clear();
    if (plans.empty()) break;
  }
  return plans;
}

std::string SweepLabel(int joins, int sites, int dims) {
  return "J=" + std::to_string(joins) + " P=" + std::to_string(sites) +
         " d=" + std::to_string(dims);
}

void BM_PipelinedVsList(benchmark::State& state) {
  const int joins = static_cast<int>(state.range(0));
  const int sites = static_cast<int>(state.range(1));
  const int dims = static_cast<int>(state.range(2));
  const MachineConfig machine = MachineConfig::WithDisks(sites, dims - 2);
  const OverlapUsageModel usage(0.5);
  const CostParams params;
  const std::vector<BenchPlan> plans = MakePlans(joins, dims);
  if (plans.empty()) {
    state.SkipWithError("plan generation failed");
    return;
  }
  // tree_guard off in both runs: the comparison is pipelined vs
  // task-wave, and the phased fallback would blur it on the plans where
  // TREESCHEDULE happens to win.
  ListScheduleOptions list_options;
  list_options.tree_guard = false;
  ListScheduleOptions pipe_options = list_options;
  pipe_options.pipeline = true;
  double ratio_sum = 0.0;
  double fallbacks = 0.0;
  int64_t runs = 0;
  for (auto _ : state) {
    for (const BenchPlan& plan : plans) {
      auto list = ListSchedule(plan.op_tree, plan.task_tree, plan.costs,
                               params, machine, usage, list_options);
      auto piped = ListSchedule(plan.op_tree, plan.task_tree, plan.costs,
                                params, machine, usage, pipe_options);
      if (!list.ok() || !piped.ok()) {
        state.SkipWithError("scheduling failed");
        return;
      }
      ratio_sum += piped->makespan / list->makespan;
      fallbacks += piped->used_list_fallback ? 1.0 : 0.0;
      ++runs;
      benchmark::DoNotOptimize(piped->makespan);
    }
  }
  state.SetItemsProcessed(runs);
  state.counters["pipelined_over_list"] =
      runs > 0 ? ratio_sum / static_cast<double>(runs) : 0.0;
  state.counters["fallback_rate"] =
      runs > 0 ? fallbacks / static_cast<double>(runs) : 0.0;
  state.SetLabel(SweepLabel(joins, sites, dims));
}
BENCHMARK(BM_PipelinedVsList)
    ->ArgsProduct({{3, 7, 11}, {16, 64, 256}, {3, 6}})
    ->Unit(benchmark::kMillisecond);

// The pipelined mode with pipeline_guard includes a full task-wave
// shadow run, so its wall time upper-bounds the pipelining overhead;
// guard off isolates the stage-split event loop itself.
void BM_PipelinedScheduleOnly(benchmark::State& state) {
  const int joins = static_cast<int>(state.range(0));
  const int sites = static_cast<int>(state.range(1));
  const int dims = static_cast<int>(state.range(2));
  const bool guard = state.range(3) != 0;
  const MachineConfig machine = MachineConfig::WithDisks(sites, dims - 2);
  const OverlapUsageModel usage(0.5);
  const CostParams params;
  const std::vector<BenchPlan> plans = MakePlans(joins, dims);
  if (plans.empty()) {
    state.SkipWithError("plan generation failed");
    return;
  }
  ListScheduleOptions options;
  options.tree_guard = false;
  options.pipeline = true;
  options.pipeline_guard = guard;
  for (auto _ : state) {
    for (const BenchPlan& plan : plans) {
      auto piped = ListSchedule(plan.op_tree, plan.task_tree, plan.costs,
                                params, machine, usage, options);
      if (!piped.ok()) {
        state.SkipWithError("scheduling failed");
        return;
      }
      benchmark::DoNotOptimize(piped->makespan);
    }
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(plans.size()));
  state.SetLabel(SweepLabel(joins, sites, dims) +
                 (guard ? " guard=on" : " guard=off"));
}
BENCHMARK(BM_PipelinedScheduleOnly)
    ->ArgsProduct({{3, 7, 11}, {16, 64, 256}, {3, 6}, {0, 1}})
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace mrs
