// Ablation A10 (generality): the paper stresses that TREESCHEDULE "is a
// general query scheduling algorithm that can be applied to ANY bushy
// plan" (§6.1) even though its experiments use pure hash-join plans (so
// the optimal Lo et al. pipeline allocation exists for SYNCHRONOUS). This
// bench runs plans whose joins are capped by blocking sorts/aggregates
// and checks that the multi-dimensional advantage carries over.

#include <cstdio>

#include "bench_common.h"
#include "common/str_util.h"
#include "common/table_printer.h"

int main(int argc, char** argv) {
  using namespace mrs;
  ExperimentConfig config = bench::DefaultConfig();
  config.workload.num_joins = 20;
  config.overlap = 0.5;
  config.granularity = 0.7;
  if (bench::QuickMode(argc, argv)) {
    config.queries_per_point = 5;
  }
  bench::PrintHeader(
      "ablation_unary_ops: generality beyond pure hash-join plans",
      "the \"any bushy plan\" claim of Section 6.1", config);

  struct Mix {
    const char* name;
    double sort_p;
    double agg_p;
  };
  const Mix mixes[] = {
      {"pure hash joins (paper)", 0.0, 0.0},
      {"25% sorts", 0.25, 0.0},
      {"25% aggregates", 0.0, 0.25},
      {"25% sorts + 25% aggs", 0.25, 0.25},
  };

  TablePrinter table(
      "Average response time (seconds), 20-join plans, 40 sites");
  table.SetHeader({"operator mix", "TREESCHEDULE", "SYNCHRONOUS",
                   "SYNC/TREE"});
  config.machine.num_sites = 40;
  for (const Mix& mix : mixes) {
    config.workload.sort_probability = mix.sort_p;
    config.workload.aggregate_probability = mix.agg_p;
    auto stats = MeasureSchedulers(
        {SchedulerKind::kTreeSchedule, SchedulerKind::kSynchronous}, config);
    if (!stats.ok()) {
      std::printf("error: %s\n", stats.status().ToString().c_str());
      return 1;
    }
    table.AddRow({mix.name, StrFormat("%.2f", (*stats)[0].mean() / 1000.0),
                  StrFormat("%.2f", (*stats)[1].mean() / 1000.0),
                  StrFormat("%.2f",
                            (*stats)[1].mean() / (*stats)[0].mean())});
  }
  table.Print();
  std::printf(
      "\nExpected shape: blocking sorts/aggregates deepen the task tree\n"
      "(more phases) and add disk-heavy work vectors; the multi-\n"
      "dimensional win persists across all mixes.\n");
  return 0;
}
