// Scheduler-in-the-loop join-order optimizer microbenchmark: wall time
// and search throughput (candidate plans per second) of OptimizeJoinOrder
// over a J x threads sweep, against the exhaustive plan-space baseline
// (pruning off) it matches bit-exactly.
//
// Chain queries keep the plan space Catalan-sized (Catalan(J) * 2^J
// complete plans: J=8 -> 366,080), so the exhaustive rows stay runnable
// while still being ~10x+ slower than the pruned search at J >= 8 — the
// win the optimizer section of EXPERIMENTS.md reports. Multi-thread rows
// share every option with the single-thread rows; the result is
// byte-identical across the sweep by construction. See
// scripts/run_benches.sh -> BENCH_opt.json.

#include <benchmark/benchmark.h>

#include <memory>
#include <string>

#include "catalog/catalog.h"
#include "common/rng.h"
#include "optimizer/optimizer.h"
#include "plan/query_graph.h"
#include "resource/machine.h"
#include "resource/usage_model.h"

namespace mrs {
namespace {

constexpr uint64_t kBenchSeed = 20260809;

/// A J-join chain query over J+1 log-uniformly sized relations.
struct BenchQuery {
  std::unique_ptr<Catalog> catalog;
  std::unique_ptr<QueryGraph> graph;

  static BenchQuery Make(int joins) {
    BenchQuery q;
    q.catalog = std::make_unique<Catalog>();
    Rng rng(kBenchSeed + static_cast<uint64_t>(joins));
    for (int i = 0; i <= joins; ++i) {
      Relation r;
      r.name = "R" + std::to_string(i);
      r.num_tuples = static_cast<int64_t>(rng.LogUniform(1e3, 1e5));
      if (!q.catalog->AddRelation(std::move(r)).ok()) std::abort();
    }
    q.graph = std::make_unique<QueryGraph>(joins + 1);
    for (int i = 0; i < joins; ++i) {
      if (!q.graph->AddJoin(i, i + 1).ok()) std::abort();
    }
    return q;
  }
};

void BM_OptimizerSearch(benchmark::State& state) {
  const int joins = static_cast<int>(state.range(0));
  const int threads = static_cast<int>(state.range(1));
  const bool prune = state.range(2) != 0;
  const BenchQuery q = BenchQuery::Make(joins);
  const MachineConfig machine;
  const OverlapUsageModel usage(0.5);

  uint64_t plans = 0;
  uint64_t scheduled = 0;
  double makespan = 0.0;
  for (auto _ : state) {
    OptimizerOptions options;
    options.num_threads = threads;
    options.prune = prune;
    auto result = OptimizeJoinOrder(*q.catalog, *q.graph, CostParams{},
                                    machine, usage, options);
    if (!result.ok()) {
      state.SkipWithError(result.status().ToString().c_str());
      return;
    }
    plans += result->stats.plans_considered;
    scheduled += result->stats.plans_scheduled;
    makespan = result->makespan;
    benchmark::DoNotOptimize(result->makespan);
  }
  // items/s == candidate plans considered per second.
  state.SetItemsProcessed(static_cast<int64_t>(plans));
  state.counters["plans_scheduled_per_run"] =
      state.iterations() > 0
          ? static_cast<double>(scheduled) /
                static_cast<double>(state.iterations())
          : 0.0;
  state.counters["makespan_ms"] = makespan;
  state.SetLabel("J=" + std::to_string(joins) +
                 " threads=" + std::to_string(threads) +
                 (prune ? " prune=on" : " prune=off"));
}
// Pruned sweep: J x threads.
BENCHMARK(BM_OptimizerSearch)
    ->ArgsProduct({{4, 6, 8}, {1, 2, 4, 8}, {1}})
    ->Unit(benchmark::kMillisecond);
// Exhaustive baseline rows (the bit-equal yardstick; J=8 pays the full
// 366k-plan space, so only two thread points).
BENCHMARK(BM_OptimizerSearch)
    ->ArgsProduct({{4, 6, 8}, {1, 8}, {0}})
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace mrs
