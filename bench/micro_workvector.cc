// Work-vector core microbenchmarks (DESIGN.md §4f): the end-to-end
// split -> place -> simulate path that the inline small-buffer storage,
// the uniform-clone compression, and the fused scaled-add primitives
// accelerate, swept over dimensionality d in {2, 3, 6} (all inline) and
// machine size P in {64, 1024, 4096}.
//
// BM_SplitPlaceSimulate builds a fresh operator batch (uniform clone
// sets), runs OPERATORSCHEDULE, and fluid-simulates the resulting phase —
// every iteration exercises the allocation paths a scheduler service hits
// per query. BM_SplitOnly isolates parallelization (where uniform-clone
// compression turns O(N*d) allocations into O(1)) and BM_SimulateOnly the
// fused event loops. See scripts/run_benches.sh -> BENCH_workvector.json
// and scripts/compare_bench.py for baseline diffs.

#include <benchmark/benchmark.h>

#include <vector>

#include "core/operator_schedule.h"
#include "core/schedule.h"
#include "cost/clone_set.h"
#include "cost/parallelize.h"
#include "exec/fluid_simulator.h"
#include "resource/usage_model.h"

namespace mrs {
namespace {

constexpr int kOpsPerBatch = 48;

/// A batch of uniform-clone operators at dimensionality d, with degrees
/// cycling up to min(P, 32). Dimensions beyond CPU get a rotating share
/// of the work so every resource is exercised.
std::vector<ParallelizedOp> MakeBatch(int d, int num_sites,
                                      const OverlapUsageModel& usage) {
  std::vector<ParallelizedOp> ops;
  ops.reserve(kOpsPerBatch);
  const int max_degree = num_sites < 32 ? num_sites : 32;
  for (int i = 0; i < kOpsPerBatch; ++i) {
    const int degree = 1 + (i * 7) % max_degree;
    WorkVector total(static_cast<size_t>(d));
    for (int r = 0; r < d; ++r) {
      total[static_cast<size_t>(r)] =
          400.0 + 120.0 * ((i + r) % 5) + 40.0 * r;
    }
    const double share = 1.0 / static_cast<double>(degree);
    WorkVector base = total * share;
    WorkVector coordinator = base;
    coordinator[0] += 7.5 * degree;  // EA1 startup at the coordinator
    ParallelizedOp op;
    op.op_id = i;
    op.degree = degree;
    op.clones = CloneSet::Uniform(std::move(coordinator), std::move(base),
                                  degree);
    const double t_coord = usage.SequentialTime(op.clones[0]);
    const double t_base =
        degree > 1 ? usage.SequentialTime(op.clones[1]) : t_coord;
    op.t_seq.assign(static_cast<size_t>(degree), t_base);
    op.t_seq[0] = t_coord;
    op.t_par = t_coord > t_base ? t_coord : t_base;
    ops.push_back(std::move(op));
  }
  return ops;
}

void BM_SplitPlaceSimulate(benchmark::State& state) {
  const int d = static_cast<int>(state.range(0));
  const int num_sites = static_cast<int>(state.range(1));
  const OverlapUsageModel usage(0.5);
  const FluidSimulator simulator(usage, SharingPolicy::kOptimalStretch);
  for (auto _ : state) {
    std::vector<ParallelizedOp> ops = MakeBatch(d, num_sites, usage);
    auto schedule = OperatorSchedule(ops, num_sites, d);
    if (!schedule.ok()) {
      state.SkipWithError("scheduling failed");
      return;
    }
    auto sim = simulator.SimulatePhase(*schedule);
    if (!sim.ok()) {
      state.SkipWithError("simulation failed");
      return;
    }
    benchmark::DoNotOptimize(sim->makespan);
  }
  state.SetLabel("d=" + std::to_string(d) +
                 " P=" + std::to_string(num_sites));
}
BENCHMARK(BM_SplitPlaceSimulate)
    ->ArgsProduct({{2, 3, 6}, {64, 1024, 4096}})
    ->Unit(benchmark::kMicrosecond);

// Parallelization alone through the production SplitIntoCloneSet path
// (d = 3 only: the cost-model split is tied to the CPU/disk/net layout).
void BM_SplitOnly(benchmark::State& state) {
  const int num_sites = static_cast<int>(state.range(0));
  const CostParams params;
  const OverlapUsageModel usage(0.5);
  std::vector<OperatorCost> costs;
  for (int i = 0; i < kOpsPerBatch; ++i) {
    OperatorCost cost;
    cost.op_id = i;
    cost.processing = WorkVector(
        {400.0 + 30.0 * (i % 7), 300.0 + 50.0 * (i % 3), 10.0});
    cost.data_bytes = 25000.0 * (1 + i % 4);
    costs.push_back(cost);
  }
  for (auto _ : state) {
    for (const OperatorCost& cost : costs) {
      auto op = ParallelizeFloating(cost, params, usage, 0.7, num_sites);
      if (!op.ok()) {
        state.SkipWithError("parallelization failed");
        return;
      }
      benchmark::DoNotOptimize(op->t_par);
    }
  }
  state.SetItemsProcessed(state.iterations() * kOpsPerBatch);
}
BENCHMARK(BM_SplitOnly)->Arg(64)->Arg(1024)->Arg(4096);

// The fluid simulator's fused event loops over a fixed schedule.
void BM_SimulateOnly(benchmark::State& state) {
  const int d = static_cast<int>(state.range(0));
  const int num_sites = static_cast<int>(state.range(1));
  const OverlapUsageModel usage(0.5);
  std::vector<ParallelizedOp> ops = MakeBatch(d, num_sites, usage);
  auto schedule = OperatorSchedule(ops, num_sites, d);
  if (!schedule.ok()) {
    state.SkipWithError("scheduling failed");
    return;
  }
  const FluidSimulator simulator(usage, SharingPolicy::kUniformSlowdown);
  for (auto _ : state) {
    auto sim = simulator.SimulatePhase(*schedule);
    if (!sim.ok()) {
      state.SkipWithError("simulation failed");
      return;
    }
    benchmark::DoNotOptimize(sim->makespan);
  }
  state.SetLabel("d=" + std::to_string(d) +
                 " P=" + std::to_string(num_sites));
}
BENCHMARK(BM_SimulateOnly)
    ->ArgsProduct({{2, 3, 6}, {64, 1024, 4096}})
    ->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace mrs
