#ifndef MRS_BENCH_TEST_SUPPORT_H_
#define MRS_BENCH_TEST_SUPPORT_H_

#include <algorithm>
#include <vector>

#include "cost/parallelize.h"
#include "resource/usage_model.h"

namespace mrs {
namespace bench_support {

/// Assembles a ParallelizedOp from raw clone vectors (ablation benches
/// craft synthetic instances that bypass the cost model).
inline ParallelizedOp MakeOp(int id, std::vector<WorkVector> clones,
                             const OverlapUsageModel& usage) {
  ParallelizedOp op;
  op.op_id = id;
  op.degree = static_cast<int>(clones.size());
  op.clones = std::move(clones);
  for (const auto& w : op.clones) {
    const double t = usage.SequentialTime(w);
    op.t_seq.push_back(t);
    op.t_par = std::max(op.t_par, t);
  }
  return op;
}

}  // namespace bench_support
}  // namespace mrs

#endif  // MRS_BENCH_TEST_SUPPORT_H_
