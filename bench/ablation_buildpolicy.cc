// Ablation A7: build-degree policy. Because a probe executes at the home
// of its build (constraint B), the degree chosen for the build caps the
// probe's parallelism one phase later. kBuildOnly sizes the build for its
// own (often tiny) work vector; kJoinAware sizes it for the whole hash
// join. This bench quantifies why the library defaults to kJoinAware.

#include <cstdio>

#include "bench_common.h"
#include "common/str_util.h"
#include "common/table_printer.h"
#include "core/tree_schedule.h"

int main(int argc, char** argv) {
  using namespace mrs;
  ExperimentConfig config = bench::DefaultConfig();
  config.workload.num_joins = 40;
  config.overlap = 0.3;
  config.granularity = 0.7;
  if (bench::QuickMode(argc, argv)) {
    config.queries_per_point = 5;
  }
  bench::PrintHeader(
      "ablation_buildpolicy: build-only vs join-aware build parallelization",
      "the constraint-B interdependency discussed in Section 5.5", config);

  TablePrinter table("Average response time (seconds), 40-join queries");
  table.SetHeader({"sites", "build-only", "join-aware", "build-only/joint"});

  for (int sites : {10, 20, 40, 80, 140}) {
    config.machine.num_sites = sites;
    double means[2] = {0.0, 0.0};
    int idx = 0;
    for (BuildDegreePolicy policy :
         {BuildDegreePolicy::kBuildOnly, BuildDegreePolicy::kJoinAware}) {
      RunningStat stat;
      for (int q = 0; q < config.queries_per_point; ++q) {
        auto artifacts = PrepareQuery(config, q);
        if (!artifacts.ok()) return 1;
        const OverlapUsageModel usage(config.overlap);
        TreeScheduleOptions options;
        options.granularity = config.granularity;
        options.build_degree = policy;
        auto result = TreeSchedule(artifacts->op_tree, artifacts->task_tree,
                                   artifacts->costs, config.cost,
                                   config.machine, usage, options);
        if (!result.ok()) return 1;
        stat.Add(result->response_time);
      }
      means[idx++] = stat.mean();
    }
    table.AddRow({StrFormat("%d", sites),
                  StrFormat("%.2f", means[0] / 1000.0),
                  StrFormat("%.2f", means[1] / 1000.0),
                  StrFormat("%.2f", means[0] / means[1])});
  }
  table.Print();
  std::printf(
      "\nExpected shape: build-only degrees strangle expensive probes on\n"
      "the tiny homes of their builds; join-aware sizing removes the\n"
      "bottleneck, and the gap widens with machine size (more parallelism\n"
      "to forfeit).\n");
  return 0;
}
