#ifndef MRS_BENCH_BENCH_COMMON_H_
#define MRS_BENCH_BENCH_COMMON_H_

#include <string>

#include "workload/experiment.h"

namespace mrs {
namespace bench {

/// Prints the standard bench banner: what paper artifact this binary
/// regenerates plus the full Table 2 parameter block.
void PrintHeader(const std::string& title, const std::string& paper_artifact,
                 const ExperimentConfig& config);

/// The experiment defaults shared by all figure benches (paper §6.1).
ExperimentConfig DefaultConfig();

/// True if the --quick flag is present (smaller query counts for smoke
/// runs; full fidelity otherwise).
bool QuickMode(int argc, char** argv);

}  // namespace bench
}  // namespace mrs

#endif  // MRS_BENCH_BENCH_COMMON_H_
