#include <gtest/gtest.h>

#include "core/memory_aware.h"
#include "core/tree_schedule.h"
#include "io/plan_text.h"
#include "test_util.h"
#include "workload/generator.h"

namespace mrs {
namespace {

using testing_util::MakeFixture;
using testing_util::PlanFixture;

// SORT(R0 JOIN R1): scan, scan, build, probe, sort-run, sort-merge.
PlanFixture SortedJoinFixture() {
  return MakeFixture({20000, 5000}, [](PlanTree* plan) {
    int j = plan->AddJoin(plan->AddLeaf(0).value(), plan->AddLeaf(1).value())
                .value();
    plan->AddSort(j).value();
  });
}

// AGG(R0 JOIN R1) with 10% groups.
PlanFixture AggregatedJoinFixture() {
  return MakeFixture({20000, 5000}, [](PlanTree* plan) {
    int j = plan->AddJoin(plan->AddLeaf(0).value(), plan->AddLeaf(1).value())
                .value();
    plan->AddAggregate(j, 0.1).value();
  });
}

TEST(UnaryPlanTest, SortPreservesCardinality) {
  PlanFixture fx = SortedJoinFixture();
  const PlanNode& root = fx.plan->node(fx.plan->root());
  EXPECT_EQ(root.kind, PlanNodeKind::kSort);
  EXPECT_EQ(root.output.num_tuples, 20000);
  EXPECT_EQ(fx.plan->num_unary(), 1);
  EXPECT_EQ(fx.plan->ToString(), "SORT((R0 JOIN R1))");
  EXPECT_EQ(fx.plan->Height(), 2);
}

TEST(UnaryPlanTest, AggregateShrinksCardinality) {
  PlanFixture fx = AggregatedJoinFixture();
  const PlanNode& root = fx.plan->node(fx.plan->root());
  EXPECT_EQ(root.kind, PlanNodeKind::kAggregate);
  EXPECT_EQ(root.output.num_tuples, 2000);  // 10% of 20000
  EXPECT_EQ(fx.plan->ToString(), "AGG((R0 JOIN R1))");
}

TEST(UnaryPlanTest, AggregateRejectsBadFraction) {
  auto catalog = testing_util::MakeCatalog({100});
  PlanTree plan(catalog.get());
  int leaf = plan.AddLeaf(0).value();
  EXPECT_FALSE(plan.AddAggregate(leaf, 0.0).ok());
  // The failed call must not consume the child.
  EXPECT_TRUE(plan.AddAggregate(leaf, 1.0).ok());
}

TEST(UnaryPlanTest, UnaryCannotConsumeTwice) {
  auto catalog = testing_util::MakeCatalog({100});
  PlanTree plan(catalog.get());
  int leaf = plan.AddLeaf(0).value();
  ASSERT_TRUE(plan.AddSort(leaf).ok());
  EXPECT_FALSE(plan.AddSort(leaf).ok());
}

TEST(UnaryExpansionTest, SortExpandsToRunAndMerge) {
  PlanFixture fx = SortedJoinFixture();
  EXPECT_EQ(fx.op_tree.num_ops(), 6);  // 2 scans + build + probe + 2 sort
  const PhysicalOp& merge = fx.op_tree.op(fx.op_tree.root_op());
  EXPECT_EQ(merge.kind, OperatorKind::kSortMerge);
  EXPECT_EQ(merge.output_tuples, 20000);
  ASSERT_GE(merge.blocking_input, 0);
  const PhysicalOp& run = fx.op_tree.op(merge.blocking_input);
  EXPECT_EQ(run.kind, OperatorKind::kSortRun);
  EXPECT_EQ(run.input_tuples, 20000);
  EXPECT_EQ(run.output_tuples, 0);
  EXPECT_EQ(run.table_tuples, 0);  // runs live on disk, not memory
  // The probe pipelines into the sort-run (same task); the merge starts a
  // new task.
  ASSERT_EQ(run.data_inputs.size(), 1u);
  EXPECT_EQ(fx.op_tree.op(run.data_inputs[0]).kind, OperatorKind::kProbe);
}

TEST(UnaryExpansionTest, AggregateExpandsToBuildAndOutput) {
  PlanFixture fx = AggregatedJoinFixture();
  const PhysicalOp& emit = fx.op_tree.op(fx.op_tree.root_op());
  EXPECT_EQ(emit.kind, OperatorKind::kAggOutput);
  EXPECT_EQ(emit.output_tuples, 2000);
  const PhysicalOp& accumulate = fx.op_tree.op(emit.blocking_input);
  EXPECT_EQ(accumulate.kind, OperatorKind::kAggBuild);
  EXPECT_EQ(accumulate.input_tuples, 20000);
  EXPECT_EQ(accumulate.table_tuples, 2000);  // one entry per group
}

TEST(UnaryTaskTest, SortAddsAPhase) {
  PlanFixture fx = SortedJoinFixture();
  // Tasks: {scan1,build}, {scan0,probe,sort-run}, {sort-merge}: 3 phases.
  EXPECT_EQ(fx.task_tree.num_tasks(), 3);
  EXPECT_EQ(fx.task_tree.num_phases(), 3);
  const PhysicalOp& merge = fx.op_tree.op(fx.op_tree.root_op());
  const PhysicalOp& run = fx.op_tree.op(merge.blocking_input);
  EXPECT_EQ(fx.task_tree.task(run.task).depth,
            fx.task_tree.task(merge.task).depth + 1);
}

TEST(UnaryCostTest, SortCostsIncludeRunIO) {
  PlanFixture fx = SortedJoinFixture();
  const PhysicalOp& merge = fx.op_tree.op(fx.op_tree.root_op());
  const OperatorCost& run_cost =
      fx.costs[static_cast<size_t>(merge.blocking_input)];
  const OperatorCost& merge_cost =
      fx.costs[static_cast<size_t>(merge.id)];
  // 20000 tuples = 500 pages.
  // run cpu: (300+200)*20000 + 5000*500 = 12.5M instr = 12500 ms.
  EXPECT_NEAR(run_cost.processing[0], 12500.0, 1e-9);
  EXPECT_NEAR(run_cost.processing[1], 500 * 20.0, 1e-9);  // write runs
  // merge cpu: 100*20000 + 5000*500 = 4.5M instr.
  EXPECT_NEAR(merge_cost.processing[0], 4500.0, 1e-9);
  EXPECT_NEAR(merge_cost.processing[1], 500 * 20.0, 1e-9);  // read runs
  // Run receives the repartitioned stream; root merge ships nothing.
  EXPECT_NEAR(run_cost.data_bytes, 20000.0 * 128, 1e-9);
  EXPECT_NEAR(merge_cost.data_bytes, 0.0, 1e-9);
}

TEST(UnaryCostTest, AggregateCosts) {
  PlanFixture fx = AggregatedJoinFixture();
  const PhysicalOp& emit = fx.op_tree.op(fx.op_tree.root_op());
  const OperatorCost& build_cost =
      fx.costs[static_cast<size_t>(emit.blocking_input)];
  const OperatorCost& emit_cost = fx.costs[static_cast<size_t>(emit.id)];
  // accumulate: (300+100)*20000 instr = 8000 ms.
  EXPECT_NEAR(build_cost.processing[0], 8000.0, 1e-9);
  // emit: 300*2000 instr = 600 ms.
  EXPECT_NEAR(emit_cost.processing[0], 600.0, 1e-9);
}

TEST(UnaryScheduleTest, MergeRootedAtRunHome) {
  PlanFixture fx = SortedJoinFixture();
  OverlapUsageModel usage(0.5);
  MachineConfig machine;
  machine.num_sites = 12;
  auto result = TreeSchedule(fx.op_tree, fx.task_tree, fx.costs, CostParams{},
                             machine, usage);
  ASSERT_TRUE(result.ok());
  const PhysicalOp& merge = fx.op_tree.op(fx.op_tree.root_op());
  EXPECT_EQ(result->HomeOf(merge.id), result->HomeOf(merge.blocking_input));
  for (const auto& phase : result->phases) {
    EXPECT_TRUE(phase.schedule.Validate(phase.ops).ok());
  }
}

TEST(UnaryScheduleTest, AggregatePlansScheduleEndToEnd) {
  PlanFixture fx = AggregatedJoinFixture();
  OverlapUsageModel usage(0.3);
  MachineConfig machine;
  machine.num_sites = 8;
  for (ParallelizationPolicy policy :
       {ParallelizationPolicy::kCoarseGrain,
        ParallelizationPolicy::kMalleable}) {
    TreeScheduleOptions options;
    options.policy = policy;
    auto result = TreeSchedule(fx.op_tree, fx.task_tree, fx.costs,
                               CostParams{}, machine, usage, options);
    ASSERT_TRUE(result.ok());
    const PhysicalOp& emit = fx.op_tree.op(fx.op_tree.root_op());
    EXPECT_EQ(result->HomeOf(emit.id), result->HomeOf(emit.blocking_input));
    EXPECT_GT(result->response_time, 0.0);
  }
}

TEST(UnaryMemoryTest, GroupTablesUseMemoryRunsDoNot) {
  PlanFixture agg = AggregatedJoinFixture();
  PlanFixture sorted = SortedJoinFixture();
  OverlapUsageModel usage(0.5);
  MachineConfig machine;
  machine.num_sites = 4;
  auto agg_result = MemoryAwareTreeSchedule(
      agg.op_tree, agg.task_tree, agg.costs, CostParams{}, machine, usage);
  auto sort_result =
      MemoryAwareTreeSchedule(sorted.op_tree, sorted.task_tree, sorted.costs,
                              CostParams{}, machine, usage);
  ASSERT_TRUE(agg_result.ok());
  ASSERT_TRUE(sort_result.ok());
  // The aggregated plan is the sorted plan with the sort swapped for an
  // aggregate: it should show strictly larger peak residency (group table
  // + join hash table vs join hash table only).
  EXPECT_GT(agg_result->peak_site_memory, 0.0);
  EXPECT_GT(sort_result->peak_site_memory, 0.0);
  EXPECT_GT(agg_result->peak_site_memory, sort_result->peak_site_memory);
}

TEST(UnaryPlanTextTest, RoundTripsSortAndAgg) {
  const char* text =
      "relation a 1000\n"
      "relation b 2000\n"
      "plan (sort (agg 0.25 (join a b)))\n";
  auto parsed = ParsePlanText(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->plan->ToString(), "SORT(AGG((R0 JOIN R1)))");
  const PlanNode& root = parsed->plan->node(parsed->plan->root());
  EXPECT_EQ(root.kind, PlanNodeKind::kSort);
  auto written = WritePlanText(*parsed->catalog, *parsed->plan);
  ASSERT_TRUE(written.ok());
  auto reparsed = ParsePlanText(written.value());
  ASSERT_TRUE(reparsed.ok()) << reparsed.status().ToString();
  EXPECT_EQ(reparsed->plan->ToString(), parsed->plan->ToString());
  // Aggregate fraction survives the round trip.
  for (int i = 0; i < reparsed->plan->num_nodes(); ++i) {
    if (reparsed->plan->node(i).kind == PlanNodeKind::kAggregate) {
      EXPECT_DOUBLE_EQ(reparsed->plan->node(i).group_fraction, 0.25);
    }
  }
}

TEST(UnaryPlanTextTest, RejectsMalformedUnary) {
  EXPECT_FALSE(ParsePlanText("relation a 1\nplan (sort)\n").ok());
  EXPECT_FALSE(ParsePlanText("relation a 1\nplan (agg a)\n").ok());
  EXPECT_FALSE(ParsePlanText("relation a 1\nplan (agg x a)\n").ok());
  EXPECT_FALSE(ParsePlanText("relation a 1\nplan (agg 2.0 a)\n").ok());
}

TEST(UnaryGeneratorTest, SprinklesOperatorsWhenAsked) {
  WorkloadParams params;
  params.num_joins = 20;
  params.sort_probability = 0.5;
  params.aggregate_probability = 0.5;
  Rng rng(77);
  auto q = GenerateQuery(params, &rng);
  ASSERT_TRUE(q.ok());
  EXPECT_GT(q->plan->num_unary(), 0);
  EXPECT_EQ(q->plan->num_joins(), 20);
  // The whole pipeline still works on such plans.
  auto ops = OperatorTree::FromPlan(*q->plan);
  ASSERT_TRUE(ops.ok());
  OperatorTree tree = std::move(ops).value();
  auto tasks = TaskTree::FromOperatorTree(&tree);
  ASSERT_TRUE(tasks.ok());
  EXPECT_EQ(tree.num_ops(), 3 * 20 + 1 + 2 * q->plan->num_unary());
}

TEST(UnaryGeneratorTest, DefaultWorkloadHasNoUnaryOps) {
  WorkloadParams params;
  params.num_joins = 10;
  Rng rng(5);
  auto q = GenerateQuery(params, &rng);
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->plan->num_unary(), 0);
}

}  // namespace
}  // namespace mrs
