#include "plan/task_tree.h"

#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "catalog/catalog.h"
#include "plan/plan_tree.h"

namespace mrs {
namespace {

Catalog MakeCatalog(int n) {
  Catalog catalog;
  for (int i = 0; i < n; ++i) {
    Relation r;
    r.name = "R" + std::to_string(i);
    r.num_tuples = 1000;
    EXPECT_TRUE(catalog.AddRelation(std::move(r)).ok());
  }
  return catalog;
}

// A fully pipelined chain: every join probes with the previous join's
// output (outer = running result, inner = fresh base relation), so all
// probes fuse into one pipeline and every build is a leaf task.
OperatorTree ExpandRightDeep(const Catalog& catalog, PlanTree* plan,
                             int joins) {
  int cur = plan->AddLeaf(0).value();
  for (int i = 1; i <= joins; ++i) {
    cur = plan->AddJoin(cur, plan->AddLeaf(i).value()).value();
  }
  EXPECT_TRUE(plan->Finalize().ok());
  auto tree = OperatorTree::FromPlan(*plan);
  EXPECT_TRUE(tree.ok());
  (void)catalog;
  return std::move(tree).value();
}

TEST(TaskTreeTest, SingleScanIsOneTaskOnePhase) {
  Catalog catalog = MakeCatalog(1);
  PlanTree plan(&catalog);
  ASSERT_TRUE(plan.AddLeaf(0).ok());
  ASSERT_TRUE(plan.Finalize().ok());
  auto ops = OperatorTree::FromPlan(plan);
  ASSERT_TRUE(ops.ok());
  OperatorTree tree = std::move(ops).value();
  auto tasks = TaskTree::FromOperatorTree(&tree);
  ASSERT_TRUE(tasks.ok());
  EXPECT_EQ(tasks->num_tasks(), 1);
  EXPECT_EQ(tasks->num_phases(), 1);
  EXPECT_EQ(tasks->height(), 0);
  EXPECT_EQ(tree.op(0).task, tasks->root_task());
}

TEST(TaskTreeTest, SingleJoinHasTwoTasksTwoPhases) {
  // scan(inner) ~> build  => probe <~ scan(outer): the build side is one
  // task, the probe side another; build task precedes probe task.
  Catalog catalog = MakeCatalog(2);
  PlanTree plan(&catalog);
  plan.AddJoin(plan.AddLeaf(0).value(), plan.AddLeaf(1).value()).value();
  ASSERT_TRUE(plan.Finalize().ok());
  auto ops = OperatorTree::FromPlan(plan);
  ASSERT_TRUE(ops.ok());
  OperatorTree tree = std::move(ops).value();
  auto tasks = TaskTree::FromOperatorTree(&tree);
  ASSERT_TRUE(tasks.ok());

  EXPECT_EQ(tasks->num_tasks(), 2);
  EXPECT_EQ(tasks->num_phases(), 2);

  const int root_probe = tree.root_op();
  const int build = tree.op(root_probe).blocking_input;
  const int probe_task = tree.op(root_probe).task;
  const int build_task = tree.op(build).task;
  EXPECT_NE(probe_task, build_task);
  EXPECT_EQ(tasks->task(build_task).parent, probe_task);
  EXPECT_EQ(tasks->root_task(), probe_task);

  // Phase 0 runs the build task, phase 1 the probe task.
  EXPECT_EQ(tasks->phase(0), std::vector<int>{build_task});
  EXPECT_EQ(tasks->phase(1), std::vector<int>{probe_task});

  // Pipeline membership: inner scan with build; outer scan with probe.
  const auto& build_ops = tasks->task(build_task).ops;
  EXPECT_EQ(build_ops.size(), 2u);  // inner scan + build
  const auto& probe_ops = tasks->task(probe_task).ops;
  EXPECT_EQ(probe_ops.size(), 2u);  // outer scan + probe
}

TEST(TaskTreeTest, RightDeepChainPhases) {
  // Right-deep plan of J joins: probes chain into ONE pipeline with the
  // outer scan; each inner scan+build is its own task. All build tasks are
  // children of the root task => 2 phases regardless of J.
  Catalog catalog = MakeCatalog(4);
  PlanTree plan(&catalog);
  OperatorTree tree = ExpandRightDeep(catalog, &plan, 3);
  auto tasks = TaskTree::FromOperatorTree(&tree);
  ASSERT_TRUE(tasks.ok());

  EXPECT_EQ(tasks->num_tasks(), 4);  // 3 build tasks + root pipeline
  EXPECT_EQ(tasks->height(), 1);
  EXPECT_EQ(tasks->num_phases(), 2);
  EXPECT_EQ(tasks->phase(0).size(), 3u);
  EXPECT_EQ(tasks->phase(1).size(), 1u);

  // The root pipeline holds 1 scan + 3 probes.
  const QueryTask& root = tasks->task(tasks->root_task());
  EXPECT_EQ(root.ops.size(), 4u);
}

TEST(TaskTreeTest, LeftDeepChainPhases) {
  // Left-deep plan: each join's INNER is the previous join's result, so
  // every build blocks on the previous probe's task: a chain of tasks.
  // J joins => J+1 tasks and J+1 phases.
  Catalog catalog = MakeCatalog(4);
  PlanTree plan(&catalog);
  int cur = plan.AddLeaf(0).value();
  for (int i = 1; i <= 3; ++i) {
    cur = plan.AddJoin(plan.AddLeaf(i).value(), cur).value();
  }
  // Note: AddJoin(outer=new leaf, inner=cur) chains the previous result
  // into the build side — the "left-deep" materializing shape.
  ASSERT_TRUE(plan.Finalize().ok());
  auto ops = OperatorTree::FromPlan(plan);
  ASSERT_TRUE(ops.ok());
  OperatorTree tree = std::move(ops).value();
  auto tasks = TaskTree::FromOperatorTree(&tree);
  ASSERT_TRUE(tasks.ok());
  EXPECT_EQ(tasks->num_tasks(), 4);
  EXPECT_EQ(tasks->height(), 3);
  EXPECT_EQ(tasks->num_phases(), 4);
  for (int k = 0; k < 4; ++k) {
    EXPECT_EQ(tasks->phase(k).size(), 1u);
  }
}

TEST(TaskTreeTest, EveryOpInExactlyOneTask) {
  Catalog catalog = MakeCatalog(4);
  PlanTree plan(&catalog);
  OperatorTree tree = ExpandRightDeep(catalog, &plan, 3);
  auto tasks = TaskTree::FromOperatorTree(&tree);
  ASSERT_TRUE(tasks.ok());
  std::set<int> seen;
  for (const auto& t : tasks->tasks()) {
    for (int o : t.ops) {
      EXPECT_TRUE(seen.insert(o).second) << "op in two tasks";
      EXPECT_EQ(tree.op(o).task, t.id);
    }
  }
  EXPECT_EQ(static_cast<int>(seen.size()), tree.num_ops());
}

TEST(TaskTreeTest, PhaseOpsConcatenatesTasks) {
  Catalog catalog = MakeCatalog(4);
  PlanTree plan(&catalog);
  OperatorTree tree = ExpandRightDeep(catalog, &plan, 3);
  auto tasks = TaskTree::FromOperatorTree(&tree);
  ASSERT_TRUE(tasks.ok());
  size_t total = 0;
  for (int k = 0; k < tasks->num_phases(); ++k) {
    total += tasks->PhaseOps(k).size();
  }
  EXPECT_EQ(total, static_cast<size_t>(tree.num_ops()));
}

TEST(TaskTreeTest, BlockingAlwaysCrossesAdjacentPhases) {
  // A probe's build must sit exactly one phase earlier (its task is the
  // probe task's child).
  Catalog catalog = MakeCatalog(4);
  PlanTree plan(&catalog);
  // Bushy: (R0 ⋈ R1) ⋈ (R2 ⋈ R3).
  int j0 = plan.AddJoin(plan.AddLeaf(0).value(), plan.AddLeaf(1).value())
               .value();
  int j1 = plan.AddJoin(plan.AddLeaf(2).value(), plan.AddLeaf(3).value())
               .value();
  plan.AddJoin(j0, j1).value();
  ASSERT_TRUE(plan.Finalize().ok());
  auto ops = OperatorTree::FromPlan(plan);
  ASSERT_TRUE(ops.ok());
  OperatorTree tree = std::move(ops).value();
  auto tasks = TaskTree::FromOperatorTree(&tree);
  ASSERT_TRUE(tasks.ok());

  for (const auto& op : tree.ops()) {
    if (op.kind != OperatorKind::kProbe) continue;
    const int probe_depth = tasks->task(op.task).depth;
    const int build_depth =
        tasks->task(tree.op(op.blocking_input).task).depth;
    EXPECT_EQ(build_depth, probe_depth + 1);
  }
}

TEST(TaskTreeTest, RejectsEmptyInput) {
  EXPECT_FALSE(TaskTree::FromOperatorTree(nullptr).ok());
}

}  // namespace
}  // namespace mrs
