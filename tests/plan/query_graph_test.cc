#include "plan/query_graph.h"

#include <gtest/gtest.h>

namespace mrs {
namespace {

TEST(QueryGraphTest, EmptyGraph) {
  QueryGraph g(0);
  EXPECT_EQ(g.num_relations(), 0);
  EXPECT_EQ(g.num_joins(), 0);
  EXPECT_TRUE(g.IsConnected());
  EXPECT_TRUE(g.IsAcyclic());
}

TEST(QueryGraphTest, SingleVertexIsConnectedTree) {
  QueryGraph g(1);
  EXPECT_TRUE(g.IsTree());
}

TEST(QueryGraphTest, AddJoinWiring) {
  QueryGraph g(3);
  ASSERT_TRUE(g.AddJoin(0, 1).ok());
  ASSERT_TRUE(g.AddJoin(1, 2).ok());
  EXPECT_EQ(g.num_joins(), 2);
  EXPECT_EQ(g.IncidentEdges(1).size(), 2u);
  EXPECT_EQ(g.IncidentEdges(0).size(), 1u);
  EXPECT_TRUE(g.IsTree());
}

TEST(QueryGraphTest, RejectsSelfJoin) {
  QueryGraph g(2);
  EXPECT_EQ(g.AddJoin(1, 1).code(), StatusCode::kInvalidArgument);
}

TEST(QueryGraphTest, RejectsOutOfRange) {
  QueryGraph g(2);
  EXPECT_EQ(g.AddJoin(0, 2).code(), StatusCode::kOutOfRange);
  EXPECT_EQ(g.AddJoin(-1, 0).code(), StatusCode::kOutOfRange);
}

TEST(QueryGraphTest, RejectsDuplicateEdgeEitherOrientation) {
  QueryGraph g(3);
  ASSERT_TRUE(g.AddJoin(0, 1).ok());
  EXPECT_EQ(g.AddJoin(0, 1).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(g.AddJoin(1, 0).code(), StatusCode::kInvalidArgument);
}

TEST(QueryGraphTest, DetectsDisconnection) {
  QueryGraph g(4);
  ASSERT_TRUE(g.AddJoin(0, 1).ok());
  ASSERT_TRUE(g.AddJoin(2, 3).ok());
  EXPECT_FALSE(g.IsConnected());
  EXPECT_TRUE(g.IsAcyclic());
  EXPECT_FALSE(g.IsTree());
}

TEST(QueryGraphTest, DetectsCycle) {
  QueryGraph g(3);
  ASSERT_TRUE(g.AddJoin(0, 1).ok());
  ASSERT_TRUE(g.AddJoin(1, 2).ok());
  ASSERT_TRUE(g.AddJoin(2, 0).ok());
  EXPECT_TRUE(g.IsConnected());
  EXPECT_FALSE(g.IsAcyclic());
  EXPECT_FALSE(g.IsTree());
}

TEST(QueryGraphTest, StarQueryIsTree) {
  QueryGraph g(5);
  for (int i = 1; i < 5; ++i) ASSERT_TRUE(g.AddJoin(0, i).ok());
  EXPECT_TRUE(g.IsTree());
  EXPECT_EQ(g.IncidentEdges(0).size(), 4u);
}

TEST(QueryGraphTest, ToStringListsEdges) {
  QueryGraph g(3);
  ASSERT_TRUE(g.AddJoin(0, 1).ok());
  EXPECT_NE(g.ToString().find("R0-R1"), std::string::npos);
}

}  // namespace
}  // namespace mrs
