#include "plan/plan_printer.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace mrs {
namespace {

using testing_util::BushyFourWayFixture;
using testing_util::MakeFixture;
using testing_util::PlanFixture;

TEST(PlanPrinterTest, RenderPlanTreeShowsJoinsAndScans) {
  PlanFixture fx = BushyFourWayFixture();
  const std::string out = RenderPlanTree(*fx.plan);
  EXPECT_NE(out.find("join"), std::string::npos);
  EXPECT_NE(out.find("scan R0"), std::string::npos);
  EXPECT_NE(out.find("scan R3"), std::string::npos);
  EXPECT_NE(out.find("|out|="), std::string::npos);
}

TEST(PlanPrinterTest, RenderPlanTreeShowsUnaryOps) {
  PlanFixture fx = MakeFixture({5000, 2000}, [](PlanTree* plan) {
    int j = plan->AddJoin(plan->AddLeaf(0).value(), plan->AddLeaf(1).value())
                .value();
    plan->AddAggregate(plan->AddSort(j).value(), 0.5).value();
  });
  const std::string out = RenderPlanTree(*fx.plan);
  EXPECT_NE(out.find("sort #"), std::string::npos);
  EXPECT_NE(out.find("aggregate #"), std::string::npos);
}

TEST(PlanPrinterTest, UnfinalizedPlanRendersPlaceholder) {
  auto catalog = testing_util::MakeCatalog({10});
  PlanTree plan(catalog.get());
  ASSERT_TRUE(plan.AddLeaf(0).ok());
  EXPECT_NE(RenderPlanTree(plan).find("unfinalized"), std::string::npos);
}

TEST(PlanPrinterTest, RenderOperatorTreeMarksEdgeKinds) {
  PlanFixture fx = BushyFourWayFixture();
  const std::string out = RenderOperatorTree(fx.op_tree);
  EXPECT_NE(out.find("=> "), std::string::npos);  // blocking edges
  EXPECT_NE(out.find("~> "), std::string::npos);  // pipelined edges
  EXPECT_NE(out.find("probe"), std::string::npos);
  EXPECT_NE(out.find("build"), std::string::npos);
  EXPECT_NE(out.find("scan"), std::string::npos);
}

TEST(PlanPrinterTest, DotOutputIsWellFormed) {
  PlanFixture fx = BushyFourWayFixture();
  const std::string dot = OperatorTreeToDot(fx.op_tree);
  EXPECT_EQ(dot.rfind("digraph", 0), 0u);
  EXPECT_NE(dot.find("}"), std::string::npos);
  // Every operator appears as a node.
  for (const auto& op : fx.op_tree.ops()) {
    EXPECT_NE(dot.find("op" + std::to_string(op.id) + " ["),
              std::string::npos);
  }
  // Blocking edges are highlighted.
  EXPECT_NE(dot.find("style=bold"), std::string::npos);
}

TEST(PlanPrinterTest, RenderPhasesListsEveryTaskOnce) {
  PlanFixture fx = BushyFourWayFixture();
  const std::string out = RenderPhases(fx.task_tree, fx.op_tree);
  for (int k = 0; k < fx.task_tree.num_phases(); ++k) {
    EXPECT_NE(out.find("phase " + std::to_string(k) + ":"),
              std::string::npos);
  }
  for (const auto& task : fx.task_tree.tasks()) {
    EXPECT_NE(out.find("T" + std::to_string(task.id) + ":"),
              std::string::npos);
  }
}

}  // namespace
}  // namespace mrs
